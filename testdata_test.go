package stencilivc

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTestdataInstances keeps the shipped example instances loadable and
// colorable — they double as documentation and as cmd/ivc demo inputs.
func TestTestdataInstances(t *testing.T) {
	cases := []struct {
		file     string
		is3D     bool
		vertices int
		lowerBnd int64
	}{
		{"intro5x4.ivc", false, 20, 14},
		{"figure3.ivc", false, 48, 16},
		{"tiny3d.ivc", true, 18, 14},
	}
	for _, tc := range cases {
		f, err := os.Open(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		g2, g3, err := ReadInstance(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if tc.is3D {
			if g3 == nil {
				t.Fatalf("%s: expected 3D instance", tc.file)
			}
			if g3.Len() != tc.vertices {
				t.Fatalf("%s: %d vertices, want %d", tc.file, g3.Len(), tc.vertices)
			}
			if lb := LowerBound3D(g3); lb != tc.lowerBnd {
				t.Fatalf("%s: lower bound %d, want %d", tc.file, lb, tc.lowerBnd)
			}
			c, _, err := Best3D(g3)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(g3); err != nil {
				t.Fatalf("%s: %v", tc.file, err)
			}
			continue
		}
		if g2 == nil {
			t.Fatalf("%s: expected 2D instance", tc.file)
		}
		if g2.Len() != tc.vertices {
			t.Fatalf("%s: %d vertices, want %d", tc.file, g2.Len(), tc.vertices)
		}
		if lb := LowerBound2D(g2); lb != tc.lowerBnd {
			t.Fatalf("%s: lower bound %d, want %d", tc.file, lb, tc.lowerBnd)
		}
		c, _, err := Best2D(g2)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(g2); err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
	}
}
