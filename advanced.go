package stencilivc

import (
	"io"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/datasets"
	"stencilivc/internal/milp"
	"stencilivc/internal/order"
	"stencilivc/internal/rectpart"
	"stencilivc/internal/sched"
	"stencilivc/internal/stkde"
)

// BoundsReport aggregates the pair, clique, and odd-cycle lower bounds.
type BoundsReport = bounds.Report

// Advanced entry points: ordering strategies and post-optimization from
// the related-work toolbox (Section II-B), the MILP export matching the
// paper's Gurobi runs, rectilinear partitioning (the application's
// load-balancing step), and the classic wave-execution baseline.

// IteratedGreedy applies Culberson-style recoloring rounds to an existing
// valid coloring, alternating end-descending and start-ascending passes;
// maxcolor never increases. Returns the number of improving rounds.
func IteratedGreedy(g Graph, c Coloring, rounds int) int {
	return order.IteratedGreedy(g, c, rounds)
}

// Recolor compacts a valid coloring by re-placing each vertex of the
// order at its lowest feasible start; maxcolor never increases.
func Recolor(g Graph, c Coloring, vertexOrder []int) {
	order.Recolor(g, c, vertexOrder)
}

// SmallestLastOrder returns the Matula-Beck smallest-last vertex order.
func SmallestLastOrder(g Graph) []int { return order.SmallestLast(g) }

// DegreeOrder returns the Welsh-Powell largest-degree-first vertex order.
func DegreeOrder(g Graph) []int { return order.ByDegreeDesc(g) }

// GreedyWithOrder colors g greedily in the given vertex order, the
// building block behind every ordering heuristic.
func GreedyWithOrder(g Graph, vertexOrder []int) (Coloring, error) {
	return core.GreedyColor(g, vertexOrder)
}

// WriteMILP emits the instance's mixed-integer program in CPLEX LP
// format — the formulation the paper solved with Gurobi (Section VI-D).
// horizon <= 0 derives an upper bound from a greedy pass.
func WriteMILP(w io.Writer, g Graph, horizon int64) error {
	m, err := milp.Build(g, horizon)
	if err != nil {
		return err
	}
	return m.WriteLP(w)
}

// PartitionLoads1D optimally splits a load array into k contiguous parts
// minimizing the heaviest part (Nicol's probe algorithm).
func PartitionLoads1D(loads []int64, k int) (cuts []int, bottleneck int64, err error) {
	return rectpart.Partition1D(loads, k)
}

// PartitionGrid2D computes a load-balanced rectilinear partition of a 2D
// weight grid by alternating exact per-axis refinement.
func PartitionGrid2D(g *Grid2D, kx, ky, rounds int) (cutsX, cutsY []int, bottleneck int64, err error) {
	return rectpart.Partition2D(g, kx, ky, rounds)
}

// PartitionGrid3D is PartitionGrid2D for 3D weight grids.
func PartitionGrid3D(g *Grid3D, kx, ky, kz, rounds int) (cutsX, cutsY, cutsZ []int, bottleneck int64, err error) {
	return rectpart.Partition3D(g, kx, ky, kz, rounds)
}

// ColorClasses partitions the positive vertices into conflict-free
// classes with a classic distance-1 greedy coloring — the traditional
// barrier-wave schedule interval coloring improves on.
func ColorClasses(g Graph) [][]int { return sched.ColorClasses(g) }

// SimulateWaves models barrier-synchronized class-by-class execution on
// p processors, the baseline the DAG execution (Simulate) is compared
// against.
func SimulateWaves(g Graph, classes [][]int, p int) (int64, error) {
	return sched.SimulateWaves(g, classes, p)
}

// NewBalancedSTKDE is NewSTKDE with a load-balanced rectilinear box
// partition (Nicol refinement over a bandwidth-constrained helper grid).
func NewBalancedSTKDE(points []Point, bounds Bounds,
	vx, vy, vt, bx, by, bt int, bwS, bwT float64) (*STKDE, error) {
	return stkde.NewBalanced(points, bounds, vx, vy, vt, bx, by, bt, bwS, bwT, 10)
}

// ReadPointsCSV loads x,y,t events from CSV, for users with real data.
func ReadPointsCSV(r io.Reader) ([]Point, error) { return datasets.ReadPointsCSV(r) }

// WritePointsCSV emits events as x,y,t CSV rows.
func WritePointsCSV(w io.Writer, points []Point) error {
	return datasets.WritePointsCSV(w, points)
}

// BoundsReport2D computes all Section III lower bounds of a 2D instance;
// cycleBudget caps the odd-cycle search (0 disables it).
func BoundsReport2D(g *Grid2D, cycleBudget int) BoundsReport {
	return bounds.Report2D(g, cycleBudget)
}

// BoundsReport3D is BoundsReport2D for 27-pt stencils.
func BoundsReport3D(g *Grid3D, cycleBudget int) BoundsReport {
	return bounds.Report3D(g, cycleBudget)
}

// RepairColoring incrementally fixes a coloring after vertex weights
// changed (dynamic workloads recolor every step; repair keeps most of the
// previous schedule). Returns the number of vertices that moved; the
// coloring is complete and valid afterwards.
func RepairColoring(g Graph, c Coloring) int { return order.Repair(g, c) }
