// Ablation benchmarks for the design choices DESIGN.md calls out: the
// BDP recoloring order, SGK's permutation trials, DAG execution versus
// barrier waves, uniform versus load-balanced STKDE partitions, the
// odd-cycle search budget, and the competing exact solvers. Each bench
// reports the quality metric the choice trades against time.
package stencilivc

import (
	"fmt"
	"math/rand"
	"testing"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/datasets"
	"stencilivc/internal/exact"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/order"
	"stencilivc/internal/sched"
	"stencilivc/internal/stkde"
)

func ablationGrid2D(seed int64, n int) *Grid2D {
	rng := rand.New(rand.NewSource(seed))
	g := MustGrid2D(n, n)
	for v := range g.W {
		g.W[v] = rng.Int63n(50)
	}
	return g
}

// BenchmarkAblationBDPOrder compares BDP's block-structured recoloring
// order against naive alternatives applied to the same BD coloring.
func BenchmarkAblationBDPOrder(b *testing.B) {
	g := ablationGrid2D(61, 32)
	variants := []struct {
		name string
		run  func() int64
	}{
		{"bd-only", func() int64 {
			c, _ := heuristics.BipartiteDecomposition2D(g)
			return c.MaxColor(g)
		}},
		{"bdp-block-order", func() int64 {
			c, _ := heuristics.BipartiteDecompositionPost2D(g)
			return c.MaxColor(g)
		}},
		{"bd+random-recolor", func() int64 {
			c, _ := heuristics.BipartiteDecomposition2D(g)
			order.Recolor(g, c, order.Shuffled(g.Len(), 1))
			return c.MaxColor(g)
		}},
		{"bd+iterated-greedy", func() int64 {
			c, _ := heuristics.BipartiteDecomposition2D(g)
			order.IteratedGreedy(g, c, 10)
			return c.MaxColor(g)
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var colors int64
			for i := 0; i < b.N; i++ {
				colors = v.run()
			}
			b.ReportMetric(float64(colors), "colors")
		})
	}
}

// BenchmarkAblationSGKPermutations contrasts GKF (one order per block)
// with SGK (all orders per block) on quality and cost.
func BenchmarkAblationSGKPermutations(b *testing.B) {
	g := ablationGrid2D(62, 32)
	b.Run("GKF", func(b *testing.B) {
		var colors int64
		for i := 0; i < b.N; i++ {
			c := heuristics.LargestCliqueFirst2D(g)
			colors = c.MaxColor(g)
		}
		b.ReportMetric(float64(colors), "colors")
	})
	b.Run("SGK", func(b *testing.B) {
		var colors int64
		for i := 0; i < b.N; i++ {
			c := heuristics.SmartLargestCliqueFirst2D(g)
			colors = c.MaxColor(g)
		}
		b.ReportMetric(float64(colors), "colors")
	})
}

// BenchmarkAblationDAGvsWaves quantifies Section VII's execution model:
// the interval-coloring DAG against barrier-synchronized classic color
// waves, by simulated makespan on 8 processors.
func BenchmarkAblationDAGvsWaves(b *testing.B) {
	g := ablationGrid2D(63, 24)
	c, err := heuristics.Run2D(heuristics.BDP, g)
	if err != nil {
		b.Fatal(err)
	}
	d, err := sched.Build(g, c)
	if err != nil {
		b.Fatal(err)
	}
	classes := sched.ColorClasses(g)
	b.Run("dag", func(b *testing.B) {
		var ms int64
		for i := 0; i < b.N; i++ {
			s, err := sched.Simulate(d, 8)
			if err != nil {
				b.Fatal(err)
			}
			ms = s.Makespan
		}
		b.ReportMetric(float64(ms), "makespan")
	})
	b.Run("waves", func(b *testing.B) {
		var ms int64
		for i := 0; i < b.N; i++ {
			w, err := sched.SimulateWaves(g, classes, 8)
			if err != nil {
				b.Fatal(err)
			}
			ms = w
		}
		b.ReportMetric(float64(ms), "makespan")
	})
}

// BenchmarkAblationPartition compares uniform and Nicol-balanced STKDE
// box partitions by the coloring lower bound they induce (the heaviest
// K8, which caps how well any coloring can do).
func BenchmarkAblationPartition(b *testing.B) {
	ds, err := datasets.Generate(datasets.Dengue, 1)
	if err != nil {
		b.Fatal(err)
	}
	bwS := ds.Bounds.SpanX() / 32
	bwT := ds.Bounds.SpanT() / 32
	build := []struct {
		name string
		f    func() (*stkde.App, error)
	}{
		{"uniform", func() (*stkde.App, error) {
			return stkde.New(ds.Points, ds.Bounds, 32, 32, 32, 8, 8, 8, bwS, bwT)
		}},
		{"balanced", func() (*stkde.App, error) {
			return stkde.NewBalanced(ds.Points, ds.Bounds, 32, 32, 32, 8, 8, 8, bwS, bwT, 10)
		}},
	}
	for _, v := range build {
		b.Run(v.name, func(b *testing.B) {
			var lb int64
			for i := 0; i < b.N; i++ {
				app, err := v.f()
				if err != nil {
					b.Fatal(err)
				}
				lb = bounds.MaxK8(app.BoxGrid())
			}
			b.ReportMetric(float64(lb), "K8-bound")
		})
	}
}

// BenchmarkAblationOddCycleBudget shows the lower-bound quality the cycle
// search buys per node budget on the Figure 3 instance.
func BenchmarkAblationOddCycleBudget(b *testing.B) {
	g, err := FromWeights2D(8, 6, []int64{
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 7, 0, 0, 0, 0, 0, 0,
		7, 0, 3, 0, 0, 0, 8, 0,
		9, 0, 0, 9, 0, 7, 0, 1,
		0, 6, 2, 0, 7, 0, 0, 3,
		0, 0, 0, 0, 0, 1, 3, 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, budget := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("budget%d", budget), func(b *testing.B) {
			var bound int64
			for i := 0; i < b.N; i++ {
				bound = bounds.OddCycle(g, g.Len(), budget)
			}
			b.ReportMetric(float64(bound), "bound")
		})
	}
}

// BenchmarkAblationExactSolvers races the three exact methods on one
// small stencil (they must agree; see the exact package tests).
func BenchmarkAblationExactSolvers(b *testing.B) {
	rng := rand.New(rand.NewSource(64))
	g := MustGrid2D(3, 3)
	for v := range g.W {
		g.W[v] = rng.Int63n(5)
	}
	lb := bounds.MaxK4(g)
	b.Run("cp-optimize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := exact.Optimize(g, exact.OptimizeOptions{LowerBound: lb})
			if !res.Optimal {
				b.Fatal("not optimal")
			}
		}
	})
	b.Run("order-bnb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := exact.SolveByOrder(g, lb, 0)
			if !res.Optimal {
				b.Fatal("not optimal")
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.BruteForce(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOrderings compares the extra ordering strategies
// against the paper's on one instance.
func BenchmarkAblationOrderings(b *testing.B) {
	g := ablationGrid2D(65, 32)
	orders := []struct {
		name string
		ord  func() []int
	}{
		{"row-major", func() []int { return order.Identity(g.Len()) }},
		{"weight-desc", func() []int { return order.ByWeightDesc(g) }},
		{"degree-desc", func() []int { return order.ByDegreeDesc(g) }},
		{"smallest-last", func() []int { return order.SmallestLast(g) }},
		{"random", func() []int { return order.Shuffled(g.Len(), 7) }},
	}
	for _, v := range orders {
		b.Run(v.name, func(b *testing.B) {
			var colors int64
			for i := 0; i < b.N; i++ {
				c, err := core.GreedyColor(g, v.ord())
				if err != nil {
					b.Fatal(err)
				}
				colors = c.MaxColor(g)
			}
			b.ReportMetric(float64(colors), "colors")
		})
	}
}

// BenchmarkAblationSGK3DPermutations quantifies the shortcut the paper
// took in 3D: weight-sorted K8 ordering (SGK) versus trying all
// permutations per block (the variant the paper rejected as too slow).
func BenchmarkAblationSGK3DPermutations(b *testing.B) {
	rng := rand.New(rand.NewSource(66))
	g := MustGrid3D(6, 6, 6)
	for v := range g.W {
		g.W[v] = rng.Int63n(40)
	}
	b.Run("sorted", func(b *testing.B) {
		var colors int64
		for i := 0; i < b.N; i++ {
			c := heuristics.SmartLargestCliqueFirst3D(g)
			colors = c.MaxColor(g)
		}
		b.ReportMetric(float64(colors), "colors")
	})
	b.Run("full-permutations", func(b *testing.B) {
		var colors int64
		for i := 0; i < b.N; i++ {
			c := heuristics.SmartLargestCliqueFirst3DFull(g)
			colors = c.MaxColor(g)
		}
		b.ReportMetric(float64(colors), "colors")
	})
}
