// Benchmarks regenerating the paper's tables and figures: one
// testing.B benchmark per experiment (see DESIGN.md's index), plus
// micro-benchmarks of the core machinery. Run with:
//
//	go test -bench=. -benchmem
package stencilivc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/datasets"
	"stencilivc/internal/exact"
	"stencilivc/internal/experiments"
	"stencilivc/internal/nae"
	"stencilivc/internal/perfprof"
	"stencilivc/internal/sched"
)

// benchData caches the synthetic suites so benchmark iterations measure
// algorithms, not dataset generation.
var benchData struct {
	once   sync.Once
	g2     *Grid2D // representative 2D instance (Dengue xy, largest quick grid)
	g3     *Grid3D // representative 3D instance
	suite2 []datasets.Instance2D
	suite3 []datasets.Instance3D
}

func loadBenchData(b *testing.B) {
	b.Helper()
	benchData.once.Do(func() {
		s2, err := datasets.Suite2D(datasets.SuiteOptions{Seed: 1, Stride: 2, MaxDim: 32})
		if err != nil {
			panic(err)
		}
		s3, err := datasets.Suite3D(datasets.SuiteOptions{Seed: 1, Stride: 2, MaxDim: 16})
		if err != nil {
			panic(err)
		}
		benchData.suite2, benchData.suite3 = s2, s3
		// Pick the largest Dengue xy instance as the representative.
		for _, in := range s2 {
			if in.Dataset == datasets.Dengue && in.Projection == datasets.XY {
				g, err := FromWeights2D(in.X, in.Y, in.Weights)
				if err != nil {
					panic(err)
				}
				if benchData.g2 == nil || g.Len() > benchData.g2.Len() {
					benchData.g2 = g
				}
			}
		}
		for _, in := range s3 {
			if in.Dataset == datasets.Dengue {
				g, err := FromWeights3D(in.X, in.Y, in.Z, in.Weights)
				if err != nil {
					panic(err)
				}
				if benchData.g3 == nil || g.Len() > benchData.g3.Len() {
					benchData.g3 = g
				}
			}
		}
	})
	if benchData.g2 == nil || benchData.g3 == nil {
		b.Fatal("bench data missing representative instances")
	}
}

// BenchmarkFig2OddCycle times the exact solve certifying the Figure 2
// phenomenon (odd-cycle bound 30 > clique bound 20).
func BenchmarkFig2OddCycle(b *testing.B) {
	g := MustGrid2D(4, 5)
	for _, c := range c7Cells {
		g.Set(c[0], c[1], 10)
	}
	lb := bounds.OddCycle(g, g.Len(), 5_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := exact.Optimize(g, exact.OptimizeOptions{LowerBound: lb, NodeBudget: 2_000_000})
		if !res.Optimal || res.MaxColor != 30 {
			b.Fatal("figure 2 result changed")
		}
	}
}

// BenchmarkFig3Gap times the exact solve certifying the Figure 3 gap
// instance (optimum 17 above both bounds of 16).
func BenchmarkFig3Gap(b *testing.B) {
	g, err := FromWeights2D(8, 6, []int64{
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 7, 0, 0, 0, 0, 0, 0,
		7, 0, 3, 0, 0, 0, 8, 0,
		9, 0, 0, 9, 0, 7, 0, 1,
		0, 6, 2, 0, 7, 0, 0, 3,
		0, 0, 0, 0, 0, 1, 3, 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := exact.Optimize(g, exact.OptimizeOptions{LowerBound: 16, NodeBudget: 5_000_000})
		if !res.Optimal || res.MaxColor != 17 {
			b.Fatal("figure 3 result changed")
		}
	}
}

// BenchmarkFig4Voxelize times dataset voxelization (the preprocessing
// behind Figure 4's projections).
func BenchmarkFig4Voxelize(b *testing.B) {
	ds, err := datasets.Generate(datasets.Dengue, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datasets.Voxelize2D(ds.Points, ds.Bounds, datasets.XY, 32, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5a2DRuntime is the per-algorithm runtime comparison of
// Figure 5a on a representative 2D instance.
func BenchmarkFig5a2DRuntime(b *testing.B) {
	loadBenchData(b)
	g := benchData.g2
	b.Logf("instance: %dx%d", g.X, g.Y)
	for _, alg := range Algorithms() {
		b.Run(string(alg), func(b *testing.B) {
			var colors int64
			for i := 0; i < b.N; i++ {
				c, err := Solve2D(alg, g)
				if err != nil {
					b.Fatal(err)
				}
				colors = c.MaxColor(g)
			}
			b.ReportMetric(float64(colors), "colors")
		})
	}
}

// BenchmarkFig5b2DQuality sweeps all algorithms over the 2D suite and
// reports the geometric-mean tau of the best-known profile (Figure 5b).
func BenchmarkFig5b2DQuality(b *testing.B) {
	loadBenchData(b)
	for i := 0; i < b.N; i++ {
		var records []perfprof.Record
		for _, in := range benchData.suite2 {
			g, err := FromWeights2D(in.X, in.Y, in.Weights)
			if err != nil {
				b.Fatal(err)
			}
			for _, alg := range Algorithms() {
				c, err := Solve2D(alg, g)
				if err != nil {
					b.Fatal(err)
				}
				records = append(records, perfprof.Record{
					Algorithm: string(alg), Instance: in.Label(), Value: c.MaxColor(g),
				})
			}
		}
		sums, err := perfprof.Summarize(records)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range sums {
			if s.Algorithm == "BDP" {
				b.ReportMetric(s.GeoMeanTau, "BDP-geo-tau")
			}
		}
	}
}

// BenchmarkFig6PerDataset times the per-dataset 2D profile splits.
func BenchmarkFig6PerDataset(b *testing.B) {
	loadBenchData(b)
	for _, name := range datasets.Names() {
		b.Run(string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var records []perfprof.Record
				for _, in := range benchData.suite2 {
					if in.Dataset != name {
						continue
					}
					g, err := FromWeights2D(in.X, in.Y, in.Weights)
					if err != nil {
						b.Fatal(err)
					}
					for _, alg := range Algorithms() {
						c, err := Solve2D(alg, g)
						if err != nil {
							b.Fatal(err)
						}
						records = append(records, perfprof.Record{
							Algorithm: string(alg), Instance: in.Label(), Value: c.MaxColor(g),
						})
					}
				}
				if _, err := perfprof.Compute(records); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7a3DRuntime is Figure 7a: per-algorithm runtimes on a
// representative 3D instance.
func BenchmarkFig7a3DRuntime(b *testing.B) {
	loadBenchData(b)
	g := benchData.g3
	b.Logf("instance: %dx%dx%d", g.X, g.Y, g.Z)
	for _, alg := range Algorithms() {
		b.Run(string(alg), func(b *testing.B) {
			var colors int64
			for i := 0; i < b.N; i++ {
				c, err := Solve3D(alg, g)
				if err != nil {
					b.Fatal(err)
				}
				colors = c.MaxColor(g)
			}
			b.ReportMetric(float64(colors), "colors")
		})
	}
}

// BenchmarkFig7b3DQuality sweeps the 3D suite (Figure 7b).
func BenchmarkFig7b3DQuality(b *testing.B) {
	loadBenchData(b)
	for i := 0; i < b.N; i++ {
		var records []perfprof.Record
		for _, in := range benchData.suite3 {
			g, err := FromWeights3D(in.X, in.Y, in.Z, in.Weights)
			if err != nil {
				b.Fatal(err)
			}
			for _, alg := range Algorithms() {
				c, err := Solve3D(alg, g)
				if err != nil {
					b.Fatal(err)
				}
				records = append(records, perfprof.Record{
					Algorithm: string(alg), Instance: in.Label(), Value: c.MaxColor(g),
				})
			}
		}
		if _, err := perfprof.Compute(records); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8PerDataset times the per-dataset 3D splits.
func BenchmarkFig8PerDataset(b *testing.B) {
	loadBenchData(b)
	for _, name := range datasets.Names() {
		b.Run(string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, in := range benchData.suite3 {
					if in.Dataset != name {
						continue
					}
					g, err := FromWeights3D(in.X, in.Y, in.Z, in.Weights)
					if err != nil {
						b.Fatal(err)
					}
					for _, alg := range Algorithms() {
						if _, err := Solve3D(alg, g); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}

// BenchmarkFig9Optimality times the optimality-certification pass (the
// MILP substitute behind Figures 9a/9b and Table 3).
func BenchmarkFig9Optimality(b *testing.B) {
	opts := experiments.Options{Seed: 1, Stride: 4, MaxDim: 8,
		ExactBudget: 50_000, MaxExactCells: 500_000}
	res, err := experiments.Run2DSuite(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := res.ProvenOptimal(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rep.Optimum)), "certified")
	}
}

// BenchmarkFig10STKDE times one parallel STKDE execution per algorithm on
// a small instance (Figure 10's measured quantity).
func BenchmarkFig10STKDE(b *testing.B) {
	cfg := experiments.STKDEConfig{
		Name: "bench", Dataset: datasets.Dengue,
		Voxels: [3]int{32, 32, 32}, Boxes: [3]int{8, 8, 8}, BWFrac: 1.0 / 16,
	}
	app, err := experiments.BuildSTKDE(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := app.BoxGrid()
	workers := runtime.NumCPU()
	for _, alg := range Algorithms() {
		c, err := Solve3D(alg, g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := app.Parallel(c, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.MaxColor(g)), "colors")
		})
	}
}

// BenchmarkNAEReduction times building and deciding a Section IV
// reduction instance.
func BenchmarkNAEReduction(b *testing.B) {
	inst := nae.Instance{NumVars: 4, Clauses: [][3]int{{0, 1, 2}, {1, 2, 3}, {0, 2, 3}}}
	for i := 0; i < b.N; i++ {
		l, err := nae.Build(inst)
		if err != nil {
			b.Fatal(err)
		}
		verdict, _ := exact.Decide(l.Grid, nae.K, exact.DecideOptions{NodeBudget: 5_000_000})
		if verdict != exact.Feasible {
			b.Fatal("reduction verdict changed")
		}
	}
}

// BenchmarkTable1 times computing the Section VI-B statistics from a
// cached record matrix.
func BenchmarkTable1(b *testing.B) {
	res, err := experiments.Run2DSuite(experiments.Options{Seed: 1, Stride: 4, MaxDim: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MakeTable1(res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 times the Section VI-C statistics.
func BenchmarkTable2(b *testing.B) {
	res, err := experiments.Run3DSuite(experiments.Options{Seed: 1, Stride: 4, MaxDim: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MakeTable2(res); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the core machinery ---

func BenchmarkLowestFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	occ := make([]core.Interval, 26)
	for i := range occ {
		s := rng.Int63n(200)
		occ[i] = core.NewInterval(s, rng.Int63n(10))
	}
	scratch := make([]core.Interval, len(occ))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, occ)
		core.LowestFit(scratch, 7)
	}
}

func BenchmarkGreedyColor(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("grid%dx%d", n, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			g := MustGrid2D(n, n)
			for v := range g.W {
				g.W[v] = rng.Int63n(100)
			}
			order := make([]int, g.Len())
			for i := range order {
				order[i] = i
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.GreedyColor(g, order); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecide(b *testing.B) {
	g := MustGrid2D(4, 4)
	rng := rand.New(rand.NewSource(3))
	for v := range g.W {
		g.W[v] = rng.Int63n(6)
	}
	lb := bounds.MaxK4(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.Decide(g, lb+2, exact.DecideOptions{NodeBudget: 200_000})
	}
}

func BenchmarkSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := MustGrid2D(32, 32)
	for v := range g.W {
		g.W[v] = rng.Int63n(50)
	}
	c, err := Solve2D(BDP, g)
	if err != nil {
		b.Fatal(err)
	}
	d, err := sched.Build(g, c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Simulate(d, 8); err != nil {
			b.Fatal(err)
		}
	}
}
