package stencilivc_test

import (
	"context"
	"fmt"
	"time"

	"stencilivc"
)

// The smallest possible session: build a weighted stencil, run the
// paper's best general-purpose heuristic, and inspect the result.
func Example() {
	g := stencilivc.MustGrid2D(3, 3)
	copy(g.W, []int64{
		1, 2, 1,
		2, 4, 2,
		1, 2, 1,
	})
	c, alg, err := stencilivc.Best2D(g) // run all seven heuristics, keep the best
	if err != nil {
		panic(err)
	}
	_ = alg
	fmt.Println("valid:", c.Validate(g) == nil)
	fmt.Println("colors:", c.MaxColor(g))
	fmt.Println("lower bound:", stencilivc.LowerBound2D(g))
	// Output:
	// valid: true
	// colors: 9
	// lower bound: 9
}

// The Solver pipeline: SolveOptions carries a context (cancellation), a
// parallelism knob (the portfolio runs concurrently but returns results
// byte-identical to the sequential run), and a Stats sink counting
// placements, probes, and per-phase wall time.
func ExampleBest() {
	g := stencilivc.MustGrid2D(8, 8)
	for v := range g.W {
		g.W[v] = int64(v%7) + 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var stats stencilivc.Stats
	c, alg, err := stencilivc.Best(g, &stencilivc.SolveOptions{
		Ctx:         ctx,
		Parallelism: 4,
		Stats:       &stats,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("winner:", alg, "colors:", c.MaxColor(g))
	fmt.Println("placed all vertices:", stats.Placements() >= int64(g.Len()))
	// Output:
	// winner: BD colors: 26
	// placed all vertices: true
}

// Exact solving proves optimality on small instances.
func ExampleOptimal2D() {
	g := stencilivc.MustGrid2D(2, 2) // a K4: the optimum is the total weight
	copy(g.W, []int64{3, 1, 4, 1})
	res := stencilivc.Optimal2D(g, 100000)
	fmt.Println("optimal:", res.Optimal, "maxcolor:", res.MaxColor)
	// Output:
	// optimal: true maxcolor: 9
}

// A coloring is a schedule: orient the conflicts and simulate.
func ExampleSimulate() {
	g := stencilivc.MustGrid2D(4, 1)
	copy(g.W, []int64{5, 5, 5, 5})
	c, _ := stencilivc.Solve2D(stencilivc.GLL, g)
	dag, _ := stencilivc.TaskDAG(g, c)
	s, _ := stencilivc.Simulate(dag, 2)
	fmt.Println("makespan:", s.Makespan, "work:", dag.TotalWork())
	// Output:
	// makespan: 10 work: 20
}

// The decision procedure answers "colorable with K colors?" — here on
// two adjacent weight-7 tasks, which need exactly 14.
func ExampleDecide() {
	g := stencilivc.MustGrid2D(2, 1)
	copy(g.W, []int64{7, 7})
	v13, _ := stencilivc.Decide(g, 13, 0)
	v14, _ := stencilivc.Decide(g, 14, 0)
	fmt.Println("K=13:", v13)
	fmt.Println("K=14:", v14)
	// Output:
	// K=13: infeasible
	// K=14: feasible
}

// Nicol's 1D partitioning balances contiguous loads exactly.
func ExamplePartitionLoads1D() {
	cuts, bottleneck, _ := stencilivc.PartitionLoads1D([]int64{4, 1, 1, 4}, 2)
	fmt.Println("cuts:", cuts, "bottleneck:", bottleneck)
	// Output:
	// cuts: [2] bottleneck: 5
}
