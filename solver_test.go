package stencilivc_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"stencilivc"
)

// TestSolveCanceledPromptly: on a large grid (1M vertices) a canceled
// context must surface context.Canceled well before the solve could have
// finished — the engine polls at line/block granularity.
func TestSolveCanceledPromptly(t *testing.T) {
	g := stencilivc.MustGrid2D(1024, 1024)
	for v := range g.W {
		g.W[v] = int64(v%17) + 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range stencilivc.Algorithms() {
		t0 := time.Now()
		_, err := stencilivc.Solve(alg, g, &stencilivc.SolveOptions{Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", alg, err)
		}
		if dt := time.Since(t0); dt > 2*time.Second {
			t.Errorf("%s: cancellation took %v, want prompt return", alg, dt)
		}
	}
}

// TestSolveTimeout: a deadline that expires mid-solve aborts with
// context.DeadlineExceeded.
func TestSolveTimeout(t *testing.T) {
	g := stencilivc.MustGrid2D(1024, 1024)
	for v := range g.W {
		g.W[v] = int64(v%17) + 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, _, err := stencilivc.Best(g, &stencilivc.SolveOptions{Ctx: ctx, Parallelism: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBestParallelMatchesSequential exercises the public portfolio path
// with Parallelism >= 4 under the race detector and pins byte-identical
// results against the sequential compatibility wrappers.
func TestBestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g2 := stencilivc.MustGrid2D(20, 20)
	for v := range g2.W {
		g2.W[v] = rng.Int63n(10)
	}
	g3 := stencilivc.MustGrid3D(5, 6, 4)
	for v := range g3.W {
		g3.W[v] = rng.Int63n(10)
	}

	seq2, alg2, err := stencilivc.Best2D(g2)
	if err != nil {
		t.Fatal(err)
	}
	par2, palg2, err := stencilivc.Best(g2, &stencilivc.SolveOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if palg2 != alg2 || !reflect.DeepEqual(par2.Start, seq2.Start) {
		t.Errorf("2D parallel best (%s) differs from sequential (%s)", palg2, alg2)
	}

	seq3, alg3, err := stencilivc.Best3D(g3)
	if err != nil {
		t.Fatal(err)
	}
	par3, palg3, err := stencilivc.Best(g3, &stencilivc.SolveOptions{Parallelism: 7})
	if err != nil {
		t.Fatal(err)
	}
	if palg3 != alg3 || !reflect.DeepEqual(par3.Start, seq3.Start) {
		t.Errorf("3D parallel best (%s) differs from sequential (%s)", palg3, alg3)
	}
}

// TestSolveStats: the public options thread the stats sink through the
// whole pipeline.
func TestSolveStats(t *testing.T) {
	g := stencilivc.MustGrid2D(10, 10)
	for v := range g.W {
		g.W[v] = int64(v % 5)
	}
	var stats stencilivc.Stats
	c, err := stencilivc.Solve(stencilivc.BDP, g, &stencilivc.SolveOptions{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if stats.Placements() == 0 || stats.Probes() == 0 {
		t.Errorf("stats empty: placements=%d probes=%d", stats.Placements(), stats.Probes())
	}
	var names []string
	for _, p := range stats.Phases() {
		names = append(names, p.Name)
	}
	want := map[string]bool{"solve:BDP": false, "BDP/decompose": false, "BDP/post": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("missing phase %s (have %v)", n, names)
		}
	}
}

// TestAlgorithmRegistry: the public registry view exposes the paper's
// seven plus the extensions (BDL, PGLL, PGLF), and the paper flag
// matches Algorithms().
func TestAlgorithmRegistry(t *testing.T) {
	infos := stencilivc.AlgorithmRegistry()
	paper := map[stencilivc.Algorithm]bool{}
	for _, alg := range stencilivc.Algorithms() {
		paper[alg] = true
	}
	extensions := map[stencilivc.Algorithm]bool{
		stencilivc.BDL: false, stencilivc.PGLL: false, stencilivc.PGLF: false,
	}
	for _, d := range infos {
		if _, isExt := extensions[d.Name]; isExt {
			extensions[d.Name] = true
			if d.Paper {
				t.Errorf("%s must not be flagged as a paper algorithm", d.Name)
			}
		} else if !paper[d.Name] {
			t.Errorf("registry holds %s, not in Algorithms() and not an extension", d.Name)
		}
	}
	for name, found := range extensions {
		if !found {
			t.Errorf("registry missing extension %s", name)
		}
	}
	if len(infos) != len(paper)+len(extensions) {
		t.Errorf("registry size %d, want %d", len(infos), len(paper)+len(extensions))
	}
}

// TestPortfolioSubset: the public Portfolio honors a caller-chosen list.
func TestPortfolioSubset(t *testing.T) {
	g := stencilivc.MustGrid2D(8, 8)
	for v := range g.W {
		g.W[v] = int64(v % 7)
	}
	algs := []stencilivc.Algorithm{stencilivc.BD, stencilivc.BDP}
	c, winner, err := stencilivc.Portfolio(g, algs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if winner != stencilivc.BD && winner != stencilivc.BDP {
		t.Errorf("winner %s not in portfolio", winner)
	}
	if err := c.Validate(g); err != nil {
		t.Error(err)
	}
}
