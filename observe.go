package stencilivc

import (
	"io"
	"log/slog"
	"net/http"
	"time"

	"stencilivc/internal/obsv"
)

// Observability types (internal/obsv), re-exported for users of the
// public API. Attach a Trace and/or SolveMetrics to SolveOptions to
// observe a solve; both are nil-safe, so leaving them nil costs nothing.
type (
	// Trace records hierarchical per-phase spans of a solve (wall +
	// process CPU time); export with WriteChrome for chrome://tracing.
	Trace = obsv.Trace
	// Span is one open phase of a Trace.
	Span = obsv.Span
	// SpanRecord is one completed span of a Trace.
	SpanRecord = obsv.SpanRecord
	// MetricsRegistry is a named collection of counters, gauges, and
	// histograms with Prometheus and expvar exposition.
	MetricsRegistry = obsv.Registry
	// SolveMetrics bundles the solver metric taxonomy (vertices colored,
	// probes, conflicts, repair rounds, occupancy lengths, maxcolor).
	SolveMetrics = obsv.SolveMetrics
	// EventSink is the structured solve-event log: solver start/finish,
	// speculation, repair sweeps, fallbacks, fault injections, and
	// partial-result returns as slog records. Attach one to
	// SolveOptions.Events; nil costs nothing.
	EventSink = obsv.EventSink
	// RuntimeSampler bridges the Go runtime's own metrics (GC pause and
	// scheduler-latency histograms, heap and goroutine gauges) into a
	// MetricsRegistry while a solve runs. Attach one to
	// SolveOptions.Sampler; nil costs nothing.
	RuntimeSampler = obsv.Sampler
	// RuntimeSummary condenses what a RuntimeSampler observed — GC pause
	// totals, scheduler-latency maxima, heap and goroutine peaks — into
	// the flat record the benchmark-trajectory pipeline embeds in
	// BENCH_*.json.
	RuntimeSummary = obsv.SamplerSummary
	// FlightRecorder is the always-on bounded ring of recent trace
	// records, dumped via FlightHandler at /debug/flight.
	FlightRecorder = obsv.FlightRecorder
	// TraceContext identifies one request's trace (trace id + parent
	// span); attach to SolveOptions.TraceCtx to record flight spans for a
	// solve. Nil costs one pointer compare.
	TraceContext = obsv.TraceContext
	// FlightSpan is one open flight-recorder span; a value type so the
	// disabled path allocates nothing.
	FlightSpan = obsv.FlightSpan
	// FlightRecord is one retained flight-recorder entry.
	FlightRecord = obsv.FlightRecord
)

// NewTrace returns an empty trace whose clock starts now; put it in
// SolveOptions.Trace to record the solve's phase spans.
func NewTrace() *Trace { return obsv.NewTrace() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obsv.NewRegistry() }

// NewSolveMetrics registers the solver metric taxonomy in r and returns
// the bundle; put it in SolveOptions.Metrics to count solver work.
func NewSolveMetrics(r *MetricsRegistry) *SolveMetrics { return obsv.NewSolveMetrics(r) }

// NewJSONEventSink returns a solve-event sink writing one JSON event
// object per line to w (the wire format of ivc -log); put it in
// SolveOptions.Events to record the solve's event stream. A nil writer
// yields a nil (disabled) sink.
func NewJSONEventSink(w io.Writer) *EventSink { return obsv.NewJSONEventSink(w) }

// NewEventSink wraps an arbitrary slog.Handler as a solve-event sink,
// for callers that already route structured logs somewhere. A nil
// handler yields a nil (disabled) sink.
func NewEventSink(h slog.Handler) *EventSink { return obsv.NewEventSink(h) }

// NewRuntimeSampler returns a runtime sampler publishing into r every
// interval (non-positive picks obsv.DefaultSampleInterval, 10ms); put
// it in SolveOptions.Sampler to sample GC pauses, scheduler latencies,
// and heap state for the duration of every solve. A nil registry is
// allowed — the sampler then only accumulates its RuntimeSummary.
func NewRuntimeSampler(r *MetricsRegistry, interval time.Duration) *RuntimeSampler {
	return obsv.NewSampler(r, interval)
}

// MetricsHandler returns an http.Handler serving r in Prometheus text
// format (plus scrape-time Go runtime gauges), ready to mount at
// /metrics alongside net/http/pprof and expvar.
func MetricsHandler(r *MetricsRegistry) http.Handler { return obsv.Handler(r) }

// NewFlightRecorder returns a flight recorder retaining about entries
// recent records (non-positive picks obsv.DefaultFlightEntries).
// Passing a registry additionally registers the flight_* counters;
// a nil registry is allowed.
func NewFlightRecorder(entries int, r *MetricsRegistry) *FlightRecorder {
	return obsv.NewFlightRecorder(entries, r)
}

// FlightHandler returns an http.Handler serving the recorder as a JSON
// dump (the GET /debug/flight surface), filterable by trace id, tenant,
// and job.
func FlightHandler(f *FlightRecorder) http.Handler { return obsv.FlightHandler(f) }

// SolveWithTrace runs Solve with a fresh trace attached and returns the
// trace alongside the coloring: the one-liner for "where did this solve
// spend its time?". If opts already carries a trace it is kept (and
// returned), so the helper composes with a caller-managed tracer.
func SolveWithTrace(alg Algorithm, s Stencil, opts *SolveOptions) (Coloring, *Trace, error) {
	if opts == nil {
		opts = &SolveOptions{}
	}
	if opts.Trace == nil {
		o := *opts
		o.Trace = NewTrace()
		opts = &o
	}
	c, err := Solve(alg, s, opts)
	return c, opts.Trace, err
}
