package stencilivc

import (
	"net/http"

	"stencilivc/internal/obsv"
)

// Observability types (internal/obsv), re-exported for users of the
// public API. Attach a Trace and/or SolveMetrics to SolveOptions to
// observe a solve; both are nil-safe, so leaving them nil costs nothing.
type (
	// Trace records hierarchical per-phase spans of a solve (wall +
	// process CPU time); export with WriteChrome for chrome://tracing.
	Trace = obsv.Trace
	// Span is one open phase of a Trace.
	Span = obsv.Span
	// SpanRecord is one completed span of a Trace.
	SpanRecord = obsv.SpanRecord
	// MetricsRegistry is a named collection of counters, gauges, and
	// histograms with Prometheus and expvar exposition.
	MetricsRegistry = obsv.Registry
	// SolveMetrics bundles the solver metric taxonomy (vertices colored,
	// probes, conflicts, repair rounds, occupancy lengths, maxcolor).
	SolveMetrics = obsv.SolveMetrics
)

// NewTrace returns an empty trace whose clock starts now; put it in
// SolveOptions.Trace to record the solve's phase spans.
func NewTrace() *Trace { return obsv.NewTrace() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obsv.NewRegistry() }

// NewSolveMetrics registers the solver metric taxonomy in r and returns
// the bundle; put it in SolveOptions.Metrics to count solver work.
func NewSolveMetrics(r *MetricsRegistry) *SolveMetrics { return obsv.NewSolveMetrics(r) }

// MetricsHandler returns an http.Handler serving r in Prometheus text
// format (plus scrape-time Go runtime gauges), ready to mount at
// /metrics alongside net/http/pprof and expvar.
func MetricsHandler(r *MetricsRegistry) http.Handler { return obsv.Handler(r) }

// SolveWithTrace runs Solve with a fresh trace attached and returns the
// trace alongside the coloring: the one-liner for "where did this solve
// spend its time?". If opts already carries a trace it is kept (and
// returned), so the helper composes with a caller-managed tracer.
func SolveWithTrace(alg Algorithm, s Stencil, opts *SolveOptions) (Coloring, *Trace, error) {
	if opts == nil {
		opts = &SolveOptions{}
	}
	if opts.Trace == nil {
		o := *opts
		o.Trace = NewTrace()
		opts = &o
	}
	c, err := Solve(alg, s, opts)
	return c, opts.Trace, err
}
