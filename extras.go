package stencilivc

import (
	"stencilivc/internal/datasets"
	"stencilivc/internal/exact"
	"stencilivc/internal/nae"
	"stencilivc/internal/stkde"
)

// Application-facing re-exports: the STKDE demo application (Section VII)
// and the NAE-3SAT reduction (Section IV) are part of the library's
// public surface so the examples/ tree compiles against the same API an
// external user sees.

type (
	// Point is a spatio-temporal event (x, y, t).
	Point = datasets.Point
	// Bounds is an axis-aligned (x, y, t) bounding box.
	Bounds = datasets.Bounds
	// STKDE is the space-time kernel density estimation application whose
	// box-task conflict graph is a 27-pt stencil (Section VII).
	STKDE = stkde.App
	// NAEInstance is a Not-All-Equal 3-SAT formula.
	NAEInstance = nae.Instance
	// NAELayout is the 3DS-IVC instance built from a NAEInstance by the
	// NP-completeness reduction, with gadget positions for encoding and
	// decoding colorings.
	NAELayout = nae.Layout
	// Verdict is the outcome of a bounded decision query.
	Verdict = exact.Verdict
)

// Decision verdicts.
const (
	Unknown    = exact.Unknown
	Feasible   = exact.Feasible
	Infeasible = exact.Infeasible
)

// ReductionK is the color budget of the NP-completeness reduction: the
// constructed 27-pt stencil is colorable with ReductionK colors iff the
// NAE-3SAT instance is satisfiable.
const ReductionK = nae.K

// NewSTKDE configures a kernel density computation: points over bounds,
// a vx×vy×vt voxel output field, a bx×by×bt box partition (each box must
// span at least twice the bandwidth), and spatial/temporal bandwidths.
func NewSTKDE(points []Point, bounds Bounds,
	vx, vy, vt, bx, by, bt int, bwS, bwT float64) (*STKDE, error) {
	return stkde.New(points, bounds, vx, vy, vt, bx, by, bt, bwS, bwT)
}

// BuildNAEReduction constructs the Section IV reduction instance.
func BuildNAEReduction(inst NAEInstance) (*NAELayout, error) { return nae.Build(inst) }

// EncodeNAEColoring turns a satisfying assignment into a valid coloring
// of the reduction instance with maxcolor <= ReductionK.
func EncodeNAEColoring(l *NAELayout, assignment []bool) (Coloring, error) {
	return nae.AssignmentColoring(l, assignment)
}

// DecodeNAEColoring reads a satisfying assignment back out of any valid
// coloring of the reduction instance with maxcolor <= ReductionK.
func DecodeNAEColoring(l *NAELayout, c Coloring) []bool {
	return nae.DecodeAssignment(l, c)
}

// Decide reports whether g can be colored with maxcolor <= K within the
// given search-node budget (0 picks a default). On Feasible the returned
// coloring is a valid witness.
func Decide(g Graph, K int64, nodeBudget int) (Verdict, Coloring) {
	return exact.Decide(g, K, exact.DecideOptions{NodeBudget: nodeBudget})
}
