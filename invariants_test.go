package stencilivc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stencilivc/internal/bounds"
	"stencilivc/internal/exact"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/sched"
)

// This file holds the cross-package invariants of the whole system,
// exercised with testing/quick over randomized stencil instances.

func quickGrid2D(seed int64, xs, ys, ws uint8) *Grid2D {
	rng := rand.New(rand.NewSource(seed))
	g := MustGrid2D(1+int(xs%8), 1+int(ys%8))
	for v := range g.W {
		g.W[v] = rng.Int63n(int64(ws%30) + 1)
	}
	return g
}

func quickGrid3D(seed int64, xs, ys, zs, ws uint8) *Grid3D {
	rng := rand.New(rand.NewSource(seed))
	g := MustGrid3D(1+int(xs%4), 1+int(ys%4), 1+int(zs%4))
	for v := range g.W {
		g.W[v] = rng.Int63n(int64(ws%30) + 1)
	}
	return g
}

// Every algorithm, every random instance: valid and at or above every
// lower bound.
func TestQuickAllAlgorithmsRespectBounds2D(t *testing.T) {
	f := func(seed int64, xs, ys, ws uint8) bool {
		g := quickGrid2D(seed, xs, ys, ws)
		lb := max(bounds.MaxPair(g), bounds.MaxK4(g))
		for _, alg := range Algorithms() {
			c, err := Solve2D(alg, g)
			if err != nil || c.Validate(g) != nil || c.MaxColor(g) < lb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickAllAlgorithmsRespectBounds3D(t *testing.T) {
	f := func(seed int64, xs, ys, zs, ws uint8) bool {
		g := quickGrid3D(seed, xs, ys, zs, ws)
		lb := max(bounds.MaxPair(g), bounds.MaxK8(g))
		for _, alg := range Algorithms() {
			c, err := Solve3D(alg, g)
			if err != nil || c.Validate(g) != nil || c.MaxColor(g) < lb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The approximation contracts: BD within 2x (2D) / 4x (4D) of its own
// certified lower bound, BDP never worse than BD.
func TestQuickApproximationContracts(t *testing.T) {
	f := func(seed int64, xs, ys, ws uint8) bool {
		g := quickGrid2D(seed, xs, ys, ws)
		bd, rc := heuristics.BipartiteDecomposition2D(g)
		bdp, _ := heuristics.BipartiteDecompositionPost2D(g)
		if bd.Validate(g) != nil || bdp.Validate(g) != nil {
			return false
		}
		return bd.MaxColor(g) <= 2*rc && bdp.MaxColor(g) <= bd.MaxColor(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Scheduling invariants: critical path <= maxcolor; makespan between
// work/p and work; DAG and wave schedules both conserve work.
func TestQuickSchedulingInvariants(t *testing.T) {
	f := func(seed int64, xs, ys, ws uint8, pRaw uint8) bool {
		g := quickGrid2D(seed, xs, ys, ws)
		p := 1 + int(pRaw%8)
		c, err := Solve2D(BDP, g)
		if err != nil {
			return false
		}
		d, err := sched.Build(g, c)
		if err != nil {
			return false
		}
		s, err := sched.Simulate(d, p)
		if err != nil {
			return false
		}
		work := d.TotalWork()
		if d.CriticalPath() > c.MaxColor(g) {
			return false
		}
		if s.Makespan < d.CriticalPath() || s.Makespan > work || int64(p)*s.Makespan < work {
			return false
		}
		waves, err := sched.SimulateWaves(g, sched.ColorClasses(g), p)
		if err != nil {
			return false
		}
		return waves >= work/int64(p) && waves <= work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Exact-solver sandwich on tiny instances: LB <= OPT <= every heuristic,
// and the CP optimizer agrees with the order B&B.
func TestQuickExactSandwich(t *testing.T) {
	f := func(seed int64, ws uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := MustGrid2D(1+rng.Intn(3), 1+rng.Intn(3))
		for v := range g.W {
			g.W[v] = rng.Int63n(int64(ws%6) + 1)
		}
		lb := bounds.Combined2D(g, 10_000)
		cp := exact.Optimize(g, exact.OptimizeOptions{LowerBound: lb, NodeBudget: 500_000})
		ord := exact.SolveByOrder(g, lb, 500_000)
		if !cp.Optimal || !ord.Optimal || cp.MaxColor != ord.MaxColor {
			return false
		}
		if cp.MaxColor < lb {
			return false
		}
		for _, alg := range Algorithms() {
			c, err := Solve2D(alg, g)
			if err != nil || c.MaxColor(g) < cp.MaxColor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Determinism: every algorithm is a pure function of the instance.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64, xs, ys, ws uint8) bool {
		g := quickGrid2D(seed, xs, ys, ws)
		for _, alg := range Algorithms() {
			a, err1 := Solve2D(alg, g)
			b, err2 := Solve2D(alg, g)
			if err1 != nil || err2 != nil {
				return false
			}
			for v := range a.Start {
				if a.Start[v] != b.Start[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
