module stencilivc

go 1.22
