// NP-completeness: walk through the Section IV reduction from NAE-3SAT
// to 27-pt stencil interval coloring, in both directions.
//
// Run with:
//
//	go run ./examples/npcompleteness
package main

import (
	"fmt"
	"log"

	"stencilivc"
)

func main() {
	// A small NAE-3SAT formula over four variables.
	inst := stencilivc.NAEInstance{
		NumVars: 4,
		Clauses: [][3]int{{0, 1, 2}, {1, 2, 3}, {0, 2, 3}},
	}
	fmt.Printf("NAE-3SAT: %d variables, %d clauses %v\n", inst.NumVars, len(inst.Clauses), inst.Clauses)

	// Build the 27-pt stencil whose 14-colorability encodes the formula.
	layout, err := stencilivc.BuildNAEReduction(inst)
	if err != nil {
		log.Fatal(err)
	}
	g := layout.Grid
	fmt.Printf("reduction: %dx%dx%d stencil (%d cells; weights 0, 3, and 7)\n",
		g.X, g.Y, g.Z, g.Len())

	// Direction 1: a satisfying assignment yields a 14-coloring.
	assignment := inst.Solve()
	if assignment == nil {
		log.Fatal("instance unexpectedly unsatisfiable")
	}
	c, err := stencilivc.EncodeNAEColoring(layout, assignment)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assignment %v -> valid coloring with maxcolor %d (budget %d)\n",
		assignment, c.MaxColor(g), stencilivc.ReductionK)

	// Direction 2: deciding 14-colorability recovers satisfiability, and
	// any witness decodes to a satisfying assignment.
	verdict, witness := stencilivc.Decide(g, stencilivc.ReductionK, 2_000_000)
	fmt.Printf("CP decision at K=%d: %v\n", stencilivc.ReductionK, verdict)
	if verdict == stencilivc.Feasible {
		decoded := stencilivc.DecodeNAEColoring(layout, witness)
		fmt.Printf("decoded assignment: %v (satisfies: %v)\n", decoded, inst.Satisfied(decoded))
	}

	// And one color fewer is impossible wherever a 7 touches a 7.
	verdict13, _ := stencilivc.Decide(g, stencilivc.ReductionK-1, 2_000_000)
	fmt.Printf("CP decision at K=%d: %v (two adjacent weight-7 tubes need 14)\n",
		stencilivc.ReductionK-1, verdict13)
}
