// Quickstart: color a small weighted 9-pt stencil and inspect the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stencilivc"
)

func main() {
	// The introduction's motivating example: a 5x4 grid of spatial regions
	// whose weights are the number of objects each region holds (Figure 1).
	g := stencilivc.MustGrid2D(5, 4)
	weights := []int64{
		1, 2, 1, 0, 0,
		3, 5, 2, 1, 0,
		2, 4, 3, 2, 1,
		0, 1, 1, 2, 1,
	}
	copy(g.W, weights)

	lb := stencilivc.LowerBound2D(g)
	fmt.Printf("instance: %d regions, total work %d, lower bound %d colors\n\n",
		g.Len(), total(weights), lb)

	// Compare the paper's seven heuristics.
	for _, alg := range stencilivc.Algorithms() {
		c, err := stencilivc.Solve2D(alg, g)
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if c.MaxColor(g) == lb {
			mark = "  <- provably optimal (matches the K4 bound)"
		}
		fmt.Printf("%-4s uses %2d colors%s\n", alg, c.MaxColor(g), mark)
	}

	// Look at the best coloring cell by cell.
	c, winner, err := stencilivc.Best2D(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest coloring (%s): each region's color interval\n", winner)
	for j := 0; j < g.Y; j++ {
		for i := 0; i < g.X; i++ {
			v := g.ID(i, j)
			fmt.Printf("[%2d,%2d) ", c.Start[v], c.Start[v]+g.W[v])
		}
		fmt.Println()
	}

	// A coloring is a schedule: regions whose intervals are disjoint in
	// color may run concurrently. Simulate on 4 processors.
	dag, err := stencilivc.TaskDAG(g, c)
	if err != nil {
		log.Fatal(err)
	}
	s, err := stencilivc.Simulate(dag, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\non 4 processors: makespan %d (sequential %d, critical path %d)\n",
		s.Makespan, dag.TotalWork(), dag.CriticalPath())
}

func total(w []int64) int64 {
	var s int64
	for _, v := range w {
		s += v
	}
	return s
}
