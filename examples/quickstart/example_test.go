package main

import (
	"fmt"
	"sort"

	"stencilivc"
)

// SolveWithTrace is the observability entry point this example
// demonstrates; it forwards to stencilivc.SolveWithTrace, which runs a
// solve with a fresh tracer attached and hands the recorded spans back.
func SolveWithTrace(alg stencilivc.Algorithm, s stencilivc.Stencil,
	opts *stencilivc.SolveOptions) (stencilivc.Coloring, *stencilivc.Trace, error) {
	return stencilivc.SolveWithTrace(alg, s, opts)
}

// ExampleSolveWithTrace traces a solve and reads its phase spans: the
// solve itself plus BDP's decompose and post-optimization phases. The
// same Trace can be written to a file with WriteChrome and opened in a
// Chrome trace viewer (see the README's "Observing a solve" section).
func ExampleSolveWithTrace() {
	g := stencilivc.MustGrid2D(64, 64)
	for v := range g.W {
		g.W[v] = int64(v%7) + 1
	}

	_, tr, err := SolveWithTrace(stencilivc.BDP, g, nil)
	if err != nil {
		panic(err)
	}

	// The heaviest of the top-3 spans is the solve itself; the other two
	// are the phases it contains.
	top := tr.Top(3)
	fmt.Println("heaviest span:", top[0].Name)
	var phases []string
	for _, sp := range top[1:] {
		phases = append(phases, sp.Name)
	}
	sort.Strings(phases)
	fmt.Println("phases:", phases)
	fmt.Println("spans recorded:", tr.Len())
	// Output:
	// heaviest span: solve:BDP
	// phases: [BDP/decompose BDP/post]
	// spans recorded: 3
}
