// Flocking: parallelize a bird-flocking (boids) simulation with interval
// coloring, one of the applications the paper's introduction motivates
// (Reynolds' boids, reference [3]).
//
// The world is split into a grid of cells at least twice the interaction
// radius wide, so a cell's boids only interact with the 8 neighboring
// cells: the conflict graph is a 9-pt stencil whose cell weights are boid
// counts. Each step colors the stencil and runs cell updates on a worker
// pool honoring the induced dependency DAG. Updates happen in place
// (Gauss-Seidel style): a cell writes its own boids while neighbor cells
// read them, so the coloring is exactly what makes the parallel step
// race-free — two conflicting cells never run concurrently.
//
// Run with:
//
//	go run ./examples/flocking
package main

import (
	"container/heap"
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"stencilivc"
)

const (
	worldSize = 100.0
	radius    = 2.5 // interaction radius; cells must be >= 2*radius wide
	cells     = 16  // 16 cells of width 6.25 >= 5.0: 9-pt conflicts only
	numBoids  = 4000
	steps     = 10
)

type boid struct {
	x, y, vx, vy float64
}

func main() {
	rng := rand.New(rand.NewSource(7))
	boids := make([]boid, numBoids)
	for i := range boids {
		boids[i] = boid{
			x: rng.Float64() * worldSize, y: rng.Float64() * worldSize,
			vx: rng.NormFloat64(), vy: rng.NormFloat64(),
		}
	}

	workers := runtime.NumCPU()
	fmt.Printf("boids: %d, grid: %dx%d cells, %d workers\n", numBoids, cells, cells, workers)

	var coloring stencilivc.Coloring
	for step := 0; step < steps; step++ {
		// Bin the boids into cells.
		cellBoids := make([][]int, cells*cells)
		g := stencilivc.MustGrid2D(cells, cells)
		for i, b := range boids {
			c := cellOf(b.x, b.y)
			cellBoids[c] = append(cellBoids[c], i)
			g.W[c]++
		}

		// First step: color from scratch. Later steps: the weights only
		// shifted a little, so incrementally repair the previous schedule
		// instead of recoloring everything.
		moved := 0
		if step == 0 {
			var err error
			coloring, err = stencilivc.Solve2D(stencilivc.BDP, g)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			moved = stencilivc.RepairColoring(g, coloring)
		}
		dag, err := stencilivc.TaskDAG(g, coloring)
		if err != nil {
			log.Fatal(err)
		}

		runDAG(dag, workers, func(cell int) {
			updateCell(boids, cellBoids, cell)
		})

		if sim, err := stencilivc.Simulate(dag, workers); err == nil {
			fmt.Printf("step %2d: %3d colors (%3d cells recolored), makespan %5d vs sequential %5d (%.1fx)\n",
				step, coloring.MaxColor(g), moved, sim.Makespan, dag.TotalWork(),
				float64(dag.TotalWork())/float64(max(sim.Makespan, 1)))
		}
	}
	// Flock coherence: mean speed should remain finite and positive.
	var speed float64
	for _, b := range boids {
		speed += math.Hypot(b.vx, b.vy)
	}
	fmt.Printf("final mean speed: %.3f\n", speed/float64(len(boids)))
}

func cellOf(x, y float64) int {
	i := int(x / worldSize * cells)
	j := int(y / worldSize * cells)
	i = min(max(i, 0), cells-1)
	j = min(max(j, 0), cells-1)
	return j*cells + i
}

// updateCell applies cohesion/alignment/separation against boids within
// the radius, reading own and neighbor cells and writing its own boids in
// place — the read/write overlap the coloring serializes.
func updateCell(cur []boid, cellBoids [][]int, cell int) {
	ci, cj := cell%cells, cell/cells
	for _, bi := range cellBoids[cell] {
		b := cur[bi]
		var cx, cy, ax, ay, sx, sy float64
		n := 0
		for dj := -1; dj <= 1; dj++ {
			for di := -1; di <= 1; di++ {
				ni, nj := ci+di, cj+dj
				if ni < 0 || ni >= cells || nj < 0 || nj >= cells {
					continue
				}
				for _, oi := range cellBoids[nj*cells+ni] {
					if oi == bi {
						continue
					}
					o := cur[oi]
					dx, dy := o.x-b.x, o.y-b.y
					if d := math.Hypot(dx, dy); d < radius && d > 0 {
						cx += o.x
						cy += o.y
						ax += o.vx
						ay += o.vy
						sx -= dx / d
						sy -= dy / d
						n++
					}
				}
			}
		}
		if n > 0 {
			fn := float64(n)
			b.vx += 0.01*(cx/fn-b.x) + 0.05*(ax/fn-b.vx) + 0.05*sx
			b.vy += 0.01*(cy/fn-b.y) + 0.05*(ay/fn-b.vy) + 0.05*sy
		}
		if sp := math.Hypot(b.vx, b.vy); sp > 2 {
			b.vx, b.vy = b.vx/sp*2, b.vy/sp*2
		}
		b.x = math.Mod(b.x+b.vx+worldSize, worldSize)
		b.y = math.Mod(b.y+b.vy+worldSize, worldSize)
		cur[bi] = b
	}
}

// runDAG executes the task DAG on a goroutine pool, releasing each task
// when its lower-colored neighbors finish (the same executor pattern the
// STKDE application uses).
func runDAG(d *stencilivc.DAG, workers int, task func(int)) {
	n := d.Len()
	tasks := make(chan int)
	doneCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for t := range tasks {
				task(t)
				doneCh <- t
			}
		}()
	}
	indeg := append([]int32{}, d.Preds...)
	ready := &intHeap{prio: d.Priority}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.Push(ready, v)
		}
	}
	outstanding, finished := 0, 0
	for finished < n {
		for ready.Len() > 0 && outstanding < workers {
			tasks <- heap.Pop(ready).(int)
			outstanding++
		}
		t := <-doneCh
		outstanding--
		finished++
		for _, u := range d.Succs[t] {
			indeg[u]--
			if indeg[u] == 0 {
				heap.Push(ready, int(u))
			}
		}
	}
	close(tasks)
	wg.Wait()
}

type intHeap struct {
	prio  []int64
	items []int
}

func (h *intHeap) Len() int { return len(h.items) }
func (h *intHeap) Less(a, b int) bool {
	va, vb := h.items[a], h.items[b]
	if h.prio[va] != h.prio[vb] {
		return h.prio[va] < h.prio[vb]
	}
	return va < vb
}
func (h *intHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *intHeap) Push(x any)    { h.items = append(h.items, x.(int)) }
func (h *intHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}
