// STKDE: run the space-time kernel density estimation application of
// Section VII end to end — generate events, partition them into boxes,
// color the 27-pt stencil of box conflicts, and execute the kernel
// computation in parallel driven by the coloring.
//
// Run with:
//
//	go run ./examples/stkde
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"time"

	"stencilivc"
)

func main() {
	// Synthetic disease outbreak: two spatial clusters flaring at
	// different times over a 64x64x64-unit space-time volume.
	rng := rand.New(rand.NewSource(11))
	bounds := stencilivc.Bounds{MinX: 0, MaxX: 64, MinY: 0, MaxY: 64, MinT: 0, MaxT: 64}
	var points []stencilivc.Point
	for i := 0; i < 6000; i++ {
		cx, cy, ct := 20.0, 20.0, 16.0
		if i%3 == 0 {
			cx, cy, ct = 44.0, 40.0, 44.0
		}
		points = append(points, stencilivc.Point{
			X: clamp(cx+rng.NormFloat64()*5, 0, 64),
			Y: clamp(cy+rng.NormFloat64()*5, 0, 64),
			T: clamp(ct+rng.NormFloat64()*8, 0, 64),
		})
	}

	// 8x8x8 boxes of 8 units each >= 2 * bandwidth 3.0.
	app, err := stencilivc.NewSTKDE(points, bounds, 64, 64, 64, 8, 8, 8, 3.0, 3.0)
	if err != nil {
		log.Fatal(err)
	}

	g := app.BoxGrid()
	fmt.Printf("events: %d, box grid: %dx%dx%d (27-pt stencil), lower bound %d colors\n",
		len(points), g.X, g.Y, g.Z, stencilivc.LowerBound3D(g))

	t0 := time.Now()
	seq := app.Sequential()
	seqTime := time.Since(t0)
	fmt.Printf("sequential: %v\n\n", seqTime)

	workers := runtime.NumCPU()
	for _, alg := range stencilivc.Algorithms() {
		c, err := stencilivc.Solve3D(alg, g)
		if err != nil {
			log.Fatal(err)
		}
		t0 = time.Now()
		par, err := app.Parallel(c, workers)
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		fmt.Printf("%-4s colors=%-6d parallel(%d workers)=%v  speedup=%.2fx  maxdiff=%.2e\n",
			alg, c.MaxColor(g), workers, dt,
			seqTime.Seconds()/dt.Seconds(), maxDiff(seq, par))
	}
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		m = math.Max(m, math.Abs(a[i]-b[i]))
	}
	return m
}

func clamp(v, lo, hi float64) float64 { return math.Min(math.Max(v, lo), hi) }
