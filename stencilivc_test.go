package stencilivc

import (
	"bytes"
	"math/rand"
	"testing"
)

func random2D(rng *rand.Rand, x, y int) *Grid2D {
	g := MustGrid2D(x, y)
	for v := range g.W {
		g.W[v] = rng.Int63n(10)
	}
	return g
}

func TestSolve2DAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := random2D(rng, 6, 5)
	lb := LowerBound2D(g)
	for _, alg := range Algorithms() {
		c, err := Solve2D(alg, g)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := c.Validate(g); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if c.MaxColor(g) < lb {
			t.Fatalf("%s beat the lower bound", alg)
		}
	}
}

func TestSolve3DAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := MustGrid3D(3, 3, 3)
	for v := range g.W {
		g.W[v] = rng.Int63n(10)
	}
	lb := LowerBound3D(g)
	for _, alg := range Algorithms() {
		c, err := Solve3D(alg, g)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := c.Validate(g); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if c.MaxColor(g) < lb {
			t.Fatalf("%s beat the lower bound", alg)
		}
	}
}

func TestBest2DPicksMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := random2D(rng, 5, 5)
	best, alg, err := Best2D(g)
	if err != nil {
		t.Fatal(err)
	}
	if alg == "" {
		t.Fatal("no winning algorithm")
	}
	bestVal := best.MaxColor(g)
	for _, a := range Algorithms() {
		c, err := Solve2D(a, g)
		if err != nil {
			t.Fatal(err)
		}
		if c.MaxColor(g) < bestVal {
			t.Fatalf("%s (%d) beats reported best %s (%d)", a, c.MaxColor(g), alg, bestVal)
		}
	}
}

func TestBest3D(t *testing.T) {
	g := MustGrid3D(2, 2, 2)
	for v := range g.W {
		g.W[v] = 2
	}
	best, _, err := Best3D(g)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform K8: optimum is 16.
	if best.MaxColor(g) != 16 {
		t.Fatalf("best = %d, want 16", best.MaxColor(g))
	}
}

func TestOptimal2DProvesSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := random2D(rng, 3, 3)
	res := Optimal2D(g, 500_000)
	if !res.Optimal {
		t.Fatal("3x3 not solved optimally")
	}
	if err := res.Coloring.Validate(g); err != nil {
		t.Fatal(err)
	}
	best, _, err := Best2D(g)
	if err != nil {
		t.Fatal(err)
	}
	if best.MaxColor(g) < res.MaxColor {
		t.Fatalf("heuristic %d beats proven optimum %d", best.MaxColor(g), res.MaxColor)
	}
}

func TestOptimal3DSmall(t *testing.T) {
	g := MustGrid3D(2, 2, 2)
	for v := range g.W {
		g.W[v] = int64(v % 3)
	}
	res := Optimal3D(g, 500_000)
	if !res.Optimal {
		t.Fatal("2x2x2 not solved optimally")
	}
	if res.MaxColor != LowerBound3D(g) {
		// The K8 bound is the whole-grid clique sum here, hence tight.
		t.Fatalf("optimum %d != K8 bound %d", res.MaxColor, LowerBound3D(g))
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := random2D(rng, 4, 3)
	var buf bytes.Buffer
	if err := WriteInstance2D(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, g3, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g3 != nil || g2.X != 4 || g2.Y != 3 {
		t.Fatal("round trip mangled the instance")
	}
	g3d := MustGrid3D(2, 2, 2)
	g3d.W[3] = 9
	buf.Reset()
	if err := WriteInstance3D(&buf, g3d); err != nil {
		t.Fatal(err)
	}
	_, back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W[3] != 9 {
		t.Fatal("3D round trip lost weights")
	}
}

func TestTaskDAGAndSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := random2D(rng, 4, 4)
	c, err := Solve2D(BDP, g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := TaskDAG(g, c)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Simulate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := Simulate(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s4.Makespan > s1.Makespan {
		t.Fatalf("more workers slower: %d > %d", s4.Makespan, s1.Makespan)
	}
	if s4.Makespan < d.CriticalPath() {
		t.Fatalf("makespan below critical path")
	}
}

func TestFromWeightsValidation(t *testing.T) {
	if _, err := FromWeights2D(2, 2, []int64{1}); err == nil {
		t.Error("short 2D weights accepted")
	}
	if _, err := FromWeights3D(2, 2, 2, make([]int64, 7)); err == nil {
		t.Error("short 3D weights accepted")
	}
	if _, err := NewGrid2D(0, 1); err == nil {
		t.Error("bad dims accepted")
	}
	if _, err := NewGrid3D(1, 0, 1); err == nil {
		t.Error("bad 3D dims accepted")
	}
}
