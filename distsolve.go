// Distributed-solve surface: the fault-tolerant sharded solver of
// internal/distsolve, re-exported for users of the public API. The
// solver splits one stencil across N simulated nodes, reconciles shard
// boundaries with a retrying halo-exchange protocol, survives seeded
// message loss, duplication, delay, and shard crashes, and always
// returns the exact bytes of the sequential greedy over the same
// global order. DESIGN.md §16 specifies the protocol.

package stencilivc

import (
	"stencilivc/internal/distsolve"
	"stencilivc/internal/parallel"
)

type (
	// DistConfig tunes the distributed sharded solver (shard count,
	// global order, round/retry budgets, chaos delay, transport
	// override). The zero value is a valid default configuration.
	DistConfig = distsolve.Config
	// DistOrder is the global visit order of a distributed solve.
	DistOrder = parallel.Order
)

// The distributed solver's global visit orders.
const (
	// DistOrderLine sweeps line by line (GLL order).
	DistOrderLine = parallel.OrderLine
	// DistOrderWeightDesc sweeps by non-increasing weight (GLF order).
	DistOrderWeightDesc = parallel.OrderWeightDesc
)

// DistSolve colors s on cfg.Shards simulated nodes with the
// fault-tolerant halo-exchange protocol. The result is byte-identical
// to the sequential greedy over the same order — on fault-free runs and
// under injected storms alike.
func DistSolve(s Stencil, cfg DistConfig, opts *SolveOptions) (Coloring, error) {
	return distsolve.Solve(s, cfg, opts)
}
