// Package stencilivc is a Go implementation of interval vertex coloring
// for 9-pt 2D and 27-pt 3D stencil graphs, reproducing Durrman & Saule,
// "Coloring the Vertices of 9-pt and 27-pt Stencils with Intervals"
// (IPPS 2022).
//
// Each vertex v of a weighted stencil receives a half-open interval of
// colors [start(v), start(v)+w(v)); neighboring vertices' intervals must
// be disjoint, and the objective is to minimize the largest color used
// (maxcolor). The model schedules grid-partitioned computations where a
// task's weight is its expected runtime: the coloring is a conflict-free
// schedule whose maxcolor is the critical-path length.
//
// # Quick start
//
//	g := stencilivc.MustGrid2D(4, 4)
//	for v := range g.W {
//		g.W[v] = int64(v % 5)
//	}
//	c, err := stencilivc.Solve2D(stencilivc.BDP, g)
//	if err != nil { ... }
//	fmt.Println("colors:", c.MaxColor(g), "lower bound:", stencilivc.LowerBound2D(g))
//
// The seven algorithms of the paper are available (GLL, GZO, GLF, GKF,
// SGK, BD, BDP); BD is a proven 2-approximation in 2D and 4-approximation
// in 3D. Exact solving, scheduling, and the STKDE demo application live
// behind Optimal2D/Optimal3D, TaskDAG/Simulate, and the cmd/ and examples/
// trees.
package stencilivc

import (
	"io"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/exact"
	"stencilivc/internal/grid"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/sched"
)

// Core types, re-exported for users of the public API.
type (
	// Graph is the weighted-graph view all algorithms accept.
	Graph = core.Graph
	// Coloring assigns each vertex its interval start.
	Coloring = core.Coloring
	// Interval is a half-open interval of colors.
	Interval = core.Interval
	// Grid2D is an X×Y 9-pt stencil instance.
	Grid2D = grid.Grid2D
	// Grid3D is an X×Y×Z 27-pt stencil instance.
	Grid3D = grid.Grid3D
	// Stencil is the dimension-generic stencil view: both *Grid2D and
	// *Grid3D satisfy it, and the Solve/Best/Portfolio entry points
	// accept it directly.
	Stencil = grid.Stencil
	// Algorithm names one of the paper's heuristics.
	Algorithm = heuristics.Algorithm
	// SolveOptions carries a context.Context (cancellation, polled at
	// line/block granularity), a Parallelism knob for portfolio solves,
	// and an optional Stats sink. A nil *SolveOptions is always valid.
	SolveOptions = core.SolveOptions
	// Stats accumulates placements, probes, and per-phase wall times of a
	// solve; safe for concurrent use.
	Stats = core.Stats
	// PhaseTime is one named phase's aggregated wall time inside Stats.
	PhaseTime = core.PhaseTime
	// AlgorithmInfo describes one registered algorithm.
	AlgorithmInfo = heuristics.Descriptor
	// DAG is the task dependency graph induced by a coloring.
	DAG = sched.DAG
	// Schedule is a simulated parallel execution of a DAG.
	Schedule = sched.Schedule
	// ExactResult reports an exact optimization attempt.
	ExactResult = exact.Result
)

// The algorithms evaluated in the paper (Section V).
const (
	GLL = heuristics.GLL // Greedy Line-by-Line
	GZO = heuristics.GZO // Greedy Z-Order
	GLF = heuristics.GLF // Greedy Largest First
	GKF = heuristics.GKF // Greedy Largest Clique First
	SGK = heuristics.SGK // Smart Greedy Largest Clique First
	BD  = heuristics.BD  // Bipartite Decomposition (2-approx 2D / 4-approx 3D)
	BDP = heuristics.BDP // Bipartite Decomposition + Post optimization

	// BDL is an extension beyond the paper: per-layer BDP with a global
	// post pass (3D only, not part of Algorithms()).
	BDL = heuristics.BDL

	// PGLL and PGLF are extensions beyond the paper: the tile-parallel
	// speculative greedy solvers of internal/parallel, with tile-local
	// line-by-line and largest-first orders. They honor
	// SolveOptions.Parallelism as the tile-worker count, so -par (and
	// Parallelism > 1) accelerates a single solve, not just the
	// portfolio. Not part of Algorithms().
	PGLL = heuristics.PGLL
	PGLF = heuristics.PGLF
)

// Algorithms returns all seven algorithm names in the paper's order.
func Algorithms() []Algorithm { return heuristics.All() }

// AlgorithmRegistry returns every registered algorithm descriptor (the
// paper's seven plus extensions such as BDL) sorted by paper order. The
// registry is the single dispatch table behind Solve, Best, Portfolio,
// and the cmd tools.
func AlgorithmRegistry() []AlgorithmInfo { return heuristics.Descriptors() }

// NewGrid2D allocates a zero-weight X×Y 9-pt stencil instance.
func NewGrid2D(x, y int) (*Grid2D, error) { return grid.NewGrid2D(x, y) }

// MustGrid2D is NewGrid2D that panics on invalid dimensions.
func MustGrid2D(x, y int) *Grid2D { return grid.MustGrid2D(x, y) }

// NewGrid3D allocates a zero-weight X×Y×Z 27-pt stencil instance.
func NewGrid3D(x, y, z int) (*Grid3D, error) { return grid.NewGrid3D(x, y, z) }

// MustGrid3D is NewGrid3D that panics on invalid dimensions.
func MustGrid3D(x, y, z int) *Grid3D { return grid.MustGrid3D(x, y, z) }

// FromWeights2D builds a 2D instance from row-major weights.
func FromWeights2D(x, y int, weights []int64) (*Grid2D, error) {
	return grid.FromWeights2D(x, y, weights)
}

// FromWeights3D builds a 3D instance from x-fastest weights.
func FromWeights3D(x, y, z int, weights []int64) (*Grid3D, error) {
	return grid.FromWeights3D(x, y, z, weights)
}

// ReadInstance parses the ivc2d/ivc3d text format; exactly one of the
// returned grids is non-nil.
func ReadInstance(r io.Reader) (*Grid2D, *Grid3D, error) { return grid.Read(r) }

// WriteInstance2D encodes a 2D instance in the text format.
func WriteInstance2D(w io.Writer, g *Grid2D) error { return grid.Write2D(w, g) }

// WriteInstance3D encodes a 3D instance in the text format.
func WriteInstance3D(w io.Writer, g *Grid3D) error { return grid.Write3D(w, g) }

// Solve colors a stencil instance of either dimensionality with the
// named algorithm, honoring opts (context cancellation, stats). The
// returned coloring is always complete and valid; on error (unknown
// algorithm, dimension mismatch, canceled context) no coloring is
// returned. A nil opts means background context, sequential, no stats.
func Solve(alg Algorithm, s Stencil, opts *SolveOptions) (Coloring, error) {
	return heuristics.Run(alg, s, opts)
}

// Best runs the paper's full algorithm portfolio on s and returns the
// coloring with the smallest maxcolor together with the winning
// algorithm's name. With opts.Parallelism > 1 the portfolio runs
// concurrently; the result is byte-identical to the sequential run (ties
// break by lowest maxcolor, then paper order).
func Best(s Stencil, opts *SolveOptions) (Coloring, Algorithm, error) {
	return heuristics.Best(s, opts)
}

// Portfolio is Best over a caller-chosen algorithm list; ties break by
// position in algs.
func Portfolio(s Stencil, algs []Algorithm, opts *SolveOptions) (Coloring, Algorithm, error) {
	return heuristics.Portfolio(s, algs, opts)
}

// Solve2D colors a 9-pt stencil instance with the named algorithm. It is
// a compatibility wrapper over Solve with default options.
func Solve2D(alg Algorithm, g *Grid2D) (Coloring, error) { return Solve(alg, g, nil) }

// Solve3D colors a 27-pt stencil instance with the named algorithm.
func Solve3D(alg Algorithm, g *Grid3D) (Coloring, error) { return Solve(alg, g, nil) }

// Best2D runs every algorithm and returns the coloring with the smallest
// maxcolor together with the winning algorithm's name. It is a
// compatibility wrapper over Best with default options.
func Best2D(g *Grid2D) (Coloring, Algorithm, error) { return Best(g, nil) }

// Best3D is Best2D for 27-pt stencils.
func Best3D(g *Grid3D) (Coloring, Algorithm, error) { return Best(g, nil) }

// LowerBound2D returns the max-K4 clique lower bound (Section III-A); no
// valid coloring of g can use fewer colors.
func LowerBound2D(g *Grid2D) int64 { return bounds.MaxK4(g) }

// LowerBound3D returns the max-K8 clique lower bound.
func LowerBound3D(g *Grid3D) int64 { return bounds.MaxK8(g) }

// Optimal2D attempts to solve g exactly within nodeBudget search nodes
// (0 picks a default); Result.Optimal reports whether the optimum was
// proven.
func Optimal2D(g *Grid2D, nodeBudget int) ExactResult {
	return exact.Optimize(g, exact.OptimizeOptions{
		LowerBound: bounds.Combined2D(g, 100_000),
		NodeBudget: nodeBudget,
	})
}

// Optimal3D is Optimal2D for 27-pt stencils.
func Optimal3D(g *Grid3D, nodeBudget int) ExactResult {
	return exact.Optimize(g, exact.OptimizeOptions{
		LowerBound: bounds.Combined3D(g, 100_000),
		NodeBudget: nodeBudget,
	})
}

// TaskDAG orients the stencil's conflict edges by the coloring,
// producing the dependency DAG Section VII hands to the task runtime.
func TaskDAG(g Graph, c Coloring) (*DAG, error) { return sched.Build(g, c) }

// Simulate list-schedules a DAG on p processors deterministically.
func Simulate(d *DAG, p int) (*Schedule, error) { return sched.Simulate(d, p) }
