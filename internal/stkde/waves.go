package stkde

import (
	"fmt"
	"sync"

	"stencilivc/internal/sched"
)

// ParallelWaves executes the computation with the classic alternative to
// interval coloring: a distance-1 coloring of the box stencil, one color
// class per barrier-synchronized wave. Boxes within a class are pairwise
// non-conflicting, so the shared output needs no locks; the barriers are
// the cost interval coloring removes. Provided for ablation against
// Parallel.
func (a *App) ParallelWaves(workers int) ([]float64, error) {
	if workers < 1 {
		return nil, fmt.Errorf("stkde: need >= 1 worker, got %d", workers)
	}
	classes := sched.ColorClasses(a.BoxGrid())
	out := make([]float64, a.NumVoxels())
	for _, class := range classes {
		tasks := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for b := range tasks {
					a.processBox(b, out)
				}
			}()
		}
		for _, b := range class {
			tasks <- b
		}
		close(tasks)
		wg.Wait() // the barrier between waves
	}
	return out, nil
}
