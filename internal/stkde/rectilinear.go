package stkde

import (
	"fmt"
	"math"
	"sort"

	"stencilivc/internal/datasets"
	"stencilivc/internal/rectpart"
)

// NewRectilinear configures an STKDE computation over a non-uniform,
// rectilinear box partition given by interior cut coordinates per axis
// (the partitioning model of the paper's application setting, after
// Nicol). Every resulting box must still span at least twice the
// bandwidth on each axis, which keeps the conflict graph a 27-pt stencil.
func NewRectilinear(points []datasets.Point, bounds datasets.Bounds,
	vx, vy, vt int, cutsX, cutsY, cutsT []float64, bwS, bwT float64) (*App, error) {

	if !bounds.Valid() {
		return nil, fmt.Errorf("stkde: degenerate bounds")
	}
	if vx < 1 || vy < 1 || vt < 1 {
		return nil, fmt.Errorf("stkde: invalid voxel resolution %dx%dx%d", vx, vy, vt)
	}
	if bwS <= 0 || bwT <= 0 {
		return nil, fmt.Errorf("stkde: bandwidths must be positive")
	}
	ex, err := edgesFromCuts(cutsX, bounds.MinX, bounds.MaxX, 2*bwS)
	if err != nil {
		return nil, fmt.Errorf("stkde: x cuts: %w", err)
	}
	ey, err := edgesFromCuts(cutsY, bounds.MinY, bounds.MaxY, 2*bwS)
	if err != nil {
		return nil, fmt.Errorf("stkde: y cuts: %w", err)
	}
	et, err := edgesFromCuts(cutsT, bounds.MinT, bounds.MaxT, 2*bwT)
	if err != nil {
		return nil, fmt.Errorf("stkde: t cuts: %w", err)
	}
	a := &App{
		Points: points, Bounds: bounds,
		VX: vx, VY: vy, VT: vt,
		BX: len(ex) - 1, BY: len(ey) - 1, BT: len(et) - 1,
		BandwidthS: bwS, BandwidthT: bwT,
		edgesX: ex, edgesY: ey, edgesT: et,
	}
	a.binPoints()
	return a, nil
}

// NewBalanced builds an STKDE run whose box partition is load-balanced
// with Nicol's rectilinear refinement: the points are first histogrammed
// on a fine helper grid, Partition3D chooses the cuts, and the cuts are
// converted back to coordinates. The box shape constraint (>= twice the
// bandwidth) is enforced by bounding each axis's part count.
func NewBalanced(points []datasets.Point, bounds datasets.Bounds,
	vx, vy, vt, bx, by, bt int, bwS, bwT float64, refine int) (*App, error) {

	if bx < 1 || by < 1 || bt < 1 {
		return nil, fmt.Errorf("stkde: invalid box partition %dx%dx%d", bx, by, bt)
	}
	// Histogram on a helper grid fine enough to place cuts meaningfully
	// but coarse enough that each helper cell can host a cut boundary
	// without violating the 2*bandwidth constraint.
	hx := maxCells(bounds.SpanX(), 2*bwS)
	hy := maxCells(bounds.SpanY(), 2*bwS)
	ht := maxCells(bounds.SpanT(), 2*bwT)
	if bx > hx || by > hy || bt > ht {
		return nil, fmt.Errorf("stkde: %dx%dx%d boxes cannot each span twice the bandwidth", bx, by, bt)
	}
	hist, err := datasets.Voxelize3D(points, bounds, hx, hy, ht)
	if err != nil {
		return nil, err
	}
	cx, cy, ct, _, err := rectpart.Partition3D(hist, bx, by, bt, refine)
	if err != nil {
		return nil, err
	}
	toCoord := func(cuts []int, min, span float64, n int, minSpan float64) []float64 {
		out := make([]float64, len(cuts))
		for i, c := range cuts {
			out[i] = min + span*float64(c)/float64(n)
		}
		// The partitioner may leave empty parts (cuts on the boundary or
		// coinciding) on skewed loads; snap every cut into the feasible
		// band so each segment spans at least minSpan. Feasibility is
		// guaranteed because the part count was capped above.
		for i := range out {
			out[i] = math.Max(out[i], min+minSpan*float64(i+1))
		}
		for i := len(out) - 1; i >= 0; i-- {
			out[i] = math.Min(out[i], min+span-minSpan*float64(len(out)-i))
		}
		return out
	}
	return NewRectilinear(points, bounds, vx, vy, vt,
		toCoord(cx, bounds.MinX, bounds.SpanX(), hx, 2*bwS),
		toCoord(cy, bounds.MinY, bounds.SpanY(), hy, 2*bwS),
		toCoord(ct, bounds.MinT, bounds.SpanT(), ht, 2*bwT),
		bwS, bwT)
}

// maxCells returns how many cells of minimum width fit in span.
func maxCells(span, minWidth float64) int {
	n := int(span / minWidth)
	return max(n, 1)
}

// edgesFromCuts validates interior cuts and returns the full edge array
// [min, cuts..., max], requiring each segment to span at least minSpan.
func edgesFromCuts(cuts []float64, min, max, minSpan float64) ([]float64, error) {
	edges := make([]float64, 0, len(cuts)+2)
	edges = append(edges, min)
	for _, c := range cuts {
		if c <= min || c >= max {
			return nil, fmt.Errorf("cut %v outside (%v, %v)", c, min, max)
		}
		edges = append(edges, c)
	}
	edges = append(edges, max)
	if !sort.Float64sAreSorted(edges) {
		return nil, fmt.Errorf("cuts not increasing: %v", cuts)
	}
	for i := 0; i+1 < len(edges); i++ {
		if edges[i+1]-edges[i] < minSpan {
			return nil, fmt.Errorf("segment [%v, %v) narrower than %v",
				edges[i], edges[i+1], minSpan)
		}
	}
	return edges, nil
}
