package stkde

import (
	"math"
	"math/rand"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/datasets"
	"stencilivc/internal/heuristics"
)

func testBounds() datasets.Bounds {
	return datasets.Bounds{MinX: 0, MaxX: 16, MinY: 0, MaxY: 16, MinT: 0, MaxT: 16}
}

func randomPoints(rng *rand.Rand, n int, b datasets.Bounds) []datasets.Point {
	pts := make([]datasets.Point, n)
	for i := range pts {
		pts[i] = datasets.Point{
			X: b.MinX + rng.Float64()*b.SpanX(),
			Y: b.MinY + rng.Float64()*b.SpanY(),
			T: b.MinT + rng.Float64()*b.SpanT(),
		}
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	b := testBounds()
	pts := randomPoints(rand.New(rand.NewSource(1)), 10, b)
	if _, err := New(pts, b, 32, 32, 32, 4, 4, 4, 1.0, 1.0); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		f    func() (*App, error)
	}{
		{"box too small", func() (*App, error) { return New(pts, b, 32, 32, 32, 16, 4, 4, 1.0, 1.0) }},
		{"zero bandwidth", func() (*App, error) { return New(pts, b, 32, 32, 32, 4, 4, 4, 0, 1) }},
		{"bad voxels", func() (*App, error) { return New(pts, b, 0, 32, 32, 4, 4, 4, 1, 1) }},
		{"bad boxes", func() (*App, error) { return New(pts, b, 32, 32, 32, 4, 0, 4, 1, 1) }},
		{"bad bounds", func() (*App, error) { return New(pts, datasets.Bounds{}, 8, 8, 8, 2, 2, 2, 1, 1) }},
	}
	for _, tc := range cases {
		if _, err := tc.f(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestBoxGridWeightsArePointCounts(t *testing.T) {
	b := testBounds()
	pts := []datasets.Point{
		{X: 1, Y: 1, T: 1},    // box (0,0,0)
		{X: 1, Y: 1, T: 1.5},  // box (0,0,0)
		{X: 15, Y: 15, T: 15}, // box (3,3,3)
	}
	app, err := New(pts, b, 16, 16, 16, 4, 4, 4, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	g := app.BoxGrid()
	if g.At(0, 0, 0) != 2 {
		t.Errorf("box(0,0,0) weight = %d", g.At(0, 0, 0))
	}
	if g.At(3, 3, 3) != 1 {
		t.Errorf("box(3,3,3) weight = %d", g.At(3, 3, 3))
	}
	if core.TotalWeight(g) != 3 {
		t.Errorf("total weight = %d", core.TotalWeight(g))
	}
}

func TestSinglePointKernelShape(t *testing.T) {
	b := testBounds()
	pts := []datasets.Point{{X: 8, Y: 8, T: 8}}
	app, err := New(pts, b, 16, 16, 16, 4, 4, 4, 2.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	out := app.Sequential()
	// Voxel centers at 7.5 and 8.5 flank the point symmetrically.
	at := func(i, j, k int) float64 { return out[(k*16+j)*16+i] }
	if at(7, 7, 7) <= 0 {
		t.Error("no density next to the event")
	}
	if math.Abs(at(7, 7, 7)-at(8, 8, 8)) > 1e-12 {
		t.Errorf("kernel asymmetric: %v vs %v", at(7, 7, 7), at(8, 8, 8))
	}
	// Beyond the bandwidth in any dimension: exactly zero.
	if at(3, 7, 7) != 0 || at(7, 12, 7) != 0 || at(7, 7, 3) != 0 {
		t.Error("density leaked beyond the bandwidth")
	}
}

func TestSequentialMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := testBounds()
	app, err := New(randomPoints(rng, 500, b), b, 24, 24, 24, 4, 4, 4, 1.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := app.Sequential()
	g := app.BoxGrid()
	for _, alg := range heuristics.All() {
		c, err := heuristics.Run3D(alg, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := app.Parallel(c, workers)
			if err != nil {
				t.Fatalf("%s P=%d: %v", alg, workers, err)
			}
			for v := range want {
				// Summation order across boxes may differ; tolerance only.
				if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
					t.Fatalf("%s P=%d voxel %d: %v != %v", alg, workers, v, got[v], want[v])
				}
			}
		}
	}
}

func TestParallelRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := testBounds()
	app, err := New(randomPoints(rng, 50, b), b, 8, 8, 8, 2, 2, 2, 2.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	g := app.BoxGrid()
	c, err := heuristics.Run3D(heuristics.GLL, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Parallel(c, 0); err == nil {
		t.Error("0 workers accepted")
	}
	bad := core.NewColoring(g.Len()) // uncolored
	if _, err := app.Parallel(bad, 2); err == nil {
		t.Error("invalid coloring accepted")
	}
}

func TestTotalMassMatchesPointCount(t *testing.T) {
	// With a fine voxel grid, the discretized Epanechnikov product kernel
	// integrates to ~1 per event, so sum(density)*voxelVolume ~ N.
	rng := rand.New(rand.NewSource(4))
	b := testBounds()
	// Keep points away from the border so no kernel mass is clipped.
	inner := datasets.Bounds{MinX: 4, MaxX: 12, MinY: 4, MaxY: 12, MinT: 4, MaxT: 12}
	app, err := New(randomPoints(rng, 40, inner), b, 64, 64, 64, 4, 4, 4, 2.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	out := app.Sequential()
	var sum float64
	for _, v := range out {
		sum += v
	}
	voxVol := (b.SpanX() / 64) * (b.SpanY() / 64) * (b.SpanT() / 64)
	mass := sum * voxVol / (2.0 * 2.0 * 2.0) // kernel scale = bandwidth per dim
	if math.Abs(mass-40) > 40*0.05 {
		t.Errorf("total mass %v, want ~40", mass)
	}
}
