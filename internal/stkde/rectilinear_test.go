package stkde

import (
	"math"
	"math/rand"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/datasets"
	"stencilivc/internal/heuristics"
)

func TestNewRectilinearValidation(t *testing.T) {
	b := testBounds() // 16-unit cube
	pts := randomPoints(rand.New(rand.NewSource(20)), 50, b)
	// Valid: cuts at 6 and 11 with bandwidth 1 (min segment 5 >= 2).
	if _, err := NewRectilinear(pts, b, 16, 16, 16,
		[]float64{6, 11}, []float64{8}, nil, 1.0, 1.0); err != nil {
		t.Fatalf("valid rectilinear config rejected: %v", err)
	}
	cases := []struct {
		name       string
		cx, cy, ct []float64
		bwS, bwT   float64
	}{
		{"segment too narrow", []float64{1}, nil, nil, 1.0, 1.0},
		{"cut out of range", []float64{20}, nil, nil, 1.0, 1.0},
		{"cuts decreasing", []float64{10, 5}, nil, nil, 1.0, 1.0},
		{"zero bandwidth", []float64{8}, nil, nil, 0, 1.0},
	}
	for _, tc := range cases {
		if _, err := NewRectilinear(pts, b, 8, 8, 8, tc.cx, tc.cy, tc.ct, tc.bwS, tc.bwT); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestRectilinearBinning(t *testing.T) {
	b := testBounds()
	pts := []datasets.Point{
		{X: 1, Y: 1, T: 1}, // left of the x cut
		{X: 7, Y: 1, T: 1}, // right of the x cut at 6
		{X: 6, Y: 1, T: 1}, // exactly on the cut -> right box
	}
	app, err := NewRectilinear(pts, b, 8, 8, 8, []float64{6}, nil, nil, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	g := app.BoxGrid()
	if g.X != 2 || g.Y != 1 || g.Z != 1 {
		t.Fatalf("box grid %dx%dx%d, want 2x1x1", g.X, g.Y, g.Z)
	}
	if g.At(0, 0, 0) != 1 {
		t.Errorf("left box weight = %d, want 1", g.At(0, 0, 0))
	}
	if g.At(1, 0, 0) != 2 {
		t.Errorf("right box weight = %d, want 2", g.At(1, 0, 0))
	}
}

func TestRectilinearParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := testBounds()
	app, err := NewRectilinear(randomPoints(rng, 300, b), b, 20, 20, 20,
		[]float64{5, 11}, []float64{7}, []float64{4, 9}, 1.2, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	want := app.Sequential()
	g := app.BoxGrid()
	c, err := heuristics.Run3D(heuristics.BDP, g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := app.Parallel(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("voxel %d: %v != %v", v, got[v], want[v])
		}
	}
}

func TestNewBalancedImprovesBottleneck(t *testing.T) {
	// Heavily skewed points: everything in one corner. A balanced
	// partition must reduce the heaviest box weight vs the uniform one.
	rng := rand.New(rand.NewSource(22))
	b := testBounds()
	pts := make([]datasets.Point, 400)
	for i := range pts {
		pts[i] = datasets.Point{
			X: rng.Float64() * 4, Y: rng.Float64() * 4, T: rng.Float64() * 4,
		}
	}
	uniform, err := New(pts, b, 16, 16, 16, 4, 4, 4, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := NewBalanced(pts, b, 16, 16, 16, 4, 4, 4, 1.0, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	ub := core.MaxWeight(uniform.BoxGrid())
	bb := core.MaxWeight(balanced.BoxGrid())
	if bb >= ub {
		t.Fatalf("balanced bottleneck %d not below uniform %d", bb, ub)
	}
	// The coloring bound follows the bottleneck down.
	if total := core.TotalWeight(balanced.BoxGrid()); total != int64(len(pts)) {
		t.Fatalf("balanced binning lost points: %d of %d", total, len(pts))
	}
}

func TestNewBalancedRespectsBandwidthConstraint(t *testing.T) {
	b := testBounds()
	pts := randomPoints(rand.New(rand.NewSource(23)), 50, b)
	// 16-unit axis, bandwidth 2 -> at most 4 boxes of span >= 4.
	if _, err := NewBalanced(pts, b, 8, 8, 8, 5, 2, 2, 2.0, 2.0, 5); err == nil {
		t.Error("over-partitioned balanced config accepted")
	}
	app, err := NewBalanced(pts, b, 8, 8, 8, 4, 2, 2, 2.0, 2.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if app.BX != 4 || app.BY != 2 || app.BT != 2 {
		t.Fatalf("box dims %dx%dx%d", app.BX, app.BY, app.BT)
	}
}

func TestParallelWavesMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	b := testBounds()
	app, err := New(randomPoints(rng, 300, b), b, 20, 20, 20, 4, 4, 4, 1.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := app.Sequential()
	got, err := app.ParallelWaves(4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("voxel %d: %v != %v", v, got[v], want[v])
		}
	}
	if _, err := app.ParallelWaves(0); err == nil {
		t.Error("0 workers accepted")
	}
}
