package stkde

import (
	"container/heap"
	"fmt"
	"sync"

	"stencilivc/internal/core"
	"stencilivc/internal/sched"
)

// Parallel executes the STKDE computation on `workers` goroutines,
// honoring the dependency DAG induced by the coloring: box tasks are
// released to the pool in increasing color-interval start with
// dependencies on lower-colored stencil neighbors — the Go analogue of
// the paper's OpenMP tasking integration. Because conflicting boxes never
// run concurrently and a box's writes stay within its bandwidth halo, the
// shared output field needs no locking.
func (a *App) Parallel(c core.Coloring, workers int) ([]float64, error) {
	if workers < 1 {
		return nil, fmt.Errorf("stkde: need >= 1 worker, got %d", workers)
	}
	g := a.BoxGrid()
	d, err := sched.Build(g, c)
	if err != nil {
		return nil, fmt.Errorf("stkde: %w", err)
	}
	out := make([]float64, a.NumVoxels())
	n := d.Len()

	tasks := make(chan int)
	completions := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for b := range tasks {
				a.processBox(b, out)
				completions <- b
			}
		}()
	}

	// Dispatcher: release ready tasks in (priority, id) order, at most
	// `workers` outstanding so a send never blocks behind a busy pool
	// longer than necessary.
	ready := &boxHeap{prio: d.Priority}
	indeg := append([]int32{}, d.Preds...)
	for b := 0; b < n; b++ {
		if indeg[b] == 0 {
			heap.Push(ready, b)
		}
	}
	outstanding, done := 0, 0
	for done < n {
		for ready.Len() > 0 && outstanding < workers {
			tasks <- heap.Pop(ready).(int)
			outstanding++
		}
		if outstanding == 0 {
			close(tasks)
			wg.Wait()
			return nil, fmt.Errorf("stkde: scheduler deadlock with %d of %d boxes done", done, n)
		}
		b := <-completions
		outstanding--
		done++
		for _, u := range d.Succs[b] {
			indeg[u]--
			if indeg[u] == 0 {
				heap.Push(ready, int(u))
			}
		}
	}
	close(tasks)
	wg.Wait()
	return out, nil
}

type boxHeap struct {
	prio  []int64
	items []int
}

func (h *boxHeap) Len() int { return len(h.items) }
func (h *boxHeap) Less(a, b int) bool {
	va, vb := h.items[a], h.items[b]
	if h.prio[va] != h.prio[vb] {
		return h.prio[va] < h.prio[vb]
	}
	return va < vb
}
func (h *boxHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *boxHeap) Push(x any)    { h.items = append(h.items, x.(int)) }
func (h *boxHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}
