// Package stkde implements the Space-Time Kernel Density Estimation
// application of Section VII (after Saule et al., ICPP 2017): events in
// (x, y, t) contribute an Epanechnikov product kernel to every voxel
// within a spatial/temporal bandwidth. The space is partitioned into
// boxes no smaller than twice the bandwidth; each box is one sequential
// task, neighboring boxes conflict, and the conflict graph is exactly a
// 27-pt stencil whose task weights are the boxes' point counts — the
// 3DS-IVC instance this module's coloring algorithms solve. A coloring
// drives the real goroutine-pool executor in parallel.go.
package stkde

import (
	"fmt"
	"math"

	"stencilivc/internal/datasets"
	"stencilivc/internal/grid"
)

// App is a configured STKDE computation.
type App struct {
	Points []datasets.Point
	Bounds datasets.Bounds

	// Voxel resolution of the output density field.
	VX, VY, VT int
	// Box partition (the task grid); box extents must be at least twice
	// the bandwidth so only neighboring boxes conflict.
	BX, BY, BT int
	// Bandwidths: spatial (x and y) and temporal.
	BandwidthS, BandwidthT float64

	// Box edges per axis (len = count+1); uniform under New, arbitrary
	// rectilinear under NewRectilinear/NewBalanced.
	edgesX, edgesY, edgesT []float64

	boxPoints [][]int // per box, indices into Points
}

// New validates the configuration and pre-bins the points into boxes.
func New(points []datasets.Point, bounds datasets.Bounds,
	vx, vy, vt, bx, by, bt int, bwS, bwT float64) (*App, error) {

	if !bounds.Valid() {
		return nil, fmt.Errorf("stkde: degenerate bounds")
	}
	if vx < 1 || vy < 1 || vt < 1 {
		return nil, fmt.Errorf("stkde: invalid voxel resolution %dx%dx%d", vx, vy, vt)
	}
	if bx < 1 || by < 1 || bt < 1 {
		return nil, fmt.Errorf("stkde: invalid box partition %dx%dx%d", bx, by, bt)
	}
	if bwS <= 0 || bwT <= 0 {
		return nil, fmt.Errorf("stkde: bandwidths must be positive")
	}
	// The partition constraint of Section VII: a box must span at least
	// twice the bandwidth, so a box's writes (own extent + bandwidth halo)
	// can only overlap its 26 stencil neighbors.
	if bounds.SpanX()/float64(bx) < 2*bwS ||
		bounds.SpanY()/float64(by) < 2*bwS ||
		bounds.SpanT()/float64(bt) < 2*bwT {
		return nil, fmt.Errorf("stkde: boxes smaller than twice the bandwidth")
	}
	a := &App{
		Points: points, Bounds: bounds,
		VX: vx, VY: vy, VT: vt,
		BX: bx, BY: by, BT: bt,
		BandwidthS: bwS, BandwidthT: bwT,
		edgesX: uniformEdges(bounds.MinX, bounds.MaxX, bx),
		edgesY: uniformEdges(bounds.MinY, bounds.MaxY, by),
		edgesT: uniformEdges(bounds.MinT, bounds.MaxT, bt),
	}
	a.binPoints()
	return a, nil
}

func uniformEdges(min, max float64, n int) []float64 {
	edges := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		edges[i] = min + (max-min)*float64(i)/float64(n)
	}
	return edges
}

// binPoints assigns every in-bounds point to its box via the edge arrays.
func (a *App) binPoints() {
	a.boxPoints = make([][]int, a.BX*a.BY*a.BT)
	for pi, p := range a.Points {
		if !a.Bounds.Contains(p) {
			continue
		}
		i := binEdges(p.X, a.edgesX)
		j := binEdges(p.Y, a.edgesY)
		k := binEdges(p.T, a.edgesT)
		b := (k*a.BY+j)*a.BX + i
		a.boxPoints[b] = append(a.boxPoints[b], pi)
	}
}

// binEdges locates v among the edge boundaries: the result i satisfies
// edges[i] <= v < edges[i+1], clamped to the last box on the upper edge.
func binEdges(v float64, edges []float64) int {
	lo, hi := 0, len(edges)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v >= edges[mid] {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// BoxGrid returns the 27-pt stencil coloring instance of this run: the
// box partition with each box weighted by its point count.
func (a *App) BoxGrid() *grid.Grid3D {
	g := grid.MustGrid3D(a.BX, a.BY, a.BT)
	for b, pts := range a.boxPoints {
		g.W[b] = int64(len(pts))
	}
	return g
}

// NumVoxels returns the size of the output density field.
func (a *App) NumVoxels() int { return a.VX * a.VY * a.VT }

// Sequential computes the density field one box at a time, the reference
// result the parallel executor is checked against.
func (a *App) Sequential() []float64 {
	out := make([]float64, a.NumVoxels())
	for b := range a.boxPoints {
		a.processBox(b, out)
	}
	return out
}

// processBox scatters the kernel contributions of every point in box b.
// Writes stay within the bandwidth halo of the box, which is what makes
// coloring-driven parallelism race-free.
func (a *App) processBox(b int, out []float64) {
	vsx := a.Bounds.SpanX() / float64(a.VX)
	vsy := a.Bounds.SpanY() / float64(a.VY)
	vst := a.Bounds.SpanT() / float64(a.VT)
	for _, pi := range a.boxPoints[b] {
		p := a.Points[pi]
		iLo, iHi := voxelRange(p.X-a.BandwidthS, p.X+a.BandwidthS, a.Bounds.MinX, vsx, a.VX)
		jLo, jHi := voxelRange(p.Y-a.BandwidthS, p.Y+a.BandwidthS, a.Bounds.MinY, vsy, a.VY)
		kLo, kHi := voxelRange(p.T-a.BandwidthT, p.T+a.BandwidthT, a.Bounds.MinT, vst, a.VT)
		for k := kLo; k <= kHi; k++ {
			ct := a.Bounds.MinT + (float64(k)+0.5)*vst
			wt := epanechnikov((ct - p.T) / a.BandwidthT)
			if wt == 0 {
				continue
			}
			for j := jLo; j <= jHi; j++ {
				cy := a.Bounds.MinY + (float64(j)+0.5)*vsy
				wy := epanechnikov((cy - p.Y) / a.BandwidthS)
				if wy == 0 {
					continue
				}
				base := (k*a.VY + j) * a.VX
				for i := iLo; i <= iHi; i++ {
					cx := a.Bounds.MinX + (float64(i)+0.5)*vsx
					wx := epanechnikov((cx - p.X) / a.BandwidthS)
					if wx != 0 {
						out[base+i] += wx * wy * wt
					}
				}
			}
		}
	}
}

// voxelRange returns the inclusive voxel index range whose centers may
// fall inside [lo, hi].
func voxelRange(lo, hi, min, voxSize float64, n int) (int, int) {
	a := int(math.Floor((lo - min) / voxSize))
	b := int(math.Ceil((hi - min) / voxSize))
	if a < 0 {
		a = 0
	}
	if b > n-1 {
		b = n - 1
	}
	return a, b
}

// epanechnikov is the kernel K(u) = 0.75(1-u²) for |u| <= 1, else 0.
func epanechnikov(u float64) float64 {
	if u < -1 || u > 1 {
		return 0
	}
	return 0.75 * (1 - u*u)
}
