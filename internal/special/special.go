package special

import (
	"errors"
	"fmt"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// ColorClique colors a clique optimally by stacking the intervals in the
// given order; the optimum is the total weight (Section III-A). Θ(V).
func ColorClique(weights []int64) (starts []int64, maxcolor int64) {
	starts = make([]int64, len(weights))
	var cur int64
	for i, w := range weights {
		starts[i] = cur
		cur += w
	}
	return starts, cur
}

// ErrNotBipartite reports that a graph handed to ColorBipartite contains
// an odd cycle.
var ErrNotBipartite = errors.New("special: graph is not bipartite")

// Bipartition 2-colors g by BFS. side[v] is 0 or 1; connected components
// are rooted at their smallest vertex with side 0. Returns ErrNotBipartite
// when an odd cycle exists.
func Bipartition(g core.Graph) (side []uint8, err error) {
	const unseen = 2
	side = make([]uint8, g.Len())
	for v := range side {
		side[v] = unseen
	}
	queue := make([]int, 0, g.Len())
	var buf []int
	for root := 0; root < g.Len(); root++ {
		if side[root] != unseen {
			continue
		}
		side[root] = 0
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			buf = g.Neighbors(v, buf[:0])
			for _, u := range buf {
				switch side[u] {
				case unseen:
					side[u] = 1 - side[v]
					queue = append(queue, u)
				case side[v]:
					return nil, fmt.Errorf("%w: odd cycle through vertices %d and %d",
						ErrNotBipartite, v, u)
				}
			}
		}
	}
	return side, nil
}

// ColorBipartite colors a bipartite graph optimally (Section III-B):
// maxcolor* = max(max_v w(v), max_{(i,j) in E} w(i)+w(j)); side-A vertices
// start at 0 and side-B vertices end at maxcolor*. Θ(E). The max_v term
// covers isolated vertices, which belong to no edge.
func ColorBipartite(g core.Graph) (core.Coloring, int64, error) {
	side, err := Bipartition(g)
	if err != nil {
		return core.Coloring{}, 0, err
	}
	maxcolor := bounds.MaxPair(g)
	c := core.NewColoring(g.Len())
	for v := 0; v < g.Len(); v++ {
		if side[v] == 0 {
			c.Start[v] = 0
		} else {
			c.Start[v] = maxcolor - g.Weight(v)
		}
	}
	return c, maxcolor, nil
}

// ColorChain colors a path graph v0-v1-...-v(n-1) optimally: even indices
// start at 0, odd indices end at maxcolor* = max adjacent pair sum.
// This is the row/chain subroutine of the Bipartite Decomposition
// approximation (Section V-B). Θ(n).
func ColorChain(weights []int64) (starts []int64, maxcolor int64) {
	n := len(weights)
	starts = make([]int64, n)
	for i, w := range weights {
		maxcolor = max(maxcolor, w)
		if i+1 < n {
			maxcolor = max(maxcolor, w+weights[i+1])
		}
	}
	for i, w := range weights {
		if i%2 == 0 {
			starts[i] = 0
		} else {
			starts[i] = maxcolor - w
		}
	}
	return starts, maxcolor
}

// OddCycleOptimum returns maxcolor* of the cycle with the given weights
// when its length is odd: max(maxpair, minchain3) by Theorem 1.
func OddCycleOptimum(weights []int64) (int64, error) {
	if len(weights) < 3 {
		return 0, fmt.Errorf("special: cycle needs >= 3 vertices, got %d", len(weights))
	}
	if len(weights)%2 == 0 {
		return 0, errors.New("special: cycle has even length; use ColorBipartite")
	}
	return max(bounds.MaxPairOfCycle(weights), bounds.MinChain3OfCycle(weights)), nil
}

// ColorOddCycle colors an odd cycle optimally with
// max(maxpair, minchain3) colors following the constructive proof of
// Lemma 2: rotate so the minimum 3-chain starts at position 0, color
// 0:[0,w0), 1:[w0,w0+w1), 2:[M−w2,M), then alternate the remaining
// vertices between 0-aligned (odd offsets) and M-aligned (even offsets).
func ColorOddCycle(weights []int64) ([]int64, int64, error) {
	m, err := OddCycleOptimum(weights)
	if err != nil {
		return nil, 0, err
	}
	n := len(weights)
	// Locate the rotation whose 3-chain is minimal.
	rot, best := 0, int64(1)<<62
	for i := 0; i < n; i++ {
		sum := weights[i] + weights[(i+1)%n] + weights[(i+2)%n]
		if sum < best {
			best, rot = sum, i
		}
	}
	starts := make([]int64, n)
	for x := 0; x < n; x++ {
		v := (rot + x) % n
		switch {
		case x == 0:
			starts[v] = 0
		case x == 1:
			starts[v] = weights[(rot)%n]
		case x == 2:
			starts[v] = m - weights[v]
		case x%2 == 1:
			starts[v] = 0
		default:
			starts[v] = m - weights[v]
		}
	}
	return starts, m, nil
}

// ColorFivePt optimally colors the 5-pt relaxation of a 2D grid
// (Section III-B: the relaxation is bipartite on the checkerboard).
func ColorFivePt(g *grid.Grid2D) (core.Coloring, int64) {
	f := grid.FivePt{G: g}
	maxcolor := bounds.MaxPair(f)
	c := core.NewColoring(f.Len())
	for v := 0; v < f.Len(); v++ {
		if f.Parity(v) == 0 {
			c.Start[v] = 0
		} else {
			c.Start[v] = maxcolor - f.Weight(v)
		}
	}
	return c, maxcolor
}

// ColorSevenPt optimally colors the 7-pt relaxation of a 3D grid.
func ColorSevenPt(g *grid.Grid3D) (core.Coloring, int64) {
	s := grid.SevenPt{G: g}
	maxcolor := bounds.MaxPair(s)
	c := core.NewColoring(s.Len())
	for v := 0; v < s.Len(); v++ {
		if s.Parity(v) == 0 {
			c.Start[v] = 0
		} else {
			c.Start[v] = maxcolor - s.Weight(v)
		}
	}
	return c, maxcolor
}
