package special

import (
	"errors"
	"math/rand"
	"testing"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/exact"
	"stencilivc/internal/grid"
)

func TestColorCliqueOptimal(t *testing.T) {
	weights := []int64{3, 1, 4}
	starts, mc := ColorClique(weights)
	if mc != 8 {
		t.Fatalf("maxcolor = %d, want 8", mc)
	}
	g := core.Clique(weights)
	c := core.Coloring{Start: starts}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if c.MaxColor(g) != 8 {
		t.Fatalf("MaxColor = %d", c.MaxColor(g))
	}
}

func TestColorCliqueEmptyAndZero(t *testing.T) {
	if _, mc := ColorClique(nil); mc != 0 {
		t.Error("empty clique maxcolor != 0")
	}
	starts, mc := ColorClique([]int64{0, 5, 0})
	if mc != 5 {
		t.Errorf("maxcolor = %d", mc)
	}
	_ = starts
}

func TestBipartition(t *testing.T) {
	g := core.CompleteBipartite([]int64{1, 1}, []int64{1, 1, 1})
	side, err := Bipartition(g)
	if err != nil {
		t.Fatal(err)
	}
	if side[0] != side[1] || side[2] != side[3] || side[0] == side[2] {
		t.Errorf("sides = %v", side)
	}
	tri := core.Clique([]int64{1, 1, 1})
	if _, err := Bipartition(tri); !errors.Is(err, ErrNotBipartite) {
		t.Errorf("triangle bipartitioned: %v", err)
	}
	// Disconnected graph.
	dis := core.MustCSRGraph([]int64{1, 1, 1, 1}, []core.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if _, err := Bipartition(dis); err != nil {
		t.Errorf("disconnected bipartite rejected: %v", err)
	}
}

func TestColorBipartiteOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		na, nb := 1+rng.Intn(3), 1+rng.Intn(3)
		a := make([]int64, na)
		b := make([]int64, nb)
		for i := range a {
			a[i] = rng.Int63n(6)
		}
		for i := range b {
			b[i] = rng.Int63n(6)
		}
		g := core.CompleteBipartite(a, b)
		c, mc, err := ColorBipartite(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(g); err != nil {
			t.Fatal(err)
		}
		if got := c.MaxColor(g); got > mc {
			t.Fatalf("coloring exceeds claimed maxcolor: %d > %d", got, mc)
		}
		want, err := exact.BruteForce(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if mc != want.MaxColor {
			t.Fatalf("trial %d: bipartite maxcolor = %d, optimal = %d", trial, mc, want.MaxColor)
		}
	}
}

func TestColorBipartiteRejectsOddCycle(t *testing.T) {
	g := core.Clique([]int64{1, 2, 3})
	if _, _, err := ColorBipartite(g); !errors.Is(err, ErrNotBipartite) {
		t.Errorf("err = %v", err)
	}
}

func TestColorChainOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(7)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = rng.Int63n(7)
		}
		starts, mc := ColorChain(weights)
		g := core.Chain(weights)
		c := core.Coloring{Start: starts}
		if err := c.Validate(g); err != nil {
			t.Fatalf("trial %d: %v (weights %v, starts %v)", trial, err, weights, starts)
		}
		if got := c.MaxColor(g); got > mc {
			t.Fatalf("chain coloring exceeds claimed maxcolor")
		}
		want, err := exact.BruteForce(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if mc != want.MaxColor {
			t.Fatalf("trial %d: chain maxcolor = %d, optimal = %d", trial, mc, want.MaxColor)
		}
	}
}

func TestOddCycleOptimumErrors(t *testing.T) {
	if _, err := OddCycleOptimum([]int64{1, 2}); err == nil {
		t.Error("2-cycle accepted")
	}
	if _, err := OddCycleOptimum([]int64{1, 2, 3, 4}); err == nil {
		t.Error("even cycle accepted")
	}
}

// TestOddCycleTheorem1 validates both directions of Theorem 1 on random
// odd cycles: the constructive coloring achieves max(maxpair, minchain3),
// and the exact solver confirms no better coloring exists.
func TestOddCycleTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := []int{3, 5, 7}[rng.Intn(3)]
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = rng.Int63n(8)
		}
		starts, mc, err := ColorOddCycle(weights)
		if err != nil {
			t.Fatal(err)
		}
		wantMC := max(bounds.MaxPairOfCycle(weights), bounds.MinChain3OfCycle(weights))
		if mc != wantMC {
			t.Fatalf("claimed maxcolor %d != theorem value %d", mc, wantMC)
		}
		g, err := core.Cycle(weights)
		if err != nil {
			t.Fatal(err)
		}
		c := core.Coloring{Start: starts}
		if err := c.Validate(g); err != nil {
			t.Fatalf("trial %d: invalid cycle coloring: %v\nweights=%v starts=%v",
				trial, err, weights, starts)
		}
		if got := c.MaxColor(g); got > mc {
			t.Fatalf("cycle coloring uses %d > %d colors", got, mc)
		}
		opt, err := exact.BruteForce(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt.MaxColor != mc {
			t.Fatalf("trial %d: theorem says %d, exact says %d (weights %v)",
				trial, mc, opt.MaxColor, weights)
		}
	}
}

// TestFigure2 reproduces the paper's Figure 2: an odd cycle whose optimal
// interval coloring (30) strictly exceeds its largest clique weight (25).
// The paper does not print the weights; this instance realizes the same
// phenomenon with maxpair = 25 and minchain3 = 30.
func TestFigure2(t *testing.T) {
	weights := []int64{10, 15, 10, 15, 10} // C5: maxpair 25, minchain3 35? -> compute
	mp := bounds.MaxPairOfCycle(weights)
	m3 := bounds.MinChain3OfCycle(weights)
	if mp != 25 || m3 != 35 {
		t.Fatalf("instance sums off: maxpair=%d minchain3=%d", mp, m3)
	}
	// Adjust to hit exactly 30: use 10,15,5,15,10 -> pairs max 25, chains:
	// 10+15+5=30, 15+5+15=35, 5+15+10=30, 15+10+10=35, 10+10+15=35.
	weights = []int64{10, 15, 5, 15, 10}
	mp = bounds.MaxPairOfCycle(weights)
	m3 = bounds.MinChain3OfCycle(weights)
	if mp != 25 || m3 != 30 {
		t.Fatalf("figure-2 instance sums off: maxpair=%d minchain3=%d", mp, m3)
	}
	mc, err := OddCycleOptimum(weights)
	if err != nil {
		t.Fatal(err)
	}
	if mc != 30 {
		t.Fatalf("optimum = %d, want 30 (> clique bound 25)", mc)
	}
	g, _ := core.Cycle(weights)
	opt, err := exact.BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.MaxColor != 30 {
		t.Fatalf("exact solver disagrees: %d", opt.MaxColor)
	}
}

func TestColorFivePtOptimalForRelaxation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := grid.MustGrid2D(3, 3)
	for v := range g.W {
		g.W[v] = rng.Int63n(6)
	}
	c, mc := ColorFivePt(g)
	f := grid.FivePt{G: g}
	if err := c.Validate(f); err != nil {
		t.Fatal(err)
	}
	if got := c.MaxColor(f); got > mc {
		t.Fatalf("5-pt coloring uses %d > %d", got, mc)
	}
	if mc != bounds.MaxPair(f) {
		t.Fatalf("5-pt maxcolor %d != pair bound %d (not optimal)", mc, bounds.MaxPair(f))
	}
}

func TestColorSevenPtOptimalForRelaxation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := grid.MustGrid3D(2, 3, 2)
	for v := range g.W {
		g.W[v] = rng.Int63n(6)
	}
	c, mc := ColorSevenPt(g)
	s := grid.SevenPt{G: g}
	if err := c.Validate(s); err != nil {
		t.Fatal(err)
	}
	if mc != bounds.MaxPair(s) {
		t.Fatalf("7-pt maxcolor %d != pair bound %d (not optimal)", mc, bounds.MaxPair(s))
	}
}
