// Package special implements the polynomially solvable cases of interval
// vertex coloring analyzed in Section III of the paper: cliques (III-A),
// bipartite graphs — which include chains and the 5-pt/7-pt stencil
// relaxations — and odd cycles (Theorem 1, Section III-B).
//
// The package invariant: each solver returns a provably optimal coloring
// together with its maxcolor, never a mere heuristic answer. Cliques
// stack intervals to exactly the total weight; bipartite graphs reach
// exactly max(max_v w(v), max_{(u,v)} w(u)+w(v)) by anchoring one side at
// 0 and the other at the top; odd cycles meet the minchain3 bound of
// Theorem 1. These optima double as building blocks elsewhere — the chain
// solver is the row engine of the BD/BDP decompositions, and the clique
// optimum is the K4/K8 lower bound of package bounds.
package special
