package experiments

import (
	"fmt"
	"time"

	"stencilivc/internal/datasets"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/perfprof"
	"stencilivc/internal/sched"
	"stencilivc/internal/stkde"
)

// STKDEConfig names one of the six application instances of Figure 10.
type STKDEConfig struct {
	Name    string
	Dataset datasets.Name
	// Voxels and Boxes are the output resolution and task partition.
	Voxels, Boxes [3]int
	// BWFrac is the bandwidth as a fraction of each axis extent.
	BWFrac float64
}

// Fig10Instances returns six instances spanning resolutions and
// bandwidths, mirroring the paper's choice of the six configurations
// whose sequential runtime exceeded one second.
func Fig10Instances() []STKDEConfig {
	return []STKDEConfig{
		{Name: "Dengue-highres-highbw", Dataset: datasets.Dengue, Voxels: [3]int{48, 48, 48}, Boxes: [3]int{8, 8, 8}, BWFrac: 1.0 / 16},
		{Name: "Dengue-midres-midbw", Dataset: datasets.Dengue, Voxels: [3]int{64, 64, 64}, Boxes: [3]int{16, 16, 8}, BWFrac: 1.0 / 32},
		{Name: "FluAnimal-highres-highbw-16-16-32", Dataset: datasets.FluAnimal, Voxels: [3]int{64, 64, 64}, Boxes: [3]int{16, 16, 32}, BWFrac: 1.0 / 64},
		{Name: "Pollen-midres-midbw", Dataset: datasets.Pollen, Voxels: [3]int{64, 64, 64}, Boxes: [3]int{16, 16, 16}, BWFrac: 1.0 / 32},
		{Name: "PollenUS-veryhighres-lowbw", Dataset: datasets.PollenUS, Voxels: [3]int{64, 64, 64}, Boxes: [3]int{32, 32, 16}, BWFrac: 1.0 / 64},
		{Name: "PollenUS-lowres-highbw", Dataset: datasets.PollenUS, Voxels: [3]int{48, 48, 48}, Boxes: [3]int{8, 8, 8}, BWFrac: 1.0 / 16},
	}
}

// STKDEMeasurement is one (instance, algorithm) point of Figure 10's
// scatter plots: the coloring's maxcolor against measured parallel
// runtime, plus the deterministic simulated makespan.
type STKDEMeasurement struct {
	Instance    string
	Algorithm   string
	Colors      int64
	MeanSeconds float64
	SimMakespan int64
}

// BuildSTKDE instantiates one configuration.
func BuildSTKDE(cfg STKDEConfig, seed int64) (*stkde.App, error) {
	ds, err := datasets.Generate(cfg.Dataset, seed)
	if err != nil {
		return nil, err
	}
	bwS := cfg.BWFrac * min(ds.Bounds.SpanX(), ds.Bounds.SpanY())
	bwT := cfg.BWFrac * ds.Bounds.SpanT()
	return stkde.New(ds.Points, ds.Bounds,
		cfg.Voxels[0], cfg.Voxels[1], cfg.Voxels[2],
		cfg.Boxes[0], cfg.Boxes[1], cfg.Boxes[2],
		bwS, bwT)
}

// Fig10 measures every coloring algorithm on every configured instance:
// `runs` timed parallel executions on `workers` goroutines are averaged
// per point, like the paper's five-run averages on a 6-core machine.
func Fig10(cfgs []STKDEConfig, seed int64, workers, runs int) ([]STKDEMeasurement, error) {
	if workers < 1 || runs < 1 {
		return nil, fmt.Errorf("experiments: workers and runs must be positive")
	}
	var out []STKDEMeasurement
	for _, cfg := range cfgs {
		app, err := BuildSTKDE(cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", cfg.Name, err)
		}
		g := app.BoxGrid()
		for _, alg := range heuristics.All() {
			c, err := heuristics.Run3D(alg, g)
			if err != nil {
				return nil, err
			}
			dag, err := sched.Build(g, c)
			if err != nil {
				return nil, err
			}
			sim, err := sched.Simulate(dag, workers)
			if err != nil {
				return nil, err
			}
			var total float64
			for r := 0; r < runs; r++ {
				t0 := time.Now()
				if _, err := app.Parallel(c, workers); err != nil {
					return nil, err
				}
				total += time.Since(t0).Seconds()
			}
			out = append(out, STKDEMeasurement{
				Instance:    cfg.Name,
				Algorithm:   string(alg),
				Colors:      c.MaxColor(g),
				MeanSeconds: total / float64(runs),
				SimMakespan: sim.Makespan,
			})
		}
	}
	return out, nil
}

// Fig10Regression fits colors-vs-runtime per instance, returning
// (intercept, slope, correlation) — the regression lines drawn in
// Figure 10. useSim selects the deterministic simulated makespan instead
// of wall-clock seconds.
func Fig10Regression(ms []STKDEMeasurement, useSim bool) (map[string][3]float64, error) {
	byInst := map[string][][2]float64{}
	for _, m := range ms {
		y := m.MeanSeconds
		if useSim {
			y = float64(m.SimMakespan)
		}
		byInst[m.Instance] = append(byInst[m.Instance], [2]float64{float64(m.Colors), y})
	}
	out := map[string][3]float64{}
	for inst, pts := range byInst {
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		a, b, r, err := perfprof.Linreg(xs, ys)
		if err != nil {
			// All algorithms produced identical color counts: correlation
			// is undefined; report a flat line rather than failing.
			out[inst] = [3]float64{ys[0], 0, 0}
			continue
		}
		out[inst] = [3]float64{a, b, r}
	}
	return out, nil
}
