package experiments

import (
	"fmt"
	"strings"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/datasets"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/order"
	"stencilivc/internal/sched"
	"stencilivc/internal/stkde"
)

// AblationReport holds the design-choice comparisons of DESIGN.md's
// testing strategy, measured on representative instances. The benchmark
// suite times the same comparisons; this report focuses on the quality
// numbers so cmd/experiments can print them alongside the figures.
type AblationReport struct {
	// Post-optimization ladder on one 2D instance.
	BD, BDP, BDIterated int64
	// DAG vs barrier-wave simulated makespans on P processors.
	Processors                int
	DAGMakespan, WaveMakespan int64
	// Uniform vs Nicol-balanced STKDE partitions: max box weight and the
	// K8 coloring bound each induces.
	UniformMaxBox, BalancedMaxBox int64
	UniformK8, BalancedK8         int64
	// SGK-3D sorted vs full permutations on a small 3D instance.
	SGKSorted, SGKFull int64
}

// RunAblations measures the report on seeded instances.
func RunAblations(seed int64, processors int) (*AblationReport, error) {
	if processors < 1 {
		return nil, fmt.Errorf("experiments: processors must be positive")
	}
	rep := &AblationReport{Processors: processors}

	// Post-optimization ladder.
	ds, err := datasets.Generate(datasets.Dengue, seed)
	if err != nil {
		return nil, err
	}
	g2, err := datasets.Voxelize2D(ds.Points, ds.Bounds, datasets.XY, 32, 32)
	if err != nil {
		return nil, err
	}
	bd, _ := heuristics.BipartiteDecomposition2D(g2)
	rep.BD = bd.MaxColor(g2)
	bdp, _ := heuristics.BipartiteDecompositionPost2D(g2)
	rep.BDP = bdp.MaxColor(g2)
	ig := bd.Clone()
	order.IteratedGreedy(g2, ig, 10)
	rep.BDIterated = ig.MaxColor(g2)

	// DAG vs waves.
	c, err := heuristics.Run2D(heuristics.BDP, g2)
	if err != nil {
		return nil, err
	}
	dag, err := sched.Build(g2, c)
	if err != nil {
		return nil, err
	}
	sim, err := sched.Simulate(dag, processors)
	if err != nil {
		return nil, err
	}
	rep.DAGMakespan = sim.Makespan
	rep.WaveMakespan, err = sched.SimulateWaves(g2, sched.ColorClasses(g2), processors)
	if err != nil {
		return nil, err
	}

	// Partitioning.
	bwS := ds.Bounds.SpanX() / 32
	bwT := ds.Bounds.SpanT() / 32
	uni, err := stkde.New(ds.Points, ds.Bounds, 32, 32, 32, 8, 8, 8, bwS, bwT)
	if err != nil {
		return nil, err
	}
	bal, err := stkde.NewBalanced(ds.Points, ds.Bounds, 32, 32, 32, 8, 8, 8, bwS, bwT, 10)
	if err != nil {
		return nil, err
	}
	rep.UniformMaxBox = core.MaxWeight(uni.BoxGrid())
	rep.BalancedMaxBox = core.MaxWeight(bal.BoxGrid())
	rep.UniformK8 = bounds.MaxK8(uni.BoxGrid())
	rep.BalancedK8 = bounds.MaxK8(bal.BoxGrid())

	// SGK-3D variants on a small instance (full permutations are costly).
	g3, err := datasets.Voxelize3D(ds.Points, ds.Bounds, 6, 6, 6)
	if err != nil {
		return nil, err
	}
	rep.SGKSorted = heuristics.SmartLargestCliqueFirst3D(g3).MaxColor(g3)
	rep.SGKFull = heuristics.SmartLargestCliqueFirst3DFull(g3).MaxColor(g3)
	return rep, nil
}

// Format renders the report.
func (r *AblationReport) Format() string {
	var b strings.Builder
	b.WriteString("Ablations (design choices; see DESIGN.md and the Ablation benchmarks)\n")
	fmt.Fprintf(&b, "post-optimization ladder:   BD=%d  BDP=%d  BD+iterated-greedy=%d\n",
		r.BD, r.BDP, r.BDIterated)
	fmt.Fprintf(&b, "execution model (P=%d):      DAG makespan=%d  barrier-waves makespan=%d\n",
		r.Processors, r.DAGMakespan, r.WaveMakespan)
	fmt.Fprintf(&b, "STKDE partition:            uniform max-box=%d K8=%d | balanced max-box=%d K8=%d\n",
		r.UniformMaxBox, r.UniformK8, r.BalancedMaxBox, r.BalancedK8)
	fmt.Fprintf(&b, "SGK-3D block order:         weight-sorted=%d  full-permutations=%d\n",
		r.SGKSorted, r.SGKFull)
	return b.String()
}
