package experiments

import (
	"fmt"
	"strings"

	"stencilivc/internal/datasets"
)

// Fig4 renders each dataset's xy-projection as an ASCII density heat map
// at the largest grid the dataset's smallest bandwidth allows — the
// analogue of the paper's Figure 4 scatter plots.
func Fig4(seed int64) (map[datasets.Name]string, error) {
	glyphs := []byte(" .:-=+*#%@")
	out := map[datasets.Name]string{}
	for _, name := range datasets.Names() {
		ds, err := datasets.Generate(name, seed)
		if err != nil {
			return nil, err
		}
		minBW := ds.Bandwidths[0]
		for _, bw := range ds.Bandwidths {
			minBW = min(minBW, bw)
		}
		n := int(1 / (2 * minBW))
		n = min(max(n, 8), 48)
		g, err := datasets.Voxelize2D(ds.Points, ds.Bounds, datasets.XY, n, n/2)
		if err != nil {
			return nil, err
		}
		var maxW int64 = 1
		for _, w := range g.W {
			maxW = max(maxW, w)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s (%d events, %dx%d)\n", name, len(ds.Points), g.X, g.Y)
		for j := g.Y - 1; j >= 0; j-- {
			for i := 0; i < g.X; i++ {
				w := g.At(i, j)
				idx := 0
				if w > 0 {
					idx = 1 + int(int64(len(glyphs)-2)*w/maxW)
				}
				b.WriteByte(glyphs[idx])
			}
			b.WriteByte('\n')
		}
		out[name] = b.String()
	}
	return out, nil
}
