package experiments

import (
	"fmt"
	"strings"

	"stencilivc/internal/perfprof"
)

// Table1 reproduces the in-text statistics of Section VI-B (2D results).
type Table1 struct {
	Summaries []perfprof.Summary
	// BDPOverLB is the mean ratio of BDP's maxcolor to the max-K4 lower
	// bound (paper: 1.03).
	BDPOverLB float64
	// BDPSpeedVsSGK is how much faster BDP is than SGK in percent
	// (paper: 182%).
	BDPSpeedVsSGK float64
	// BDPColorsVsSGK is how many percent fewer colors BDP needs than SGK
	// (paper: 1.69%).
	BDPColorsVsSGK float64
	// OptimalRateBDP / OptimalRateSGK are the fractions of instances each
	// algorithm provably solves optimally, i.e. matches the lower bound
	// (paper: 58.7% and 63.3%).
	OptimalRateBDP, OptimalRateSGK float64
	// PostGain is the mean percentage improvement of BDP over BD
	// (paper: 2.49%).
	PostGain float64
}

// MakeTable1 computes Table1 from a 2D suite run.
func MakeTable1(res *RunResult) (Table1, error) {
	sums, err := perfprof.Summarize(res.Records)
	if err != nil {
		return Table1{}, err
	}
	t := Table1{Summaries: sums}
	byAlg := indexSummaries(sums)

	perInstance := indexRecords(res.Records)
	var ratioSum float64
	ratioN := 0
	var postSum float64
	postN := 0
	bdpOpt, sgkOpt, total := 0, 0, 0
	for inst, row := range perInstance {
		lb := res.LowerBound[inst]
		total++
		bdp := row["BDP"].Value
		bd := row["BD"].Value
		sgk := row["SGK"].Value
		if lb > 0 {
			ratioSum += float64(bdp) / float64(lb)
			ratioN++
		}
		if bd > 0 {
			postSum += (1 - float64(bdp)/float64(bd)) * 100
			postN++
		}
		if bdp == lb {
			bdpOpt++
		}
		if sgk == lb {
			sgkOpt++
		}
	}
	if ratioN > 0 {
		t.BDPOverLB = ratioSum / float64(ratioN)
	}
	if postN > 0 {
		t.PostGain = postSum / float64(postN)
	}
	if total > 0 {
		t.OptimalRateBDP = float64(bdpOpt) / float64(total)
		t.OptimalRateSGK = float64(sgkOpt) / float64(total)
	}
	t.BDPSpeedVsSGK = perfprof.RelativeSpeed(byAlg["BDP"], byAlg["SGK"])
	t.BDPColorsVsSGK = perfprof.RelativeQuality(byAlg["BDP"], byAlg["SGK"])
	return t, nil
}

// Format renders the table with the paper's claimed values alongside.
func (t Table1) Format() string {
	var b strings.Builder
	b.WriteString("Table 1 — 2D in-text statistics (Section VI-B)\n")
	b.WriteString(perfprof.FormatSummaries(t.Summaries))
	fmt.Fprintf(&b, "BDP / max-K4 lower bound:       %.4f   (paper: 1.03)\n", t.BDPOverLB)
	fmt.Fprintf(&b, "BDP speed vs SGK:               %+.0f%%   (paper: +182%%)\n", t.BDPSpeedVsSGK)
	fmt.Fprintf(&b, "BDP colors vs SGK:              %+.2f%%  (paper: +1.69%%)\n", t.BDPColorsVsSGK)
	fmt.Fprintf(&b, "provably optimal (LB match) BDP: %.1f%%  (paper: 58.7%%)\n", t.OptimalRateBDP*100)
	fmt.Fprintf(&b, "provably optimal (LB match) SGK: %.1f%%  (paper: 63.3%%)\n", t.OptimalRateSGK*100)
	fmt.Fprintf(&b, "BD -> BDP improvement:          %.2f%%  (paper: 2.49%%)\n", t.PostGain)
	return b.String()
}

// Table2 reproduces the in-text statistics of Section VI-C (3D results).
type Table2 struct {
	Summaries []perfprof.Summary
	// SGKColorsVsGLF: percent fewer colors for SGK vs GLF (paper: 0.57%).
	SGKColorsVsGLF float64
	// GLFSpeedVsSGK / GLFSpeedVsBDP / GLFSpeedVsGKF (paper: 142/128/120%).
	GLFSpeedVsSGK, GLFSpeedVsBDP, GLFSpeedVsGKF float64
	// OptimalRateSGK / OptimalRateGLF: LB-match rates; the paper reports
	// SGK finding optima on 11.8% more instances than GLF.
	OptimalRateSGK, OptimalRateGLF float64
	// BDPStrictlyBetterThanSGK: fraction of instances where BDP's
	// maxcolor strictly beats SGK's (paper: 18.1%).
	BDPStrictlyBetterThanSGK float64
}

// MakeTable2 computes Table2 from a 3D suite run.
func MakeTable2(res *RunResult) (Table2, error) {
	sums, err := perfprof.Summarize(res.Records)
	if err != nil {
		return Table2{}, err
	}
	t := Table2{Summaries: sums}
	byAlg := indexSummaries(sums)
	t.SGKColorsVsGLF = perfprof.RelativeQuality(byAlg["SGK"], byAlg["GLF"])
	t.GLFSpeedVsSGK = perfprof.RelativeSpeed(byAlg["GLF"], byAlg["SGK"])
	t.GLFSpeedVsBDP = perfprof.RelativeSpeed(byAlg["GLF"], byAlg["BDP"])
	t.GLFSpeedVsGKF = perfprof.RelativeSpeed(byAlg["GLF"], byAlg["GKF"])

	perInstance := indexRecords(res.Records)
	sgkOpt, glfOpt, bdpWins, total := 0, 0, 0, 0
	for inst, row := range perInstance {
		lb := res.LowerBound[inst]
		total++
		if row["SGK"].Value == lb {
			sgkOpt++
		}
		if row["GLF"].Value == lb {
			glfOpt++
		}
		if row["BDP"].Value < row["SGK"].Value {
			bdpWins++
		}
	}
	if total > 0 {
		t.OptimalRateSGK = float64(sgkOpt) / float64(total)
		t.OptimalRateGLF = float64(glfOpt) / float64(total)
		t.BDPStrictlyBetterThanSGK = float64(bdpWins) / float64(total)
	}
	return t, nil
}

// Format renders the table with the paper's claimed values alongside.
func (t Table2) Format() string {
	var b strings.Builder
	b.WriteString("Table 2 — 3D in-text statistics (Section VI-C)\n")
	b.WriteString(perfprof.FormatSummaries(t.Summaries))
	fmt.Fprintf(&b, "SGK colors vs GLF:            %+.2f%%  (paper: +0.57%%)\n", t.SGKColorsVsGLF)
	fmt.Fprintf(&b, "GLF speed vs SGK:             %+.0f%%   (paper: +142%%)\n", t.GLFSpeedVsSGK)
	fmt.Fprintf(&b, "GLF speed vs BDP:             %+.0f%%   (paper: +128%%)\n", t.GLFSpeedVsBDP)
	fmt.Fprintf(&b, "GLF speed vs GKF:             %+.0f%%   (paper: +120%%)\n", t.GLFSpeedVsGKF)
	fmt.Fprintf(&b, "LB-match rate SGK:            %.1f%%\n", t.OptimalRateSGK*100)
	fmt.Fprintf(&b, "LB-match rate GLF:            %.1f%%  (paper: SGK finds 11.8%% more optima)\n", t.OptimalRateGLF*100)
	fmt.Fprintf(&b, "BDP strictly beats SGK on:    %.1f%%  (paper: 18.1%%)\n", t.BDPStrictlyBetterThanSGK*100)
	return b.String()
}

// Table3 reproduces Section VI-D: how often the max-clique lower bound
// differs from the certified optimum.
type Table3 struct {
	Certified, ByLBMatch, ByExact, Unsolved, LBGapCount int
	// GapRate = LBGapCount / Certified (paper: 4.33% 2D, 2.65% 3D).
	GapRate float64
}

// MakeTable3 summarizes an optimality report.
func MakeTable3(rep *OptimalityReport) Table3 {
	t := Table3{
		Certified:  len(rep.Optimum),
		ByLBMatch:  rep.ByLBMatch,
		ByExact:    rep.ByExact,
		Unsolved:   rep.Unsolved,
		LBGapCount: rep.LBGapCount,
	}
	if t.Certified > 0 {
		t.GapRate = float64(t.LBGapCount) / float64(t.Certified)
	}
	return t
}

// Format renders the table.
func (t Table3) Format(dim string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — optimality certification, %s (Section VI-D)\n", dim)
	fmt.Fprintf(&b, "certified optimal: %d (%d by LB match, %d by exact solve), unsolved: %d\n",
		t.Certified, t.ByLBMatch, t.ByExact, t.Unsolved)
	fmt.Fprintf(&b, "max-clique LB != optimum on %.2f%% of certified instances (paper: 4.33%% 2D / 2.65%% 3D)\n",
		t.GapRate*100)
	return b.String()
}

func indexSummaries(sums []perfprof.Summary) map[string]perfprof.Summary {
	m := make(map[string]perfprof.Summary, len(sums))
	for _, s := range sums {
		m[s.Algorithm] = s
	}
	return m
}

func indexRecords(records []perfprof.Record) map[string]map[string]perfprof.Record {
	m := map[string]map[string]perfprof.Record{}
	for _, r := range records {
		if m[r.Instance] == nil {
			m[r.Instance] = map[string]perfprof.Record{}
		}
		m[r.Instance][r.Algorithm] = r
	}
	return m
}
