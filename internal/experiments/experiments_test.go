package experiments

import (
	"strings"
	"testing"

	"stencilivc/internal/datasets"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/perfprof"
)

// tiny keeps test runtimes small while still sweeping real instances.
func tiny() Options {
	return Options{Seed: 1, Stride: 4, MaxDim: 8, ExactBudget: 50_000, MaxExactCells: 500_000}
}

func TestRun2DSuite(t *testing.T) {
	res, err := Run2DSuite(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	nAlgs := len(heuristics.All())
	if len(res.Records)%nAlgs != 0 {
		t.Fatalf("record count %d not a multiple of %d algorithms", len(res.Records), nAlgs)
	}
	for _, rec := range res.Records {
		lb := res.LowerBound[rec.Instance]
		if rec.Value < lb {
			t.Fatalf("%s on %s: %d below LB %d", rec.Algorithm, rec.Instance, rec.Value, lb)
		}
		if rec.Runtime < 0 {
			t.Fatalf("negative runtime")
		}
	}
	// Profiles must be computable (complete matrix).
	if _, err := perfprof.Compute(res.Records); err != nil {
		t.Fatal(err)
	}
}

func TestRun3DSuiteAndTables(t *testing.T) {
	res, err := Run3DSuite(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	t2, err := MakeTable2(res)
	if err != nil {
		t.Fatal(err)
	}
	out := t2.Format()
	if !strings.Contains(out, "SGK colors vs GLF") {
		t.Errorf("table 2 malformed:\n%s", out)
	}
}

func TestTable1(t *testing.T) {
	res, err := Run2DSuite(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t1, err := MakeTable1(res)
	if err != nil {
		t.Fatal(err)
	}
	if t1.BDPOverLB < 1.0 {
		t.Errorf("BDP/LB ratio %v below 1 — impossible for a valid LB", t1.BDPOverLB)
	}
	if t1.BDPOverLB > 2.0 {
		t.Errorf("BDP/LB ratio %v above the 2-approximation guarantee", t1.BDPOverLB)
	}
	if t1.PostGain < 0 {
		t.Errorf("post gain %v negative — BDP worse than BD", t1.PostGain)
	}
	if t1.OptimalRateBDP < 0 || t1.OptimalRateBDP > 1 {
		t.Errorf("optimal rate %v out of range", t1.OptimalRateBDP)
	}
	if !strings.Contains(t1.Format(), "paper: 1.03") {
		t.Error("table 1 missing paper reference values")
	}
}

func TestFilterByDataset(t *testing.T) {
	res, err := Run2DSuite(tiny())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, name := range datasets.Names() {
		recs := res.FilterByDataset(string(name))
		total += len(recs)
		if len(recs) == 0 {
			t.Errorf("no records for %s", name)
		}
		if _, err := perfprof.Compute(recs); err != nil {
			t.Errorf("%s records incomplete: %v", name, err)
		}
	}
	if total != len(res.Records) {
		t.Errorf("dataset split loses records: %d of %d", total, len(res.Records))
	}
}

func TestProvenOptimalAndFig9(t *testing.T) {
	res, err := Run2DSuite(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.ProvenOptimal(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByLBMatch+rep.ByExact+rep.Unsolved != len(res.BestValue) {
		t.Fatalf("certification counts do not add up")
	}
	if len(rep.Optimum) == 0 {
		t.Fatal("no instance certified optimal; suspicious for small grids")
	}
	// Certified optima never exceed the best heuristic value.
	for inst, opt := range rep.Optimum {
		if opt > res.BestValue[inst] {
			t.Fatalf("certified optimum %d above best heuristic %d on %s", opt, res.BestValue[inst], inst)
		}
		if opt < res.LowerBound[inst] {
			t.Fatalf("certified optimum %d below LB on %s", opt, inst)
		}
	}
	recs := OptimalRecords(res.Records, rep)
	if len(recs) == 0 {
		t.Fatal("no Fig 9 records")
	}
	prof, err := perfprof.Compute(recs)
	if err != nil {
		t.Fatal(err)
	}
	// OPT always ties the best by construction.
	if prof.BestAt1("OPT") != 1.0 {
		t.Errorf("OPT win rate %v != 1", prof.BestAt1("OPT"))
	}
	t3 := MakeTable3(rep)
	if !strings.Contains(t3.Format("2D"), "certified optimal") {
		t.Error("table 3 malformed")
	}
}

func TestFig4(t *testing.T) {
	maps, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range datasets.Names() {
		art, ok := maps[name]
		if !ok || len(art) == 0 {
			t.Errorf("no heat map for %s", name)
		}
		if !strings.Contains(art, "\n") {
			t.Errorf("%s heat map not multi-line", name)
		}
	}
}

func TestFig10SmallRun(t *testing.T) {
	// One small instance, few workers/runs: end-to-end through the real
	// parallel application.
	cfgs := []STKDEConfig{{
		Name:    "test-instance",
		Dataset: datasets.Dengue,
		Voxels:  [3]int{16, 16, 16},
		Boxes:   [3]int{4, 4, 4},
		BWFrac:  1.0 / 8,
	}}
	ms, err := Fig10(cfgs, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(heuristics.All()) {
		t.Fatalf("measurements = %d", len(ms))
	}
	for _, m := range ms {
		if m.Colors <= 0 {
			t.Errorf("%s: nonpositive colors", m.Algorithm)
		}
		if m.MeanSeconds < 0 {
			t.Errorf("%s: negative time", m.Algorithm)
		}
		if m.SimMakespan < m.Colors/10 {
			t.Errorf("%s: absurd sim makespan %d for %d colors", m.Algorithm, m.SimMakespan, m.Colors)
		}
	}
	reg, err := Fig10Regression(ms, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg["test-instance"]; !ok {
		t.Fatal("no regression for the instance")
	}
	if _, err := Fig10(cfgs, 1, 0, 1); err == nil {
		t.Error("0 workers accepted")
	}
}

func TestQuickAndFullOptions(t *testing.T) {
	q, f := Quick(), Full()
	if q.Stride <= f.Stride && q.MaxDim == 0 {
		t.Error("Quick not smaller than Full")
	}
	if f.ExactBudget <= q.ExactBudget {
		t.Error("Full budget not larger")
	}
}

func TestRunAblations(t *testing.T) {
	rep, err := RunAblations(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BDP > rep.BD || rep.BDIterated > rep.BD {
		t.Fatalf("post passes worsened BD: %+v", rep)
	}
	if rep.BalancedMaxBox > rep.UniformMaxBox {
		t.Fatalf("balancing worsened the max box: %+v", rep)
	}
	if rep.DAGMakespan <= 0 || rep.WaveMakespan <= 0 {
		t.Fatalf("degenerate makespans: %+v", rep)
	}
	out := rep.Format()
	if !strings.Contains(out, "post-optimization ladder") {
		t.Errorf("format malformed:\n%s", out)
	}
	if _, err := RunAblations(1, 0); err == nil {
		t.Error("0 processors accepted")
	}
}

func TestFig10InstancesAllBuildable(t *testing.T) {
	cfgs := Fig10Instances()
	if len(cfgs) != 6 {
		t.Fatalf("instances = %d, want 6 as in the paper", len(cfgs))
	}
	seen := map[string]bool{}
	for _, cfg := range cfgs {
		if seen[cfg.Name] {
			t.Fatalf("duplicate instance name %s", cfg.Name)
		}
		seen[cfg.Name] = true
		app, err := BuildSTKDE(cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		g := app.BoxGrid()
		if g.X != cfg.Boxes[0] || g.Y != cfg.Boxes[1] || g.Z != cfg.Boxes[2] {
			t.Fatalf("%s: box grid %dx%dx%d != config %v", cfg.Name, g.X, g.Y, g.Z, cfg.Boxes)
		}
	}
}

func TestProvenOptimalVertexGate(t *testing.T) {
	// With a 1-vertex gate, every LB-mismatched instance must be counted
	// unsolved rather than exact-solved.
	res, err := Run2DSuite(tiny())
	if err != nil {
		t.Fatal(err)
	}
	gated := tiny()
	gated.MaxExactVertices = 1
	rep, err := res.ProvenOptimal(gated)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByExact != 0 {
		t.Fatalf("exact solves ran despite the gate: %d", rep.ByExact)
	}
	mismatched := 0
	for label, best := range res.BestValue {
		if best != res.LowerBound[label] {
			mismatched++
		}
	}
	if rep.Unsolved != mismatched {
		t.Fatalf("unsolved = %d, want all %d mismatched", rep.Unsolved, mismatched)
	}
}
