// Package experiments orchestrates the reproduction of every figure and
// in-text statistics table of the paper's evaluation (Sections VI and
// VII). Each Fig*/Table* function returns structured results that
// cmd/experiments renders as ASCII plots and CSV files; EXPERIMENTS.md
// records paper-claimed versus measured values.
package experiments

import (
	"fmt"
	"time"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/datasets"
	"stencilivc/internal/exact"
	"stencilivc/internal/grid"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/obsv"
	"stencilivc/internal/perfprof"
)

// Options sizes an experiment run. Quick() keeps laptop runtimes in
// seconds; Full() reproduces the paper-scale suites.
type Options struct {
	Seed int64
	// Suite shaping, forwarded to datasets.SuiteOptions.
	Stride int
	MaxDim int
	// ExactBudget is the per-instance node budget for optimality
	// certification (Fig 9 / Table 3).
	ExactBudget int
	// MaxExactCells skips exact certification on instances whose CP
	// domains would exceed this many cells.
	MaxExactCells int
	// MaxExactVertices skips exact certification on instances with more
	// vertices (0 = no gate). Large LB-mismatched instances play the role
	// of the paper's MILP-unsolved ones.
	MaxExactVertices int
	// Metrics, when non-nil, receives every suite solve's counters
	// (placements, probes, maxcolor, wall time); cmd/experiments wires it
	// when -metrics is given.
	Metrics *obsv.SolveMetrics
}

// Quick returns a configuration that runs the whole harness in seconds.
func Quick() Options {
	return Options{Seed: 1, Stride: 2, MaxDim: 16, ExactBudget: 8_000, MaxExactCells: 150_000, MaxExactVertices: 120}
}

// Full returns the paper-scale configuration.
func Full() Options {
	return Options{Seed: 1, Stride: 1, MaxDim: 0, ExactBudget: 2_000_000, MaxExactCells: 20_000_000}
}

// RunResult is the measured record matrix of one suite sweep plus
// per-instance metadata shared by several figures.
type RunResult struct {
	Records []perfprof.Record
	// Stats aggregates solver work (placements, probes, per-algorithm
	// wall time) across the whole sweep; cmd/experiments reports it.
	Stats *core.Stats
	// metrics is the optional bundle from Options.Metrics; solveOpts
	// threads it into every suite solve.
	metrics *obsv.SolveMetrics
	// LowerBound[instance] is the max-clique (K4/K8) lower bound.
	LowerBound map[string]int64
	// BestValue[instance] is the best maxcolor across algorithms.
	BestValue map[string]int64
	// Dataset[instance] names the instance's dataset for per-dataset splits.
	Dataset map[string]string
	// Vertices[instance] is the instance size (for exact-solve gating).
	Vertices map[string]int
	// Grids[instance] is the instance graph (used by optimality
	// certification).
	Grids map[string]core.Graph
}

// Run2DSuite measures every algorithm on the 2D instance suite — the data
// behind Figures 5a, 5b, and 6.
func Run2DSuite(opts Options) (*RunResult, error) {
	suite, err := datasets.Suite2D(datasets.SuiteOptions{
		Seed: opts.Seed, Stride: opts.Stride, MaxDim: opts.MaxDim,
	})
	if err != nil {
		return nil, err
	}
	res := newRunResult(opts)
	for _, in := range suite {
		g, err := grid.FromWeights2D(in.X, in.Y, in.Weights)
		if err != nil {
			return nil, err
		}
		label := in.Label()
		res.LowerBound[label] = bounds.MaxK4(g)
		res.Dataset[label] = string(in.Dataset)
		res.Vertices[label] = g.Len()
		res.Grids[label] = g
		for _, alg := range heuristics.All() {
			t0 := time.Now()
			c, err := heuristics.Run(alg, g, res.solveOpts())
			dt := time.Since(t0).Seconds()
			if err != nil {
				return nil, err
			}
			if err := c.Validate(g); err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", alg, label, err)
			}
			res.add(label, string(alg), c.MaxColor(g), dt)
		}
	}
	return res, nil
}

// Run3DSuite measures every algorithm on the 3D instance suite — the data
// behind Figures 7a, 7b, and 8.
func Run3DSuite(opts Options) (*RunResult, error) {
	suite, err := datasets.Suite3D(datasets.SuiteOptions{
		Seed: opts.Seed, Stride: opts.Stride, MaxDim: opts.MaxDim,
	})
	if err != nil {
		return nil, err
	}
	res := newRunResult(opts)
	for _, in := range suite {
		g, err := grid.FromWeights3D(in.X, in.Y, in.Z, in.Weights)
		if err != nil {
			return nil, err
		}
		label := in.Label()
		res.LowerBound[label] = bounds.MaxK8(g)
		res.Dataset[label] = string(in.Dataset)
		res.Vertices[label] = g.Len()
		res.Grids[label] = g
		for _, alg := range heuristics.All() {
			t0 := time.Now()
			c, err := heuristics.Run(alg, g, res.solveOpts())
			dt := time.Since(t0).Seconds()
			if err != nil {
				return nil, err
			}
			if err := c.Validate(g); err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", alg, label, err)
			}
			res.add(label, string(alg), c.MaxColor(g), dt)
		}
	}
	return res, nil
}

func newRunResult(opts Options) *RunResult {
	return &RunResult{
		Stats:      &core.Stats{},
		metrics:    opts.Metrics,
		LowerBound: map[string]int64{},
		BestValue:  map[string]int64{},
		Dataset:    map[string]string{},
		Vertices:   map[string]int{},
		Grids:      map[string]core.Graph{},
	}
}

// solveOpts returns the options every suite solve runs under: no
// cancellation, sequential (per-algorithm runtimes stay comparable to
// the paper's single-threaded measurements), sweeping stats into r.Stats
// and metrics into the bundle configured in Options, if any.
func (r *RunResult) solveOpts() *core.SolveOptions {
	return &core.SolveOptions{Stats: r.Stats, Metrics: r.metrics}
}

func (r *RunResult) add(instance, alg string, value int64, runtime float64) {
	r.Records = append(r.Records, perfprof.Record{
		Algorithm: alg, Instance: instance, Value: value, Runtime: runtime,
	})
	if best, ok := r.BestValue[instance]; !ok || value < best {
		r.BestValue[instance] = value
	}
}

// FilterByDataset keeps the records of one dataset — the per-dataset
// profile splits of Figures 6 and 8.
func (r *RunResult) FilterByDataset(name string) []perfprof.Record {
	var out []perfprof.Record
	for _, rec := range r.Records {
		if r.Dataset[rec.Instance] == name {
			out = append(out, rec)
		}
	}
	return out
}

// ProvenOptimal partitions instances by optimality certification, the
// substitute for the paper's MILP runs (Section VI-D): an instance is
// certified when the best heuristic matches the K4/K8 lower bound, or
// when the exact CP solver settles it within budget.
func (r *RunResult) ProvenOptimal(opts Options) (*OptimalityReport, error) {
	rep := &OptimalityReport{Optimum: map[string]int64{}}
	for label, best := range r.BestValue {
		lb := r.LowerBound[label]
		if best == lb {
			rep.Optimum[label] = best
			rep.ByLBMatch++
			continue
		}
		if opts.MaxExactVertices > 0 && r.Vertices[label] > opts.MaxExactVertices {
			rep.Unsolved++ // too large for the certification budget, like the paper's MILP timeouts
			continue
		}
		g, ok := r.Grids[label]
		if !ok {
			return nil, fmt.Errorf("experiments: no graph for instance %s", label)
		}
		res := exact.Optimize(g, exact.OptimizeOptions{
			LowerBound:     lb,
			NodeBudget:     opts.ExactBudget,
			MaxDomainCells: opts.MaxExactCells,
		})
		if res.Optimal {
			rep.Optimum[label] = res.MaxColor
			rep.ByExact++
			if res.MaxColor > lb {
				rep.LBGapCount++
			}
		} else {
			rep.Unsolved++
		}
	}
	return rep, nil
}

// OptimalityReport summarizes the certification pass.
type OptimalityReport struct {
	// Optimum maps certified instances to their proven optimal maxcolor.
	Optimum map[string]int64
	// ByLBMatch counts instances certified by lower-bound match,
	// ByExact by the CP solver, Unsolved neither (excluded from Fig 9,
	// like the paper's 21 2D / 269 3D MILP-unsolved instances).
	ByLBMatch, ByExact, Unsolved int
	// LBGapCount counts certified instances whose optimum exceeds the
	// max-clique bound (the paper found 4.33% in 2D, 2.65% in 3D).
	LBGapCount int
}

// OptimalRecords rewrites a record set against the proven optima instead
// of the per-suite best, keeping only certified instances — the data of
// Figures 9a/9b. The returned records gain one synthetic "OPT" algorithm
// so the profile's tau=1 line is the true optimum.
func OptimalRecords(records []perfprof.Record, rep *OptimalityReport) []perfprof.Record {
	var out []perfprof.Record
	seen := map[string]bool{}
	for _, rec := range records {
		if _, ok := rep.Optimum[rec.Instance]; !ok {
			continue
		}
		out = append(out, rec)
		if !seen[rec.Instance] {
			seen[rec.Instance] = true
			out = append(out, perfprof.Record{
				Algorithm: "OPT",
				Instance:  rec.Instance,
				Value:     rep.Optimum[rec.Instance],
			})
		}
	}
	return out
}
