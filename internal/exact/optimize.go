package exact

import (
	"sort"

	"stencilivc/internal/core"
)

// Result reports the outcome of an exact optimization attempt.
type Result struct {
	// Coloring is the best valid coloring found (always valid).
	Coloring core.Coloring
	// MaxColor is Coloring's maxcolor, an upper bound on the optimum.
	MaxColor int64
	// LowerBound is the best proven lower bound on the optimum.
	LowerBound int64
	// Optimal reports MaxColor == optimum, proven.
	Optimal bool
	// NodesUsed is the number of decision-search nodes expended.
	NodesUsed int
}

// OptimizeOptions tunes Optimize.
type OptimizeOptions struct {
	// LowerBound is a known valid lower bound (e.g. from package bounds);
	// 0 is always safe.
	LowerBound int64
	// NodeBudget caps the total number of search nodes across all
	// decision queries; <= 0 selects a default.
	NodeBudget int
	// MaxDomainCells is forwarded to the decision procedure.
	MaxDomainCells int
}

// Optimize computes the minimum maxcolor of g, substituting for the
// paper's MILP solver. It seeds an upper bound with a weight-descending
// greedy pass, then binary-searches the smallest feasible K in
// [LowerBound, UB] with the CP decision procedure, all queries drawing on
// one shared node budget. When the budget runs out, the best coloring
// found so far is returned with Optimal=false and the tightest proven
// LowerBound — mirroring how the paper reports MILP-unsolved instances.
func Optimize(g core.Graph, opts OptimizeOptions) Result {
	if opts.NodeBudget <= 0 {
		opts.NodeBudget = defaultNodeBudget
	}
	n := g.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Weight(order[a]) > g.Weight(order[b])
	})
	ubColoring, err := core.GreedyColor(g, order)
	if err != nil {
		panic("exact: identity permutation rejected: " + err.Error())
	}
	res := Result{
		Coloring:   ubColoring,
		MaxColor:   ubColoring.MaxColor(g),
		LowerBound: max(opts.LowerBound, 0),
	}
	lo, hi := res.LowerBound, res.MaxColor // optimum lies in [lo, hi]
	budget := opts.NodeBudget
	for lo < hi && budget > 0 {
		mid := lo + (hi-lo)/2
		verdict, witness := decideBudgeted(g, mid, &budget, opts.MaxDomainCells)
		res.NodesUsed = opts.NodeBudget - budget
		switch verdict {
		case Feasible:
			res.Coloring = witness
			res.MaxColor = witness.MaxColor(g)
			hi = res.MaxColor // witness may beat the query point mid
		case Infeasible:
			lo = mid + 1
			res.LowerBound = max(res.LowerBound, lo)
		default: // Unknown: cannot conclude either way; stop honestly.
			return res
		}
	}
	if lo >= hi {
		res.Optimal = true
		res.LowerBound = res.MaxColor
	}
	return res
}
