package exact

import (
	"fmt"

	"stencilivc/internal/core"
)

// BruteForce computes the exact optimum by exhaustive DFS over explicit
// start values — the slowest but most obviously correct solver, kept as
// the reference that the CP solver and the order branch-and-bound are
// cross-checked against in tests. It refuses instances whose search space
// exceeds maxStates (a plain count of start combinations, capped before
// any search starts), returning an error instead of running forever.
func BruteForce(g core.Graph, maxStates int64) (Result, error) {
	n := g.Len()
	// Upper bound: greedy in index order; optimum lies in [0, ub].
	seed := make([]int, n)
	for i := range seed {
		seed[i] = i
	}
	inc, err := core.GreedyColor(g, seed)
	if err != nil {
		panic("exact: identity permutation rejected: " + err.Error())
	}
	ub := inc.MaxColor(g)

	if maxStates <= 0 {
		maxStates = 50_000_000
	}
	states := int64(1)
	for v := 0; v < n; v++ {
		choices := ub - g.Weight(v) + 1
		if g.Weight(v) == 0 {
			choices = 1
		}
		if choices > 0 {
			states *= choices
		}
		if states > maxStates {
			return Result{}, fmt.Errorf("exact: brute-force space %d exceeds cap %d", states, maxStates)
		}
	}

	b := &bruteSearch{g: g, best: ub, bestCol: inc, cur: core.NewColoring(n)}
	b.dfs(0, 0)
	return Result{
		Coloring:   b.bestCol,
		MaxColor:   b.best,
		LowerBound: b.best,
		Optimal:    true,
	}, nil
}

type bruteSearch struct {
	g       core.Graph
	best    int64
	bestCol core.Coloring
	cur     core.Coloring
	nbuf    []int
}

func (b *bruteSearch) dfs(v int, curMax int64) {
	if curMax >= b.best {
		return
	}
	if v == b.g.Len() {
		b.best = curMax
		b.bestCol = b.cur.Clone()
		return
	}
	w := b.g.Weight(v)
	if w == 0 {
		b.cur.Start[v] = 0
		b.dfs(v+1, curMax)
		b.cur.Start[v] = core.Unset
		return
	}
	for s := int64(0); s+w < b.best; s++ {
		if !b.feasible(v, s) {
			continue
		}
		b.cur.Start[v] = s
		b.dfs(v+1, max(curMax, s+w))
		b.cur.Start[v] = core.Unset
	}
}

// feasible reports whether placing v at start s conflicts with any
// already-placed neighbor.
func (b *bruteSearch) feasible(v int, s int64) bool {
	iv := core.NewInterval(s, b.g.Weight(v))
	b.nbuf = b.g.Neighbors(v, b.nbuf[:0])
	for _, u := range b.nbuf {
		if u < v && iv.Overlaps(b.cur.Interval(b.g, u)) {
			return false
		}
	}
	return true
}
