// Package exact contains exact solvers for interval vertex coloring.
// They substitute for the paper's Gurobi MILP runs (Section VI-D): a
// constraint-propagation decision procedure (Decide), an optimizer built
// on it (Optimize), a permutation branch-and-bound (SolveByOrder), and an
// exhaustive reference solver (BruteForce). All are budgeted: when a
// budget is exhausted they report Unknown/non-optimal instead of guessing.
package exact

import (
	"fmt"
	"math/bits"

	"stencilivc/internal/core"
)

// Verdict is the outcome of a decision query.
type Verdict int

const (
	// Unknown means the search budget was exhausted before an answer.
	Unknown Verdict = iota
	// Feasible means a valid coloring with maxcolor <= K exists.
	Feasible
	// Infeasible means no valid coloring with maxcolor <= K exists.
	Infeasible
)

// String renders the verdict as "feasible", "infeasible", or "unknown".
func (v Verdict) String() string {
	switch v {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// DecideOptions tunes the decision procedure.
type DecideOptions struct {
	// NodeBudget caps the number of search nodes; <= 0 selects a default.
	NodeBudget int
	// MaxDomainCells caps sum over vertices of domain sizes, protecting
	// against instances whose weights make integer domains huge; <= 0
	// selects a default.
	MaxDomainCells int
}

const (
	defaultNodeBudget     = 2_000_000
	defaultMaxDomainCells = 50_000_000
)

// Decide reports whether g can be interval-colored with maxcolor <= K.
// On Feasible the returned coloring is a valid witness.
//
// The procedure is a small CP solver: each positive-weight vertex v has an
// integer domain {0..K-w(v)} of candidate starts held as a bitset;
// singleton domains propagate by deleting overlapping starts from neighbor
// domains; search branches on a minimum-domain vertex. Zero-weight
// vertices are fixed to start 0 up front since empty intervals conflict
// with nothing.
func Decide(g core.Graph, K int64, opts DecideOptions) (Verdict, core.Coloring) {
	if opts.NodeBudget <= 0 {
		opts.NodeBudget = defaultNodeBudget
	}
	budget := opts.NodeBudget
	return decideBudgeted(g, K, &budget, opts.MaxDomainCells)
}

// decideBudgeted is Decide drawing nodes from a shared budget, so that a
// sequence of decision queries (as in Optimize) has a single overall cap.
func decideBudgeted(g core.Graph, K int64, budget *int, maxDomainCells int) (Verdict, core.Coloring) {
	if K < 0 {
		return Infeasible, core.Coloring{}
	}
	if maxDomainCells <= 0 {
		maxDomainCells = defaultMaxDomainCells
	}
	n := g.Len()
	var cells int64
	for v := 0; v < n; v++ {
		w := g.Weight(v)
		if w > K {
			return Infeasible, core.Coloring{}
		}
		cells += K - w + 1
		if cells > int64(maxDomainCells) {
			return Unknown, core.Coloring{}
		}
	}
	st := newDecideState(g, K)
	// Initial propagation: domains that start singleton (w == K, or w == 0
	// which is pinned to 0) constrain their neighbors immediately.
	for v := 0; v < n; v++ {
		if st.count[v] == 1 {
			st.pending = append(st.pending, v)
		}
	}
	if !st.propagate() {
		return Infeasible, core.Coloring{}
	}
	switch st.search(budget) {
	case searchFeasible:
		c := st.extract()
		return Feasible, c
	case searchInfeasible:
		return Infeasible, core.Coloring{}
	default:
		return Unknown, core.Coloring{}
	}
}

type searchOutcome int

const (
	searchInfeasible searchOutcome = iota
	searchFeasible
	searchBudget
)

// decideState holds bitset domains over candidate starts. dom[v] has
// (K - w(v) + 1) meaningful bits; bit s set means start s is still
// feasible for v. Backtracking is trail-based: every bit removal and
// every done-flag set is journaled, and a branch undoes its suffix of the
// journal instead of cloning the whole state — the difference between
// O(changes) and O(domains) per search node.
type decideState struct {
	g       core.Graph
	K       int64
	dom     [][]uint64
	count   []int // popcount of dom[v]
	size    []int // domain universe size K-w+1
	pending []int // vertices whose singleton assignment awaits propagation
	done    []bool

	trail     []trailEntry // journal of removed (vertex, start) bits
	doneTrail []int32      // journal of vertices whose done flag was set
}

// trailEntry is one word's worth of removed domain bits.
type trailEntry struct {
	v    int32
	word int32
	mask uint64 // the bits that were removed from dom[v][word]
}

func newDecideState(g core.Graph, K int64) *decideState {
	n := g.Len()
	st := &decideState{
		g:     g,
		K:     K,
		dom:   make([][]uint64, n),
		count: make([]int, n),
		size:  make([]int, n),
		done:  make([]bool, n),
	}
	for v := 0; v < n; v++ {
		w := g.Weight(v)
		sz := int(K - w + 1)
		if w == 0 {
			sz = 1 // pinned to start 0; conflicts with nothing
		}
		st.size[v] = sz
		words := (sz + 63) / 64
		st.dom[v] = make([]uint64, words)
		for i := 0; i < words; i++ {
			st.dom[v][i] = ^uint64(0)
		}
		if rem := sz % 64; rem != 0 {
			st.dom[v][words-1] = (uint64(1) << rem) - 1
		}
		st.count[v] = sz
	}
	return st
}

// undoTo rolls the state back to a journal snapshot.
func (st *decideState) undoTo(trailMark, doneMark int) {
	for i := len(st.trail) - 1; i >= trailMark; i-- {
		e := st.trail[i]
		st.dom[e.v][e.word] |= e.mask
		st.count[e.v] += bits.OnesCount64(e.mask)
	}
	st.trail = st.trail[:trailMark]
	for i := len(st.doneTrail) - 1; i >= doneMark; i-- {
		st.done[st.doneTrail[i]] = false
	}
	st.doneTrail = st.doneTrail[:doneMark]
}

// removeRange deletes starts in [lo, hi] from v's domain one 64-bit word
// at a time, journaling the removed masks. Interval-coloring propagation
// removes ranges as wide as the vertex weights, so word-granular removal
// (not bit-granular) is what keeps heavy-weight instances tractable.
// Returns false if the domain became empty.
func (st *decideState) removeRange(v int, lo, hi int64) bool {
	lo = max(lo, 0)
	hi = min(hi, int64(st.size[v]-1))
	if lo > hi {
		return st.count[v] > 0
	}
	loW, hiW := lo/64, hi/64
	for w := loW; w <= hiW; w++ {
		mask := ^uint64(0)
		if w == loW {
			mask &= ^uint64(0) << uint(lo%64)
		}
		if w == hiW {
			// Shift by 64 yields 0 in Go, so rem == 63 gives ^uint64(0).
			mask &= uint64(1)<<uint(hi%64+1) - 1
		}
		removed := st.dom[v][w] & mask
		if removed != 0 {
			st.dom[v][w] &^= removed
			st.count[v] -= bits.OnesCount64(removed)
			st.trail = append(st.trail, trailEntry{v: int32(v), word: int32(w), mask: removed})
		}
	}
	return st.count[v] > 0
}

// singletonValue returns the only remaining start of v.
func (st *decideState) singletonValue(v int) int64 {
	for w, word := range st.dom[v] {
		if word != 0 {
			return int64(w*64 + bits.TrailingZeros64(word))
		}
	}
	panic(fmt.Sprintf("exact: vertex %d has empty domain in singletonValue", v))
}

// propagate drains the pending queue: each newly-singleton vertex removes
// conflicting starts from its neighbors, possibly making them singleton in
// turn. Returns false on a wiped-out domain.
func (st *decideState) propagate() bool {
	var buf []int
	for len(st.pending) > 0 {
		v := st.pending[len(st.pending)-1]
		st.pending = st.pending[:len(st.pending)-1]
		if st.done[v] {
			continue
		}
		st.done[v] = true
		st.doneTrail = append(st.doneTrail, int32(v))
		wv := st.g.Weight(v)
		if wv == 0 {
			continue // empty interval constrains nothing
		}
		s := st.singletonValue(v)
		buf = st.g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if st.done[u] {
				continue
			}
			wu := st.g.Weight(u)
			if wu == 0 {
				continue
			}
			// u's start s' conflicts iff [s',s'+wu) overlaps [s,s+wv):
			// s' > s - wu  and  s' < s + wv.
			before := st.count[u]
			if !st.removeRange(u, s-wu+1, s+wv-1) {
				return false
			}
			if st.count[u] == 1 && before > 1 {
				st.pending = append(st.pending, u)
			}
		}
	}
	return true
}

// search runs DFS with minimum-domain branching.
func (st *decideState) search(budget *int) searchOutcome {
	if *budget <= 0 {
		return searchBudget
	}
	*budget--
	// Pick the unassigned vertex with the smallest domain.
	pick, best := -1, 1<<62
	for v := range st.count {
		if !st.done[v] && st.count[v] < best {
			pick, best = v, st.count[v]
		}
	}
	if pick == -1 {
		return searchFeasible // all singleton and propagated
	}
	sawBudget := false
	for s := int64(0); s < int64(st.size[pick]); s++ {
		word, bit := s/64, uint(s%64)
		if st.dom[pick][word]&(1<<bit) == 0 {
			continue
		}
		trailMark, doneMark := len(st.trail), len(st.doneTrail)
		// Restrict pick's domain to {s} (journaled), then propagate.
		ok := st.removeRange(pick, 0, s-1) && st.removeRange(pick, s+1, int64(st.size[pick]-1))
		if ok {
			st.pending = append(st.pending[:0], pick)
			ok = st.propagate()
		}
		if ok {
			switch st.search(budget) {
			case searchFeasible:
				return searchFeasible // keep state intact for extract()
			case searchBudget:
				sawBudget = true
			}
		}
		st.pending = st.pending[:0]
		st.undoTo(trailMark, doneMark)
		if *budget <= 0 {
			return searchBudget
		}
	}
	if sawBudget {
		return searchBudget
	}
	return searchInfeasible
}

// extract reads the witness coloring out of an all-singleton state.
func (st *decideState) extract() core.Coloring {
	c := core.NewColoring(st.g.Len())
	for v := 0; v < st.g.Len(); v++ {
		c.Start[v] = st.singletonValue(v)
	}
	return c
}
