package exact

import (
	"math/rand"
	"testing"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// randomGraph returns a random graph with n vertices, edge probability
// p percent, and weights in [0, maxW].
func randomGraph(rng *rand.Rand, n, pPct int, maxW int64) *core.CSRGraph {
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = rng.Int63n(maxW + 1)
	}
	var edges []core.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(100) < pPct {
				edges = append(edges, core.Edge{U: i, V: j})
			}
		}
	}
	return core.MustCSRGraph(weights, edges)
}

func TestDecideTrivial(t *testing.T) {
	g := core.Chain([]int64{3, 4})
	if v, _ := Decide(g, 6, DecideOptions{}); v != Infeasible {
		t.Errorf("K=6 verdict = %v, want infeasible", v)
	}
	v, c := Decide(g, 7, DecideOptions{})
	if v != Feasible {
		t.Fatalf("K=7 verdict = %v, want feasible", v)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if c.MaxColor(g) > 7 {
		t.Errorf("witness maxcolor = %d > 7", c.MaxColor(g))
	}
	if v, _ := Decide(g, -1, DecideOptions{}); v != Infeasible {
		t.Error("negative K not infeasible")
	}
}

func TestDecideZeroWeights(t *testing.T) {
	g := core.Clique([]int64{0, 0, 0})
	v, c := Decide(g, 0, DecideOptions{})
	if v != Feasible {
		t.Fatalf("all-zero clique verdict = %v", v)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestDecideSingleVertex(t *testing.T) {
	g := core.Chain([]int64{5})
	if v, _ := Decide(g, 4, DecideOptions{}); v != Infeasible {
		t.Error("w=5 fits in K=4?")
	}
	if v, _ := Decide(g, 5, DecideOptions{}); v != Feasible {
		t.Error("w=5 does not fit in K=5?")
	}
}

func TestDecideDomainCap(t *testing.T) {
	g := core.Chain([]int64{1, 1, 1})
	if v, _ := Decide(g, 1_000_000, DecideOptions{MaxDomainCells: 10}); v != Unknown {
		t.Error("domain cap not honored")
	}
}

func TestDecideBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 14, 60, 6)
	lb := bounds.MaxPair(g)
	// A budget of 1 node cannot decide a nontrivial instance at its LB
	// unless propagation alone settles it; accept Unknown or a real answer,
	// but never a wrong one.
	v, c := Decide(g, lb, DecideOptions{NodeBudget: 1})
	if v == Feasible {
		if err := c.Validate(g); err != nil {
			t.Fatalf("budget-1 feasible witness invalid: %v", err)
		}
	}
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng, 2+rng.Intn(6), 50, 5)
		want, err := BruteForce(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := Optimize(g, OptimizeOptions{LowerBound: bounds.MaxPair(g)})
		if !got.Optimal {
			t.Fatalf("trial %d: Optimize not optimal", trial)
		}
		if got.MaxColor != want.MaxColor {
			t.Fatalf("trial %d: Optimize = %d, BruteForce = %d", trial, got.MaxColor, want.MaxColor)
		}
		if err := got.Coloring.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSolveByOrderMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 2+rng.Intn(5), 60, 4)
		want, err := BruteForce(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := SolveByOrder(g, 0, 0)
		if !got.Optimal {
			t.Fatalf("trial %d: SolveByOrder not optimal", trial)
		}
		if got.MaxColor != want.MaxColor {
			t.Fatalf("trial %d: SolveByOrder = %d, BruteForce = %d", trial, got.MaxColor, want.MaxColor)
		}
		if err := got.Coloring.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExactSolversOnSmallStencil(t *testing.T) {
	// 3x3 stencil with deterministic weights; all three exact methods must
	// agree, and the result must be >= the K4 bound.
	g := grid.MustGrid2D(3, 3)
	weights := []int64{2, 1, 3, 0, 4, 1, 2, 2, 1}
	copy(g.W, weights)
	lb := bounds.MaxK4(g)

	brute, err := BruteForce(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(g, OptimizeOptions{LowerBound: lb})
	ord := SolveByOrder(g, lb, 0)
	if !opt.Optimal || !ord.Optimal {
		t.Fatalf("optimality flags: cp=%v order=%v", opt.Optimal, ord.Optimal)
	}
	if opt.MaxColor != brute.MaxColor || ord.MaxColor != brute.MaxColor {
		t.Fatalf("disagreement: brute=%d cp=%d order=%d", brute.MaxColor, opt.MaxColor, ord.MaxColor)
	}
	if opt.MaxColor < lb {
		t.Fatalf("optimum %d below K4 bound %d", opt.MaxColor, lb)
	}
}

func TestOptimizeCliqueIsSumOfWeights(t *testing.T) {
	weights := []int64{3, 1, 4, 1, 5}
	g := core.Clique(weights)
	res := Optimize(g, OptimizeOptions{})
	if !res.Optimal || res.MaxColor != 14 {
		t.Fatalf("clique optimum = %d (optimal=%v), want 14", res.MaxColor, res.Optimal)
	}
}

func TestOptimizeBipartiteIsMaxPair(t *testing.T) {
	g := core.CompleteBipartite([]int64{4, 2}, []int64{3, 5})
	res := Optimize(g, OptimizeOptions{})
	if !res.Optimal || res.MaxColor != 9 {
		t.Fatalf("bipartite optimum = %d (optimal=%v), want 9", res.MaxColor, res.Optimal)
	}
}

func TestBruteForceRefusesHugeInstances(t *testing.T) {
	weights := make([]int64, 40)
	for i := range weights {
		weights[i] = 50
	}
	g := core.Clique(weights)
	if _, err := BruteForce(g, 1000); err == nil {
		t.Error("BruteForce accepted a huge instance")
	}
}

func TestOptimizeBudgetHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 20, 60, 8)
	res := Optimize(g, OptimizeOptions{NodeBudget: 2})
	if err := res.Coloring.Validate(g); err != nil {
		t.Fatalf("budgeted result invalid: %v", err)
	}
	if res.MaxColor < res.LowerBound {
		t.Fatalf("upper bound %d below lower bound %d", res.MaxColor, res.LowerBound)
	}
}

func TestVerdictString(t *testing.T) {
	if Feasible.String() != "feasible" || Infeasible.String() != "infeasible" || Unknown.String() != "unknown" {
		t.Error("Verdict strings wrong")
	}
}
