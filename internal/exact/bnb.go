package exact

import (
	"sort"

	"stencilivc/internal/core"
)

// SolveByOrder is an exact branch-and-bound over vertex orders with greedy
// placement, independent of the CP solver (the two cross-check each other
// in tests).
//
// Exactness rests on a compression argument. Take any optimal coloring
// and repeatedly move each vertex to its lowest feasible start given the
// others; the total of all starts strictly decreases, so this terminates
// in a "compressed" optimal coloring where every vertex sits at its lowest
// feasible start. Replay its vertices in nondecreasing start order through
// the greedy engine: when vertex v is placed, only neighbors with earlier
// starts are present, so greedy's choice is <= v's compressed start, and
// the result is valid with maxcolor no larger than the optimum. Hence some
// vertex order makes plain greedy optimal, and exhausting orders (with
// pruning) is exact.
//
// The search prunes a branch as soon as its partial maxcolor reaches the
// incumbent, and stops early when the incumbent meets lowerBound. With a
// node budget of <= 0 a default is used. Returns the best coloring found
// and whether optimality was proven (budget not exhausted, or incumbent
// == lowerBound).
func SolveByOrder(g core.Graph, lowerBound int64, nodeBudget int) Result {
	if nodeBudget <= 0 {
		nodeBudget = defaultNodeBudget
	}
	n := g.Len()
	// Incumbent: greedy in weight-descending order.
	seed := make([]int, n)
	for i := range seed {
		seed[i] = i
	}
	sort.SliceStable(seed, func(a, b int) bool {
		return g.Weight(seed[a]) > g.Weight(seed[b])
	})
	inc, err := core.GreedyColor(g, seed)
	if err != nil {
		panic("exact: seed permutation rejected: " + err.Error())
	}
	s := &orderSearch{
		g:       g,
		best:    inc.MaxColor(g),
		bestCol: inc,
		lb:      max(lowerBound, 0),
		budget:  nodeBudget,
		cur:     core.NewColoring(n),
		used:    make([]bool, n),
	}
	if s.best > s.lb {
		s.dfs(0, 0)
	}
	return Result{
		Coloring:   s.bestCol,
		MaxColor:   s.best,
		LowerBound: s.lb,
		Optimal:    s.budget > 0 || s.best == s.lb,
		NodesUsed:  nodeBudget - s.budget,
	}
}

type orderSearch struct {
	g       core.Graph
	best    int64
	bestCol core.Coloring
	lb      int64
	budget  int
	cur     core.Coloring
	used    []bool
	scratch core.FitScratch
}

func (s *orderSearch) dfs(placed int, curMax int64) {
	if s.budget <= 0 || s.best == s.lb {
		return
	}
	s.budget--
	if placed == s.g.Len() {
		if curMax < s.best {
			s.best = curMax
			s.bestCol = s.cur.Clone()
		}
		return
	}
	for v := 0; v < s.g.Len(); v++ {
		if s.used[v] {
			continue
		}
		start := s.scratch.PlaceLowest(s.g, s.cur, v, -1)
		end := start + s.g.Weight(v)
		if max(curMax, end) >= s.best {
			continue // cannot improve on the incumbent
		}
		s.used[v] = true
		s.cur.Start[v] = start
		s.dfs(placed+1, max(curMax, end))
		s.cur.Start[v] = core.Unset
		s.used[v] = false
		if s.budget <= 0 || s.best == s.lb {
			return
		}
	}
}
