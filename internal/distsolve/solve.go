package distsolve

import (
	"sync/atomic"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
	"stencilivc/internal/order"
	"stencilivc/internal/parallel"
)

// Defaults of the distributed round protocol. The retry timeout is
// generous relative to a shard sweep so the happy path rarely
// retransmits; the backoff cap and retry budget bound how long one
// round can stall before the coordinator escalates.
const (
	// DefaultShards is the shard count when Config.Shards is unset.
	DefaultShards = 4
	// DefaultMaxRounds is the floor of the default round budget. The
	// effective default is max(DefaultMaxRounds, gx+gy+gz): weight-order
	// sweeps converge in a handful of rounds independent of size, but
	// line order propagates boundary corrections as a wavefront whose
	// round count grows with the grid extents (~0.4×Y empirically), so
	// the budget must scale with the instance. The cap only bounds
	// worst-case latency — the fallback computes the identical coloring.
	DefaultMaxRounds = 32
	// DefaultMaxRetries is the per-message retransmission budget.
	DefaultMaxRetries = 6
	// DefaultRetryTimeout is the initial ACK deadline.
	DefaultRetryTimeout = 25 * time.Millisecond
	// DefaultBackoffCap caps the exponential retry backoff.
	DefaultBackoffCap = 200 * time.Millisecond
	// DefaultChaosDelay is how long an injected msg-delay defers a
	// delivery.
	DefaultChaosDelay = 2 * time.Millisecond
)

// Config tunes the distributed sharded solver. The zero value is a
// valid default configuration (4 shards, line order).
type Config struct {
	// Shards is the number of shards to split the grid into; <= 0 picks
	// DefaultShards. The effective count may be lower when the grid has
	// fewer cells along an axis than the per-axis factorization asks
	// for.
	Shards int
	// Order is the global visit order (parallel.OrderLine for GLL,
	// parallel.OrderWeightDesc for GLF); shards sweep their region in
	// this order restricted to the shard.
	Order parallel.Order
	// MaxRounds caps protocol rounds before the sequential fallback;
	// <= 0 picks max(DefaultMaxRounds, sum of grid extents), which
	// covers line order's size-dependent boundary wavefront.
	MaxRounds int
	// MaxRetries caps per-message retransmissions; <= 0 picks
	// DefaultMaxRetries.
	MaxRetries int
	// RetryTimeout is the initial ACK deadline; <= 0 picks
	// DefaultRetryTimeout.
	RetryTimeout time.Duration
	// BackoffCap caps the exponential retry backoff; <= 0 picks
	// DefaultBackoffCap.
	BackoffCap time.Duration
	// Delay is the injected msg-delay deferral; <= 0 picks
	// DefaultChaosDelay.
	Delay time.Duration
	// Transport overrides the in-process ChanTransport (tests). The
	// caller owns an injected transport's lifecycle; the solver only
	// closes transports it built itself.
	Transport Transport
}

// sim is the shared read-only wiring of one distributed solve: the
// instance, the shard geometry, the transport, and the observability
// sinks. Nodes hold a pointer to it; all mutable per-shard state lives
// in the nodes themselves.
type sim struct {
	g          core.FixedGraph
	boxes      []box
	gx, gy, gz int
	weightDesc bool
	uniW       int64

	tr Transport
	dm *obsv.DistMetrics
	ev *obsv.EventSink
	// tc is the originating request's flight-recorder context (nil when
	// the solve is untraced): nodes stamp its ids into wire messages and
	// the coordinator records round spans and crash/re-home/fallback
	// events against it.
	tc *obsv.TraceContext
	// otr is the options tracer; each node claims a labeled lane on it so
	// shard activity renders as named rows in the Chrome export.
	otr *obsv.Trace

	reports chan report
	gather  chan dump

	retryTimeout time.Duration
	backoffCap   time.Duration
	maxRetries   int

	// sent counts this solve's first-send data messages, for the
	// fixpoint event (the metrics counter aggregates across solves).
	sent atomic.Int64
}

// Solve colors s with the fault-tolerant distributed sharded solver:
// the grid splits into cfg.Shards regions over rectpart's balanced
// cuts, one simulated node per shard sweeps its region each round, and
// boundaries reconcile through the message-passing halo exchange. The
// returned coloring is always complete and valid, and — because the
// protocol's fixpoint is pinned to the sequential greedy over the same
// order, and every degraded rung (crash re-homing, retry escalation,
// the round-budget fallback) converges to or directly computes that
// same coloring — it is byte-identical to
// core.GreedyColorOpts(s, order, opts) on every no-fault run and under
// every storm that lets the solve terminate, which the escalation
// ladder guarantees.
//
// Instances that cannot shard (non-grid stencils, a single effective
// shard) solve sequentially. Cancellation is checked at round
// granularity and propagates as the context's error.
func Solve(s grid.Stencil, cfg Config, opts *core.SolveOptions) (core.Coloring, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	fg, ok := s.(core.FixedGraph)
	if !ok || shards <= 1 {
		return core.GreedyColorOpts(s, orderFor(s, cfg), opts)
	}
	boxes, gx, gy, gz, err := decompose(s, shards)
	if err != nil || len(boxes) <= 1 {
		// Undecomposable instances are not failures — they just have no
		// distribution to exploit.
		return core.GreedyColorOpts(s, orderFor(s, cfg), opts)
	}
	return solveSharded(fg, s, cfg, opts, boxes, gx, gy, gz)
}

// orderFor is the sequential visit order matching cfg.Order, shared by
// the single-shard path and the fallback rungs so every path produces
// the same bytes.
func orderFor(s grid.Stencil, cfg Config) []int {
	if cfg.Order == parallel.OrderWeightDesc {
		return order.ByWeightDesc(s)
	}
	return s.LineOrder()
}

// solveSharded runs the round protocol proper. See doc.go for the
// protocol and DESIGN.md §16 for why the termination check is sound.
func solveSharded(fg core.FixedGraph, st grid.Stencil, cfg Config, opts *core.SolveOptions, boxes []box, gx, gy, gz int) (core.Coloring, error) {
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = max(DefaultMaxRounds, gx+gy+gz)
	}
	sm := &sim{
		g:            fg,
		boxes:        boxes,
		gx:           gx,
		gy:           gy,
		gz:           gz,
		weightDesc:   cfg.Order == parallel.OrderWeightDesc,
		retryTimeout: cfg.RetryTimeout,
		backoffCap:   cfg.BackoffCap,
		maxRetries:   cfg.MaxRetries,
		reports:      make(chan report, len(boxes)),
		gather:       make(chan dump, len(boxes)),
		ev:           opts.EventLog(),
		tc:           opts.FlightCtx(),
		otr:          opts.Tracer(),
	}
	if sm.retryTimeout <= 0 {
		sm.retryTimeout = DefaultRetryTimeout
	}
	if sm.backoffCap <= 0 {
		sm.backoffCap = DefaultBackoffCap
	}
	if sm.maxRetries <= 0 {
		sm.maxRetries = DefaultMaxRetries
	}
	if m := opts.Meters(); m != nil {
		sm.dm = m.Dist
	}
	if sm.dm == nil {
		sm.dm = &obsv.DistMetrics{} // nil counters are no-ops
	}
	if w, ok := core.UniformWeight(fg); ok {
		sm.uniW = w
	}
	inj := opts.Faults()
	delay := cfg.Delay
	if delay <= 0 {
		delay = DefaultChaosDelay
	}
	var ownTr *ChanTransport
	sm.tr = cfg.Transport
	if sm.tr == nil {
		ownTr = NewChanTransport(len(boxes), inj, sm.dm, delay)
		sm.tr = ownTr
	}

	type handle struct {
		n       *node
		rehomed bool
	}
	hs := make([]*handle, len(boxes))
	for id, b := range boxes {
		hs[id] = &handle{n: newNode(id, b, sm)}
	}
	for _, h := range hs {
		go h.n.run()
	}
	stopped := false
	stopAll := func() {
		if stopped {
			return
		}
		stopped = true
		for _, h := range hs {
			h.n.ctrl <- ctrlMsg{kind: ctrlStop}
			<-h.n.done
		}
		if ownTr != nil {
			ownTr.Close()
		}
	}
	defer stopAll()

	// rehome moves shard id onto a fresh replacement node: the old
	// goroutine is stopped synchronously (so exactly one goroutine ever
	// drains the shard's inbox), the region restarts from Unset, and
	// the replacement's sends turn reliable. Returns false when the
	// shard was already re-homed — the fence that turns repeated
	// trouble into the global fallback instead of a crash loop.
	rehome := func(id int, round int64, reason string) bool {
		h := hs[id]
		if h.rehomed {
			return false
		}
		h.n.ctrl <- ctrlMsg{kind: ctrlStop}
		<-h.n.done
		if rm, ok := sm.tr.(interface{ MarkReliable(int) }); ok {
			rm.MarkReliable(id)
		}
		h.n = newNode(id, boxes[id], sm)
		h.rehomed = true
		go h.n.run()
		sm.dm.Rehomes.Add(1)
		sm.ev.DistRehome(id, int(round), reason)
		sm.tc.Event("dist.rehome", reason, int64(id))
		return true
	}

	fallback := func(reason string) (core.Coloring, error) {
		sm.dm.Fallbacks.Add(1)
		if m := opts.Meters(); m != nil {
			m.Fallbacks.Add(1)
		}
		sm.ev.Fallback("distsolve", reason)
		sm.tc.Event("dist.fallback", reason, 0)
		stopAll()
		defer core.StartPhase(opts, "distsolve/seq-fallback")()
		return core.GreedyColorOpts(st, orderFor(st, cfg), opts)
	}

	sm.ev.DistStart(len(boxes), maxRounds)
	done := core.StartPhase(opts, "distsolve/rounds")

	// prevOK records whether the previous round's exchange was fully
	// acknowledged. Certifying the fixpoint needs TWO clean exchanges
	// back to back: the previous round's (so every sweep this round saw
	// its neighbors' current values) and this round's (so no boundary
	// message is outstanding when fixpoint is declared).
	prevOK := false
	var round int64
	for round = 1; ; round++ {
		if err := opts.Err(); err != nil {
			done()
			return core.Coloring{}, err
		}
		if round > int64(maxRounds) {
			done()
			return fallback("round budget exhausted before fixpoint")
		}
		// Each protocol round is one flight span (arg = round number), so
		// a /debug/flight dump shows how a stormed request's rounds — and
		// the crash/re-home/retry events inside them — spent their time.
		rs := sm.tc.Start("dist/round")
		// Crash injection: consulted once per live original node, in
		// node-id order, at the barrier — deterministic for a seeded
		// schedule. Re-homed shards are fenced.
		if inj != nil {
			for id, h := range hs {
				if h.rehomed {
					continue
				}
				if core.InjectTraced(inj, SiteShardCrash, sm.tc.TraceID()) {
					sm.dm.ShardCrashes.Add(1)
					sm.ev.DistCrash(id, int(round))
					sm.tc.Event("dist.crash", "", int64(id))
					rehome(id, round, "crashed")
				}
			}
		}
		for _, h := range hs {
			h.n.ctrl <- ctrlMsg{kind: ctrlRound, round: round}
		}
		var changed int64
		exchangeOK := true
		var failures []report
		for range hs {
			r := <-sm.reports
			changed += r.changed
			if len(r.failed) > 0 {
				exchangeOK = false
				failures = append(failures, r)
			}
		}
		sm.dm.Rounds.Add(1)
		sm.ev.DistRound(int(round), changed, exchangeOK)
		// Escalation ladder for exhausted retries: first suspect the
		// silent destination, then the sender's lossy uplink; when both
		// ends already run reliable, the protocol cannot help — bedrock.
		for _, r := range failures {
			for _, dest := range r.failed {
				if rehome(dest, round, "unresponsive to peer retries") {
					continue
				}
				if rehome(r.node, round, "sends exhausted retries against a reliable peer") {
					continue
				}
				rs.EndDetail("retry exhaustion", round)
				done()
				return fallback("retry exhaustion between re-homed shards")
			}
		}
		rs.EndDetail("", round)
		if changed == 0 && exchangeOK && prevOK {
			break
		}
		prevOK = exchangeOK
	}
	done()
	sm.ev.DistFixpoint(int(round), sm.sent.Load())

	defer core.StartPhase(opts, "distsolve/gather")()
	c := core.NewColoring(st.Len())
	for _, h := range hs {
		h.n.ctrl <- ctrlMsg{kind: ctrlGather}
	}
	for range hs {
		d := <-sm.gather
		for i, v := range d.verts {
			c.Start[v] = d.starts[i]
		}
	}
	stopAll()
	return c, nil
}
