package distsolve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"

	"stencilivc/internal/chaos"
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
	"stencilivc/internal/parallel"
)

// stormTuning keeps chaos tests fast: tiny ACK deadlines so retry
// exhaustion and escalation happen in milliseconds, not seconds.
func stormTuning(cfg Config) Config {
	cfg.RetryTimeout = 2 * time.Millisecond
	cfg.BackoffCap = 8 * time.Millisecond
	cfg.Delay = time.Millisecond
	return cfg
}

// weighted2D returns an x by y grid with varied weights.
func weighted2D(x, y int) *grid.Grid2D {
	g := grid.MustGrid2D(x, y)
	for v := range g.W {
		g.W[v] = int64(v%7) + 1
	}
	return g
}

// weighted3D returns an x by y by z grid with varied weights.
func weighted3D(x, y, z int) *grid.Grid3D {
	g := grid.MustGrid3D(x, y, z)
	for v := range g.W {
		g.W[v] = int64(v%5) + 1
	}
	return g
}

// sequential computes the reference coloring: the sequential greedy
// over the same global order the distributed protocol is pinned to.
func sequential(t *testing.T, s grid.Stencil, ord parallel.Order) core.Coloring {
	t.Helper()
	want, err := core.GreedyColorOpts(s, orderFor(s, Config{Order: ord}), nil)
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	return want
}

// assertIdentical fails unless got is byte-identical to the sequential
// reference (and therefore valid).
func assertIdentical(t *testing.T, s grid.Stencil, got, want core.Coloring) {
	t.Helper()
	if err := got.Validate(s.(core.Graph)); err != nil {
		t.Fatalf("distributed result invalid: %v", err)
	}
	if !slices.Equal(got.Start, want.Start) {
		for i := range want.Start {
			if got.Start[i] != want.Start[i] {
				t.Fatalf("coloring diverges from sequential greedy at v=%d: got %d want %d",
					i, got.Start[i], want.Start[i])
			}
		}
	}
}

func newMetrics() *obsv.SolveMetrics {
	return obsv.NewSolveMetrics(obsv.NewRegistry())
}

// TestEquivalenceNoFault: on fault-free runs the distributed solve is
// byte-identical to the sequential greedy for every shard count, both
// global orders, 2D and 3D, including degenerate shapes (strips, grids
// smaller than the shard count, zero-weight regions) — and it gets
// there through the round protocol, never the fallback.
func TestEquivalenceNoFault(t *testing.T) {
	zw := grid.MustGrid2D(16, 16) // top half zero-weight
	for v := range zw.W {
		if v/16 < 8 {
			zw.W[v] = int64(v%3) + 1
		}
	}
	allZero := grid.MustGrid2D(9, 9)
	instances := []struct {
		name string
		s    grid.Stencil
	}{
		{"2d-40x40", weighted2D(40, 40)},
		{"2d-strip-1x64", weighted2D(1, 64)},
		{"2d-strip-64x1", weighted2D(64, 1)},
		{"2d-tiny-3x3", weighted2D(3, 3)},
		{"2d-zero-top-half", zw},
		{"2d-all-zero-weights", allZero},
		{"3d-10x8x6", weighted3D(10, 8, 6)},
	}
	for _, tc := range instances {
		for _, shards := range []int{2, 4, 7, 16} {
			for _, ord := range []parallel.Order{parallel.OrderLine, parallel.OrderWeightDesc} {
				t.Run(fmt.Sprintf("%s/shards=%d/order=%d", tc.name, shards, ord), func(t *testing.T) {
					m := newMetrics()
					got, err := Solve(tc.s, Config{Shards: shards, Order: ord}, &core.SolveOptions{Metrics: m})
					if err != nil {
						t.Fatal(err)
					}
					assertIdentical(t, tc.s, got, sequential(t, tc.s, ord))
					if fb := m.Dist.Fallbacks.Value(); fb != 0 {
						t.Errorf("no-fault run used the fallback %d times; identity must come from the fixpoint", fb)
					}
				})
			}
		}
	}
}

// TestStormMatrix: each chaos site alone, and all four together, on 2D
// and 3D instances. Every storm run must terminate, validate, stay
// byte-identical to the sequential greedy, and leave the expected
// fault/recovery counters nonzero.
func TestStormMatrix(t *testing.T) {
	arm := func(in *chaos.Injector, site core.FaultSite) *chaos.Injector {
		switch site {
		case SiteShardCrash:
			return in.OnNth(site, 1) // permanent crash of shard 0, round 1
		default:
			return in.WithProb(site, 0.2)
		}
	}
	counter := func(m *obsv.SolveMetrics, site core.FaultSite) *obsv.Counter {
		switch site {
		case SiteMsgDrop:
			return m.Dist.MsgsDropped
		case SiteMsgDup:
			return m.Dist.MsgsDuplicated
		case SiteMsgDelay:
			return m.Dist.MsgsDelayed
		default:
			return m.Dist.ShardCrashes
		}
	}
	sites := []core.FaultSite{SiteMsgDrop, SiteMsgDup, SiteMsgDelay, SiteShardCrash}
	instances := []struct {
		name string
		s    grid.Stencil
	}{
		{"2d", weighted2D(24, 24)},
		{"3d", weighted3D(8, 8, 4)},
	}
	for _, tc := range instances {
		for _, site := range sites {
			t.Run(fmt.Sprintf("%s/%s", tc.name, site), func(t *testing.T) {
				inj := arm(chaos.New(7), site)
				m := newMetrics()
				got, err := Solve(tc.s, stormTuning(Config{Shards: 4}),
					&core.SolveOptions{Injector: inj, Metrics: m})
				if err != nil {
					t.Fatal(err)
				}
				assertIdentical(t, tc.s, got, sequential(t, tc.s, parallel.OrderLine))
				if c := counter(m, site); c.Value() == 0 {
					t.Errorf("site %s never took effect (injector: %s)", site, inj)
				}
				if site == SiteShardCrash {
					if m.Dist.Rehomes.Value() == 0 {
						t.Error("crashed shard was never re-homed")
					}
				}
			})
		}
		t.Run(tc.name+"/all-four", func(t *testing.T) {
			inj := chaos.New(11).
				WithProb(SiteMsgDrop, 0.15).
				WithProb(SiteMsgDup, 0.15).
				WithProb(SiteMsgDelay, 0.15).
				OnNth(SiteShardCrash, 2)
			m := newMetrics()
			got, err := Solve(tc.s, stormTuning(Config{Shards: 4}),
				&core.SolveOptions{Injector: inj, Metrics: m})
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, tc.s, got, sequential(t, tc.s, parallel.OrderLine))
			for _, site := range sites {
				if c := counter(m, site); c.Value() == 0 {
					t.Errorf("site %s never took effect under the combined storm", site)
				}
			}
			if m.Dist.Rehomes.Value() == 0 {
				t.Error("combined storm: crashed shard was never re-homed")
			}
			if m.Dist.MsgsRetried.Value() == 0 {
				t.Error("combined storm: drops never provoked a retry")
			}
		})
	}
}

// TestEveryShardCrashes: a schedule that crashes every original node on
// its first consultation. All shards re-home, replacements run
// reliable, and the solve still converges to the exact sequential
// coloring.
func TestEveryShardCrashes(t *testing.T) {
	g := weighted2D(20, 20)
	inj := chaos.New(3).WithProb(SiteShardCrash, 1.0)
	m := newMetrics()
	got, err := Solve(g, stormTuning(Config{Shards: 4}), &core.SolveOptions{Injector: inj, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, g, got, sequential(t, g, parallel.OrderLine))
	if c := m.Dist.ShardCrashes.Value(); c != 4 {
		t.Errorf("shard crashes = %d, want 4 (one per shard, then fenced)", c)
	}
	if c := m.Dist.Rehomes.Value(); c != 4 {
		t.Errorf("re-homes = %d, want 4", c)
	}
}

// TestTotalMessageLossEscalates: every chaos-eligible send is dropped.
// Retries exhaust, the escalation ladder re-homes shards onto reliable
// transports round by round, and the result is still byte-identical —
// possibly via the bedrock fallback if escalation runs out of rungs.
func TestTotalMessageLossEscalates(t *testing.T) {
	g := weighted2D(16, 16)
	inj := chaos.New(5).WithProb(SiteMsgDrop, 1.0)
	m := newMetrics()
	cfg := stormTuning(Config{Shards: 4, MaxRetries: 2})
	got, err := Solve(g, cfg, &core.SolveOptions{Injector: inj, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, g, got, sequential(t, g, parallel.OrderLine))
	if m.Dist.MsgsRetried.Value() == 0 {
		t.Error("total loss provoked no retries")
	}
	if m.Dist.Rehomes.Value() == 0 && m.Dist.Fallbacks.Value() == 0 {
		t.Error("total loss triggered neither re-homing nor the fallback")
	}
}

// TestRoundBudgetFallsBack: a 1-round budget cannot certify a fixpoint
// (certification needs two clean exchanges), so the solve must take the
// sequential fallback — and still return the identical bytes.
func TestRoundBudgetFallsBack(t *testing.T) {
	g := weighted2D(24, 24)
	m := newMetrics()
	got, err := Solve(g, Config{Shards: 4, MaxRounds: 1}, &core.SolveOptions{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, g, got, sequential(t, g, parallel.OrderLine))
	if m.Dist.Fallbacks.Value() != 1 {
		t.Errorf("fallbacks = %d, want 1", m.Dist.Fallbacks.Value())
	}
	if m.Fallbacks.Value() == 0 {
		t.Error("solver-level fallback counter not bumped")
	}
}

// TestCancellation: a cancelled context surfaces as its error at the
// next round boundary, and the solver shuts its nodes and transport
// down cleanly (the race detector would flag leaks into t teardown).
func TestCancellation(t *testing.T) {
	g := weighted2D(32, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(g, Config{Shards: 4}, &core.SolveOptions{Ctx: ctx})
	if err == nil {
		t.Fatal("cancelled solve returned nil error")
	}
	if ctx.Err() == nil || err.Error() != ctx.Err().Error() {
		t.Fatalf("got %v, want the context error", err)
	}
}

// TestSingleShardAndNonGridFallThrough: shard counts that cannot split
// the instance solve sequentially without touching the distributed
// machinery (no rounds, no fallback counters).
func TestSingleShardAndNonGridFallThrough(t *testing.T) {
	g := weighted2D(8, 8)
	want := sequential(t, g, parallel.OrderLine)
	for _, shards := range []int{0, 1} {
		m := newMetrics()
		got, err := Solve(g, Config{Shards: shards, MaxRounds: 1}, &core.SolveOptions{Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		// Shards=0 defaults to 4 and runs distributed; shards=1 must not.
		if shards == 1 && m.Dist.Rounds.Value() != 0 {
			t.Errorf("shards=1 ran %d protocol rounds, want 0", m.Dist.Rounds.Value())
		}
		assertIdentical(t, g, got, want)
	}
}

// TestSeededStormDeterminism: the same seed and instance produce the
// same injector decisions and the same (sequential-identical) coloring
// twice. Counters that depend only on the seeded schedule must agree.
func TestSeededStormDeterminism(t *testing.T) {
	run := func() (core.Coloring, int64) {
		g := weighted2D(20, 20)
		inj := chaos.New(42).WithProb(SiteMsgDrop, 0.3).OnNth(SiteShardCrash, 1)
		m := newMetrics()
		c, err := Solve(g, stormTuning(Config{Shards: 4}), &core.SolveOptions{Injector: inj, Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		return c, m.Dist.ShardCrashes.Value()
	}
	c1, crashes1 := run()
	c2, crashes2 := run()
	if !slices.Equal(c1.Start, c2.Start) {
		t.Error("same seed produced different colorings")
	}
	if crashes1 != crashes2 || crashes1 != 1 {
		t.Errorf("crash counts differ or wrong: %d vs %d, want 1", crashes1, crashes2)
	}
}

// TestDistEvents: the solve emits the dist.* event stream — start,
// rounds, and a terminal fixpoint — with the crash/re-home pair when a
// shard dies.
func TestDistEvents(t *testing.T) {
	g := weighted2D(16, 16)
	var buf bytes.Buffer
	sink := obsv.NewJSONEventSink(&buf)
	inj := chaos.New(9).OnNth(SiteShardCrash, 1)
	_, err := Solve(g, stormTuning(Config{Shards: 4}),
		&core.SolveOptions{Events: sink, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e struct {
			Msg string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		msgs = append(msgs, e.Msg)
	}
	for _, want := range []string{"dist.start", "dist.round", "dist.crash", "dist.rehome", "dist.fixpoint"} {
		if !slices.Contains(msgs, want) {
			t.Errorf("event %q missing from stream %v", want, msgs)
		}
	}
}
