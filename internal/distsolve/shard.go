package distsolve

import (
	"fmt"

	"stencilivc/internal/grid"
	"stencilivc/internal/rectpart"
)

// box is one shard's region: a half-open axis-aligned block of grid
// cells. 2D shards use Z0=0, Z1=1.
type box struct {
	X0, X1, Y0, Y1, Z0, Z1 int
}

// empty reports whether the box contains no cells. Weight-degenerate
// instances (whole zero-weight planes) legitimately produce empty
// shards: the 1D probe pushes every cut to the axis end.
func (b box) empty() bool { return b.X0 >= b.X1 || b.Y0 >= b.Y1 || b.Z0 >= b.Z1 }

// cells returns the number of cells in the box.
func (b box) cells() int {
	if b.empty() {
		return 0
	}
	return (b.X1 - b.X0) * (b.Y1 - b.Y0) * (b.Z1 - b.Z0)
}

// contains reports whether cell (i, j, k) lies in the box.
func (b box) contains(i, j, k int) bool {
	return i >= b.X0 && i < b.X1 && j >= b.Y0 && j < b.Y1 && k >= b.Z0 && k < b.Z1
}

// expand grows the box by one cell in every direction, clamped to the
// grid: the Chebyshev-1 halo that 9-pt and 27-pt stencils reach.
func (b box) expand(gx, gy, gz int) box {
	return box{
		X0: max(b.X0-1, 0), X1: min(b.X1+1, gx),
		Y0: max(b.Y0-1, 0), Y1: min(b.Y1+1, gy),
		Z0: max(b.Z0-1, 0), Z1: min(b.Z1+1, gz),
	}
}

// intersect returns the overlap of two boxes (possibly empty).
func intersect(a, b box) box {
	return box{
		X0: max(a.X0, b.X0), X1: min(a.X1, b.X1),
		Y0: max(a.Y0, b.Y0), Y1: min(a.Y1, b.Y1),
		Z0: max(a.Z0, b.Z0), Z1: min(a.Z1, b.Z1),
	}
}

// factor2 splits n into kx*ky = n with kx <= ky and kx the largest
// divisor not exceeding sqrt(n), so shard grids stay as square as the
// count allows.
func factor2(n int) (kx, ky int) {
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			kx = d
		}
	}
	return kx, n / kx
}

// factor3 splits n into kx*ky*kz = n, peeling the largest divisor not
// exceeding the cube root first and factoring the rest as a 2D count.
func factor3(n int) (kx, ky, kz int) {
	kz = 1
	for d := 1; d*d*d <= n; d++ {
		if n%d == 0 {
			kz = d
		}
	}
	kx, ky = factor2(n / kz)
	return kx, ky, kz
}

// decompose shards s into at most shards boxes with rectpart's
// balanced rectilinear cuts: the shard count is factored per axis,
// clamped to the axis sizes (a 1×N strip can only shard along its long
// axis), and the cuts come from Nicol's alternating refinement so
// heavy regions get smaller shards. Returns the shard boxes and the
// grid extents (gz = 1 for 2D). Stencil types without a grid shape
// cannot shard; the caller falls back to the sequential solver.
func decompose(s grid.Stencil, shards int) (boxes []box, gx, gy, gz int, err error) {
	switch g := s.(type) {
	case *grid.Grid2D:
		kx, ky := factor2(shards)
		if g.X >= g.Y {
			kx, ky = ky, kx // larger factor on the larger axis
		}
		// Clamp to the axis sizes, then re-grow the other axis so a 1×N
		// strip still shards along its long axis instead of collapsing to
		// one shard.
		kx = min(kx, g.X)
		ky = min(max(ky, shards/kx), g.Y)
		cutsX, cutsY, _, perr := rectpart.Partition2D(g, kx, ky, 0)
		if perr != nil {
			return nil, 0, 0, 0, perr
		}
		xs, ys := boundsFromCuts(cutsX, g.X), boundsFromCuts(cutsY, g.Y)
		for bj := 0; bj+1 < len(ys); bj++ {
			for bi := 0; bi+1 < len(xs); bi++ {
				boxes = append(boxes, box{
					X0: xs[bi], X1: xs[bi+1],
					Y0: ys[bj], Y1: ys[bj+1],
					Z0: 0, Z1: 1,
				})
			}
		}
		return boxes, g.X, g.Y, 1, nil
	case *grid.Grid3D:
		kx, ky, kz := factor3(shards)
		kz = min(kz, g.Z)
		kx = min(kx, g.X)
		ky = min(max(ky, shards/(kx*kz)), g.Y)
		cutsX, cutsY, cutsZ, _, perr := rectpart.Partition3D(g, kx, ky, kz, 0)
		if perr != nil {
			return nil, 0, 0, 0, perr
		}
		xs := boundsFromCuts(cutsX, g.X)
		ys := boundsFromCuts(cutsY, g.Y)
		zs := boundsFromCuts(cutsZ, g.Z)
		for bk := 0; bk+1 < len(zs); bk++ {
			for bj := 0; bj+1 < len(ys); bj++ {
				for bi := 0; bi+1 < len(xs); bi++ {
					boxes = append(boxes, box{
						X0: xs[bi], X1: xs[bi+1],
						Y0: ys[bj], Y1: ys[bj+1],
						Z0: zs[bk], Z1: zs[bk+1],
					})
				}
			}
		}
		return boxes, g.X, g.Y, g.Z, nil
	default:
		return nil, 0, 0, 0, fmt.Errorf("distsolve: %T has no grid shape to shard", s)
	}
}

// boundsFromCuts converts interior cut positions into a bounds array
// [0, c1, ..., n], mirroring rectpart's internal convention.
func boundsFromCuts(cuts []int, n int) []int {
	out := make([]int, 0, len(cuts)+2)
	out = append(out, 0)
	out = append(out, cuts...)
	out = append(out, n)
	return out
}

// boundaryCells lists the cells of shard a visible to shard b: the
// cells of a's box within Chebyshev distance 1 of b's box, in ascending
// global-id order. Empty when the shards are not adjacent.
func boundaryCells(a, b box, gx, gy, gz int) []int {
	ov := intersect(a, b.expand(gx, gy, gz))
	if ov.empty() {
		return nil
	}
	cells := make([]int, 0, ov.cells())
	for k := ov.Z0; k < ov.Z1; k++ {
		for j := ov.Y0; j < ov.Y1; j++ {
			for i := ov.X0; i < ov.X1; i++ {
				cells = append(cells, (k*gy+j)*gx+i)
			}
		}
	}
	return cells
}
