package distsolve

import (
	"sync"
	"sync/atomic"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/obsv"
)

// MsgKind discriminates the halo-exchange wire messages.
type MsgKind uint8

// The two message kinds of the round protocol.
const (
	// MsgData carries one full boundary snapshot from a shard to a
	// neighboring shard, tagged with the round as its sequence number.
	MsgData MsgKind = iota + 1
	// MsgAck acknowledges a MsgData by echoing its sequence number. The
	// receiver ACKs every data message — duplicates included — so a lost
	// ACK is healed by the sender's retry provoking a fresh one.
	MsgAck
)

// HaloCell is one boundary cell in a data snapshot: the global vertex
// id and its current interval start. Weights travel with the instance,
// not the messages — they are immutable input data every node holds.
type HaloCell struct {
	// V is the cell's global vertex id.
	V int
	// Start is the cell's interval start as of the snapshot.
	Start int64
}

// Message is one halo-exchange protocol message.
type Message struct {
	// Kind is MsgData or MsgAck.
	Kind MsgKind
	// From and To are the sender and receiver node ids.
	From, To int
	// Seq is the sequence number: the round whose state the message
	// carries (data) or acknowledges (ACK). Receivers apply a data
	// message only when Seq exceeds the last applied sequence from that
	// sender, which makes duplicates and reorders idempotent.
	Seq int64
	// Trace and Span carry the originating request's flight-recorder
	// identity across the wire (0 when the solve is untraced), so chaos
	// faults fired inside the transport — and the retries and re-homes
	// they provoke — attach to the right trace in the recorder. ACKs echo
	// the ids of the data message they acknowledge.
	Trace, Span uint64
	// Cells is the boundary snapshot (data messages only).
	Cells []HaloCell
}

// Transport moves protocol messages between nodes. Send must never
// block the caller indefinitely and may lose, duplicate, delay, or
// reorder messages — the round protocol's sequence numbers, ACKs, and
// retries are responsible for correctness on top of it. Recv returns
// the receive channel a node drains; implementations must be safe for
// concurrent Sends.
type Transport interface {
	// Send asks the transport to deliver m to m.To (best-effort).
	Send(m Message)
	// Recv returns node's inbox channel.
	Recv(node int) <-chan Message
}

// inboxCap bounds each node's inbox. A full inbox drops the message —
// counted like an injected drop — and the sender's retry recovers it,
// so the bound degrades to latency, never deadlock (no Send blocks).
const inboxCap = 1024

// ChanTransport is the in-process reference Transport: one buffered
// channel per node, with the distsolve/msg-* chaos sites consulted on
// every send so seeded storms can lose, duplicate, and delay traffic
// deterministically. Nodes re-homed after a crash are marked reliable:
// their sends bypass the chaos sites entirely, the delivery guarantee
// the recovery ladder leans on.
type ChanTransport struct {
	inboxes  []chan Message
	reliable []atomic.Bool
	inj      core.Injector
	dm       *obsv.DistMetrics
	delay    time.Duration
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// NewChanTransport builds a transport for nodes nodes, consulting inj
// (nil = no faults) on each send and counting transport traffic into dm
// (nil = disabled). delay is how long an injected msg-delay defers a
// delivery.
func NewChanTransport(nodes int, inj core.Injector, dm *obsv.DistMetrics, delay time.Duration) *ChanTransport {
	if dm == nil {
		dm = &obsv.DistMetrics{} // nil counters are no-ops
	}
	t := &ChanTransport{
		inboxes:  make([]chan Message, nodes),
		reliable: make([]atomic.Bool, nodes),
		inj:      inj,
		dm:       dm,
		delay:    delay,
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan Message, inboxCap)
	}
	return t
}

// Recv returns node's inbox channel.
func (t *ChanTransport) Recv(node int) <-chan Message { return t.inboxes[node] }

// MarkReliable exempts all future sends from node from the chaos sites.
// The coordinator calls it when re-homing a crashed or unresponsive
// shard: a replacement node must be able to make progress no matter how
// hostile the storm schedule is.
func (t *ChanTransport) MarkReliable(node int) { t.reliable[node].Store(true) }

// Send implements Transport: it consults the msg-drop / msg-dup /
// msg-delay sites (unless the sender is marked reliable) and delivers
// without ever blocking. Delayed deliveries run on their own
// goroutines; Close waits for them.
func (t *ChanTransport) Send(m Message) {
	if t.closed.Load() {
		return
	}
	if t.inj != nil && !t.reliable[m.From].Load() {
		if core.InjectTraced(t.inj, SiteMsgDrop, m.Trace) {
			t.dm.MsgsDropped.Add(1)
			return
		}
		if core.InjectTraced(t.inj, SiteMsgDup, m.Trace) {
			t.dm.MsgsDuplicated.Add(1)
			t.deliver(m)
		}
		if core.InjectTraced(t.inj, SiteMsgDelay, m.Trace) {
			t.dm.MsgsDelayed.Add(1)
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				time.Sleep(t.delay)
				if !t.closed.Load() {
					t.deliver(m)
				}
			}()
			return
		}
	}
	t.deliver(m)
}

// deliver enqueues m without blocking; a full inbox counts as a drop
// (the sender's retry recovers it).
func (t *ChanTransport) deliver(m Message) {
	select {
	case t.inboxes[m.To] <- m:
	default:
		t.dm.MsgsDropped.Add(1)
	}
}

// Close stops the transport: subsequent sends are discarded and every
// outstanding delayed delivery has finished when Close returns.
func (t *ChanTransport) Close() {
	t.closed.Store(true)
	t.wg.Wait()
}
