package distsolve

import (
	"math/rand"
	"testing"
	"time"

	"stencilivc/internal/chaos"
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/parallel"
)

// FuzzDistStorm drives the distributed solver over fuzzer-chosen small
// grids, shard counts, orders, and seeded chaos storms mixing message
// drops, duplicates, delays, and shard crashes. Every run — however
// hostile the schedule — must terminate with a coloring byte-identical
// to the sequential greedy over the same order: the protocol either
// reaches its certified fixpoint or degrades through re-homing to the
// bedrock fallback, and both produce the same bytes.
func FuzzDistStorm(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(12), uint8(0), uint8(4), false, uint8(60), uint8(0), uint8(0), uint8(0))
	f.Add(int64(2), uint8(9), uint8(7), uint8(3), uint8(8), true, uint8(0), uint8(60), uint8(60), uint8(1))
	f.Add(int64(3), uint8(1), uint8(20), uint8(0), uint8(5), false, uint8(255), uint8(0), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, xr, yr, zr, shardsR uint8, weightDesc bool,
		dropP, dupP, delayP, crashNth uint8) {
		x := int(xr%20) + 1
		y := int(yr%20) + 1
		z := int(zr % 4) // 0 → 2D instance
		shards := int(shardsR%9) + 2
		rng := rand.New(rand.NewSource(seed))

		var s grid.Stencil
		if z == 0 {
			g := grid.MustGrid2D(x, y)
			for v := range g.W {
				g.W[v] = rng.Int63n(9)
			}
			s = g
		} else {
			g := grid.MustGrid3D(x, y, z)
			for v := range g.W {
				g.W[v] = rng.Int63n(9)
			}
			s = g
		}

		inj := chaos.New(uint64(seed) + 1)
		if dropP > 0 {
			inj = inj.WithProb(SiteMsgDrop, float64(dropP)/512) // ≤ ~0.5
		}
		if dupP > 0 {
			inj = inj.WithProb(SiteMsgDup, float64(dupP)/512)
		}
		if delayP > 0 {
			inj = inj.WithProb(SiteMsgDelay, float64(delayP)/512)
		}
		if crashNth > 0 {
			inj = inj.OnNth(SiteShardCrash, int64(crashNth%8)+1)
		}

		ord := parallel.OrderLine
		if weightDesc {
			ord = parallel.OrderWeightDesc
		}
		cfg := Config{
			Shards:       shards,
			Order:        ord,
			MaxRetries:   2,
			RetryTimeout: time.Millisecond,
			BackoffCap:   4 * time.Millisecond,
			Delay:        time.Millisecond,
		}
		c, err := Solve(s, cfg, &core.SolveOptions{Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(s); err != nil {
			t.Fatalf("storm result invalid (shards=%d, inj=%s): %v", shards, inj, err)
		}
		want, err := core.GreedyColorOpts(s, orderFor(s, cfg), nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want.Start {
			if c.Start[v] != want.Start[v] {
				t.Fatalf("storm diverged from sequential greedy at vertex %d: %d vs %d (shards=%d, inj=%s)",
					v, c.Start[v], want.Start[v], shards, inj)
			}
		}
	})
}
