// Package distsolve is the fault-tolerant distributed sharded solver:
// an in-process multi-"node" simulation harness that splits one grid
// into N shards over internal/rectpart's balanced Nicol decompositions,
// sweeps each shard on its own node goroutine, and reconciles shard
// boundaries through an explicit message-passing halo-exchange protocol
// — the message-passing generalization of internal/parallel's atomic
// halo reads.
//
// # Round protocol
//
// The solve is bulk-synchronous. Each round, every node (1) re-sweeps
// its whole region in the global visit order restricted to the shard,
// placing each vertex by lowest fit against only its
// earlier-in-global-order neighbors — local ones at their
// freshly-swept values (Gauss–Seidel), remote ones at the halo cache's
// last applied snapshot, unknown ones as unconstrained; (2) sends each
// neighboring shard a full snapshot of the boundary cells that shard
// can see, tagged with the round number as its sequence number; and (3)
// acknowledges, deduplicates, and retries until every one of its own
// snapshots is acknowledged. The coordinator barriers on all nodes and
// declares the fixpoint only when no vertex changed and both the
// current and the previous round's exchanges were fully acknowledged —
// never while any boundary message is outstanding.
//
// The unique fixpoint of "every vertex = lowest fit over its earlier
// neighbors" is the sequential greedy coloring (induction over order
// rank), so a converged distributed solve is byte-identical to
// core.GreedyColorOpts over the same order — and because the global
// sequential fallback computes exactly that coloring too, the result
// is byte-stable no matter which rung of the degradation ladder
// produced it. See DESIGN.md §16 for the message format, the
// retry/backoff policy, the crash-recovery state machine, and the
// termination argument.
//
// # Robustness
//
// The transport is an interface (Transport, with the in-process
// ChanTransport reference implementation) instrumented with four chaos
// sites — distsolve/msg-drop, distsolve/msg-dup, distsolve/msg-delay,
// distsolve/shard-crash — so seeded storms are deterministic and
// testable under -race. Sequence numbers plus idempotent full-snapshot
// application make duplicates and reorders harmless; per-round ACK
// tracking with deadline-aware retry and capped exponential backoff
// rides out drops; a crashed shard is detected at the round barrier and
// its region re-homed onto a fresh replacement node (state restarts
// from Unset, delivery turns reliable, the shard is fenced from further
// crashes); retry exhaustion escalates to re-homing and, past that, to
// the global sequential bedrock, which also bounds the round count —
// every storm terminates with a complete, valid, byte-identical
// coloring.
package distsolve
