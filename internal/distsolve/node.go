package distsolve

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/parallel"
)

// ctrlKind discriminates the coordinator's control-plane commands.
// Control runs over per-node Go channels and is reliable by design:
// only the halo data plane rides the chaos-instrumented Transport.
type ctrlKind uint8

const (
	// ctrlRound starts one compute/exchange round.
	ctrlRound ctrlKind = iota + 1
	// ctrlGather asks the node to hand its region to the coordinator.
	ctrlGather
	// ctrlStop terminates the node's goroutine (crash or shutdown).
	ctrlStop
)

// ctrlMsg is one coordinator command.
type ctrlMsg struct {
	kind  ctrlKind
	round int64
}

// report is a node's round-barrier answer: how many of its vertices
// changed this sweep and which destinations never acknowledged its
// snapshot (retry exhaustion — empty on the happy path).
type report struct {
	node    int
	round   int64
	changed int64
	failed  []int
}

// dump hands a node's region to the coordinator at gather time: the
// global vertex ids in sweep order and their final starts, index-
// aligned with verts.
type dump struct {
	verts  []int
	starts []int64
}

// node is one simulated shard worker. All of its state is goroutine-
// local; it talks to peers only through the Transport and to the
// coordinator only through its control/report channels.
type node struct {
	id int
	b  box
	s  *sim

	// verts is the region in sweep order (ascending global id for line
	// order, weight-descending with id tie-break for GLF order); starts
	// is index-aligned with the region's geometric layout (regionIdx).
	verts  []int
	starts []int64

	// halo caches the last applied boundary snapshot values of remote
	// cells; lastApplied[q] is the highest data sequence applied from
	// node q (the dedup watermark).
	halo        map[int]int64
	lastApplied []int64

	// peers lists adjacent shard ids; sendCells[q] the cells of this
	// region that shard q can see (its inbound halo).
	peers     []int
	sendCells map[int][]int

	ctrl  chan ctrlMsg
	inbox <-chan Message
	// done closes when the goroutine exits, so the coordinator can
	// hand a shard off to a replacement without two goroutines ever
	// draining the same inbox concurrently.
	done chan struct{}

	// lane is the node's labeled row on the options tracer (0 when
	// untraced), so shard activity renders named in the Chrome export.
	lane int

	pl parallel.Placer
}

// newNode builds the node for shard id over box b, wiring its transport
// inbox and precomputing the sweep order and per-peer boundary lists.
func newNode(id int, b box, s *sim) *node {
	n := &node{
		id:          id,
		b:           b,
		s:           s,
		halo:        map[int]int64{},
		lastApplied: make([]int64, len(s.boxes)),
		sendCells:   map[int][]int{},
		ctrl:        make(chan ctrlMsg, 4),
		inbox:       s.tr.Recv(id),
		done:        make(chan struct{}),
		pl:          parallel.Placer{},
	}
	n.pl.Reset(s.g, s.uniW)
	if s.otr != nil {
		n.lane = s.otr.Lane()
		s.otr.LabelLane(n.lane, fmt.Sprintf("dist/shard-%d", id))
	}
	n.verts = make([]int, 0, b.cells())
	for k := b.Z0; k < b.Z1; k++ {
		for j := b.Y0; j < b.Y1; j++ {
			for i := b.X0; i < b.X1; i++ {
				n.verts = append(n.verts, (k*s.gy+j)*s.gx+i)
			}
		}
	}
	if s.weightDesc {
		g := s.g
		slices.SortFunc(n.verts, func(a, b int) int {
			if wa, wb := g.Weight(a), g.Weight(b); wa != wb {
				return cmp.Compare(wb, wa) // heavier first
			}
			return cmp.Compare(a, b)
		})
	}
	n.starts = make([]int64, b.cells())
	for i := range n.starts {
		n.starts[i] = core.Unset
	}
	if !b.empty() {
		for q, qb := range s.boxes {
			if q == id || qb.empty() {
				continue
			}
			if cells := boundaryCells(b, qb, s.gx, s.gy, s.gz); len(cells) > 0 {
				n.peers = append(n.peers, q)
				n.sendCells[q] = cells
			}
		}
	}
	return n
}

// regionIdx maps a global vertex id inside the box to its slot in
// starts (row-major within the box).
func (n *node) regionIdx(v int) int {
	i := v % n.s.gx
	j := (v / n.s.gx) % n.s.gy
	k := v / (n.s.gx * n.s.gy)
	b := n.b
	return ((k-b.Z0)*(b.Y1-b.Y0)+(j-b.Y0))*(b.X1-b.X0) + (i - b.X0)
}

// read returns the value the node currently believes vertex u has:
// its own region for local cells, the halo cache for remote ones,
// Unset when no snapshot has mentioned u yet (unknown = unconstrained;
// the fixpoint certification makes that safe).
func (n *node) read(u int) int64 {
	i := u % n.s.gx
	j := (u / n.s.gx) % n.s.gy
	k := u / (n.s.gx * n.s.gy)
	if n.b.contains(i, j, k) {
		return n.starts[n.regionIdx(u)]
	}
	if s, ok := n.halo[u]; ok {
		return s
	}
	return core.Unset
}

// earlier reports whether u precedes v in the global visit order — the
// only neighbors a placement may observe. Restricting observation to
// earlier vertices is what pins the protocol's fixpoint to the
// sequential greedy coloring.
func (n *node) earlier(u, v int) bool {
	if !n.s.weightDesc {
		return u < v // line order is ascending vertex id
	}
	wu, wv := n.s.g.Weight(u), n.s.g.Weight(v)
	return wu > wv || (wu == wv && u < v)
}

// sweep recomputes the whole region in sweep order (Gauss–Seidel:
// later placements see this round's values of earlier local cells) and
// returns how many vertices changed.
func (n *node) sweep() (changed int64) {
	g := n.s.g
	for _, v := range n.verts {
		pl := &n.pl
		for _, u := range pl.Begin(v) {
			if !n.earlier(u, v) {
				continue
			}
			pl.Observe(n.read(u), g.Weight(u))
		}
		s := pl.Commit(g.Weight(v))
		ri := n.regionIdx(v)
		if n.starts[ri] != s {
			n.starts[ri] = s
			changed++
		}
	}
	return changed
}

// snapshot builds the fresh boundary snapshot for peer q. A new slice
// every round: retries and injected duplicates of older rounds may
// still be read concurrently by the receiver, so snapshots are never
// reused.
func (n *node) snapshot(q int) []HaloCell {
	cells := n.sendCells[q]
	out := make([]HaloCell, len(cells))
	for i, v := range cells {
		out[i] = HaloCell{V: v, Start: n.starts[n.regionIdx(v)]}
	}
	return out
}

// handle processes one inbound message. Data: apply if its sequence
// exceeds the sender's watermark (full snapshots make application
// idempotent), then ACK unconditionally — re-ACKing duplicates is what
// heals lost ACKs. ACKs are returned to the caller (exchange matches
// them against its pending sends; the idle loop discards them).
func (n *node) handle(m Message) (ack Message, isAck bool) {
	switch m.Kind {
	case MsgData:
		if m.Seq > n.lastApplied[m.From] {
			for _, c := range m.Cells {
				n.halo[c.V] = c.Start
			}
			n.lastApplied[m.From] = m.Seq
			n.s.dm.HaloCells.Add(int64(len(m.Cells)))
		} else {
			n.s.dm.MsgsDeduped.Add(1)
		}
		n.s.tr.Send(Message{Kind: MsgAck, From: n.id, To: m.From, Seq: m.Seq,
			Trace: m.Trace, Span: m.Span})
	case MsgAck:
		n.s.dm.Acks.Add(1)
		return m, true
	}
	return Message{}, false
}

// pendingSend tracks one unacknowledged snapshot during exchange.
type pendingSend struct {
	msg      Message
	deadline time.Time
	backoff  time.Duration
	retries  int
}

// exchange sends this round's snapshot to every peer and drives the
// ACK / retry loop: deadline-aware retransmission with capped
// exponential backoff, servicing the inbox throughout (so peers'
// snapshots are applied and ACKed even while this node waits). It
// returns the peers whose ACK never arrived within MaxRetries — the
// coordinator escalates those to re-homing or the global fallback.
// The loop is bounded (retries are capped), so a round barrier always
// completes.
func (n *node) exchange(round int64) (failed []int) {
	s := n.s
	pending := make([]*pendingSend, 0, len(n.peers))
	for _, q := range n.peers {
		m := Message{Kind: MsgData, From: n.id, To: q, Seq: round,
			Trace: s.tc.TraceID(), Span: s.tc.SpanID(), Cells: n.snapshot(q)}
		s.tr.Send(m)
		s.dm.MsgsSent.Add(1)
		pending = append(pending, &pendingSend{
			msg:      m,
			deadline: time.Now().Add(s.retryTimeout),
			backoff:  s.retryTimeout,
		})
	}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for len(pending) > 0 {
		earliest := pending[0].deadline
		for _, p := range pending[1:] {
			if p.deadline.Before(earliest) {
				earliest = p.deadline
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(max(time.Until(earliest), 0))
		select {
		case m := <-n.inbox:
			if ack, ok := n.handle(m); ok && ack.Seq == round {
				for i, p := range pending {
					if p.msg.To == ack.From {
						pending = append(pending[:i], pending[i+1:]...)
						break
					}
				}
			}
		case <-timer.C:
			now := time.Now()
			live := pending[:0]
			for _, p := range pending {
				if !p.deadline.After(now) {
					p.retries++
					if p.retries > s.maxRetries {
						failed = append(failed, p.msg.To)
						continue
					}
					s.tr.Send(p.msg)
					s.dm.MsgsRetried.Add(1)
					s.tc.Event("dist.retry", "", int64(p.msg.To))
					p.backoff = min(p.backoff*2, s.backoffCap)
					p.deadline = now.Add(p.backoff)
				}
				live = append(live, p)
			}
			pending = live
		}
	}
	return failed
}

// run is the node goroutine: execute coordinator commands, and between
// them keep servicing the inbox — late retries from slower peers must
// be applied and ACKed even after this node's own round work is done,
// or their barriers would never complete. Control has priority over
// the inbox so a stop command is honored promptly.
func (n *node) run() {
	defer close(n.done)
	for {
		var c ctrlMsg
		var ok bool
		select {
		case c, ok = <-n.ctrl:
		default:
			select {
			case c, ok = <-n.ctrl:
			case m := <-n.inbox:
				n.handle(m)
				continue
			}
		}
		if !ok || c.kind == ctrlStop {
			return
		}
		switch c.kind {
		case ctrlRound:
			sp := n.s.otr.StartLane(n.lane, "dist/round")
			changed := n.sweep()
			failed := n.exchange(c.round)
			sp.End()
			n.s.reports <- report{node: n.id, round: c.round, changed: changed, failed: failed}
		case ctrlGather:
			starts := make([]int64, len(n.verts))
			for i, v := range n.verts {
				starts[i] = n.starts[n.regionIdx(v)]
			}
			n.s.gather <- dump{verts: n.verts, starts: starts}
		}
	}
}
