package distsolve

import "stencilivc/internal/core"

// The distributed solver's fault-injection sites. The first three are
// consulted by ChanTransport once per message it is asked to deliver
// (halo data and ACKs alike); the fourth is consulted by the
// coordinator once per live original node per round, in node-id order,
// so seeded crash schedules are deterministic.
const (
	// SiteMsgDrop fires per transport send; when it fires the message is
	// silently lost. The sender's ACK-deadline retry must recover it.
	SiteMsgDrop = core.FaultSite("distsolve/msg-drop")
	// SiteMsgDup fires per transport send; when it fires the message is
	// delivered twice. The receiver's sequence-number dedup must make
	// the duplicate harmless (data is re-ACKed, never re-applied).
	SiteMsgDup = core.FaultSite("distsolve/msg-dup")
	// SiteMsgDelay fires per transport send; when it fires delivery is
	// deferred by the configured delay, reordering it behind later
	// traffic. Full-snapshot semantics plus sequence numbers make the
	// stale arrival harmless.
	SiteMsgDelay = core.FaultSite("distsolve/msg-delay")
	// SiteShardCrash fires once per live original node per round, at the
	// round barrier; when it fires the node's goroutine stops and its
	// shard is re-homed onto a replacement that restarts the region from
	// scratch. Re-homed shards are fenced: the site is never consulted
	// for them again.
	SiteShardCrash = core.FaultSite("distsolve/shard-crash")
)

func init() {
	core.RegisterFaultSite(SiteMsgDrop,
		"distsolve transport, per send: firing loses the message; the sender's ACK-deadline retry recovers it")
	core.RegisterFaultSite(SiteMsgDup,
		"distsolve transport, per send: firing delivers the message twice; sequence-number dedup re-ACKs without re-applying")
	core.RegisterFaultSite(SiteMsgDelay,
		"distsolve transport, per send: firing defers delivery, reordering the message behind later traffic")
	core.RegisterFaultSite(SiteShardCrash,
		"distsolve coordinator, per live original node per round: firing crashes the node; its shard is re-homed onto a replacement")
}
