package obsv

// SolveMetrics bundles the solver metric taxonomy: the counters,
// gauges, and histograms every solve path feeds. It is carried by
// core.SolveOptions; a nil *SolveMetrics disables all of them (every
// field method is nil-receiver-safe, so instrumented code records
// unconditionally).
type SolveMetrics struct {
	// Vertices counts vertex placements (initial coloring and
	// recoloring alike) — ivc_vertices_colored_total.
	Vertices *Counter
	// Probes counts neighbor intervals examined by the lowest-fit
	// engine — ivc_probe_intervals_total.
	Probes *Counter
	// Conflicts counts cross-tile conflicts detected by the parallel
	// solver's boundary sweeps — ivc_conflicts_detected_total.
	Conflicts *Counter
	// Repairs counts conflict losers recolored by repair rounds —
	// ivc_conflicts_repaired_total.
	Repairs *Counter
	// RepairRounds counts completed detect/recolor rounds —
	// ivc_repair_rounds_total.
	RepairRounds *Counter
	// Steals counts tile-range steals by the work-stealing scheduler:
	// how often a worker that drained its own contiguous range took half
	// of another worker's remainder — ivc_tile_steals_total. A high rate
	// relative to tile count means the static partition was badly
	// weight-skewed.
	Steals *Counter
	// Solves counts completed top-level solves — ivc_solves_total.
	Solves *Counter
	// Allocs counts heap allocations performed during solves (MemStats
	// deltas around each registry-dispatched solve) — ivc_solve_allocs_total.
	Allocs *Counter
	// MaxColor holds the most recent solve's maxcolor — ivc_last_maxcolor.
	MaxColor *Gauge
	// OccLen is the distribution of lowest-fit occupancy-list lengths
	// (colored neighbors per placement) — ivc_occupancy_list_length.
	OccLen *Histogram
	// SolveSeconds is the distribution of per-solve wall times —
	// ivc_solve_seconds.
	SolveSeconds *Histogram

	// The degraded-solve taxonomy: how often the pipeline had to step
	// down its degradation ladder (panic → SolveError → fallback →
	// partial result) instead of completing on the happy path.

	// Fallbacks counts engagements of a guaranteed sequential path after
	// a parallel solver degraded (repair non-convergence, worker panic,
	// dropped repair updates) — solver_fallbacks_total.
	Fallbacks *Counter
	// PanicsRecovered counts solver panics recovered into typed errors
	// instead of crashing the process — solver_panics_recovered_total.
	PanicsRecovered *Counter
	// PartialResults counts portfolio solves that returned a best-so-far
	// valid coloring with ErrPartial after cancellation —
	// solver_partial_results_total.
	PartialResults *Counter

	// Dist is the distributed sharded solver's taxonomy (distsolve_*
	// families); nil disables it like every other field.
	Dist *DistMetrics
}

// NewSolveMetrics registers the solver taxonomy in r and returns the
// bundle. A nil registry yields a non-nil bundle of nil (disabled)
// metrics, which callers may still pass around safely.
func NewSolveMetrics(r *Registry) *SolveMetrics {
	return &SolveMetrics{
		Vertices: r.Counter("ivc_vertices_colored_total",
			"Vertex placements performed (initial coloring and recoloring)."),
		Probes: r.Counter("ivc_probe_intervals_total",
			"Neighbor intervals examined by the lowest-fit engine."),
		Conflicts: r.Counter("ivc_conflicts_detected_total",
			"Cross-tile conflicts found by the parallel solver's boundary sweeps."),
		Repairs: r.Counter("ivc_conflicts_repaired_total",
			"Conflict losers recolored by parallel repair rounds."),
		RepairRounds: r.Counter("ivc_repair_rounds_total",
			"Detect/recolor rounds completed by the parallel solver."),
		Steals: r.Counter("ivc_tile_steals_total",
			"Tile-range steals performed by the work-stealing scheduler."),
		Solves: r.Counter("ivc_solves_total",
			"Completed registry-dispatched solves."),
		Allocs: r.Counter("ivc_solve_allocs_total",
			"Heap allocations performed during registry-dispatched solves."),
		MaxColor: r.Gauge("ivc_last_maxcolor",
			"Maxcolor of the most recent completed solve."),
		// Stencil degrees are at most 26, so the interesting occupancy
		// lengths sit in [0, 32]; finer buckets low, one catch-all high.
		OccLen: r.Histogram("ivc_occupancy_list_length",
			"Colored-neighbor occupancy-list length per lowest-fit placement.",
			[]float64{0, 1, 2, 4, 8, 12, 16, 20, 26, 32}),
		SolveSeconds: r.Histogram("ivc_solve_seconds",
			"Wall time per registry-dispatched solve, in seconds.",
			ExponentialBuckets(0.0001, 4, 10)),
		Fallbacks: r.Counter("solver_fallbacks_total",
			"Sequential-fallback engagements after a parallel solver degraded."),
		PanicsRecovered: r.Counter("solver_panics_recovered_total",
			"Solver panics recovered into typed errors instead of crashing."),
		PartialResults: r.Counter("solver_partial_results_total",
			"Portfolio solves returning a best-so-far valid coloring with ErrPartial."),
		Dist: NewDistMetrics(r),
	}
}
