package obsv

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSamplerFamilies: constructing a sampler registers the runtime
// metric families in the registry, so /metrics shows them (zero-valued)
// even before the first Start.
func TestSamplerFamilies(t *testing.T) {
	r := NewRegistry()
	NewSampler(r, time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"go_gc_pause_seconds", "go_sched_latency_seconds", "go_heap_live_bytes",
		"go_heap_objects_bytes", "go_sched_goroutines", "go_gc_cycles_total",
	} {
		if !strings.Contains(buf.String(), fam) {
			t.Errorf("exposition missing runtime-sampler family %q", fam)
		}
	}
}

// TestSamplerObserves: a sampling session spanning forced GC cycles and
// allocation records samples, GC cycles, heap bytes, and goroutines —
// in both the registry gauges and the summary.
func TestSamplerObserves(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, time.Millisecond)
	s.Start()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 8; i++ {
		sink = append(sink, make([]byte, 1<<20))
		runtime.GC()
		time.Sleep(2 * time.Millisecond)
	}
	_ = sink
	s.Stop()

	sum := s.Summary()
	if sum.Samples < 1 {
		t.Fatalf("Samples = %d, want >= 1", sum.Samples)
	}
	if sum.GCCycles < 8 {
		t.Errorf("GCCycles = %d, want >= 8 (one per forced runtime.GC)", sum.GCCycles)
	}
	if sum.GCPauseCount < 1 {
		t.Errorf("GCPauseCount = %d, want >= 1", sum.GCPauseCount)
	}
	if sum.HeapLiveMaxBytes <= 0 {
		t.Errorf("HeapLiveMaxBytes = %d, want > 0", sum.HeapLiveMaxBytes)
	}
	if sum.GoroutinesMax < 1 {
		t.Errorf("GoroutinesMax = %d, want >= 1", sum.GoroutinesMax)
	}
	if got := r.Counter("go_gc_cycles_total", "").Value(); got != sum.GCCycles {
		t.Errorf("registry gc cycles = %d, summary says %d", got, sum.GCCycles)
	}
	if got := r.Histogram("go_gc_pause_seconds", "", nil).Count(); got != sum.GCPauseCount {
		t.Errorf("registry pause count = %d, summary says %d", got, sum.GCPauseCount)
	}
	if got := r.Gauge("go_sched_goroutines", "").Value(); got < 1 {
		t.Errorf("goroutines gauge = %d, want >= 1", got)
	}
}

// TestSamplerRefcount: nested Start/Stop pairs share one session — the
// sampler keeps sampling until the last Stop, and an unmatched Stop is
// a no-op instead of a panic.
func TestSamplerRefcount(t *testing.T) {
	s := NewSampler(nil, time.Millisecond)
	s.Start()
	s.Start()
	s.Stop() // inner stop: session stays alive
	time.Sleep(5 * time.Millisecond)
	s.Stop() // outer stop: final sample, goroutine exits
	after := s.Summary().Samples
	if after < 1 {
		t.Fatalf("Samples = %d after nested session, want >= 1", after)
	}
	time.Sleep(5 * time.Millisecond)
	if got := s.Summary().Samples; got != after {
		t.Errorf("sampler still running after last Stop: %d -> %d samples", after, got)
	}
	s.Stop() // unmatched: must not panic or block

	// A second session on the same sampler accumulates on top.
	s.Start()
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	if got := s.Summary().Samples; got <= after {
		t.Errorf("second session recorded no samples (%d -> %d)", after, got)
	}
}

// TestSamplerNil: every method of a nil sampler is a safe no-op.
func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Stop()
	if got := s.Summary(); got != (SamplerSummary{}) {
		t.Errorf("nil Summary = %+v, want zero", got)
	}
	if s.Interval() != 0 {
		t.Errorf("nil Interval = %v, want 0", s.Interval())
	}
}

// TestObserveN: the bulk observation path lands n counts in the right
// bucket and n*v in the sum, matching n repeated Observe calls.
func TestObserveN(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("obsv_test_bulk_a", "", []float64{1, 10, 100})
	b := r.Histogram("obsv_test_bulk_b", "", []float64{1, 10, 100})
	a.ObserveN(5, 3)
	a.ObserveN(1000, 2)
	a.ObserveN(7, 0)  // n <= 0 is a no-op
	a.ObserveN(7, -4) // n <= 0 is a no-op
	for i := 0; i < 3; i++ {
		b.Observe(5)
	}
	for i := 0; i < 2; i++ {
		b.Observe(1000)
	}
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Fatalf("ObserveN: count %d sum %g, repeated Observe: count %d sum %g",
			a.Count(), a.Sum(), b.Count(), b.Sum())
	}
	ab, bb := a.Buckets(), b.Buckets()
	for i := range ab {
		if ab[i] != bb[i] {
			t.Errorf("bucket %d: ObserveN %+v != Observe %+v", i, ab[i], bb[i])
		}
	}
	var nilH *Histogram
	nilH.ObserveN(1, 1) // nil no-op
}
