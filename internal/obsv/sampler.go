package obsv

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// DefaultSampleInterval is the sampling period a Sampler uses when
// constructed with a non-positive interval: fine enough to catch heap
// growth and goroutine spikes inside a sub-second solve, coarse enough
// that the sampler goroutine is invisible in profiles. The cumulative
// runtime histograms (GC pauses, scheduler latencies) lose nothing to
// the interval — every pause between two ticks is folded in as a bucket
// delta — only the point-in-time gauges are quantized by it.
const DefaultSampleInterval = 10 * time.Millisecond

// The runtime/metrics series the sampler bridges. Unsupported names
// (an older runtime) degrade to zero-valued metrics instead of failing.
const (
	srcGCPauses   = "/gc/pauses:seconds"
	srcSchedLat   = "/sched/latencies:seconds"
	srcHeapLive   = "/gc/heap/live:bytes"
	srcHeapObjs   = "/memory/classes/heap/objects:bytes"
	srcGoroutines = "/sched/goroutines:goroutines"
	srcGCCycles   = "/gc/cycles/total:gc-cycles"
)

// Sampler bridges Go's runtime/metrics package into a Registry: a
// background goroutine reads the runtime's own GC-pause and
// scheduler-latency histograms, heap gauges, and goroutine count at a
// fixed interval and publishes them as registry metrics, so a solve
// observed over /metrics shows allocator and scheduler behavior *during*
// the solve — not just whatever state a scrape happens to land on.
//
// Start/Stop are reference-counted: overlapping solves (a portfolio's
// concurrent members) share one sampling goroutine, which stops — after
// a final sample, so nothing between the last tick and Stop is lost —
// when the last Stop lands. A nil *Sampler is a valid disabled sampler:
// every method is a no-op costing one nil check.
type Sampler struct {
	interval time.Duration

	// Registry-published metrics (nil when built against a nil registry;
	// the summary still accumulates).
	gcPause    *Histogram
	schedLat   *Histogram
	heapLive   *Gauge
	heapObjs   *Gauge
	goroutines *Gauge
	gcCycles   *Counter

	mu      sync.Mutex
	refs    int
	stopc   chan struct{}
	donec   chan struct{}
	samples []metrics.Sample
	// prev holds the last-seen cumulative bucket counts per histogram
	// series, so each tick feeds only the delta into the registry.
	prevPause, prevSched []uint64
	prevCycles           uint64
	sum                  SamplerSummary
}

// SamplerSummary condenses everything a sampler observed into the flat
// record the benchmark-trajectory pipeline embeds in BENCH_*.json: how
// much GC and scheduler interference a measurement ran under.
type SamplerSummary struct {
	// Samples is the number of completed sampling ticks (including the
	// final on-Stop sample).
	Samples int64 `json:"samples"`
	// GCPauseCount is the number of stop-the-world GC pauses observed.
	GCPauseCount int64 `json:"gc_pause_count"`
	// GCPauseTotalSeconds is the summed duration of those pauses,
	// bucket-quantized (each pause counts as its bucket's upper edge).
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	// GCPauseMaxSeconds is the upper edge of the highest non-empty
	// pause bucket — the worst pause, to bucket resolution.
	GCPauseMaxSeconds float64 `json:"gc_pause_max_seconds"`
	// SchedLatencyCount is the number of goroutine scheduling waits
	// observed.
	SchedLatencyCount int64 `json:"sched_latency_count"`
	// SchedLatencyMaxSeconds is the upper edge of the highest non-empty
	// scheduling-latency bucket.
	SchedLatencyMaxSeconds float64 `json:"sched_latency_max_seconds"`
	// HeapLiveMaxBytes is the largest live-heap size seen at any tick.
	HeapLiveMaxBytes int64 `json:"heap_live_max_bytes"`
	// GoroutinesMax is the largest goroutine count seen at any tick.
	GoroutinesMax int64 `json:"goroutines_max"`
	// GCCycles is the number of GC cycles completed while sampling.
	GCCycles int64 `json:"gc_cycles"`
}

// NewSampler returns a sampler publishing into r at the given interval
// (non-positive picks DefaultSampleInterval). A nil registry is allowed:
// the sampler then only accumulates its SamplerSummary — the
// configuration the benchmark runner uses when no exposition endpoint
// is up. The sampler is idle until Start.
func NewSampler(r *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &Sampler{
		interval: interval,
		gcPause: r.Histogram("go_gc_pause_seconds",
			"Stop-the-world GC pause durations sampled from runtime/metrics while a sampler ran.",
			ExponentialBuckets(1e-6, 4, 12)),
		schedLat: r.Histogram("go_sched_latency_seconds",
			"Goroutine scheduling latencies sampled from runtime/metrics while a sampler ran.",
			ExponentialBuckets(1e-6, 4, 12)),
		heapLive: r.Gauge("go_heap_live_bytes",
			"Live heap bytes (reachable at the last GC mark) at the most recent sample."),
		heapObjs: r.Gauge("go_heap_objects_bytes",
			"Bytes occupied by live and dead heap objects at the most recent sample."),
		goroutines: r.Gauge("go_sched_goroutines",
			"Live goroutines at the most recent sample."),
		gcCycles: r.Counter("go_gc_cycles_total",
			"GC cycles completed while a sampler ran."),
	}
	s.samples = make([]metrics.Sample, 6)
	for i, name := range []string{
		srcGCPauses, srcSchedLat, srcHeapLive, srcHeapObjs, srcGoroutines, srcGCCycles,
	} {
		s.samples[i].Name = name
	}
	return s
}

// Interval reports the sampling period; 0 on a nil sampler.
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Start begins (or joins) sampling. The first Start takes a baseline
// reading and launches the sampling goroutine; later Starts before the
// matching Stops just increment the reference count. Safe for concurrent
// use; a nil sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refs++
	if s.refs > 1 {
		return
	}
	s.readLocked(true)
	s.stopc = make(chan struct{})
	s.donec = make(chan struct{})
	go s.loop(s.stopc, s.donec)
}

// Stop leaves the sampling session. The last Stop (matching the first
// Start) takes a final sample and waits for the goroutine to exit, so
// by the time it returns every pause up to the Stop is in the registry.
// Unmatched Stops are no-ops, as is a nil sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.refs == 0 {
		s.mu.Unlock()
		return
	}
	s.refs--
	if s.refs > 0 {
		s.mu.Unlock()
		return
	}
	stopc, donec := s.stopc, s.donec
	s.mu.Unlock()
	close(stopc)
	<-donec
}

// Summary returns a copy of everything observed so far (across all
// Start/Stop sessions). A nil sampler returns the zero summary.
func (s *Sampler) Summary() SamplerSummary {
	if s == nil {
		return SamplerSummary{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// loop is the sampling goroutine: one reading per tick, plus a final
// reading when the session stops.
func (s *Sampler) loop(stopc, donec chan struct{}) {
	defer close(donec)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.sample()
		case <-stopc:
			s.sample()
			return
		}
	}
}

// sample takes one reading under the sampler lock.
func (s *Sampler) sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readLocked(false)
}

// readLocked reads the runtime series and — unless this is the baseline
// reading of a fresh session — publishes the deltas into the registry
// and folds them into the summary. Called with mu held.
func (s *Sampler) readLocked(baseline bool) {
	metrics.Read(s.samples)
	var pause, sched *metrics.Float64Histogram
	var heapLive, heapObjs, goroutines, cycles uint64
	for i := range s.samples {
		sm := &s.samples[i]
		switch sm.Name {
		case srcGCPauses:
			if sm.Value.Kind() == metrics.KindFloat64Histogram {
				pause = sm.Value.Float64Histogram()
			}
		case srcSchedLat:
			if sm.Value.Kind() == metrics.KindFloat64Histogram {
				sched = sm.Value.Float64Histogram()
			}
		case srcHeapLive:
			if sm.Value.Kind() == metrics.KindUint64 {
				heapLive = sm.Value.Uint64()
			}
		case srcHeapObjs:
			if sm.Value.Kind() == metrics.KindUint64 {
				heapObjs = sm.Value.Uint64()
			}
		case srcGoroutines:
			if sm.Value.Kind() == metrics.KindUint64 {
				goroutines = sm.Value.Uint64()
			}
		case srcGCCycles:
			if sm.Value.Kind() == metrics.KindUint64 {
				cycles = sm.Value.Uint64()
			}
		}
	}
	if baseline {
		// Session start: snapshot the cumulative counters so history from
		// before the session — process startup, the gap since the last
		// session — is never charged to this one.
		s.prevPause = snapshotCounts(s.prevPause, pause)
		s.prevSched = snapshotCounts(s.prevSched, sched)
		s.prevCycles = cycles
		return
	}

	s.sum.Samples++
	count, total, max := s.foldHistogram(s.gcPause, pause, &s.prevPause)
	s.sum.GCPauseCount += count
	s.sum.GCPauseTotalSeconds += total
	if max > s.sum.GCPauseMaxSeconds {
		s.sum.GCPauseMaxSeconds = max
	}
	count, _, max = s.foldHistogram(s.schedLat, sched, &s.prevSched)
	s.sum.SchedLatencyCount += count
	if max > s.sum.SchedLatencyMaxSeconds {
		s.sum.SchedLatencyMaxSeconds = max
	}
	s.heapLive.Set(int64(heapLive))
	s.heapObjs.Set(int64(heapObjs))
	s.goroutines.Set(int64(goroutines))
	if int64(heapLive) > s.sum.HeapLiveMaxBytes {
		s.sum.HeapLiveMaxBytes = int64(heapLive)
	}
	if int64(goroutines) > s.sum.GoroutinesMax {
		s.sum.GoroutinesMax = int64(goroutines)
	}
	if cycles >= s.prevCycles {
		d := int64(cycles - s.prevCycles)
		s.gcCycles.Add(d)
		s.sum.GCCycles += d
	}
	s.prevCycles = cycles
}

// foldHistogram feeds the delta between h's cumulative counts and *prev
// into dst, one ObserveN per non-empty bucket at the bucket's upper
// edge, then advances *prev. It returns the delta's observation count,
// value total, and max (all bucket-quantized).
func (s *Sampler) foldHistogram(dst *Histogram, h *metrics.Float64Histogram, prev *[]uint64) (count int64, total, max float64) {
	if h == nil {
		return 0, 0, 0
	}
	if len(*prev) != len(h.Counts) {
		// Bucket layout changed (or first sight of the series): resync
		// without publishing, so counts are never double- or mis-charged.
		*prev = snapshotCounts(*prev, h)
		return 0, 0, 0
	}
	for i, c := range h.Counts {
		d := int64(c - (*prev)[i])
		(*prev)[i] = c
		if d <= 0 {
			continue
		}
		v := bucketEdge(h.Buckets, i)
		dst.ObserveN(v, d)
		count += d
		total += v * float64(d)
		if v > max {
			max = v
		}
	}
	return count, total, max
}

// bucketEdge picks the representative value of runtime histogram bucket
// i: its finite upper edge, falling back to the lower edge for the +Inf
// tail bucket.
func bucketEdge(buckets []float64, i int) float64 {
	hi := buckets[i+1]
	if !math.IsInf(hi, 0) {
		return hi
	}
	lo := buckets[i]
	if math.IsInf(lo, 0) {
		return 0
	}
	return lo
}

// snapshotCounts copies h's cumulative bucket counts into dst (reusing
// its backing array when the lengths match). A nil h clears dst.
func snapshotCounts(dst []uint64, h *metrics.Float64Histogram) []uint64 {
	if h == nil {
		return dst[:0]
	}
	if cap(dst) < len(h.Counts) {
		dst = make([]uint64, len(h.Counts))
	}
	dst = dst[:len(h.Counts)]
	copy(dst, h.Counts)
	return dst
}
