package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the flight recorder: always-on, bounded, per-request
// tracing in the Dapper mold. Where the *Trace tracer answers "where did
// the wall time of THIS solve go" (and must be attached by hand), the
// flight recorder answers "what happened to request X five minutes ago"
// — every request records into a fixed-size lock-sharded ring of recent
// span/event records, cheap enough to leave on in production, and
// GET /debug/flight (FlightHandler) dumps the retained window filtered
// by trace id, tenant, or job. SolveErrors and sheds additionally copy
// the failing trace's records into a small incident buffer, so the
// evidence survives ring overwrite. See DESIGN.md §17.

// DefaultFlightEntries is the ring capacity a FlightRecorder gets when
// the caller does not size it (ivc -flight-entries overrides).
const DefaultFlightEntries = 4096

// flightShardCount is how many independently locked ring segments a
// recorder stripes its capacity across: records hash to a shard by span
// id, so one hot trace does not serialize every recording goroutine on
// a single mutex.
const flightShardCount = 8

// maxIncidents bounds the incident buffer: the most recent dumps win.
const maxIncidents = 8

// Flight record kinds, in FlightRecord.Kind.
const (
	// FlightKindSpan marks a completed span (has a wall duration).
	FlightKindSpan = "span"
	// FlightKindEvent marks a point-in-time event.
	FlightKindEvent = "event"
)

// FlightRecord is one retained span or event. All ids are opaque
// nonzero uint64s minted by the recorder; Parent is 0 for roots.
type FlightRecord struct {
	// Trace is the request's trace id: every record of one request
	// carries the same value.
	Trace uint64
	// Span is this record's own id (events get one too, so dumps sort
	// stably).
	Span uint64
	// Parent is the id of the enclosing span; 0 for root spans and for
	// events recorded without a request context.
	Parent uint64
	// Kind is FlightKindSpan or FlightKindEvent.
	Kind string
	// Name identifies the record, e.g. "admission", "solve:GLL",
	// "dist.retry".
	Name string
	// Detail is an optional free-form annotation (error text, shed
	// reason, fault site).
	Detail string
	// Tenant and Job carry the request identity for filtered dumps;
	// empty for subsystems that only know the wire-level trace id.
	Tenant string
	// Job is the service job id the record belongs to, when known.
	Job string
	// Arg is a small numeric payload — the distsolve round, a fault
	// visit number, a maxcolor — kept as an integer so the record path
	// never formats strings.
	Arg int64
	// Start is the record's start time in Unix nanoseconds.
	Start int64
	// WallNS is the span's wall duration in nanoseconds (0 for events).
	WallNS int64
}

// flightShard is one locked segment of the ring.
type flightShard struct {
	mu   sync.Mutex
	buf  []FlightRecord
	next int
	// wrapped reports whether the segment has overwritten at least once,
	// so snapshots skip the zero-value tail of a young ring.
	wrapped bool
	_       [24]byte // keep neighboring shard headers off one cache line
}

// FlightIncident is one preserved dump: the records of a failing trace
// copied out of the ring at the moment the failure was observed.
type FlightIncident struct {
	// Trace is the failing request's trace id.
	Trace uint64
	// Reason says why the dump was taken ("shed: queue full",
	// "solve error: ...").
	Reason string
	// At is when the incident was recorded.
	At time.Time
	// Records is the trace's retained records at dump time, sorted by
	// start time.
	Records []FlightRecord
}

// FlightRecorder is the always-on ring. A nil *FlightRecorder is a
// valid disabled recorder: every method is a no-op costing one nil
// check, and contexts minted from it are nil (whose methods are no-ops
// too) — the same contract as the rest of the package. A sized recorder
// records with zero heap allocations on the hot path: one shard mutex,
// one slot assignment.
type FlightRecorder struct {
	shards [flightShardCount]flightShard
	ids    atomic.Uint64

	incMu     sync.Mutex
	incidents []FlightIncident

	records  *Counter // flight_records_total
	incCount *Counter // flight_incidents_total
	entryGa  *Gauge   // flight_entries
	perShard int
}

// NewFlightRecorder builds a recorder retaining about entries records
// (entries <= 0 picks DefaultFlightEntries; the capacity rounds up to a
// multiple of the shard count). When r is non-nil the recorder registers
// its flight_* families there: flight_records_total,
// flight_incidents_total, and the flight_entries capacity gauge.
func NewFlightRecorder(entries int, r *Registry) *FlightRecorder {
	if entries <= 0 {
		entries = DefaultFlightEntries
	}
	per := (entries + flightShardCount - 1) / flightShardCount
	if per < 8 {
		per = 8
	}
	f := &FlightRecorder{perShard: per}
	for i := range f.shards {
		f.shards[i].buf = make([]FlightRecord, per)
	}
	if r != nil {
		f.records = r.Counter("flight_records_total",
			"Span/event records written into the flight-recorder ring.")
		f.incCount = r.Counter("flight_incidents_total",
			"Incident dumps preserved by the flight recorder (solve errors, sheds).")
		f.entryGa = r.Gauge("flight_entries",
			"Capacity of the flight-recorder ring in records.")
		f.entryGa.Set(int64(per * flightShardCount))
	}
	return f
}

// Entries reports the ring capacity in records; 0 on nil.
func (f *FlightRecorder) Entries() int {
	if f == nil {
		return 0
	}
	return f.perShard * flightShardCount
}

// nextID mints a fresh nonzero id (trace and span ids share the
// sequence).
func (f *FlightRecorder) nextID() uint64 { return f.ids.Add(1) }

// record writes rec into the ring. Zero allocations: the record is
// copied into a preallocated slot under its shard's mutex.
func (f *FlightRecorder) record(rec FlightRecord) {
	if f == nil {
		return
	}
	sh := &f.shards[rec.Span%flightShardCount]
	sh.mu.Lock()
	sh.buf[sh.next] = rec
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next = 0
		sh.wrapped = true
	}
	sh.mu.Unlock()
	f.records.Add(1)
}

// RecordEvent records a bare event under an already-minted trace id —
// the entry point for subsystems that hold only the wire-level id (the
// chaos injector, the distsolve transport) and not a full context. A
// zero trace id is a no-op: the recorder retains per-request records,
// and an unattributable event would only displace attributable ones.
func (f *FlightRecorder) RecordEvent(trace uint64, name, detail string, arg int64) {
	if f == nil || trace == 0 {
		return
	}
	f.record(FlightRecord{
		Trace: trace, Span: f.nextID(), Kind: FlightKindEvent,
		Name: name, Detail: detail, Arg: arg, Start: time.Now().UnixNano(),
	})
}

// NewContext mints a fresh trace rooted at this recorder: the returned
// context carries a new trace id, no parent span, and the given job and
// tenant identity for filtered dumps. Nil recorders return a nil
// context, whose methods are all no-ops.
func (f *FlightRecorder) NewContext(job, tenant string) *TraceContext {
	if f == nil {
		return nil
	}
	return &TraceContext{rec: f, trace: f.nextID(), job: job, tenant: tenant}
}

// Context rebuilds a trace context from raw wire ids — the receiving
// side of trace propagation through a message schema (distsolve halo
// messages carry Trace/Span fields). Records made through it attach to
// the originating request's trace. A zero trace id returns nil.
func (f *FlightRecorder) Context(trace, parent uint64, job, tenant string) *TraceContext {
	if f == nil || trace == 0 {
		return nil
	}
	return &TraceContext{rec: f, trace: trace, parent: parent, job: job, tenant: tenant}
}

// Snapshot returns the retained records matching the filters, sorted by
// start time (ties by span id). Zero-valued filters match everything:
// trace 0 means any trace, empty tenant/job mean any. limit <= 0 means
// no bound. Nil recorders return nil.
func (f *FlightRecorder) Snapshot(trace uint64, tenant, job string, limit int) []FlightRecord {
	if f == nil {
		return nil
	}
	var out []FlightRecord
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		n := sh.next
		if sh.wrapped {
			n = len(sh.buf)
		}
		for k := 0; k < n; k++ {
			rec := sh.buf[k]
			if trace != 0 && rec.Trace != trace {
				continue
			}
			if tenant != "" && rec.Tenant != tenant {
				continue
			}
			if job != "" && rec.Job != job {
				continue
			}
			out = append(out, rec)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Span < out[j].Span
	})
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Incident copies trace's retained records into the bounded incident
// buffer so they survive ring overwrite — called on SolveError and shed
// so a failure five minutes ago is still reconstructable. The oldest
// incidents are dropped past the buffer bound. No-op on nil recorders
// and zero trace ids.
func (f *FlightRecorder) Incident(trace uint64, reason string) {
	if f == nil || trace == 0 {
		return
	}
	inc := FlightIncident{
		Trace:   trace,
		Reason:  reason,
		At:      time.Now(),
		Records: f.Snapshot(trace, "", "", 0),
	}
	f.incMu.Lock()
	f.incidents = append(f.incidents, inc)
	if len(f.incidents) > maxIncidents {
		f.incidents = f.incidents[len(f.incidents)-maxIncidents:]
	}
	f.incMu.Unlock()
	f.incCount.Add(1)
}

// Incidents returns a copy of the preserved incident dumps, oldest
// first. Nil recorders return nil.
func (f *FlightRecorder) Incidents() []FlightIncident {
	if f == nil {
		return nil
	}
	f.incMu.Lock()
	defer f.incMu.Unlock()
	out := make([]FlightIncident, len(f.incidents))
	copy(out, f.incidents)
	return out
}

// TraceContext is one request's position in its trace: the trace id plus
// the span the request is currently inside. It is immutable — deriving a
// child context (FlightSpan.Context) allocates a fresh one — so it may
// be shared freely across goroutines. A nil *TraceContext is the
// disabled state: Start returns an inert span, Event and Observe are
// no-ops, and the accessors return zero values; the whole disabled path
// is pointer compares, pinned allocation-free by the package tests.
type TraceContext struct {
	rec    *FlightRecorder
	trace  uint64
	parent uint64
	job    string
	tenant string
}

// TraceID returns the context's trace id; 0 on nil.
func (tc *TraceContext) TraceID() uint64 {
	if tc == nil {
		return 0
	}
	return tc.trace
}

// SpanID returns the id of the span the context is inside (the parent
// of records made through it); 0 on nil.
func (tc *TraceContext) SpanID() uint64 {
	if tc == nil {
		return 0
	}
	return tc.parent
}

// Job returns the context's job id; "" on nil.
func (tc *TraceContext) Job() string {
	if tc == nil {
		return ""
	}
	return tc.job
}

// Tenant returns the context's tenant; "" on nil.
func (tc *TraceContext) Tenant() string {
	if tc == nil {
		return ""
	}
	return tc.tenant
}

// Recorder returns the recorder the context records into; nil on nil.
func (tc *TraceContext) Recorder() *FlightRecorder {
	if tc == nil {
		return nil
	}
	return tc.rec
}

// Start opens a span named name as a child of the context's current
// span. The returned FlightSpan is a value (no allocation); End it
// exactly once. On a nil context the zero span is returned and every
// method on it is a no-op.
func (tc *TraceContext) Start(name string) FlightSpan {
	if tc == nil {
		return FlightSpan{}
	}
	return FlightSpan{tc: tc, id: tc.rec.nextID(), name: name, start: time.Now()}
}

// Event records a point-in-time event under the context's current span.
func (tc *TraceContext) Event(name, detail string, arg int64) {
	if tc == nil {
		return
	}
	tc.rec.record(FlightRecord{
		Trace: tc.trace, Span: tc.rec.nextID(), Parent: tc.parent,
		Kind: FlightKindEvent, Name: name, Detail: detail,
		Tenant: tc.tenant, Job: tc.job, Arg: arg,
		Start: time.Now().UnixNano(),
	})
}

// Observe records an already-completed span retroactively — the batcher
// stamping a "batch" span over a job's coalescing wait after the fact,
// without holding an open span across queue hops.
func (tc *TraceContext) Observe(name string, start time.Time, wall time.Duration) {
	if tc == nil {
		return
	}
	tc.rec.record(FlightRecord{
		Trace: tc.trace, Span: tc.rec.nextID(), Parent: tc.parent,
		Kind: FlightKindSpan, Name: name,
		Tenant: tc.tenant, Job: tc.job,
		Start: start.UnixNano(), WallNS: int64(wall),
	})
}

// FlightSpan is one open flight-recorder span. It is a value type: the
// zero value (returned by a nil context's Start) is inert, so disabled
// call sites allocate nothing and need no branches.
type FlightSpan struct {
	tc    *TraceContext
	id    uint64
	name  string
	start time.Time
}

// Active reports whether the span records anywhere (false for the zero
// span).
func (s FlightSpan) Active() bool { return s.tc != nil }

// ID returns the span's id; 0 for the zero span.
func (s FlightSpan) ID() uint64 { return s.id }

// End completes the span and writes its record.
func (s FlightSpan) End() { s.EndDetail("", 0) }

// EndDetail completes the span with an annotation and numeric payload
// (an error string, a maxcolor, a round count).
func (s FlightSpan) EndDetail(detail string, arg int64) {
	if s.tc == nil {
		return
	}
	s.tc.rec.record(FlightRecord{
		Trace: s.tc.trace, Span: s.id, Parent: s.tc.parent,
		Kind: FlightKindSpan, Name: s.name, Detail: detail,
		Tenant: s.tc.tenant, Job: s.tc.job, Arg: arg,
		Start: s.start.UnixNano(), WallNS: int64(time.Since(s.start)),
	})
}

// Context derives the child context for work nested under this span:
// same trace, parent = this span. It allocates; hot paths that may run
// disabled should derive once per request, not per operation. The zero
// span returns nil.
func (s FlightSpan) Context() *TraceContext {
	if s.tc == nil {
		return nil
	}
	return &TraceContext{rec: s.tc.rec, trace: s.tc.trace, parent: s.id,
		job: s.tc.job, tenant: s.tc.tenant}
}
