package obsv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// CounterShards is the number of independent cache-line-padded cells a
// Counter stripes its total across. Hot loops that own a worker id add
// into their own shard (AddShard) and never contend with other workers;
// reading sums the shards.
const CounterShards = 8

// counterCell is one shard, padded to its own cache line so concurrent
// shard increments never false-share.
type counterCell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotone, lock-free, sharded counter. All methods accept
// a nil receiver as a no-op so disabled instrumentation costs one nil
// check.
type Counter struct {
	name, help string
	cells      [CounterShards]counterCell
}

// Add increments the counter by n on the default shard.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.cells[0].n.Add(n)
}

// AddShard increments the counter by n on shard s&(CounterShards-1);
// workers pass their worker id so concurrent increments land on
// distinct cache lines.
func (c *Counter) AddShard(s int, n int64) {
	if c == nil {
		return
	}
	c.cells[s&(CounterShards-1)].n.Add(n)
}

// Value returns the counter total (the sum over shards); 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Gauge is a last-value metric (e.g. the maxcolor of the most recent
// solve). All methods accept a nil receiver as a no-op.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v is larger than the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the gauge's current value; 0 on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: observation counts per upper bound, plus a running sum. All
// methods accept a nil receiver as a no-op, and Observe is lock-free
// (one atomic add plus one CAS loop for the sum).
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; +Inf bucket is implicit
	counts     []atomic.Int64
	sumBits    atomic.Uint64
	// ex holds one last-write-wins exemplar cell per bucket, stamped by
	// ObserveExemplar and emitted by WritePrometheus; index-aligned with
	// counts.
	ex []exemplarCell
}

// exemplarCell is one bucket's exemplar: the last observed value (as
// float64 bits) and the trace id it came from. The two stores are
// independent atomics — a torn pair can mismatch value and trace for
// one scrape, which is acceptable for exemplars (they are samples, not
// accounting).
type exemplarCell struct {
	trace atomic.Uint64
	bits  atomic.Uint64
}

// NewHistogram builds an unregistered histogram with the given bucket
// upper bounds (ascending) — the constructor for per-key histograms
// (the service's per-tenant SLO latency ladders) that should not join
// a registry's flat exposition namespace.
func NewHistogram(buckets []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
		ex:     make([]exemplarCell, len(buckets)+1),
	}
}

// bucketIdx returns the index of the bucket v falls into. Binary search
// is overkill for the short bucket lists we use; the linear scan stays
// branch-predictable and allocation-free.
func (h *Histogram) bucketIdx(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// addSum folds v into the running sum.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Observe records one observation of value v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIdx(v)].Add(1)
	h.addSum(v)
}

// ObserveExemplar records v like Observe and additionally stamps the
// bucket's exemplar with the originating trace id, so the Prometheus
// exposition links latency buckets back to concrete requests in the
// flight recorder. A zero trace id records the value without touching
// the exemplar.
func (h *Histogram) ObserveExemplar(v float64, trace uint64) {
	if h == nil {
		return
	}
	i := h.bucketIdx(v)
	h.counts[i].Add(1)
	h.addSum(v)
	if trace != 0 && i < len(h.ex) {
		h.ex[i].bits.Store(math.Float64bits(v))
		h.ex[i].trace.Store(trace)
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation within the bucket where the
// cumulative count crosses q*count — the same estimator as PromQL's
// histogram_quantile, computed locally. Degenerate cases: a nil or
// empty histogram returns 0; when the target rank lands in the +Inf
// bucket the highest finite bound is returned (0 with no finite
// bounds); q outside [0, 1] clamps.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	lo := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if i == len(h.bounds) {
			// The +Inf tail: no upper edge to interpolate toward, so the
			// highest finite bound is the best (under-)estimate.
			if cum+c >= rank && c > 0 {
				return lo
			}
			break
		}
		hi := h.bounds[i]
		if cum+c >= rank && c > 0 {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
		lo = hi
	}
	return lo
}

// ObserveInt records one observation of integer value v.
func (h *Histogram) ObserveInt(v int64) { h.Observe(float64(v)) }

// ObserveN records n observations of value v in one update — the bulk
// path the runtime sampler uses to fold a runtime/metrics bucket delta
// into the histogram without n individual Observe calls.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(n)
	add := v * float64(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + add)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns (upper bound, cumulative count) pairs in ascending
// bound order, ending with the +Inf bucket. Nil histograms return nil.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, len(h.bounds)+1)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out[i] = Bucket{UpperBound: bound, CumulativeCount: cum}
	}
	return out
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound (+Inf for the
	// last bucket).
	UpperBound float64
	// CumulativeCount is the number of observations <= UpperBound.
	CumulativeCount int64
}

// ExponentialBuckets returns n upper bounds start, start*factor,
// start*factor^2, ... — the geometric ladder that suits latency- and
// length-shaped distributions. It panics if start <= 0, factor <= 1, or
// n < 1 (a programming error at metric-definition time).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obsv: ExponentialBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width,
// start+2*width, ... for uniformly gridded distributions.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obsv: LinearBuckets requires width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// Registry is a named collection of metrics: the unit of exposition.
// Metric constructors are get-or-create, so independent subsystems may
// ask for the same metric name and share the instance. A nil *Registry
// is a valid disabled registry: constructors return nil metrics, whose
// methods are no-ops.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]any
	helpFor map[string]string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]any{}, helpFor: map[string]string{}}
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the existing metric under name or stores fresh,
// panicking on invalid names and kind collisions — both programming
// errors at metric-definition time.
func (r *Registry) lookup(name, help string, fresh any) any {
	if !validName(name) {
		panic(fmt.Sprintf("obsv: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.byName[name]; ok {
		if fmt.Sprintf("%T", got) != fmt.Sprintf("%T", fresh) {
			panic(fmt.Sprintf("obsv: metric %q redefined as a different kind", name))
		}
		return got
	}
	r.byName[name] = fresh
	r.helpFor[name] = help
	return fresh
}

// Counter returns the counter registered under name, creating it with
// the given help text on first use. Nil registries return nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, &Counter{name: name, help: help}).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registries return nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, &Gauge{name: name, help: help}).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (ascending) on first use. Nil
// registries return nil.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	fresh := NewHistogram(buckets)
	fresh.name, fresh.help = name, help
	return r.lookup(name, help, fresh).(*Histogram)
}

// names returns the registered metric names sorted lexicographically.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
