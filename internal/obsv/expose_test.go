package obsv

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureRegistry builds a registry with deterministic contents for the
// exposition tests.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("ivc_vertices_colored_total", "Vertex placements performed.")
	c.Add(40)
	c.AddShard(3, 2)
	g := r.Gauge("ivc_last_maxcolor", "Maxcolor of the most recent solve.")
	g.Set(17)
	h := r.Histogram("ivc_occupancy_list_length", "Occupancy-list length per placement.",
		[]float64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 5, 8, 9} {
		h.ObserveInt(v)
	}
	r.Counter("solver_fallbacks_total",
		"Sequential-fallback engagements after a parallel solver degraded.").Add(3)
	r.Counter("solver_panics_recovered_total",
		"Solver panics recovered into typed errors instead of crashing.").Add(2)
	r.Counter("solver_partial_results_total",
		"Portfolio solves returning a best-so-far valid coloring with ErrPartial.").Add(1)
	// The runtime-sampler families, as an idle sampler registers them:
	// zero-valued but present, so the golden file pins their names, help
	// strings, and bucket layouts.
	NewSampler(r, time.Millisecond)
	// The solve-service families, likewise zero-valued: the golden file
	// pins the queue-depth gauge, batch-size and wait histograms, and the
	// tenant admit/shed counters the daemon exposes.
	NewServiceMetrics(r)
	// The result-cache families, so the resultcache_* names and help
	// strings EXPERIMENTS.md references stay pinned.
	NewCacheMetrics(r)
	return r
}

// TestWritePrometheusGolden pins the exact text exposition against
// testdata/metrics.prom (refresh with: go test ./internal/obsv -update).
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("Prometheus exposition drifted from %s:\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}

// TestExpvarFunc: the expvar JSON view matches the registry contents.
func TestExpvarFunc(t *testing.T) {
	v := fixtureRegistry().ExpvarFunc()
	data, err := json.Marshal(v())
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if got := out["ivc_vertices_colored_total"].(float64); got != 42 {
		t.Errorf("counter = %v, want 42", got)
	}
	if got := out["ivc_last_maxcolor"].(float64); got != 17 {
		t.Errorf("gauge = %v, want 17", got)
	}
	hist := out["ivc_occupancy_list_length"].(map[string]any)
	if got := hist["count"].(float64); got != 7 {
		t.Errorf("histogram count = %v, want 7", got)
	}
	buckets := hist["buckets"].(map[string]any)
	if got := buckets["+Inf"].(float64); got != 7 {
		t.Errorf("+Inf bucket = %v, want 7", got)
	}
}

// TestHandler: the HTTP endpoint serves the registry plus the runtime
// gauges with the Prometheus content type.
func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(fixtureRegistry()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q is not the Prometheus text format", ct)
	}
	for _, want := range []string{
		"ivc_vertices_colored_total 42",
		"ivc_last_maxcolor 17",
		"solver_fallbacks_total 3",
		"solver_panics_recovered_total 2",
		"solver_partial_results_total 1",
		"go_goroutines",
		"go_mem_alloc_bytes",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("response missing %q", want)
		}
	}
}

// TestPublishIdempotent: Publish tolerates duplicate names instead of
// panicking like raw expvar.Publish.
func TestPublishIdempotent(t *testing.T) {
	r := fixtureRegistry()
	r.Publish("obsv_test_registry")
	r.Publish("obsv_test_registry") // second call must not panic
	var nilReg *Registry
	nilReg.Publish("obsv_test_registry_nil") // nil must not publish or panic
}

// TestWritePrometheusNil: a nil registry writes nothing.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry wrote %q (err %v)", buf.String(), err)
	}
}
