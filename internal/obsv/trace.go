package obsv

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace records the completed spans of one observed run. The zero value
// is not usable; construct with NewTrace. A nil *Trace is a valid
// disabled tracer: every method is a cheap no-op and Start returns a nil
// *Span whose methods are no-ops too.
//
// A Trace is safe for concurrent use: spans may be started and ended
// from any goroutine.
type Trace struct {
	t0 time.Time

	mu        sync.Mutex
	spans     []SpanRecord
	laneNames map[int]string

	lanes atomic.Int64
}

// Span is one open phase of a trace. End records it; a Span must be
// ended exactly once and its methods are nil-receiver-safe so disabled
// tracing costs nothing.
type Span struct {
	tr    *Trace
	name  string
	lane  int
	depth int
	start time.Time
	cpu0  time.Duration
}

// SpanRecord is one completed span.
type SpanRecord struct {
	// Name identifies the phase, e.g. "solve:PGLL" or "pgreedy/repair".
	Name string
	// Lane is the span's thread row; 0 is the main lane, concurrent
	// workers use fresh lanes. Within a lane, spans nest by containment.
	Lane int
	// Depth is the explicit nesting depth (0 for roots, parent+1 for
	// spans made with Child).
	Depth int
	// Start is the span's start offset from the beginning of the trace.
	Start time.Duration
	// Wall is the span's wall-clock duration.
	Wall time.Duration
	// CPU is the process CPU time (user+system, all threads) consumed
	// while the span was open. For overlapping spans the same CPU time is
	// charged to each; zero on platforms without rusage.
	CPU time.Duration
}

// NewTrace returns an empty trace whose clock starts now.
func NewTrace() *Trace {
	return &Trace{t0: time.Now()}
}

// Lane allocates a fresh lane id for concurrent spans (tile workers,
// portfolio runs). A nil trace returns 0.
func (t *Trace) Lane() int {
	if t == nil {
		return 0
	}
	return int(t.lanes.Add(1))
}

// LabelLane names a lane for human-facing renderings — the Chrome
// export emits it as thread_name metadata so distsolve shard lanes and
// service worker lanes show up labeled in chrome://tracing instead of
// as bare tids. Later labels for the same lane win. No-op on nil.
func (t *Trace) LabelLane(lane int, name string) {
	if t == nil || name == "" {
		return
	}
	t.mu.Lock()
	if t.laneNames == nil {
		t.laneNames = make(map[int]string)
	}
	t.laneNames[lane] = name
	t.mu.Unlock()
}

// laneLabels returns a copy of the lane-name map; nil when no lane has
// been labeled (or on a nil trace).
func (t *Trace) laneLabels() map[int]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.laneNames) == 0 {
		return nil
	}
	out := make(map[int]string, len(t.laneNames))
	for k, v := range t.laneNames {
		out[k] = v
	}
	return out
}

// Start opens a root span on the main lane (lane 0). A nil trace
// returns a nil span.
func (t *Trace) Start(name string) *Span {
	return t.StartLane(0, name)
}

// StartLane opens a root span on the given lane. A nil trace returns a
// nil span.
func (t *Trace) StartLane(lane int, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, lane: lane, start: time.Now(), cpu0: processCPU()}
}

// Child opens a nested span on the same lane as s. A nil span returns a
// nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tr: s.tr, name: name, lane: s.lane, depth: s.depth + 1,
		start: time.Now(), cpu0: processCPU()}
}

// ChildLane opens a nested span on an explicit lane — a worker span
// whose parent lives on the coordinator's lane. A nil span returns nil.
func (s *Span) ChildLane(lane int, name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tr: s.tr, name: name, lane: lane, depth: s.depth + 1,
		start: time.Now(), cpu0: processCPU()}
}

// End completes the span and records it into the trace. No-op on a nil
// span.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name:  s.name,
		Lane:  s.lane,
		Depth: s.depth,
		Start: s.start.Sub(s.tr.t0),
		Wall:  time.Since(s.start),
		CPU:   processCPU() - s.cpu0,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, rec)
	s.tr.mu.Unlock()
}

// Len reports the number of completed spans; 0 on a nil trace.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns the completed spans sorted by (start, -wall), i.e.
// chronologically with enclosing spans before the spans they contain.
// Nil traces return nil.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Wall > out[j].Wall
	})
	return out
}

// Top returns up to n spans ordered by descending wall time (ties by
// start offset, then name). Nil traces return nil.
func (t *Trace) Top(n int) []SpanRecord {
	out := t.Spans()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders the trace as an indented text tree (lane-major,
// chronological, indentation by depth) — the quick look when a Chrome
// trace viewer is overkill.
func (t *Trace) String() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "trace: (empty)"
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Lane != spans[j].Lane {
			return spans[i].Lane < spans[j].Lane
		}
		return spans[i].Start < spans[j].Start
	})
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d spans", len(spans))
	for _, sp := range spans {
		fmt.Fprintf(&b, "\n  lane %-3d %s%-24s wall=%.3fms cpu=%.3fms",
			sp.Lane, strings.Repeat("  ", sp.Depth), sp.Name,
			float64(sp.Wall.Microseconds())/1000, float64(sp.CPU.Microseconds())/1000)
	}
	return b.String()
}
