//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package obsv

import "time"

// processCPU is unavailable without rusage; span CPU figures read 0.
func processCPU() time.Duration { return 0 }
