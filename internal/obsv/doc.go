// Package obsv is the observability layer of the solver pipeline: a
// span-style tracer for hierarchical per-phase timings, a registry of
// counters/gauges/histograms for solver work metrics, a structured
// solve-event log, a Go-runtime sampler, and exposition of the metric
// state in Prometheus text format and expvar JSON. It depends only on
// the standard library and is imported by internal/core, so every
// solver can be instrumented without new dependencies.
//
// The paper argues by per-phase runtime breakdowns (Section VII's Figure
// 10 splits STKDE time into coloring, scheduling, and kernel work); this
// package is the machinery that produces such breakdowns for any solve.
//
// # Tracer model
//
// A Trace records completed Spans. Spans live on integer lanes (rendered
// as thread rows by chrome://tracing): lane 0 is the main lane, and
// concurrent work — a portfolio's algorithm runs, a tile worker — takes a
// fresh lane from Trace.Lane. Within one lane, nesting is by time
// containment, exactly as Chrome renders it; Span.Child additionally
// records an explicit depth for textual reporting (Trace.Top, Tree).
// Each span captures wall time and the process CPU time consumed while
// it was open (rusage-based on Unix, zero elsewhere).
//
// # Metric taxonomy
//
// Counters are monotone totals (vertices colored, neighbor-interval
// probes, cross-tile conflicts detected and repaired, repair rounds,
// completed solves). Gauges are last-observed values (maxcolor of the
// most recent solve). Histograms are bucketed distributions (lowest-fit
// occupancy-list lengths, solve seconds). SolveMetrics bundles the
// solver taxonomy into one struct that core.SolveOptions carries.
//
// # Event log
//
// Where the tracer answers "where did the time go" and the metrics
// answer "how much work happened", EventSink is the append-only record
// of *what happened*: solver start/finish, tile-speculation rounds,
// repair sweeps, degraded-mode fallbacks, fault injections, and
// partial-result returns, emitted as log/slog records (one JSON object
// per line with NewJSONEventSink). Events fire at phase and round
// granularity — never per placement — so an enabled sink costs a
// handful of records per solve, and the fixed-signature methods build
// no argument slices when the sink is nil.
//
// # Runtime sampler
//
// Sampler bridges the runtime/metrics package into a Registry while a
// solve runs: GC pause and scheduler-latency histograms (delta-folded
// from the runtime's cumulative buckets), heap-live/heap-object bytes,
// goroutine counts, and GC cycles, sampled on a fixed interval by one
// background goroutine. Start/Stop are refcounted so overlapping
// portfolio members share a session, and a SamplerSummary condenses the
// session for the benchmark-trajectory reports (BENCH_*.json).
//
// # Zero cost when disabled
//
// Every method on *Trace, *Span, *Counter, *Gauge, *Histogram,
// *SolveMetrics, *EventSink, and *Sampler accepts a nil receiver as a
// no-op, so instrumented code
// never branches on whether a sink is attached, and the disabled path
// costs one nil check and allocates nothing — the placement kernel's
// 0 allocs/op contract (BenchmarkPlaceLowest) holds with instrumentation
// compiled in. Hot-path increments on enabled counters are lock-free:
// counters are sharded across padded cache lines so concurrent tile
// workers never contend on one word (Counter.AddShard).
package obsv
