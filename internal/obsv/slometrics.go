package obsv

// SLOBuckets returns the latency bucket ladder shared by the service's
// per-tenant SLO histograms and the registered service_latency_*
// families: 16 geometric steps from 0.5ms to ~16s, wide enough to
// bracket both a cache hit and a storm-delayed multi-shard solve so the
// p99 interpolation always has a finite bucket to land in.
func SLOBuckets() []float64 {
	return ExponentialBuckets(0.0005, 2, 16)
}

// TenantSLO is one tenant's latency accounting: queue-wait, solver
// wall, and end-to-end total, each an unregistered histogram over
// SLOBuckets. The service scheduler keys these by tenant and /healthz
// reports Quantile estimates from them; the registry stays label-free
// (the aggregate cross-tenant families are SLOMetrics).
type TenantSLO struct {
	// Queue observes admission-to-dispatch wait, in seconds.
	Queue *Histogram
	// Solve observes solver wall time, in seconds.
	Solve *Histogram
	// Total observes admission-to-completion wall time, in seconds.
	Total *Histogram
}

// NewTenantSLO builds one tenant's SLO histograms.
func NewTenantSLO() *TenantSLO {
	return &TenantSLO{
		Queue: NewHistogram(SLOBuckets()),
		Solve: NewHistogram(SLOBuckets()),
		Total: NewHistogram(SLOBuckets()),
	}
}

// SLOMetrics is the registered cross-tenant face of the SLO surface:
// the service_latency_{queue,solve,total}_seconds histogram families,
// observed with trace-id exemplars so a slow bucket in a Prometheus
// scrape links straight to a request in the flight recorder. A nil
// registry yields no-op histograms, the usual disabled contract.
type SLOMetrics struct {
	// Queue is service_latency_queue_seconds.
	Queue *Histogram
	// Solve is service_latency_solve_seconds.
	Solve *Histogram
	// Total is service_latency_total_seconds.
	Total *Histogram
}

// NewSLOMetrics registers (or re-attaches to) the service latency
// families on r.
func NewSLOMetrics(r *Registry) *SLOMetrics {
	return &SLOMetrics{
		Queue: r.Histogram("service_latency_queue_seconds",
			"Admission-to-dispatch queue wait per job, in seconds.", SLOBuckets()),
		Solve: r.Histogram("service_latency_solve_seconds",
			"Solver wall time per dispatched job, in seconds.", SLOBuckets()),
		Total: r.Histogram("service_latency_total_seconds",
			"End-to-end admission-to-completion wall time per job, in seconds.", SLOBuckets()),
	}
}
