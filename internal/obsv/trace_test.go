package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNestingAndOrdering: Child spans carry depth and lane, Spans()
// returns chronological order with parents before children, and Top
// ranks by wall time.
func TestSpanNestingAndOrdering(t *testing.T) {
	// Timer slack can inflate the shorter sleep past the longer one on a
	// loaded host (a 1ms sleep overshooting to ~4ms is routine), so keep
	// a wide gap between the phases and retry best-of-3 like the
	// cancellation-latency test.
	var tr *Trace
	for attempt := 1; ; attempt++ {
		tr = NewTrace()
		root := tr.Start("solve")
		a := root.Child("phaseA")
		time.Sleep(8 * time.Millisecond)
		a.End()
		b := root.Child("phaseB")
		time.Sleep(time.Millisecond)
		b.End()
		root.End()
		sp := tr.Spans()
		if len(sp) == 3 && sp[1].Wall > sp[2].Wall {
			break
		}
		if attempt == 3 {
			t.Fatalf("phaseA did not out-sleep phaseB in %d attempts: %+v", attempt, sp)
		}
	}

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "solve" || spans[1].Name != "phaseA" || spans[2].Name != "phaseB" {
		t.Fatalf("chronological order wrong: %q %q %q", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[0].Depth != 0 || spans[1].Depth != 1 || spans[2].Depth != 1 {
		t.Fatalf("depths = %d %d %d, want 0 1 1", spans[0].Depth, spans[1].Depth, spans[2].Depth)
	}
	if spans[1].Lane != spans[0].Lane {
		t.Fatalf("Child changed lane: %d vs %d", spans[1].Lane, spans[0].Lane)
	}
	// The root contains both children, so it must have the largest wall
	// time; phaseA slept longer than phaseB.
	top := tr.Top(3)
	if top[0].Name != "solve" || top[1].Name != "phaseA" || top[2].Name != "phaseB" {
		t.Fatalf("Top order wrong: %q %q %q", top[0].Name, top[1].Name, top[2].Name)
	}
	if got := tr.Top(1); len(got) != 1 {
		t.Fatalf("Top(1) returned %d spans", len(got))
	}
	// Containment: both children start at or after the root and end
	// within its wall time.
	for _, sp := range spans[1:] {
		if sp.Start < spans[0].Start || sp.Start+sp.Wall > spans[0].Start+spans[0].Wall+time.Millisecond {
			t.Errorf("span %s [%v +%v] escapes root [%v +%v]",
				sp.Name, sp.Start, sp.Wall, spans[0].Start, spans[0].Wall)
		}
	}
}

// TestTraceNilSafety: a nil trace and its nil spans are no-ops that
// allocate nothing.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("x")
		sp.Child("y").End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %.1f per span, want 0", allocs)
	}
	if tr.Len() != 0 || tr.Spans() != nil || tr.Top(3) != nil {
		t.Error("nil trace reports spans")
	}
	if tr.Lane() != 0 {
		t.Error("nil trace allocates lanes")
	}
	if err := tr.WriteChrome(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteChrome: %v", err)
	}
	if got := tr.String(); got != "trace: (empty)" {
		t.Errorf("nil String = %q", got)
	}
}

// TestTraceConcurrentLanes: spans started on worker lanes from many
// goroutines all land in the trace (run under -race by make check).
func TestTraceConcurrentLanes(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("solve")
	var wg sync.WaitGroup
	const workers = 8
	lanes := map[int]bool{}
	var mu sync.Mutex
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := tr.Lane()
			mu.Lock()
			lanes[lane] = true
			mu.Unlock()
			for i := 0; i < 10; i++ {
				root.ChildLane(lane, "tile").End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if len(lanes) != workers {
		t.Fatalf("lane collision: %d distinct lanes for %d workers", len(lanes), workers)
	}
	if got := tr.Len(); got != workers*10+1 {
		t.Fatalf("got %d spans, want %d", got, workers*10+1)
	}
}

// TestWriteChrome: the emitted JSON parses, uses complete events for
// spans plus metadata events for process and labeled lane names, and
// maps lanes to tids.
func TestWriteChrome(t *testing.T) {
	tr := NewTrace()
	lane := tr.Lane()
	tr.LabelLane(lane, "dist/shard-0")
	sp := tr.Start("solve")
	sp.ChildLane(lane, "inner").End()
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	var complete, meta int
	var laneNamed bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %q has negative time: ts=%f dur=%f", ev.Name, ev.Ts, ev.Dur)
			}
		case "M":
			meta++
			if ev.Name == "thread_name" && ev.Tid == lane && ev.Args["name"] == "dist/shard-0" {
				laneNamed = true
			}
		default:
			t.Errorf("event %q has phase %q, want X or M", ev.Name, ev.Ph)
		}
	}
	if complete != 2 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("unexpected document (complete=%d): %+v", complete, doc)
	}
	if meta != 2 || !laneNamed {
		t.Fatalf("metadata events wrong (meta=%d, laneNamed=%v): %+v", meta, laneNamed, doc)
	}
}

// TestTraceString renders lanes and indentation.
func TestTraceString(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("solve")
	sp.Child("inner").End()
	sp.End()
	s := tr.String()
	if !strings.Contains(s, "solve") || !strings.Contains(s, "inner") {
		t.Fatalf("String() missing spans: %q", s)
	}
}
