package obsv

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one event of the Chrome trace-event format, the JSON
// that chrome://tracing and Perfetto load directly: complete spans use
// "ph":"X" with Ts/Dur, metadata rows (process_name / thread_name) use
// "ph":"M" with only Args.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level Chrome trace JSON object.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome emits the trace in Chrome trace-event JSON ("complete"
// events, one tid per lane), loadable by chrome://tracing and Perfetto.
// When the trace has content, a process_name metadata row plus one
// thread_name row per lane labeled via LabelLane precede the spans, so
// distsolve shard lanes and service worker lanes render with their
// names instead of bare tids. A nil or empty trace writes a valid
// document with no events.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	labels := t.laneLabels()
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)+len(labels)+1), DisplayTimeUnit: "ms"}
	if len(spans) > 0 || len(labels) > 0 {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "ivc"},
		})
		lanes := make([]int, 0, len(labels))
		for lane := range labels {
			lanes = append(lanes, lane)
		}
		sort.Ints(lanes)
		for _, lane := range lanes {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
				Args: map[string]any{"name": labels[lane]},
			})
		}
	}
	for _, sp := range spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Wall.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  sp.Lane,
			Args: map[string]any{"cpu_us": float64(sp.CPU.Nanoseconds()) / 1e3},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
