package obsv

import (
	"encoding/json"
	"io"
)

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format, the JSON that chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level Chrome trace JSON object.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome emits the trace in Chrome trace-event JSON ("complete"
// events, one tid per lane), loadable by chrome://tracing and Perfetto.
// A nil or empty trace writes a valid document with no events.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, sp := range spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sp.Wall.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  sp.Lane,
			Args: map[string]any{"cpu_us": float64(sp.CPU.Nanoseconds()) / 1e3},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
