package obsv

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// decodeEvents parses the JSON-lines output of a sink into the msg
// field of each record, plus the raw decoded objects.
func decodeEvents(t *testing.T, buf *bytes.Buffer) ([]string, []map[string]any) {
	t.Helper()
	var msgs []string
	var objs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		msgs = append(msgs, obj["msg"].(string))
		objs = append(objs, obj)
	}
	return msgs, objs
}

// TestEventSinkJSON: every fixed-taxonomy method emits one JSON object
// per line with the expected msg and attributes, and Emitted counts
// them.
func TestEventSinkJSON(t *testing.T) {
	var buf bytes.Buffer
	e := NewJSONEventSink(&buf)
	e.SolveStart("PGLL", 2, 4096)
	e.SolveFinish("PGLL", 17, 3*time.Millisecond, nil)
	e.SolveFinish("BDP", 0, time.Millisecond, errors.New("boom"))
	e.Speculation(64, 4, true)
	e.RepairSweep(2, 9, false)
	e.Fallback("pgreedy", "worker panic")
	e.FaultInjected("pgreedy/halo-read", 7, 0xabc)
	e.PartialResult(3, 7, "GLL")
	e.Dropped("SGK", errors.New("panicked"))
	e.ServiceAdmit("team-a", "job-1", 3)
	e.ServiceShed("team-b", "job-2", "queue full")
	e.ServiceBatch("team-a|GLL|2", 4, 2*time.Millisecond)
	e.ServiceDone("team-a", "job-1", 17, 5*time.Millisecond, true)
	e.Event("custom", slog.Int("k", 1))

	msgs, objs := decodeEvents(t, &buf)
	want := []string{"solve.start", "solve.finish", "solve.error", "pgreedy.speculate",
		"pgreedy.repair", "solve.fallback", "fault.injected", "solve.partial",
		"portfolio.drop", "service.admit", "service.shed", "service.batch",
		"service.done", "custom"}
	if len(msgs) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(msgs), msgs, len(want))
	}
	for i := range want {
		if msgs[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, msgs[i], want[i])
		}
	}
	if e.Emitted() != int64(len(want)) {
		t.Errorf("Emitted = %d, want %d", e.Emitted(), len(want))
	}
	if objs[0]["alg"] != "PGLL" || objs[0]["vertices"] != float64(4096) {
		t.Errorf("solve.start attrs = %v", objs[0])
	}
	if objs[1]["maxcolor"] != float64(17) {
		t.Errorf("solve.finish attrs = %v", objs[1])
	}
	if objs[2]["error"] != "boom" {
		t.Errorf("solve.error attrs = %v", objs[2])
	}
	if objs[6]["site"] != "pgreedy/halo-read" || objs[6]["visit"] != float64(7) {
		t.Errorf("fault.injected attrs = %v", objs[6])
	}
	if objs[6]["trace_id"] != FlightID(0xabc) {
		t.Errorf("fault.injected trace_id = %v, want %s", objs[6]["trace_id"], FlightID(0xabc))
	}
	if objs[9]["tenant"] != "team-a" || objs[9]["queued"] != float64(3) {
		t.Errorf("service.admit attrs = %v", objs[9])
	}
	if objs[10]["reason"] != "queue full" {
		t.Errorf("service.shed attrs = %v", objs[10])
	}
	if objs[11]["key"] != "team-a|GLL|2" || objs[11]["size"] != float64(4) {
		t.Errorf("service.batch attrs = %v", objs[11])
	}
	if objs[12]["partial"] != true || objs[12]["maxcolor"] != float64(17) {
		t.Errorf("service.done attrs = %v", objs[12])
	}
}

// TestEventSinkNilConstructors: nil writers and handlers yield nil
// (disabled) sinks, so optional wiring passes through unconditionally.
func TestEventSinkNilConstructors(t *testing.T) {
	if NewJSONEventSink(nil) != nil {
		t.Error("NewJSONEventSink(nil) != nil")
	}
	if NewEventSink(nil) != nil {
		t.Error("NewEventSink(nil) != nil")
	}
}

// TestEventSinkNilAllocs pins the disabled-path contract: every
// fixed-taxonomy method on a nil sink is a no-op that allocates
// nothing, so threading the event log through the solve pipeline cannot
// cost the hot paths anything.
func TestEventSinkNilAllocs(t *testing.T) {
	var e *EventSink
	err := errors.New("static")
	if n := testing.AllocsPerRun(200, func() {
		e.SolveStart("GLL", 2, 100)
		e.SolveFinish("GLL", 10, time.Millisecond, nil)
		e.SolveFinish("GLL", 0, time.Millisecond, err)
		e.Speculation(8, 2, false)
		e.RepairSweep(1, 3, true)
		e.Fallback("pgreedy", "reason")
		e.FaultInjected("site", 1, 0)
		e.PartialResult(1, 2, "GLL")
		e.Dropped("BD", err)
		e.ServiceAdmit("t", "j", 1)
		e.ServiceShed("t", "j", "r")
		e.ServiceBatch("k", 1, time.Millisecond)
		e.ServiceDone("t", "j", 1, time.Millisecond, false)
		if e.Emitted() != 0 {
			t.Fatal("nil sink emitted")
		}
	}); n != 0 {
		t.Errorf("nil EventSink methods allocate %.1f per run, want 0", n)
	}
}
