package obsv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// flightRecordJSON is the wire form of one FlightRecord: ids rendered as
// fixed-width hex (the same form Result.TraceID and Prometheus
// exemplars use), times in RFC3339Nano / milliseconds.
type flightRecordJSON struct {
	Trace  string  `json:"trace"`
	Span   string  `json:"span"`
	Parent string  `json:"parent,omitempty"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name"`
	Detail string  `json:"detail,omitempty"`
	Tenant string  `json:"tenant,omitempty"`
	Job    string  `json:"job,omitempty"`
	Arg    int64   `json:"arg,omitempty"`
	Start  string  `json:"start"`
	WallMS float64 `json:"wall_ms,omitempty"`
}

// flightIncidentJSON is the wire form of one preserved incident dump.
type flightIncidentJSON struct {
	Trace   string             `json:"trace"`
	Reason  string             `json:"reason"`
	At      string             `json:"at"`
	Records []flightRecordJSON `json:"records"`
}

// flightDumpJSON is the GET /debug/flight response body.
type flightDumpJSON struct {
	Entries   int                  `json:"entries"`
	Records   []flightRecordJSON   `json:"records"`
	Incidents []flightIncidentJSON `json:"incidents,omitempty"`
}

// FlightID renders a trace or span id in the canonical fixed-width hex
// form shared by /debug/flight, Result.TraceID, and the Prometheus
// exemplars, so an id copied from any one surface greps in the others.
func FlightID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseFlightID parses the canonical hex form back to an id; 0 on
// malformed input.
func ParseFlightID(s string) uint64 {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return v
}

// recordJSON converts one record to its wire form.
func recordJSON(r FlightRecord) flightRecordJSON {
	out := flightRecordJSON{
		Trace:  FlightID(r.Trace),
		Span:   FlightID(r.Span),
		Kind:   r.Kind,
		Name:   r.Name,
		Detail: r.Detail,
		Tenant: r.Tenant,
		Job:    r.Job,
		Arg:    r.Arg,
		Start:  time.Unix(0, r.Start).UTC().Format(time.RFC3339Nano),
		WallMS: float64(r.WallNS) / 1e6,
	}
	if r.Parent != 0 {
		out.Parent = FlightID(r.Parent)
	}
	return out
}

// FlightHandler serves the recorder as GET /debug/flight: a JSON dump of
// the retained records plus the preserved incident dumps. Query
// parameters filter the window: trace (hex id), tenant, job, and limit
// (max records, most recent win). A nil recorder serves an empty dump.
func FlightHandler(f *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		trace := ParseFlightID(q.Get("trace"))
		if q.Get("trace") != "" && trace == 0 {
			http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
			return
		}
		limit := 0
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		recs := f.Snapshot(trace, q.Get("tenant"), q.Get("job"), limit)
		dump := flightDumpJSON{
			Entries: f.Entries(),
			Records: make([]flightRecordJSON, len(recs)),
		}
		for i, rec := range recs {
			dump.Records[i] = recordJSON(rec)
		}
		for _, inc := range f.Incidents() {
			if trace != 0 && inc.Trace != trace {
				continue
			}
			ij := flightIncidentJSON{
				Trace:   FlightID(inc.Trace),
				Reason:  inc.Reason,
				At:      inc.At.UTC().Format(time.RFC3339Nano),
				Records: make([]flightRecordJSON, len(inc.Records)),
			}
			for i, rec := range inc.Records {
				ij.Records[i] = recordJSON(rec)
			}
			dump.Incidents = append(dump.Incidents, ij)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump)
	})
}
