package obsv

// DistMetrics bundles the distributed sharded solver's metric taxonomy
// (internal/distsolve): the round protocol, the message-passing halo
// exchange with its retry/dedup machinery, and the crash-recovery
// ladder. It hangs off SolveMetrics.Dist so the existing
// core.SolveOptions.Metrics plumbing carries it everywhere; like every
// obsv bundle, a nil *DistMetrics (or nil fields) disables recording at
// the cost of one nil check.
type DistMetrics struct {
	// Rounds counts completed compute/exchange/barrier rounds —
	// distsolve_rounds_total.
	Rounds *Counter
	// MsgsSent counts halo data messages handed to the transport
	// (first sends; retries count separately) — distsolve_msgs_sent_total.
	MsgsSent *Counter
	// MsgsRetried counts retransmissions after an ACK deadline expired —
	// distsolve_msgs_retried_total.
	MsgsRetried *Counter
	// MsgsDropped counts messages the transport lost (injected drops and
	// full-inbox drops alike) — distsolve_msgs_dropped_total.
	MsgsDropped *Counter
	// MsgsDuplicated counts injected duplicate deliveries —
	// distsolve_msgs_duplicated_total.
	MsgsDuplicated *Counter
	// MsgsDelayed counts injected delayed deliveries —
	// distsolve_msgs_delayed_total.
	MsgsDelayed *Counter
	// MsgsDeduped counts received data messages discarded by the
	// sequence-number dedup (already-applied rounds; re-ACKed, never
	// re-applied) — distsolve_msgs_deduped_total.
	MsgsDeduped *Counter
	// Acks counts ACK messages received by senders —
	// distsolve_acks_total.
	Acks *Counter
	// HaloCells counts boundary cells applied into halo caches —
	// distsolve_halo_cells_applied_total.
	HaloCells *Counter
	// ShardCrashes counts shard crashes induced by the shard-crash site —
	// distsolve_shard_crashes_total.
	ShardCrashes *Counter
	// Rehomes counts shard regions re-homed onto a replacement node
	// (after a crash or an unresponsive-peer escalation) —
	// distsolve_shard_rehomes_total.
	Rehomes *Counter
	// Fallbacks counts distributed solves that abandoned the round
	// protocol for the global sequential bedrock —
	// distsolve_fallbacks_total.
	Fallbacks *Counter
}

// NewDistMetrics registers the distributed-solver taxonomy in r and
// returns the bundle; a nil registry yields disabled metrics.
func NewDistMetrics(r *Registry) *DistMetrics {
	return &DistMetrics{
		Rounds: r.Counter("distsolve_rounds_total",
			"Compute/exchange/barrier rounds completed by the distributed sharded solver."),
		MsgsSent: r.Counter("distsolve_msgs_sent_total",
			"Halo data messages handed to the transport (excluding retries)."),
		MsgsRetried: r.Counter("distsolve_msgs_retried_total",
			"Halo message retransmissions after an ACK deadline expired."),
		MsgsDropped: r.Counter("distsolve_msgs_dropped_total",
			"Messages lost by the transport (injected drops and full-inbox drops)."),
		MsgsDuplicated: r.Counter("distsolve_msgs_duplicated_total",
			"Injected duplicate message deliveries."),
		MsgsDelayed: r.Counter("distsolve_msgs_delayed_total",
			"Injected delayed message deliveries."),
		MsgsDeduped: r.Counter("distsolve_msgs_deduped_total",
			"Received data messages discarded by sequence-number dedup (re-ACKed, not re-applied)."),
		Acks: r.Counter("distsolve_acks_total",
			"ACK messages received by halo senders."),
		HaloCells: r.Counter("distsolve_halo_cells_applied_total",
			"Boundary cells applied into shard halo caches."),
		ShardCrashes: r.Counter("distsolve_shard_crashes_total",
			"Shard crashes induced by the distsolve/shard-crash site."),
		Rehomes: r.Counter("distsolve_shard_rehomes_total",
			"Shard regions re-homed onto a replacement node."),
		Fallbacks: r.Counter("distsolve_fallbacks_total",
			"Distributed solves that fell back to the global sequential bedrock."),
	}
}
