package obsv

import (
	"math"
	"strings"
	"testing"
)

// TestQuantileEmpty: nil and observation-free histograms estimate 0 for
// every q.
func TestQuantileEmpty(t *testing.T) {
	var nilH *Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := nilH.Quantile(q); got != 0 {
			t.Errorf("nil.Quantile(%v) = %v, want 0", q, got)
		}
	}
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty.Quantile(0.5) = %v, want 0", got)
	}
}

// TestQuantileSingleBucket: all mass in one bucket interpolates
// linearly across that bucket's width.
func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // all land in (1, 2]
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 1.5", got)
	}
	if got := h.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
	// q=0 clamps the rank to the bucket's lower edge.
	if got := h.Quantile(0); got < 1 || got > 2 {
		t.Errorf("Quantile(0) = %v, want within (1, 2]", got)
	}
}

// TestQuantileInterpolation: mass spread over several buckets crosses
// the rank mid-bucket and interpolates between bounds.
func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 4; i++ {
		h.Observe(0.5) // bucket (0, 1]
	}
	for i := 0; i < 4; i++ {
		h.Observe(3) // bucket (2, 4]
	}
	// rank(0.75) = 6: 4 below 1, crossing 2 into the (2,4] bucket at
	// fraction 2/4 → 2 + (4-2)*0.5 = 3.
	if got := h.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Errorf("Quantile(0.75) = %v, want 3", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := h.Quantile(2); math.Abs(got-4) > 1e-9 {
		t.Errorf("Quantile(2) = %v, want 4 (clamped to q=1)", got)
	}
	if got := h.Quantile(math.NaN()); got < 0 || got > 1 {
		t.Errorf("Quantile(NaN) = %v, want within first bucket", got)
	}
}

// TestQuantileInfTail: ranks landing in the +Inf bucket return the
// highest finite bound instead of infinity.
func TestQuantileInfTail(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) = %v, want 2 (highest finite bound)", got)
	}
	// No finite bounds at all: the estimate degrades to 0.
	inf := NewHistogram(nil)
	inf.Observe(5)
	if got := inf.Quantile(0.5); got != 0 {
		t.Errorf("boundless Quantile(0.5) = %v, want 0", got)
	}
}

// TestObserveExemplar: exemplar cells stamp the observed value and
// trace id on the bucket the value lands in; zero trace ids count the
// observation without stamping.
func TestObserveExemplar(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.ObserveExemplar(1.5, 0) // counted, not stamped
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	for i := range h.ex {
		if h.ex[i].trace.Load() != 0 {
			t.Fatalf("zero-trace observation stamped bucket %d", i)
		}
	}
	h.ObserveExemplar(1.5, 0xbeef)
	if got := h.ex[1].trace.Load(); got != 0xbeef {
		t.Fatalf("bucket 1 trace = %#x, want 0xbeef", got)
	}
	if got := math.Float64frombits(h.ex[1].bits.Load()); got != 1.5 {
		t.Fatalf("bucket 1 value = %v, want 1.5", got)
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, 1) // no-op, must not panic
}

// TestExposeExemplars: WritePrometheus renders OpenMetrics-style
// exemplar suffixes only on stamped buckets, so exemplar-free
// registries stay byte-identical with the pre-exemplar format.
func TestExposeExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	var plain strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "#_{") || strings.Contains(plain.String(), "trace_id") {
		t.Fatalf("unstamped exposition carries exemplars:\n%s", plain.String())
	}

	h.ObserveExemplar(1.5, 0xabcd)
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := `lat_seconds_bucket{le="2"} 2 # {trace_id="000000000000abcd"} 1.5`
	if !strings.Contains(out.String(), want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out.String())
	}
	if !strings.Contains(out.String(), `lat_seconds_bucket{le="1"} 1`+"\n") {
		t.Fatalf("unstamped bucket line altered:\n%s", out.String())
	}
}
