package obsv

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// EventSink is the structured solve-event log: a thin, nil-cost wrapper
// over log/slog that the solve pipeline feeds discrete events into —
// solver start/finish, tile speculation, repair sweeps, fallbacks,
// fault injections, partial-result returns. It complements the tracer
// (which answers "where did the time go") with an append-only record of
// *what happened*, in a machine-parseable form (one JSON object per
// line with NewJSONEventSink).
//
// A nil *EventSink is a valid disabled sink: every method is a no-op
// costing one nil check and allocating nothing, so instrumented code
// records unconditionally — the same contract as Trace and SolveMetrics.
// Methods take fixed scalar arguments (no variadic attrs on the solver
// paths) so a disabled call site builds no argument slice.
//
// An EventSink is safe for concurrent use whenever its slog.Handler is;
// the handlers in log/slog (JSON, Text) are.
type EventSink struct {
	l *slog.Logger
	// emitted counts delivered events, so tests and CLIs can report how
	// many events a solve produced without re-parsing the output.
	emitted atomic.Int64
}

// NewEventSink wraps a slog handler as a solve-event sink. A nil
// handler yields a nil (disabled) sink, so callers can pass through an
// optional handler unconditionally.
func NewEventSink(h slog.Handler) *EventSink {
	if h == nil {
		return nil
	}
	return &EventSink{l: slog.New(h)}
}

// NewJSONEventSink returns a sink writing one JSON event object per
// line to w — the wire format of ivc -log and ivcbench -log. A nil
// writer yields a nil (disabled) sink.
func NewJSONEventSink(w io.Writer) *EventSink {
	if w == nil {
		return nil
	}
	return NewEventSink(slog.NewJSONHandler(w, nil))
}

// Emitted reports how many events the sink has delivered; 0 on nil.
func (e *EventSink) Emitted() int64 {
	if e == nil {
		return 0
	}
	return e.emitted.Load()
}

// log delivers one event with the given attributes.
func (e *EventSink) log(msg string, attrs ...slog.Attr) {
	e.emitted.Add(1)
	e.l.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
}

// SolveStart records the dispatch of one registry solve: the algorithm,
// instance dimensionality, and vertex count.
func (e *EventSink) SolveStart(alg string, dims, vertices int) {
	if e == nil {
		return
	}
	e.log("solve.start",
		slog.String("alg", alg),
		slog.Int("dims", dims),
		slog.Int("vertices", vertices))
}

// SolveFinish records the completion of a registry solve — maxcolor and
// wall time on success, the error string on failure.
func (e *EventSink) SolveFinish(alg string, maxColor int64, wall time.Duration, err error) {
	if e == nil {
		return
	}
	if err != nil {
		e.log("solve.error",
			slog.String("alg", alg),
			slog.Duration("wall", wall),
			slog.String("error", err.Error()))
		return
	}
	e.log("solve.finish",
		slog.String("alg", alg),
		slog.Int64("maxcolor", maxColor),
		slog.Duration("wall", wall))
}

// Speculation records the start of the tile-parallel speculative phase:
// how many tiles are about to be colored by how many workers.
func (e *EventSink) Speculation(tiles, workers int, blind bool) {
	if e == nil {
		return
	}
	e.log("pgreedy.speculate",
		slog.Int("tiles", tiles),
		slog.Int("workers", workers),
		slog.Bool("blind", blind))
}

// RepairSweep records one detect/recolor round of the parallel repair
// fixpoint: the round number, conflicts the boundary sweep found, and
// whether the round recolored sequentially (the degraded mode).
func (e *EventSink) RepairSweep(round int, conflicts int64, sequential bool) {
	if e == nil {
		return
	}
	e.log("pgreedy.repair",
		slog.Int("round", round),
		slog.Int64("conflicts", conflicts),
		slog.Bool("sequential", sequential))
}

// Fallback records an engagement of a guaranteed degraded path — the
// sequential bedrock after a worker panic, the completion sweep after
// dropped updates — with the component that degraded and why.
func (e *EventSink) Fallback(component, reason string) {
	if e == nil {
		return
	}
	e.log("solve.fallback",
		slog.String("component", component),
		slog.String("reason", reason))
}

// FaultInjected records a fault-injection firing: the site, the visit
// number (1-based) on which the schedule fired, and — when the faulted
// operation carried a request trace — the trace id, so a storm's
// fault.injected events correlate with the flight-recorder dump of the
// request they disrupted. Zero trace ids (untraced solves) omit the
// attribute, keeping pre-tracing log output unchanged.
func (e *EventSink) FaultInjected(site string, visit int64, trace uint64) {
	if e == nil {
		return
	}
	if trace != 0 {
		e.log("fault.injected",
			slog.String("site", site),
			slog.Int64("visit", visit),
			slog.String("trace_id", FlightID(trace)))
		return
	}
	e.log("fault.injected",
		slog.String("site", site),
		slog.Int64("visit", visit))
}

// PartialResult records a portfolio solve returning a best-so-far
// result under cancellation: how many members completed and which won.
func (e *EventSink) PartialResult(completed, total int, winner string) {
	if e == nil {
		return
	}
	e.log("solve.partial",
		slog.Int("completed", completed),
		slog.Int("total", total),
		slog.String("winner", winner))
}

// Dropped records a portfolio member whose result was discarded because
// it panicked; the portfolio continues with the remaining members.
func (e *EventSink) Dropped(alg string, err error) {
	if e == nil {
		return
	}
	e.log("portfolio.drop",
		slog.String("alg", alg),
		slog.String("error", err.Error()))
}

// ServiceAdmit records the admission of one solve job into the service
// queue: the tenant, the job id, and the queue depth after admission.
func (e *EventSink) ServiceAdmit(tenant, id string, queued int64) {
	if e == nil {
		return
	}
	e.log("service.admit",
		slog.String("tenant", tenant),
		slog.String("id", id),
		slog.Int64("queued", queued))
}

// ServiceShed records a solve job refused or dropped by the service's
// overload policy — queue bound hit, deadline expired while queued, or
// an injected enqueue-drop fault — with the reason it was shed.
func (e *EventSink) ServiceShed(tenant, id, reason string) {
	if e == nil {
		return
	}
	e.log("service.shed",
		slog.String("tenant", tenant),
		slog.String("id", id),
		slog.String("reason", reason))
}

// ServiceBatch records one batch flush from the coalescing batcher to
// the scheduler: the batch key, its size, and how long the oldest job
// in it waited between enqueue and flush.
func (e *EventSink) ServiceBatch(key string, size int, wait time.Duration) {
	if e == nil {
		return
	}
	e.log("service.batch",
		slog.String("key", key),
		slog.Int("size", size),
		slog.Duration("wait", wait))
}

// ServiceDone records the completion of one solve job: maxcolor and the
// end-to-end wall time from admission, plus whether the result was a
// best-so-far partial under the shedding policy.
func (e *EventSink) ServiceDone(tenant, id string, maxColor int64, wall time.Duration, partial bool) {
	if e == nil {
		return
	}
	e.log("service.done",
		slog.String("tenant", tenant),
		slog.String("id", id),
		slog.Int64("maxcolor", maxColor),
		slog.Duration("wall", wall),
		slog.Bool("partial", partial))
}

// CacheHit records a solve lookup answered from the result cache: the
// algorithm, the tenant the hit is accounted to, the instance key (hex),
// and which tier answered ("memory" or "store").
func (e *EventSink) CacheHit(alg, tenant, key, tier string) {
	if e == nil {
		return
	}
	e.log("cache.hit",
		slog.String("alg", alg),
		slog.String("tenant", tenant),
		slog.String("key", key),
		slog.String("tier", tier))
}

// CacheMiss records a solve lookup that found no usable cache entry and
// fell through to a real solve.
func (e *EventSink) CacheMiss(alg, tenant, key string) {
	if e == nil {
		return
	}
	e.log("cache.miss",
		slog.String("alg", alg),
		slog.String("tenant", tenant),
		slog.String("key", key))
}

// CacheStore records a completed solve written into the result cache,
// with the in-memory payload size of the new entry.
func (e *EventSink) CacheStore(alg, key string, bytes int64) {
	if e == nil {
		return
	}
	e.log("cache.store",
		slog.String("alg", alg),
		slog.String("key", key),
		slog.Int64("bytes", bytes))
}

// CacheEvict records an entry dropped from the in-memory cache tier by
// the byte-budget LRU policy.
func (e *EventSink) CacheEvict(key string, bytes int64) {
	if e == nil {
		return
	}
	e.log("cache.evict",
		slog.String("key", key),
		slog.Int64("bytes", bytes))
}

// CacheCorrupt records a persisted cache entry that failed decode,
// checksum, or re-validation on read and was degraded to a miss.
func (e *EventSink) CacheCorrupt(key, reason string) {
	if e == nil {
		return
	}
	e.log("cache.corrupt",
		slog.String("key", key),
		slog.String("reason", reason))
}

// DistStart records the start of a distributed sharded solve: how many
// shards the grid split into and the round budget.
func (e *EventSink) DistStart(shards, maxRounds int) {
	if e == nil {
		return
	}
	e.log("dist.start",
		slog.Int("shards", shards),
		slog.Int("maxrounds", maxRounds))
}

// DistRound records one completed compute/exchange/barrier round of the
// distributed solver: the round number, how many vertices changed
// across all shards, and whether every halo exchange of the round was
// fully acknowledged.
func (e *EventSink) DistRound(round int, changed int64, exchangeOK bool) {
	if e == nil {
		return
	}
	e.log("dist.round",
		slog.Int("round", round),
		slog.Int64("changed", changed),
		slog.Bool("acked", exchangeOK))
}

// DistCrash records a shard crash induced by the shard-crash site.
func (e *EventSink) DistCrash(node, round int) {
	if e == nil {
		return
	}
	e.log("dist.crash",
		slog.Int("node", node),
		slog.Int("round", round))
}

// DistRehome records a shard region re-homed onto a replacement node,
// with the reason (crashed, or unresponsive to a peer's retries).
func (e *EventSink) DistRehome(node, round int, reason string) {
	if e == nil {
		return
	}
	e.log("dist.rehome",
		slog.Int("node", node),
		slog.Int("round", round),
		slog.String("reason", reason))
}

// DistFixpoint records a distributed solve reaching its certified
// fixpoint: the final round number and total messages the exchange
// moved.
func (e *EventSink) DistFixpoint(rounds int, msgs int64) {
	if e == nil {
		return
	}
	e.log("dist.fixpoint",
		slog.Int("rounds", rounds),
		slog.Int64("msgs", msgs))
}

// Event records an ad-hoc event for call sites outside the fixed solver
// taxonomy (CLIs, experiments). Unlike the fixed methods it takes
// variadic attrs, so guard hot paths with a nil check before building
// attributes.
func (e *EventSink) Event(name string, attrs ...slog.Attr) {
	if e == nil {
		return
	}
	e.log(name, attrs...)
}
