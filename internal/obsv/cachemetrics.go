package obsv

// CacheMetrics bundles the result-cache metric taxonomy: the counters
// and gauges internal/resultcache feeds as solves hit, miss, store, and
// evict. It mirrors the SolveMetrics/ServiceMetrics contract: carried by
// whoever owns the cache, and a nil *CacheMetrics disables all of them
// (every field method is nil-receiver-safe, so the cache records
// unconditionally).
type CacheMetrics struct {
	// Hits counts lookups answered from the cache (memory or the
	// persistent store) — resultcache_hits_total.
	Hits *Counter
	// Misses counts lookups that found no usable entry and fell through
	// to a real solve — resultcache_misses_total.
	Misses *Counter
	// Stores counts completed solves written into the cache —
	// resultcache_stores_total.
	Stores *Counter
	// Evictions counts entries dropped from the in-memory tier by the
	// byte-budget LRU policy (the persistent store, when configured,
	// retains them) — resultcache_evictions_total.
	Evictions *Counter
	// Corrupt counts persisted entries that failed decode, checksum, or
	// re-validation on read and were degraded to a miss (a re-solve) —
	// resultcache_corrupt_total. A nonzero value with a healthy disk
	// usually means a chaos schedule armed resultcache/get-corrupt.
	Corrupt *Counter
	// Entries is the current in-memory entry count across all shards —
	// resultcache_entries.
	Entries *Gauge
	// Bytes is the current in-memory footprint (coloring payloads plus
	// per-entry overhead) across all shards — resultcache_bytes.
	Bytes *Gauge
}

// NewCacheMetrics registers the result-cache taxonomy in r and returns
// the bundle. A nil registry yields a non-nil bundle of nil (disabled)
// metrics, which callers may still pass around safely.
func NewCacheMetrics(r *Registry) *CacheMetrics {
	return &CacheMetrics{
		Hits: r.Counter("resultcache_hits_total",
			"Solve lookups answered from the content-addressed result cache."),
		Misses: r.Counter("resultcache_misses_total",
			"Solve lookups that missed the result cache and ran a real solve."),
		Stores: r.Counter("resultcache_stores_total",
			"Completed solves written into the result cache."),
		Evictions: r.Counter("resultcache_evictions_total",
			"Entries dropped from the in-memory tier by the byte-budget LRU policy."),
		Corrupt: r.Counter("resultcache_corrupt_total",
			"Persisted cache entries that failed decode or validation and degraded to a re-solve."),
		Entries: r.Gauge("resultcache_entries",
			"Entries currently held in the in-memory cache tier."),
		Bytes: r.Gauge("resultcache_bytes",
			"Bytes currently held in the in-memory cache tier."),
	}
}
