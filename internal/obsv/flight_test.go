package obsv

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFlightSpanTree: spans and events made through a context chain
// carry the same trace id and parent correctly.
func TestFlightSpanTree(t *testing.T) {
	f := NewFlightRecorder(64, nil)
	tc := f.NewContext("job-1", "acme")
	root := tc.Start("admission")
	child := root.Context()
	solve := child.Start("solve")
	solve.Context().Event("dist.retry", "", 3)
	solve.EndDetail("", 7)
	child.Observe("batch", time.Now().Add(-time.Millisecond), time.Millisecond)
	root.End()

	recs := f.Snapshot(tc.TraceID(), "", "", 0)
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4: %+v", len(recs), recs)
	}
	byName := map[string]FlightRecord{}
	for _, r := range recs {
		if r.Trace != tc.TraceID() {
			t.Errorf("record %q has trace %d, want %d", r.Name, r.Trace, tc.TraceID())
		}
		if r.Tenant != "acme" || r.Job != "job-1" {
			t.Errorf("record %q lost identity: %+v", r.Name, r)
		}
		byName[r.Name] = r
	}
	if byName["admission"].Parent != 0 {
		t.Errorf("admission should be a root, parent=%d", byName["admission"].Parent)
	}
	if got, want := byName["solve"].Parent, byName["admission"].Span; got != want {
		t.Errorf("solve parent=%d, want admission span %d", got, want)
	}
	if got, want := byName["batch"].Parent, byName["admission"].Span; got != want {
		t.Errorf("batch parent=%d, want admission span %d", got, want)
	}
	if got, want := byName["dist.retry"].Parent, byName["solve"].Span; got != want {
		t.Errorf("dist.retry parent=%d, want solve span %d", got, want)
	}
	if byName["solve"].Arg != 7 {
		t.Errorf("solve arg=%d, want 7", byName["solve"].Arg)
	}
	if byName["dist.retry"].Kind != FlightKindEvent || byName["solve"].Kind != FlightKindSpan {
		t.Errorf("kinds wrong: %+v", byName)
	}
}

// TestFlightSnapshotFilters: tenant/job/trace filters select the right
// subsets, and limit keeps the most recent records.
func TestFlightSnapshotFilters(t *testing.T) {
	f := NewFlightRecorder(128, nil)
	a := f.NewContext("job-1", "acme")
	b := f.NewContext("job-2", "bob")
	a.Event("one", "", 0)
	b.Event("two", "", 0)
	a.Event("three", "", 0)

	if got := len(f.Snapshot(0, "acme", "", 0)); got != 2 {
		t.Errorf("tenant filter: got %d, want 2", got)
	}
	if got := len(f.Snapshot(0, "", "job-2", 0)); got != 1 {
		t.Errorf("job filter: got %d, want 1", got)
	}
	if got := len(f.Snapshot(b.TraceID(), "", "", 0)); got != 1 {
		t.Errorf("trace filter: got %d, want 1", got)
	}
	lim := f.Snapshot(a.TraceID(), "", "", 1)
	if len(lim) != 1 || lim[0].Name != "three" {
		t.Errorf("limit should keep the most recent: %+v", lim)
	}
}

// TestFlightRingOverwrite: a small ring retains only recent records but
// never errors or grows.
func TestFlightRingOverwrite(t *testing.T) {
	f := NewFlightRecorder(1, nil) // rounds up to the shard minimum
	cap := f.Entries()
	tc := f.NewContext("", "")
	for i := 0; i < 10*cap; i++ {
		tc.Event("e", "", int64(i))
	}
	recs := f.Snapshot(0, "", "", 0)
	if len(recs) > cap {
		t.Fatalf("ring grew past capacity: %d > %d", len(recs), cap)
	}
	if len(recs) == 0 {
		t.Fatal("ring retained nothing")
	}
}

// TestFlightIncident: an incident dump preserves the trace's records and
// the buffer stays bounded.
func TestFlightIncident(t *testing.T) {
	f := NewFlightRecorder(64, nil)
	tc := f.NewContext("job-9", "acme")
	tc.Event("before", "", 0)
	f.Incident(tc.TraceID(), "solve error: boom")
	// Overwrite the ring with other traffic.
	other := f.NewContext("", "")
	for i := 0; i < 10*f.Entries(); i++ {
		other.Event("noise", "", 0)
	}
	incs := f.Incidents()
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1", len(incs))
	}
	if incs[0].Reason != "solve error: boom" || incs[0].Trace != tc.TraceID() {
		t.Errorf("incident header wrong: %+v", incs[0])
	}
	if len(incs[0].Records) != 1 || incs[0].Records[0].Name != "before" {
		t.Errorf("incident lost the trace's records: %+v", incs[0].Records)
	}
	for i := 0; i < 3*maxIncidents; i++ {
		f.Incident(tc.TraceID(), "again")
	}
	if got := len(f.Incidents()); got != maxIncidents {
		t.Errorf("incident buffer unbounded: %d, want %d", got, maxIncidents)
	}
	// Zero trace ids never dump.
	f.Incident(0, "nope")
	for _, inc := range f.Incidents() {
		if inc.Trace == 0 {
			t.Error("zero-trace incident recorded")
		}
	}
}

// TestFlightNilSafety: every method on nil recorders, contexts, and the
// zero span is a no-op, and the whole disabled chain allocates nothing.
func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	if f.NewContext("j", "t") != nil {
		t.Error("nil recorder minted a context")
	}
	if f.Context(1, 2, "", "") != nil {
		t.Error("nil recorder rebuilt a context")
	}
	if f.Snapshot(0, "", "", 0) != nil || f.Incidents() != nil || f.Entries() != 0 {
		t.Error("nil recorder returned data")
	}
	f.RecordEvent(1, "x", "", 0)
	f.Incident(1, "x")

	var tc *TraceContext
	if tc.TraceID() != 0 || tc.SpanID() != 0 || tc.Job() != "" || tc.Tenant() != "" || tc.Recorder() != nil {
		t.Error("nil context leaked state")
	}
	sp := tc.Start("x")
	if sp.Active() || sp.ID() != 0 || sp.Context() != nil {
		t.Error("nil context's span is live")
	}
	if n := testing.AllocsPerRun(200, func() {
		s := tc.Start("solve")
		tc.Event("e", "", 1)
		tc.Observe("o", time.Time{}, 0)
		s.End()
	}); n != 0 {
		t.Errorf("disabled flight path allocates %.1f per run, want 0", n)
	}
}

// TestFlightRecordNoAllocs pins the enabled record hot path: with a
// sized ring, opening and ending a span (and recording an event) heap-
// allocates nothing — the record is copied into a preallocated slot.
func TestFlightRecordNoAllocs(t *testing.T) {
	f := NewFlightRecorder(256, nil)
	tc := f.NewContext("job-1", "acme")
	if n := testing.AllocsPerRun(200, func() {
		s := tc.Start("solve")
		s.EndDetail("", 3)
	}); n != 0 {
		t.Errorf("span record path allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tc.Event("dist.retry", "", 2)
	}); n != 0 {
		t.Errorf("event record path allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		f.RecordEvent(tc.TraceID(), "fault.injected", "site", 1)
	}); n != 0 {
		t.Errorf("raw event record path allocates %.1f per run, want 0", n)
	}
}

// TestFlightRebuiltContext: Context reassembles wire ids into a context
// whose records attach to the original trace under the given parent.
func TestFlightRebuiltContext(t *testing.T) {
	f := NewFlightRecorder(64, nil)
	tc := f.NewContext("job-1", "acme")
	sp := tc.Start("solve")
	remote := f.Context(tc.TraceID(), sp.ID(), "job-1", "acme")
	remote.Event("dist.retry", "", 1)
	sp.End()
	recs := f.Snapshot(tc.TraceID(), "", "", 0)
	var ev, solve FlightRecord
	for _, r := range recs {
		switch r.Name {
		case "dist.retry":
			ev = r
		case "solve":
			solve = r
		}
	}
	if ev.Parent != solve.Span {
		t.Errorf("rebuilt context's event parent=%d, want %d", ev.Parent, solve.Span)
	}
}

// TestFlightHandler: the /debug/flight dump round-trips through JSON
// with hex ids and honors the query filters.
func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(64, nil)
	tc := f.NewContext("job-1", "acme")
	sp := tc.Start("admission")
	sp.End()
	f.Incident(tc.TraceID(), "shed: test")

	h := FlightHandler(f)
	req := httptest.NewRequest("GET", "/debug/flight?job=job-1", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var dump struct {
		Entries int `json:"entries"`
		Records []struct {
			Trace string `json:"trace"`
			Name  string `json:"name"`
			Kind  string `json:"kind"`
		} `json:"records"`
		Incidents []struct {
			Reason string `json:"reason"`
		} `json:"incidents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if dump.Entries != f.Entries() {
		t.Errorf("entries=%d, want %d", dump.Entries, f.Entries())
	}
	if len(dump.Records) != 1 || dump.Records[0].Name != "admission" {
		t.Fatalf("records wrong: %+v", dump.Records)
	}
	if dump.Records[0].Trace != FlightID(tc.TraceID()) {
		t.Errorf("trace hex mismatch: %q", dump.Records[0].Trace)
	}
	if len(dump.Incidents) != 1 || dump.Incidents[0].Reason != "shed: test" {
		t.Errorf("incidents wrong: %+v", dump.Incidents)
	}

	// Trace filter by hex id.
	req = httptest.NewRequest("GET", "/debug/flight?trace="+FlightID(tc.TraceID()), nil)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if !strings.Contains(rr.Body.String(), "admission") {
		t.Error("trace filter dropped the matching record")
	}
	// Malformed trace ids 400.
	req = httptest.NewRequest("GET", "/debug/flight?trace=zzz", nil)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != 400 {
		t.Errorf("bad trace id got %d, want 400", rr.Code)
	}
}

// TestFlightIDRoundTrip: the canonical hex form parses back.
func TestFlightIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		if got := ParseFlightID(FlightID(id)); got != id {
			t.Errorf("round trip %d -> %q -> %d", id, FlightID(id), got)
		}
	}
	if ParseFlightID("not-hex") != 0 {
		t.Error("malformed id parsed")
	}
}
