package obsv

import (
	"math"
	"sync"
	"testing"
)

// TestCounterShards: increments on every shard sum into one total, and
// concurrent sharded increments lose nothing (run under -race).
func TestCounterShards(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	for s := 0; s < CounterShards; s++ {
		c.AddShard(s, 1)
	}
	c.Add(2)
	if got := c.Value(); got != int64(CounterShards)+2 {
		t.Fatalf("Value = %d, want %d", got, CounterShards+2)
	}

	c2 := r.Counter("test2_total", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c2.AddShard(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c2.Value(); got != 8000 {
		t.Fatalf("concurrent Value = %d, want 8000", got)
	}
}

// TestRegistryGetOrCreate: the same name returns the same metric; a
// kind collision panics.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "one")
	b := r.Counter("dup_total", "two")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	r.Gauge("dup_total", "now a gauge")
}

// TestRegistryNameValidation rejects non-Prometheus metric names.
func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a-b", "a b", "a.b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "help")
		}()
	}
	r.Counter("ok_name:total_9", "help") // must not panic
}

// TestGauge: Set, SetMax, and Value.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax did not raise the gauge: %d", got)
	}
}

// TestHistogramBucketing: observations land in the right cumulative
// buckets, with boundary values inclusive and overflow in +Inf.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	b := h.Buckets()
	if len(b) != 4 {
		t.Fatalf("got %d buckets, want 4", len(b))
	}
	// le=1: {0.5, 1}; le=2: +{1.5, 2}; le=4: +{3, 4}; +Inf: +{100}.
	want := []int64{2, 4, 6, 7}
	for i, w := range want {
		if b[i].CumulativeCount != w {
			t.Errorf("bucket %d (le=%v): count %d, want %d", i, b[i].UpperBound, b[i].CumulativeCount, w)
		}
	}
	if !math.IsInf(b[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", b[3].UpperBound)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got := h.Sum(); math.Abs(got-112.0) > 1e-9 {
		t.Errorf("Sum = %v, want 112", got)
	}
}

// TestBucketHelpers: the geometric and linear ladders.
func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Errorf("ExponentialBuckets[%d] = %v, want %v", i, exp[i], want)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	for i, want := range []float64{0, 5, 10} {
		if lin[i] != want {
			t.Errorf("LinearBuckets[%d] = %v, want %v", i, lin[i], want)
		}
	}
}

// TestMetricsNilSafety: nil registry, nil metrics, and the nil bundle
// are all no-ops with zero allocations on the increment path.
func TestMetricsNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_len", "h", []float64{1})
	sm := NewSolveMetrics(r)
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(1)
		h.Observe(1)
		sm.Vertices.Add(1)
		sm.OccLen.ObserveInt(3)
	})
	if allocs != 0 {
		t.Errorf("disabled metrics allocate %.1f per op, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil metrics recorded values")
	}
}

// TestEnabledIncrementsDoNotAllocate: the hot-path record operations on
// live metrics are allocation-free.
func TestEnabledIncrementsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	sm := NewSolveMetrics(r)
	allocs := testing.AllocsPerRun(200, func() {
		sm.Vertices.Add(1)
		sm.Probes.AddShard(3, 8)
		sm.OccLen.ObserveInt(8)
		sm.MaxColor.SetMax(7)
	})
	if allocs != 0 {
		t.Errorf("enabled metric increments allocate %.1f per op, want 0", allocs)
	}
}
