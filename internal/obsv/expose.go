package obsv

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name so output is
// reproducible. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names() {
		help := r.helpFor[name]
		var err error
		switch m := r.byName[name].(type) {
		case *Counter:
			err = writeSimple(w, name, help, "counter", formatInt(m.Value()))
		case *Gauge:
			err = writeSimple(w, name, help, "gauge", formatInt(m.Value()))
		case *Histogram:
			err = writeHistogram(w, name, help, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeSimple emits the HELP/TYPE header and single sample of a counter
// or gauge.
func writeSimple(w io.Writer, name, help, kind, value string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, escapeHelp(help), name, kind, name, value)
	return err
}

// writeHistogram emits the cumulative bucket series plus _sum and
// _count samples of one histogram. Buckets whose exemplar cell was
// stamped (ObserveExemplar with a nonzero trace id) additionally carry
// an OpenMetrics-style exemplar — `# {trace_id="<hex>"} <value>` — so a
// latency bucket links back to a concrete request in the flight
// recorder; unstamped buckets emit the plain 0.0.4 sample, keeping the
// output byte-identical for exemplar-free registries.
func writeHistogram(w io.Writer, name, help string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		name, escapeHelp(help), name); err != nil {
		return err
	}
	for i, b := range h.Buckets() {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		ex := ""
		if i < len(h.ex) {
			if t := h.ex[i].trace.Load(); t != 0 {
				ex = fmt.Sprintf(" # {trace_id=%q} %s",
					FlightID(t), formatFloat(math.Float64frombits(h.ex[i].bits.Load())))
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", name, le, b.CumulativeCount, ex); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, formatFloat(h.Sum()), name, h.Count())
	return err
}

// escapeHelp escapes backslashes and newlines per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatInt renders an integer sample value.
func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat renders a float sample value in the shortest exact form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ExpvarFunc returns an expvar.Func rendering the registry as a JSON
// object: counters and gauges as numbers, histograms as
// {buckets: {le: cumulative}, sum, count}. Publish it with
// expvar.Publish to surface the registry under /debug/vars.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any {
		if r == nil {
			return map[string]any{}
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		out := map[string]any{}
		for _, name := range r.names() {
			switch m := r.byName[name].(type) {
			case *Counter:
				out[name] = m.Value()
			case *Gauge:
				out[name] = m.Value()
			case *Histogram:
				buckets := map[string]int64{}
				for _, b := range m.Buckets() {
					le := "+Inf"
					if !math.IsInf(b.UpperBound, 1) {
						le = formatFloat(b.UpperBound)
					}
					buckets[le] = b.CumulativeCount
				}
				out[name] = map[string]any{
					"buckets": buckets, "sum": m.Sum(), "count": m.Count(),
				}
			}
		}
		return out
	}
}

// Publish registers the registry under name in the process-wide expvar
// table (served at /debug/vars). It is a no-op on a nil registry and —
// unlike expvar.Publish — on duplicate names, so tools may call it
// unconditionally.
func (r *Registry) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.ExpvarFunc())
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format, followed by a small set of scrape-time Go runtime gauges
// (goroutines, heap, GC) so a dashboard sees allocator pressure next to
// the solver counters.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			return
		}
		writeRuntime(w)
	})
}

// writeRuntime emits the scrape-time Go runtime gauges.
func writeRuntime(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for _, g := range []struct {
		name, help, kind string
		v                uint64
	}{
		{"go_goroutines", "Number of live goroutines.", "gauge", uint64(runtime.NumGoroutine())},
		{"go_mem_alloc_bytes", "Bytes of allocated heap objects.", "gauge", ms.Alloc},
		{"go_mem_mallocs_total", "Cumulative count of heap allocations.", "counter", ms.Mallocs},
		{"go_mem_total_alloc_bytes", "Cumulative bytes allocated on the heap.", "counter", ms.TotalAlloc},
		{"go_gc_runs_total", "Completed GC cycles.", "counter", uint64(ms.NumGC)},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			g.name, g.help, g.name, g.kind, g.name, g.v)
	}
}
