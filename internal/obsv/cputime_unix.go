//go:build linux || darwin || freebsd || netbsd || openbsd

package obsv

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative CPU time (user + system,
// all threads) via getrusage. Span CPU figures are deltas of this value,
// so a span's CPU can exceed its wall time when other goroutines run.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano()) + time.Duration(ru.Stime.Nano())
}
