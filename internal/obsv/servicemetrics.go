package obsv

// ServiceMetrics bundles the solve-service metric taxonomy: the
// counters, gauges, and histograms the internal/service daemon layers —
// transport admission, the coalescing batcher, and the multi-tenant
// scheduler — feed. It mirrors the SolveMetrics contract: carried by
// whoever owns the service, and a nil *ServiceMetrics disables all of
// them (every field method is nil-receiver-safe, so the service records
// unconditionally).
type ServiceMetrics struct {
	// QueueDepth is the number of admitted solve jobs waiting to be
	// dispatched to a worker, across all tenants — service_queue_depth.
	QueueDepth *Gauge
	// WorkersBusy is the number of scheduler workers currently running a
	// batch — service_workers_busy.
	WorkersBusy *Gauge
	// BatchSize is the distribution of coalesced batch sizes at flush —
	// service_batch_size.
	BatchSize *Histogram
	// BatchWaitSeconds is the per-job distribution of enqueue-to-flush
	// wait inside the batcher — service_batch_wait_seconds.
	BatchWaitSeconds *Histogram
	// RequestSeconds is the end-to-end admission-to-completion latency
	// per job — service_request_seconds.
	RequestSeconds *Histogram
	// Batches counts batches flushed to the scheduler —
	// service_batches_total.
	Batches *Counter
	// Admitted counts solve jobs admitted past the per-tenant queue
	// bound, summed over tenants — service_tenant_admitted_total.
	Admitted *Counter
	// Shed counts solve jobs refused or dropped by the overload policy
	// (queue bound hit, deadline expired while queued, enqueue-drop
	// fault), summed over tenants — service_tenant_shed_total.
	Shed *Counter
}

// NewServiceMetrics registers the service taxonomy in r and returns the
// bundle. A nil registry yields a non-nil bundle of nil (disabled)
// metrics, which callers may still pass around safely.
func NewServiceMetrics(r *Registry) *ServiceMetrics {
	return &ServiceMetrics{
		QueueDepth: r.Gauge("service_queue_depth",
			"Admitted solve jobs waiting for a scheduler worker, across all tenants."),
		WorkersBusy: r.Gauge("service_workers_busy",
			"Scheduler workers currently running a batch."),
		// The batcher flushes at its size trigger, so batch sizes live in
		// [1, max batch]; powers of two up to 32 cover the useful range.
		BatchSize: r.Histogram("service_batch_size",
			"Coalesced batch size at flush.",
			[]float64{1, 2, 4, 8, 16, 32}),
		BatchWaitSeconds: r.Histogram("service_batch_wait_seconds",
			"Per-job wait between enqueue and batch flush, in seconds.",
			ExponentialBuckets(0.0001, 4, 8)),
		RequestSeconds: r.Histogram("service_request_seconds",
			"End-to-end latency from admission to job completion, in seconds.",
			ExponentialBuckets(0.0001, 4, 10)),
		Batches: r.Counter("service_batches_total",
			"Batches flushed from the coalescing batcher to the scheduler."),
		Admitted: r.Counter("service_tenant_admitted_total",
			"Solve jobs admitted past the per-tenant queue bound, summed over tenants."),
		Shed: r.Counter("service_tenant_shed_total",
			"Solve jobs shed by the overload policy instead of queuing unboundedly, summed over tenants."),
	}
}
