package rectpart

import (
	"math/rand"
	"testing"

	"stencilivc/internal/grid"
)

func TestPartition3DNeverWorseThanUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 10; trial++ {
		g := grid.MustGrid3D(3+rng.Intn(5), 3+rng.Intn(5), 3+rng.Intn(5))
		for v := range g.W {
			g.W[v] = rng.Int63n(15)
		}
		kx, ky, kz := 2, 2, 2
		uniform := Bottleneck3D(g,
			uniformCuts(g.X, kx), uniformCuts(g.Y, ky), uniformCuts(g.Z, kz))
		cx, cy, cz, b, err := Partition3D(g, kx, ky, kz, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got := Bottleneck3D(g, cx, cy, cz); got != b {
			t.Fatalf("claimed bottleneck %d, realized %d", b, got)
		}
		if b > uniform {
			t.Fatalf("refinement worse than uniform: %d > %d", b, uniform)
		}
	}
}

func TestPartition3DSkewedCorner(t *testing.T) {
	g := grid.MustGrid3D(6, 6, 6)
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 3; i++ {
				g.Set(i, j, k, 8)
			}
		}
	}
	uniform := Bottleneck3D(g, uniformCuts(6, 2), uniformCuts(6, 2), uniformCuts(6, 2))
	_, _, _, b, err := Partition3D(g, 2, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b >= uniform {
		t.Fatalf("refinement %d did not beat uniform %d on skewed 3D grid", b, uniform)
	}
}

func TestPartition3DErrors(t *testing.T) {
	g := grid.MustGrid3D(2, 2, 2)
	if _, _, _, _, err := Partition3D(g, 3, 1, 1, 5); err == nil {
		t.Error("kx > X accepted")
	}
	if _, _, _, _, err := Partition3D(g, 0, 1, 1, 5); err == nil {
		t.Error("kx=0 accepted")
	}
}

func TestBottleneck3DWholeGrid(t *testing.T) {
	g := grid.MustGrid3D(2, 2, 2)
	for v := range g.W {
		g.W[v] = 1
	}
	if b := Bottleneck3D(g, nil, nil, nil); b != 8 {
		t.Fatalf("bottleneck = %d, want 8", b)
	}
	if b := Bottleneck3D(g, []int{1}, []int{1}, []int{1}); b != 1 {
		t.Fatalf("unit blocks bottleneck = %d, want 1", b)
	}
}
