package rectpart

import (
	"testing"

	"stencilivc/internal/grid"
)

// checkCuts asserts interior cuts are sorted and within [0, n] — the
// contract boundsFromCuts (and distsolve's shard decomposition) relies
// on even for degenerate inputs.
func checkCuts(t *testing.T, name string, cuts []int, k, n int) {
	t.Helper()
	if len(cuts) != k-1 {
		t.Fatalf("%s: %d cuts for k=%d", name, len(cuts), k)
	}
	prev := 0
	for _, c := range cuts {
		if c < prev || c > n {
			t.Fatalf("%s: cuts %v not sorted within [0,%d]", name, cuts, n)
		}
		prev = c
	}
}

func TestPartition1DDegenerate(t *testing.T) {
	// One part: no cuts, bottleneck is the total.
	cuts, b, err := Partition1D([]int64{3, 0, 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 0 || b != 10 {
		t.Fatalf("k=1: cuts=%v b=%d, want no cuts and 10", cuts, b)
	}

	// k equal to the length: every element its own part.
	loads := []int64{5, 1, 9, 2}
	cuts, b, err = Partition1D(loads, len(loads))
	if err != nil {
		t.Fatal(err)
	}
	checkCuts(t, "k=n", cuts, len(loads), len(loads))
	if b != 9 {
		t.Fatalf("k=n bottleneck = %d, want max element 9", b)
	}

	// All-zero loads split with bottleneck zero at any k.
	cuts, b, err = Partition1D(make([]int64, 6), 4)
	if err != nil {
		t.Fatal(err)
	}
	checkCuts(t, "all-zero", cuts, 4, 6)
	if b != 0 {
		t.Fatalf("all-zero bottleneck = %d, want 0", b)
	}

	// More parts than positive entries: trailing parts go empty.
	cuts, b, err = Partition1D([]int64{8, 0, 0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkCuts(t, "sparse", cuts, 4, 4)
	if b != 8 {
		t.Fatalf("sparse bottleneck = %d, want 8", b)
	}

	// Single element, k=1.
	cuts, b, err = Partition1D([]int64{42}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 0 || b != 42 {
		t.Fatalf("singleton: cuts=%v b=%d", cuts, b)
	}

	// Empty input is only partitionable into one (empty) part.
	if _, b, err := Partition1D(nil, 1); err != nil || b != 0 {
		t.Fatalf("empty k=1: b=%d err=%v", b, err)
	}
}

func TestPartition2DStrips(t *testing.T) {
	// A 1×N strip can only split along its long axis; the short axis
	// admits exactly one part, and asking for more must error rather
	// than emit unusable cuts.
	g := grid.MustGrid2D(1, 12)
	for v := range g.W {
		g.W[v] = int64(v + 1)
	}
	cutsX, cutsY, b, err := Partition2D(g, 1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCuts(t, "strip-x", cutsX, 1, 1)
	checkCuts(t, "strip-y", cutsY, 4, 12)
	if got := Bottleneck2D(g, cutsX, cutsY); got != b {
		t.Fatalf("claimed bottleneck %d, realized %d", b, got)
	}
	if _, _, _, err := Partition2D(g, 2, 4, 0); err == nil {
		t.Error("kx=2 accepted on a 1-wide grid")
	}

	// The transposed strip behaves symmetrically.
	gt := grid.MustGrid2D(12, 1)
	copy(gt.W, g.W)
	_, _, bt, err := Partition2D(gt, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bt != b {
		t.Fatalf("transposed strip bottleneck %d != %d", bt, b)
	}
}

func TestPartition2DAxisSaturated(t *testing.T) {
	// k equal to the axis size on both axes: every cell its own block.
	g := grid.MustGrid2D(3, 4)
	for v := range g.W {
		g.W[v] = int64(v%7) + 1
	}
	cutsX, cutsY, b, err := Partition2D(g, 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCuts(t, "sat-x", cutsX, 3, 3)
	checkCuts(t, "sat-y", cutsY, 4, 4)
	var heaviest int64
	for _, w := range g.W {
		heaviest = max(heaviest, w)
	}
	if b != heaviest {
		t.Fatalf("saturated bottleneck = %d, want heaviest cell %d", b, heaviest)
	}
	// One past the axis size errors.
	if _, _, _, err := Partition2D(g, 4, 4, 0); err == nil {
		t.Error("kx > g.X accepted")
	}
	if _, _, _, err := Partition2D(g, 3, 5, 0); err == nil {
		t.Error("ky > g.Y accepted")
	}
}

func TestPartition2DZeroWeightRows(t *testing.T) {
	// All weight in the top half; the refinement must tolerate
	// zero-load strips (empty blocks are fine, cuts stay valid).
	g := grid.MustGrid2D(8, 8)
	for j := 4; j < 8; j++ {
		for i := 0; i < 8; i++ {
			g.W[j*8+i] = int64(i + j)
		}
	}
	cutsX, cutsY, b, err := Partition2D(g, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCuts(t, "zero-x", cutsX, 3, 8)
	checkCuts(t, "zero-y", cutsY, 3, 8)
	if got := Bottleneck2D(g, cutsX, cutsY); got != b {
		t.Fatalf("claimed bottleneck %d, realized %d", b, got)
	}

	// The fully zero grid partitions with bottleneck zero.
	z := grid.MustGrid2D(6, 6)
	_, _, zb, err := Partition2D(z, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zb != 0 {
		t.Fatalf("all-zero grid bottleneck = %d, want 0", zb)
	}
}

func TestPartition3DDegenerate(t *testing.T) {
	// A single zero-weight z-plane between two loaded ones.
	g := grid.MustGrid3D(4, 4, 3)
	for k := 0; k < 3; k += 2 {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				g.W[(k*4+j)*4+i] = int64(i + j + 1)
			}
		}
	}
	cutsX, cutsY, cutsZ, b, err := Partition3D(g, 2, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCuts(t, "3d-x", cutsX, 2, 4)
	checkCuts(t, "3d-y", cutsY, 2, 4)
	checkCuts(t, "3d-z", cutsZ, 3, 3)
	if got := Bottleneck3D(g, cutsX, cutsY, cutsZ); got != b {
		t.Fatalf("claimed bottleneck %d, realized %d", b, got)
	}

	// Degenerate 1×1×N tube: only the z axis may shard.
	tube := grid.MustGrid3D(1, 1, 9)
	for v := range tube.W {
		tube.W[v] = 1
	}
	_, _, cutsZ, b, err = Partition3D(tube, 1, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkCuts(t, "tube-z", cutsZ, 3, 9)
	if b != 3 {
		t.Fatalf("tube bottleneck = %d, want 3", b)
	}
	if _, _, _, _, err := Partition3D(tube, 2, 1, 3, 0); err == nil {
		t.Error("kx=2 accepted on a 1-wide tube")
	}
}
