package rectpart

import (
	"fmt"

	"stencilivc/internal/grid"
)

// Bottleneck3D returns the heaviest block weight of a 3D grid under the
// given interior cuts.
func Bottleneck3D(g *grid.Grid3D, cutsX, cutsY, cutsZ []int) int64 {
	xs := boundsFromCuts(cutsX, g.X)
	ys := boundsFromCuts(cutsY, g.Y)
	zs := boundsFromCuts(cutsZ, g.Z)
	var worst int64
	for bk := 0; bk+1 < len(zs); bk++ {
		for bj := 0; bj+1 < len(ys); bj++ {
			for bi := 0; bi+1 < len(xs); bi++ {
				var sum int64
				for k := zs[bk]; k < zs[bk+1]; k++ {
					for j := ys[bj]; j < ys[bj+1]; j++ {
						for i := xs[bi]; i < xs[bi+1]; i++ {
							sum += g.At(i, j, k)
						}
					}
				}
				worst = max(worst, sum)
			}
		}
	}
	return worst
}

// Partition3D computes a kx×ky×kz rectilinear partition with alternating
// per-axis exact re-optimization, starting from uniform cuts.
func Partition3D(g *grid.Grid3D, kx, ky, kz, maxRounds int) (cutsX, cutsY, cutsZ []int, bottleneck int64, err error) {
	if kx < 1 || kx > g.X || ky < 1 || ky > g.Y || kz < 1 || kz > g.Z {
		return nil, nil, nil, 0, fmt.Errorf("rectpart: partition %dx%dx%d invalid for grid %dx%dx%d",
			kx, ky, kz, g.X, g.Y, g.Z)
	}
	if maxRounds < 1 {
		maxRounds = 10
	}
	cutsX = uniformCuts(g.X, kx)
	cutsY = uniformCuts(g.Y, ky)
	cutsZ = uniformCuts(g.Z, kz)
	best := Bottleneck3D(g, cutsX, cutsY, cutsZ)
	for round := 0; round < maxRounds; round++ {
		nx, err := optimizeAxis3D(g, 0, kx, cutsY, cutsZ)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		cutsX = nx
		ny, err := optimizeAxis3D(g, 1, ky, cutsX, cutsZ)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		cutsY = ny
		nz, err := optimizeAxis3D(g, 2, kz, cutsX, cutsY)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		cutsZ = nz
		now := Bottleneck3D(g, cutsX, cutsY, cutsZ)
		if now >= best {
			best = min(best, now)
			break
		}
		best = now
	}
	return cutsX, cutsY, cutsZ, best, nil
}

// optimizeAxis3D exactly re-partitions axis (0=x, 1=y, 2=z) given fixed
// cuts on the other two axes. cutsA/cutsB are the fixed axes' cuts in
// (y,z), (x,z), (x,y) order respectively.
func optimizeAxis3D(g *grid.Grid3D, axis, k int, cutsA, cutsB []int) ([]int, error) {
	var nAxis, nA, nB int
	switch axis {
	case 0:
		nAxis, nA, nB = g.X, g.Y, g.Z
	case 1:
		nAxis, nA, nB = g.Y, g.X, g.Z
	case 2:
		nAxis, nA, nB = g.Z, g.X, g.Y
	default:
		return nil, fmt.Errorf("rectpart: bad axis %d", axis)
	}
	if k > nAxis {
		return nil, fmt.Errorf("rectpart: k %d exceeds axis size %d", k, nAxis)
	}
	at := func(i, a, b int) int64 {
		switch axis {
		case 0:
			return g.At(i, a, b)
		case 1:
			return g.At(a, i, b)
		default:
			return g.At(a, b, i)
		}
	}
	as := boundsFromCuts(cutsA, nA)
	bs := boundsFromCuts(cutsB, nB)
	nSlabs := (len(as) - 1) * (len(bs) - 1)
	// lineLoad[s][i] = weight of cross-section line i restricted to slab s.
	lineLoad := make([][]int64, nSlabs)
	s := 0
	var total int64
	for sb := 0; sb+1 < len(bs); sb++ {
		for sa := 0; sa+1 < len(as); sa++ {
			lineLoad[s] = make([]int64, nAxis)
			for i := 0; i < nAxis; i++ {
				var sum int64
				for b := bs[sb]; b < bs[sb+1]; b++ {
					for a := as[sa]; a < as[sa+1]; a++ {
						sum += at(i, a, b)
					}
				}
				lineLoad[s][i] = sum
				total += sum
			}
			s++
		}
	}
	feasible := func(bnd int64) ([]int, bool) {
		cuts := make([]int, 0, k-1)
		cur := make([]int64, nSlabs)
		for i := 0; i < nAxis; i++ {
			over := false
			for s := 0; s < nSlabs; s++ {
				if cur[s]+lineLoad[s][i] > bnd {
					over = true
					break
				}
			}
			if over {
				if len(cuts) == k-1 {
					return nil, false
				}
				cuts = append(cuts, i)
				for s := range cur {
					cur[s] = 0
				}
				for s := 0; s < nSlabs; s++ {
					if lineLoad[s][i] > bnd {
						return nil, false
					}
				}
			}
			for s := 0; s < nSlabs; s++ {
				cur[s] += lineLoad[s][i]
			}
		}
		for len(cuts) < k-1 {
			cuts = append(cuts, nAxis)
		}
		return cuts, true
	}
	lo, hi := int64(0), total
	for lo < hi {
		mid := lo + (hi-lo)/2
		if _, ok := feasible(mid); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cuts, ok := feasible(lo)
	if !ok {
		return nil, fmt.Errorf("rectpart: internal 3D probe inconsistency")
	}
	return cuts, nil
}
