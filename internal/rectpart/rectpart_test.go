package rectpart

import (
	"math/rand"
	"testing"

	"stencilivc/internal/grid"
)

// brute1D finds the true optimal bottleneck by enumerating all cut
// combinations.
func brute1D(loads []int64, k int) int64 {
	n := len(loads)
	best := int64(1) << 62
	cuts := make([]int, k-1)
	var rec func(idx, from int)
	rec = func(idx, from int) {
		if idx == k-1 {
			bounds := append(append([]int{0}, cuts...), n)
			var worst int64
			for p := 0; p+1 < len(bounds); p++ {
				var sum int64
				for i := bounds[p]; i < bounds[p+1]; i++ {
					sum += loads[i]
				}
				worst = max(worst, sum)
			}
			best = min(best, worst)
			return
		}
		for c := from; c <= n; c++ {
			cuts[idx] = c
			rec(idx+1, c)
		}
	}
	rec(0, 0)
	return best
}

func TestPartition1DMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		loads := make([]int64, n)
		for i := range loads {
			loads[i] = rng.Int63n(10)
		}
		k := 1 + rng.Intn(n)
		cuts, got, err := Partition1D(loads, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cuts) != k-1 {
			t.Fatalf("cuts = %v for k = %d", cuts, k)
		}
		want := brute1D(loads, k)
		if got != want {
			t.Fatalf("loads %v k %d: bottleneck %d, optimal %d", loads, k, got, want)
		}
		// The returned cuts must realize the claimed bottleneck.
		bounds := append(append([]int{0}, cuts...), n)
		for p := 0; p+1 < len(bounds); p++ {
			var sum int64
			for i := bounds[p]; i < bounds[p+1]; i++ {
				sum += loads[i]
			}
			if sum > got {
				t.Fatalf("cut realization exceeds bottleneck: %v", cuts)
			}
		}
	}
}

func TestPartition1DErrors(t *testing.T) {
	if _, _, err := Partition1D([]int64{1, 2}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Partition1D([]int64{1, -2}, 1); err == nil {
		t.Error("negative load accepted")
	}
}

func TestPartition1DKnown(t *testing.T) {
	cuts, b, err := Partition1D([]int64{4, 1, 1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b != 5 {
		t.Fatalf("bottleneck = %d, want 5", b)
	}
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("cuts = %v, want [2]", cuts)
	}
}

func TestPartition2DNeverWorseThanUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		g := grid.MustGrid2D(4+rng.Intn(8), 4+rng.Intn(8))
		for v := range g.W {
			g.W[v] = rng.Int63n(20)
		}
		kx, ky := 2+rng.Intn(3), 2+rng.Intn(3)
		uniform := Bottleneck2D(g, uniformCuts(g.X, kx), uniformCuts(g.Y, ky))
		cx, cy, b, err := Partition2D(g, kx, ky, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got := Bottleneck2D(g, cx, cy); got != b {
			t.Fatalf("claimed bottleneck %d, realized %d", b, got)
		}
		if b > uniform {
			t.Fatalf("refinement worse than uniform: %d > %d", b, uniform)
		}
	}
}

func TestPartition2DBalancesSkew(t *testing.T) {
	// All weight in one corner: uniform 2x2 puts everything in one block;
	// refinement must cut tighter around the hotspot.
	g := grid.MustGrid2D(8, 8)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			g.Set(i, j, 10)
		}
	}
	uniform := Bottleneck2D(g, uniformCuts(8, 2), uniformCuts(8, 2))
	_, _, b, err := Partition2D(g, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b >= uniform {
		t.Fatalf("refinement %d did not beat uniform %d on a skewed grid", b, uniform)
	}
}

func TestPartition2DErrors(t *testing.T) {
	g := grid.MustGrid2D(3, 3)
	if _, _, _, err := Partition2D(g, 0, 2, 5); err == nil {
		t.Error("kx=0 accepted")
	}
	if _, _, _, err := Partition2D(g, 4, 2, 5); err == nil {
		t.Error("kx > X accepted")
	}
}

func TestBottleneck2DFullGridSinglePart(t *testing.T) {
	g := grid.MustGrid2D(2, 2)
	copy(g.W, []int64{1, 2, 3, 4})
	if b := Bottleneck2D(g, nil, nil); b != 10 {
		t.Fatalf("single block bottleneck = %d, want 10", b)
	}
}
