// Package rectpart implements rectilinear partitioning of weighted grids
// after Nicol (reference [2] of the paper): choose axis-aligned cuts so
// the heaviest block is as light as possible. The paper's application
// setting partitions space rectilinearly before coloring the resulting
// stencil; balancing block loads both lowers the coloring's maxcolor and
// tightens the K4/K8 bound, so the partitioner is a natural companion to
// the coloring algorithms.
//
// The 1D problem (contiguous partition of an array minimizing the
// maximum part sum) is solved exactly with the classic probe algorithm:
// binary search on the bottleneck, greedy feasibility check. The 2D and
// 3D generalized block distributions are NP-hard; Nicol's alternating
// refinement fixes the cuts of all but one dimension and optimally
// re-partitions that dimension (an exact 1D solve against per-slab
// prefix sums), iterating to a local optimum.
package rectpart

import (
	"fmt"

	"stencilivc/internal/grid"
)

// Partition1D splits loads into k contiguous parts minimizing the
// maximum part sum. It returns the k-1 interior cut positions (part i is
// loads[cuts[i-1]:cuts[i]]) and the bottleneck value. k must be in
// [1, len(loads)]; parts are allowed to be empty only when k exceeds the
// number of positive entries, in which case trailing parts may be empty.
func Partition1D(loads []int64, k int) ([]int, int64, error) {
	n := len(loads)
	if k < 1 {
		return nil, 0, fmt.Errorf("rectpart: k = %d < 1", k)
	}
	for _, l := range loads {
		if l < 0 {
			return nil, 0, fmt.Errorf("rectpart: negative load %d", l)
		}
	}
	prefix := make([]int64, n+1)
	for i, l := range loads {
		prefix[i+1] = prefix[i] + l
	}
	// Binary search the smallest bottleneck b such that the array splits
	// into <= k parts each of sum <= b.
	lo, hi := int64(0), prefix[n]
	feasible := func(b int64) bool {
		parts, cur := 1, int64(0)
		for _, l := range loads {
			if l > b {
				return false
			}
			if cur+l > b {
				parts++
				cur = 0
			}
			cur += l
		}
		return parts <= k
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Greedily realize the cuts for bottleneck lo.
	cuts := make([]int, 0, k-1)
	var cur int64
	for i, l := range loads {
		if cur+l > lo && len(cuts) < k-1 {
			cuts = append(cuts, i)
			cur = 0
		}
		cur += l
	}
	for len(cuts) < k-1 {
		cuts = append(cuts, n) // empty trailing parts
	}
	return cuts, lo, nil
}

// Bottleneck2D returns the heaviest block weight of a 2D grid under the
// given interior cuts (cutsX partitions columns, cutsY rows).
func Bottleneck2D(g *grid.Grid2D, cutsX, cutsY []int) int64 {
	xs := boundsFromCuts(cutsX, g.X)
	ys := boundsFromCuts(cutsY, g.Y)
	var worst int64
	for bi := 0; bi+1 < len(xs); bi++ {
		for bj := 0; bj+1 < len(ys); bj++ {
			var sum int64
			for j := ys[bj]; j < ys[bj+1]; j++ {
				for i := xs[bi]; i < xs[bi+1]; i++ {
					sum += g.At(i, j)
				}
			}
			worst = max(worst, sum)
		}
	}
	return worst
}

// Partition2D computes a kx×ky rectilinear partition of g with Nicol's
// alternating refinement, starting from uniform cuts. It returns the
// interior cut positions per axis and the bottleneck block weight.
func Partition2D(g *grid.Grid2D, kx, ky, maxRounds int) ([]int, []int, int64, error) {
	if kx < 1 || kx > g.X || ky < 1 || ky > g.Y {
		return nil, nil, 0, fmt.Errorf("rectpart: partition %dx%d invalid for grid %dx%d",
			kx, ky, g.X, g.Y)
	}
	if maxRounds < 1 {
		maxRounds = 10
	}
	cutsX := uniformCuts(g.X, kx)
	cutsY := uniformCuts(g.Y, ky)
	best := Bottleneck2D(g, cutsX, cutsY)
	for round := 0; round < maxRounds; round++ {
		// Re-optimize the x cuts against the current y strips: the load
		// of column i is the per-strip sums; an x-interval's block weight
		// is the max over strips of the strip-restricted sum. The probe
		// algorithm applies with per-strip prefix sums.
		nx, err := optimizeAxis(g, cutsY, kx, true)
		if err != nil {
			return nil, nil, 0, err
		}
		cutsX = nx
		ny, err := optimizeAxis(g, cutsX, ky, false)
		if err != nil {
			return nil, nil, 0, err
		}
		cutsY = ny
		now := Bottleneck2D(g, cutsX, cutsY)
		if now >= best {
			best = min(best, now)
			break
		}
		best = now
	}
	return cutsX, cutsY, best, nil
}

// optimizeAxis exactly re-partitions one axis given fixed cuts on the
// other: binary search on the bottleneck with a greedy scan where the
// cost of extending the current part by one column (row) is evaluated
// per fixed strip.
func optimizeAxis(g *grid.Grid2D, fixedCuts []int, k int, optimizeX bool) ([]int, error) {
	var nAxis int
	if optimizeX {
		nAxis = g.X
	} else {
		nAxis = g.Y
	}
	if k > nAxis {
		return nil, fmt.Errorf("rectpart: k %d exceeds axis size %d", k, nAxis)
	}
	var fixedN int
	if optimizeX {
		fixedN = g.Y
	} else {
		fixedN = g.X
	}
	strips := boundsFromCuts(fixedCuts, fixedN)
	ns := len(strips) - 1
	// lineLoad[s][i] = weight of line i restricted to strip s.
	lineLoad := make([][]int64, ns)
	for s := range lineLoad {
		lineLoad[s] = make([]int64, nAxis)
		for i := 0; i < nAxis; i++ {
			var sum int64
			for f := strips[s]; f < strips[s+1]; f++ {
				if optimizeX {
					sum += g.At(i, f)
				} else {
					sum += g.At(f, i)
				}
			}
			lineLoad[s][i] = sum
		}
	}
	var total int64
	for s := 0; s < ns; s++ {
		for i := 0; i < nAxis; i++ {
			total += lineLoad[s][i]
		}
	}
	feasible := func(b int64) ([]int, bool) {
		cuts := make([]int, 0, k-1)
		cur := make([]int64, ns)
		for i := 0; i < nAxis; i++ {
			over := false
			for s := 0; s < ns; s++ {
				if cur[s]+lineLoad[s][i] > b {
					over = true
					break
				}
			}
			if over {
				if len(cuts) == k-1 {
					return nil, false
				}
				cuts = append(cuts, i)
				for s := range cur {
					cur[s] = 0
				}
				for s := 0; s < ns; s++ {
					if lineLoad[s][i] > b {
						return nil, false
					}
				}
			}
			for s := 0; s < ns; s++ {
				cur[s] += lineLoad[s][i]
			}
		}
		for len(cuts) < k-1 {
			cuts = append(cuts, nAxis)
		}
		return cuts, true
	}
	lo, hi := int64(0), total
	for lo < hi {
		mid := lo + (hi-lo)/2
		if _, ok := feasible(mid); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cuts, ok := feasible(lo)
	if !ok {
		return nil, fmt.Errorf("rectpart: internal probe inconsistency")
	}
	return cuts, nil
}

// uniformCuts returns k-1 evenly spaced interior cuts of an n-axis.
func uniformCuts(n, k int) []int {
	cuts := make([]int, k-1)
	for i := 1; i < k; i++ {
		cuts[i-1] = i * n / k
	}
	return cuts
}

// boundsFromCuts converts interior cuts into a bounds array
// [0, c1, ..., ck-1, n].
func boundsFromCuts(cuts []int, n int) []int {
	out := make([]int, 0, len(cuts)+2)
	out = append(out, 0)
	out = append(out, cuts...)
	out = append(out, n)
	return out
}
