package perfprof

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PlotASCII renders the performance profile as a fixed-size ASCII chart:
// x axis tau in [1, maxTau], y axis proportion in [0, 1], one glyph per
// algorithm. It is how cmd/experiments prints Figures 5b-9 in a terminal.
func (p *Profile) PlotASCII(w io.Writer, width, height int, maxTau float64) error {
	if width < 20 || height < 5 {
		return fmt.Errorf("perfprof: plot area %dx%d too small", width, height)
	}
	if maxTau <= 1 {
		// Auto-scale to the worst finite tau, padded slightly.
		maxTau = 1.0
		for _, alg := range p.Algorithms {
			maxTau = math.Max(maxTau, p.MaxTau(alg))
		}
		maxTau = maxTau*1.05 + 1e-9
	}
	glyphs := []byte("*o+x#@%&$~")
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for ai, alg := range p.Algorithms {
		glyph := glyphs[ai%len(glyphs)]
		for col := 0; col < width; col++ {
			tau := 1 + (maxTau-1)*float64(col)/float64(width-1)
			prop := p.At(alg, tau)
			row := height - 1 - int(prop*float64(height-1)+0.5)
			canvas[row][col] = glyph
		}
	}
	fmt.Fprintf(w, "Proportion of instances within tau of best (%d instances)\n", p.Instances)
	for i, line := range canvas {
		label := "    "
		switch i {
		case 0:
			label = "1.00"
		case height - 1:
			label = "0.00"
		case (height - 1) / 2:
			label = "0.50"
		}
		fmt.Fprintf(w, "%s |%s|\n", label, line)
	}
	fmt.Fprintf(w, "      tau: 1.00 %s %.2f\n", strings.Repeat(" ", width-12), maxTau)
	legend := make([]string, 0, len(p.Algorithms))
	for ai, alg := range p.Algorithms {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[ai%len(glyphs)], alg))
	}
	fmt.Fprintf(w, "      %s\n", strings.Join(legend, "  "))
	return nil
}

// WriteCSV emits the profile as tau-step CSV rows
// (algorithm,tau,proportion), one row per distinct tau per algorithm, for
// external plotting tools.
func (p *Profile) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "algorithm,tau,proportion"); err != nil {
		return err
	}
	for _, alg := range p.Algorithms {
		curve := p.Curves[alg]
		n := float64(len(curve))
		for i, tau := range curve {
			if i+1 < len(curve) && curve[i+1] == tau {
				continue // emit only the last (highest proportion) step per tau
			}
			if math.IsInf(tau, 1) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%.6f,%.6f\n", alg, tau, float64(i+1)/n); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteRecordsCSV dumps raw records (instance,algorithm,value,runtime).
func WriteRecordsCSV(w io.Writer, records []Record) error {
	if _, err := fmt.Fprintln(w, "instance,algorithm,maxcolor,runtime_s"); err != nil {
		return err
	}
	sorted := append([]Record{}, records...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Instance != sorted[b].Instance {
			return sorted[a].Instance < sorted[b].Instance
		}
		return sorted[a].Algorithm < sorted[b].Algorithm
	})
	for _, r := range sorted {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.6f\n", r.Instance, r.Algorithm, r.Value, r.Runtime); err != nil {
			return err
		}
	}
	return nil
}

// RuntimeBars renders mean runtimes as a horizontal ASCII bar chart — the
// shape of Figures 5a and 7a.
func RuntimeBars(w io.Writer, summaries []Summary, width int) error {
	if width < 10 {
		return fmt.Errorf("perfprof: bar width %d too small", width)
	}
	var maxRT float64
	for _, s := range summaries {
		maxRT = math.Max(maxRT, s.MeanRuntime)
	}
	if maxRT == 0 {
		maxRT = 1
	}
	for _, s := range summaries {
		n := int(s.MeanRuntime / maxRT * float64(width))
		fmt.Fprintf(w, "%-6s %12.6fs |%s\n", s.Algorithm, s.MeanRuntime, strings.Repeat("#", n))
	}
	return nil
}
