// Package perfprof computes the performance profiles and summary
// statistics used throughout Section VI of the paper, renders them as
// ASCII plots, and exports CSV series for external plotting.
//
// In a performance profile, tau is the ratio between an algorithm's
// maxcolor on an instance and the best maxcolor any algorithm achieved on
// that instance; an algorithm's curve passes through (tau, p) when it is
// within a factor tau of the best on fraction p of the instances.
package perfprof

import (
	"fmt"
	"math"
	"sort"
)

// Record is one (algorithm, instance) measurement.
type Record struct {
	Algorithm string
	Instance  string
	// Value is the measured objective (maxcolor); smaller is better.
	Value int64
	// Runtime is the wall-clock seconds the algorithm took.
	Runtime float64
}

// Profile is a performance profile: for each algorithm, a step curve of
// (Tau, Proportion) points, already sorted by Tau.
type Profile struct {
	Algorithms []string
	// Curves[alg] lists the instances' tau ratios, sorted ascending.
	Curves map[string][]float64
	// Instances counts the distinct instances profiled.
	Instances int
}

// Compute builds the performance profile of a record set. Instances
// missing some algorithm are rejected — a partial matrix silently skews
// the curves. Instances where the best value is 0 (empty grids) count
// every algorithm that also achieved 0 at tau = 1.
func Compute(records []Record) (*Profile, error) {
	byInstance := map[string]map[string]Record{}
	algSet := map[string]bool{}
	for _, r := range records {
		if byInstance[r.Instance] == nil {
			byInstance[r.Instance] = map[string]Record{}
		}
		if _, dup := byInstance[r.Instance][r.Algorithm]; dup {
			return nil, fmt.Errorf("perfprof: duplicate record %s/%s", r.Instance, r.Algorithm)
		}
		byInstance[r.Instance][r.Algorithm] = r
		algSet[r.Algorithm] = true
	}
	if len(byInstance) == 0 {
		return nil, fmt.Errorf("perfprof: no records")
	}
	algorithms := make([]string, 0, len(algSet))
	for a := range algSet {
		algorithms = append(algorithms, a)
	}
	sort.Strings(algorithms)

	curves := map[string][]float64{}
	for inst, row := range byInstance {
		if len(row) != len(algorithms) {
			return nil, fmt.Errorf("perfprof: instance %s has %d of %d algorithms",
				inst, len(row), len(algorithms))
		}
		best := int64(math.MaxInt64)
		for _, r := range row {
			best = min(best, r.Value)
		}
		for _, alg := range algorithms {
			v := row[alg].Value
			var tau float64
			switch {
			case best == 0 && v == 0:
				tau = 1
			case best == 0:
				tau = math.Inf(1)
			default:
				tau = float64(v) / float64(best)
			}
			curves[alg] = append(curves[alg], tau)
		}
	}
	for _, alg := range algorithms {
		sort.Float64s(curves[alg])
	}
	return &Profile{Algorithms: algorithms, Curves: curves, Instances: len(byInstance)}, nil
}

// At returns the proportion of instances on which alg is within factor
// tau of the best.
func (p *Profile) At(alg string, tau float64) float64 {
	curve := p.Curves[alg]
	if len(curve) == 0 {
		return 0
	}
	// Count entries <= tau (curve is sorted).
	idx := sort.SearchFloat64s(curve, math.Nextafter(tau, math.Inf(1)))
	return float64(idx) / float64(len(curve))
}

// BestAt1 returns the fraction of instances on which alg ties the best
// (tau = 1) — the "wins" column of the paper's discussion.
func (p *Profile) BestAt1(alg string) float64 { return p.At(alg, 1.0) }

// MaxTau returns the largest finite tau of alg's curve (its worst
// relative performance), or 1 if the curve is empty.
func (p *Profile) MaxTau(alg string) float64 {
	worst := 1.0
	for _, t := range p.Curves[alg] {
		if !math.IsInf(t, 1) {
			worst = math.Max(worst, t)
		}
	}
	return worst
}
