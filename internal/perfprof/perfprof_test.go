package perfprof

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Algorithm: "A", Instance: "i1", Value: 10, Runtime: 0.1},
		{Algorithm: "B", Instance: "i1", Value: 20, Runtime: 0.2},
		{Algorithm: "A", Instance: "i2", Value: 30, Runtime: 0.3},
		{Algorithm: "B", Instance: "i2", Value: 15, Runtime: 0.1},
		{Algorithm: "A", Instance: "i3", Value: 5, Runtime: 0.1},
		{Algorithm: "B", Instance: "i3", Value: 5, Runtime: 0.2},
	}
}

func TestComputeProfile(t *testing.T) {
	p, err := Compute(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	if p.Instances != 3 {
		t.Fatalf("Instances = %d", p.Instances)
	}
	// A is best on i1 (tau 1), 2x worse on i2, ties on i3.
	if got := p.BestAt1("A"); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("A win rate = %v, want 2/3", got)
	}
	if got := p.BestAt1("B"); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("B win rate = %v, want 2/3", got)
	}
	if got := p.At("A", 2.0); got != 1.0 {
		t.Errorf("A at tau=2: %v, want 1", got)
	}
	if got := p.At("B", 1.5); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("B at tau=1.5: %v", got)
	}
	if got := p.MaxTau("A"); got != 2.0 {
		t.Errorf("A MaxTau = %v", got)
	}
}

func TestComputeRejectsPartialMatrix(t *testing.T) {
	recs := sampleRecords()[:3] // i2 lacks algorithm B
	if _, err := Compute(recs); err == nil {
		t.Error("partial matrix accepted")
	}
	if _, err := Compute(nil); err == nil {
		t.Error("empty records accepted")
	}
	dup := append(sampleRecords(), Record{Algorithm: "A", Instance: "i1", Value: 1})
	if _, err := Compute(dup); err == nil {
		t.Error("duplicate record accepted")
	}
}

func TestComputeZeroBest(t *testing.T) {
	recs := []Record{
		{Algorithm: "A", Instance: "e", Value: 0},
		{Algorithm: "B", Instance: "e", Value: 0},
	}
	p, err := Compute(recs)
	if err != nil {
		t.Fatal(err)
	}
	if p.BestAt1("A") != 1 || p.BestAt1("B") != 1 {
		t.Error("zero-best instance not counted as tie")
	}
	recs2 := []Record{
		{Algorithm: "A", Instance: "e", Value: 0},
		{Algorithm: "B", Instance: "e", Value: 3},
	}
	p2, err := Compute(recs2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p2.Curves["B"][0], 1) {
		t.Error("nonzero vs zero best should be infinite tau")
	}
}

func TestSummarize(t *testing.T) {
	sums, err := Summarize(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	a := sums[0]
	if a.Algorithm != "A" {
		t.Fatalf("order wrong: %s first", a.Algorithm)
	}
	if math.Abs(a.MeanValue-15) > 1e-9 {
		t.Errorf("A mean = %v", a.MeanValue)
	}
	if a.Instances != 3 {
		t.Errorf("A instances = %d", a.Instances)
	}
	wantGeo := math.Pow(1*2*1, 1.0/3)
	if math.Abs(a.GeoMeanTau-wantGeo) > 1e-9 {
		t.Errorf("A geo tau = %v, want %v", a.GeoMeanTau, wantGeo)
	}
	if math.Abs(a.TotalRuntime-0.5) > 1e-9 {
		t.Errorf("A total runtime = %v", a.TotalRuntime)
	}
}

func TestRelativeSpeedAndQuality(t *testing.T) {
	a := Summary{TotalRuntime: 1, MeanValue: 99}
	b := Summary{TotalRuntime: 2.82, MeanValue: 100}
	if got := RelativeSpeed(a, b); math.Abs(got-182) > 1e-9 {
		t.Errorf("RelativeSpeed = %v, want 182", got)
	}
	if got := RelativeQuality(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("RelativeQuality = %v, want 1", got)
	}
	if got := RelativeSpeed(Summary{}, b); !math.IsInf(got, 1) {
		t.Errorf("zero runtime speed = %v", got)
	}
}

func TestLinreg(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r, err := Linreg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r-1) > 1e-9 {
		t.Errorf("Linreg = %v %v %v", a, b, r)
	}
	if _, _, _, err := Linreg([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := Linreg([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, _, r, _ := Linreg([]float64{1, 2, 3}, []float64{4, 4, 4}); r != 0 {
		t.Errorf("flat y correlation = %v, want 0", r)
	}
}

func TestPlotASCII(t *testing.T) {
	p, err := Compute(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.PlotASCII(&buf, 40, 10, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Proportion") || !strings.Contains(out, "*=A") {
		t.Errorf("plot missing elements:\n%s", out)
	}
	if err := p.PlotASCII(&buf, 5, 2, 0); err == nil {
		t.Error("tiny plot accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	p, err := Compute(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "algorithm,tau,proportion\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "A,1.000000") {
		t.Errorf("missing A tau=1 row:\n%s", out)
	}
}

func TestWriteRecordsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[1] != "i1,A,10,0.100000" {
		t.Errorf("first data row = %q", lines[1])
	}
}

func TestRuntimeBars(t *testing.T) {
	sums, err := Summarize(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RuntimeBars(&buf, sums, 30); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Error("no bars rendered")
	}
	if err := RuntimeBars(&buf, sums, 2); err == nil {
		t.Error("tiny width accepted")
	}
	// All-zero runtimes must not divide by zero.
	if err := RuntimeBars(&buf, []Summary{{Algorithm: "Z"}}, 20); err != nil {
		t.Errorf("zero runtimes: %v", err)
	}
}

func TestFormatSummaries(t *testing.T) {
	sums, err := Summarize(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSummaries(sums)
	if !strings.Contains(out, "alg") || !strings.Contains(out, "A") {
		t.Errorf("table malformed:\n%s", out)
	}
}
