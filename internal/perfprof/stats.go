package perfprof

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates one algorithm's results over a record set; it backs
// the in-text statistics tables (T1/T2/T3 in DESIGN.md).
type Summary struct {
	Algorithm     string
	Instances     int
	MeanValue     float64 // arithmetic mean maxcolor
	GeoMeanTau    float64 // geometric mean of ratios to the per-instance best
	WinRate       float64 // fraction of instances at tau == 1
	MeanRuntime   float64 // seconds
	MedianRuntime float64 // seconds
	TotalRuntime  float64 // seconds
}

// Summarize computes per-algorithm summaries from a complete record
// matrix (same validation as Compute).
func Summarize(records []Record) ([]Summary, error) {
	prof, err := Compute(records)
	if err != nil {
		return nil, err
	}
	agg := map[string]*Summary{}
	runtimes := map[string][]float64{}
	for _, alg := range prof.Algorithms {
		agg[alg] = &Summary{Algorithm: alg}
	}
	for _, r := range records {
		s := agg[r.Algorithm]
		s.Instances++
		s.MeanValue += float64(r.Value)
		s.MeanRuntime += r.Runtime
		s.TotalRuntime += r.Runtime
		runtimes[r.Algorithm] = append(runtimes[r.Algorithm], r.Runtime)
	}
	out := make([]Summary, 0, len(agg))
	for _, alg := range prof.Algorithms {
		s := agg[alg]
		n := float64(s.Instances)
		s.MeanValue /= n
		s.MeanRuntime /= n
		rts := runtimes[alg]
		sort.Float64s(rts)
		s.MedianRuntime = rts[len(rts)/2]
		var logSum float64
		finite := 0
		for _, tau := range prof.Curves[alg] {
			if !math.IsInf(tau, 1) {
				logSum += math.Log(tau)
				finite++
			}
		}
		if finite > 0 {
			s.GeoMeanTau = math.Exp(logSum / float64(finite))
		} else {
			s.GeoMeanTau = math.Inf(1)
		}
		s.WinRate = prof.BestAt1(alg)
		out = append(out, *s)
	}
	return out, nil
}

// RelativeSpeed returns how much faster a is than b as the paper phrases
// it ("BDP was 182% faster than SGK"): b's total runtime over a's, minus
// one, as a percentage. Returns +Inf when a's total runtime is zero.
func RelativeSpeed(a, b Summary) float64 {
	if a.TotalRuntime == 0 {
		return math.Inf(1)
	}
	return (b.TotalRuntime/a.TotalRuntime - 1) * 100
}

// RelativeQuality returns how many percent fewer colors a uses than b,
// comparing mean maxcolor. Positive means a is better.
func RelativeQuality(a, b Summary) float64 {
	if b.MeanValue == 0 {
		return 0
	}
	return (1 - a.MeanValue/b.MeanValue) * 100
}

// FormatSummaries renders summaries as an aligned text table.
func FormatSummaries(summaries []Summary) string {
	out := fmt.Sprintf("%-6s %9s %12s %10s %8s %12s %12s\n",
		"alg", "instances", "mean colors", "geo tau", "win%", "mean time s", "total time s")
	for _, s := range summaries {
		out += fmt.Sprintf("%-6s %9d %12.2f %10.4f %7.1f%% %12.6f %12.4f\n",
			s.Algorithm, s.Instances, s.MeanValue, s.GeoMeanTau, s.WinRate*100,
			s.MeanRuntime, s.TotalRuntime)
	}
	return out
}

// Linreg fits y = a + b*x by least squares and returns the intercept,
// slope, and Pearson correlation r. It backs Figure 10's "linear
// correlation between colors and runtime" claim.
func Linreg(xs, ys []float64) (a, b, r float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("perfprof: need >= 2 paired points, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("perfprof: degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		r = 0 // flat y: correlation undefined; report 0
	} else {
		r = sxy / math.Sqrt(sxx*syy)
	}
	return a, b, r, nil
}
