package chaos

import (
	"sync"
	"testing"
	"time"

	"stencilivc/internal/core"
)

const (
	siteA core.FaultSite = "test/site-a"
	siteB core.FaultSite = "test/site-b"
)

// TestOnNth: the fault fires exactly once, on the configured visit.
func TestOnNth(t *testing.T) {
	in := New(1).OnNth(siteA, 3)
	var fired []int
	for v := 1; v <= 6; v++ {
		if in.Inject(siteA) {
			fired = append(fired, v)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Errorf("fired on visits %v, want [3]", fired)
	}
	if in.Fires(siteA) != 1 || in.Visits(siteA) != 6 {
		t.Errorf("counters = %s, want 1 fire / 6 visits", in)
	}
}

// TestEveryNthBudget: periodic firing stops once the budget is spent.
func TestEveryNthBudget(t *testing.T) {
	in := New(1).EveryNth(siteA, 2, 3)
	var fired []int
	for v := 1; v <= 12; v++ {
		if in.Inject(siteA) {
			fired = append(fired, v)
		}
	}
	want := []int{2, 4, 6}
	if len(fired) != len(want) {
		t.Fatalf("fired on visits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on visits %v, want %v", fired, want)
		}
	}
	if in.Fires(siteA) != 3 {
		t.Errorf("Fires = %d, want 3 (budget)", in.Fires(siteA))
	}
}

// TestProbDeterministic: the seeded probabilistic schedule replays
// exactly, differs across seeds, and fires roughly in proportion to p.
func TestProbDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		in := New(seed).WithProb(siteA, 0.25)
		out := make([]bool, 400)
		for i := range out {
			out[i] = in.Inject(siteA)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at visit %d", i+1)
		}
	}
	c := run(8)
	same := true
	fires := 0
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			fires++
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	if fires < 50 || fires > 150 {
		t.Errorf("p=0.25 over 400 visits fired %d times, want ~100", fires)
	}
}

// TestSiteIsolation: rules on one site never fire another.
func TestSiteIsolation(t *testing.T) {
	in := New(1).EveryNth(siteA, 1, 0)
	for i := 0; i < 5; i++ {
		if in.Inject(siteB) {
			t.Fatal("unconfigured site fired")
		}
	}
	if !in.Inject(siteA) {
		t.Fatal("configured site did not fire")
	}
	if in.TotalFires() != 1 {
		t.Errorf("TotalFires = %d, want 1", in.TotalFires())
	}
}

// TestPanicking: a panicking rule throws core.InjectedPanic carrying
// the site, the payload the pipeline's recover paths translate.
func TestPanicking(t *testing.T) {
	in := New(1).OnNth(siteA, 1).Panicking(siteA)
	defer func() {
		rec := recover()
		ip, ok := rec.(core.InjectedPanic)
		if !ok || ip.Site != siteA {
			t.Errorf("recovered %v, want core.InjectedPanic at %s", rec, siteA)
		}
		if in.Fires(siteA) != 1 {
			t.Errorf("Fires = %d, want 1", in.Fires(siteA))
		}
	}()
	in.Inject(siteA)
	t.Fatal("Inject returned instead of panicking")
}

// TestStalling: a stalling rule delays the caller by roughly the
// configured duration.
func TestStalling(t *testing.T) {
	const d = 20 * time.Millisecond
	in := New(1).OnNth(siteA, 1).Stalling(siteA, d)
	t0 := time.Now()
	if !in.Inject(siteA) {
		t.Fatal("stall rule did not fire")
	}
	if got := time.Since(t0); got < d {
		t.Errorf("stall lasted %v, want >= %v", got, d)
	}
}

// TestSealing: configuring rules after injection started panics — that
// write would race with the lock-free rule reads.
func TestSealing(t *testing.T) {
	in := New(1).OnNth(siteA, 1)
	in.Inject(siteA)
	defer func() {
		if recover() == nil {
			t.Error("late rule edit did not panic")
		}
	}()
	in.OnNth(siteB, 1)
}

// TestConcurrentInject: concurrent visits each get one verdict and the
// counters stay exact (run under -race via make check).
func TestConcurrentInject(t *testing.T) {
	const (
		workers = 8
		perW    = 1000
	)
	in := New(1).EveryNth(siteA, 10, 0)
	var wg sync.WaitGroup
	var fires sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for i := 0; i < perW; i++ {
				if in.Inject(siteA) {
					n++
				}
			}
			fires.Store(w, n)
		}(w)
	}
	wg.Wait()
	total := 0
	fires.Range(func(_, v any) bool { total += v.(int); return true })
	want := workers * perW / 10
	if total != want {
		t.Errorf("observed %d fires across workers, want %d", total, want)
	}
	if in.Fires(siteA) != int64(want) || in.Visits(siteA) != workers*perW {
		t.Errorf("counters %s, want %d fires / %d visits", in, want, workers*perW)
	}
}
