package chaos

import (
	"testing"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
	"stencilivc/internal/parallel"
)

// The e2e suite drives the tile-parallel solvers (PGLL on a 2048² 9-pt
// instance, PGLF on a 128³ 27-pt instance) through induced worker
// panics, forced repair-round exhaustion, and a probabilistic fault
// storm, asserting the degradation ladder always lands on a complete,
// valid coloring with the degraded-solve counters recording the events.
// Under the race detector the grids shrink (the ladder is size-blind;
// full-size runs would multiply the ~15× slowdown).

func e2eGrid2D(t *testing.T) *grid.Grid2D {
	t.Helper()
	x := 2048
	if raceEnabled {
		x = 256
	}
	g := grid.MustGrid2D(x, x)
	for v := range g.W {
		g.W[v] = int64(v%9) + 1
	}
	return g
}

func e2eGrid3D(t *testing.T) *grid.Grid3D {
	t.Helper()
	x := 128
	if raceEnabled {
		x = 32
	}
	g := grid.MustGrid3D(x, x, x)
	for v := range g.W {
		g.W[v] = int64(v%9) + 1
	}
	return g
}

// e2eCase runs parallel.Greedy under inj and asserts a valid coloring.
func e2eCase(t *testing.T, s grid.Stencil, cfg parallel.Config, inj *Injector) *obsv.SolveMetrics {
	t.Helper()
	m := obsv.NewSolveMetrics(obsv.NewRegistry())
	opts := &core.SolveOptions{Parallelism: 4, Metrics: m}
	if inj != nil {
		opts.Injector = inj
	}
	c, err := parallel.Greedy(s, cfg, opts)
	if err != nil {
		t.Fatalf("chaos solve errored (%v): %v", inj, err)
	}
	if err := c.Validate(s); err != nil {
		t.Fatalf("chaos solve invalid (%v): %v", inj, err)
	}
	return m
}

// TestChaosWorkerPanicPGLL2D: an induced worker panic mid-speculation
// on the 2048² PGLL solve degrades to the sequential bedrock.
func TestChaosWorkerPanicPGLL2D(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size chaos e2e skipped in -short mode")
	}
	inj := New(42).OnNth(parallel.SiteWorkerPanic, 2).Panicking(parallel.SiteWorkerPanic)
	m := e2eCase(t, e2eGrid2D(t), parallel.Config{Order: parallel.OrderLine}, inj)
	if inj.Fires(parallel.SiteWorkerPanic) != 1 {
		t.Errorf("panic fired %d times, want 1 (%v)", inj.Fires(parallel.SiteWorkerPanic), inj)
	}
	if m.PanicsRecovered.Value() == 0 {
		t.Error("solver_panics_recovered_total = 0, want > 0")
	}
	if m.Fallbacks.Value() == 0 {
		t.Error("solver_fallbacks_total = 0, want > 0")
	}
}

// TestChaosWorkerPanicPGLF3D: the same ladder on the 128³ PGLF solve.
func TestChaosWorkerPanicPGLF3D(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size chaos e2e skipped in -short mode")
	}
	inj := New(43).OnNth(parallel.SiteWorkerPanic, 2).Panicking(parallel.SiteWorkerPanic)
	m := e2eCase(t, e2eGrid3D(t), parallel.Config{Order: parallel.OrderWeightDesc}, inj)
	if m.PanicsRecovered.Value() == 0 {
		t.Error("solver_panics_recovered_total = 0, want > 0")
	}
	if m.Fallbacks.Value() == 0 {
		t.Error("solver_fallbacks_total = 0, want > 0")
	}
}

// TestChaosRepairExhaustionPGLL2D: blind speculation plants cross-tile
// conflicts everywhere and MaxRounds=1 exhausts the parallel repair
// budget immediately, while every parallel repair update is dropped —
// the sequential repair pass plus the completion sweep must still
// finish the coloring.
func TestChaosRepairExhaustionPGLL2D(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size chaos e2e skipped in -short mode")
	}
	inj := New(44).EveryNth(parallel.SiteRepairDrop, 1, 0)
	cfg := parallel.Config{Order: parallel.OrderLine, MaxRounds: 1, SpeculateBlind: true}
	m := e2eCase(t, e2eGrid2D(t), cfg, inj)
	if m.Fallbacks.Value() == 0 {
		t.Error("solver_fallbacks_total = 0, want > 0 after repair exhaustion")
	}
	if m.Conflicts.Value() == 0 {
		t.Error("blind speculation detected zero conflicts")
	}
}

// TestChaosRepairExhaustionPGLF3D: same forced exhaustion on the 27-pt
// instance, where each vertex has up to 26 cross-tile neighbors.
func TestChaosRepairExhaustionPGLF3D(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size chaos e2e skipped in -short mode")
	}
	inj := New(45).EveryNth(parallel.SiteRepairDrop, 1, 0)
	cfg := parallel.Config{Order: parallel.OrderWeightDesc, MaxRounds: 1, SpeculateBlind: true}
	m := e2eCase(t, e2eGrid3D(t), cfg, inj)
	if m.Fallbacks.Value() == 0 {
		t.Error("solver_fallbacks_total = 0, want > 0 after repair exhaustion")
	}
}

// TestChaosStorm: probabilistic halo misreads, dropped repair updates,
// and brief worker stalls all at once — no single deterministic trigger,
// but the ladder's floor (sequential repair + completion sweep) must
// still deliver a valid coloring.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size chaos e2e skipped in -short mode")
	}
	inj := New(46).
		WithProb(parallel.SiteHaloRead, 0.2).
		WithProb(parallel.SiteRepairDrop, 0.5).
		EveryNth(parallel.SiteWorkerStall, 3, 8).
		Stalling(parallel.SiteWorkerStall, 200*time.Microsecond)
	e2eCase(t, e2eGrid2D(t), parallel.Config{Order: parallel.OrderLine}, inj)
	if inj.TotalFires() == 0 {
		t.Errorf("storm fired nothing: %v", inj)
	}
}
