package chaos

import (
	"errors"
	"testing"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/parallel"
)

// FuzzInjectionSchedule decodes an arbitrary byte string into a fault
// schedule over every pgreedy site — including panicking and stalling
// rules at sites the solver never expects to crash — and asserts the
// pipeline's invariant: whatever the schedule, parallel.Greedy either
// returns a complete coloring that passes Validate or a typed error; an
// injected panic must never escape and an invalid coloring must never
// leak.
//
// Schedule encoding, 4 bytes per rule (up to 12 rules):
//
//	byte 0: site   (mod 4 → stall, panic, halo, drop)
//	byte 1: kind   (mod 4 → OnNth, EveryNth+budget, WithProb, WithProb+Panicking)
//	byte 2: magnitude (visit, period, or probability numerator)
//	byte 3: budget (EveryNth only)
func FuzzInjectionSchedule(f *testing.F) {
	f.Add(uint64(1), []byte{})                          // no faults
	f.Add(uint64(2), []byte{1, 0, 2, 0})                // panic site, OnNth(3)
	f.Add(uint64(3), []byte{2, 2, 128, 0})              // halo misreads, p≈0.25
	f.Add(uint64(4), []byte{3, 1, 1, 0, 2, 3, 64, 0})   // drop every visit + panicking halo
	f.Add(uint64(5), []byte{0, 1, 2, 4, 1, 3, 255, 0})  // stalls + always-panicking panic site
	sites := []core.FaultSite{
		parallel.SiteWorkerStall,
		parallel.SiteWorkerPanic,
		parallel.SiteHaloRead,
		parallel.SiteRepairDrop,
	}
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		in := New(seed)
		for i := 0; i+3 < len(data) && i < 48; i += 4 {
			site := sites[int(data[i])%len(sites)]
			mag := int64(data[i+2])
			switch data[i+1] % 4 {
			case 0:
				in.OnNth(site, mag%64+1)
			case 1:
				in.EveryNth(site, mag%8+1, int64(data[i+3])%16)
			case 2:
				in.WithProb(site, float64(mag)/512)
			case 3:
				in.WithProb(site, float64(mag)/1024).Panicking(site)
			}
			if site == parallel.SiteWorkerStall {
				// Keep stalls real but bounded so the fuzzer's iteration
				// rate stays useful.
				in.Stalling(site, 50*time.Microsecond)
			}
		}
		g := grid.MustGrid2D(48, 48)
		for v := range g.W {
			g.W[v] = int64(v)%7 + 1
		}
		cfg := parallel.Config{TileSize: 16, Order: parallel.Order(seed % 2)}
		c, err := parallel.Greedy(g, cfg, &core.SolveOptions{Parallelism: 4, Injector: in})
		if err != nil {
			// The only acceptable failure is a typed solve error (every
			// schedule here is cancellation-free); nothing may panic out.
			var se *core.SolveError
			if !errors.As(err, &se) {
				t.Fatalf("untyped error under schedule %v: %v", in, err)
			}
			return
		}
		if verr := c.Validate(g); verr != nil {
			t.Fatalf("invalid coloring under schedule %v: %v", in, verr)
		}
	})
}
