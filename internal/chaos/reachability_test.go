package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stencilivc/internal/chaos"
	"stencilivc/internal/core"
	"stencilivc/internal/distsolve"
	"stencilivc/internal/grid"
	"stencilivc/internal/parallel"
	"stencilivc/internal/resultcache"
	"stencilivc/internal/resultcache/memstore"
	"stencilivc/internal/service"
)

// TestEveryRegisteredSiteIsReachable drives each chaos-instrumented
// subsystem — the tile-parallel solver, the solve service, the result
// cache's persistence path, and the distributed sharded solver — under
// one shared injector armed with never-firing rules, then asserts every
// site in the core registry was actually consulted. The registry (and
// the table in this package's doc and DESIGN.md §11) can therefore
// never drift into documenting dead injection points.
func TestEveryRegisteredSiteIsReachable(t *testing.T) {
	sites := core.FaultSites()
	if len(sites) < 12 {
		t.Fatalf("registry lists %d sites, expected at least the 12 documented ones", len(sites))
	}
	inj := chaos.New(1)
	for _, rs := range sites {
		if rs.Doc == "" {
			t.Errorf("site %s registered without documentation", rs.Site)
		}
		if !core.KnownFaultSite(rs.Site) {
			t.Errorf("KnownFaultSite(%s) = false for a registered site", rs.Site)
		}
		// A probability-zero rule never fires but counts every visit.
		inj = inj.WithProb(rs.Site, 0)
	}

	g := grid.MustGrid2D(16, 16)
	for v := range g.W {
		g.W[v] = int64(v%5) + 1
	}

	// pgreedy/*: a blind tile-parallel solve visits the worker sites per
	// tile, the halo site per placement, and — because blind speculation
	// on small tiles guarantees conflicts — the repair site per loser.
	if _, err := parallel.Greedy(g, parallel.Config{TileSize: 4, SpeculateBlind: true},
		&core.SolveOptions{Parallelism: 2, Injector: inj}); err != nil {
		t.Fatalf("parallel drive: %v", err)
	}

	// distsolve/*: a sharded solve visits the three transport sites per
	// message and the crash site once per node per round.
	if _, err := distsolve.Solve(g, distsolve.Config{Shards: 4},
		&core.SolveOptions{Injector: inj}); err != nil {
		t.Fatalf("distsolve drive: %v", err)
	}

	// resultcache/get-corrupt: store an entry through one cache, then
	// look it up through a second cache sharing the persistence tier —
	// the store-hit path is where the corruption site sits.
	ms := memstore.New()
	warm := resultcache.New(resultcache.Config{Store: ms})
	col, err := core.GreedyColorOpts(g, g.LineOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, key, _ := warm.Lookup("GLL", g, "")
	warm.Store(key, "GLL", "", g, col, time.Millisecond)
	cold := resultcache.New(resultcache.Config{Store: ms, Injector: inj})
	if _, _, ok := cold.Lookup("GLL", g, ""); !ok {
		t.Fatal("persisted entry did not round-trip through the second cache")
	}

	// service/*: one solve request passes admission (enqueue-drop), the
	// batcher (batch-stall), and a worker (worker-panic).
	srv, err := service.New(service.Config{Workers: 1, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()
	weights := make([]int64, 16)
	for i := range weights {
		weights[i] = int64(i%3) + 1
	}
	body, err := json.Marshal(service.Request{Alg: "GLL", X: 4, Y: 4, Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service drive: status %d, want 200", resp.StatusCode)
	}

	for _, rs := range sites {
		if inj.Visits(rs.Site) == 0 {
			t.Errorf("registered site %s was never consulted by any drive", rs.Site)
		}
	}
}
