// Package chaos is the deterministic fault-injection harness for the
// solve pipeline. It implements core.Injector with a seeded, named-site
// rule table: tests (and the fuzz target) build an Injector that fires
// specific faults — induced panics, forced halo misreads, dropped
// repair updates, worker stalls — at exact or pseudo-random visits of
// the sites the solvers consult via core.SolveOptions.Fault.
//
// Everything is reproducible from the construction parameters: the same
// rules and seed produce the same fire schedule on a sequential solve,
// and per-site atomic visit counters keep concurrent solves
// well-defined (each site visit gets exactly one verdict, though the
// assignment of visits to goroutines follows the scheduler).
//
// The package deliberately lives behind the nil-cost core.Injector hook:
// production binaries never import it, and a nil injector costs one
// pointer comparison per site. See DESIGN.md §11 for the failure model
// the harness exercises.
package chaos
