// Package chaos is the deterministic fault-injection harness for the
// solve pipeline. It implements core.Injector with a seeded, named-site
// rule table: tests (and the fuzz target) build an Injector that fires
// specific faults — induced panics, forced halo misreads, dropped
// repair updates, worker stalls, lost or duplicated halo-exchange
// messages, shard crashes — at exact or pseudo-random visits of the
// sites the solvers consult via core.SolveOptions.Fault.
//
// Everything is reproducible from the construction parameters: the same
// rules and seed produce the same fire schedule on a sequential solve,
// and per-site atomic visit counters keep concurrent solves
// well-defined (each site visit gets exactly one verdict, though the
// assignment of visits to goroutines follows the scheduler).
//
// # Site registry
//
// Every instrumented site is registered with core.RegisterFaultSite at
// package init, so core.FaultSites() is the authoritative machine-
// readable list and TestEveryRegisteredSiteIsReachable keeps this table
// honest. The sites, by subsystem:
//
//	pgreedy/worker-stall     tile-parallel solver; per tile: worker sleeps inside Inject
//	pgreedy/worker-panic     tile-parallel solver; per tile task and repair batch: induced panic, contained to a sequential fallback
//	pgreedy/halo-read        tile-parallel solver; per speculative placement: placement goes blind to cross-tile neighbors
//	pgreedy/repair-drop      tile-parallel solver; per repaired loser: the recolor is dropped for the next fixpoint round to catch
//	service/enqueue-drop     solve service; per admission: the job is shed between admission and the batcher
//	service/batch-stall      solve service; per batch: the batcher stalls inside Inject
//	service/worker-panic     solve service; per job run: induced panic, contained to a typed job error
//	resultcache/get-corrupt  result cache; per persistence-tier read: the payload is treated as checksum-failed
//	distsolve/msg-drop       distributed solver transport; per send: the message is silently lost
//	distsolve/msg-dup        distributed solver transport; per send: the message is delivered twice
//	distsolve/msg-delay      distributed solver transport; per send: delivery is deferred and reordered
//	distsolve/shard-crash    distributed solver coordinator; per live original node per round: the node dies and its shard is re-homed
//
// The package deliberately lives behind the nil-cost core.Injector hook:
// production binaries never import it, and a nil injector costs one
// pointer comparison per site. See DESIGN.md §11 for the failure model
// the harness exercises and DESIGN.md §16 for the distributed solver's
// recovery ladder.
package chaos
