package chaos

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"stencilivc/internal/obsv"
)

// TestWithEvents: every fault firing emits one fault.injected record
// carrying the site and the 1-based visit number; visits that do not
// fire emit nothing.
func TestWithEvents(t *testing.T) {
	var buf bytes.Buffer
	in := New(1).EveryNth(siteA, 2, 2).WithEvents(obsv.NewJSONEventSink(&buf))
	for v := 1; v <= 8; v++ {
		in.Inject(siteA)
		in.Inject(siteB) // unconfigured site: never fires, never logs
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d event lines %q, want 2 (budget)", len(lines), buf.String())
	}
	wantVisits := []float64{2, 4}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		if obj["msg"] != "fault.injected" || obj["site"] != string(siteA) || obj["visit"] != wantVisits[i] {
			t.Errorf("event %d = %v, want fault.injected site %s visit %v",
				i, obj, siteA, wantVisits[i])
		}
	}
}

// TestInjectTraced: a traced injection attributes the firing's
// fault.injected event to the trace id and records it in an attached
// flight recorder; untraced injections stay id-free and leave the
// recorder empty.
func TestInjectTraced(t *testing.T) {
	var buf bytes.Buffer
	rec := obsv.NewFlightRecorder(64, nil)
	in := New(1).EveryNth(siteA, 1, 0).
		WithEvents(obsv.NewJSONEventSink(&buf)).WithFlight(rec)
	if !in.InjectTraced(siteA, 0xfeed) {
		t.Fatal("traced rule did not fire")
	}
	if !in.Inject(siteA) {
		t.Fatal("untraced rule did not fire")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d event lines %q, want 2", len(lines), buf.String())
	}
	var traced, plain map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &traced); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &plain); err != nil {
		t.Fatal(err)
	}
	if traced["trace_id"] != obsv.FlightID(0xfeed) {
		t.Errorf("traced firing trace_id = %v, want %s", traced["trace_id"], obsv.FlightID(0xfeed))
	}
	if _, ok := plain["trace_id"]; ok {
		t.Errorf("untraced firing carries trace_id: %v", plain)
	}
	recs := rec.Snapshot(0xfeed, "", "", 0)
	if len(recs) != 1 || recs[0].Name != "fault.injected" || recs[0].Detail != string(siteA) {
		t.Fatalf("flight records for traced firing = %+v, want one fault.injected", recs)
	}
	if all := rec.Snapshot(0, "", "", 0); len(all) != 1 {
		t.Fatalf("recorder holds %d records, want 1 (untraced firing must not record)", len(all))
	}
}

// TestWithEventsSealed: attaching a sink after injection started would
// race with lock-free Inject reads, so it panics like a post-seal rule
// edit.
func TestWithEventsSealed(t *testing.T) {
	in := New(1).OnNth(siteA, 1)
	in.Inject(siteA) // seals
	defer func() {
		if recover() == nil {
			t.Error("WithEvents after first Inject did not panic")
		}
	}()
	in.WithEvents(obsv.NewJSONEventSink(&bytes.Buffer{}))
}

// TestWithEventsNil: a nil sink is the disabled default; firing faults
// with it attached must not panic.
func TestWithEventsNil(t *testing.T) {
	in := New(1).OnNth(siteA, 1).WithEvents(nil)
	if !in.Inject(siteA) {
		t.Error("rule did not fire with a nil event sink attached")
	}
}
