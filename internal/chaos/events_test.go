package chaos

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"stencilivc/internal/obsv"
)

// TestWithEvents: every fault firing emits one fault.injected record
// carrying the site and the 1-based visit number; visits that do not
// fire emit nothing.
func TestWithEvents(t *testing.T) {
	var buf bytes.Buffer
	in := New(1).EveryNth(siteA, 2, 2).WithEvents(obsv.NewJSONEventSink(&buf))
	for v := 1; v <= 8; v++ {
		in.Inject(siteA)
		in.Inject(siteB) // unconfigured site: never fires, never logs
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d event lines %q, want 2 (budget)", len(lines), buf.String())
	}
	wantVisits := []float64{2, 4}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		if obj["msg"] != "fault.injected" || obj["site"] != string(siteA) || obj["visit"] != wantVisits[i] {
			t.Errorf("event %d = %v, want fault.injected site %s visit %v",
				i, obj, siteA, wantVisits[i])
		}
	}
}

// TestWithEventsSealed: attaching a sink after injection started would
// race with lock-free Inject reads, so it panics like a post-seal rule
// edit.
func TestWithEventsSealed(t *testing.T) {
	in := New(1).OnNth(siteA, 1)
	in.Inject(siteA) // seals
	defer func() {
		if recover() == nil {
			t.Error("WithEvents after first Inject did not panic")
		}
	}()
	in.WithEvents(obsv.NewJSONEventSink(&bytes.Buffer{}))
}

// TestWithEventsNil: a nil sink is the disabled default; firing faults
// with it attached must not panic.
func TestWithEventsNil(t *testing.T) {
	in := New(1).OnNth(siteA, 1).WithEvents(nil)
	if !in.Inject(siteA) {
		t.Error("rule did not fire with a nil event sink attached")
	}
}
