package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/obsv"
)

// Injector is a deterministic, seeded core.Injector. Rules attach to
// named fault sites; each visit of a site increments a per-site counter
// and the rule decides — as a pure function of (seed, site, visit
// number) — whether the fault fires. Identical construction therefore
// replays the identical schedule on a sequential solve; on a concurrent
// solve each visit still gets exactly one verdict (the counters are
// atomic), though the scheduler decides which goroutine draws which
// visit number.
//
// Configure rules before handing the Injector to a solver: the rule
// table is read-only during injection, so Inject needs no lock.
type Injector struct {
	seed uint64

	mu     sync.Mutex // guards rules, events, flight, and sealed during construction
	sealed bool       // set under mu; late rule edits panic
	rules  map[core.FaultSite]*rule
	events *obsv.EventSink
	flight *obsv.FlightRecorder

	// frozen is an immutable snapshot of the configuration (rules and
	// event sink), published exactly once by sealOnce on the first
	// Inject. Inject reads it lock-free; the sync.Once gives every
	// injecting goroutine a happens-before edge on the copy.
	sealOnce sync.Once
	frozen   frozenConfig
}

// frozenConfig is the immutable post-seal view of an Injector.
type frozenConfig struct {
	rules  map[core.FaultSite]*rule
	events *obsv.EventSink
	flight *obsv.FlightRecorder
}

// rule is the per-site schedule. Counter fields are atomic; the
// schedule fields are frozen once the injector seals.
type rule struct {
	nth     int64         // fire exactly on this visit (1-based); 0 = off
	every   int64         // fire on every every-th visit; 0 = off
	budget  int64         // cap on fires for the every/prob triggers; 0 = unlimited
	prob    float64       // per-visit probability via the seeded hash; 0 = off
	doPanic bool          // on fire: panic(core.InjectedPanic{Site: site})
	stall   time.Duration // on fire: sleep this long before returning

	visits atomic.Int64
	fires  atomic.Int64
}

// New returns an empty Injector: every site reports "no fault" until
// rules are attached. The seed only matters for probabilistic rules.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, rules: map[core.FaultSite]*rule{}}
}

func (in *Injector) rule(site core.FaultSite) *rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sealed {
		panic("chaos: rule added after injection started")
	}
	r := in.rules[site]
	if r == nil {
		r = &rule{}
		in.rules[site] = r
	}
	return r
}

// seal publishes the immutable configuration snapshot on first call and
// returns it. Safe for concurrent use; after it returns, rule() and
// WithEvents refuse edits.
func (in *Injector) seal() frozenConfig {
	in.sealOnce.Do(func() {
		in.mu.Lock()
		in.sealed = true
		rules := make(map[core.FaultSite]*rule, len(in.rules))
		for s, r := range in.rules {
			rules[s] = r
		}
		in.frozen = frozenConfig{rules: rules, events: in.events, flight: in.flight}
		in.mu.Unlock()
	})
	return in.frozen
}

// OnNth fires site's fault exactly once, on its nth visit (1-based).
func (in *Injector) OnNth(site core.FaultSite, nth int64) *Injector {
	in.rule(site).nth = nth
	return in
}

// EveryNth fires site's fault on every n-th visit, at most budget times
// (budget <= 0 means unlimited).
func (in *Injector) EveryNth(site core.FaultSite, n, budget int64) *Injector {
	r := in.rule(site)
	r.every, r.budget = n, budget
	return in
}

// WithProb fires site's fault on each visit with probability p, decided
// by a hash of (seed, site, visit number) — deterministic replay, no
// shared PRNG state to contend on.
func (in *Injector) WithProb(site core.FaultSite, p float64) *Injector {
	in.rule(site).prob = p
	return in
}

// Panicking makes site's fault panic with core.InjectedPanic instead of
// merely returning true, exercising the pipeline's recover paths.
func (in *Injector) Panicking(site core.FaultSite) *Injector {
	in.rule(site).doPanic = true
	return in
}

// Stalling makes site's fault sleep for d before returning, simulating
// a slow worker without breaking correctness.
func (in *Injector) Stalling(site core.FaultSite, d time.Duration) *Injector {
	in.rule(site).stall = d
	return in
}

// WithEvents makes every fault firing emit a fault.injected record on
// sink (site plus visit number, and the trace id when the faulted
// operation carried one), so an event log shows injected faults
// interleaved with the solve events they provoked. Like the rule
// builders it must be called before the injector is handed to a solver;
// a call after injection started panics.
func (in *Injector) WithEvents(sink *obsv.EventSink) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sealed {
		panic("chaos: event sink attached after injection started")
	}
	in.events = sink
	return in
}

// WithFlight makes every fault firing additionally record a
// fault.injected event in the flight recorder under the faulted
// operation's trace id, so a storm's disruptions appear inline in the
// /debug/flight dump of the request they hit. Untraced firings (trace
// id 0) are not recorded — the flight recorder only retains
// per-request records. Must be called before injection starts.
func (in *Injector) WithFlight(rec *obsv.FlightRecorder) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sealed {
		panic("chaos: flight recorder attached after injection started")
	}
	in.flight = rec
	return in
}

// Inject implements core.Injector. It is safe for concurrent use.
func (in *Injector) Inject(site core.FaultSite) bool {
	return in.InjectTraced(site, 0)
}

// InjectTraced implements core.TracedInjector: Inject with the visiting
// operation's flight-recorder trace id, attributed on the fault.injected
// event and — when WithFlight configured a recorder — recorded into the
// request's flight trace. A zero trace behaves exactly like Inject.
func (in *Injector) InjectTraced(site core.FaultSite, trace uint64) bool {
	cfg := in.seal() // frozen snapshot: lock-free after first call
	r := cfg.rules[site]
	if r == nil {
		return false
	}
	v := r.visits.Add(1)
	fire := false
	switch {
	case r.nth > 0 && v == r.nth:
		fire = true
	case r.every > 0 && v%r.every == 0:
		fire = true
	case r.prob > 0 && hashToUnit(in.seed, site, v) < r.prob:
		fire = true
	}
	if !fire {
		return false
	}
	if r.budget > 0 {
		if n := r.fires.Add(1); n > r.budget {
			r.fires.Add(-1)
			return false
		}
	} else {
		r.fires.Add(1)
	}
	cfg.events.FaultInjected(string(site), v, trace)
	cfg.flight.RecordEvent(trace, "fault.injected", string(site), v)
	if r.stall > 0 {
		time.Sleep(r.stall)
	}
	if r.doPanic {
		panic(core.InjectedPanic{Site: site})
	}
	return true
}

// lookup returns site's rule under mu (nil if unconfigured). The rule's
// counter fields are atomic, so callers may read them without the lock.
func (in *Injector) lookup(site core.FaultSite) *rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rules[site]
}

// Visits returns how many times site has been consulted.
func (in *Injector) Visits(site core.FaultSite) int64 {
	if r := in.lookup(site); r != nil {
		return r.visits.Load()
	}
	return 0
}

// Fires returns how many times site's fault actually fired.
func (in *Injector) Fires(site core.FaultSite) int64 {
	if r := in.lookup(site); r != nil {
		return r.fires.Load()
	}
	return 0
}

// TotalFires sums fires across every configured site.
func (in *Injector) TotalFires() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, r := range in.rules {
		n += r.fires.Load()
	}
	return n
}

// String renders the per-site visit/fire counters (sites sorted) for
// test failure messages.
func (in *Injector) String() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	sites := make([]string, 0, len(in.rules))
	for s := range in.rules {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var b strings.Builder
	b.WriteString("chaos.Injector{")
	for i, s := range sites {
		if i > 0 {
			b.WriteString(", ")
		}
		r := in.rules[core.FaultSite(s)]
		fmt.Fprintf(&b, "%s: %d/%d", s, r.fires.Load(), r.visits.Load())
	}
	b.WriteString("}")
	return b.String()
}

// hashToUnit maps (seed, site, visit) to [0, 1) with a splitmix64-style
// finalizer — stateless, so concurrent visits never contend and replay
// is exact.
func hashToUnit(seed uint64, site core.FaultSite, visit int64) float64 {
	x := seed ^ uint64(visit)*0x9e3779b97f4a7c15
	for i := 0; i < len(site); i++ {
		x = (x ^ uint64(site[i])) * 0xbf58476d1ce4e5b9
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
