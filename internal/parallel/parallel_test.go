package parallel

import (
	"context"
	"math/rand"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// rand2D returns an x×y grid with weights in [0, maxW] (zeros included,
// exercising the empty-interval paths).
func rand2D(t testing.TB, x, y int, maxW int64, seed int64) *grid.Grid2D {
	t.Helper()
	g := grid.MustGrid2D(x, y)
	rng := rand.New(rand.NewSource(seed))
	for v := range g.W {
		g.W[v] = rng.Int63n(maxW + 1)
	}
	return g
}

func rand3D(t testing.TB, x, y, z int, maxW int64, seed int64) *grid.Grid3D {
	t.Helper()
	g := grid.MustGrid3D(x, y, z)
	rng := rand.New(rand.NewSource(seed))
	for v := range g.W {
		g.W[v] = rng.Int63n(maxW + 1)
	}
	return g
}

// seqGreedy is the sequential reference: plain lowest-fit greedy in
// line-by-line order (GLL).
func seqGreedy(t testing.TB, s grid.Stencil) core.Coloring {
	t.Helper()
	c, err := core.GreedyColorOpts(s, s.LineOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGreedyValid sweeps grid shapes, tile sizes, parallelism, orders,
// and both speculation modes; every run must produce a coloring the
// validator accepts.
func TestGreedyValid(t *testing.T) {
	stencils := []grid.Stencil{
		rand2D(t, 1, 1, 5, 1),
		rand2D(t, 1, 17, 5, 2), // degenerate chain
		rand2D(t, 17, 1, 5, 3),
		rand2D(t, 13, 9, 7, 4),
		rand2D(t, 33, 29, 9, 5),
		rand3D(t, 1, 1, 9, 5, 6), // doubly-degenerate
		rand3D(t, 7, 5, 3, 6, 7),
		rand3D(t, 9, 9, 9, 8, 8),
	}
	for _, s := range stencils {
		for _, tile := range []int{1, 3, 8, 0} { // 0 = default size
			for _, par := range []int{1, 4} {
				for _, order := range []Order{OrderLine, OrderWeightDesc} {
					for _, blind := range []bool{false, true} {
						cfg := Config{TileSize: tile, Order: order, SpeculateBlind: blind}
						opts := &core.SolveOptions{Parallelism: par}
						c, err := Greedy(s, cfg, opts)
						if err != nil {
							t.Fatalf("%dD tile=%d par=%d order=%d blind=%v: %v",
								s.Dims(), tile, par, order, blind, err)
						}
						if err := c.Validate(s); err != nil {
							t.Fatalf("%dD tile=%d par=%d order=%d blind=%v: %v",
								s.Dims(), tile, par, order, blind, err)
						}
					}
				}
			}
		}
	}
}

// maxColorSlack is the recorded quality bound of the speculative solver:
// across the equivalence suites, the tile-parallel maxcolor stays within
// this factor of the sequential line-by-line greedy (it is usually equal
// or better; conflicts are confined to tile halos). The theoretical
// worst case for any greedy family is far larger — this constant
// documents the observed envelope and guards regressions.
const maxColorSlack = 1.5

// TestMaxColorNearSequential compares the tile-parallel maxcolor against
// sequential greedy across random suites, in the worst-case blind mode
// (which maximizes conflicts and is deterministic on every runner).
func TestMaxColorNearSequential(t *testing.T) {
	type inst struct {
		s    grid.Stencil
		name string
	}
	var suite []inst
	for i, dims := range [][2]int{{16, 16}, {31, 17}, {64, 5}, {40, 40}} {
		g := rand2D(t, dims[0], dims[1], 20, int64(100+i))
		suite = append(suite, inst{g, g.String()})
	}
	for i, dims := range [][3]int{{8, 8, 8}, {16, 5, 7}, {12, 12, 3}} {
		g := rand3D(t, dims[0], dims[1], dims[2], 20, int64(200+i))
		suite = append(suite, inst{g, g.String()})
	}
	for _, in := range suite {
		seq := seqGreedy(t, in.s).MaxColor(in.s)
		for _, par := range []int{1, 4} {
			c, err := Greedy(in.s, Config{TileSize: 4, SpeculateBlind: true},
				&core.SolveOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(in.s); err != nil {
				t.Fatal(err)
			}
			got := c.MaxColor(in.s)
			if float64(got) > maxColorSlack*float64(seq) {
				t.Errorf("%s par=%d: parallel maxcolor %d > %.2f × sequential %d",
					in.name, par, got, maxColorSlack, seq)
			}
			t.Logf("%s par=%d: parallel=%d sequential=%d (ratio %.3f)",
				in.name, par, got, seq, float64(got)/float64(seq))
		}
	}
}

// TestDeterministicBlind: with SpeculateBlind the solve is a pure
// function of the instance — identical colorings at any parallelism.
func TestDeterministicBlind(t *testing.T) {
	g := rand2D(t, 37, 23, 11, 42)
	cfg := Config{TileSize: 5, SpeculateBlind: true}
	ref, err := Greedy(g, cfg, &core.SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		for trial := 0; trial < 3; trial++ {
			c, err := Greedy(g, cfg, &core.SolveOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for v := range c.Start {
				if c.Start[v] != ref.Start[v] {
					t.Fatalf("par=%d trial=%d: vertex %d start %d != reference %d",
						par, trial, v, c.Start[v], ref.Start[v])
				}
			}
		}
	}
}

// TestSequentialFallback: MaxRounds=1 forces the guaranteed sequential
// repair pass; the result must still validate.
func TestSequentialFallback(t *testing.T) {
	g := rand2D(t, 29, 31, 9, 9)
	c, err := Greedy(g, Config{TileSize: 2, MaxRounds: 1, SpeculateBlind: true},
		&core.SolveOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestSingleTile: a tile covering the whole grid reduces to plain
// sequential greedy in line order — byte-identical colorings.
func TestSingleTile(t *testing.T) {
	g := rand2D(t, 12, 11, 6, 13)
	c, err := Greedy(g, Config{TileSize: 64}, &core.SolveOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref := seqGreedy(t, g)
	for v := range c.Start {
		if c.Start[v] != ref.Start[v] {
			t.Fatalf("vertex %d: start %d != sequential %d", v, c.Start[v], ref.Start[v])
		}
	}
}

// TestCancellation: a canceled context aborts the solve with the
// context's error.
func TestCancellation(t *testing.T) {
	g := rand2D(t, 64, 64, 9, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Greedy(g, Config{TileSize: 8}, &core.SolveOptions{Ctx: ctx, Parallelism: 4})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStats: the solver reports placements for every vertex (at least)
// and its two phase timers.
func TestStats(t *testing.T) {
	g := rand2D(t, 20, 20, 9, 21)
	stats := &core.Stats{}
	_, err := Greedy(g, Config{TileSize: 4, SpeculateBlind: true},
		&core.SolveOptions{Parallelism: 2, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Placements(); got < int64(g.Len()) {
		t.Errorf("placements = %d, want >= %d", got, g.Len())
	}
	want := map[string]bool{"pgreedy/speculate": false, "pgreedy/repair": false}
	for _, p := range stats.Phases() {
		if _, ok := want[p.Name]; ok {
			want[p.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("missing phase %s", name)
		}
	}
}

// TestZeroWeights: an all-zero grid colors at maxcolor 0.
func TestZeroWeights(t *testing.T) {
	g := grid.MustGrid2D(10, 10)
	c, err := Greedy(g, Config{TileSize: 3}, &core.SolveOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if mc := c.MaxColor(g); mc != 0 {
		t.Errorf("maxcolor = %d, want 0", mc)
	}
}
