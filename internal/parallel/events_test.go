package parallel

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/obsv"
)

// TestSolveEvents: an instrumented parallel solve logs one
// pgreedy.speculate event with the tile/worker geometry, then one
// pgreedy.repair event per fixpoint round. Blind speculation forces
// halo conflicts, so at least one repair round is guaranteed.
func TestSolveEvents(t *testing.T) {
	g := rand2D(t, 48, 48, 9, 23)
	var buf bytes.Buffer
	ev := obsv.NewJSONEventSink(&buf)
	c, err := Greedy(g, Config{TileSize: 6, SpeculateBlind: true},
		&core.SolveOptions{Parallelism: 4, Events: ev})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}

	type event struct {
		Msg        string  `json:"msg"`
		Tiles      int     `json:"tiles"`
		Workers    int     `json:"workers"`
		Blind      bool    `json:"blind"`
		Round      int     `json:"round"`
		Conflicts  int64   `json:"conflicts"`
		Sequential bool    `json:"sequential"`
	}
	var events []event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		events = append(events, e)
	}
	if len(events) == 0 || events[0].Msg != "pgreedy.speculate" {
		t.Fatalf("first event = %+v, want pgreedy.speculate", events)
	}
	wantTiles := ((48 + 5) / 6) * ((48 + 5) / 6)
	if sp := events[0]; sp.Tiles != wantTiles || sp.Workers != 4 || !sp.Blind {
		t.Errorf("speculate event = %+v, want tiles %d workers 4 blind", sp, wantTiles)
	}
	repairs := 0
	for _, e := range events[1:] {
		if e.Msg != "pgreedy.repair" && e.Msg != "solve.fallback" {
			t.Errorf("unexpected event %+v after speculate", e)
			continue
		}
		if e.Msg == "pgreedy.repair" {
			if e.Round != repairs {
				t.Errorf("repair event round = %d, want %d (rounds are 0-based and ordered)",
					e.Round, repairs)
			}
			repairs++
			if e.Conflicts <= 0 {
				t.Errorf("repair round %d logged %d conflicts, want > 0", e.Round, e.Conflicts)
			}
		}
	}
	if repairs == 0 {
		t.Error("blind speculation produced no pgreedy.repair events")
	}
}

// TestSolveEventsQuiet: with no event sink attached the solve runs
// exactly as before — the nil-sink path is exercised under -race by
// every other test in this package; here we pin that an events-free
// solve emits nothing and matches the instrumented result.
func TestSolveEventsQuiet(t *testing.T) {
	g := rand2D(t, 32, 32, 9, 31)
	base, err := Greedy(g, Config{TileSize: 5, SpeculateBlind: true},
		&core.SolveOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logged, err := Greedy(g, Config{TileSize: 5, SpeculateBlind: true},
		&core.SolveOptions{Parallelism: 4, Events: obsv.NewJSONEventSink(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	for v := range base.Start {
		if base.Start[v] != logged.Start[v] {
			t.Fatalf("event logging changed the coloring at vertex %d: %d != %d",
				v, base.Start[v], logged.Start[v])
		}
	}
	if buf.Len() == 0 {
		t.Error("instrumented solve emitted no events")
	}
}
