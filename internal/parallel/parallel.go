package parallel

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
	"stencilivc/internal/order"
)

// The fault-injection sites of the tile-parallel solver, consulted via
// core.SolveOptions.Injector (nil in production, so every site is a
// single cached-pointer nil check). See internal/chaos for schedules.
const (
	// SiteWorkerStall fires once per tile at the start of speculative
	// coloring; a chaos injector sleeps inside Inject to model a stalled
	// worker, maximally skewing cross-tile halo read timing.
	SiteWorkerStall = core.FaultSite("pgreedy/worker-stall")
	// SiteWorkerPanic fires once per tile task (speculation) and once
	// per repair group (parallel recolor); a chaos injector panics with
	// core.InjectedPanic to model a crashing worker. The solver recovers
	// the panic into a typed core.SolveError and falls back to the
	// guaranteed sequential path.
	SiteWorkerPanic = core.FaultSite("pgreedy/worker-panic")
	// SiteHaloRead fires once per speculative placement; when it fires
	// the placement ignores every cross-tile neighbor — a forced halo
	// misread. The conflicts it plants must be found and repaired by the
	// detect/recolor fixpoint.
	SiteHaloRead = core.FaultSite("pgreedy/halo-read")
	// SiteRepairDrop fires once per loser recolored by a parallel repair
	// round; when it fires the update is dropped and the loser stays
	// uncolored until the post-fixpoint completion sweep places it — the
	// sweep, not the round, is the correctness backstop.
	SiteRepairDrop = core.FaultSite("pgreedy/repair-drop")
)

func init() {
	core.RegisterFaultSite(SiteWorkerStall,
		"tile-parallel speculation, once per tile: a Stalling rule sleeps the worker, skewing halo read timing")
	core.RegisterFaultSite(SiteWorkerPanic,
		"tile-parallel speculation and repair groups: a Panicking rule crashes the worker; recovered into the sequential fallback")
	core.RegisterFaultSite(SiteHaloRead,
		"per speculative placement: firing blinds the placement to cross-tile neighbors (forced halo misread)")
	core.RegisterFaultSite(SiteRepairDrop,
		"per loser recolored by a parallel repair round: firing drops the update; the completion sweep re-places it")
}

// Order selects the tile-local visit order of the speculative phase.
type Order int

// The tile-local orders mirroring the paper's greedy orderings.
const (
	// OrderLine visits each tile's cells line by line (tile-local GLL).
	OrderLine Order = iota
	// OrderWeightDesc visits each tile's cells by non-increasing weight,
	// ties by vertex id (tile-local GLF).
	OrderWeightDesc
)

// Default tile edge lengths: a 64×64 2D tile (4096 cells) and a 16³ 3D
// brick (4096 cells) keep a tile's weights, starts, and halo inside the
// L1/L2 working set while leaving thousands of tiles of parallel slack
// on the benchmark grids.
const (
	DefaultTileSize2D = 64
	DefaultTileSize3D = 16
)

// defaultMaxRounds bounds the parallel repair rounds before the solver
// falls back to the guaranteed single-pass sequential repair. The
// strict-shrink argument makes the loop terminate on its own; the cap
// only limits worst-case latency on adversarial schedules.
const defaultMaxRounds = 16

// Config tunes the tile-parallel solver. The zero value is a valid
// default configuration.
type Config struct {
	// TileSize is the tile edge length in cells; <= 0 picks
	// DefaultTileSize2D / DefaultTileSize3D by dimensionality.
	TileSize int
	// Order is the tile-local visit order.
	Order Order
	// MaxRounds caps the parallel repair rounds before the sequential
	// fallback; <= 0 picks defaultMaxRounds.
	MaxRounds int
	// SpeculateBlind makes the speculative phase ignore cross-tile
	// neighbors entirely instead of reading their current state. Every
	// halo conflict is then discovered by the repair loop, which makes
	// the whole solve deterministic regardless of worker timing — and
	// maximally stresses the repair machinery. Tests and the fuzz target
	// rely on it; production solves are faster with optimistic reads.
	SpeculateBlind bool
}

// Greedy colors s with the tile-parallel speculative greedy solver,
// running up to opts.Parallelism tile workers. The returned coloring is
// always complete and valid: the solver only returns once the
// conflict-detection sweep reaches a fixpoint (zero cross-tile
// conflicts) and a completion sweep has re-placed any vertex a degraded
// repair round left uncolored; intra-tile edges are valid by
// construction.
//
// With Parallelism <= 1 the speculative phase degenerates to a
// deterministic sequential tile sweep; with more workers the final
// coloring remains valid on every run but its maxcolor may vary slightly
// with scheduling, because optimistic halo reads depend on tile timing.
//
// Greedy is panic-contained: a worker panic (induced by a fault
// injector or a genuine bug) is recovered into a typed *core.SolveError
// and the solve falls back to the guaranteed sequential greedy over the
// whole instance — the uninstrumented bedrock of the degradation
// ladder — so a crashing worker degrades latency, never correctness.
// Cancellation is never masked by the fallback: a canceled context
// propagates as the context's error.
func Greedy(s grid.Stencil, cfg Config, opts *core.SolveOptions) (core.Coloring, error) {
	fg, ok := s.(core.FixedGraph)
	if !ok {
		// Future stencil types without a fixed-degree kernel still solve
		// correctly, just sequentially.
		return core.GreedyColorOpts(s, s.LineOrder(), opts)
	}
	c, err := speculative(fg, s, cfg, opts)
	if err == nil {
		return c, nil
	}
	var se *core.SolveError
	if !errors.As(err, &se) || !se.Panicked {
		// Ordinary errors (cancellation, invalid tiling) propagate; only
		// recovered panics degrade to the sequential bedrock.
		return core.Coloring{}, err
	}
	if m := opts.Meters(); m != nil {
		m.Fallbacks.Add(1)
	}
	opts.EventLog().Fallback("pgreedy", "worker panic: "+se.Error())
	defer core.StartPhase(opts, "pgreedy/seq-fallback")()
	return core.GreedyColorOpts(s, fallbackOrder(s, cfg), opts)
}

// fallbackOrder is the sequential visit order matching the tile-local
// order of the degraded parallel solve, so the fallback result stays in
// the same algorithm family (PGLL falls back to GLL's line order, PGLF
// to GLF's weight order).
func fallbackOrder(s grid.Stencil, cfg Config) []int {
	if cfg.Order == OrderWeightDesc {
		return order.ByWeightDesc(s)
	}
	return s.LineOrder()
}

// speculative runs the speculate/repair/complete pipeline, containing
// worker panics as typed errors for Greedy to act on.
func speculative(fg core.FixedGraph, s grid.Stencil, cfg Config, opts *core.SolveOptions) (core.Coloring, error) {
	size := cfg.TileSize
	if size <= 0 {
		if s.Dims() == 3 {
			size = DefaultTileSize3D
		} else {
			size = DefaultTileSize2D
		}
	}
	tl, err := s.Tiling(size)
	if err != nil {
		return core.Coloring{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	par := min(opts.Par(), len(tl.Tiles))
	bufs := acquireBufs(len(tl.Tiles), s.Len(), max(par, 1))
	defer releaseBufs(bufs)
	r := &run{
		g: fg, s: s, tl: tl, cfg: cfg, opts: opts,
		inj:  opts.Faults(),
		ev:   opts.EventLog(),
		c:    core.NewColoring(s.Len()),
		par:  par,
		bufs: bufs,
		mark: bufs.mark,
	}
	// The uniform-weight verdict, computed once per solve: it routes
	// every placement of this run onto the packed free-map kernel.
	if w, ok := core.UniformWeight(fg); ok {
		r.uniW = w
	}

	r.ev.Speculation(len(tl.Tiles), r.par, cfg.SpeculateBlind)
	if err := r.phase("pgreedy/speculate", r.speculate); err != nil {
		return core.Coloring{}, err
	}
	if err := r.phase("pgreedy/repair", func(sp *obsv.Span) error {
		return r.fixpoint(sp, maxRounds)
	}); err != nil {
		return core.Coloring{}, err
	}
	return r.c, nil
}

// phase runs fn under a named observability phase: a trace span (passed
// to fn so it can parent worker spans) plus a stats phase record.
func (r *run) phase(name string, fn func(sp *obsv.Span) error) error {
	sp := r.opts.StartSpan(name)
	defer core.PhaseTimer(r.opts.Sink(), name)()
	defer sp.End()
	return fn(sp)
}

// run holds the shared state of one solve.
type run struct {
	g    core.FixedGraph
	s    grid.Stencil
	tl   *grid.Tiling
	cfg  Config
	opts *core.SolveOptions
	// inj caches opts.Faults() so the per-placement injection checks are
	// a single pointer compare on the production (nil) path.
	inj core.Injector
	// ev caches opts.EventLog(); events fire at phase/round granularity,
	// never per placement.
	ev  *obsv.EventSink
	c   core.Coloring
	par int
	// uniW is the uniform-weight verdict for this solve (0 when weights
	// are mixed): > 0 routes placements onto core.LowestFitUniform.
	uniW int64
	// bufs holds the arena-pooled per-solve buffers; released by
	// speculative when the solve returns.
	bufs *solveBufs
	// seqRepair records that the guaranteed sequential repair pass
	// engaged, so the fallback counter is bumped once per solve.
	seqRepair bool

	// boundary caches each tile's halo cells (built lazily by fixpoint).
	boundary [][]int
	// mark stamps each vertex with the repair round in which it was a
	// conflict loser; round is the current stamp. Written only by the
	// coordinator between rounds, read-only inside a round, so parallel
	// repair placements can deterministically ignore cross-tile peers of
	// the same round (skipMarked).
	mark  []int32
	round int32

	// workerSeq hands each worker scratch a distinct counter shard.
	workerSeq atomic.Int64
}

// scratch is the per-worker state: the placement kernel with its
// fixed-size neighbor and occupancy arrays (kept in one heap object per
// worker so a placement allocates nothing) plus reusable buffers,
// counters, and the worker's observability identity (trace lane,
// counter shard).
type scratch struct {
	pl    Placer
	verts []int
	// steals counts tile-range steals this worker performed; flushed
	// into the Steals metric alongside the placement counters.
	steals int64
	// m is the solve metrics bundle (nil when disabled); per-placement
	// histogram observations go straight in, counters flush in bulk.
	m *obsv.SolveMetrics
	// shard is the worker's counter shard, so concurrent flushes land on
	// distinct cache lines.
	shard int
	// lane is the worker's trace lane (0 when tracing is disabled).
	lane int
}

// newScratch acquires a worker scratch from the arena, wiring the
// run's metrics bundle, a fresh counter shard, and — when tracing — a
// fresh trace lane. Counterpart of release.
func (r *run) newScratch() *scratch {
	w := scratchPool.Get().(*scratch)
	w.pl.Reset(r.g, r.uniW)
	w.m = r.opts.Meters()
	w.shard = int(r.workerSeq.Add(1))
	if tr := r.opts.Tracer(); tr != nil {
		w.lane = tr.Lane()
		tr.LabelLane(w.lane, fmt.Sprintf("tile-worker-%d", w.shard))
	} else {
		w.lane = 0
	}
	return w
}

// release flushes a worker scratch's counters and returns it to the
// arena; the grown verts buffer stays warm for the next worker.
func (r *run) release(w *scratch) {
	r.flush(w)
	w.m = nil
	scratchPool.Put(w)
}

// Gather modes of the placement kernel: which neighbors a placement is
// allowed to observe.
const (
	// readAll observes every neighbor's current (atomic) state: the
	// optimistic speculative phase and the sequential repair pass.
	readAll = iota
	// blindCross ignores cross-tile neighbors entirely
	// (Config.SpeculateBlind's speculative phase).
	blindCross
	// skipMarked ignores cross-tile neighbors that are losers of the
	// current repair round (r.mark[u] == r.round). Same-tile losers are
	// still observed — they are recolored sequentially by the same
	// worker — so a parallel repair round can never create an intra-tile
	// conflict, and its outcome depends only on the conflict set, never
	// on worker timing.
	skipMarked
)

// place computes the lowest-fit start of v against the shared state,
// reading neighbor starts atomically and treating Unset as free.
// ownTile is v's tile id (used by the blindCross/skipMarked modes).
func (r *run) place(w *scratch, v, ownTile, mode int) int64 {
	g, start := r.g, r.c.Start
	pl := &w.pl
	for _, u := range pl.Begin(v) {
		switch mode {
		case blindCross:
			if r.tl.TileOf(u) != ownTile {
				continue
			}
		case skipMarked:
			if r.mark[u] == r.round && r.tl.TileOf(u) != ownTile {
				continue
			}
		}
		pl.Observe(atomic.LoadInt64(&start[u]), g.Weight(u))
	}
	if w.m != nil {
		w.m.OccLen.ObserveInt(int64(pl.Observed()))
	}
	return pl.Commit(g.Weight(v))
}

// forEach runs fn(worker-scratch, i) for i in [0, n) on r.par
// goroutines under the work-stealing tile scheduler (steal.go): worker
// k starts on the contiguous range [k·n/par, (k+1)·n/par) — consecutive
// indices follow the space-filling tile order, so a worker's tiles
// share halo rows — and a worker that drains its range steals half of
// a victim's remainder instead of idling. The first error
// (cancellation, recovered worker panic) stops all workers promptly;
// scratch counters (including steal counts) are flushed into the stats
// sink on return.
//
// Worker panics are contained here: each call runs under a recover that
// converts the panic into a *core.SolveError (keeping the injection
// site when the panic was induced), so one crashing tile worker
// surfaces as an error on this solve instead of killing the process.
func (r *run) forEach(n int, fn func(w *scratch, i int) error) error {
	par := min(r.par, n)
	if par <= 1 {
		w := r.newScratch()
		defer r.release(w)
		for i := 0; i < n; i++ {
			if err := r.contain(w, i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	qs := r.bufs.queues[:par]
	chunk, rem := n/par, n%par
	lo := 0
	for k := 0; k < par; k++ {
		hi := lo + chunk
		if k < rem {
			hi++
		}
		qs[k].reset(lo, hi)
		lo = hi
	}
	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	for k := 0; k < par; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			w := r.newScratch()
			defer r.release(w)
			for !stop.Load() {
				i, ok := qs[k].pop()
				if !ok {
					if !r.steal(qs, k, w) {
						return // every deque empty: done
					}
					continue
				}
				if err := r.contain(w, i, fn); err != nil {
					errOnce.Do(func() { first = err })
					stop.Store(true)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	return first
}

// contain invokes fn(w, i), recovering a panic into a typed
// *core.SolveError and counting it in the panic-recovery metric.
func (r *run) contain(w *scratch, i int, fn func(w *scratch, i int) error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = core.PanicToError("", rec)
			if w.m != nil {
				w.m.PanicsRecovered.Add(1)
			}
		}
	}()
	return fn(w, i)
}

// flush moves a worker's local counters into the shared stats sink and
// metrics bundle (on the worker's own shard, so concurrent flushes do
// not contend).
func (r *run) flush(w *scratch) {
	if w.m != nil {
		w.m.Vertices.AddShard(w.shard, w.pl.Placements)
		w.m.Probes.AddShard(w.shard, w.pl.Probes)
		w.m.Steals.AddShard(w.shard, w.steals)
	}
	if sink := r.opts.Sink(); sink != nil {
		sink.AddPlacements(w.pl.Placements)
		sink.AddProbes(w.pl.Probes)
	}
	w.pl.Placements, w.pl.Probes, w.steals = 0, 0, 0
}

// tileOrder fills w.verts with tile t's cells in the configured
// tile-local visit order.
func (r *run) tileOrder(w *scratch, t grid.Tile) []int {
	w.verts = t.AppendVertices(w.verts[:0])
	if r.cfg.Order == OrderWeightDesc {
		// slices.SortFunc, not sort.Slice: the generic sort moves
		// elements directly instead of through a reflect-based swapper,
		// allocates nothing, and inlines the comparator. Pinned by
		// TestTileOrderNoAllocs.
		g := r.g
		slices.SortFunc(w.verts, func(a, b int) int {
			if wa, wb := g.Weight(a), g.Weight(b); wa != wb {
				return cmp.Compare(wb, wa) // heavier first
			}
			return cmp.Compare(a, b) // ties by vertex id
		})
	}
	return w.verts
}

// speculate is the optimistic phase: every tile is colored concurrently
// with the sequential greedy, halo neighbors read at whatever state they
// happen to be in. When tracing, each tile's coloring is a span on its
// worker's lane, parented under sp.
func (r *run) speculate(sp *obsv.Span) error {
	start := r.c.Start
	return r.forEach(len(r.tl.Tiles), func(w *scratch, i int) error {
		if err := r.opts.Err(); err != nil {
			return err
		}
		tile := r.tl.Tiles[i]
		if r.inj != nil {
			// Worker-level faults: a stall (the injector sleeps inside
			// Inject) or an induced panic (contained by forEach).
			r.inj.Inject(SiteWorkerStall)
			r.inj.Inject(SiteWorkerPanic)
		}
		var tsp *obsv.Span
		if sp != nil {
			tsp = sp.ChildLane(w.lane, fmt.Sprintf("tile:%d", tile.ID))
		}
		mode := readAll
		if r.cfg.SpeculateBlind {
			mode = blindCross
		}
		for k, v := range r.tileOrder(w, tile) {
			if k%core.CtxCheckInterval == core.CtxCheckInterval-1 {
				if err := r.opts.Err(); err != nil {
					tsp.End()
					return err
				}
			}
			m := mode
			if r.inj != nil && r.inj.Inject(SiteHaloRead) {
				// Forced halo misread: this placement is blind to every
				// cross-tile neighbor; the fixpoint must repair whatever
				// conflicts that plants.
				m = blindCross
			}
			atomic.StoreInt64(&start[v], r.place(w, v, tile.ID, m))
		}
		tsp.End()
		return nil
	})
}

// detect sweeps every tile's boundary cells and collects, per tile, the
// conflict losers: for each overlapping cross-tile pair the vertex with
// the higher (tile-id, vertex-id) must move. Boundary lists are in
// ascending vertex-id order, so concatenating the per-tile loser lists
// in tile order yields the deterministic repair order for free.
func (r *run) detect(losersByTile [][]int) (total int, err error) {
	g, tl, start := r.g, r.tl, r.c.Start
	err = r.forEach(len(tl.Tiles), func(w *scratch, i int) error {
		if err := r.opts.Err(); err != nil {
			return err
		}
		losersByTile[i] = losersByTile[i][:0]
		tid := tl.Tiles[i].ID
		for _, v := range r.boundary[i] {
			sv := atomic.LoadInt64(&start[v])
			wv := g.Weight(v)
			if sv == core.Unset || wv <= 0 {
				continue
			}
			iv := core.Interval{Start: sv, End: sv + wv}
			for _, u := range w.pl.Begin(v) {
				tu := tl.TileOf(u)
				if tu == tid {
					continue
				}
				// Only the loser side records the conflict, so each
				// conflicting vertex is appended exactly once (by its
				// own tile's sweep) and winners are left untouched.
				if tu > tid || (tu == tid && u > v) {
					continue
				}
				su := atomic.LoadInt64(&start[u])
				wu := g.Weight(u)
				if su == core.Unset || wu <= 0 {
					continue
				}
				if iv.Overlaps(core.Interval{Start: su, End: su + wu}) {
					losersByTile[i] = append(losersByTile[i], v)
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, l := range losersByTile {
		total += len(l)
	}
	return total, nil
}

// tileGroup is one repair round's loser set for a single tile. The
// whole group is recolored sequentially by one worker (in ascending
// vertex-id order), so a parallel round can never create an intra-tile
// conflict and the round's outcome depends only on the conflict set.
type tileGroup struct {
	tile  int
	verts []int
}

// fixpoint drives the detect/recolor loop until no cross-tile conflict
// remains. Parallel repair rounds recolor the losers of each tile
// sequentially within the tile (one worker per tile group) so no new
// intra-tile conflict can appear; if the conflict set ever fails to
// shrink strictly — or maxRounds is exhausted — one sequential pass over
// the remaining losers finishes the job deterministically. When tracing,
// every round records a span under sp with nested boundary-sweep and
// recolor spans; the metrics bundle counts detected conflicts, repaired
// losers, and completed rounds.
func (r *run) fixpoint(sp *obsv.Span, maxRounds int) error {
	tl, start := r.tl, r.c.Start
	meters := r.opts.Meters()
	r.boundary = r.bufs.boundary
	if err := r.forEach(len(tl.Tiles), func(_ *scratch, i int) error {
		r.boundary[i] = tl.AppendBoundary(tl.Tiles[i], r.boundary[i][:0])
		return nil
	}); err != nil {
		return err
	}
	losersByTile := r.bufs.losers
	prev := -1
	for round := 0; ; round++ {
		var rsp, ssp *obsv.Span
		if sp != nil {
			rsp = sp.Child(fmt.Sprintf("round:%d", round))
			ssp = rsp.Child("sweep")
		}
		nconf, err := r.detect(losersByTile)
		ssp.End()
		if err != nil {
			rsp.End()
			return err
		}
		if meters != nil {
			meters.Conflicts.Add(int64(nconf))
		}
		if nconf == 0 {
			rsp.End()
			return r.complete()
		}
		sequential := round >= maxRounds || (prev >= 0 && nconf >= prev)
		prev = nconf
		r.ev.RepairSweep(round, int64(nconf), sequential)
		if sequential && !r.seqRepair {
			r.seqRepair = true
			if meters != nil {
				meters.Fallbacks.Add(1)
			}
			r.ev.Fallback("pgreedy", "repair rounds stopped shrinking; sequential repair pass")
		}
		// Clear every loser before any recoloring starts, so a round's
		// placements see losers as uncolored rather than as their stale
		// conflicting intervals; stamp them so skipMarked placements can
		// tell this round's losers apart from settled vertices.
		r.round++
		groups := r.bufs.groups[:0]
		for i, verts := range losersByTile {
			for _, v := range verts {
				atomic.StoreInt64(&start[v], core.Unset)
				r.mark[v] = r.round
			}
			if len(verts) > 0 {
				groups = append(groups, tileGroup{tile: tl.Tiles[i].ID, verts: verts})
			}
		}
		r.bufs.groups = groups
		csp := rsp.Child("recolor")
		if sequential {
			w := r.newScratch()
			for _, g := range groups {
				for _, v := range g.verts {
					atomic.StoreInt64(&start[v], r.place(w, v, g.tile, readAll))
				}
			}
			r.release(w)
		} else if err := r.forEach(len(groups), func(w *scratch, i int) error {
			if err := r.opts.Err(); err != nil {
				return err
			}
			if r.inj != nil {
				r.inj.Inject(SiteWorkerPanic)
			}
			for _, v := range groups[i].verts {
				if r.inj != nil && r.inj.Inject(SiteRepairDrop) {
					// Dropped repair update: the loser stays uncolored;
					// the completion sweep after the fixpoint places it.
					continue
				}
				atomic.StoreInt64(&start[v], r.place(w, v, groups[i].tile, skipMarked))
			}
			return nil
		}); err != nil {
			csp.End()
			rsp.End()
			return err
		}
		csp.End()
		rsp.End()
		if meters != nil {
			meters.Repairs.Add(int64(nconf))
			meters.RepairRounds.Add(1)
		}
		// The next detect sweep verifies the fixpoint.
	}
}

// complete is the post-fixpoint completion sweep: any vertex still
// uncolored — dropped repair updates under fault injection, or any
// future bug that loses a placement — is re-placed sequentially against
// the settled state, so Greedy's complete-and-valid contract holds on
// every degraded path. With nothing uncolored (every production run)
// the sweep is a read-only scan. Placements run one at a time in vertex
// order against fully-settled neighbors, so they are deterministic and
// can never introduce a new conflict.
func (r *run) complete() error {
	start := r.c.Start
	var w *scratch
	var n int64
	for v := range start {
		if atomic.LoadInt64(&start[v]) != core.Unset {
			continue
		}
		if w == nil {
			w = r.newScratch()
		}
		atomic.StoreInt64(&start[v], r.place(w, v, r.tl.TileOf(v), readAll))
		n++
	}
	if w == nil {
		return nil
	}
	r.release(w)
	if m := r.opts.Meters(); m != nil {
		m.Repairs.Add(n)
	}
	if !r.seqRepair {
		// The sweep acted as the guaranteed path for this solve; count
		// the fallback engagement once.
		r.seqRepair = true
		if m := r.opts.Meters(); m != nil {
			m.Fallbacks.Add(1)
		}
		r.ev.Fallback("pgreedy", "completion sweep re-placed dropped vertices")
	}
	return nil
}
