package parallel

import (
	"strings"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/obsv"
)

// TestTraceSpans: a traced parallel solve records the two top-level
// phases, one span per tile (on worker lanes, nested under speculate),
// and a sweep span inside every repair round. Run with -race this also
// proves concurrent tile workers may share one tracer.
func TestTraceSpans(t *testing.T) {
	g := rand2D(t, 48, 48, 9, 23)
	tr := obsv.NewTrace()
	c, err := Greedy(g, Config{TileSize: 6},
		&core.SolveOptions{Parallelism: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}

	var speculate, repair *obsv.SpanRecord
	tiles, sweeps := 0, 0
	spans := tr.Spans()
	for i := range spans {
		sp := &spans[i]
		switch {
		case sp.Name == "pgreedy/speculate":
			speculate = sp
		case sp.Name == "pgreedy/repair":
			repair = sp
		case strings.HasPrefix(sp.Name, "tile:"):
			tiles++
			if sp.Depth == 0 {
				t.Errorf("%s: depth 0, want nested under speculate", sp.Name)
			}
			if sp.Lane == 0 {
				t.Errorf("%s: lane 0, want a worker lane", sp.Name)
			}
		case sp.Name == "sweep":
			sweeps++
		}
	}
	if speculate == nil || repair == nil {
		t.Fatalf("missing top-level phase spans; got %v", tr)
	}
	wantTiles := ((48 + 5) / 6) * ((48 + 5) / 6)
	if tiles != wantTiles {
		t.Errorf("tile spans = %d, want %d", tiles, wantTiles)
	}
	if sweeps == 0 {
		t.Error("no sweep spans inside the repair rounds")
	}
	// Tile spans must be contained in the speculate phase's window.
	for _, sp := range spans {
		if !strings.HasPrefix(sp.Name, "tile:") {
			continue
		}
		if sp.Start < speculate.Start || sp.Start+sp.Wall > speculate.Start+speculate.Wall {
			t.Errorf("%s [%v, %v] escapes speculate [%v, %v]", sp.Name,
				sp.Start, sp.Start+sp.Wall, speculate.Start, speculate.Start+speculate.Wall)
		}
	}
}

// TestSolveMetrics: the metrics bundle attached to a parallel solve
// counts every placement at least once (repairs re-place) and keeps the
// conflict ledger consistent: rounds only happen when conflicts exist,
// and every detected conflict is eventually repaired.
func TestSolveMetrics(t *testing.T) {
	g := rand2D(t, 40, 40, 9, 29)
	m := obsv.NewSolveMetrics(obsv.NewRegistry())
	c, err := Greedy(g, Config{TileSize: 5},
		&core.SolveOptions{Parallelism: 4, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if got := m.Vertices.Value(); got < int64(g.Len()) {
		t.Errorf("vertices colored = %d, want >= %d", got, g.Len())
	}
	if m.Probes.Value() <= 0 {
		t.Error("no probes counted")
	}
	if m.OccLen.Count() != m.Vertices.Value() {
		t.Errorf("occupancy histogram count = %d, want %d (one observation per placement)",
			m.OccLen.Count(), m.Vertices.Value())
	}
	conflicts, repairs, rounds := m.Conflicts.Value(), m.Repairs.Value(), m.RepairRounds.Value()
	if repairs != conflicts {
		t.Errorf("repaired %d of %d detected conflicts; a valid coloring repairs all", repairs, conflicts)
	}
	if conflicts > 0 && rounds == 0 {
		t.Errorf("%d conflicts but 0 repair rounds", conflicts)
	}
	if rounds == 0 && conflicts == 0 && repairs != 0 {
		t.Error("repairs counted without conflicts")
	}
}
