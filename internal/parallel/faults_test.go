package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
)

// testGrid2D returns a 96x96 grid (several 32-cell tiles per axis at
// TileSize 32) with varied weights.
func testGrid2D(t *testing.T) *grid.Grid2D {
	t.Helper()
	g := grid.MustGrid2D(96, 96)
	for v := range g.W {
		g.W[v] = int64(v%7) + 1
	}
	return g
}

// fireOnce returns an injector firing site's fault exactly once, on the
// nth visit of that site (1-based), and a counter of fires.
func fireOnce(site core.FaultSite, nth int64, act func()) (core.Injector, *atomic.Int64) {
	var visits, fires atomic.Int64
	return core.InjectorFunc(func(s core.FaultSite) bool {
		if s != site {
			return false
		}
		if visits.Add(1) != nth {
			return false
		}
		fires.Add(1)
		if act != nil {
			act()
		}
		return true
	}), &fires
}

// newMetrics returns a fresh registry-backed metrics bundle for
// asserting on the degraded-solve counters.
func newMetrics() *obsv.SolveMetrics {
	return obsv.NewSolveMetrics(obsv.NewRegistry())
}

// TestWorkerPanicFallsBackSequential: an induced worker panic is
// contained, the solve falls back to the sequential bedrock, the result
// equals plain sequential greedy, and the counters record the event.
func TestWorkerPanicFallsBackSequential(t *testing.T) {
	g := testGrid2D(t)
	for _, par := range []int{1, 4} {
		inj, fires := fireOnce(SiteWorkerPanic, 2, func() {
			panic(core.InjectedPanic{Site: SiteWorkerPanic})
		})
		m := newMetrics()
		opts := &core.SolveOptions{Parallelism: par, Injector: inj, Metrics: m}
		c, err := Greedy(g, Config{TileSize: 32}, opts)
		if err != nil {
			t.Fatalf("par=%d: fallback did not absorb the panic: %v", par, err)
		}
		if err := c.Validate(g); err != nil {
			t.Fatalf("par=%d: degraded result invalid: %v", par, err)
		}
		if fires.Load() != 1 {
			t.Fatalf("par=%d: panic fired %d times, want 1", par, fires.Load())
		}
		if got := m.PanicsRecovered.Value(); got == 0 {
			t.Errorf("par=%d: solver_panics_recovered_total = 0, want > 0", par)
		}
		if got := m.Fallbacks.Value(); got == 0 {
			t.Errorf("par=%d: solver_fallbacks_total = 0, want > 0", par)
		}
		// The fallback is exactly the sequential line-order greedy.
		want, err := core.GreedyColorOpts(g, g.LineOrder(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := range c.Start {
			if c.Start[v] != want.Start[v] {
				t.Fatalf("par=%d: fallback diverges from GLL at vertex %d: %d vs %d",
					par, v, c.Start[v], want.Start[v])
			}
		}
	}
}

// TestWorkerPanicNonInjected: a genuine (non-injected) panic in a
// worker is also contained and degraded, not propagated.
func TestWorkerPanicNonInjected(t *testing.T) {
	g := testGrid2D(t)
	inj, _ := fireOnce(SiteWorkerPanic, 1, func() { panic("worker bug") })
	c, err := Greedy(g, Config{TileSize: 32}, &core.SolveOptions{Parallelism: 4, Injector: inj})
	if err != nil {
		t.Fatalf("genuine panic not absorbed: %v", err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatalf("degraded result invalid: %v", err)
	}
}

// TestRepairDropCompletes: dropped repair updates leave vertices
// uncolored mid-solve; the completion sweep must still deliver a
// complete, valid coloring.
func TestRepairDropCompletes(t *testing.T) {
	g := testGrid2D(t)
	var drops atomic.Int64
	inj := core.InjectorFunc(func(s core.FaultSite) bool {
		if s == SiteRepairDrop {
			drops.Add(1)
			return true // drop every parallel repair update
		}
		return false
	})
	m := newMetrics()
	// SpeculateBlind guarantees cross-tile conflicts, hence repair work
	// to drop; MaxRounds=1 forces the sequential pass early too.
	opts := &core.SolveOptions{Parallelism: 4, Injector: inj, Metrics: m}
	c, err := Greedy(g, Config{TileSize: 32, SpeculateBlind: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatalf("dropped updates broke completeness: %v", err)
	}
	if drops.Load() == 0 {
		t.Skip("no parallel repair round ran (no conflicts to drop)")
	}
	if m.Fallbacks.Value() == 0 {
		t.Error("solver_fallbacks_total = 0, want > 0 after dropped updates")
	}
}

// TestHaloMisreadRepaired: forced halo misreads plant cross-tile
// conflicts the fixpoint must fully repair.
func TestHaloMisreadRepaired(t *testing.T) {
	g := testGrid2D(t)
	inj := core.InjectorFunc(func(s core.FaultSite) bool {
		return s == SiteHaloRead // every speculative placement misreads
	})
	m := newMetrics()
	c, err := Greedy(g, Config{TileSize: 32}, &core.SolveOptions{Parallelism: 4, Injector: inj, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatalf("misreads survived the fixpoint: %v", err)
	}
	if m.Conflicts.Value() == 0 {
		t.Error("universal halo misreads produced zero detected conflicts")
	}
}

// TestCancellationPropagatesThroughChaos: a canceled context beats the
// fallback — Greedy reports the cancellation, never a partial coloring.
func TestCancellationPropagatesThroughChaos(t *testing.T) {
	g := testGrid2D(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inj, _ := fireOnce(SiteWorkerPanic, 1, func() { panic(core.InjectedPanic{Site: SiteWorkerPanic}) })
	_, err := Greedy(g, Config{TileSize: 32}, &core.SolveOptions{
		Ctx: ctx, Parallelism: 4, Injector: inj,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolveErrorSiteThreadsThrough: the site of an injected panic
// survives recovery into the typed error (observed via speculative()
// before Greedy's fallback hides it).
func TestSolveErrorSiteThreadsThrough(t *testing.T) {
	g := testGrid2D(t)
	inj, _ := fireOnce(SiteWorkerPanic, 1, func() { panic(core.InjectedPanic{Site: SiteWorkerPanic}) })
	_, err := speculative(g, g, Config{TileSize: 32}, &core.SolveOptions{Parallelism: 2, Injector: inj})
	var se *core.SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *core.SolveError", err)
	}
	if !se.Panicked || se.Site != SiteWorkerPanic {
		t.Errorf("SolveError = %+v, want panicked at %s", se, SiteWorkerPanic)
	}
}

// TestCompletionSweepNoopAllocs: with no injector the completion sweep
// must not change results — pinned by comparing to a pre-hardening
// equivalent (sequential greedy equality is covered elsewhere; here we
// just re-check validity and determinism at par=1).
func TestCompletionSweepNoop(t *testing.T) {
	g := testGrid2D(t)
	a, err := Greedy(g, Config{TileSize: 32}, &core.SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(g, Config{TileSize: 32}, &core.SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Start {
		if a.Start[v] != b.Start[v] {
			t.Fatalf("par=1 solve not deterministic at vertex %d", v)
		}
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerStallHarmless: stalls (slow workers) skew timing but never
// correctness.
func TestWorkerStallHarmless(t *testing.T) {
	g := testGrid2D(t)
	var stalls atomic.Int64
	inj := core.InjectorFunc(func(s core.FaultSite) bool {
		if s == SiteWorkerStall {
			stalls.Add(1)
			// A real chaos injector sleeps here; the contract only needs
			// the site consulted, so count instead of sleeping.
			return true
		}
		return false
	})
	c, err := Greedy(g, Config{TileSize: 32}, &core.SolveOptions{Parallelism: 4, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if stalls.Load() == 0 {
		t.Error("stall site never consulted")
	}
}
