package parallel

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
)

// TestWSRangePop: the owner claims indices in ascending order and
// reports empty exactly when the range is drained.
func TestWSRangePop(t *testing.T) {
	var q wsRange
	q.reset(3, 6)
	for want := 3; want < 6; want++ {
		i, ok := q.pop()
		if !ok || i != want {
			t.Fatalf("pop = (%d, %v), want (%d, true)", i, ok, want)
		}
	}
	if i, ok := q.pop(); ok {
		t.Fatalf("pop on empty = (%d, %v), want empty", i, ok)
	}
}

// TestWSRangeStealHalf: a thief takes the upper half (at least one
// index), the victim keeps the contiguous lower prefix, and an empty
// deque refuses.
func TestWSRangeStealHalf(t *testing.T) {
	var q wsRange
	q.reset(0, 10)
	lo, hi, ok := q.stealHalf()
	if !ok || lo != 5 || hi != 10 {
		t.Fatalf("stealHalf of [0,10) = [%d,%d) ok=%v, want [5,10)", lo, hi, ok)
	}
	// Victim's remainder is [0,5).
	if i, ok := q.pop(); !ok || i != 0 {
		t.Fatalf("victim pop = (%d, %v), want (0, true)", i, ok)
	}
	// A single-index range is stolen whole.
	var s wsRange
	s.reset(7, 8)
	if lo, hi, ok := s.stealHalf(); !ok || lo != 7 || hi != 8 {
		t.Fatalf("stealHalf of [7,8) = [%d,%d) ok=%v, want [7,8)", lo, hi, ok)
	}
	if _, _, ok := s.stealHalf(); ok {
		t.Fatal("stealHalf on empty deque succeeded")
	}
}

// TestWSRangeConcurrent hammers one deque with one owner and many
// thieves under the race detector: every index must be claimed exactly
// once, whether by pop or by steal.
func TestWSRangeConcurrent(t *testing.T) {
	const n = 4096
	var q wsRange
	q.reset(0, n)
	claimed := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // owner
		defer wg.Done()
		for {
			i, ok := q.pop()
			if !ok {
				return
			}
			claimed[i].Add(1)
		}
	}()
	for k := 0; k < 3; k++ { // thieves
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := q.stealHalf()
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					claimed[i].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for i := range claimed {
		if got := claimed[i].Load(); got != 1 {
			t.Fatalf("index %d claimed %d times, want exactly once", i, got)
		}
	}
}

// TestForEachCoversAllIndices: the work-stealing forEach visits every
// index exactly once at every parallelism level, including n < par and
// n not divisible by par.
func TestForEachCoversAllIndices(t *testing.T) {
	g := rand2D(t, 8, 8, 5, 21)
	for _, par := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{1, 2, 13, 64, 100} {
			bufs := acquireBufs(1, g.Len(), par)
			r := &run{g: g, s: g, opts: &core.SolveOptions{Parallelism: par}, par: par, bufs: bufs}
			hits := make([]atomic.Int32, n)
			if err := r.forEach(n, func(_ *scratch, i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("par=%d n=%d: %v", par, n, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("par=%d n=%d: index %d visited %d times", par, n, i, got)
				}
			}
			releaseBufs(bufs)
		}
	}
}

// TestStealCounterFlushed: worker steal counts flush into the
// ivc_tile_steals_total counter alongside the placement counters.
func TestStealCounterFlushed(t *testing.T) {
	reg := obsv.NewRegistry()
	sm := obsv.NewSolveMetrics(reg)
	g := rand2D(t, 4, 4, 3, 5)
	r := &run{g: g, s: g, opts: &core.SolveOptions{Metrics: sm}}
	w := r.newScratch()
	w.steals = 3
	w.pl.Placements = 7
	r.release(w)
	if got := sm.Steals.Value(); got != 3 {
		t.Errorf("Steals = %d, want 3", got)
	}
	if got := sm.Vertices.Value(); got != 7 {
		t.Errorf("Vertices = %d, want 7", got)
	}
}

// TestTileOrderNoAllocs pins the allocation-free OrderWeightDesc sort:
// after the verts buffer has grown once, re-sorting a tile allocates
// nothing (the reflect-based sort.Slice it replaced allocated its
// swapper every call).
func TestTileOrderNoAllocs(t *testing.T) {
	g := rand2D(t, 32, 32, 9, 13)
	tl, err := g.Tiling(8)
	if err != nil {
		t.Fatal(err)
	}
	r := &run{g: g, s: g, cfg: Config{Order: OrderWeightDesc}, opts: nil}
	w := &scratch{}
	tile := tl.Tiles[len(tl.Tiles)/2]
	r.tileOrder(w, tile) // grow verts once
	if n := testing.AllocsPerRun(100, func() {
		r.tileOrder(w, tile)
	}); n != 0 {
		t.Errorf("tileOrder(OrderWeightDesc) allocates %v/op, want 0", n)
	}
	// And the order itself: non-increasing weight, ties ascending by id.
	verts := r.tileOrder(w, tile)
	for i := 1; i < len(verts); i++ {
		wa, wb := g.Weight(verts[i-1]), g.Weight(verts[i])
		if wa < wb || (wa == wb && verts[i-1] >= verts[i]) {
			t.Fatalf("order violated at %d: vertex %d (w=%d) before %d (w=%d)",
				i, verts[i-1], wa, verts[i], wb)
		}
	}
}

// noUni2D / noUni3D opt a stencil out of the uniform-weight verdict,
// forcing every placement through the general interval kernel — the
// cross-check path for the free-map kernel.
type noUni2D struct{ *grid.Grid2D }

// UniformWeight opts out (core.UniformWeighter).
func (noUni2D) UniformWeight() (int64, bool) { return 0, false }

type noUni3D struct{ *grid.Grid3D }

// UniformWeight opts out (core.UniformWeighter).
func (noUni3D) UniformWeight() (int64, bool) { return 0, false }

// TestUniformKernelEquivalencePGLL: on uniform-weight grids, the
// deterministic (blind) parallel solver produces byte-identical
// colorings whether placements take the packed free-map kernel or the
// general interval kernel, across dimensions, orders, and parallelism.
func TestUniformKernelEquivalencePGLL(t *testing.T) {
	g2 := grid.MustGrid2D(37, 23)
	for v := range g2.W {
		g2.W[v] = 4
	}
	g3 := grid.MustGrid3D(9, 7, 5)
	for v := range g3.W {
		g3.W[v] = 2
	}
	pairs := []struct {
		name     string
		fast, v1 grid.Stencil
	}{
		{"9pt", g2, noUni2D{g2}},
		{"27pt", g3, noUni3D{g3}},
	}
	for _, p := range pairs {
		for _, ord := range []Order{OrderLine, OrderWeightDesc} {
			for _, par := range []int{1, 4} {
				cfg := Config{TileSize: 5, Order: ord, SpeculateBlind: true}
				fast, err := Greedy(p.fast, cfg, &core.SolveOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := Greedy(p.v1, cfg, &core.SolveOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				for v := range ref.Start {
					if ref.Start[v] != fast.Start[v] {
						t.Fatalf("%s order=%d par=%d: vertex %d colored %d by interval kernel, %d by free-map kernel",
							p.name, ord, par, v, ref.Start[v], fast.Start[v])
					}
				}
			}
		}
	}
}

// TestUniformKernelEquivalenceGLL: same cross-check for the sequential
// greedy (GLL and GLF orders) on 9-pt and 27-pt uniform instances.
func TestUniformKernelEquivalenceGLL(t *testing.T) {
	g2 := grid.MustGrid2D(29, 31)
	for v := range g2.W {
		g2.W[v] = 3
	}
	g3 := grid.MustGrid3D(8, 6, 7)
	for v := range g3.W {
		g3.W[v] = 5
	}
	pairs := []struct {
		name     string
		fast, v1 grid.Stencil
	}{
		{"9pt", g2, noUni2D{g2}},
		{"27pt", g3, noUni3D{g3}},
	}
	for _, p := range pairs {
		fast, err := core.GreedyColor(p.fast, p.fast.LineOrder())
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.GreedyColor(p.v1, p.v1.LineOrder())
		if err != nil {
			t.Fatal(err)
		}
		for v := range ref.Start {
			if ref.Start[v] != fast.Start[v] {
				t.Fatalf("%s: vertex %d colored %d by interval kernel, %d by free-map kernel",
					p.name, v, ref.Start[v], fast.Start[v])
			}
		}
	}
}

// BenchmarkStealScheduler measures the speculative solve end to end on
// a weight-skewed grid (one heavy corner) at increasing worker counts —
// the shape where the static contiguous partition is unbalanced and
// throughput depends on idle workers stealing tile ranges.
func BenchmarkStealScheduler(b *testing.B) {
	const dim = 128
	g := grid.MustGrid2D(dim, dim)
	rng := rand.New(rand.NewSource(3))
	for v := range g.W {
		g.W[v] = rng.Int63n(9) + 1
	}
	for j := 0; j < dim/4; j++ {
		for i := 0; i < dim/4; i++ {
			g.Set(i, j, 60+rng.Int63n(40))
		}
	}
	cfg := Config{TileSize: 8, SpeculateBlind: true}
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Greedy(g, cfg, &core.SolveOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWorkStealingDeterministicRepair: with blind speculation the
// whole solve is a pure function of the instance, so the scheduler —
// whatever it steals, at any parallelism — must reproduce the same
// coloring. Weight-skewed grids force repair rounds, exercising the
// (tile-id, vertex-id) tie-break through the stealing scheduler.
func TestWorkStealingDeterministicRepair(t *testing.T) {
	g := rand2D(t, 41, 37, 9, 99)
	// Skew: make one corner heavy so static tile ranges are unbalanced
	// and idle workers actually steal.
	for j := 0; j < 12; j++ {
		for i := 0; i < 12; i++ {
			g.Set(i, j, 40+int64(i+j))
		}
	}
	cfg := Config{TileSize: 4, SpeculateBlind: true}
	base, err := Greedy(g, cfg, &core.SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		for rep := 0; rep < 3; rep++ {
			c, err := Greedy(g, cfg, &core.SolveOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			for v := range base.Start {
				if base.Start[v] != c.Start[v] {
					t.Fatalf("par=%d rep=%d: vertex %d colored %d, sequential reference %d",
						par, rep, v, c.Start[v], base.Start[v])
				}
			}
		}
	}
}
