package parallel

import "stencilivc/internal/core"

// Placer is the reusable lowest-fit placement kernel shared by the
// tile-parallel solver (this package) and the distributed sharded
// solver (internal/distsolve). It owns the fixed-size neighbor and
// occupancy arrays sized for stencil degrees (core.MaxFixedDegree), so
// a placement allocates nothing, and it carries the solve-wide
// uniform-weight verdict that routes placements onto the packed
// free-map kernel.
//
// A placement is a Begin / Observe* / Commit sequence: Begin names the
// vertex and exposes its neighbor list, the caller decides — under its
// own visibility rule (atomic shared-memory reads for the tile solver,
// halo-cache lookups for the sharded solver) — which neighbors to
// Observe, and Commit dispatches the gathered occupancy to the kernel
// ladder. A Placer is not safe for concurrent use; give each worker its
// own (the tile solver embeds one per scratch).
type Placer struct {
	g    core.FixedGraph
	uniW int64
	nb   [core.MaxFixedDegree]int
	occ  [core.MaxFixedDegree]core.Interval
	m    int

	// Placements and Probes count Commit calls and Observed intervals
	// since the last Reset; callers flush them into their stats sinks in
	// bulk instead of paying per-placement metric updates.
	Placements int64
	Probes     int64
}

// NewPlacer returns a Placer bound to g, computing the uniform-weight
// verdict itself. Callers that already hold the verdict (one O(n) scan
// per solve, shared across workers) should use Reset instead.
func NewPlacer(g core.FixedGraph) Placer {
	var p Placer
	w, _ := core.UniformWeight(g)
	p.Reset(g, w)
	return p
}

// Reset rebinds the Placer to g with the given uniform-weight verdict
// (0 when weights are mixed) and zeroes the flush counters. Reset, not
// NewPlacer, is the pooled-scratch path: the verdict is computed once
// per solve and shared.
func (p *Placer) Reset(g core.FixedGraph, uniformW int64) {
	p.g, p.uniW = g, uniformW
	p.m = 0
	p.Placements, p.Probes = 0, 0
}

// Begin starts the placement of v: it clears the gathered occupancy and
// returns v's neighbor list (backed by the Placer's own array — valid
// until the next Begin).
func (p *Placer) Begin(v int) []int {
	p.m = 0
	deg := p.g.NeighborsFixed(v, &p.nb)
	return p.nb[:deg]
}

// Observe records one neighbor's interval in the gathered occupancy.
// Unset starts and non-positive weights are skipped — uncolored and
// zero-width neighbors constrain nothing — so callers pass whatever
// state they read without pre-filtering.
func (p *Placer) Observe(start, weight int64) {
	if start == core.Unset || weight <= 0 {
		return
	}
	p.occ[p.m] = core.Interval{Start: start, End: start + weight}
	p.m++
}

// Observed reports how many intervals the current placement gathered.
func (p *Placer) Observed() int { return p.m }

// Commit dispatches the gathered occupancy to the kernel ladder and
// returns the lowest-fit start for a vertex of the given weight: the
// packed free-map scan when the solve-wide uniform verdict holds (and
// no hand-built start broke the multiple-of-w invariant), the sort-free
// streaming min-gap scan otherwise — occupancy here is at most
// MaxFixedDegree entries, well inside the streaming kernel's sweet
// spot.
func (p *Placer) Commit(weight int64) int64 {
	p.Placements++
	p.Probes += int64(p.m)
	if p.uniW > 0 {
		if s, ok := core.LowestFitUniform(p.occ[:p.m], weight); ok {
			return s
		}
	}
	return core.LowestFitStream(p.occ[:p.m], weight)
}
