package parallel

import (
	"math/rand"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// FuzzGreedyRepair drives the speculate/repair loop over fuzzer-chosen
// small grids, weights, tile sizes, and parallelism, in both optimistic
// and blind speculation modes. Every run must reach a fixpoint with a
// coloring the core validator accepts, and blind runs must also match a
// deterministic replay.
func FuzzGreedyRepair(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(4), uint8(0), uint8(2), uint8(3), false)
	f.Add(int64(7), uint8(16), uint8(1), uint8(0), uint8(1), uint8(1), true)
	f.Add(int64(9), uint8(3), uint8(3), uint8(3), uint8(2), uint8(4), true)
	f.Fuzz(func(t *testing.T, seed int64, xr, yr, zr, tileR, parR uint8, blind bool) {
		x := int(xr%24) + 1
		y := int(yr%24) + 1
		z := int(zr % 5) // 0 → 2D instance
		tile := int(tileR%6) + 1
		par := int(parR%8) + 1
		rng := rand.New(rand.NewSource(seed))

		var s grid.Stencil
		if z == 0 {
			g := grid.MustGrid2D(x, y)
			for v := range g.W {
				g.W[v] = rng.Int63n(12)
			}
			s = g
		} else {
			g := grid.MustGrid3D(x, y, z)
			for v := range g.W {
				g.W[v] = rng.Int63n(12)
			}
			s = g
		}

		cfg := Config{TileSize: tile, SpeculateBlind: blind}
		// Small MaxRounds values exercise the sequential fallback too.
		cfg.MaxRounds = int(tileR%3) + 1
		c, err := Greedy(s, cfg, &core.SolveOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(s); err != nil {
			t.Fatalf("tile=%d par=%d blind=%v: %v", tile, par, blind, err)
		}
		if blind {
			again, err := Greedy(s, cfg, &core.SolveOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for v := range c.Start {
				if c.Start[v] != again.Start[v] {
					t.Fatalf("blind solve not deterministic at vertex %d: %d vs %d",
						v, c.Start[v], again.Start[v])
				}
			}
		}
	})
}
