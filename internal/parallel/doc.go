// Package parallel implements the tile-parallel speculative greedy
// solver for 9-pt and 27-pt stencils (registered as PGLL and PGLF): the
// speculate/repair strategy that scales classic distance-1 graph
// coloring (Gebremedhin–Manne style), adapted to the interval vertex
// coloring problem of the paper's Section V greedy family.
//
// The grid is partitioned into cache-sized tiles (2D: T×T blocks, 3D:
// T×T×T bricks). All tiles are colored concurrently on a worker pool
// honoring SolveOptions.Parallelism; inside a tile the placement is the
// ordinary sequential lowest-fit greedy, so intra-tile edges are valid by
// construction. Cross-tile (halo) neighbors are read optimistically —
// whatever start the neighbor currently has, including "uncolored" — so
// two adjacent tiles racing on a boundary edge may produce overlapping
// intervals. A conflict-detection sweep over the tile boundaries then
// finds every overlapping cross-tile pair and recolors the pair's loser —
// the vertex with the higher (tile-id, vertex-id) — and the
// detect/recolor loop runs to a fixpoint. Config.SpeculateBlind instead
// ignores cross-tile neighbors during speculation entirely, trading
// speed for a deterministic outcome.
//
// The package invariant is that Greedy never returns an invalid or
// partial coloring: it only returns once the detection sweep reaches a
// fixpoint with zero cross-tile conflicts, and intra-tile validity holds
// by construction.
//
// Termination: winners never move, a recolored loser placed against a
// winner's (stable) interval can never conflict with it again, and
// same-tile losers are recolored sequentially by one worker; so in every
// round the smallest (tile-id, vertex-id) member of each conflict
// component leaves the conflict set for good — the set strictly shrinks.
// As a belt-and-braces guarantee the solver switches to a single
// sequential repair pass (which reaches a fixpoint in one sweep) if the
// conflict set ever stops shrinking or a round budget is exhausted.
//
// All reads and writes of the shared start array during the concurrent
// phases go through sync/atomic, so the solver is clean under the race
// detector; the final coloring is published by the worker joins. The
// solve is observable end to end: the speculate and repair phases, every
// tile, and every repair round record obsv trace spans, and per-worker
// counters flush into the metrics bundle on dedicated shards.
package parallel
