package parallel

import "sync/atomic"

// The work-stealing tile scheduler (PR 7). forEach used to hand out
// indices from one shared atomic counter, which has two costs at scale:
// every claim bounces the counter's cache line across all workers, and
// a worker's tiles are scattered over the whole index space instead of
// following the space-filling tile order (no locality between
// consecutive tiles of one worker). The scheduler here fixes both:
//
//   - Each worker starts with a contiguous index range [k·n/par,
//     (k+1)·n/par), so consecutive tiles share halo rows and stay warm
//     in cache, and the common case (balanced work) claims indices with
//     a CAS on a line no other worker touches.
//   - A worker that drains its range steals half of a victim's
//     remainder (Chase-Lev-style steal-half, adapted to ranges: since
//     the work set is a fixed integer interval, the whole deque
//     collapses to one packed {lo,hi} word). Heavy-weight regions
//     therefore stop serializing rounds: the workers that finish light
//     ranges pull the heavy range apart instead of idling.
//
// Determinism is unaffected: every index is still processed exactly
// once by exactly one worker, and the repair path's (tile-id,
// vertex-id) tie-break never depended on which worker runs a group —
// skipMarked placements are a pure function of the round's conflict
// set. Panic containment is also unchanged; contain() wraps every fn
// call exactly as before.

// wsRange is one worker's range deque: the packed half-open interval
// [lo, hi) of unclaimed indices, lo in the low 32 bits and hi in the
// high 32 bits of one atomic word. The owner pops lo with a CAS;
// thieves CAS the top half away. Both mutate the same word, so every
// transition is a single successful CAS and the range can never be
// claimed twice. The padding keeps neighboring deques on distinct
// cache lines — the whole point of per-worker ranges is that the
// common-case CAS does not cross cores.
type wsRange struct {
	bounds atomic.Uint64
	_      [7]uint64 // pad to a 64-byte cache line
}

// packRange packs [lo, hi) into one word. Tile counts are bounded far
// below 2^31 (the grid constructors cap cells at 2^28), so 32 bits per
// bound are plenty.
func packRange(lo, hi uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }

// unpackRange splits the packed word back into lo and hi.
func unpackRange(b uint64) (lo, hi uint32) { return uint32(b), uint32(b >> 32) }

// reset hands the deque a fresh range; only called before the workers
// start (or by the owner on its own empty deque after a steal, which
// is race-free because every thief CAS fails on an empty range).
func (q *wsRange) reset(lo, hi int) { q.bounds.Store(packRange(uint32(lo), uint32(hi))) }

// pop claims the lowest unclaimed index of the owner's range. It
// reports false when the range is empty.
func (q *wsRange) pop() (int, bool) {
	for {
		b := q.bounds.Load()
		lo, hi := unpackRange(b)
		if lo >= hi {
			return 0, false
		}
		if q.bounds.CompareAndSwap(b, packRange(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// stealHalf removes and returns the upper half (rounded down, at least
// one index) of the deque's remainder. It reports false when the deque
// is empty. Taking the top keeps the victim working on its locality-
// ordered prefix while the thief gets a still-contiguous suffix.
func (q *wsRange) stealHalf() (lo, hi int, ok bool) {
	for {
		b := q.bounds.Load()
		qlo, qhi := unpackRange(b)
		n := qhi - qlo
		if n == 0 {
			return 0, 0, false
		}
		take := n - n/2 // at least 1
		if q.bounds.CompareAndSwap(b, packRange(qlo, qhi-take)) {
			return int(qhi - take), int(qhi), true
		}
	}
}

// steal refills worker self's (empty) deque with half of some victim's
// remainder, scanning the other deques round-robin from self+1 so
// thieves spread over victims instead of ganging up on worker 0. It
// reports false — the worker's termination signal — only after one
// full scan found every deque empty. A range that is mid-flight
// between a thief's CAS and its reset is invisible to that scan, so a
// worker may retire while a little work remains; that work is still
// processed exactly once (by the thief holding it), the early sleeper
// just stops helping. With a fixed work set this never loses an index.
func (r *run) steal(qs []wsRange, self int, w *scratch) bool {
	for off := 1; off < len(qs); off++ {
		v := self + off
		if v >= len(qs) {
			v -= len(qs)
		}
		if lo, hi, ok := qs[v].stealHalf(); ok {
			qs[self].reset(lo, hi)
			w.steals++
			return true
		}
	}
	return false
}
