package parallel

import "sync"

// The solve-buffer arena (PR 7). One tile-parallel solve allocates a
// family of buffers whose sizes depend only on the instance shape:
// per-tile boundary and loser lists, the repair-round mark stamps, the
// scheduler deques, and the per-worker scratches. The service daemon
// solves a steady stream of same-shaped jobs, so before this arena it
// paid the full buffer warm-up on every request. Both pools retain
// grown capacity; acquire re-slices (and re-zeroes what must start
// clean) instead of allocating when the pooled object is big enough.

// scratchPool recycles worker scratches across forEach calls and
// solves; the warm win is the grown verts buffer (one tile's worth of
// vertex ids). Observability identity (metrics bundle, counter shard,
// trace lane) is re-assigned on every acquire by run.newScratch, and
// run.release flushes and zeroes the counters before returning one.
var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// solveBufs carries the per-solve buffers of the tile-parallel solver.
type solveBufs struct {
	// boundary holds each tile's halo cells; losers the per-tile
	// conflict losers of the current repair round. Inner slices keep
	// their capacity across solves.
	boundary [][]int
	losers   [][]int
	// mark is the repair-round loser stamp array (see run.mark); it
	// must start all-zero because round stamps restart at 0 each solve.
	mark []int32
	// queues are the work-stealing deques, one per worker.
	queues []wsRange
	// groups is the repair-round group list, resliced every round.
	groups []tileGroup
}

// bufsPool recycles solveBufs across solves.
var bufsPool = sync.Pool{New: func() any { return new(solveBufs) }}

// acquireBufs returns a solveBufs sized for tiles tiles, n vertices,
// and par workers, reusing pooled capacity where it suffices.
func acquireBufs(tiles, n, par int) *solveBufs {
	b := bufsPool.Get().(*solveBufs)
	b.boundary = resizeLists(b.boundary, tiles)
	b.losers = resizeLists(b.losers, tiles)
	if cap(b.mark) < n {
		b.mark = make([]int32, n)
	} else {
		b.mark = b.mark[:n]
		clear(b.mark)
	}
	if cap(b.queues) < par {
		// Never copy a wsRange (it embeds an atomic word): grow by
		// allocating fresh, not by append.
		b.queues = make([]wsRange, par)
	} else {
		b.queues = b.queues[:par]
	}
	b.groups = b.groups[:0]
	return b
}

// releaseBufs returns b to the pool, keeping every buffer's capacity
// warm for the next same-shaped solve.
func releaseBufs(b *solveBufs) {
	if b != nil {
		bufsPool.Put(b)
	}
}

// resizeLists re-slices a slice-of-slices to length n, preserving the
// warm inner slices it already has and growing only when needed.
func resizeLists(s [][]int, n int) [][]int {
	if cap(s) < n {
		grown := make([][]int, n)
		copy(grown, s[:cap(s)])
		return grown
	}
	return s[:n]
}
