package nae

import (
	"fmt"

	"stencilivc/internal/core"
)

// polarity is which half of [0,14) a weight-7 cell occupies:
// 0 means [0,7), 1 means [7,14).
type polarity int

func (p polarity) start() int64 { return int64(p) * 7 }

// flip returns the opposite polarity when steps is odd.
func (p polarity) flip(steps int) polarity { return polarity((int(p) + steps) % 2) }

// AssignmentColoring builds a valid coloring of the reduction instance
// with maxcolor <= K from a satisfying NAE assignment — the constructive
// half of Section IV's proof. It fails if the assignment does not satisfy
// the instance (some clause would have all-equal terminals, leaving no
// room for its three 3s).
func AssignmentColoring(l *Layout, assignment []bool) (core.Coloring, error) {
	if !l.Inst.Satisfied(assignment) {
		return core.Coloring{}, fmt.Errorf("nae: assignment does not satisfy the instance")
	}
	c := core.NewColoring(l.Grid.Len())
	// Weight-0 filler conflicts with nothing; pin it to 0.
	for v := range c.Start {
		c.Start[v] = 0
	}

	// Tubes: variable i's base polarity is 0 ([0,7)) iff true; the zig-zag
	// alternates polarity at each layer.
	basePol := make([]polarity, l.Inst.NumVars)
	for i, val := range assignment {
		if !val {
			basePol[i] = 1
		}
		for z, id := range l.TubeCells[i] {
			c.Start[id] = basePol[i].flip(z).start()
		}
	}

	// Wires: chain cell t (0-based) sits t+1 steps after the clause-layer
	// tube cell.
	for j, cl := range l.Inst.Clauses {
		z := l.ClauseLayer(j)
		var termPol [3]polarity
		for w := 0; w < 3; w++ {
			tubePol := basePol[cl[w]].flip(z)
			chain := l.WireChains[j][w]
			for t, id := range chain {
				c.Start[id] = tubePol.flip(t + 1).start()
			}
			termPol[w] = tubePol.flip(len(chain))
		}
		// Not all terminals are equal (the assignment satisfies the
		// clause and wire-length parities agree); find the minority.
		minority := -1
		for w := 0; w < 3; w++ {
			if termPol[w] != termPol[(w+1)%3] && termPol[w] != termPol[(w+2)%3] {
				minority = w
			}
		}
		if minority == -1 {
			return core.Coloring{}, fmt.Errorf(
				"nae: clause %d has all-equal terminal polarities; wire parity broken", j)
		}
		// The minority 3 hides in the half its terminal does not use; the
		// two majority 3s stack in the other half.
		maj := (minority + 1) % 3
		maj2 := (minority + 2) % 3
		if termPol[minority] == 1 { // minority terminal on [7,14)
			c.Start[l.Threes[j][minority]] = 0
			c.Start[l.Threes[j][maj]] = 7
			c.Start[l.Threes[j][maj2]] = 10
		} else { // minority terminal on [0,7)
			c.Start[l.Threes[j][minority]] = 7
			c.Start[l.Threes[j][maj]] = 0
			c.Start[l.Threes[j][maj2]] = 3
		}
	}
	return c, nil
}

// DecodeAssignment reads a variable assignment out of any valid coloring
// of the reduction instance with maxcolor <= K: variable i is true iff its
// tube's base cell (layer 0) is colored [0,7) — the inverse of Section
// IV's polarity encoding. The caller is responsible for the coloring
// being valid; Decode then guarantees the assignment satisfies the
// instance (tested end-to-end against the brute-force NAE solver).
func DecodeAssignment(l *Layout, c core.Coloring) []bool {
	assignment := make([]bool, l.Inst.NumVars)
	for i := range assignment {
		assignment[i] = c.Start[l.TubeCells[i][0]] == 0
	}
	return assignment
}
