// Package nae implements Not-All-Equal 3-SAT and the paper's Section IV
// reduction from NAE-3SAT to 3DS-IVC, which proves that deciding whether a
// 27-pt stencil can be interval-colored with K colors is NP-complete.
//
// An NAE-3SAT instance has n boolean variables and m clauses of three
// distinct variables (no negations are needed for this variant); it is
// positive when some assignment makes every clause contain at least one
// true and at least one false variable.
package nae

import (
	"fmt"
	"math/rand"
)

// Instance is a NAE-3SAT formula. Clauses hold 0-based variable indices,
// strictly increasing within each clause (the reduction assumes
// j1 < j2 < j3, mirroring the paper's WLOG ordering).
type Instance struct {
	NumVars int
	Clauses [][3]int
}

// Validate checks structural sanity: at least one variable and clause,
// indices in range and strictly increasing per clause.
func (in Instance) Validate() error {
	if in.NumVars < 1 {
		return fmt.Errorf("nae: need at least 1 variable, got %d", in.NumVars)
	}
	if len(in.Clauses) < 1 {
		return fmt.Errorf("nae: need at least 1 clause")
	}
	for ci, cl := range in.Clauses {
		if !(0 <= cl[0] && cl[0] < cl[1] && cl[1] < cl[2] && cl[2] < in.NumVars) {
			return fmt.Errorf("nae: clause %d = %v must be strictly increasing within [0,%d)",
				ci, cl, in.NumVars)
		}
	}
	return nil
}

// Satisfied reports whether the assignment makes every clause
// not-all-equal. len(assignment) must be NumVars.
func (in Instance) Satisfied(assignment []bool) bool {
	if len(assignment) != in.NumVars {
		return false
	}
	for _, cl := range in.Clauses {
		a, b, c := assignment[cl[0]], assignment[cl[1]], assignment[cl[2]]
		if a == b && b == c {
			return false
		}
	}
	return true
}

// Solve brute-forces the instance, returning a satisfying assignment or
// nil. Exponential in NumVars; intended for the small instances used to
// validate the reduction. A property of NAE-3SAT (noted in Section IV) is
// that the negation of any solution is also a solution, so Solve pins
// variable 0 to false and still finds a witness whenever one exists.
func (in Instance) Solve() []bool {
	if err := in.Validate(); err != nil {
		return nil
	}
	n := in.NumVars
	assignment := make([]bool, n)
	for mask := uint64(0); mask < uint64(1)<<(n-1); mask++ {
		for i := 1; i < n; i++ {
			assignment[i] = mask&(1<<(i-1)) != 0
		}
		if in.Satisfied(assignment) {
			return append([]bool{}, assignment...)
		}
	}
	return nil
}

// Random returns a uniformly random instance with the given shape, for
// the reduction's equivalence tests. NumVars must be >= 3.
func Random(rng *rand.Rand, numVars, numClauses int) Instance {
	if numVars < 3 {
		panic("nae: Random needs >= 3 variables")
	}
	in := Instance{NumVars: numVars}
	for c := 0; c < numClauses; c++ {
		perm := rng.Perm(numVars)[:3]
		cl := [3]int{perm[0], perm[1], perm[2]}
		if cl[0] > cl[1] {
			cl[0], cl[1] = cl[1], cl[0]
		}
		if cl[1] > cl[2] {
			cl[1], cl[2] = cl[2], cl[1]
		}
		if cl[0] > cl[1] {
			cl[0], cl[1] = cl[1], cl[0]
		}
		in.Clauses = append(in.Clauses, cl)
	}
	return in
}
