package nae

import (
	"math/rand"
	"testing"
)

func TestInstanceValidate(t *testing.T) {
	good := Instance{NumVars: 3, Clauses: [][3]int{{0, 1, 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good instance rejected: %v", err)
	}
	bad := []Instance{
		{NumVars: 0, Clauses: [][3]int{{0, 1, 2}}},
		{NumVars: 3},
		{NumVars: 3, Clauses: [][3]int{{0, 2, 1}}},
		{NumVars: 3, Clauses: [][3]int{{0, 1, 3}}},
		{NumVars: 3, Clauses: [][3]int{{1, 1, 2}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestSatisfied(t *testing.T) {
	in := Instance{NumVars: 3, Clauses: [][3]int{{0, 1, 2}}}
	if in.Satisfied([]bool{true, true, true}) {
		t.Error("all-true satisfies NAE clause")
	}
	if in.Satisfied([]bool{false, false, false}) {
		t.Error("all-false satisfies NAE clause")
	}
	if !in.Satisfied([]bool{true, false, true}) {
		t.Error("mixed does not satisfy")
	}
	if in.Satisfied([]bool{true}) {
		t.Error("short assignment accepted")
	}
}

func TestSolveFindsWitness(t *testing.T) {
	in := Instance{NumVars: 3, Clauses: [][3]int{{0, 1, 2}}}
	w := in.Solve()
	if w == nil || !in.Satisfied(w) {
		t.Fatalf("Solve = %v", w)
	}
}

func TestSolveNegationSymmetry(t *testing.T) {
	// If a solution exists, its negation is one too (Section IV); Solve
	// exploits this by pinning variable 0, so it must still find a witness
	// for instances whose "canonical" solutions set variable 0 true.
	in := Instance{NumVars: 4, Clauses: [][3]int{{0, 1, 2}, {0, 1, 3}, {1, 2, 3}}}
	w := in.Solve()
	if w == nil {
		t.Fatal("satisfiable instance unsolved")
	}
	neg := make([]bool, len(w))
	for i, v := range w {
		neg[i] = !v
	}
	if !in.Satisfied(neg) {
		t.Error("negated witness does not satisfy")
	}
}

func TestSolveDetectsUnsatisfiable(t *testing.T) {
	// With 3 variables, forcing every triple to be not-all-equal is
	// satisfiable; build an unsatisfiable instance by combining clauses
	// over 4 variables that force a contradiction. The complete set of
	// all 4 triples over {0,1,2,3} requires every 3-subset mixed; an
	// assignment with two true/two false works, so that is satisfiable
	// too. A genuinely unsatisfiable NAE instance needs repetition of
	// structure; verify instead that Solve agrees with direct enumeration
	// on random instances.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		in := Random(rng, 3+rng.Intn(3), 1+rng.Intn(6))
		want := false
		n := in.NumVars
		assignment := make([]bool, n)
		for mask := 0; mask < 1<<n; mask++ {
			for i := 0; i < n; i++ {
				assignment[i] = mask&(1<<i) != 0
			}
			if in.Satisfied(assignment) {
				want = true
				break
			}
		}
		got := in.Solve() != nil
		if got != want {
			t.Fatalf("trial %d: Solve=%v enumeration=%v (instance %+v)", trial, got, want, in)
		}
	}
}

func TestRandomInstancesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		in := Random(rng, 3+rng.Intn(4), 1+rng.Intn(5))
		if err := in.Validate(); err != nil {
			t.Fatalf("Random produced invalid instance: %v", err)
		}
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	bad := Instance{NumVars: 0, Clauses: [][3]int{{0, 1, 2}}}
	if got := bad.Solve(); got != nil {
		t.Fatalf("invalid instance solved: %v", got)
	}
}

func TestTerminalAndClauseLayer(t *testing.T) {
	in := Instance{NumVars: 3, Clauses: [][3]int{{0, 1, 2}}}
	l, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if l.ClauseLayer(0) != 1 {
		t.Fatalf("ClauseLayer(0) = %d", l.ClauseLayer(0))
	}
	for w := 0; w < 3; w++ {
		term := l.Terminal(0, w)
		chain := l.WireChains[0][w]
		if term != chain[len(chain)-1] {
			t.Fatalf("Terminal(0,%d) mismatch", w)
		}
	}
	if TubeColumn(2) != 5 {
		t.Fatalf("TubeColumn(2) = %d", TubeColumn(2))
	}
}
