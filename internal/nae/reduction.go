package nae

import (
	"fmt"

	"stencilivc/internal/grid"
)

// K is the color budget of the reduction: the constructed 27-pt stencil is
// colorable with at most K colors iff the NAE-3SAT instance is positive
// (Section IV builds the decision instance with maxcolor = 14).
const K = 14

// Weights used by the construction.
const (
	wireWeight   = 7 // every tube/wire cell; two adjacent 7s must split [0,14)
	clauseWeight = 3 // the three pairwise-adjacent clause cells
)

// Layout is the constructed 3DS-IVC instance along with the positions of
// every gadget, so colorings can be encoded from assignments and decoded
// back.
//
// Geometry (0-based coordinates), re-derived from the invariants stated in
// Section IV (the paper's right-hand-side table is garbled in the
// available text; DESIGN.md documents the re-derivation):
//
//   - Grid X×Y×Z with X = 2n+6, Y = 9, Z = 4m.
//   - Variable i owns column x_i = 2i+1. Its *tube* zig-zags along z:
//     weight 7 at (x_i, 0, z) for even z and (x_i, 1, z) for odd z, an
//     induced path whose colors must alternate between [0,7) and [7,14).
//   - Clause j owns layer z_j = 4j+1 (always odd, so tubes surface at y = 1 there) and
//     the layer above, z_j+1, hosts its three weight-3 cells
//     A=(u,6), B=(u+1,6), C=(u,7) with u = 2n+3 — pairwise adjacent.
//   - Three *wires* (induced paths of 7s, diagonal corners so that no two
//     non-consecutive cells touch) connect the clause's tubes to the
//     gadget; wire w ends at a terminal adjacent to exactly one of the
//     three 3s. All three wire lengths have equal parity, so the three
//     terminal polarities equal the three variable polarities up to one
//     shared flip.
//
// With maxcolor = 14 every 7 adjacent to another 7 is forced into [0,7) or
// [7,14) ("polarity"). If a clause's three terminals share one polarity,
// its three 3s are confined to the 7 remaining colors while needing 9 —
// infeasible; with mixed polarities the 3s fit. Hence colorable in 14 iff
// the instance is NAE-satisfiable.
type Layout struct {
	Inst Instance
	Grid *grid.Grid3D
	// U is the gadget anchor column 2n+3.
	U int
	// TubeCells[i][z] is the vertex id of variable i's tube cell in layer z.
	TubeCells [][]int
	// WireChains[j][w] lists wire w of clause j in chain order, from the
	// cell adjacent to the tube up to the terminal.
	WireChains [][3][]int
	// Threes[j][w] is the weight-3 vertex touched by wire w's terminal.
	Threes [][3]int
}

// ClauseLayer returns the z coordinate of clause j's wire layer.
func (l *Layout) ClauseLayer(j int) int { return 4*j + 1 }

// TubeColumn returns the x coordinate of variable i's tube.
func TubeColumn(i int) int { return 2*i + 1 }

// Build constructs the 3DS-IVC instance of the reduction.
func Build(inst Instance) (*Layout, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n, m := inst.NumVars, len(inst.Clauses)
	X, Y, Z := 2*n+6, 9, 4*m
	g, err := grid.NewGrid3D(X, Y, Z)
	if err != nil {
		return nil, fmt.Errorf("nae: grid allocation: %w", err)
	}
	l := &Layout{Inst: inst, Grid: g, U: 2*n + 3}

	// set places weight w at (x,y,z), failing on collisions: overlapping
	// gadgets would silently break the polarity argument.
	set := func(x, y, z int, w int64) (int, error) {
		if x < 0 || x >= X || y < 0 || y >= Y || z < 0 || z >= Z {
			return 0, fmt.Errorf("nae: cell (%d,%d,%d) outside %dx%dx%d", x, y, z, X, Y, Z)
		}
		id := g.ID(x, y, z)
		if g.W[id] != 0 {
			return 0, fmt.Errorf("nae: gadget collision at (%d,%d,%d)", x, y, z)
		}
		g.W[id] = w
		return id, nil
	}

	// Tubes.
	l.TubeCells = make([][]int, n)
	for i := 0; i < n; i++ {
		xi := TubeColumn(i)
		l.TubeCells[i] = make([]int, Z)
		for z := 0; z < Z; z++ {
			y := z % 2 // 0 on even layers, 1 on odd (clause) layers
			id, err := set(xi, y, z, wireWeight)
			if err != nil {
				return nil, err
			}
			l.TubeCells[i][z] = id
		}
	}

	u := l.U
	l.WireChains = make([][3][]int, m)
	l.Threes = make([][3]int, m)
	for j, cl := range inst.Clauses {
		z := l.ClauseLayer(j)

		// Wire 0 (smallest variable): climb to y=7, run along y=8, end at
		// (u-1, 8); terminal touches the 3 at C=(u,7,z+1).
		xa := TubeColumn(cl[0])
		var chain0 []int
		for y := 2; y <= 7; y++ {
			id, err := set(xa, y, z, wireWeight)
			if err != nil {
				return nil, err
			}
			chain0 = append(chain0, id)
		}
		for x := xa + 1; x <= u-1; x++ {
			id, err := set(x, 8, z, wireWeight)
			if err != nil {
				return nil, err
			}
			chain0 = append(chain0, id)
		}

		// Wire 1: climb to y=5, diagonal to (x_b+1, 6), run along y=6 to
		// u-2, diagonal terminal at (u-1, 5); touches A=(u,6,z+1).
		xb := TubeColumn(cl[1])
		var chain1 []int
		for y := 2; y <= 5; y++ {
			id, err := set(xb, y, z, wireWeight)
			if err != nil {
				return nil, err
			}
			chain1 = append(chain1, id)
		}
		for x := xb + 1; x <= u-2; x++ {
			id, err := set(x, 6, z, wireWeight)
			if err != nil {
				return nil, err
			}
			chain1 = append(chain1, id)
		}
		id1, err := set(u-1, 5, z, wireWeight)
		if err != nil {
			return nil, err
		}
		chain1 = append(chain1, id1)

		// Wire 2 (largest variable): single cell at y=2, diagonal onto the
		// y=3 row, run to (u, 3), then diagonals (u+1,4) and the terminal
		// (u+2, 5); touches B=(u+1,6,z+1).
		xc := TubeColumn(cl[2])
		var chain2 []int
		id2, err := set(xc, 2, z, wireWeight)
		if err != nil {
			return nil, err
		}
		chain2 = append(chain2, id2)
		for x := xc + 1; x <= u; x++ {
			id, err := set(x, 3, z, wireWeight)
			if err != nil {
				return nil, err
			}
			chain2 = append(chain2, id)
		}
		for _, cell := range [][2]int{{u + 1, 4}, {u + 2, 5}} {
			id, err := set(cell[0], cell[1], z, wireWeight)
			if err != nil {
				return nil, err
			}
			chain2 = append(chain2, id)
		}

		l.WireChains[j] = [3][]int{chain0, chain1, chain2}

		// The three 3s, in the layer above the wires. Wire 0's terminal
		// touches C, wire 1's touches A, wire 2's touches B.
		idA, err := set(u, 6, z+1, clauseWeight)
		if err != nil {
			return nil, err
		}
		idB, err := set(u+1, 6, z+1, clauseWeight)
		if err != nil {
			return nil, err
		}
		idC, err := set(u, 7, z+1, clauseWeight)
		if err != nil {
			return nil, err
		}
		l.Threes[j] = [3]int{idC, idA, idB}
	}
	return l, nil
}

// Terminal returns the terminal (last chain cell) of wire w of clause j.
func (l *Layout) Terminal(j, w int) int {
	chain := l.WireChains[j][w]
	return chain[len(chain)-1]
}
