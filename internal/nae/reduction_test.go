package nae

import (
	"math/rand"
	"testing"

	"stencilivc/internal/exact"
)

func mustBuild(t *testing.T, in Instance) *Layout {
	t.Helper()
	l, err := Build(in)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return l
}

func adjacent(l *Layout, a, b int) bool {
	for _, u := range l.Grid.Neighbors(a, nil) {
		if u == b {
			return true
		}
	}
	return false
}

func TestBuildRejectsInvalidInstance(t *testing.T) {
	if _, err := Build(Instance{NumVars: 2, Clauses: [][3]int{{0, 1, 2}}}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestBuildDimensions(t *testing.T) {
	in := Instance{NumVars: 3, Clauses: [][3]int{{0, 1, 2}, {0, 1, 2}}}
	l := mustBuild(t, in)
	if l.Grid.X != 12 || l.Grid.Y != 9 || l.Grid.Z != 8 {
		t.Fatalf("grid %dx%dx%d, want 12x9x8", l.Grid.X, l.Grid.Y, l.Grid.Z)
	}
	if l.U != 9 {
		t.Errorf("U = %d, want 9", l.U)
	}
}

// TestTubesAreInducedAlternatingChains: consecutive tube cells are
// adjacent, non-consecutive ones are not, and all carry weight 7.
func TestTubesAreInducedAlternatingChains(t *testing.T) {
	in := Instance{NumVars: 4, Clauses: [][3]int{{0, 1, 2}, {1, 2, 3}}}
	l := mustBuild(t, in)
	for i, tube := range l.TubeCells {
		for z, id := range tube {
			if l.Grid.W[id] != 7 {
				t.Fatalf("tube %d layer %d weight %d", i, z, l.Grid.W[id])
			}
			if z > 0 && !adjacent(l, tube[z-1], id) {
				t.Fatalf("tube %d break between layers %d and %d", i, z-1, z)
			}
			for z2 := 0; z2 < z-1; z2++ {
				if adjacent(l, tube[z2], id) {
					t.Fatalf("tube %d chord between layers %d and %d", i, z2, z)
				}
			}
		}
	}
	// Tubes of different variables never touch.
	for i := range l.TubeCells {
		for i2 := i + 1; i2 < len(l.TubeCells); i2++ {
			for _, a := range l.TubeCells[i] {
				for _, b := range l.TubeCells[i2] {
					if adjacent(l, a, b) {
						t.Fatalf("tubes %d and %d touch", i, i2)
					}
				}
			}
		}
	}
}

// TestWiresAreInducedChains: each wire is an induced path of 7s whose
// first cell touches exactly its own tube's clause-layer cell, and wires
// of the same clause never touch each other.
func TestWiresAreInducedChains(t *testing.T) {
	in := Instance{NumVars: 4, Clauses: [][3]int{{0, 1, 3}, {0, 2, 3}}}
	l := mustBuild(t, in)
	for j, cl := range in.Clauses {
		z := l.ClauseLayer(j)
		for w := 0; w < 3; w++ {
			chain := l.WireChains[j][w]
			tubeCell := l.TubeCells[cl[w]][z]
			if !adjacent(l, tubeCell, chain[0]) {
				t.Fatalf("clause %d wire %d not connected to its tube", j, w)
			}
			for t2 := 1; t2 < len(chain); t2++ {
				if !adjacent(l, chain[t2-1], chain[t2]) {
					t.Fatalf("clause %d wire %d break at %d", j, w, t2)
				}
			}
			for a := 0; a < len(chain); a++ {
				if l.Grid.W[chain[a]] != 7 {
					t.Fatalf("clause %d wire %d cell %d weight %d", j, w, a, l.Grid.W[chain[a]])
				}
				for b := a + 2; b < len(chain); b++ {
					if adjacent(l, chain[a], chain[b]) {
						t.Fatalf("clause %d wire %d chord %d-%d", j, w, a, b)
					}
				}
				// Wire cells beyond the first must not touch the tube
				// (that would create a polarity shortcut).
				if a >= 2 && adjacent(l, tubeCell, chain[a]) {
					t.Fatalf("clause %d wire %d cell %d touches tube", j, w, a)
				}
			}
			// No contact with tubes of other variables.
			for i := range l.TubeCells {
				if i == cl[w] {
					continue
				}
				for _, tc := range l.TubeCells[i] {
					for _, wc := range chain {
						if adjacent(l, tc, wc) {
							t.Fatalf("clause %d wire %d touches tube %d", j, w, i)
						}
					}
				}
			}
		}
		// Wires of one clause are pairwise non-adjacent.
		for w := 0; w < 3; w++ {
			for w2 := w + 1; w2 < 3; w2++ {
				for _, a := range l.WireChains[j][w] {
					for _, b := range l.WireChains[j][w2] {
						if adjacent(l, a, b) {
							t.Fatalf("clause %d wires %d and %d touch", j, w, w2)
						}
					}
				}
			}
		}
	}
}

// TestWireParityUniformPerClause: all three wires of a clause have
// equal-length parity, the invariant the polarity argument needs.
func TestWireParityUniformPerClause(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		in := Random(rng, 3+rng.Intn(4), 1+rng.Intn(4))
		l := mustBuild(t, in)
		for j := range in.Clauses {
			p0 := len(l.WireChains[j][0]) % 2
			for w := 1; w < 3; w++ {
				if len(l.WireChains[j][w])%2 != p0 {
					t.Fatalf("clause %d wire %d parity differs (lengths %d,%d,%d)",
						j, w, len(l.WireChains[j][0]), len(l.WireChains[j][1]), len(l.WireChains[j][2]))
				}
			}
		}
	}
}

// TestClauseGadgetAdjacency: the three 3s are pairwise adjacent; each 3
// touches, among all nonzero cells, exactly its own terminal and the two
// other 3s.
func TestClauseGadgetAdjacency(t *testing.T) {
	in := Instance{NumVars: 5, Clauses: [][3]int{{0, 2, 4}, {1, 2, 3}, {0, 1, 4}}}
	l := mustBuild(t, in)
	for j := range in.Clauses {
		threes := l.Threes[j]
		for w := 0; w < 3; w++ {
			if l.Grid.W[threes[w]] != 3 {
				t.Fatalf("clause %d three %d has weight %d", j, w, l.Grid.W[threes[w]])
			}
			for w2 := w + 1; w2 < 3; w2++ {
				if !adjacent(l, threes[w], threes[w2]) {
					t.Fatalf("clause %d threes %d,%d not adjacent", j, w, w2)
				}
			}
		}
		for w := 0; w < 3; w++ {
			three := threes[w]
			term := l.Terminal(j, w)
			if !adjacent(l, three, term) {
				t.Fatalf("clause %d three %d misses its terminal", j, w)
			}
			// Enumerate every nonzero neighbor; only the terminal and the
			// two sibling 3s are allowed.
			for _, u := range l.Grid.Neighbors(three, nil) {
				if l.Grid.W[u] == 0 {
					continue
				}
				if u == term || u == threes[(w+1)%3] || u == threes[(w+2)%3] {
					continue
				}
				x, y, z := l.Grid.Coords(u)
				t.Fatalf("clause %d three %d touches unexpected cell (%d,%d,%d) w=%d",
					j, w, x, y, z, l.Grid.W[u])
			}
		}
	}
}

// TestAssignmentColoringValid: for satisfiable instances, the constructed
// coloring is valid with maxcolor <= 14 — the forward direction of the
// reduction, checked by the generic validator rather than by the
// construction's own reasoning.
func TestAssignmentColoringValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	built := 0
	for trial := 0; trial < 20 && built < 8; trial++ {
		in := Random(rng, 3+rng.Intn(3), 1+rng.Intn(4))
		w := in.Solve()
		if w == nil {
			continue
		}
		built++
		l := mustBuild(t, in)
		c, err := AssignmentColoring(l, w)
		if err != nil {
			t.Fatalf("AssignmentColoring: %v", err)
		}
		if err := c.Validate(l.Grid); err != nil {
			t.Fatalf("constructed coloring invalid: %v", err)
		}
		if mc := c.MaxColor(l.Grid); mc > K {
			t.Fatalf("constructed coloring uses %d > %d colors", mc, K)
		}
		// Decoding the constructed coloring returns a satisfying
		// assignment (not necessarily w itself).
		back := DecodeAssignment(l, c)
		if !in.Satisfied(back) {
			t.Fatalf("decoded assignment unsatisfying: %v", back)
		}
	}
	if built < 3 {
		t.Fatalf("too few satisfiable instances exercised: %d", built)
	}
}

func TestAssignmentColoringRejectsBadAssignment(t *testing.T) {
	in := Instance{NumVars: 3, Clauses: [][3]int{{0, 1, 2}}}
	l := mustBuild(t, in)
	if _, err := AssignmentColoring(l, []bool{true, true, true}); err == nil {
		t.Error("unsatisfying assignment accepted")
	}
}

// TestReductionEquivalence is the end-to-end theorem check: the CP
// decision procedure on the constructed 27-pt stencil at K=14 agrees with
// brute-forced NAE-3SAT satisfiability, and feasible witnesses decode to
// satisfying assignments.
func TestReductionEquivalence(t *testing.T) {
	instances := []Instance{
		{NumVars: 3, Clauses: [][3]int{{0, 1, 2}}},
		{NumVars: 4, Clauses: [][3]int{{0, 1, 2}, {1, 2, 3}}},
		{NumVars: 4, Clauses: [][3]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}},
		{NumVars: 3, Clauses: [][3]int{{0, 1, 2}, {0, 1, 2}}},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		instances = append(instances, Random(rng, 3+rng.Intn(2), 1+rng.Intn(3)))
	}
	for idx, in := range instances {
		l := mustBuild(t, in)
		want := in.Solve() != nil
		verdict, witness := exact.Decide(l.Grid, K, exact.DecideOptions{
			NodeBudget: 5_000_000,
		})
		if verdict == exact.Unknown {
			t.Fatalf("instance %d: decision budget exhausted", idx)
		}
		got := verdict == exact.Feasible
		if got != want {
			t.Fatalf("instance %d (%+v): colorable=%v, NAE satisfiable=%v", idx, in, got, want)
		}
		if got {
			if err := witness.Validate(l.Grid); err != nil {
				t.Fatalf("instance %d: witness invalid: %v", idx, err)
			}
			back := DecodeAssignment(l, witness)
			if !in.Satisfied(back) {
				t.Fatalf("instance %d: decoded witness %v unsatisfying", idx, back)
			}
		}
	}
}
