// Package sched turns an interval coloring into the parallel task DAG of
// Section VII and provides a deterministic P-processor list-scheduling
// simulator plus critical-path analysis. The paper hands the same DAG to
// OpenMP's task runtime; the simulator is the machine-noise-free analogue
// used by the experiments, while package stkde executes the DAG for real
// on goroutines.
package sched

import (
	"fmt"

	"stencilivc/internal/core"
)

// DAG is a dependency graph over the vertices of a colored conflict
// graph: every conflict edge is oriented from the lower color interval to
// the higher one, so an execution that respects the DAG never runs two
// conflicting tasks concurrently.
type DAG struct {
	// Duration[v] is task v's execution time (its weight).
	Duration []int64
	// Succs[v] lists tasks that depend on v.
	Succs [][]int32
	// Preds counts incoming dependencies per task.
	Preds []int32
	// Priority[v] is the color interval start, the order hint the paper
	// passes to the OpenMP runtime (tasks created in increasing start).
	Priority []int64
}

// Build orients the conflict edges of g by the coloring c. The coloring
// must be complete and valid. Zero-weight tasks conflict with nothing
// (their color interval is empty), so they take no dependency edges and
// appear as isolated zero-duration tasks; keeping them edge-free is what
// preserves the critical-path <= maxcolor invariant, since an empty
// interval's start says nothing about its neighbors' intervals.
func Build(g core.Graph, c core.Coloring) (*DAG, error) {
	if err := c.Validate(g); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	n := g.Len()
	d := &DAG{
		Duration: make([]int64, n),
		Succs:    make([][]int32, n),
		Preds:    make([]int32, n),
		Priority: make([]int64, n),
	}
	var buf []int
	for v := 0; v < n; v++ {
		d.Duration[v] = g.Weight(v)
		d.Priority[v] = c.Start[v]
		if g.Weight(v) == 0 {
			continue
		}
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u <= v || g.Weight(u) == 0 {
				continue
			}
			lo, hi := v, u
			if c.Start[u] < c.Start[v] || (c.Start[u] == c.Start[v] && u < v) {
				lo, hi = u, v
			}
			d.Succs[lo] = append(d.Succs[lo], int32(hi))
			d.Preds[hi]++
		}
	}
	return d, nil
}

// Len returns the number of tasks.
func (d *DAG) Len() int { return len(d.Duration) }

// TotalWork returns the sum of all task durations.
func (d *DAG) TotalWork() int64 {
	var sum int64
	for _, w := range d.Duration {
		sum += w
	}
	return sum
}

// CriticalPath returns the longest duration-weighted path through the
// DAG. Because every path's tasks have pairwise disjoint, increasing
// color intervals, the critical path never exceeds the coloring's
// maxcolor — the link the paper draws between colors and runtime.
func (d *DAG) CriticalPath() int64 {
	n := d.Len()
	// Kahn order; the DAG is acyclic by construction (edges follow
	// strictly increasing (start, id) pairs).
	indeg := append([]int32{}, d.Preds...)
	queue := make([]int, 0, n)
	finish := make([]int64, n)
	var best int64
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
			finish[v] = d.Duration[v]
			best = max(best, finish[v])
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range d.Succs[v] {
			finish[u] = max(finish[u], finish[v]+d.Duration[u])
			best = max(best, finish[u])
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, int(u))
			}
		}
	}
	return best
}
