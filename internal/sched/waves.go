package sched

import (
	"fmt"
	"sort"

	"stencilivc/internal/core"
)

// ColorClasses partitions the positive-weight vertices of g into
// conflict-free classes with a classic (unweighted) greedy distance-1
// coloring in vertex order — the traditional "color the graph, run one
// color per wave" parallelization that interval coloring refines. The
// returned classes are ordered by class color; zero-weight vertices are
// omitted (they do no work and conflict with nothing).
func ColorClasses(g core.Graph) [][]int {
	n := g.Len()
	color := make([]int, n)
	for v := range color {
		color[v] = -1
	}
	var classes [][]int
	var buf []int
	var used []bool
	for v := 0; v < n; v++ {
		if g.Weight(v) == 0 {
			continue
		}
		used = used[:0]
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if c := color[u]; c >= 0 {
				for len(used) <= c {
					used = append(used, false)
				}
				used[c] = true
			}
		}
		c := 0
		for c < len(used) && used[c] {
			c++
		}
		color[v] = c
		for len(classes) <= c {
			classes = append(classes, nil)
		}
		classes[c] = append(classes[c], v)
	}
	return classes
}

// SimulateWaves models barrier-synchronized execution: each class runs to
// completion on p processors (longest-task-first within the wave) before
// the next class starts. The result upper-bounds what an interval-
// coloring DAG execution needs, quantifying the benefit of removing the
// barriers (the ablation behind Section VII's design choice).
func SimulateWaves(g core.Graph, classes [][]int, p int) (int64, error) {
	if p < 1 {
		return 0, fmt.Errorf("sched: need >= 1 processor, got %d", p)
	}
	seen := make([]bool, g.Len())
	var makespan int64
	for _, class := range classes {
		// Within a wave, tasks are independent: greedy LPT assignment.
		tasks := append([]int{}, class...)
		for _, v := range tasks {
			if v < 0 || v >= g.Len() {
				return 0, fmt.Errorf("sched: class vertex %d out of range", v)
			}
			if seen[v] {
				return 0, fmt.Errorf("sched: vertex %d appears in two classes", v)
			}
			seen[v] = true
		}
		sort.SliceStable(tasks, func(a, b int) bool {
			return g.Weight(tasks[a]) > g.Weight(tasks[b])
		})
		loads := make([]int64, p)
		for _, v := range tasks {
			// Place on the least-loaded processor.
			best := 0
			for w := 1; w < p; w++ {
				if loads[w] < loads[best] {
					best = w
				}
			}
			loads[best] += g.Weight(v)
		}
		var wave int64
		for _, l := range loads {
			wave = max(wave, l)
		}
		makespan += wave
	}
	return makespan, nil
}
