package sched

import (
	"math/rand"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/heuristics"
)

func coloredGrid(t *testing.T, rng *rand.Rand, x, y int) (*grid.Grid2D, core.Coloring) {
	t.Helper()
	g := grid.MustGrid2D(x, y)
	for v := range g.W {
		g.W[v] = rng.Int63n(9)
	}
	c, err := heuristics.Run2D(heuristics.BDP, g)
	if err != nil {
		t.Fatal(err)
	}
	return g, c
}

func TestBuildRejectsInvalidColoring(t *testing.T) {
	g := grid.MustGrid2D(2, 2)
	for v := range g.W {
		g.W[v] = 1
	}
	c := core.NewColoring(4) // all unset
	if _, err := Build(g, c); err == nil {
		t.Error("invalid coloring accepted")
	}
}

func TestBuildOrientsAllConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, c := coloredGrid(t, rng, 4, 3)
	d, err := Build(g, c)
	if err != nil {
		t.Fatal(err)
	}
	// Every conflict edge between positive tasks appears exactly once,
	// oriented low->high start; zero-weight tasks are edge-free.
	edges := 0
	for v := range d.Succs {
		for _, u := range d.Succs[v] {
			edges++
			if c.Start[int(u)] < c.Start[v] {
				t.Fatalf("edge %d->%d against color order", v, u)
			}
			if g.W[v] == 0 || g.W[u] == 0 {
				t.Fatalf("zero-weight task in edge %d->%d", v, u)
			}
		}
	}
	want := 0
	var buf []int
	for v := 0; v < g.Len(); v++ {
		if g.W[v] == 0 {
			continue
		}
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u > v && g.W[u] > 0 {
				want++
			}
		}
	}
	if edges != want {
		t.Fatalf("oriented %d of %d positive edges", edges, want)
	}
	// Preds must agree with Succs.
	preds := make([]int32, d.Len())
	for v := range d.Succs {
		for _, u := range d.Succs[v] {
			preds[u]++
		}
	}
	for v := range preds {
		if preds[v] != d.Preds[v] {
			t.Fatalf("pred count mismatch at %d", v)
		}
	}
}

func TestCriticalPathBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		g, c := coloredGrid(t, rng, 2+rng.Intn(6), 2+rng.Intn(6))
		d, err := Build(g, c)
		if err != nil {
			t.Fatal(err)
		}
		cp := d.CriticalPath()
		mc := c.MaxColor(g)
		// Any DAG path's intervals are disjoint and increasing, so the
		// critical path cannot exceed maxcolor.
		if cp > mc {
			t.Fatalf("critical path %d exceeds maxcolor %d", cp, mc)
		}
		if mw := core.MaxWeight(g); cp < mw {
			t.Fatalf("critical path %d below max task %d", cp, mw)
		}
	}
}

func TestCriticalPathChain(t *testing.T) {
	// A clique forces a chain: critical path == total work == maxcolor.
	weights := []int64{3, 1, 4}
	g := core.Clique(weights)
	starts, _ := []int64{0, 3, 4}, 0
	c := core.Coloring{Start: starts}
	d, err := Build(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if cp := d.CriticalPath(); cp != 8 {
		t.Fatalf("clique critical path = %d, want 8", cp)
	}
}

func TestSimulateSingleWorkerSerializes(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g, c := coloredGrid(t, rng, 4, 4)
	d, err := Build(g, c)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Simulate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != d.TotalWork() {
		t.Fatalf("P=1 makespan %d != total work %d", s.Makespan, d.TotalWork())
	}
}

func TestSimulateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 15; trial++ {
		g, c := coloredGrid(t, rng, 2+rng.Intn(7), 2+rng.Intn(7))
		d, err := Build(g, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 16} {
			s, err := Simulate(d, p)
			if err != nil {
				t.Fatal(err)
			}
			if s.Makespan < d.CriticalPath() {
				t.Fatalf("P=%d makespan %d below critical path %d", p, s.Makespan, d.CriticalPath())
			}
			if work := d.TotalWork(); int64(p)*s.Makespan < work {
				t.Fatalf("P=%d makespan %d under-accounts work %d", p, s.Makespan, work)
			}
		}
	}
}

// TestSimulateNoConflictOverlap: the schedule never runs two conflicting
// tasks at overlapping times — the safety property that lets STKDE write
// to shared voxels without races.
func TestSimulateNoConflictOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g, c := coloredGrid(t, rng, 5, 5)
	d, err := Build(g, c)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Simulate(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf []int
	for v := 0; v < g.Len(); v++ {
		if g.W[v] == 0 {
			continue
		}
		iv := core.NewInterval(s.Start[v], g.W[v])
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u <= v || g.W[u] == 0 {
				continue
			}
			if iv.Overlaps(core.NewInterval(s.Start[u], g.W[u])) {
				t.Fatalf("conflicting tasks %d and %d overlap in time", v, u)
			}
		}
	}
}

func TestSimulateMoreWorkersNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g, c := coloredGrid(t, rng, 6, 6)
	d, err := Build(g, c)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, p := range []int{1, 2, 4, 8} {
		s, err := Simulate(d, p)
		if err != nil {
			t.Fatal(err)
		}
		// List scheduling anomalies exist in general, but with this
		// priority rule and grid DAGs the makespan should not grow much;
		// assert it never more than doubles, and usually shrinks.
		if prev >= 0 && s.Makespan > prev*2 {
			t.Fatalf("P=%d makespan %d more than doubled from %d", p, s.Makespan, prev)
		}
		prev = s.Makespan
	}
}

func TestSimulateRejectsBadWorkerCount(t *testing.T) {
	d := &DAG{Duration: []int64{1}, Succs: make([][]int32, 1), Preds: make([]int32, 1), Priority: []int64{0}}
	if _, err := Simulate(d, 0); err == nil {
		t.Error("0 workers accepted")
	}
}

func TestSimulateZeroWeightTasks(t *testing.T) {
	g := grid.MustGrid2D(3, 1)
	g.W[1] = 5 // others zero
	c, err := heuristics.Run2D(heuristics.GLL, g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(g, c)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Simulate(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 5 {
		t.Fatalf("makespan %d, want 5", s.Makespan)
	}
}
