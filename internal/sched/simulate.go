package sched

import (
	"container/heap"
	"fmt"
)

// Schedule is the outcome of a simulated execution.
type Schedule struct {
	// Makespan is the completion time of the last task.
	Makespan int64
	// Start[v] is when task v began executing.
	Start []int64
	// Worker[v] is the processor that ran task v.
	Worker []int
}

// Simulate list-schedules the DAG on p identical processors: whenever a
// processor is free, it takes the ready task with the smallest
// (Priority, id) — the order the paper creates OpenMP tasks in. The
// simulation is deterministic, so experiments comparing colorings see
// scheduling effects only, never timer noise.
func Simulate(d *DAG, p int) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("sched: need >= 1 processor, got %d", p)
	}
	n := d.Len()
	s := &Schedule{
		Start:  make([]int64, n),
		Worker: make([]int, n),
	}
	indeg := append([]int32{}, d.Preds...)
	ready := &taskHeap{prio: d.Priority}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.Push(ready, v)
		}
	}
	running := &eventHeap{}
	freeWorkers := make([]int, 0, p)
	for w := p - 1; w >= 0; w-- {
		freeWorkers = append(freeWorkers, w)
	}
	var now int64
	done := 0
	for done < n {
		// Dispatch while workers and ready tasks remain.
		for len(freeWorkers) > 0 && ready.Len() > 0 {
			v := heap.Pop(ready).(int)
			w := freeWorkers[len(freeWorkers)-1]
			freeWorkers = freeWorkers[:len(freeWorkers)-1]
			s.Start[v] = now
			s.Worker[v] = w
			heap.Push(running, event{at: now + d.Duration[v], task: v, worker: w})
		}
		if running.Len() == 0 {
			return nil, fmt.Errorf("sched: deadlock with %d of %d tasks done", done, n)
		}
		// Advance to the next completion; release everything finishing then.
		now = (*running)[0].at
		for running.Len() > 0 && (*running)[0].at == now {
			ev := heap.Pop(running).(event)
			freeWorkers = append(freeWorkers, ev.worker)
			done++
			for _, u := range d.Succs[ev.task] {
				indeg[u]--
				if indeg[u] == 0 {
					heap.Push(ready, int(u))
				}
			}
		}
		s.Makespan = max(s.Makespan, now)
	}
	return s, nil
}

// taskHeap orders ready tasks by (priority, id).
type taskHeap struct {
	prio  []int64
	items []int
}

func (h *taskHeap) Len() int { return len(h.items) }
func (h *taskHeap) Less(a, b int) bool {
	va, vb := h.items[a], h.items[b]
	if h.prio[va] != h.prio[vb] {
		return h.prio[va] < h.prio[vb]
	}
	return va < vb
}
func (h *taskHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *taskHeap) Push(x any)    { h.items = append(h.items, x.(int)) }
func (h *taskHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}

type event struct {
	at     int64
	task   int
	worker int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].task < h[b].task
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	last := old[len(old)-1]
	*h = old[:len(old)-1]
	return last
}
