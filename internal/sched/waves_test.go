package sched

import (
	"math/rand"
	"testing"

	"stencilivc/internal/grid"
	"stencilivc/internal/heuristics"
)

func TestColorClassesAreConflictFree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := grid.MustGrid2D(6, 5)
	for v := range g.W {
		g.W[v] = rng.Int63n(5)
	}
	classes := ColorClasses(g)
	var buf []int
	seen := map[int]bool{}
	positives := 0
	for _, class := range classes {
		inClass := map[int]bool{}
		for _, v := range class {
			if g.W[v] == 0 {
				t.Fatalf("zero-weight vertex %d in a class", v)
			}
			if seen[v] {
				t.Fatalf("vertex %d in two classes", v)
			}
			seen[v] = true
			inClass[v] = true
		}
		for _, v := range class {
			buf = g.Neighbors(v, buf[:0])
			for _, u := range buf {
				if inClass[u] {
					t.Fatalf("conflicting vertices %d and %d share a class", v, u)
				}
			}
		}
	}
	for v := 0; v < g.Len(); v++ {
		if g.W[v] > 0 {
			positives++
			if !seen[v] {
				t.Fatalf("positive vertex %d unclassed", v)
			}
		}
	}
	// A 9-pt stencil greedy distance-1 coloring needs at most Delta+1 = 9
	// classes.
	if len(classes) > 9 {
		t.Fatalf("classes = %d > 9 on a 9-pt stencil", len(classes))
	}
	_ = positives
}

// TestWavesRarelyBeatDAG quantifies the Section VII design choice: a
// barrier-synchronized classic-coloring execution is, in aggregate, no
// faster than the interval-coloring DAG execution under the same
// simulator. Individual instances may differ by a whisker (list
// scheduling is only an approximation), so the assertion is on totals.
func TestWavesRarelyBeatDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var totalDAG, totalWaves int64
	for trial := 0; trial < 15; trial++ {
		g := grid.MustGrid2D(3+rng.Intn(8), 3+rng.Intn(8))
		for v := range g.W {
			g.W[v] = rng.Int63n(12)
		}
		c, err := heuristics.Run2D(heuristics.BDP, g)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Build(g, c)
		if err != nil {
			t.Fatal(err)
		}
		classes := ColorClasses(g)
		for _, p := range []int{1, 4} {
			dag, err := Simulate(d, p)
			if err != nil {
				t.Fatal(err)
			}
			waves, err := SimulateWaves(g, classes, p)
			if err != nil {
				t.Fatal(err)
			}
			// Both schedules execute all work; with one processor each is
			// exactly the total work.
			if p == 1 {
				if waves != d.TotalWork() || dag.Makespan != d.TotalWork() {
					t.Fatalf("P=1 mismatch: waves=%d dag=%d work=%d",
						waves, dag.Makespan, d.TotalWork())
				}
				continue
			}
			totalDAG += dag.Makespan
			totalWaves += waves
			// No schedule can beat the work bound.
			if int64(p)*waves < d.TotalWork() {
				t.Fatalf("P=%d waves %d under-account work %d", p, waves, d.TotalWork())
			}
		}
	}
	if totalDAG > totalWaves {
		t.Errorf("DAG execution slower in aggregate: %d > %d", totalDAG, totalWaves)
	}
}

func TestSimulateWavesErrors(t *testing.T) {
	g := grid.MustGrid2D(2, 2)
	for v := range g.W {
		g.W[v] = 1
	}
	if _, err := SimulateWaves(g, [][]int{{0}}, 0); err == nil {
		t.Error("0 processors accepted")
	}
	if _, err := SimulateWaves(g, [][]int{{0}, {0}}, 2); err == nil {
		t.Error("duplicated vertex accepted")
	}
	if _, err := SimulateWaves(g, [][]int{{99}}, 2); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestSimulateWavesManyProcessors(t *testing.T) {
	// With unlimited processors, each wave costs its heaviest task; the
	// total is the sum of per-class maxima.
	g := grid.MustGrid2D(2, 2)
	copy(g.W, []int64{5, 3, 2, 7})
	classes := ColorClasses(g) // K4: four singleton classes
	if len(classes) != 4 {
		t.Fatalf("classes = %d, want 4 on K4", len(classes))
	}
	ms, err := SimulateWaves(g, classes, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 17 {
		t.Fatalf("makespan = %d, want 17", ms)
	}
}
