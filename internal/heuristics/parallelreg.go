package heuristics

import (
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/parallel"
)

// The tile-parallel speculative greedy solvers (extensions beyond the
// paper, internal/parallel). They honor SolveOptions.Parallelism as the
// tile-worker count, so -par accelerates a single solve, not just the
// portfolio. Registered with Paper=false: the All() evaluation matrix
// stays the paper's seven sequential algorithms.
const (
	// PGLL is tile-parallel greedy with tile-local line-by-line order.
	PGLL Algorithm = "PGLL"
	// PGLF is tile-parallel greedy with tile-local largest-first order.
	PGLF Algorithm = "PGLF"
)

func init() {
	MustRegister(Descriptor{
		Name: PGLL, Dims: DimBoth, Paper: false, Order: 101,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			return parallel.Greedy(s, parallel.Config{Order: parallel.OrderLine}, opts)
		},
	})
	MustRegister(Descriptor{
		Name: PGLF, Dims: DimBoth, Paper: false, Order: 102,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			return parallel.Greedy(s, parallel.Config{Order: parallel.OrderWeightDesc}, opts)
		},
	})
}
