//go:build race

package heuristics

// raceEnabled reports whether the race detector instruments this build;
// wall-clock latency bounds are meaningless under its ~10–20× slowdown.
const raceEnabled = true
