// Package heuristics implements the coloring algorithms evaluated in the
// paper (Section V): the greedy orderings GLL, GZO, and GLF (V-A); the
// clique-block heuristics GKF and SGK (V-A); and the Bipartite
// Decomposition approximation BD with its post-optimized variant BDP
// (V-B), a 2-approximation in 2D and 4-approximation in 3D. The BDL
// layer-decomposition extension and the tile-parallel PGLL/PGLF solvers
// register here too, outside the paper's seven-algorithm evaluation set.
//
// The package invariant: every solver returns a complete, valid coloring
// or an error — never a partial or conflicting one. Validity holds by
// construction (each placement uses the lowest-fit engine against all
// colored neighbors) and is re-verified by property tests.
//
// Dispatch is registry-based: each algorithm self-registers a Descriptor
// from init() in the file that implements it, and Run / Run2D / Run3D,
// All(), and the Portfolio runner all consult that one table. Solvers
// accept a *core.SolveOptions carrying a context (polled at line/block
// granularity, so huge grids are cancellable), a parallelism knob for
// portfolio runs and the parallel solvers, a stats sink, and the obsv
// trace/metrics handles; Run is the single place where a solve's span,
// wall time, allocations, and maxcolor are recorded.
package heuristics
