package heuristics

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
)

// DimMask says which grid dimensionalities an algorithm accepts.
type DimMask uint8

// The dimensionality bits.
const (
	Dim2D DimMask = 1 << iota // 9-pt stencils
	Dim3D                     // 27-pt stencils

	DimBoth = Dim2D | Dim3D
)

// Has reports whether the mask covers dims-dimensional instances.
func (m DimMask) Has(dims int) bool {
	switch dims {
	case 2:
		return m&Dim2D != 0
	case 3:
		return m&Dim3D != 0
	}
	return false
}

// String renders the mask as "2D", "3D", or "2D/3D".
func (m DimMask) String() string {
	switch m {
	case Dim2D:
		return "2D"
	case Dim3D:
		return "3D"
	case DimBoth:
		return "2D/3D"
	}
	return fmt.Sprintf("DimMask(%d)", uint8(m))
}

// SolveFunc is the uniform signature every registered algorithm exposes:
// a dimension-generic stencil instance plus the solve options (context,
// stats). Implementations type-switch to *grid.Grid2D / *grid.Grid3D when
// they are structurally per-dimension (BD's rows, BDL's layers) and are
// only ever called with an instance their DimMask accepts.
type SolveFunc func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error)

// Descriptor is one registry entry: a named algorithm, the dimensions it
// supports, whether it belongs to the paper's seven-algorithm evaluation
// set, its position in the paper's presentation order, and its solver.
type Descriptor struct {
	// Name is the registry key.
	Name Algorithm
	// Dims is the set of supported dimensionalities.
	Dims DimMask
	// Paper marks the algorithms of the paper's evaluation matrix; All()
	// returns exactly these. Extensions (BDL) register with Paper=false.
	Paper bool
	// Order sorts the paper set into the paper's presentation order and
	// breaks portfolio ties deterministically; lower runs/wins first.
	Order int
	// Fn runs the algorithm.
	Fn SolveFunc
}

// registry is the process-wide algorithm table. Algorithms self-register
// from init() in the file that implements them, so the table — not a
// switch statement — is the single source of dispatch truth for Run2D,
// Run3D, All(), the portfolio runner, and the cmd tools.
var registry = struct {
	mu     sync.RWMutex
	byName map[Algorithm]Descriptor
}{byName: map[Algorithm]Descriptor{}}

// Register adds an algorithm to the registry. It rejects empty names,
// nil solvers, empty dimension masks, and duplicate names.
func Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("heuristics: register: empty algorithm name")
	}
	if d.Fn == nil {
		return fmt.Errorf("heuristics: register %q: nil solve func", d.Name)
	}
	if d.Dims&DimBoth == 0 {
		return fmt.Errorf("heuristics: register %q: empty dimension mask", d.Name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[d.Name]; dup {
		return fmt.Errorf("heuristics: register %q: already registered", d.Name)
	}
	registry.byName[d.Name] = d
	return nil
}

// MustRegister is Register that panics on error; for init()-time
// registration where a failure is a programming error.
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Lookup returns the descriptor registered under name.
func Lookup(name Algorithm) (Descriptor, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	d, ok := registry.byName[name]
	return d, ok
}

// Descriptors returns every registered algorithm (paper set and
// extensions) sorted by paper order, then name.
func Descriptors() []Descriptor {
	registry.mu.RLock()
	out := make([]Descriptor, 0, len(registry.byName))
	for _, d := range registry.byName {
		out = append(out, d)
	}
	registry.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// All returns the paper's algorithms in the paper's presentation order
// (GLL, GZO, GLF, GKF, SGK, BD, BDP). Extensions beyond the paper (BDL)
// are registered but excluded, so the evaluation matrix stays the
// paper's seven.
func All() []Algorithm {
	var out []Algorithm
	for _, d := range Descriptors() {
		if d.Paper {
			out = append(out, d.Name)
		}
	}
	return out
}

// Run executes the named algorithm on a stencil instance of either
// dimensionality. It is the single dispatch path: unknown names and
// dimension mismatches error, per-algorithm errors (cancellation, failed
// decompositions) propagate instead of being discarded, and every
// configured observability sink records here — the algorithm's wall
// time lands in the stats sink under "solve:<name>", a "solve:<name>"
// span opens on the tracer (on its own lane, so concurrent portfolio
// runs render as separate rows), the metrics bundle receives the
// solve count, wall time, allocations, and resulting maxcolor, the
// event sink logs solve.start and solve.finish/solve.error records, and
// the runtime sampler — when configured — runs for the duration of the
// solve so GC pauses and scheduler stalls during it land in the
// registry.
//
// When SolveOptions.Cache is set, Run first consults the
// content-addressed result cache: a hit returns the memoized coloring
// immediately — no solver span, no solve counters, no sampler session;
// the cache's own resultcache_* families and cache.* events record the
// hit — and every completed solve is stored back under its instance
// fingerprint. A nil cache costs one pointer compare.
//
// Run is also the pipeline's panic boundary: a panic anywhere inside
// the algorithm (a solver bug, or a fault injector's induced crash that
// escaped the solver's own containment) is recovered into a typed
// *core.SolveError carrying the algorithm name — and, for injected
// panics, the fault site — so one crashing algorithm degrades a
// portfolio instead of killing the process.
func Run(alg Algorithm, s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
	d, ok := Lookup(alg)
	if !ok {
		return core.Coloring{}, fmt.Errorf("heuristics: unknown algorithm %q", alg)
	}
	if !d.Dims.Has(s.Dims()) {
		return core.Coloring{}, fmt.Errorf("heuristics: %s is %s-only, got a %dD instance",
			alg, d.Dims, s.Dims())
	}
	// A per-request absolute deadline (the service scheduler's shedding
	// policy, or any caller that set SolveOptions.Deadline) bounds the
	// context here, so every solver below polls the bounded context
	// without knowing deadlines exist. No deadline costs one IsZero check.
	opts, stopDeadline := opts.WithDeadlineContext()
	defer stopDeadline()
	if err := opts.Err(); err != nil {
		return core.Coloring{}, err
	}
	// The content-addressed result cache short-circuits the whole solve:
	// a hit returns the memoized coloring with no solver span, no solve
	// counters, and no sampler session — the cache records its own
	// hit/miss/store families. The nil-cache path is one pointer compare
	// (pinned allocation-free by TestNilCacheLookupNoAllocs).
	cached, ckey, cacheHit := lookupCached(opts.ResultCache(), alg, s, opts)
	if cacheHit {
		opts.FlightCtx().Event("cache.hit", string(alg), 0)
		return cached, nil
	}
	if sampler := opts.RuntimeSampler(); sampler != nil {
		sampler.Start()
		defer sampler.Stop()
	}
	name := "solve:" + string(alg)
	tr := opts.Tracer()
	lane := 0
	if tr != nil {
		lane = tr.Lane()
		tr.LabelLane(lane, name)
	}
	sp := tr.StartLane(lane, name)
	fs := startFlight(opts, name)
	m := opts.Meters()
	var mallocs0 uint64
	if m != nil {
		mallocs0 = readMallocs()
	}
	ev := opts.EventLog()
	ev.SolveStart(string(alg), s.Dims(), s.Len())
	t0 := time.Now()
	runOpts := opts.WithPhase(sp)
	if fs.Active() {
		// Solver-internal phases (and the distributed solver's wire
		// messages) parent under the solve span, not the admission span.
		runOpts.TraceCtx = fs.Context()
	}
	c, err := contained(d, s, runOpts)
	dt := time.Since(t0)
	sp.End()
	opts.Sink().AddPhase(name, dt)
	if err != nil {
		fs.EndDetail(err.Error(), 0)
		ev.SolveFinish(string(alg), 0, dt, err)
		var se *core.SolveError
		if errors.As(err, &se) {
			// Already typed with the algorithm name; don't re-wrap.
			return core.Coloring{}, err
		}
		return core.Coloring{}, fmt.Errorf("heuristics: %s: %w", alg, err)
	}
	if m != nil || ev != nil || fs.Active() {
		mc := c.MaxColor(s)
		fs.EndDetail("", mc)
		ev.SolveFinish(string(alg), mc, dt, nil)
		if m != nil {
			m.Solves.Add(1)
			m.SolveSeconds.Observe(dt.Seconds())
			m.Allocs.Add(int64(readMallocs() - mallocs0))
			m.MaxColor.Set(mc)
		}
	}
	if cc := opts.ResultCache(); cc != nil {
		// Only complete, error-free solves are memoized; partial results
		// and typed failures never enter the cache. The key was computed
		// by the miss above, so the instance is not re-fingerprinted.
		cc.Store(ckey, string(alg), opts.TenantID(), s, c, dt)
	}
	return c, nil
}

// startFlight opens the solve's span in the flight recorder when a
// trace context rides in the options. It is a separate function so the
// disabled path — a nil context yielding the zero (inactive) FlightSpan
// — can be pinned allocation-free in isolation.
func startFlight(opts *core.SolveOptions, name string) obsv.FlightSpan {
	return opts.FlightCtx().Start(name)
}

// lookupCached consults the result cache when one is configured. It is
// a separate function so the disabled path — by far the common one —
// can be pinned allocation-free in isolation: with a nil cache it is a
// single comparison and returns zero values.
func lookupCached(cc core.SolveCache, alg Algorithm, s grid.Stencil, opts *core.SolveOptions) (core.Coloring, core.CacheKey, bool) {
	if cc == nil {
		return core.Coloring{}, core.CacheKey{}, false
	}
	return cc.Lookup(string(alg), s, opts.TenantID())
}

// contained invokes the algorithm's solver under a recover that
// converts panics into typed errors and counts them in the
// panic-recovery metric. It is a separate function so the deferred
// recover scopes exactly the solver call.
func contained(d Descriptor, s grid.Stencil, opts *core.SolveOptions) (c core.Coloring, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = core.PanicToError(string(d.Name), rec)
			c = core.Coloring{}
			if m := opts.Meters(); m != nil {
				m.PanicsRecovered.Add(1)
			}
		}
	}()
	return d.Fn(s, opts)
}

// readMallocs snapshots the process's cumulative heap allocation count;
// Run charges the delta across a solve to the metrics bundle. Only
// called when metrics are enabled — ReadMemStats is far too heavy for
// an always-on path.
func readMallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// Run2D executes the named algorithm on a 9-pt stencil instance.
func Run2D(alg Algorithm, g *grid.Grid2D) (core.Coloring, error) {
	return Run(alg, g, nil)
}

// Run3D executes the named algorithm on a 27-pt stencil instance.
func Run3D(alg Algorithm, g *grid.Grid3D) (core.Coloring, error) {
	return Run(alg, g, nil)
}
