package heuristics

import (
	"math/rand"
	"testing"

	"stencilivc/internal/bounds"
)

func TestLayeredBDP3DValid(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 15; trial++ {
		g := random3D(rng, 2+rng.Intn(4), 2+rng.Intn(4), 2+rng.Intn(4), 12)
		c := LayeredBDP3D(g)
		if err := c.Validate(g); err != nil {
			t.Fatal(err)
		}
		if c.MaxColor(g) < bounds.MaxK8(g) {
			t.Fatal("below the K8 bound")
		}
	}
}

func TestLayeredBDP3DNeverWorseThanBD(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	wins := 0
	for trial := 0; trial < 20; trial++ {
		g := random3D(rng, 3+rng.Intn(4), 3+rng.Intn(4), 3+rng.Intn(4), 15)
		bd, _ := BipartiteDecomposition3D(g)
		layered := LayeredBDP3D(g)
		if layered.MaxColor(g) > bd.MaxColor(g) {
			t.Fatalf("layered BDP %d worse than BD %d", layered.MaxColor(g), bd.MaxColor(g))
		}
		if layered.MaxColor(g) < bd.MaxColor(g) {
			wins++
		}
	}
	if wins == 0 {
		t.Error("layered BDP never improved on BD across 20 instances")
	}
}

func TestLayeredBDP3DDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, shape := range [][3]int{{1, 1, 1}, {1, 4, 4}, {4, 1, 4}, {4, 4, 1}, {1, 1, 5}} {
		g := random3D(rng, shape[0], shape[1], shape[2], 9)
		c := LayeredBDP3D(g)
		if err := c.Validate(g); err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
	}
}

func TestBDLRunsViaRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	g := random3D(rng, 3, 3, 3, 9)
	c, err := Run3D(BDL, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	// BDL is 3D-only: the 2D registry must reject it.
	g2 := random2D(rng, 3, 3, 9)
	if _, err := Run2D(BDL, g2); err == nil {
		t.Error("BDL accepted in 2D")
	}
}
