package heuristics

import (
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

func init() {
	MustRegister(Descriptor{
		// BDL sits after the paper's seven (Order 8) and outside the paper
		// set, so All() and the evaluation matrix never pick it up; the
		// registry still dispatches it by name and rejects 2D instances
		// through the dimension mask.
		Name: BDL, Dims: Dim3D, Paper: false, Order: 8,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			return LayeredBDP3DOpts(s.(*grid.Grid3D), opts)
		},
	})
}

// LayeredBDP3D is an extension beyond the paper addressing its closing
// question ("can we design approximation algorithms for coloring 27-pt
// stencils with a ratio better than 4?") on the practical side: instead
// of coloring each z-layer with plain BD (2-approx per layer), color it
// with the post-optimized BDP, lift odd layers by the largest layer
// maxcolor, and finish with a global recoloring pass.
//
// The worst-case ratio stays 4 (each layer's BDP is still only guaranteed
// within 2 of its layer optimum, and the layer-chain doubling is tight in
// the worst case), but the practical quality is consistently at or below
// BD's — the recoloring passes never increase maxcolor — which is exactly
// the gap the open question is about.
func LayeredBDP3D(g *grid.Grid3D) core.Coloring {
	c, err := LayeredBDP3DOpts(g, nil)
	if err != nil {
		panic("heuristics: BDL failed without a context: " + err.Error())
	}
	return c
}

// LayeredBDP3DOpts is LayeredBDP3D with options; cancellation is polled
// per layer and inside every recoloring pass.
func LayeredBDP3DOpts(g *grid.Grid3D, opts *core.SolveOptions) (core.Coloring, error) {
	c := core.NewColoring(g.Len())
	var lc int64
	layerCol := make([]core.Coloring, g.Z)
	for k := 0; k < g.Z; k++ {
		layer := g.Layer(k)
		lcol, _, err := BipartiteDecompositionPost2DOpts(layer, opts)
		if err != nil {
			return core.Coloring{}, err
		}
		layerCol[k] = lcol
		lc = max(lc, lcol.MaxColor(layer))
	}
	for k := 0; k < g.Z; k++ {
		base := k * g.X * g.Y
		var lift int64
		if k%2 == 1 {
			lift = lc
		}
		for v, s := range layerCol[k].Start {
			c.Start[base+v] = s + lift
		}
	}
	if err := recolor(g, c, postOrder(g, c, g.CliqueBlocks()), opts); err != nil {
		return core.Coloring{}, err
	}
	return c, nil
}
