package heuristics

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"stencilivc/internal/bounds"
	"stencilivc/internal/core"
	"stencilivc/internal/exact"
	"stencilivc/internal/grid"
)

func random2D(rng *rand.Rand, x, y int, maxW int64) *grid.Grid2D {
	g := grid.MustGrid2D(x, y)
	for v := range g.W {
		g.W[v] = rng.Int63n(maxW + 1)
	}
	return g
}

func random3D(rng *rand.Rand, x, y, z int, maxW int64) *grid.Grid3D {
	g := grid.MustGrid3D(x, y, z)
	for v := range g.W {
		g.W[v] = rng.Int63n(maxW + 1)
	}
	return g
}

// TestAllAlgorithmsValid2D is the central property test: on random 2D
// instances (including degenerate 1×N shapes and zero weights), every
// algorithm returns a valid coloring at or above the combined lower bound.
func TestAllAlgorithmsValid2D(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][2]int{{1, 1}, {1, 7}, {6, 1}, {2, 2}, {3, 5}, {8, 8}, {16, 4}}
	for trial := 0; trial < 40; trial++ {
		shape := shapes[rng.Intn(len(shapes))]
		g := random2D(rng, shape[0], shape[1], 9)
		lb := bounds.Combined2D(g, 0)
		for _, alg := range All() {
			c, err := Run2D(alg, g)
			if err != nil {
				t.Fatalf("%s on %dx%d: %v", alg, g.X, g.Y, err)
			}
			if err := c.Validate(g); err != nil {
				t.Fatalf("%s on %dx%d invalid: %v", alg, g.X, g.Y, err)
			}
			if mc := c.MaxColor(g); mc < lb {
				t.Fatalf("%s produced %d colors, below lower bound %d", alg, mc, lb)
			}
		}
	}
}

// TestAllAlgorithmsValid3D mirrors the 2D property test in 3D.
func TestAllAlgorithmsValid3D(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	shapes := [][3]int{{1, 1, 1}, {2, 2, 2}, {1, 4, 4}, {4, 1, 3}, {3, 3, 3}, {4, 4, 4}, {2, 5, 3}}
	for trial := 0; trial < 25; trial++ {
		shape := shapes[rng.Intn(len(shapes))]
		g := random3D(rng, shape[0], shape[1], shape[2], 9)
		lb := bounds.Combined3D(g, 0)
		for _, alg := range All() {
			c, err := Run3D(alg, g)
			if err != nil {
				t.Fatalf("%s on %v: %v", alg, shape, err)
			}
			if err := c.Validate(g); err != nil {
				t.Fatalf("%s on %v invalid: %v", alg, shape, err)
			}
			if mc := c.MaxColor(g); mc < lb {
				t.Fatalf("%s produced %d colors, below lower bound %d", alg, mc, lb)
			}
		}
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	g2 := grid.MustGrid2D(2, 2)
	if _, err := Run2D("NOPE", g2); err == nil {
		t.Error("unknown 2D algorithm accepted")
	}
	g3 := grid.MustGrid3D(2, 2, 2)
	if _, err := Run3D("NOPE", g3); err == nil {
		t.Error("unknown 3D algorithm accepted")
	}
}

// TestBD2ApproxGuarantee checks BD's proof obligations on random 2D
// instances: maxcolor <= 2·RC and RC <= optimum (via exact solve).
func TestBD2ApproxGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		g := random2D(rng, 2+rng.Intn(2), 2+rng.Intn(2), 5)
		c, rc := BipartiteDecomposition2D(g)
		if err := c.Validate(g); err != nil {
			t.Fatal(err)
		}
		if mc := c.MaxColor(g); mc > 2*rc {
			t.Fatalf("BD used %d > 2·RC = %d", mc, 2*rc)
		}
		res := exact.Optimize(g, exact.OptimizeOptions{
			LowerBound: bounds.Combined2D(g, 1000),
			NodeBudget: 500_000,
		})
		if res.Optimal {
			if rc > res.MaxColor {
				t.Fatalf("RC = %d exceeds optimum %d", rc, res.MaxColor)
			}
			if c.MaxColor(g) > 2*res.MaxColor {
				t.Fatalf("BD = %d > 2·OPT = %d", c.MaxColor(g), 2*res.MaxColor)
			}
		}
	}
}

// TestBD4ApproxGuarantee3D checks BD's 3D obligations: valid, and within
// 4× of the optimum whenever the exact solver finishes.
func TestBD4ApproxGuarantee3D(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 6; trial++ {
		g := random3D(rng, 2, 2, 2, 4)
		c, lb := BipartiteDecomposition3D(g)
		if err := c.Validate(g); err != nil {
			t.Fatal(err)
		}
		res := exact.Optimize(g, exact.OptimizeOptions{
			LowerBound: bounds.Combined3D(g, 1000),
			NodeBudget: 500_000,
		})
		if res.Optimal {
			if lb > res.MaxColor {
				t.Fatalf("BD lower bound %d exceeds optimum %d", lb, res.MaxColor)
			}
			if c.MaxColor(g) > 4*res.MaxColor {
				t.Fatalf("BD = %d > 4·OPT = %d", c.MaxColor(g), 4*res.MaxColor)
			}
		}
	}
}

// TestBDPNeverWorseThanBD asserts the compaction property: recoloring
// never increases any start, so BDP <= BD on every instance.
func TestBDPNeverWorseThanBD(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 30; trial++ {
		g2 := random2D(rng, 2+rng.Intn(7), 2+rng.Intn(7), 12)
		bd, _ := BipartiteDecomposition2D(g2)
		bdp, _ := BipartiteDecompositionPost2D(g2)
		if bdp.MaxColor(g2) > bd.MaxColor(g2) {
			t.Fatalf("2D BDP %d > BD %d", bdp.MaxColor(g2), bd.MaxColor(g2))
		}
		g3 := random3D(rng, 2+rng.Intn(3), 2+rng.Intn(3), 2+rng.Intn(3), 12)
		bd3, _ := BipartiteDecomposition3D(g3)
		bdp3, _ := BipartiteDecompositionPost3D(g3)
		if bdp3.MaxColor(g3) > bd3.MaxColor(g3) {
			t.Fatalf("3D BDP %d > BD %d", bdp3.MaxColor(g3), bd3.MaxColor(g3))
		}
	}
}

// TestSGKNeverWorseThanGKFLocally: SGK tries the identity order among its
// permutations, so its block-local objective is at most GKF's. Globally
// SGK can differ, but on a single isolated block they must agree or SGK
// wins.
func TestSGKSingleBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 20; trial++ {
		g := random2D(rng, 2, 2, 9)
		gkf := LargestCliqueFirst2D(g)
		sgk := SmartLargestCliqueFirst2D(g)
		if sgk.MaxColor(g) > gkf.MaxColor(g) {
			t.Fatalf("SGK %d > GKF %d on a single K4", sgk.MaxColor(g), gkf.MaxColor(g))
		}
		// A single K4 is a clique: both must hit the clique optimum.
		want := bounds.CliqueSum(g.W)
		if gkf.MaxColor(g) != want || sgk.MaxColor(g) != want {
			t.Fatalf("K4 coloring: gkf=%d sgk=%d want=%d", gkf.MaxColor(g), sgk.MaxColor(g), want)
		}
	}
}

// TestUniformGridsHitCliqueBound: constant-weight instances are solved
// optimally by every clique-aware heuristic (the K4/K8 bound is achieved).
func TestUniformGridsHitCliqueBound(t *testing.T) {
	g := grid.MustGrid2D(6, 6)
	for v := range g.W {
		g.W[v] = 5
	}
	lb := bounds.MaxK4(g) // 20
	for _, alg := range All() {
		c, err := Run2D(alg, g)
		if err != nil {
			t.Fatal(err)
		}
		mc := c.MaxColor(g)
		if mc < lb {
			t.Fatalf("%s below bound", alg)
		}
		// All algorithms should reach the bound on uniform instances; the
		// geometric greedy orders provably do (4 colors of 5 in a 2x2 tile).
		if mc != lb {
			t.Logf("%s on uniform grid: %d (bound %d)", alg, mc, lb)
		}
	}
	gll, _ := Run2D(GLL, g)
	if gll.MaxColor(g) != lb {
		t.Errorf("GLL on uniform grid = %d, want %d", gll.MaxColor(g), lb)
	}
}

// TestHeuristicsVsExactSmall quantifies quality: on small random grids
// every heuristic stays within its guarantee of the true optimum and at
// least one of them finds it reasonably often (sanity against regression
// to absurd colorings).
func TestHeuristicsVsExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	hits := 0
	trials := 12
	for trial := 0; trial < trials; trial++ {
		g := random2D(rng, 3, 3, 5)
		res := exact.Optimize(g, exact.OptimizeOptions{
			LowerBound: bounds.Combined2D(g, 1000),
			NodeBudget: 500_000,
		})
		if !res.Optimal {
			continue
		}
		best := int64(1) << 62
		for _, alg := range All() {
			c, err := Run2D(alg, g)
			if err != nil {
				t.Fatal(err)
			}
			best = min(best, c.MaxColor(g))
		}
		if best < res.MaxColor {
			t.Fatalf("heuristic beat the exact optimum: %d < %d", best, res.MaxColor)
		}
		if best == res.MaxColor {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no heuristic ever matched the optimum on 3x3 grids; suspicious")
	}
}

func TestWeightDescOrder(t *testing.T) {
	g := core.Chain([]int64{2, 9, 4})
	order := WeightDescOrder(g)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v", order)
	}
}

func TestRunAlgorithmsOnSingleVertex(t *testing.T) {
	g2 := grid.MustGrid2D(1, 1)
	g2.W[0] = 7
	for _, alg := range All() {
		c, err := Run2D(alg, g2)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if c.MaxColor(g2) != 7 {
			t.Fatalf("%s on single vertex = %d", alg, c.MaxColor(g2))
		}
	}
	g3 := grid.MustGrid3D(1, 1, 1)
	g3.W[0] = 3
	for _, alg := range All() {
		c, err := Run3D(alg, g3)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if c.MaxColor(g3) != 3 {
			t.Fatalf("%s on single 3D vertex = %d", alg, c.MaxColor(g3))
		}
	}
}

// TestRunHonorsDeadline: SolveOptions.Deadline bounds the solve without
// the caller deriving a context — an already-expired deadline aborts
// before the algorithm runs, and a generous one changes nothing.
func TestRunHonorsDeadline(t *testing.T) {
	g := random2D(rand.New(rand.NewSource(11)), 32, 32, 9)

	opts := &core.SolveOptions{Deadline: time.Now().Add(-time.Millisecond)}
	if _, err := Run(GLL, g, opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want DeadlineExceeded", err)
	}

	opts = &core.SolveOptions{Deadline: time.Now().Add(time.Hour), Tenant: "t"}
	c, err := Run(GLL, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(GLL, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxColor(g) != want.MaxColor(g) {
		t.Fatalf("deadline-bounded solve diverged: %d vs %d", c.MaxColor(g), want.MaxColor(g))
	}
}
