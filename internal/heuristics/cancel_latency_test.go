package heuristics

import (
	"context"
	"errors"
	"testing"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// cancelLatencyBound is how long a solver may keep running after its
// context is canceled. Derivation: solvers poll for cancellation every
// core.CtxCheckInterval (1024) placements, so the worst case between
// polls is 1024 placements plus one row/phase epilogue. A full 2048²
// GLL solve (4.19M placements) measures ≈ 0.7–1.3 s on the reference
// machine, i.e. ≲ 0.3 µs per placement, putting one polling window at
// ≲ 0.5 ms. 500 ms grants a ~1000× cushion for the race detector,
// CI-machine noise, and scheduler latency while still catching a
// regression that removes the polling (a full solve would blow it).
const cancelLatencyBound = 500 * time.Millisecond

// testCancelLatency runs alg on a 2048² grid, cancels mid-solve, and
// asserts the solver returns context.Canceled within the bound. The
// whole test suite runs packages concurrently, so a single probe can be
// starved for seconds by an unlucky scheduling storm; the contract is
// therefore best-of-three — contention noise rarely hits every attempt,
// while a real polling regression slows all of them.
func testCancelLatency(t *testing.T, alg Algorithm) {
	t.Helper()
	if raceEnabled {
		// The race detector slows the non-polling setup passes (order
		// construction, permutation check) by 10–20×, so a wall-clock
		// bound measures instrumentation, not polling. Cancellation
		// correctness under -race is covered by
		// TestCancellationAllAlgorithms.
		t.Skip("latency bound is meaningless under the race detector")
	}
	g := grid.MustGrid2D(2048, 2048)
	for v := range g.W {
		g.W[v] = int64(v%9) + 1
	}
	const attempts = 3
	var latencies []time.Duration
	for range attempts {
		latency := cancelLatencyProbe(t, alg, g)
		if latency <= cancelLatencyBound {
			return
		}
		latencies = append(latencies, latency)
	}
	t.Errorf("%s kept running after cancel on all %d attempts (%v), bound %v (CtxCheckInterval=%d)",
		alg, attempts, latencies, cancelLatencyBound, core.CtxCheckInterval)
}

// cancelLatencyProbe performs one mid-solve cancellation and returns
// how long the solver kept running afterwards.
func cancelLatencyProbe(t *testing.T, alg Algorithm, g *grid.Grid2D) time.Duration {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Run(alg, g, &core.SolveOptions{Ctx: ctx})
		done <- err
	}()
	// Let the solve get past setup and into the placement loop. A full
	// solve needs hundreds of milliseconds, so it cannot finish first on
	// any plausible machine — and if it somehow does, we skip rather
	// than flake.
	time.Sleep(20 * time.Millisecond)
	t0 := time.Now()
	cancel()
	select {
	case err := <-done:
		latency := time.Since(t0)
		if err == nil {
			t.Skipf("%s finished the 2048² solve before cancellation", alg)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", alg, err)
		}
		return latency
	case <-time.After(30 * time.Second):
		t.Fatalf("%s ignored cancellation entirely", alg)
		return 0
	}
}

// TestCancelLatencyGLL: canceling mid-solve stops GLL on a 2048² grid
// within the polling-interval-derived bound.
func TestCancelLatencyGLL(t *testing.T) {
	if testing.Short() {
		t.Skip("2048² latency probe skipped in -short mode")
	}
	testCancelLatency(t, GLL)
}

// TestCancelLatencyBDP: same contract for the slowest paper algorithm,
// whose decomposition and post passes each poll the context.
func TestCancelLatencyBDP(t *testing.T) {
	if testing.Short() {
		t.Skip("2048² latency probe skipped in -short mode")
	}
	testCancelLatency(t, BDP)
}
