package heuristics

import (
	"fmt"
	"sync"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// Portfolio runs the given algorithms on one stencil instance and returns
// the best coloring — lowest maxcolor, ties broken by position in algs
// (callers passing All() therefore tie-break in paper order). It replaces
// the copy-pasted Best2D/Best3D loops with one dimension-generic runner.
//
// When opts.Parallelism > 1 the algorithms run concurrently on up to that
// many goroutines. Every algorithm is deterministic and the reduction
// scans results in slice order, so the outcome is byte-identical to the
// sequential run; parallelism only changes the wall time. Any algorithm
// error (unknown name, dimension mismatch, cancellation, failed
// decomposition) aborts the portfolio; the error of the earliest failing
// slice position is returned so concurrent failures stay deterministic.
func Portfolio(s grid.Stencil, algs []Algorithm, opts *core.SolveOptions) (core.Coloring, Algorithm, error) {
	if len(algs) == 0 {
		return core.Coloring{}, "", fmt.Errorf("heuristics: empty portfolio")
	}
	type result struct {
		c   core.Coloring
		err error
	}
	results := make([]result, len(algs))
	if par := min(opts.Par(), len(algs)); par <= 1 {
		for i, alg := range algs {
			results[i].c, results[i].err = Run(alg, s, opts)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i].c, results[i].err = Run(algs[i], s, opts)
				}
			}()
		}
		for i := range algs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	best, bestAlg, bestVal := core.Coloring{}, Algorithm(""), int64(-1)
	for i, r := range results {
		if r.err != nil {
			return core.Coloring{}, "", r.err
		}
		if mc := r.c.MaxColor(s); bestVal < 0 || mc < bestVal {
			best, bestAlg, bestVal = r.c, algs[i], mc
		}
	}
	return best, bestAlg, nil
}

// Best runs the paper's full algorithm portfolio (All()) on s and returns
// the winning coloring and algorithm.
func Best(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, Algorithm, error) {
	return Portfolio(s, All(), opts)
}
