package heuristics

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// Portfolio runs the given algorithms on one stencil instance and returns
// the best coloring — lowest maxcolor, ties broken by position in algs
// (callers passing All() therefore tie-break in paper order). It replaces
// the copy-pasted Best2D/Best3D loops with one dimension-generic runner.
//
// When opts.Parallelism > 1 the algorithms run concurrently on up to that
// many goroutines. Every algorithm is deterministic and the reduction
// scans results in slice order, so the outcome is byte-identical to the
// sequential run; parallelism only changes the wall time.
//
// Failure handling follows the degradation ladder:
//
//   - Fatal errors — unknown names, dimension mismatches, failed
//     decompositions — abort the portfolio; the error of the earliest
//     failing slice position is returned so concurrent failures stay
//     deterministic.
//   - An algorithm that panicked (recovered by Run into a
//     *core.SolveError) is dropped and the remaining results still
//     compete; the portfolio only errors — with the earliest such typed
//     error — when every algorithm crashed.
//   - Cancellation normally aborts, but with opts.PartialOnCancel the
//     portfolio returns the best coloring among the algorithms that
//     completed — re-validated, so a degraded result can never leak an
//     invalid coloring — tagged with the core.ErrPartial sentinel, and
//     counts it in solver_partial_results_total. With zero completed
//     results the context's error propagates as before.
func Portfolio(s grid.Stencil, algs []Algorithm, opts *core.SolveOptions) (core.Coloring, Algorithm, error) {
	if len(algs) == 0 {
		return core.Coloring{}, "", fmt.Errorf("heuristics: empty portfolio")
	}
	type result struct {
		c   core.Coloring
		err error
	}
	results := make([]result, len(algs))
	runOne := func(i int) {
		results[i].c, results[i].err = Run(algs[i], s, opts)
	}
	if par := min(opts.Par(), len(algs)); par <= 1 {
		for i := range algs {
			runOne(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runOne(i)
				}
			}()
		}
		for i := range algs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Reduce in slice order: classify failures, track the best completed
	// coloring. Earliest-position errors win within each class, keeping
	// concurrent failures deterministic.
	best, bestAlg, bestVal := core.Coloring{}, Algorithm(""), int64(-1)
	var firstFatal, firstCancel, firstPanic error
	completed := 0
	for i, r := range results {
		if r.err != nil {
			var se *core.SolveError
			switch {
			case errors.As(r.err, &se) && se.Panicked:
				opts.EventLog().Dropped(string(algs[i]), r.err)
				if firstPanic == nil {
					firstPanic = r.err
				}
			case errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded):
				if firstCancel == nil {
					firstCancel = r.err
				}
			default:
				if firstFatal == nil {
					firstFatal = r.err
				}
			}
			continue
		}
		completed++
		if mc := r.c.MaxColor(s); bestVal < 0 || mc < bestVal {
			best, bestAlg, bestVal = r.c, algs[i], mc
		}
	}
	switch {
	case firstFatal != nil:
		return core.Coloring{}, "", firstFatal
	case firstCancel != nil:
		if opts.Partial() && completed > 0 {
			if err := best.Validate(s); err != nil {
				// A degraded pipeline must never hand out an invalid
				// coloring; fall through to the plain cancellation error.
				return core.Coloring{}, "", firstCancel
			}
			if m := opts.Meters(); m != nil {
				m.PartialResults.Add(1)
			}
			opts.EventLog().PartialResult(completed, len(algs), string(bestAlg))
			return best, bestAlg, fmt.Errorf(
				"%w (%d/%d algorithms completed, best %s)",
				core.ErrPartial, completed, len(algs), bestAlg)
		}
		return core.Coloring{}, "", firstCancel
	case completed == 0:
		// Every algorithm panicked; surface the earliest typed error.
		return core.Coloring{}, "", firstPanic
	}
	return best, bestAlg, nil
}

// Best runs the paper's full algorithm portfolio (All()) on s and returns
// the winning coloring and algorithm.
func Best(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, Algorithm, error) {
	return Portfolio(s, All(), opts)
}
