package heuristics

import (
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// SmartLargestCliqueFirst3DFull is the SGK variant the paper describes
// but rejected as too slow (Section V-A): for every K8 block, try every
// permutation of its still-uncolored vertices (up to 8! = 40320 per
// block) and commit the one minimizing the block's local maxcolor.
// Exposed for the ablation benchmarks that quantify how much quality the
// paper's weight-sorted shortcut (SmartLargestCliqueFirst3D) gives up —
// on real instances most blocks have few uncolored vertices, so the
// factorial blowup concentrates on the first blocks visited.
func SmartLargestCliqueFirst3DFull(g *grid.Grid3D) core.Coloring {
	blocks := append([]grid.Block{}, g.CliqueBlocks()...)
	grid.SortBlocksByWeightDesc(blocks)
	c := core.NewColoring(g.Len())
	s := core.AcquireFitScratch(nil)
	defer core.ReleaseFitScratch(s)
	var uncolored []int
	for _, b := range blocks {
		uncolored = uncolored[:0]
		for _, v := range b.Vertices {
			if !c.Colored(v) {
				uncolored = append(uncolored, v)
			}
		}
		if len(uncolored) == 0 {
			continue
		}
		best := commitBestPermutation(g, c, s, b.Vertices, uncolored)
		for i, v := range uncolored {
			c.Start[v] = best[i]
		}
	}
	for v := 0; v < g.Len(); v++ {
		if !c.Colored(v) {
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
		}
	}
	return c
}
