package heuristics

import (
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
	"stencilivc/internal/resultcache"
)

// cacheTestGrid builds a small varied-weight 2D instance.
func cacheTestGrid(t *testing.T) *grid.Grid2D {
	t.Helper()
	w := make([]int64, 12*12)
	for i := range w {
		w[i] = int64(i%7 + 1)
	}
	g, err := grid.FromWeights2D(12, 12, w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRunCacheHitSkipsSolver checks the memoization contract end to
// end at the dispatch layer: the second Run of an identical instance
// must return a byte-identical coloring without running the solver
// (the solver metrics count exactly one real solve).
func TestRunCacheHitSkipsSolver(t *testing.T) {
	g := cacheTestGrid(t)
	reg := obsv.NewRegistry()
	opts := &core.SolveOptions{
		Metrics: obsv.NewSolveMetrics(reg),
		Cache:   resultcache.New(resultcache.Config{}),
	}

	first, err := Run("GLL", g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := opts.Metrics.Solves.Value(); got != 1 {
		t.Fatalf("solves after first run = %d, want 1", got)
	}

	second, err := Run("GLL", g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := opts.Metrics.Solves.Value(); got != 1 {
		t.Fatalf("solves after cached run = %d, want 1 (the hit must skip the solver)", got)
	}
	if len(second.Start) != len(first.Start) {
		t.Fatalf("cached coloring has %d starts, want %d", len(second.Start), len(first.Start))
	}
	for v := range first.Start {
		if second.Start[v] != first.Start[v] {
			t.Fatalf("vertex %d: cached start %d, solved start %d", v, second.Start[v], first.Start[v])
		}
	}

	// A different algorithm on the same instance must not hit GLL's entry.
	if _, err := Run("GLF", g, opts); err != nil {
		t.Fatal(err)
	}
	if got := opts.Metrics.Solves.Value(); got != 2 {
		t.Fatalf("solves after GLF = %d, want 2 (cross-algorithm hit would be unsound)", got)
	}

	// Mutating the instance invalidates the fingerprint: no stale hit.
	g.W[0] += 3
	if _, err := Run("GLL", g, opts); err != nil {
		t.Fatal(err)
	}
	if got := opts.Metrics.Solves.Value(); got != 3 {
		t.Fatalf("solves after mutation = %d, want 3 (stale hit after weight change)", got)
	}
}

// TestNilCacheLookupNoAllocs pins the disabled-cache path at zero
// allocations: with no cache configured, the only cost Run pays for the
// cache feature is one nil compare. This is the guard the Makefile's
// cache tier runs; a regression here taxes every non-caching solve in
// the hot path.
func TestNilCacheLookupNoAllocs(t *testing.T) {
	g := cacheTestGrid(t)
	opts := &core.SolveOptions{}
	if n := testing.AllocsPerRun(200, func() {
		_, _, hit := lookupCached(opts.ResultCache(), "GLL", g, opts)
		if hit {
			t.Fatal("nil cache reported a hit")
		}
	}); n != 0 {
		t.Fatalf("nil-cache lookup allocates %v/op, want 0", n)
	}
}
