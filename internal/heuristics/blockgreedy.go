package heuristics

import (
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// blocksOf2D returns the clique blocks driving GKF/SGK on a 2D grid: the
// K4 blocks when both dimensions exceed 1, otherwise the edge pairs of the
// degenerate chain (so the algorithms remain defined on 1×N instances even
// though the paper assumes X,Y > 1).
func blocksOf2D(g *grid.Grid2D) []grid.Block {
	if b := grid.Blocks2D(g); len(b) > 0 {
		return b
	}
	ids := make([]int, g.Len())
	for i := range ids {
		ids[i] = i
	}
	if g.Len() == 1 {
		return []grid.Block{{Vertices: []int{0}, Weight: g.W[0]}}
	}
	return grid.PairBlocks(g.W, ids)
}

// blocksOf3D is blocksOf2D for 3D grids; a grid with a unit dimension
// falls back to the K4 blocks of its plane, and a doubly-degenerate grid
// to chain pairs.
func blocksOf3D(g *grid.Grid3D) []grid.Block {
	if b := grid.Blocks3D(g); len(b) > 0 {
		return b
	}
	// One unit dimension: reuse the 2D blocks of the flattened plane.
	// Vertex ids coincide because the unit dimension contributes factor 1
	// only when it is the z (outermost) axis; handle the general case by
	// constructing pair blocks over the x-fastest order otherwise.
	if g.Z == 1 {
		flat := &grid.Grid2D{X: g.X, Y: g.Y, W: g.W}
		if b := grid.Blocks2D(flat); len(b) > 0 {
			return b
		}
	}
	if g.Y == 1 && g.Z > 1 && g.X > 1 {
		flat := &grid.Grid2D{X: g.X, Y: g.Z, W: g.W}
		if b := grid.Blocks2D(flat); len(b) > 0 {
			return b
		}
	}
	if g.X == 1 && g.Y > 1 && g.Z > 1 {
		flat := &grid.Grid2D{X: g.Y, Y: g.Z, W: g.W}
		if b := grid.Blocks2D(flat); len(b) > 0 {
			return b
		}
	}
	ids := make([]int, g.Len())
	for i := range ids {
		ids[i] = i
	}
	if g.Len() == 1 {
		return []grid.Block{{Vertices: []int{0}, Weight: g.W[0]}}
	}
	return grid.PairBlocks(g.W, ids)
}

// greedyBlocksFirst is GKF's engine: visit blocks in non-increasing total
// weight, greedily coloring each block's still-uncolored vertices in their
// stored (anchor) order. Vertices already colored through an earlier block
// are left untouched (Section V-A).
func greedyBlocksFirst(g core.Graph, blocks []grid.Block) core.Coloring {
	sorted := append([]grid.Block{}, blocks...)
	grid.SortBlocksByWeightDesc(sorted)
	c := core.NewColoring(g.Len())
	var s core.FitScratch
	for _, b := range sorted {
		for _, v := range b.Vertices {
			if !c.Colored(v) {
				c.Start[v] = s.PlaceLowest(g, c, v, -1)
			}
		}
	}
	// Blocks cover every vertex on all supported grids, but guard anyway:
	// any straggler is colored greedily.
	for v := 0; v < g.Len(); v++ {
		if !c.Colored(v) {
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
		}
	}
	return c
}

// LargestCliqueFirst2D is GKF on a 9-pt stencil.
func LargestCliqueFirst2D(g *grid.Grid2D) core.Coloring {
	return greedyBlocksFirst(g, blocksOf2D(g))
}

// LargestCliqueFirst3D is GKF on a 27-pt stencil.
func LargestCliqueFirst3D(g *grid.Grid3D) core.Coloring {
	return greedyBlocksFirst(g, blocksOf3D(g))
}

// SmartLargestCliqueFirst2D is SGK in 2D: like GKF, but for each block all
// permutations of its uncolored vertices (at most 4! = 24) are tried and
// the one minimizing the block's local maxcolor is committed
// (Section V-A).
func SmartLargestCliqueFirst2D(g *grid.Grid2D) core.Coloring {
	blocks := append([]grid.Block{}, blocksOf2D(g)...)
	grid.SortBlocksByWeightDesc(blocks)
	c := core.NewColoring(g.Len())
	var s core.FitScratch
	var uncolored []int
	for _, b := range blocks {
		uncolored = uncolored[:0]
		for _, v := range b.Vertices {
			if !c.Colored(v) {
				uncolored = append(uncolored, v)
			}
		}
		if len(uncolored) == 0 {
			continue
		}
		bestPerm := commitBestPermutation(g, c, &s, b.Vertices, uncolored)
		for i, v := range uncolored {
			c.Start[v] = bestPerm[i]
		}
	}
	for v := 0; v < g.Len(); v++ {
		if !c.Colored(v) {
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
		}
	}
	return c
}

// commitBestPermutation tries every placement order of the uncolored
// block members and returns the starts (aligned with uncolored) of the
// order minimizing the block's maximum interval end; ties prefer the
// first order generated, which keeps the algorithm deterministic.
func commitBestPermutation(g core.Graph, c core.Coloring, s *core.FitScratch,
	blockVerts, uncolored []int) []int64 {

	perm := append([]int{}, uncolored...)
	bestStarts := make([]int64, len(uncolored))
	bestLocal := int64(1) << 62
	pos := make(map[int]int, len(uncolored))
	for i, v := range uncolored {
		pos[v] = i
	}

	var try func(k int)
	try = func(k int) {
		if k == len(perm) {
			// Evaluate the block-local maxcolor under this placement.
			var local int64
			for _, v := range blockVerts {
				if c.Colored(v) {
					local = max(local, c.Start[v]+g.Weight(v))
				}
			}
			if local < bestLocal {
				bestLocal = local
				for _, v := range perm {
					bestStarts[pos[v]] = c.Start[v]
				}
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			v := perm[k]
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
			try(k + 1)
			c.Start[v] = core.Unset
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	try(0)
	return bestStarts
}

// SmartLargestCliqueFirst3D is SGK in 3D. Trying all 8! = 40320 orders per
// K8 was too slow even for the paper; as the authors did, each block's
// uncolored vertices are instead colored in non-increasing weight order.
func SmartLargestCliqueFirst3D(g *grid.Grid3D) core.Coloring {
	blocks := append([]grid.Block{}, blocksOf3D(g)...)
	grid.SortBlocksByWeightDesc(blocks)
	c := core.NewColoring(g.Len())
	var s core.FitScratch
	var uncolored []int
	for _, b := range blocks {
		uncolored = uncolored[:0]
		for _, v := range b.Vertices {
			if !c.Colored(v) {
				uncolored = append(uncolored, v)
			}
		}
		// Non-increasing weight, ties by id: deterministic.
		for i := 1; i < len(uncolored); i++ {
			for j := i; j > 0; j-- {
				a, bb := uncolored[j-1], uncolored[j]
				if g.Weight(bb) > g.Weight(a) || (g.Weight(bb) == g.Weight(a) && bb < a) {
					uncolored[j-1], uncolored[j] = bb, a
				} else {
					break
				}
			}
		}
		for _, v := range uncolored {
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
		}
	}
	for v := 0; v < g.Len(); v++ {
		if !c.Colored(v) {
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
		}
	}
	return c
}
