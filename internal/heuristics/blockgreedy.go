package heuristics

import (
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

func init() {
	MustRegister(Descriptor{
		Name: GKF, Dims: DimBoth, Paper: true, Order: 4,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			return greedyBlocksFirst(s, s.CliqueBlocks(), opts)
		},
	})
	MustRegister(Descriptor{
		Name: SGK, Dims: DimBoth, Paper: true, Order: 5,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			// SGK's block-internal search differs per dimension: in 2D all
			// <= 4! permutations are tried, in 3D the paper's weight-sorted
			// shortcut replaces the infeasible 8! search.
			if s.Dims() == 2 {
				return smartBlocksPermuted(s, s.CliqueBlocks(), opts)
			}
			return smartBlocksSorted(s, s.CliqueBlocks(), opts)
		},
	})
}

// ctxEveryBlocks is how many clique blocks the block-driven heuristics
// process between cancellation polls; a block holds at most 8 vertices,
// so this is finer-grained than core.CtxCheckInterval placements.
const ctxEveryBlocks = 256

// greedyBlocksFirst is GKF's engine: visit blocks in non-increasing total
// weight, greedily coloring each block's still-uncolored vertices in their
// stored (anchor) order. Vertices already colored through an earlier block
// are left untouched (Section V-A).
func greedyBlocksFirst(g core.Graph, blocks []grid.Block, opts *core.SolveOptions) (core.Coloring, error) {
	sorted := append([]grid.Block{}, blocks...)
	grid.SortBlocksByWeightDesc(sorted)
	c := core.NewColoring(g.Len())
	s := core.AcquireFitScratch(opts)
	defer core.ReleaseFitScratch(s)
	for bi, b := range sorted {
		if bi%ctxEveryBlocks == 0 {
			if err := opts.Err(); err != nil {
				return core.Coloring{}, err
			}
		}
		for _, v := range b.Vertices {
			if !c.Colored(v) {
				c.Start[v] = s.PlaceLowest(g, c, v, -1)
			}
		}
	}
	// Blocks cover every vertex on all supported grids, but guard anyway:
	// any straggler is colored greedily.
	if err := colorStragglers(g, c, s, opts); err != nil {
		return core.Coloring{}, err
	}
	return c, nil
}

// colorStragglers greedily colors any vertex the block sweep missed.
func colorStragglers(g core.Graph, c core.Coloring, s *core.FitScratch, opts *core.SolveOptions) error {
	for v := 0; v < g.Len(); v++ {
		if v%core.CtxCheckInterval == 0 {
			if err := opts.Err(); err != nil {
				return err
			}
		}
		if !c.Colored(v) {
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
		}
	}
	return nil
}

// LargestCliqueFirst2D is GKF on a 9-pt stencil.
func LargestCliqueFirst2D(g *grid.Grid2D) core.Coloring {
	return mustBlocks(greedyBlocksFirst(g, g.CliqueBlocks(), nil))
}

// LargestCliqueFirst3D is GKF on a 27-pt stencil.
func LargestCliqueFirst3D(g *grid.Grid3D) core.Coloring {
	return mustBlocks(greedyBlocksFirst(g, g.CliqueBlocks(), nil))
}

// mustBlocks unwraps a block-engine result run without options; with no
// context to cancel, an error is a programming error.
func mustBlocks(c core.Coloring, err error) core.Coloring {
	if err != nil {
		panic("heuristics: block engine failed without a context: " + err.Error())
	}
	return c
}

// smartBlocksPermuted is SGK's 2D engine: like GKF, but for each block all
// permutations of its uncolored vertices (at most 4! = 24) are tried and
// the one minimizing the block's local maxcolor is committed
// (Section V-A).
func smartBlocksPermuted(g core.Graph, blocks []grid.Block, opts *core.SolveOptions) (core.Coloring, error) {
	sorted := append([]grid.Block{}, blocks...)
	grid.SortBlocksByWeightDesc(sorted)
	c := core.NewColoring(g.Len())
	s := core.AcquireFitScratch(opts)
	defer core.ReleaseFitScratch(s)
	var uncolored []int
	for bi, b := range sorted {
		if bi%ctxEveryBlocks == 0 {
			if err := opts.Err(); err != nil {
				return core.Coloring{}, err
			}
		}
		uncolored = uncolored[:0]
		for _, v := range b.Vertices {
			if !c.Colored(v) {
				uncolored = append(uncolored, v)
			}
		}
		if len(uncolored) == 0 {
			continue
		}
		bestPerm := commitBestPermutation(g, c, s, b.Vertices, uncolored)
		for i, v := range uncolored {
			c.Start[v] = bestPerm[i]
		}
	}
	if err := colorStragglers(g, c, s, opts); err != nil {
		return core.Coloring{}, err
	}
	return c, nil
}

// SmartLargestCliqueFirst2D is SGK in 2D.
func SmartLargestCliqueFirst2D(g *grid.Grid2D) core.Coloring {
	return mustBlocks(smartBlocksPermuted(g, g.CliqueBlocks(), nil))
}

// commitBestPermutation tries every placement order of the uncolored
// block members and returns the starts (aligned with uncolored) of the
// order minimizing the block's maximum interval end; ties prefer the
// first order generated, which keeps the algorithm deterministic.
func commitBestPermutation(g core.Graph, c core.Coloring, s *core.FitScratch,
	blockVerts, uncolored []int) []int64 {

	perm := append([]int{}, uncolored...)
	bestStarts := make([]int64, len(uncolored))
	bestLocal := int64(1) << 62
	pos := make(map[int]int, len(uncolored))
	for i, v := range uncolored {
		pos[v] = i
	}

	var try func(k int)
	try = func(k int) {
		if k == len(perm) {
			// Evaluate the block-local maxcolor under this placement.
			var local int64
			for _, v := range blockVerts {
				if c.Colored(v) {
					local = max(local, c.Start[v]+g.Weight(v))
				}
			}
			if local < bestLocal {
				bestLocal = local
				for _, v := range perm {
					bestStarts[pos[v]] = c.Start[v]
				}
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			v := perm[k]
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
			try(k + 1)
			c.Start[v] = core.Unset
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	try(0)
	return bestStarts
}

// smartBlocksSorted is SGK's 3D engine. Trying all 8! = 40320 orders per
// K8 was too slow even for the paper; as the authors did, each block's
// uncolored vertices are instead colored in non-increasing weight order.
func smartBlocksSorted(g core.Graph, blocks []grid.Block, opts *core.SolveOptions) (core.Coloring, error) {
	sorted := append([]grid.Block{}, blocks...)
	grid.SortBlocksByWeightDesc(sorted)
	c := core.NewColoring(g.Len())
	s := core.AcquireFitScratch(opts)
	defer core.ReleaseFitScratch(s)
	var uncolored []int
	for bi, b := range sorted {
		if bi%ctxEveryBlocks == 0 {
			if err := opts.Err(); err != nil {
				return core.Coloring{}, err
			}
		}
		uncolored = uncolored[:0]
		for _, v := range b.Vertices {
			if !c.Colored(v) {
				uncolored = append(uncolored, v)
			}
		}
		// Non-increasing weight, ties by id: deterministic.
		for i := 1; i < len(uncolored); i++ {
			for j := i; j > 0; j-- {
				a, bb := uncolored[j-1], uncolored[j]
				if g.Weight(bb) > g.Weight(a) || (g.Weight(bb) == g.Weight(a) && bb < a) {
					uncolored[j-1], uncolored[j] = bb, a
				} else {
					break
				}
			}
		}
		for _, v := range uncolored {
			c.Start[v] = s.PlaceLowest(g, c, v, -1)
		}
	}
	if err := colorStragglers(g, c, s, opts); err != nil {
		return core.Coloring{}, err
	}
	return c, nil
}

// SmartLargestCliqueFirst3D is SGK in 3D (weight-sorted block order).
func SmartLargestCliqueFirst3D(g *grid.Grid3D) core.Coloring {
	return mustBlocks(smartBlocksSorted(g, g.CliqueBlocks(), nil))
}
