package heuristics

import (
	"fmt"
	"sort"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/special"
)

func init() {
	MustRegister(Descriptor{
		Name: BD, Dims: DimBoth, Paper: true, Order: 6,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			switch g := s.(type) {
			case *grid.Grid2D:
				c, _, err := BipartiteDecomposition2DOpts(g, opts)
				return c, err
			case *grid.Grid3D:
				c, _, err := BipartiteDecomposition3DOpts(g, opts)
				return c, err
			}
			return core.Coloring{}, fmt.Errorf("BD: unsupported stencil type %T", s)
		},
	})
	MustRegister(Descriptor{
		Name: BDP, Dims: DimBoth, Paper: true, Order: 7,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			switch g := s.(type) {
			case *grid.Grid2D:
				c, _, err := BipartiteDecompositionPost2DOpts(g, opts)
				return c, err
			case *grid.Grid3D:
				c, _, err := BipartiteDecompositionPost3DOpts(g, opts)
				return c, err
			}
			return core.Coloring{}, fmt.Errorf("BDP: unsupported stencil type %T", s)
		},
	})
}

// BipartiteDecomposition2D is BD (Section V-B), a 2-approximation for
// 2DS-IVC. Each row — a chain, hence bipartite — is colored optimally with
// the chain algorithm; RC, the maximum color used by any row, is itself a
// lower bound on the optimum (a row is a subgraph). Even rows keep their
// colors in [0, RC) and odd rows are lifted by RC into [RC, 2RC), so rows
// never conflict and maxcolor <= 2·RC <= 2·maxcolor*.
//
// The second return value is RC, the proven lower bound.
func BipartiteDecomposition2D(g *grid.Grid2D) (core.Coloring, int64) {
	c, rc, _ := BipartiteDecomposition2DOpts(g, nil) // cannot fail without a context
	return c, rc
}

// BipartiteDecomposition2DOpts is BipartiteDecomposition2D threaded with
// SolveOptions: the pass polls for cancellation once per row and records
// placements into the stats sink, returning the context's error (and no
// coloring) if the solve is abandoned mid-decomposition.
func BipartiteDecomposition2DOpts(g *grid.Grid2D, opts *core.SolveOptions) (core.Coloring, int64, error) {
	c := core.NewColoring(g.Len())
	var rc int64
	for j := 0; j < g.Y; j++ {
		if err := opts.Err(); err != nil {
			return core.Coloring{}, 0, err
		}
		starts, rowMC := special.ColorChain(g.Row(j))
		rc = max(rc, rowMC)
		for i := 0; i < g.X; i++ {
			c.Start[g.ID(i, j)] = starts[i]
		}
	}
	opts.Sink().AddPlacements(int64(g.Len()))
	// Each row's colors live in [0, its own maxcolor) ⊆ [0, RC); lifting
	// odd rows by RC separates every cross-row conflict (rows two apart
	// are non-adjacent in the 9-pt stencil).
	for j := 1; j < g.Y; j += 2 {
		for i := 0; i < g.X; i++ {
			c.Start[g.ID(i, j)] += rc
		}
	}
	return c, rc, nil
}

// BipartiteDecomposition3D is BD for 3DS-IVC, a 4-approximation
// (Section V-B): each z-layer is colored with the 2D decomposition (each
// within a factor 2 of its layer optimum, which bounds the global
// optimum), LC is the maximum maxcolor over the layers, and odd layers are
// lifted by LC. The second return value is the best per-layer RC, a valid
// lower bound on the 3D optimum.
func BipartiteDecomposition3D(g *grid.Grid3D) (core.Coloring, int64) {
	c, lb, _ := BipartiteDecomposition3DOpts(g, nil)
	return c, lb
}

// BipartiteDecomposition3DOpts is BipartiteDecomposition3D with options;
// cancellation is polled per layer (and per row inside each layer).
func BipartiteDecomposition3DOpts(g *grid.Grid3D, opts *core.SolveOptions) (core.Coloring, int64, error) {
	c := core.NewColoring(g.Len())
	var lc, lb int64
	layerCol := make([]core.Coloring, g.Z)
	for k := 0; k < g.Z; k++ {
		layer := g.Layer(k)
		lcol, rc, err := BipartiteDecomposition2DOpts(layer, opts)
		if err != nil {
			return core.Coloring{}, 0, err
		}
		layerCol[k] = lcol
		lb = max(lb, rc)
		lc = max(lc, lcol.MaxColor(layer))
	}
	for k := 0; k < g.Z; k++ {
		base := k * g.X * g.Y
		var lift int64
		if k%2 == 1 {
			lift = lc
		}
		for v, s := range layerCol[k].Start {
			c.Start[base+v] = s + lift
		}
	}
	return c, lb, nil
}

// postOrder builds BDP's recoloring order (Section V-B): vertices are
// listed as members of the clique blocks sorted by non-increasing total
// weight; within a block they are taken in increasing order of the lower
// end of their current interval; each vertex appears at its first listing.
func postOrder(g core.Graph, c core.Coloring, blocks []grid.Block) []int {
	sorted := append([]grid.Block{}, blocks...)
	grid.SortBlocksByWeightDesc(sorted)
	order := make([]int, 0, g.Len())
	seen := make([]bool, g.Len())
	var members []int
	for _, b := range sorted {
		members = members[:0]
		for _, v := range b.Vertices {
			if !seen[v] {
				members = append(members, v)
			}
		}
		sort.SliceStable(members, func(a, bb int) bool {
			return c.Start[members[a]] < c.Start[members[bb]]
		})
		for _, v := range members {
			seen[v] = true
			order = append(order, v)
		}
	}
	for v := 0; v < g.Len(); v++ { // stragglers on degenerate grids
		if !seen[v] {
			order = append(order, v)
		}
	}
	return order
}

// recolor compacts a complete valid coloring in place: each vertex in
// order is lifted out and re-placed at its lowest feasible start. Because
// the vertex's old start remains feasible, starts never increase, so the
// result is valid with maxcolor no larger than the input's. Cancellation
// is polled every core.CtxCheckInterval vertices; on cancellation the
// coloring may be left partially compacted but is abandoned by callers.
func recolor(g core.Graph, c core.Coloring, order []int, opts *core.SolveOptions) error {
	s := core.AcquireFitScratch(opts)
	defer core.ReleaseFitScratch(s)
	for i, v := range order {
		if i%core.CtxCheckInterval == 0 {
			if err := opts.Err(); err != nil {
				return err
			}
		}
		c.Start[v] = core.Unset
		c.Start[v] = s.PlaceLowest(g, c, v, -1)
	}
	return nil
}

// BipartiteDecompositionPost2D is BDP in 2D: BD followed by the greedy
// recoloring pass. The returned bound is BD's RC.
func BipartiteDecompositionPost2D(g *grid.Grid2D) (core.Coloring, int64) {
	c, rc, _ := BipartiteDecompositionPost2DOpts(g, nil)
	return c, rc
}

// BipartiteDecompositionPost2DOpts is BDP in 2D with options; the
// decompose and post phases are observed separately (stats phases and
// trace spans).
func BipartiteDecompositionPost2DOpts(g *grid.Grid2D, opts *core.SolveOptions) (core.Coloring, int64, error) {
	stop := core.StartPhase(opts, "BDP/decompose")
	c, rc, err := BipartiteDecomposition2DOpts(g, opts)
	stop()
	if err != nil {
		return core.Coloring{}, 0, err
	}
	stop = core.StartPhase(opts, "BDP/post")
	err = recolor(g, c, postOrder(g, c, g.CliqueBlocks()), opts)
	stop()
	if err != nil {
		return core.Coloring{}, 0, err
	}
	return c, rc, nil
}

// BipartiteDecompositionPost3D is BDP in 3D.
func BipartiteDecompositionPost3D(g *grid.Grid3D) (core.Coloring, int64) {
	c, lb, _ := BipartiteDecompositionPost3DOpts(g, nil)
	return c, lb
}

// BipartiteDecompositionPost3DOpts is BDP in 3D with options.
func BipartiteDecompositionPost3DOpts(g *grid.Grid3D, opts *core.SolveOptions) (core.Coloring, int64, error) {
	stop := core.StartPhase(opts, "BDP/decompose")
	c, lb, err := BipartiteDecomposition3DOpts(g, opts)
	stop()
	if err != nil {
		return core.Coloring{}, 0, err
	}
	stop = core.StartPhase(opts, "BDP/post")
	err = recolor(g, c, postOrder(g, c, g.CliqueBlocks()), opts)
	stop()
	if err != nil {
		return core.Coloring{}, 0, err
	}
	return c, lb, nil
}
