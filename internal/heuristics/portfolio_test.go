package heuristics

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// TestPortfolioParallelMatchesSequential is the determinism contract of
// the parallel portfolio: for Parallelism in {2, 4, 8}, the winning
// algorithm and the coloring are byte-identical to the sequential run.
// Running under `go test -race` (make check) also exercises the
// concurrent paths for data races, including the shared stats sink.
func TestPortfolioParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	instances := []grid.Stencil{
		random2D(rng, 24, 24, 9),
		random2D(rng, 1, 40, 5),
		random3D(rng, 6, 6, 6, 9),
		random3D(rng, 1, 8, 8, 7),
	}
	for _, s := range instances {
		seqC, seqAlg, err := Portfolio(s, All(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			var stats core.Stats
			opts := &core.SolveOptions{Parallelism: par, Stats: &stats}
			parC, parAlg, err := Portfolio(s, All(), opts)
			if err != nil {
				t.Fatalf("par=%d: %v", par, err)
			}
			if parAlg != seqAlg {
				t.Errorf("par=%d winner %s, sequential winner %s", par, parAlg, seqAlg)
			}
			if !reflect.DeepEqual(parC.Start, seqC.Start) {
				t.Errorf("par=%d coloring differs from sequential run", par)
			}
			if stats.Placements() == 0 {
				t.Errorf("par=%d: shared stats sink recorded no placements", par)
			}
		}
	}
}

// TestPortfolioTieBreakPaperOrder: on an all-equal-weight instance many
// algorithms tie on maxcolor; the winner must be the earliest in paper
// order (GLL), in both sequential and parallel runs.
func TestPortfolioTieBreakPaperOrder(t *testing.T) {
	g := grid.MustGrid2D(6, 6) // all-zero weights: every algorithm scores 0
	for _, par := range []int{1, 4} {
		_, alg, err := Portfolio(g, All(), &core.SolveOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if alg != GLL {
			t.Errorf("par=%d: tie broke to %s, want GLL (paper order)", par, alg)
		}
	}
}

// TestPortfolioErrors: empty portfolios and member errors abort the run
// deterministically.
func TestPortfolioErrors(t *testing.T) {
	g2 := grid.MustGrid2D(4, 4)
	if _, _, err := Portfolio(g2, nil, nil); err == nil {
		t.Error("empty portfolio must error")
	}
	// BDL cannot run on a 2D instance: the portfolio must fail, not skip.
	for _, par := range []int{1, 4} {
		_, _, err := Portfolio(g2, []Algorithm{GLL, BDL, BDP}, &core.SolveOptions{Parallelism: par})
		if err == nil {
			t.Errorf("par=%d: portfolio with a dimension-mismatched member must error", par)
		}
	}
	// A canceled context fails every member; the earliest slice position's
	// error surfaces.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Portfolio(g2, All(), &core.SolveOptions{Ctx: ctx, Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled portfolio: err = %v, want context.Canceled", err)
	}
}

// TestBestMatchesMinimum: Best agrees with the minimum over individual
// runs (the old Best2D/Best3D loop semantics).
func TestBestMatchesMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := random3D(rng, 4, 5, 3, 9)
	best, alg, err := Best(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	minVal := int64(-1)
	for _, a := range All() {
		c, err := Run(a, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mc := c.MaxColor(g); minVal < 0 || mc < minVal {
			minVal = mc
		}
	}
	if got := best.MaxColor(g); got != minVal {
		t.Errorf("Best = %d via %s, want minimum %d", got, alg, minVal)
	}
	if err := best.Validate(g); err != nil {
		t.Errorf("Best coloring invalid: %v", err)
	}
}
