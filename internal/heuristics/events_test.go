package heuristics

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
)

// eventMsgs decodes the msg field of every JSON event line in buf.
func eventMsgs(t *testing.T, buf *bytes.Buffer) []string {
	t.Helper()
	var msgs []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		msgs = append(msgs, obj["msg"].(string))
	}
	return msgs
}

// TestRunEmitsSolveEvents: a dispatched solve brackets itself with
// solve.start / solve.finish carrying the algorithm and maxcolor.
func TestRunEmitsSolveEvents(t *testing.T) {
	g := grid.MustGrid2D(8, 8)
	for v := range g.W {
		g.W[v] = int64(v%5) + 1
	}
	var buf bytes.Buffer
	ev := obsv.NewJSONEventSink(&buf)
	c, err := Run(GLL, g, &core.SolveOptions{Events: ev})
	if err != nil {
		t.Fatal(err)
	}
	msgs := eventMsgs(t, &buf)
	if len(msgs) != 2 || msgs[0] != "solve.start" || msgs[1] != "solve.finish" {
		t.Fatalf("events = %v, want [solve.start solve.finish]", msgs)
	}
	if ev.Emitted() != 2 {
		t.Errorf("Emitted = %d, want 2", ev.Emitted())
	}
	var fin map[string]any
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if err := json.Unmarshal([]byte(lines[1]), &fin); err != nil {
		t.Fatal(err)
	}
	if fin["alg"] != "GLL" || fin["maxcolor"] != float64(c.MaxColor(g)) {
		t.Errorf("solve.finish attrs = %v (maxcolor %d)", fin, c.MaxColor(g))
	}
}

// TestRunEmitsSolveError: a failing solve logs solve.error after
// solve.start instead of solve.finish, and a dispatch that fails
// validation (unknown algorithm) emits nothing at all.
func TestRunEmitsSolveError(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(8, 8)

	var buf bytes.Buffer
	if _, err := Run("no-such-alg", g,
		&core.SolveOptions{Events: obsv.NewJSONEventSink(&buf)}); err == nil {
		t.Fatal("unknown algorithm did not error")
	}
	if got := eventMsgs(t, &buf); len(got) != 0 {
		t.Fatalf("unknown-algorithm dispatch emitted %v before validation", got)
	}

	buf.Reset()
	_, err := Run(testCancelAlg, g, &core.SolveOptions{Events: obsv.NewJSONEventSink(&buf)})
	if err == nil {
		t.Fatal("canceling algorithm did not error")
	}
	msgs := eventMsgs(t, &buf)
	if len(msgs) != 2 || msgs[0] != "solve.start" || msgs[1] != "solve.error" {
		t.Fatalf("events = %v, want [solve.start solve.error]", msgs)
	}
}

// TestRunEmitsSolveErrorOnPanic: a recovered solver crash still closes
// the event bracket with solve.error, so log consumers never see a
// dangling solve.start.
func TestRunEmitsSolveErrorOnPanic(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(8, 8)
	var buf bytes.Buffer
	_, err := Run(testPanicAlg, g, &core.SolveOptions{Events: obsv.NewJSONEventSink(&buf)})
	var se *core.SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *core.SolveError", err, err)
	}
	msgs := eventMsgs(t, &buf)
	if len(msgs) != 2 || msgs[0] != "solve.start" || msgs[1] != "solve.error" {
		t.Fatalf("events = %v, want [solve.start solve.error]", msgs)
	}
}

// TestPortfolioPartialEvent: a partial portfolio return logs
// solve.partial with the completed count and winner, and a panicked
// member logs portfolio.drop.
func TestPortfolioPartialEvent(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(10, 10)
	for v := range g.W {
		g.W[v] = int64(v%7) + 1
	}
	var buf bytes.Buffer
	ev := obsv.NewJSONEventSink(&buf)
	_, winner, err := Portfolio(g, []Algorithm{GLL, testPanicAlg, testCancelAlg},
		&core.SolveOptions{Events: ev, PartialOnCancel: true})
	if !errors.Is(err, core.ErrPartial) {
		t.Fatalf("err = %v, want core.ErrPartial (winner %q)", err, winner)
	}
	msgs := eventMsgs(t, &buf)
	var sawDrop, sawPartial bool
	for i, m := range msgs {
		if m == "portfolio.drop" {
			sawDrop = true
		}
		if m == "solve.partial" {
			sawPartial = true
			var obj map[string]any
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if err := json.Unmarshal([]byte(lines[i]), &obj); err != nil {
				t.Fatal(err)
			}
			if obj["winner"] != string(winner) || obj["completed"] != float64(1) {
				t.Errorf("solve.partial attrs = %v, want winner %q completed 1", obj, winner)
			}
		}
	}
	if !sawDrop {
		t.Errorf("events %v missing portfolio.drop for the panicked member", msgs)
	}
	if !sawPartial {
		t.Errorf("events %v missing solve.partial", msgs)
	}
}
