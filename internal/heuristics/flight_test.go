package heuristics

import (
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
)

func flightTestGrid(t *testing.T) *grid.Grid2D {
	t.Helper()
	w := make([]int64, 8*8)
	for i := range w {
		w[i] = int64(i%5 + 1)
	}
	g, err := grid.FromWeights2D(8, 8, w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestNilTraceCtxNoAllocs pins the disabled-tracing path at zero
// allocations: with no TraceContext in the options, the only cost Run
// pays for the flight-recorder feature is one nil compare yielding the
// zero FlightSpan. The trace-check tier relies on this staying free —
// the recorder is always-on in the service but absent in library use.
func TestNilTraceCtxNoAllocs(t *testing.T) {
	opts := &core.SolveOptions{}
	if n := testing.AllocsPerRun(200, func() {
		fs := startFlight(opts, "solve:GLL")
		if fs.Active() {
			t.Fatal("nil trace context produced an active span")
		}
		fs.EndDetail("", 0)
	}); n != 0 {
		t.Fatalf("disabled flight path allocates %v/op, want 0", n)
	}
}

// TestRunRecordsFlightSpans: a Run with a trace context attached
// records the solve span (with the maxcolor as its arg) parented under
// the caller's span, and solver-internal phases nest under the solve
// span — the per-request span tree the /debug/flight surface serves.
func TestRunRecordsFlightSpans(t *testing.T) {
	g := flightTestGrid(t)
	rec := obsv.NewFlightRecorder(256, nil)
	tc := rec.NewContext("job-1", "team-a")
	root := tc.Start("solve")
	opts := &core.SolveOptions{TraceCtx: root.Context()}
	c, err := Run("GLL", g, opts)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	recs := rec.Snapshot(tc.TraceID(), "", "", 0)
	var solveRec *obsv.FlightRecord
	var rootSpan uint64
	for i := range recs {
		switch recs[i].Name {
		case "solve":
			rootSpan = recs[i].Span
		case "solve:GLL":
			solveRec = &recs[i]
		}
	}
	if solveRec == nil {
		t.Fatalf("no solve:GLL span in flight records: %+v", recs)
	}
	if rootSpan == 0 || solveRec.Parent != rootSpan {
		t.Errorf("solve:GLL parent = %#x, want root span %#x", solveRec.Parent, rootSpan)
	}
	if want := c.MaxColor(g); solveRec.Arg != want {
		t.Errorf("solve:GLL arg = %d, want maxcolor %d", solveRec.Arg, want)
	}
	if solveRec.Job != "job-1" || solveRec.Tenant != "team-a" {
		t.Errorf("solve:GLL identity = %q/%q, want job-1/team-a", solveRec.Job, solveRec.Tenant)
	}
}
