//go:build !race

package heuristics

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
