package heuristics

import (
	"math/rand"
	"testing"

	"stencilivc/internal/bounds"
	"stencilivc/internal/grid"
)

func TestSGK3DFullValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		g := random3D(rng, 2+rng.Intn(2), 2+rng.Intn(2), 2+rng.Intn(2), 9)
		c := SmartLargestCliqueFirst3DFull(g)
		if err := c.Validate(g); err != nil {
			t.Fatal(err)
		}
		if c.MaxColor(g) < bounds.MaxK8(g) {
			t.Fatal("below the K8 bound")
		}
	}
}

func TestSGK3DFullSingleBlockIsOptimal(t *testing.T) {
	// A lone K8 is a clique: the full-permutation variant must reach the
	// clique optimum (total weight) exactly, like its 2D sibling.
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		g := grid.MustGrid3D(2, 2, 2)
		var total int64
		for v := range g.W {
			g.W[v] = rng.Int63n(9)
			total += g.W[v]
		}
		c := SmartLargestCliqueFirst3DFull(g)
		if c.MaxColor(g) != total {
			t.Fatalf("K8 coloring = %d, want clique sum %d", c.MaxColor(g), total)
		}
	}
}

func TestSGK3DFullVsSorted(t *testing.T) {
	// The full variant explores a superset of the sorted variant's
	// choices per block, but commits greedily block by block, so global
	// dominance is not guaranteed; verify both are valid and report the
	// relationship for the record.
	rng := rand.New(rand.NewSource(73))
	fullWins, sortedWins := 0, 0
	for trial := 0; trial < 10; trial++ {
		g := random3D(rng, 3, 3, 3, 9)
		full := SmartLargestCliqueFirst3DFull(g)
		sorted := SmartLargestCliqueFirst3D(g)
		if err := full.Validate(g); err != nil {
			t.Fatal(err)
		}
		if err := sorted.Validate(g); err != nil {
			t.Fatal(err)
		}
		switch {
		case full.MaxColor(g) < sorted.MaxColor(g):
			fullWins++
		case sorted.MaxColor(g) < full.MaxColor(g):
			sortedWins++
		}
	}
	t.Logf("full wins %d, sorted wins %d of 10", fullWins, sortedWins)
}
