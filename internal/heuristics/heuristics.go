package heuristics

import (
	"sort"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// Algorithm names a coloring heuristic from the paper.
type Algorithm string

// The seven algorithms compared in Sections VI and VII.
const (
	GLL Algorithm = "GLL" // Greedy Line-by-Line
	GZO Algorithm = "GZO" // Greedy Z-Order
	GLF Algorithm = "GLF" // Greedy Largest First
	GKF Algorithm = "GKF" // Greedy Largest Clique First
	SGK Algorithm = "SGK" // Smart Greedy Largest Clique First
	BD  Algorithm = "BD"  // Bipartite Decomposition (2-approx 2D, 4-approx 3D)
	BDP Algorithm = "BDP" // Bipartite Decomposition + Post optimization

	// BDL is an extension beyond the paper (see LayeredBDP3D): per-layer
	// BDP with a global post pass. 3D only; registered with Paper=false so
	// the All() evaluation matrix stays the paper's seven algorithms.
	BDL Algorithm = "BDL"
)

func init() {
	MustRegister(Descriptor{
		Name: GLL, Dims: DimBoth, Paper: true, Order: 1,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			return core.GreedyColorOpts(s, s.LineOrder(), opts)
		},
	})
	MustRegister(Descriptor{
		Name: GZO, Dims: DimBoth, Paper: true, Order: 2,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			return core.GreedyColorOpts(s, s.ZOrder(), opts)
		},
	})
	MustRegister(Descriptor{
		Name: GLF, Dims: DimBoth, Paper: true, Order: 3,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			return core.GreedyColorOpts(s, WeightDescOrder(s), opts)
		},
	})
}

// mustGreedy runs the greedy engine with an order we constructed
// ourselves; a permutation failure is a programming error, not an input
// error.
func mustGreedy(g core.Graph, order []int) core.Coloring {
	c, err := core.GreedyColor(g, order)
	if err != nil {
		panic("heuristics: internal order invalid: " + err.Error())
	}
	return c
}

// LargestFirst is GLF: greedy over vertices sorted by non-increasing
// weight (ties by vertex id for determinism). Works on any graph.
func LargestFirst(g core.Graph) core.Coloring {
	return mustGreedy(g, WeightDescOrder(g))
}

// WeightDescOrder returns the GLF vertex order — non-increasing weight,
// ties by vertex id — without coloring; it is the single comparator
// shared by LargestFirst, the exact solvers, and the experiment harness.
func WeightDescOrder(g core.Graph) []int {
	order := make([]int, g.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Weight(order[a]) > g.Weight(order[b])
	})
	return order
}
