// Package heuristics implements the coloring algorithms evaluated in the
// paper (Section V): the greedy orderings GLL, GZO, and GLF; the
// clique-block heuristics GKF and SGK; and the Bipartite Decomposition
// approximation BD with its post-optimized variant BDP.
//
// Every function returns a complete, valid coloring; validity is enforced
// by construction (each placement uses the lowest-fit engine against all
// colored neighbors) and re-verified by property tests.
package heuristics

import (
	"fmt"
	"sort"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// Algorithm names a coloring heuristic from the paper.
type Algorithm string

// The seven algorithms compared in Sections VI and VII.
const (
	GLL Algorithm = "GLL" // Greedy Line-by-Line
	GZO Algorithm = "GZO" // Greedy Z-Order
	GLF Algorithm = "GLF" // Greedy Largest First
	GKF Algorithm = "GKF" // Greedy Largest Clique First
	SGK Algorithm = "SGK" // Smart Greedy Largest Clique First
	BD  Algorithm = "BD"  // Bipartite Decomposition (2-approx 2D, 4-approx 3D)
	BDP Algorithm = "BDP" // Bipartite Decomposition + Post optimization

	// BDL is an extension beyond the paper (see LayeredBDP3D): per-layer
	// BDP with a global post pass. 3D only; excluded from All() so the
	// evaluation matrix stays the paper's seven algorithms.
	BDL Algorithm = "BDL"
)

// All returns the algorithms in the paper's presentation order.
func All() []Algorithm {
	return []Algorithm{GLL, GZO, GLF, GKF, SGK, BD, BDP}
}

// Run2D executes the named algorithm on a 9-pt stencil instance.
func Run2D(alg Algorithm, g *grid.Grid2D) (core.Coloring, error) {
	switch alg {
	case GLL:
		return mustGreedy(g, grid.LineByLine2D(g)), nil
	case GZO:
		return mustGreedy(g, grid.ZOrder2D(g)), nil
	case GLF:
		return LargestFirst(g), nil
	case GKF:
		return LargestCliqueFirst2D(g), nil
	case SGK:
		return SmartLargestCliqueFirst2D(g), nil
	case BD:
		c, _ := BipartiteDecomposition2D(g)
		return c, nil
	case BDP:
		c, _ := BipartiteDecompositionPost2D(g)
		return c, nil
	default:
		return core.Coloring{}, fmt.Errorf("heuristics: unknown algorithm %q", alg)
	}
}

// Run3D executes the named algorithm on a 27-pt stencil instance.
func Run3D(alg Algorithm, g *grid.Grid3D) (core.Coloring, error) {
	switch alg {
	case GLL:
		return mustGreedy(g, grid.LineByLine3D(g)), nil
	case GZO:
		return mustGreedy(g, grid.ZOrder3D(g)), nil
	case GLF:
		return LargestFirst(g), nil
	case GKF:
		return LargestCliqueFirst3D(g), nil
	case SGK:
		return SmartLargestCliqueFirst3D(g), nil
	case BD:
		c, _ := BipartiteDecomposition3D(g)
		return c, nil
	case BDP:
		c, _ := BipartiteDecompositionPost3D(g)
		return c, nil
	case BDL:
		return LayeredBDP3D(g), nil
	default:
		return core.Coloring{}, fmt.Errorf("heuristics: unknown algorithm %q", alg)
	}
}

// mustGreedy runs the greedy engine with an order we constructed
// ourselves; a permutation failure is a programming error, not an input
// error.
func mustGreedy(g core.Graph, order []int) core.Coloring {
	c, err := core.GreedyColor(g, order)
	if err != nil {
		panic("heuristics: internal order invalid: " + err.Error())
	}
	return c
}

// LargestFirst is GLF: greedy over vertices sorted by non-increasing
// weight (ties by vertex id for determinism). Works on any graph.
func LargestFirst(g core.Graph) core.Coloring {
	order := make([]int, g.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Weight(order[a]) > g.Weight(order[b])
	})
	return mustGreedy(g, order)
}

// WeightDescOrder returns the GLF vertex order without coloring; exposed
// for the exact solvers and experiment harness.
func WeightDescOrder(g core.Graph) []int {
	order := make([]int, g.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Weight(order[a]) > g.Weight(order[b])
	})
	return order
}
