package heuristics

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// TestAllIsPaperSet pins All() to the paper's seven algorithms in the
// paper's presentation order, derived from the registry rather than a
// hard-coded list.
func TestAllIsPaperSet(t *testing.T) {
	want := []Algorithm{GLL, GZO, GLF, GKF, SGK, BD, BDP}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("All()[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestBDLExcludedFromPaperSet: BDL is registered (dispatchable by name)
// but stays out of All() and is 3D-only.
func TestBDLExcludedFromPaperSet(t *testing.T) {
	for _, alg := range All() {
		if alg == BDL {
			t.Fatal("BDL must not be part of All()")
		}
	}
	d, ok := Lookup(BDL)
	if !ok {
		t.Fatal("BDL is not registered")
	}
	if d.Paper {
		t.Error("BDL descriptor must have Paper=false")
	}
	if d.Dims != Dim3D {
		t.Errorf("BDL dims = %s, want 3D", d.Dims)
	}
	// The full registry is the paper set plus the extensions (BDL and the
	// tile-parallel solvers PGLL/PGLF). Chaos-test algorithms ("test-"
	// prefix, registered lazily by the degradation tests) are excluded
	// from the count so test execution order doesn't matter.
	extensions := map[Algorithm]bool{BDL: true, PGLL: true, PGLF: true}
	n := 0
	for _, d := range Descriptors() {
		if strings.HasPrefix(string(d.Name), "test-") {
			continue
		}
		n++
		if d.Paper {
			continue
		}
		if !extensions[d.Name] {
			t.Errorf("unexpected non-paper algorithm %s in registry", d.Name)
		}
	}
	if n != len(All())+len(extensions) {
		t.Errorf("registry holds %d descriptors, want %d", n, len(All())+len(extensions))
	}
}

// TestParallelGreedyRegistered: the tile-parallel solvers dispatch
// through the registry on both dimensionalities, stay out of All(), and
// return valid colorings.
func TestParallelGreedyRegistered(t *testing.T) {
	for _, alg := range All() {
		if alg == PGLL || alg == PGLF {
			t.Fatalf("%s must not be part of All()", alg)
		}
	}
	g2 := grid.MustGrid2D(9, 7)
	g3 := grid.MustGrid3D(5, 4, 3)
	for v := range g2.W {
		g2.W[v] = int64(v%5 + 1)
	}
	for v := range g3.W {
		g3.W[v] = int64(v%4 + 1)
	}
	for _, alg := range []Algorithm{PGLL, PGLF} {
		d, ok := Lookup(alg)
		if !ok {
			t.Fatalf("%s is not registered", alg)
		}
		if d.Paper {
			t.Errorf("%s descriptor must have Paper=false", alg)
		}
		if d.Dims != DimBoth {
			t.Errorf("%s dims = %s, want 2D/3D", alg, d.Dims)
		}
		opts := &core.SolveOptions{Parallelism: 3}
		for _, s := range []grid.Stencil{g2, g3} {
			c, err := Run(alg, s, opts)
			if err != nil {
				t.Fatalf("Run(%s, %dD): %v", alg, s.Dims(), err)
			}
			if err := c.Validate(s); err != nil {
				t.Errorf("Run(%s, %dD): %v", alg, s.Dims(), err)
			}
		}
	}
}

// TestUnknownAlgorithmDispatch covers the error path of the registry in
// both dimensions.
func TestUnknownAlgorithmDispatch(t *testing.T) {
	g2 := grid.MustGrid2D(3, 3)
	g3 := grid.MustGrid3D(2, 2, 2)
	if _, err := Run2D("NOPE", g2); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("Run2D with unknown algorithm: err = %v, want unknown-algorithm error", err)
	}
	if _, err := Run3D("NOPE", g3); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("Run3D with unknown algorithm: err = %v, want unknown-algorithm error", err)
	}
	if _, err := Run("", g2, nil); err == nil {
		t.Error("Run with empty algorithm name must error")
	}
}

// TestDimensionMismatch: a 3D-only algorithm dispatched on a 2D instance
// errors through the dimension mask, not a silent zero coloring.
func TestDimensionMismatch(t *testing.T) {
	g2 := grid.MustGrid2D(3, 3)
	c, err := Run(BDL, g2, nil)
	if err == nil {
		t.Fatal("Run(BDL, 2D) must error")
	}
	if len(c.Start) != 0 {
		t.Errorf("error path returned a coloring with %d vertices", len(c.Start))
	}
}

// TestRegisterRejects covers the registry's validation.
func TestRegisterRejects(t *testing.T) {
	fn := func(grid.Stencil, *core.SolveOptions) (core.Coloring, error) {
		return core.Coloring{}, nil
	}
	cases := []struct {
		name string
		d    Descriptor
	}{
		{"empty name", Descriptor{Dims: Dim2D, Fn: fn}},
		{"nil fn", Descriptor{Name: "X1", Dims: Dim2D}},
		{"empty dims", Descriptor{Name: "X2", Fn: fn}},
		{"duplicate", Descriptor{Name: GLL, Dims: Dim2D, Fn: fn}},
	}
	for _, tc := range cases {
		if err := Register(tc.d); err == nil {
			t.Errorf("Register(%s) succeeded, want error", tc.name)
		}
	}
}

// TestFailingDecompositionSurfacesError is the regression test for the
// old dispatch path's `c, _ := BipartiteDecomposition2D(g)` pattern: a
// decomposition abandoned mid-solve (canceled context) must surface an
// error instead of a zero coloring that would silently win any portfolio.
func TestFailingDecompositionSurfacesError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := &core.SolveOptions{Ctx: ctx}

	g2 := grid.MustGrid2D(16, 16)
	g3 := grid.MustGrid3D(6, 6, 6)
	for _, alg := range []Algorithm{BD, BDP} {
		c, err := Run(alg, g2, opts)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s 2D canceled: err = %v, want context.Canceled", alg, err)
		}
		if len(c.Start) != 0 {
			t.Errorf("%s 2D canceled returned a (zero) coloring instead of none", alg)
		}
		if _, err := Run(alg, g3, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%s 3D canceled: err = %v, want context.Canceled", alg, err)
		}
	}
	// The exported Opts variants propagate too.
	if _, _, err := BipartiteDecomposition2DOpts(g2, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("BipartiteDecomposition2DOpts: err = %v, want context.Canceled", err)
	}
	if _, _, err := BipartiteDecompositionPost3DOpts(g3, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("BipartiteDecompositionPost3DOpts: err = %v, want context.Canceled", err)
	}
}

// TestCancellationAllAlgorithms: every registered algorithm honors a
// canceled context on both dimensions it supports.
func TestCancellationAllAlgorithms(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := &core.SolveOptions{Ctx: ctx}
	g2 := grid.MustGrid2D(12, 12)
	g3 := grid.MustGrid3D(5, 5, 5)
	for _, d := range Descriptors() {
		if d.Dims.Has(2) {
			if _, err := Run(d.Name, g2, opts); !errors.Is(err, context.Canceled) {
				t.Errorf("%s 2D: err = %v, want context.Canceled", d.Name, err)
			}
		}
		if d.Dims.Has(3) {
			if _, err := Run(d.Name, g3, opts); !errors.Is(err, context.Canceled) {
				t.Errorf("%s 3D: err = %v, want context.Canceled", d.Name, err)
			}
		}
	}
}

// TestRunRecordsStats: dispatch through the registry feeds the stats
// sink with per-algorithm phases and placement counters.
func TestRunRecordsStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := random2D(rng, 8, 8, 9)
	var stats core.Stats
	opts := &core.SolveOptions{Stats: &stats}
	for _, alg := range All() {
		if _, err := Run(alg, g, opts); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	// Every algorithm places all 64 vertices at least once.
	if got := stats.Placements(); got < int64(len(All())*g.Len()) {
		t.Errorf("placements = %d, want >= %d", got, len(All())*g.Len())
	}
	if stats.Probes() == 0 {
		t.Error("probes = 0, want > 0")
	}
	phases := map[string]bool{}
	for _, p := range stats.Phases() {
		phases[p.Name] = true
	}
	for _, alg := range All() {
		if !phases["solve:"+string(alg)] {
			t.Errorf("missing phase solve:%s (have %v)", alg, stats.Phases())
		}
	}
	if !phases["BDP/post"] {
		t.Errorf("missing phase BDP/post (have %v)", stats.Phases())
	}
}

// TestDimMaskString pins the mask rendering used in dispatch errors.
func TestDimMaskString(t *testing.T) {
	cases := map[DimMask]string{Dim2D: "2D", Dim3D: "3D", DimBoth: "2D/3D"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("DimMask(%d).String() = %q, want %q", m, got, want)
		}
	}
	if Dim2D.Has(3) || Dim3D.Has(2) || Dim2D.Has(4) {
		t.Error("DimMask.Has accepted a dimension outside the mask")
	}
}
