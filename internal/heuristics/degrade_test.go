package heuristics

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
)

// Chaos-test algorithms, registered lazily so tests that pin the
// registry's production contents can filter them by the "test-" prefix.
const (
	testPanicAlg  Algorithm = "test-panic"  // always panics
	testCancelAlg Algorithm = "test-cancel" // always reports cancellation

	testCrashSite core.FaultSite = "test/alg-crash"
)

var registerChaosAlgs = sync.OnceFunc(func() {
	MustRegister(Descriptor{
		Name: testPanicAlg, Dims: DimBoth, Order: 900,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			if opts.Fault(testCrashSite) {
				panic(core.InjectedPanic{Site: testCrashSite})
			}
			panic("chaos-test: induced solver crash")
		},
	})
	MustRegister(Descriptor{
		Name: testCancelAlg, Dims: DimBoth, Order: 901,
		Fn: func(s grid.Stencil, opts *core.SolveOptions) (core.Coloring, error) {
			return core.Coloring{}, context.Canceled
		},
	})
})

func degradeMetrics() *obsv.SolveMetrics {
	return obsv.NewSolveMetrics(obsv.NewRegistry())
}

// TestRunRecoversPanic: Run converts a solver panic into a typed
// *core.SolveError carrying the algorithm name, and counts the recovery.
func TestRunRecoversPanic(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(4, 4)
	m := degradeMetrics()
	_, err := Run(testPanicAlg, g, &core.SolveOptions{Metrics: m})
	var se *core.SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *core.SolveError", err, err)
	}
	if se.Algorithm != string(testPanicAlg) || !se.Panicked {
		t.Errorf("SolveError = %+v, want panicked %s", se, testPanicAlg)
	}
	if m.PanicsRecovered.Value() != 1 {
		t.Errorf("solver_panics_recovered_total = %d, want 1", m.PanicsRecovered.Value())
	}
}

// TestRunRecoversInjectedPanic: an injector-induced crash keeps its
// fault site through recovery into the typed error.
func TestRunRecoversInjectedPanic(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(4, 4)
	inj := core.InjectorFunc(func(s core.FaultSite) bool { return s == testCrashSite })
	_, err := Run(testPanicAlg, g, &core.SolveOptions{Injector: inj})
	var se *core.SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *core.SolveError", err)
	}
	if se.Site != testCrashSite {
		t.Errorf("SolveError.Site = %q, want %q", se.Site, testCrashSite)
	}
}

// TestPortfolioDegradesOnPanic: one crashing member is dropped, the
// survivors still compete, and the result matches the portfolio run
// without the crasher — sequentially and in parallel.
func TestPortfolioDegradesOnPanic(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(10, 10)
	for v := range g.W {
		g.W[v] = int64(v%5) + 1
	}
	wantC, wantAlg, err := Portfolio(g, []Algorithm{GLL, GLF}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		m := degradeMetrics()
		c, alg, err := Portfolio(g, []Algorithm{GLL, testPanicAlg, GLF},
			&core.SolveOptions{Parallelism: par, Metrics: m})
		if err != nil {
			t.Fatalf("par=%d: degraded portfolio errored: %v", par, err)
		}
		if alg != wantAlg || !reflect.DeepEqual(c.Start, wantC.Start) {
			t.Errorf("par=%d: degraded result (%s) differs from crash-free portfolio (%s)",
				par, alg, wantAlg)
		}
		if m.PanicsRecovered.Value() == 0 {
			t.Errorf("par=%d: solver_panics_recovered_total = 0, want > 0", par)
		}
	}
}

// TestPortfolioAllDegraded: when every member crashes there is nothing
// to degrade to; the earliest typed error surfaces.
func TestPortfolioAllDegraded(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(4, 4)
	_, _, err := Portfolio(g, []Algorithm{testPanicAlg, testPanicAlg}, nil)
	var se *core.SolveError
	if !errors.As(err, &se) || !se.Panicked {
		t.Fatalf("err = %v, want panicked *core.SolveError", err)
	}
}

// TestPortfolioUnknownStillFatal: configuration mistakes (an unknown
// algorithm name) abort the portfolio even when other members complete
// — degradation covers crashes, not misconfiguration.
func TestPortfolioUnknownStillFatal(t *testing.T) {
	g := grid.MustGrid2D(4, 4)
	_, _, err := Portfolio(g, []Algorithm{GLL, "no-such-alg"}, nil)
	if err == nil || errors.Is(err, core.ErrPartial) {
		t.Fatalf("err = %v, want a fatal unknown-algorithm error", err)
	}
}

// TestPortfolioPartialOnCancel: with PartialOnCancel, a portfolio cut
// short by cancellation returns the best coloring among the members
// that completed, tagged ErrPartial and counted; without the flag the
// cancellation aborts as before.
func TestPortfolioPartialOnCancel(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(10, 10)
	for v := range g.W {
		g.W[v] = int64(v%5) + 1
	}
	algs := []Algorithm{GLL, testCancelAlg, GLF}

	m := degradeMetrics()
	c, alg, err := Portfolio(g, algs, &core.SolveOptions{PartialOnCancel: true, Metrics: m})
	if !errors.Is(err, core.ErrPartial) {
		t.Fatalf("err = %v, want core.ErrPartial", err)
	}
	if alg == "" {
		t.Fatal("partial result carries no winning algorithm")
	}
	if verr := c.Validate(g); verr != nil {
		t.Fatalf("partial coloring invalid: %v", verr)
	}
	if m.PartialResults.Value() != 1 {
		t.Errorf("solver_partial_results_total = %d, want 1", m.PartialResults.Value())
	}

	if _, _, err := Portfolio(g, algs, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("without PartialOnCancel: err = %v, want context.Canceled", err)
	}
}

// TestPortfolioPartialNothingCompleted: PartialOnCancel with zero
// completed members has nothing to return; the cancellation propagates.
func TestPortfolioPartialNothingCompleted(t *testing.T) {
	registerChaosAlgs()
	g := grid.MustGrid2D(4, 4)
	m := degradeMetrics()
	_, _, err := Portfolio(g, []Algorithm{testCancelAlg},
		&core.SolveOptions{PartialOnCancel: true, Metrics: m})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if m.PartialResults.Value() != 0 {
		t.Errorf("solver_partial_results_total = %d, want 0", m.PartialResults.Value())
	}
}
