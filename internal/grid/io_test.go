package grid

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteRead2DRoundTrip(t *testing.T) {
	g := MustGrid2D(3, 2)
	for v := 0; v < g.Len(); v++ {
		g.W[v] = int64(v * 10)
	}
	var buf bytes.Buffer
	if err := Write2D(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, g3, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g3 != nil {
		t.Fatal("Read returned a 3D grid")
	}
	if g2.X != 3 || g2.Y != 2 {
		t.Fatalf("dims %dx%d", g2.X, g2.Y)
	}
	for v := 0; v < g.Len(); v++ {
		if g2.W[v] != g.W[v] {
			t.Fatalf("weight[%d] = %d, want %d", v, g2.W[v], g.W[v])
		}
	}
}

func TestWriteRead3DRoundTrip(t *testing.T) {
	g := MustGrid3D(2, 3, 2)
	for v := 0; v < g.Len(); v++ {
		g.W[v] = int64(v)
	}
	var buf bytes.Buffer
	if err := Write3D(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, g3, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != nil {
		t.Fatal("Read returned a 2D grid")
	}
	if g3.X != 2 || g3.Y != 3 || g3.Z != 2 {
		t.Fatalf("dims %dx%dx%d", g3.X, g3.Y, g3.Z)
	}
	for v := 0; v < g.Len(); v++ {
		if g3.W[v] != g.W[v] {
			t.Fatalf("weight[%d] = %d, want %d", v, g3.W[v], g.W[v])
		}
	}
}

func TestReadCommentsAndWhitespace(t *testing.T) {
	in := `# instance with comments
ivc2d 2 2
1 2  # trailing comment

3
4
`
	g2, _, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g2.At(1, 1) != 4 || g2.At(0, 1) != 3 {
		t.Errorf("weights parsed wrong: %v", g2.W)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"bogus 2 2\n1 2 3 4",   // bad header
		"ivc2d 2\n1 2",         // missing dim
		"ivc2d a b\n",          // non-numeric dims
		"ivc2d 2 2\n1 2 3",     // too few weights
		"ivc2d 2 2\n1 2 3 4 5", // too many weights on one line
		"ivc2d 2 2\n1 2 3 x",   // bad weight token
		"ivc2d 2 2\n1 2 3 -4",  // negative weight
		"ivc3d 2 2\n1 2 3 4",   // 3d header with 2 dims
		"ivc3d 1 1 1\n",        // missing weight
	}
	for i, in := range cases {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}
