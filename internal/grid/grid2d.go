package grid

import (
	"fmt"
	"math"

	"stencilivc/internal/core"
)

// Grid2D is an X×Y grid whose conflict graph is the 9-pt 2D stencil:
// vertices (i,j) and (i',j') are adjacent iff |i−i'| ≤ 1 and |j−j'| ≤ 1
// (and they differ). Vertex ids are row-major: id = j*X + i.
type Grid2D struct {
	X, Y int
	// W holds the vertex weights in row-major order; len(W) == X*Y.
	W []int64
	// total caches the weight sum, maintained by Set and the
	// constructors, so the no-overflow guarantee (Σw fits in int64,
	// hence every interval end start+w a solver can produce does too)
	// survives mutation. Direct writes to W leave it stale.
	total int64
}

var _ core.Graph = (*Grid2D)(nil)

// NewGrid2D allocates a zero-weight X×Y grid. Dimensions must be >= 1.
// Construction is overflow-safe: the per-axis caps are checked before
// the product X*Y is ever computed, so dimensions up to math.MaxInt are
// rejected with an error instead of wrapping into a short (or negative)
// weight slice and corrupting every derived vertex id.
func NewGrid2D(x, y int) (*Grid2D, error) {
	if x < 1 || y < 1 {
		return nil, fmt.Errorf("grid: invalid 2D dimensions %dx%d", x, y)
	}
	// Axis caps first: with both axes <= 2^20 the product fits easily,
	// so the x*y below can never overflow. checkedCells is belt and
	// braces should the caps ever be raised.
	if x > 1<<20 || y > 1<<20 {
		return nil, fmt.Errorf("grid: 2D dimensions %dx%d too large", x, y)
	}
	cells, err := checkedCells(x, y, 1)
	if err != nil {
		return nil, err
	}
	if cells > 1<<28 {
		return nil, fmt.Errorf("grid: 2D dimensions %dx%d too large", x, y)
	}
	return &Grid2D{X: x, Y: y, W: make([]int64, cells)}, nil
}

// checkedCells multiplies grid dimensions with explicit overflow
// checks, returning an error instead of a wrapped product.
func checkedCells(dims ...int) (int, error) {
	cells := 1
	for _, d := range dims {
		if d > 0 && cells > math.MaxInt/d {
			return 0, fmt.Errorf("grid: dimension product overflows int")
		}
		cells *= d
	}
	return cells, nil
}

// MustGrid2D is NewGrid2D that panics on error.
func MustGrid2D(x, y int) *Grid2D {
	g, err := NewGrid2D(x, y)
	if err != nil {
		panic(err)
	}
	return g
}

// FromWeights2D builds a grid from a row-major weight slice
// (weights[j*x+i] is the weight of cell (i,j)). The slice is copied.
// Weight sets whose total overflows int64 are rejected: the total
// bounds every interval end (start + w) a solver can produce, so a
// finite total is what keeps downstream arithmetic exact.
func FromWeights2D(x, y int, weights []int64) (*Grid2D, error) {
	g, err := NewGrid2D(x, y)
	if err != nil {
		return nil, err
	}
	if len(weights) != x*y {
		return nil, fmt.Errorf("grid: want %d weights, got %d", x*y, len(weights))
	}
	total, err := checkWeights(weights)
	if err != nil {
		return nil, err
	}
	copy(g.W, weights)
	g.total = total
	return g, nil
}

// checkWeights rejects negative weights and totals that overflow int64,
// returning the total for the grid's running-sum cache.
func checkWeights(weights []int64) (int64, error) {
	var total int64
	for _, w := range weights {
		if w < 0 {
			return 0, fmt.Errorf("grid: negative weight %d", w)
		}
		if total > math.MaxInt64-w {
			return 0, fmt.Errorf("grid: total weight overflows int64 (interval ends would wrap)")
		}
		total += w
	}
	return total, nil
}

// Len returns the number of vertices X*Y.
func (g *Grid2D) Len() int { return g.X * g.Y }

// Weight returns the weight of vertex v.
func (g *Grid2D) Weight(v int) int64 { return g.W[v] }

// ID returns the vertex id of cell (i,j).
func (g *Grid2D) ID(i, j int) int { return j*g.X + i }

// Coords returns the (i,j) cell of vertex v.
func (g *Grid2D) Coords(v int) (i, j int) { return v % g.X, v / g.X }

// At returns the weight of cell (i,j).
func (g *Grid2D) At(i, j int) int64 { return g.W[g.ID(i, j)] }

// Set assigns the weight of cell (i,j). Negative weights, and updates
// that would push the grid's running total weight past int64 (wrapping
// solver interval arithmetic), panic — exactly the assignments the
// constructors reject, so any grid buildable via FromWeights2D is
// buildable via Set. Direct writes to W bypass the guard and leave the
// cached total stale.
func (g *Grid2D) Set(i, j int, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("grid: negative weight %d", w))
	}
	id := g.ID(i, j)
	rest := g.total - g.W[id]
	if rest > math.MaxInt64-w {
		panic(fmt.Sprintf("grid: weight %d overflows the grid's total weight", w))
	}
	g.total = rest + w
	g.W[id] = w
}

// Neighbors appends the 9-pt stencil neighbors of v (up to 8) to buf.
func (g *Grid2D) Neighbors(v int, buf []int) []int {
	i, j := g.Coords(v)
	for dj := -1; dj <= 1; dj++ {
		nj := j + dj
		if nj < 0 || nj >= g.Y {
			continue
		}
		for di := -1; di <= 1; di++ {
			ni := i + di
			if ni < 0 || ni >= g.X || (di == 0 && dj == 0) {
				continue
			}
			buf = append(buf, nj*g.X+ni)
		}
	}
	return buf
}

// NeighborsFixed writes the 9-pt stencil neighbors of v (up to 8) into
// buf and returns the count; it is the allocation-free enumeration the
// placement kernels use (core.FixedGraph).
func (g *Grid2D) NeighborsFixed(v int, buf *[core.MaxFixedDegree]int) int {
	i, j := g.Coords(v)
	m := 0
	for dj := -1; dj <= 1; dj++ {
		nj := j + dj
		if nj < 0 || nj >= g.Y {
			continue
		}
		for di := -1; di <= 1; di++ {
			ni := i + di
			if ni < 0 || ni >= g.X || (di == 0 && dj == 0) {
				continue
			}
			buf[m] = nj*g.X + ni
			m++
		}
	}
	return m
}

// Degree returns the 9-pt degree of v in O(1) from its coordinates.
func (g *Grid2D) Degree(v int) int {
	i, j := g.Coords(v)
	return span(i, g.X)*span(j, g.Y) - 1
}

// span returns how many cells the closed range [c-1, c+1] covers inside
// a dimension of extent n.
func span(c, n int) int {
	s := 3
	if c == 0 {
		s--
	}
	if c == n-1 {
		s--
	}
	return s
}

var (
	_ core.FixedGraph  = (*Grid2D)(nil)
	_ core.DegreeGraph = (*Grid2D)(nil)
)

// FivePt is the 5-pt relaxation of a Grid2D: only the 4 axis neighbors
// conflict. It is bipartite (checkerboard), which is what makes the 5-pt
// relaxation polynomial (Section III-B). It shares the weight storage of
// the underlying grid.
type FivePt struct {
	G *Grid2D
}

var _ core.Graph = FivePt{}

// Len returns the number of vertices.
func (f FivePt) Len() int { return f.G.Len() }

// Weight returns the weight of vertex v.
func (f FivePt) Weight(v int) int64 { return f.G.W[v] }

// Neighbors appends the 5-pt (axis-only) neighbors of v to buf.
func (f FivePt) Neighbors(v int, buf []int) []int {
	g := f.G
	i, j := g.Coords(v)
	if i > 0 {
		buf = append(buf, v-1)
	}
	if i < g.X-1 {
		buf = append(buf, v+1)
	}
	if j > 0 {
		buf = append(buf, v-g.X)
	}
	if j < g.Y-1 {
		buf = append(buf, v+g.X)
	}
	return buf
}

// Parity returns the checkerboard side of vertex v ((i+j) mod 2), the
// natural bipartition of the 5-pt relaxation.
func (f FivePt) Parity(v int) int {
	i, j := f.G.Coords(v)
	return (i + j) % 2
}

// Degree returns the 5-pt degree of v in O(1) from its coordinates.
func (f FivePt) Degree(v int) int {
	g := f.G
	i, j := g.Coords(v)
	return span(i, g.X) + span(j, g.Y) - 2
}

var _ core.DegreeGraph = FivePt{}

// Row returns the weights of row j as a chain, in increasing i.
func (g *Grid2D) Row(j int) []int64 {
	return g.W[j*g.X : (j+1)*g.X]
}

// Clone returns a deep copy of the grid.
func (g *Grid2D) Clone() *Grid2D {
	c := MustGrid2D(g.X, g.Y)
	copy(c.W, g.W)
	c.total = g.total
	return c
}

// String summarizes the grid's shape and total weight.
func (g *Grid2D) String() string {
	return fmt.Sprintf("Grid2D(%dx%d, total=%d)", g.X, g.Y, core.TotalWeight(g))
}
