package grid

import (
	"math"
	"testing"
)

// TestNewGrid2DOverflowEdges: construction rejects every dimension
// combination near the math.MaxInt edge with an error — never a wrapped
// product, a panic, or a corrupt grid.
func TestNewGrid2DOverflowEdges(t *testing.T) {
	for _, tc := range [][2]int{
		{math.MaxInt, 1},
		{1, math.MaxInt},
		{math.MaxInt, math.MaxInt},
		{math.MaxInt/2 + 1, 2}, // product wraps exactly past MaxInt
		{1 << 30, 1 << 34},
		{3_037_000_500, 3_037_000_500}, // ~sqrt(MaxInt64) each
	} {
		g, err := NewGrid2D(tc[0], tc[1])
		if err == nil {
			t.Errorf("NewGrid2D(%d, %d) accepted; len(W)=%d", tc[0], tc[1], len(g.W))
		}
	}
	// The largest accepted shape still works.
	g, err := NewGrid2D(1<<14, 1<<14)
	if err != nil {
		t.Fatalf("NewGrid2D(2^14, 2^14): %v", err)
	}
	if len(g.W) != 1<<28 {
		t.Errorf("len(W) = %d, want 2^28", len(g.W))
	}
}

// TestNewGrid3DOverflowEdges is the 3D analogue.
func TestNewGrid3DOverflowEdges(t *testing.T) {
	for _, tc := range [][3]int{
		{math.MaxInt, 1, 1},
		{1, math.MaxInt, 1},
		{1, 1, math.MaxInt},
		{math.MaxInt, math.MaxInt, math.MaxInt},
		{1 << 16, 1 << 16, 1 << 16}, // inside axis caps, product too large
		{1 << 21, 1 << 21, 1 << 21}, // product wraps past MaxInt
	} {
		g, err := NewGrid3D(tc[0], tc[1], tc[2])
		if err == nil {
			t.Errorf("NewGrid3D(%d, %d, %d) accepted; len(W)=%d", tc[0], tc[1], tc[2], len(g.W))
		}
	}
	if _, err := NewGrid3D(512, 512, 512); err != nil {
		t.Fatalf("NewGrid3D(512^3): %v", err)
	}
}

// TestCheckedCells: the helper detects the exact wrap boundary.
func TestCheckedCells(t *testing.T) {
	if _, err := checkedCells(math.MaxInt, 1); err != nil {
		t.Errorf("MaxInt*1 rejected: %v", err)
	}
	if _, err := checkedCells(math.MaxInt, 2); err == nil {
		t.Error("MaxInt*2 accepted")
	}
	if n, err := checkedCells(math.MaxInt/3, 3); err != nil || n != math.MaxInt/3*3 {
		t.Errorf("(MaxInt/3)*3 = %d, %v", n, err)
	}
}

// TestFromWeightsTotalOverflow: weight sets whose sum would wrap int64
// are rejected so solver interval ends stay representable.
func TestFromWeightsTotalOverflow(t *testing.T) {
	if _, err := FromWeights2D(2, 1, []int64{math.MaxInt64, 1}); err == nil {
		t.Error("2D total-weight overflow accepted")
	}
	if _, err := FromWeights2D(2, 1, []int64{math.MaxInt64 - 1, 1}); err != nil {
		t.Errorf("2D total exactly MaxInt64 rejected: %v", err)
	}
	if _, err := FromWeights3D(1, 1, 2, []int64{math.MaxInt64, 1}); err == nil {
		t.Error("3D total-weight overflow accepted")
	}
	if _, err := FromWeights3D(1, 1, 2, []int64{math.MaxInt64 - 1, 1}); err != nil {
		t.Errorf("3D total exactly MaxInt64 rejected: %v", err)
	}
}

// TestSetWeightTotalOverflow: Set panics exactly when the grid's real
// total would overflow int64 — the same boundary the constructors
// enforce — and never on a large weight the running total still absorbs.
func TestSetWeightTotalOverflow(t *testing.T) {
	g := MustGrid2D(2, 2)
	// One huge cell among zeros is legal via FromWeights2D, so Set must
	// accept it too (the old per-cell cap of MaxInt64/len(W) did not).
	g.Set(0, 0, math.MaxInt64-1)
	g.Set(0, 1, 1) // total exactly MaxInt64: boundary accepted
	mustPanic(t, "2D Set past total", func() { g.Set(1, 0, 1) })
	// Replacing a weight frees budget for another cell.
	g.Set(0, 0, 0)
	g.Set(1, 0, math.MaxInt64-1)

	g3 := MustGrid3D(2, 2, 2)
	g3.Set(0, 0, 0, math.MaxInt64)
	mustPanic(t, "3D Set past total", func() { g3.Set(1, 1, 1, 1) })
	g3.Set(0, 0, 0, 7)
	g3.Set(1, 1, 1, math.MaxInt64-7)
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}
