package grid

import "fmt"

// Tile is one axis-aligned box of a grid partition: the cells
// [X0,X1)×[Y0,Y1)×[Z0,Z1). 2D tiles have Z0 = 0, Z1 = 1. Tiles are
// produced by Tiling and carry the parent grid's strides so vertex ids
// can be enumerated without another grid lookup.
type Tile struct {
	// ID is the tile's rank in the tiling, x-fastest over tile
	// coordinates. It is the first component of the deterministic
	// (tile-id, vertex-id) tie-break of the speculative solver.
	ID int
	// Cell bounds, half-open.
	X0, X1, Y0, Y1, Z0, Z1 int

	sx, sxy int // id strides of the parent grid (X and X*Y)
}

// Len returns the number of cells in the tile.
func (t Tile) Len() int {
	return (t.X1 - t.X0) * (t.Y1 - t.Y0) * (t.Z1 - t.Z0)
}

// AppendVertices appends the tile's vertex ids to buf in x-fastest
// (line-by-line) order — the tile-local GLL traversal.
func (t Tile) AppendVertices(buf []int) []int {
	for k := t.Z0; k < t.Z1; k++ {
		for j := t.Y0; j < t.Y1; j++ {
			base := k*t.sxy + j*t.sx
			for i := t.X0; i < t.X1; i++ {
				buf = append(buf, base+i)
			}
		}
	}
	return buf
}

// Tiling is a complete partition of a stencil grid into cache-sized
// tiles (2D: T×T blocks, 3D: T×T×T bricks; edge tiles are clipped). It
// is the decomposition unit of the tile-parallel speculative solver:
// tiles are colored concurrently and only cross-tile (halo) edges can
// conflict.
type Tiling struct {
	// Tiles lists every tile, sorted by ID (x-fastest tile order).
	Tiles []Tile
	// Size is the tile edge length in cells.
	Size int

	gx, gy, gz    int // grid extents
	ntx, nty, ntz int // tile counts per dimension
}

// NewTiling partitions an X×Y×Z grid (pass gz = 1 for 2D) into
// size-edged tiles. size must be >= 1.
func NewTiling(gx, gy, gz, size int) (*Tiling, error) {
	if size < 1 {
		return nil, fmt.Errorf("grid: tile size %d < 1", size)
	}
	if gx < 1 || gy < 1 || gz < 1 {
		return nil, fmt.Errorf("grid: invalid tiling extents %dx%dx%d", gx, gy, gz)
	}
	ceil := func(a, b int) int { return (a + b - 1) / b }
	tl := &Tiling{
		Size: size,
		gx:   gx, gy: gy, gz: gz,
		ntx: ceil(gx, size), nty: ceil(gy, size), ntz: ceil(gz, size),
	}
	tl.Tiles = make([]Tile, 0, tl.ntx*tl.nty*tl.ntz)
	id := 0
	for tz := 0; tz < tl.ntz; tz++ {
		for ty := 0; ty < tl.nty; ty++ {
			for tx := 0; tx < tl.ntx; tx++ {
				tl.Tiles = append(tl.Tiles, Tile{
					ID: id,
					X0: tx * size, X1: min((tx+1)*size, gx),
					Y0: ty * size, Y1: min((ty+1)*size, gy),
					Z0: tz * size, Z1: min((tz+1)*size, gz),
					sx: gx, sxy: gx * gy,
				})
				id++
			}
		}
	}
	return tl, nil
}

// TileOf returns the ID of the tile containing vertex v.
func (tl *Tiling) TileOf(v int) int {
	i := v % tl.gx
	v /= tl.gx
	j := v % tl.gy
	k := v / tl.gy
	return (k/tl.Size*tl.nty+j/tl.Size)*tl.ntx + i/tl.Size
}

// AppendBoundary appends the vertex ids of tile t that lie on a tile
// face shared with another tile — the halo cells whose stencil
// neighborhoods cross the partition. Only these vertices can be involved
// in cross-tile conflicts, so the speculative solver's detection sweep
// scans exactly this set.
func (tl *Tiling) AppendBoundary(t Tile, buf []int) []int {
	onFace := func(c, lo, hi, extent int) bool {
		return (c == lo && lo > 0) || (c == hi-1 && hi < extent)
	}
	for k := t.Z0; k < t.Z1; k++ {
		zf := onFace(k, t.Z0, t.Z1, tl.gz)
		for j := t.Y0; j < t.Y1; j++ {
			yf := onFace(j, t.Y0, t.Y1, tl.gy)
			base := k*t.sxy + j*t.sx
			if zf || yf {
				for i := t.X0; i < t.X1; i++ {
					buf = append(buf, base+i)
				}
				continue
			}
			for i := t.X0; i < t.X1; i++ {
				if onFace(i, t.X0, t.X1, tl.gx) {
					buf = append(buf, base+i)
				}
			}
		}
	}
	return buf
}

// Tiling partitions the 2D grid into size×size tiles.
func (g *Grid2D) Tiling(size int) (*Tiling, error) {
	return NewTiling(g.X, g.Y, 1, size)
}

// Tiling partitions the 3D grid into size×size×size bricks.
func (g *Grid3D) Tiling(size int) (*Tiling, error) {
	return NewTiling(g.X, g.Y, g.Z, size)
}
