package grid

import (
	"testing"
)

func TestGrid3DDimensions(t *testing.T) {
	if _, err := NewGrid3D(0, 1, 1); err == nil {
		t.Error("0-dim grid accepted")
	}
	g, err := NewGrid3D(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 60 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGrid3DIDRoundTrip(t *testing.T) {
	g := MustGrid3D(3, 4, 5)
	for k := 0; k < 5; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 3; i++ {
				gi, gj, gk := g.Coords(g.ID(i, j, k))
				if gi != i || gj != j || gk != k {
					t.Fatalf("Coords(ID(%d,%d,%d)) = (%d,%d,%d)", i, j, k, gi, gj, gk)
				}
			}
		}
	}
}

func TestGrid3DNeighborCounts(t *testing.T) {
	g := MustGrid3D(3, 3, 3)
	if d := len(g.Neighbors(g.ID(1, 1, 1), nil)); d != 26 {
		t.Errorf("center degree = %d, want 26", d)
	}
	if d := len(g.Neighbors(g.ID(0, 0, 0), nil)); d != 7 {
		t.Errorf("corner degree = %d, want 7", d)
	}
	if d := len(g.Neighbors(g.ID(1, 0, 0), nil)); d != 11 {
		t.Errorf("edge degree = %d, want 11", d)
	}
	if d := len(g.Neighbors(g.ID(1, 1, 0), nil)); d != 17 {
		t.Errorf("face degree = %d, want 17", d)
	}
}

func TestGrid3DAdjacencyDefinition(t *testing.T) {
	g := MustGrid3D(3, 2, 4)
	for v := 0; v < g.Len(); v++ {
		i, j, k := g.Coords(v)
		nbrs := map[int]bool{}
		for _, u := range g.Neighbors(v, nil) {
			nbrs[u] = true
		}
		for u := 0; u < g.Len(); u++ {
			ui, uj, uk := g.Coords(u)
			want := u != v && abs(ui-i) <= 1 && abs(uj-j) <= 1 && abs(uk-k) <= 1
			if nbrs[u] != want {
				t.Fatalf("adjacency(%d,%d) = %v, want %v", v, u, nbrs[u], want)
			}
		}
	}
}

func TestSevenPtBipartite(t *testing.T) {
	g := MustGrid3D(3, 3, 3)
	s := SevenPt{G: g}
	var buf []int
	for v := 0; v < s.Len(); v++ {
		buf = s.Neighbors(v, buf[:0])
		for _, u := range buf {
			if s.Parity(u) == s.Parity(v) {
				t.Fatalf("7-pt edge (%d,%d) within one parity class", v, u)
			}
		}
	}
	if d := len(s.Neighbors(g.ID(1, 1, 1), nil)); d != 6 {
		t.Errorf("7-pt center degree = %d, want 6", d)
	}
}

func TestGrid3DLayerAliases(t *testing.T) {
	g := MustGrid3D(2, 2, 3)
	g.Set(1, 1, 2, 9)
	layer := g.Layer(2)
	if layer.At(1, 1) != 9 {
		t.Errorf("Layer(2).At(1,1) = %d", layer.At(1, 1))
	}
	layer.Set(0, 0, 5)
	if g.At(0, 0, 2) != 5 {
		t.Error("Layer does not alias grid storage")
	}
}

func TestGrid3DCloneAndFromWeights(t *testing.T) {
	g, err := FromWeights3D(2, 1, 2, []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 0, 1) != 4 {
		t.Errorf("At(1,0,1) = %d", g.At(1, 0, 1))
	}
	c := g.Clone()
	c.Set(0, 0, 0, 7)
	if g.At(0, 0, 0) != 1 {
		t.Error("Clone aliases original")
	}
	if _, err := FromWeights3D(2, 2, 2, []int64{1}); err == nil {
		t.Error("short weights accepted")
	}
}
