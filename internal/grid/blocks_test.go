package grid

import (
	"testing"
)

func TestBlocks2DEnumeration(t *testing.T) {
	g := MustGrid2D(3, 3)
	for v := 0; v < g.Len(); v++ {
		g.W[v] = int64(v + 1)
	}
	blocks := Blocks2D(g)
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(blocks))
	}
	// Anchor (0,0): vertices 0,1,3,4 with weights 1+2+4+5 = 12.
	if blocks[0].Weight != 12 {
		t.Errorf("block(0,0) weight = %d, want 12", blocks[0].Weight)
	}
	for _, b := range blocks {
		if len(b.Vertices) != 4 {
			t.Fatalf("K4 block has %d vertices", len(b.Vertices))
		}
		var sum int64
		for _, v := range b.Vertices {
			sum += g.W[v]
		}
		if sum != b.Weight {
			t.Errorf("block weight %d != member sum %d", b.Weight, sum)
		}
	}
}

func TestBlocks2DMutualAdjacency(t *testing.T) {
	g := MustGrid2D(4, 3)
	for _, b := range Blocks2D(g) {
		for i, v := range b.Vertices {
			nbrs := map[int]bool{}
			for _, u := range g.Neighbors(v, nil) {
				nbrs[u] = true
			}
			for j, u := range b.Vertices {
				if i != j && !nbrs[u] {
					t.Fatalf("block vertices %d and %d not adjacent", v, u)
				}
			}
		}
	}
}

func TestBlocks2DDegenerate(t *testing.T) {
	if got := Blocks2D(MustGrid2D(1, 5)); got != nil {
		t.Errorf("1xN grid yielded %d blocks", len(got))
	}
	if got := Blocks2D(MustGrid2D(5, 1)); got != nil {
		t.Errorf("Nx1 grid yielded %d blocks", len(got))
	}
}

func TestBlocks3DEnumeration(t *testing.T) {
	g := MustGrid3D(3, 2, 2)
	for v := 0; v < g.Len(); v++ {
		g.W[v] = 1
	}
	blocks := Blocks3D(g)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
	for _, b := range blocks {
		if len(b.Vertices) != 8 || b.Weight != 8 {
			t.Fatalf("K8 block %v weight %d", b.Vertices, b.Weight)
		}
	}
}

func TestBlocks3DMutualAdjacency(t *testing.T) {
	g := MustGrid3D(3, 3, 2)
	for _, b := range Blocks3D(g) {
		for i, v := range b.Vertices {
			nbrs := map[int]bool{}
			for _, u := range g.Neighbors(v, nil) {
				nbrs[u] = true
			}
			for j, u := range b.Vertices {
				if i != j && !nbrs[u] {
					t.Fatalf("K8 vertices %d and %d not adjacent", v, u)
				}
			}
		}
	}
}

func TestSortBlocksByWeightDesc(t *testing.T) {
	blocks := []Block{
		{Vertices: []int{0}, Weight: 5},
		{Vertices: []int{1}, Weight: 9},
		{Vertices: []int{2}, Weight: 9},
		{Vertices: []int{3}, Weight: 1},
	}
	SortBlocksByWeightDesc(blocks)
	if blocks[0].Weight != 9 || blocks[1].Weight != 9 || blocks[3].Weight != 1 {
		t.Errorf("sorted weights: %v %v %v %v", blocks[0].Weight, blocks[1].Weight, blocks[2].Weight, blocks[3].Weight)
	}
	// Deterministic tie break by first vertex id.
	if blocks[0].Vertices[0] != 1 || blocks[1].Vertices[0] != 2 {
		t.Errorf("tie break wrong: %v then %v", blocks[0].Vertices, blocks[1].Vertices)
	}
}

func TestPairBlocksAndMaxWeight(t *testing.T) {
	weights := []int64{4, 1, 3}
	blocks := PairBlocks(weights, []int{0, 1, 2})
	if len(blocks) != 2 {
		t.Fatalf("pair blocks = %d", len(blocks))
	}
	if blocks[0].Weight != 5 || blocks[1].Weight != 4 {
		t.Errorf("pair weights %d,%d", blocks[0].Weight, blocks[1].Weight)
	}
	if MaxBlockWeight(blocks) != 5 {
		t.Errorf("MaxBlockWeight = %d", MaxBlockWeight(blocks))
	}
	if MaxBlockWeight(nil) != 0 {
		t.Error("MaxBlockWeight(nil) != 0")
	}
}
