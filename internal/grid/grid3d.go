package grid

import (
	"fmt"
	"math"

	"stencilivc/internal/core"
)

// Grid3D is an X×Y×Z grid whose conflict graph is the 27-pt 3D stencil:
// vertices (i,j,k) and (i',j',k') are adjacent iff each coordinate differs
// by at most 1 (and they differ). Vertex ids are x-fastest:
// id = (k*Y + j)*X + i.
type Grid3D struct {
	X, Y, Z int
	// W holds the vertex weights, x-fastest; len(W) == X*Y*Z.
	W []int64
	// total caches the weight sum, as in Grid2D. Direct writes to W —
	// including Set through a Layer view — leave it stale.
	total int64
}

var _ core.Graph = (*Grid3D)(nil)

// NewGrid3D allocates a zero-weight X×Y×Z grid. Dimensions must be >= 1.
// Construction is overflow-safe the same way NewGrid2D is: per-axis
// caps are checked before the product X*Y*Z is computed, so dimensions
// up to math.MaxInt error out instead of wrapping into a corrupt index
// space.
func NewGrid3D(x, y, z int) (*Grid3D, error) {
	if x < 1 || y < 1 || z < 1 {
		return nil, fmt.Errorf("grid: invalid 3D dimensions %dx%dx%d", x, y, z)
	}
	if x > 1<<16 || y > 1<<16 || z > 1<<16 {
		return nil, fmt.Errorf("grid: 3D dimensions %dx%dx%d too large", x, y, z)
	}
	cells, err := checkedCells(x, y, z)
	if err != nil {
		return nil, err
	}
	if cells > 1<<27 {
		return nil, fmt.Errorf("grid: 3D dimensions %dx%dx%d too large", x, y, z)
	}
	return &Grid3D{X: x, Y: y, Z: z, W: make([]int64, cells)}, nil
}

// MustGrid3D is NewGrid3D that panics on error.
func MustGrid3D(x, y, z int) *Grid3D {
	g, err := NewGrid3D(x, y, z)
	if err != nil {
		panic(err)
	}
	return g
}

// FromWeights3D builds a grid from an x-fastest weight slice. The slice is
// copied.
func FromWeights3D(x, y, z int, weights []int64) (*Grid3D, error) {
	g, err := NewGrid3D(x, y, z)
	if err != nil {
		return nil, err
	}
	if len(weights) != x*y*z {
		return nil, fmt.Errorf("grid: want %d weights, got %d", x*y*z, len(weights))
	}
	total, err := checkWeights(weights)
	if err != nil {
		return nil, err
	}
	copy(g.W, weights)
	g.total = total
	return g, nil
}

// Len returns the number of vertices X*Y*Z.
func (g *Grid3D) Len() int { return g.X * g.Y * g.Z }

// Weight returns the weight of vertex v.
func (g *Grid3D) Weight(v int) int64 { return g.W[v] }

// ID returns the vertex id of cell (i,j,k).
func (g *Grid3D) ID(i, j, k int) int { return (k*g.Y+j)*g.X + i }

// Coords returns the (i,j,k) cell of vertex v.
func (g *Grid3D) Coords(v int) (i, j, k int) {
	i = v % g.X
	v /= g.X
	j = v % g.Y
	k = v / g.Y
	return
}

// At returns the weight of cell (i,j,k).
func (g *Grid3D) At(i, j, k int) int64 { return g.W[g.ID(i, j, k)] }

// Set assigns the weight of cell (i,j,k). Negative weights, and updates
// that would push the grid's running total weight past int64, panic —
// the same assignments FromWeights3D rejects; direct writes to W bypass
// the guard and leave the cached total stale.
func (g *Grid3D) Set(i, j, k int, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("grid: negative weight %d", w))
	}
	id := g.ID(i, j, k)
	rest := g.total - g.W[id]
	if rest > math.MaxInt64-w {
		panic(fmt.Sprintf("grid: weight %d overflows the grid's total weight", w))
	}
	g.total = rest + w
	g.W[id] = w
}

// Neighbors appends the 27-pt stencil neighbors of v (up to 26) to buf.
func (g *Grid3D) Neighbors(v int, buf []int) []int {
	i, j, k := g.Coords(v)
	for dk := -1; dk <= 1; dk++ {
		nk := k + dk
		if nk < 0 || nk >= g.Z {
			continue
		}
		for dj := -1; dj <= 1; dj++ {
			nj := j + dj
			if nj < 0 || nj >= g.Y {
				continue
			}
			for di := -1; di <= 1; di++ {
				ni := i + di
				if ni < 0 || ni >= g.X || (di == 0 && dj == 0 && dk == 0) {
					continue
				}
				buf = append(buf, (nk*g.Y+nj)*g.X+ni)
			}
		}
	}
	return buf
}

// NeighborsFixed writes the 27-pt stencil neighbors of v (up to 26) into
// buf and returns the count; it is the allocation-free enumeration the
// placement kernels use (core.FixedGraph).
func (g *Grid3D) NeighborsFixed(v int, buf *[core.MaxFixedDegree]int) int {
	i, j, k := g.Coords(v)
	m := 0
	for dk := -1; dk <= 1; dk++ {
		nk := k + dk
		if nk < 0 || nk >= g.Z {
			continue
		}
		for dj := -1; dj <= 1; dj++ {
			nj := j + dj
			if nj < 0 || nj >= g.Y {
				continue
			}
			for di := -1; di <= 1; di++ {
				ni := i + di
				if ni < 0 || ni >= g.X || (di == 0 && dj == 0 && dk == 0) {
					continue
				}
				buf[m] = (nk*g.Y+nj)*g.X + ni
				m++
			}
		}
	}
	return m
}

// Degree returns the 27-pt degree of v in O(1) from its coordinates.
func (g *Grid3D) Degree(v int) int {
	i, j, k := g.Coords(v)
	return span(i, g.X)*span(j, g.Y)*span(k, g.Z) - 1
}

var (
	_ core.FixedGraph  = (*Grid3D)(nil)
	_ core.DegreeGraph = (*Grid3D)(nil)
)

// SevenPt is the 7-pt relaxation of a Grid3D: only the 6 axis neighbors
// conflict. Like the 5-pt case it is bipartite on (i+j+k) parity, which
// makes the 7-pt relaxation polynomial (Section III-B).
type SevenPt struct {
	G *Grid3D
}

var _ core.Graph = SevenPt{}

// Len returns the number of vertices.
func (s SevenPt) Len() int { return s.G.Len() }

// Weight returns the weight of vertex v.
func (s SevenPt) Weight(v int) int64 { return s.G.W[v] }

// Neighbors appends the 7-pt (axis-only) neighbors of v to buf.
func (s SevenPt) Neighbors(v int, buf []int) []int {
	g := s.G
	i, j, k := g.Coords(v)
	if i > 0 {
		buf = append(buf, v-1)
	}
	if i < g.X-1 {
		buf = append(buf, v+1)
	}
	if j > 0 {
		buf = append(buf, v-g.X)
	}
	if j < g.Y-1 {
		buf = append(buf, v+g.X)
	}
	if k > 0 {
		buf = append(buf, v-g.X*g.Y)
	}
	if k < g.Z-1 {
		buf = append(buf, v+g.X*g.Y)
	}
	return buf
}

// Parity returns (i+j+k) mod 2, the natural bipartition of the 7-pt
// relaxation.
func (s SevenPt) Parity(v int) int {
	i, j, k := s.G.Coords(v)
	return (i + j + k) % 2
}

// Degree returns the 7-pt degree of v in O(1) from its coordinates.
func (s SevenPt) Degree(v int) int {
	g := s.G
	i, j, k := g.Coords(v)
	return span(i, g.X) + span(j, g.Y) + span(k, g.Z) - 3
}

var _ core.DegreeGraph = SevenPt{}

// Layer returns layer k of the 3D grid as a 2D grid sharing the same
// weight storage (mutations are visible in both). The view carries its
// own running total (the layer's slice sum, a subtotal of the parent's,
// so its Set guard can only be stricter); Set through the view updates
// the view's total but leaves the parent's cached total stale, like any
// direct write to W.
func (g *Grid3D) Layer(k int) *Grid2D {
	base := k * g.X * g.Y
	w := g.W[base : base+g.X*g.Y]
	var total int64
	for _, wv := range w {
		total += wv
	}
	return &Grid2D{X: g.X, Y: g.Y, W: w, total: total}
}

// Clone returns a deep copy of the grid.
func (g *Grid3D) Clone() *Grid3D {
	c := MustGrid3D(g.X, g.Y, g.Z)
	copy(c.W, g.W)
	c.total = g.total
	return c
}

// String summarizes the grid's shape and total weight.
func (g *Grid3D) String() string {
	return fmt.Sprintf("Grid3D(%dx%dx%d, total=%d)", g.X, g.Y, g.Z, core.TotalWeight(g))
}
