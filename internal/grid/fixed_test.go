package grid

import (
	"math/rand"
	"sort"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/obsv"
)

// genericOnly strips a stencil down to the plain core.Graph method set,
// forcing PlaceLowest onto its generic (slice-based) path.
type genericOnly struct{ core.Graph }

// TestNeighborsFixedMatchesNeighbors: the fixed-array enumeration reports
// exactly the same neighbor set as the slice-based one, for every vertex.
func TestNeighborsFixedMatchesNeighbors(t *testing.T) {
	graphs := []core.FixedGraph{
		MustGrid2D(1, 1), MustGrid2D(7, 1), MustGrid2D(1, 9), MustGrid2D(6, 5),
		MustGrid3D(1, 1, 3), MustGrid3D(4, 3, 5), MustGrid3D(3, 3, 3),
	}
	for _, g := range graphs {
		var fix [core.MaxFixedDegree]int
		for v := 0; v < g.Len(); v++ {
			want := g.Neighbors(v, nil)
			n := g.NeighborsFixed(v, &fix)
			got := append([]int{}, fix[:n]...)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("%v vertex %d: NeighborsFixed=%v Neighbors=%v", g, v, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v vertex %d: NeighborsFixed=%v Neighbors=%v", g, v, got, want)
				}
			}
			if d := core.Degree(g, v); d != len(want) {
				t.Fatalf("%v vertex %d: Degree=%d, want %d", g, v, d, len(want))
			}
		}
	}
}

// TestRelaxedDegrees: the O(1) degree formulas of the 5-pt/7-pt
// relaxations agree with their neighbor lists.
func TestRelaxedDegrees(t *testing.T) {
	f := FivePt{G: MustGrid2D(6, 4)}
	for v := 0; v < f.Len(); v++ {
		if got, want := f.Degree(v), len(f.Neighbors(v, nil)); got != want {
			t.Fatalf("FivePt vertex %d: Degree=%d, want %d", v, got, want)
		}
	}
	s := SevenPt{G: MustGrid3D(4, 3, 5)}
	for v := 0; v < s.Len(); v++ {
		if got, want := s.Degree(v), len(s.Neighbors(v, nil)); got != want {
			t.Fatalf("SevenPt vertex %d: Degree=%d, want %d", v, got, want)
		}
	}
}

// TestPlaceFixedMatchesGeneric: the stencil fast path of PlaceLowest
// returns the same start as the generic path, over random partial
// colorings and all skip arguments.
func TestPlaceFixedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	stencils := []Stencil{MustGrid2D(7, 6), MustGrid3D(4, 4, 3)}
	for _, g := range stencils {
		for v := range weights(g) {
			setWeight(g, v, rng.Int63n(7))
		}
		c := core.NewColoring(g.Len())
		for v := range c.Start {
			if rng.Intn(3) > 0 {
				c.Start[v] = rng.Int63n(15)
			}
		}
		var fast, slow core.FitScratch
		for v := 0; v < g.Len(); v++ {
			for _, skip := range []int{-1, 0, v, (v + 1) % g.Len()} {
				got := fast.PlaceLowest(g, c, v, skip)
				want := slow.PlaceLowest(genericOnly{g}, c, v, skip)
				if got != want {
					t.Fatalf("%v vertex %d skip %d: fixed=%d generic=%d", g, v, skip, got, want)
				}
			}
		}
	}
}

func weights(s Stencil) []int64 {
	switch g := s.(type) {
	case *Grid2D:
		return g.W
	case *Grid3D:
		return g.W
	}
	panic("unknown stencil")
}

func setWeight(s Stencil, v int, w int64) { weights(s)[v] = w }

// TestPlaceLowestNoAllocs: the FixedGraph fast path does zero heap work
// per placement — the contract behind the tile-parallel solver's
// allocation-free inner loop. The contract holds both bare and with a
// metrics bundle attached: the obsv counters are plain atomics, so
// observability must not cost the hot path a single allocation.
func TestPlaceLowestNoAllocs(t *testing.T) {
	g := MustGrid3D(6, 6, 6)
	rng := rand.New(rand.NewSource(2))
	for v := range g.W {
		g.W[v] = rng.Int63n(9) + 1
	}
	c := core.NewColoring(g.Len())
	for v := range c.Start {
		c.Start[v] = rng.Int63n(40)
	}
	scratches := map[string]*core.FitScratch{
		"bare":    {},
		"metrics": {Metrics: obsv.NewSolveMetrics(obsv.NewRegistry())},
	}
	for name, s := range scratches {
		t.Run(name, func(t *testing.T) {
			v := 0
			allocs := testing.AllocsPerRun(500, func() {
				s.PlaceLowest(g, c, v, -1)
				v = (v + 1) % g.Len()
			})
			if allocs != 0 {
				t.Errorf("PlaceLowest allocates %.1f per run, want 0", allocs)
			}
		})
	}
}

// BenchmarkPlaceLowest measures the steady-state placement kernel on
// fully colored interior neighborhoods (the hot case of every greedy
// solver). The acceptance bar for PR 2 is 0 allocs/op.
func BenchmarkPlaceLowest(b *testing.B) {
	run := func(b *testing.B, g Stencil) {
		rng := rand.New(rand.NewSource(1))
		w := weights(g)
		for v := range w {
			w[v] = rng.Int63n(9) + 1
		}
		c := core.NewColoring(g.Len())
		for v := range c.Start {
			c.Start[v] = rng.Int63n(60)
		}
		var s core.FitScratch
		b.ReportAllocs()
		b.ResetTimer()
		v := 0
		for i := 0; i < b.N; i++ {
			s.PlaceLowest(g, c, v, -1)
			v++
			if v == g.Len() {
				v = 0
			}
		}
	}
	// Uniform-weight variants route through the packed free-map kernel
	// (weight 1 is the classic-coloring degenerate case, weight 5 a
	// common slot width); starts are slot-aligned, as greedy produces.
	runUniform := func(b *testing.B, g Stencil, wv int64) {
		rng := rand.New(rand.NewSource(1))
		w := weights(g)
		for v := range w {
			w[v] = wv
		}
		c := core.NewColoring(g.Len())
		for v := range c.Start {
			c.Start[v] = rng.Int63n(12) * wv
		}
		var s core.FitScratch
		b.ReportAllocs()
		b.ResetTimer()
		v := 0
		for i := 0; i < b.N; i++ {
			s.PlaceLowest(g, c, v, -1)
			v++
			if v == g.Len() {
				v = 0
			}
		}
	}
	b.Run("9pt", func(b *testing.B) { run(b, MustGrid2D(64, 64)) })
	b.Run("27pt", func(b *testing.B) { run(b, MustGrid3D(16, 16, 16)) })
	b.Run("Unit/9pt", func(b *testing.B) { runUniform(b, MustGrid2D(64, 64), 1) })
	b.Run("Unit/27pt", func(b *testing.B) { runUniform(b, MustGrid3D(16, 16, 16), 1) })
	b.Run("Bitset/9pt", func(b *testing.B) { runUniform(b, MustGrid2D(64, 64), 5) })
	b.Run("Bitset/27pt", func(b *testing.B) { runUniform(b, MustGrid3D(16, 16, 16), 5) })
}
