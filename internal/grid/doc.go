// Package grid provides the stencil graphs studied by the paper: the 9-pt
// 2D stencil (Grid2D, Section II) and the 27-pt 3D stencil (Grid3D), along
// with their 5-pt/7-pt relaxations, Z-order (Morton) traversals, the K4/K8
// clique blocks used by the block-based heuristics and lower bounds
// (Sections III and V-A), and the cache-sized tilings the parallel solver
// partitions a grid into.
//
// The key invariant is implicit adjacency: both grid types implement
// core.Graph by synthesizing neighbor lists from coordinates — vertices
// (i,j) and (i',j') of the 9-pt stencil are adjacent iff their coordinates
// differ by at most 1 in every axis (likewise per-axis for the 27-pt
// stencil) — so a grid stores only its weight array, ids are row-major
// (id = j*X + i, layers stacked in 3D), and the degree never exceeds
// core.MaxFixedDegree = 26. That fixed bound is what lets the placement
// kernels run allocation-free.
package grid
