package grid

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the instance parser: arbitrary input must never panic,
// and anything it accepts must round-trip through the writer.
func FuzzRead(f *testing.F) {
	f.Add("ivc2d 2 2\n1 2 3 4\n")
	f.Add("ivc3d 2 2 2\n1 2 3 4 5 6 7 8\n")
	f.Add("ivc2d 1 1\n0\n")
	f.Add("# comment\nivc2d 2 1\n5 5\n")
	f.Add("ivc2d 1000000 1000000\n")
	f.Add("bogus\n")
	f.Fuzz(func(t *testing.T, input string) {
		g2, g3, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		switch {
		case g2 != nil:
			if err := Write2D(&buf, g2); err != nil {
				t.Fatalf("rewrite failed: %v", err)
			}
			b2, _, err := Read(&buf)
			if err != nil {
				t.Fatalf("reparse failed: %v", err)
			}
			if b2.X != g2.X || b2.Y != g2.Y {
				t.Fatalf("round trip changed dims")
			}
			for v := range g2.W {
				if b2.W[v] != g2.W[v] {
					t.Fatalf("round trip changed weight %d", v)
				}
			}
		case g3 != nil:
			if err := Write3D(&buf, g3); err != nil {
				t.Fatalf("rewrite failed: %v", err)
			}
			_, b3, err := Read(&buf)
			if err != nil {
				t.Fatalf("reparse failed: %v", err)
			}
			if b3.X != g3.X || b3.Y != g3.Y || b3.Z != g3.Z {
				t.Fatalf("round trip changed dims")
			}
		default:
			t.Fatal("Read returned neither grid without error")
		}
	})
}
