package grid

import (
	"testing"

	"stencilivc/internal/core"
)

// TestStencilHooks2D: the dimension-generic hooks agree with the
// standalone traversal and block functions they wrap.
func TestStencilHooks2D(t *testing.T) {
	g := MustGrid2D(5, 4)
	for v := range g.W {
		g.W[v] = int64(v % 3)
	}
	var s Stencil = g
	if s.Dims() != 2 {
		t.Errorf("Dims = %d, want 2", s.Dims())
	}
	if err := core.CheckPermutation(s.LineOrder(), g.Len()); err != nil {
		t.Errorf("LineOrder: %v", err)
	}
	if err := core.CheckPermutation(s.ZOrder(), g.Len()); err != nil {
		t.Errorf("ZOrder: %v", err)
	}
	zo := ZOrder2D(g)
	for i, v := range s.ZOrder() {
		if v != zo[i] {
			t.Fatalf("ZOrder()[%d] = %d, ZOrder2D %d", i, v, zo[i])
		}
	}
	if got, want := len(s.CliqueBlocks()), (g.X-1)*(g.Y-1); got != want {
		t.Errorf("CliqueBlocks: %d blocks, want %d", got, want)
	}
}

// TestStencilHooks3D mirrors the 2D hook test.
func TestStencilHooks3D(t *testing.T) {
	g := MustGrid3D(3, 4, 2)
	var s Stencil = g
	if s.Dims() != 3 {
		t.Errorf("Dims = %d, want 3", s.Dims())
	}
	if err := core.CheckPermutation(s.LineOrder(), g.Len()); err != nil {
		t.Errorf("LineOrder: %v", err)
	}
	if err := core.CheckPermutation(s.ZOrder(), g.Len()); err != nil {
		t.Errorf("ZOrder: %v", err)
	}
	if got, want := len(s.CliqueBlocks()), (g.X-1)*(g.Y-1)*(g.Z-1); got != want {
		t.Errorf("CliqueBlocks: %d blocks, want %d", got, want)
	}
}

// TestCliqueBlocksDegenerate: block fallbacks cover every vertex on
// degenerate shapes, so the block heuristics stay total.
func TestCliqueBlocksDegenerate(t *testing.T) {
	shapes2 := [][2]int{{1, 1}, {1, 6}, {7, 1}}
	for _, sh := range shapes2 {
		g := MustGrid2D(sh[0], sh[1])
		assertBlocksCover(t, g.CliqueBlocks(), g.Len(), g.String())
	}
	shapes3 := [][3]int{{1, 1, 1}, {1, 1, 5}, {1, 5, 1}, {5, 1, 1}, {4, 4, 1}, {4, 1, 4}, {1, 4, 4}}
	for _, sh := range shapes3 {
		g := MustGrid3D(sh[0], sh[1], sh[2])
		assertBlocksCover(t, g.CliqueBlocks(), g.Len(), g.String())
	}
}

func assertBlocksCover(t *testing.T, blocks []Block, n int, label string) {
	t.Helper()
	if len(blocks) == 0 {
		t.Errorf("%s: no clique blocks", label)
		return
	}
	covered := make([]bool, n)
	for _, b := range blocks {
		for _, v := range b.Vertices {
			if v < 0 || v >= n {
				t.Fatalf("%s: block vertex %d out of range", label, v)
			}
			covered[v] = true
		}
	}
	for v, ok := range covered {
		if !ok {
			t.Errorf("%s: vertex %d not covered by any block", label, v)
		}
	}
}
