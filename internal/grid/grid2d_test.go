package grid

import (
	"sort"
	"testing"

	"stencilivc/internal/core"
)

func sortedNeighbors(g core.Graph, v int) []int {
	n := g.Neighbors(v, nil)
	sort.Ints(n)
	return n
}

func TestGrid2DDimensions(t *testing.T) {
	if _, err := NewGrid2D(0, 3); err == nil {
		t.Error("0-width grid accepted")
	}
	if _, err := NewGrid2D(3, -1); err == nil {
		t.Error("negative height accepted")
	}
	g, err := NewGrid2D(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 20 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGrid2DIDRoundTrip(t *testing.T) {
	g := MustGrid2D(5, 4)
	for j := 0; j < 4; j++ {
		for i := 0; i < 5; i++ {
			v := g.ID(i, j)
			gi, gj := g.Coords(v)
			if gi != i || gj != j {
				t.Fatalf("Coords(ID(%d,%d)) = (%d,%d)", i, j, gi, gj)
			}
		}
	}
}

func TestGrid2DNeighbors(t *testing.T) {
	g := MustGrid2D(3, 3)
	// Center vertex (1,1) has all 8 neighbors.
	want := []int{0, 1, 2, 3, 5, 6, 7, 8}
	if got := sortedNeighbors(g, g.ID(1, 1)); !equalInts(got, want) {
		t.Errorf("center neighbors = %v, want %v", got, want)
	}
	// Corner (0,0) has 3.
	want = []int{1, 3, 4}
	if got := sortedNeighbors(g, 0); !equalInts(got, want) {
		t.Errorf("corner neighbors = %v, want %v", got, want)
	}
	// Edge (1,0) has 5.
	want = []int{0, 2, 3, 4, 5}
	if got := sortedNeighbors(g, 1); !equalInts(got, want) {
		t.Errorf("edge neighbors = %v, want %v", got, want)
	}
}

func TestGrid2DAdjacencyDefinition(t *testing.T) {
	// Cross-check Neighbors against the paper's |i-i'|<=1 && |j-j'|<=1 rule.
	g := MustGrid2D(4, 5)
	for v := 0; v < g.Len(); v++ {
		i, j := g.Coords(v)
		nbrs := map[int]bool{}
		for _, u := range g.Neighbors(v, nil) {
			nbrs[u] = true
		}
		for u := 0; u < g.Len(); u++ {
			ui, uj := g.Coords(u)
			want := u != v && abs(ui-i) <= 1 && abs(uj-j) <= 1
			if nbrs[u] != want {
				t.Fatalf("adjacency(%d,%d) = %v, want %v", v, u, nbrs[u], want)
			}
		}
	}
}

func TestGrid2DSetAt(t *testing.T) {
	g := MustGrid2D(3, 2)
	g.Set(2, 1, 7)
	if g.At(2, 1) != 7 {
		t.Errorf("At(2,1) = %d", g.At(2, 1))
	}
	if g.Weight(g.ID(2, 1)) != 7 {
		t.Error("Weight disagrees with At")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Set did not panic")
		}
	}()
	g.Set(0, 0, -1)
}

func TestFromWeights2D(t *testing.T) {
	g, err := FromWeights2D(2, 2, []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(1, 1) != 4 {
		t.Errorf("At(1,1) = %d", g.At(1, 1))
	}
	if _, err := FromWeights2D(2, 2, []int64{1}); err == nil {
		t.Error("short weights accepted")
	}
	if _, err := FromWeights2D(2, 2, []int64{1, 2, 3, -4}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestFivePtBipartite(t *testing.T) {
	g := MustGrid2D(4, 4)
	f := FivePt{G: g}
	var buf []int
	for v := 0; v < f.Len(); v++ {
		buf = f.Neighbors(v, buf[:0])
		for _, u := range buf {
			if f.Parity(u) == f.Parity(v) {
				t.Fatalf("5-pt edge (%d,%d) within one parity class", v, u)
			}
		}
	}
}

func TestFivePtNeighbors(t *testing.T) {
	g := MustGrid2D(3, 3)
	f := FivePt{G: g}
	want := []int{1, 3, 5, 7}
	if got := sortedNeighbors(f, 4); !equalInts(got, want) {
		t.Errorf("5-pt center neighbors = %v, want %v", got, want)
	}
	want = []int{1, 3}
	if got := sortedNeighbors(f, 0); !equalInts(got, want) {
		t.Errorf("5-pt corner neighbors = %v, want %v", got, want)
	}
}

func TestGrid2DRowAliases(t *testing.T) {
	g := MustGrid2D(3, 2)
	g.Set(1, 1, 9)
	row := g.Row(1)
	if row[1] != 9 {
		t.Errorf("Row(1)[1] = %d", row[1])
	}
	row[0] = 5 // aliasing is intentional
	if g.At(0, 1) != 5 {
		t.Error("Row does not alias grid storage")
	}
}

func TestGrid2DClone(t *testing.T) {
	g := MustGrid2D(2, 2)
	g.Set(0, 0, 3)
	c := g.Clone()
	c.Set(0, 0, 8)
	if g.At(0, 0) != 3 {
		t.Error("Clone aliases original")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
