package grid

import (
	"testing"
	"testing/quick"

	"stencilivc/internal/core"
)

func TestMorton2DKnown(t *testing.T) {
	cases := []struct {
		i, j int
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{2, 2, 12},
		{3, 3, 15},
	}
	for _, tc := range cases {
		if got := Morton2D(tc.i, tc.j); got != tc.want {
			t.Errorf("Morton2D(%d,%d) = %d, want %d", tc.i, tc.j, got, tc.want)
		}
	}
}

func TestMorton3DKnown(t *testing.T) {
	cases := []struct {
		i, j, k int
		want    uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
	}
	for _, tc := range cases {
		if got := Morton3D(tc.i, tc.j, tc.k); got != tc.want {
			t.Errorf("Morton3D(%d,%d,%d) = %d, want %d", tc.i, tc.j, tc.k, got, tc.want)
		}
	}
}

func TestMortonInjectiveQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 uint16) bool {
		if a1 == b1 && a2 == b2 {
			return true
		}
		return Morton2D(int(a1), int(a2)) != Morton2D(int(b1), int(b2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a1, a2, a3, b1, b2, b3 uint16) bool {
		if a1 == b1 && a2 == b2 && a3 == b3 {
			return true
		}
		return Morton3D(int(a1), int(a2), int(a3)) != Morton3D(int(b1), int(b2), int(b3))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestZOrder2DIsPermutation(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {4, 4}, {5, 3}, {7, 2}} {
		g := MustGrid2D(dims[0], dims[1])
		order := ZOrder2D(g)
		if err := core.CheckPermutation(order, g.Len()); err != nil {
			t.Errorf("%dx%d: %v", dims[0], dims[1], err)
		}
	}
}

func TestZOrder2DPowerOfTwoPrefix(t *testing.T) {
	// On a 4x4 grid, the first 4 vertices in Z-order form the 2x2 corner.
	g := MustGrid2D(4, 4)
	order := ZOrder2D(g)
	want := map[int]bool{g.ID(0, 0): true, g.ID(1, 0): true, g.ID(0, 1): true, g.ID(1, 1): true}
	for _, v := range order[:4] {
		if !want[v] {
			t.Fatalf("Z-order prefix contains %d, want 2x2 corner", v)
		}
	}
}

func TestZOrder3DIsPermutation(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 2, 2}, {3, 4, 2}, {5, 1, 3}} {
		g := MustGrid3D(dims[0], dims[1], dims[2])
		order := ZOrder3D(g)
		if err := core.CheckPermutation(order, g.Len()); err != nil {
			t.Errorf("%v: %v", dims, err)
		}
	}
}

func TestLineByLineOrders(t *testing.T) {
	g2 := MustGrid2D(3, 2)
	order := LineByLine2D(g2)
	if err := core.CheckPermutation(order, 6); err != nil {
		t.Fatal(err)
	}
	for v, got := range order {
		if got != v {
			t.Fatalf("LineByLine2D[%d] = %d", v, got)
		}
	}
	g3 := MustGrid3D(2, 2, 2)
	order3 := LineByLine3D(g3)
	if err := core.CheckPermutation(order3, 8); err != nil {
		t.Fatal(err)
	}
}
