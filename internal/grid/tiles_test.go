package grid

import (
	"sort"
	"testing"
)

// TestTilingPartition: across shapes and tile sizes, the tiles cover
// every vertex exactly once, AppendVertices agrees with the tile bounds,
// and TileOf maps each vertex back to its owning tile.
func TestTilingPartition(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 1}, {7, 1, 1}, {13, 9, 1}, {32, 32, 1},
		{1, 1, 5}, {3, 4, 5}, {8, 8, 8}, {9, 5, 7},
	}
	for _, sh := range shapes {
		for _, size := range []int{1, 2, 3, 5, 64} {
			tl, err := NewTiling(sh[0], sh[1], sh[2], size)
			if err != nil {
				t.Fatal(err)
			}
			n := sh[0] * sh[1] * sh[2]
			seen := make([]int, n)
			total := 0
			for ti, tile := range tl.Tiles {
				if tile.ID != ti {
					t.Fatalf("%v size=%d: tile %d has ID %d", sh, size, ti, tile.ID)
				}
				verts := tile.AppendVertices(nil)
				if len(verts) != tile.Len() {
					t.Fatalf("%v size=%d tile %d: %d vertices, Len()=%d",
						sh, size, ti, len(verts), tile.Len())
				}
				total += len(verts)
				for _, v := range verts {
					if v < 0 || v >= n {
						t.Fatalf("%v size=%d tile %d: vertex %d out of range", sh, size, ti, v)
					}
					seen[v]++
					if got := tl.TileOf(v); got != tile.ID {
						t.Fatalf("%v size=%d: TileOf(%d) = %d, want %d", sh, size, v, got, tile.ID)
					}
				}
			}
			if total != n {
				t.Fatalf("%v size=%d: tiles cover %d vertices, want %d", sh, size, total, n)
			}
			for v, c := range seen {
				if c != 1 {
					t.Fatalf("%v size=%d: vertex %d covered %d times", sh, size, v, c)
				}
			}
		}
	}
}

// TestTilingBoundary checks AppendBoundary against a brute-force
// definition: a cell is a boundary cell iff some stencil neighbor lies in
// a different tile. AppendBoundary may only over-approximate by cells on
// interior tile faces, but here the two definitions coincide for the full
// 9-pt/27-pt stencils because every face cell has a neighbor across the
// face.
func TestTilingBoundary(t *testing.T) {
	cases := []struct {
		g    Stencil
		size int
	}{
		{MustGrid2D(13, 9), 4},
		{MustGrid2D(8, 8), 3},
		{MustGrid2D(5, 1), 2},
		{MustGrid3D(6, 5, 4), 2},
		{MustGrid3D(8, 8, 8), 3},
		{MustGrid3D(3, 3, 3), 5}, // single tile: no boundary at all
	}
	for _, tc := range cases {
		tl, err := tc.g.Tiling(tc.size)
		if err != nil {
			t.Fatal(err)
		}
		for _, tile := range tl.Tiles {
			got := tl.AppendBoundary(tile, nil)
			if !sort.IntsAreSorted(got) {
				t.Fatalf("%v size=%d tile %d: boundary not ascending", tc.g, tc.size, tile.ID)
			}
			var want []int
			for _, v := range tile.AppendVertices(nil) {
				for _, u := range tc.g.Neighbors(v, nil) {
					if tl.TileOf(u) != tile.ID {
						want = append(want, v)
						break
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%v size=%d tile %d: boundary %v, want %v",
					tc.g, tc.size, tile.ID, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v size=%d tile %d: boundary %v, want %v",
						tc.g, tc.size, tile.ID, got, want)
				}
			}
		}
	}
}

// TestTilingErrors: invalid sizes and extents are rejected.
func TestTilingErrors(t *testing.T) {
	if _, err := NewTiling(4, 4, 1, 0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewTiling(0, 4, 1, 2); err == nil {
		t.Error("zero extent accepted")
	}
}
