package grid

import "stencilivc/internal/core"

// Stencil is the dimension-generic view of a stencil instance: the
// weighted graph plus the iteration hooks the solver registry needs. Both
// Grid2D and Grid3D implement it, which is what lets one registry entry
// and one portfolio runner serve the 9-pt and 27-pt cases without the
// per-dimension switch blocks the package used to carry.
type Stencil interface {
	core.Graph
	// Dims returns the dimensionality: 2 for a 9-pt grid, 3 for 27-pt.
	Dims() int
	// LineOrder returns the line-by-line traversal (GLL's visit order).
	LineOrder() []int
	// ZOrder returns the Morton-order traversal (GZO's visit order).
	ZOrder() []int
	// CliqueBlocks returns the maximal-clique blocks driving GKF/SGK and
	// the BDP recoloring order: the K4/K8 blocks on non-degenerate grids,
	// with chain-pair fallbacks on degenerate ones so the block heuristics
	// stay defined on 1×N (and 1×1×N etc.) instances.
	CliqueBlocks() []Block
	// Tiling partitions the grid into size-edged tiles (2D) or bricks
	// (3D) for the tile-parallel speculative solver.
	Tiling(size int) (*Tiling, error)
}

var (
	_ Stencil = (*Grid2D)(nil)
	_ Stencil = (*Grid3D)(nil)
)

// Dims returns 2.
func (g *Grid2D) Dims() int { return 2 }

// LineOrder returns the row-major GLL traversal.
func (g *Grid2D) LineOrder() []int { return LineByLine2D(g) }

// ZOrder returns the Morton-order GZO traversal.
func (g *Grid2D) ZOrder() []int { return ZOrder2D(g) }

// CliqueBlocks returns the K4 blocks when both dimensions exceed 1,
// otherwise the edge pairs of the degenerate chain.
func (g *Grid2D) CliqueBlocks() []Block {
	if b := Blocks2D(g); len(b) > 0 {
		return b
	}
	if g.Len() == 1 {
		return []Block{{Vertices: []int{0}, Weight: g.W[0]}}
	}
	ids := make([]int, g.Len())
	for i := range ids {
		ids[i] = i
	}
	return PairBlocks(g.W, ids)
}

// Dims returns 3.
func (g *Grid3D) Dims() int { return 3 }

// LineOrder returns the plane-by-plane, row-major GLL traversal.
func (g *Grid3D) LineOrder() []int { return LineByLine3D(g) }

// ZOrder returns the Morton-order GZO traversal.
func (g *Grid3D) ZOrder() []int { return ZOrder3D(g) }

// CliqueBlocks returns the K8 blocks of a non-degenerate grid. A grid
// with a unit dimension falls back to the K4 blocks of its plane, and a
// doubly-degenerate grid to chain pairs.
func (g *Grid3D) CliqueBlocks() []Block {
	if b := Blocks3D(g); len(b) > 0 {
		return b
	}
	// One unit dimension: reuse the 2D blocks of the flattened plane.
	// Vertex ids coincide because ids are x-fastest in both views.
	if g.Z == 1 {
		flat := &Grid2D{X: g.X, Y: g.Y, W: g.W}
		if b := Blocks2D(flat); len(b) > 0 {
			return b
		}
	}
	if g.Y == 1 && g.Z > 1 && g.X > 1 {
		flat := &Grid2D{X: g.X, Y: g.Z, W: g.W}
		if b := Blocks2D(flat); len(b) > 0 {
			return b
		}
	}
	if g.X == 1 && g.Y > 1 && g.Z > 1 {
		flat := &Grid2D{X: g.Y, Y: g.Z, W: g.W}
		if b := Blocks2D(flat); len(b) > 0 {
			return b
		}
	}
	if g.Len() == 1 {
		return []Block{{Vertices: []int{0}, Weight: g.W[0]}}
	}
	ids := make([]int, g.Len())
	for i := range ids {
		ids[i] = i
	}
	return PairBlocks(g.W, ids)
}
