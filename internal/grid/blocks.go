package grid

import "sort"

// Block is a maximal clique of a stencil grid: a 2×2 square (K4) of a
// Grid2D or a 2×2×2 cube (K8) of a Grid3D. Blocks drive the max-clique
// lower bound (Section III-A) and the GKF/SGK heuristics (Section V-A).
type Block struct {
	// Vertices lists the member vertex ids; 4 entries in 2D, 8 in 3D.
	Vertices []int
	// Weight is the sum of the member weights.
	Weight int64
}

// Blocks2D enumerates all K4 blocks of g: one per anchor (i,j) with
// 0 <= i < X-1 and 0 <= j < Y-1. Degenerate grids (X == 1 or Y == 1) have
// no K4; callers fall back to pair "blocks" via PairBlocks.
func Blocks2D(g *Grid2D) []Block {
	if g.X < 2 || g.Y < 2 {
		return nil
	}
	blocks := make([]Block, 0, (g.X-1)*(g.Y-1))
	for j := 0; j+1 < g.Y; j++ {
		for i := 0; i+1 < g.X; i++ {
			vs := []int{
				g.ID(i, j), g.ID(i+1, j),
				g.ID(i, j+1), g.ID(i+1, j+1),
			}
			var w int64
			for _, v := range vs {
				w += g.W[v]
			}
			blocks = append(blocks, Block{Vertices: vs, Weight: w})
		}
	}
	return blocks
}

// Blocks3D enumerates all K8 blocks of g: one per anchor (i,j,k) with each
// coordinate at most dimension-2.
func Blocks3D(g *Grid3D) []Block {
	if g.X < 2 || g.Y < 2 || g.Z < 2 {
		return nil
	}
	blocks := make([]Block, 0, (g.X-1)*(g.Y-1)*(g.Z-1))
	for k := 0; k+1 < g.Z; k++ {
		for j := 0; j+1 < g.Y; j++ {
			for i := 0; i+1 < g.X; i++ {
				vs := []int{
					g.ID(i, j, k), g.ID(i+1, j, k),
					g.ID(i, j+1, k), g.ID(i+1, j+1, k),
					g.ID(i, j, k+1), g.ID(i+1, j, k+1),
					g.ID(i, j+1, k+1), g.ID(i+1, j+1, k+1),
				}
				var w int64
				for _, v := range vs {
					w += g.W[v]
				}
				blocks = append(blocks, Block{Vertices: vs, Weight: w})
			}
		}
	}
	return blocks
}

// PairBlocks returns one Block per edge of a degenerate (chain-like) grid
// axis, used as the clique set when no K4/K8 exists. vertices must be the
// ids along the chain in order.
func PairBlocks(weights []int64, ids []int) []Block {
	blocks := make([]Block, 0, max(0, len(ids)-1))
	for i := 0; i+1 < len(ids); i++ {
		blocks = append(blocks, Block{
			Vertices: []int{ids[i], ids[i+1]},
			Weight:   weights[ids[i]] + weights[ids[i+1]],
		})
	}
	return blocks
}

// SortBlocksByWeightDesc orders blocks by non-increasing weight. Ties are
// broken by the first vertex id so the order is deterministic across runs.
func SortBlocksByWeightDesc(blocks []Block) {
	sort.SliceStable(blocks, func(a, b int) bool {
		if blocks[a].Weight != blocks[b].Weight {
			return blocks[a].Weight > blocks[b].Weight
		}
		return blocks[a].Vertices[0] < blocks[b].Vertices[0]
	})
}

// MaxBlockWeight returns the largest block weight (0 when blocks is empty).
func MaxBlockWeight(blocks []Block) int64 {
	var m int64
	for _, b := range blocks {
		m = max(m, b.Weight)
	}
	return m
}
