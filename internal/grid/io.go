package grid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The instance text format is a small, line-oriented exchange format:
//
//	ivc2d X Y          or   ivc3d X Y Z
//	w w w ...              (X*Y or X*Y*Z weights, whitespace separated,
//	                        any line breaking, '#' starts a comment)
//
// It is what cmd/ivc reads and what the dataset suite can export, so users
// can run the heuristics on their own voxelized workloads.

// Write2D encodes g in the instance text format, one row per line.
func Write2D(w io.Writer, g *Grid2D) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ivc2d %d %d\n", g.X, g.Y)
	for j := 0; j < g.Y; j++ {
		for i := 0; i < g.X; i++ {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.FormatInt(g.At(i, j), 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Write3D encodes g in the instance text format, one row per line with a
// blank line between layers.
func Write3D(w io.Writer, g *Grid3D) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ivc3d %d %d %d\n", g.X, g.Y, g.Z)
	for k := 0; k < g.Z; k++ {
		for j := 0; j < g.Y; j++ {
			for i := 0; i < g.X; i++ {
				if i > 0 {
					bw.WriteByte(' ')
				}
				bw.WriteString(strconv.FormatInt(g.At(i, j, k), 10))
			}
			bw.WriteByte('\n')
		}
		if k+1 < g.Z {
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// Read parses an instance in the text format and returns exactly one of a
// 2D or 3D grid, the other being nil.
func Read(r io.Reader) (*Grid2D, *Grid3D, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	header, err := nextTokens(sc)
	if err != nil {
		return nil, nil, fmt.Errorf("grid: missing header: %w", err)
	}
	switch header[0] {
	case "ivc2d":
		if len(header) != 3 {
			return nil, nil, fmt.Errorf("grid: ivc2d header wants 2 dims, got %d", len(header)-1)
		}
		x, err1 := strconv.Atoi(header[1])
		y, err2 := strconv.Atoi(header[2])
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("grid: bad ivc2d dimensions %q %q", header[1], header[2])
		}
		// Validate dimensions BEFORE sizing the weight buffer: a hostile
		// header must not drive a huge allocation.
		g, err := NewGrid2D(x, y)
		if err != nil {
			return nil, nil, err
		}
		weights, err := readWeights(sc, x*y)
		if err != nil {
			return nil, nil, err
		}
		for i, w := range weights {
			if w < 0 {
				return nil, nil, fmt.Errorf("grid: negative weight %d", w)
			}
			g.W[i] = w
		}
		return g, nil, nil
	case "ivc3d":
		if len(header) != 4 {
			return nil, nil, fmt.Errorf("grid: ivc3d header wants 3 dims, got %d", len(header)-1)
		}
		x, err1 := strconv.Atoi(header[1])
		y, err2 := strconv.Atoi(header[2])
		z, err3 := strconv.Atoi(header[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, nil, fmt.Errorf("grid: bad ivc3d dimensions")
		}
		g, err := NewGrid3D(x, y, z)
		if err != nil {
			return nil, nil, err
		}
		weights, err := readWeights(sc, x*y*z)
		if err != nil {
			return nil, nil, err
		}
		for i, w := range weights {
			if w < 0 {
				return nil, nil, fmt.Errorf("grid: negative weight %d", w)
			}
			g.W[i] = w
		}
		return nil, g, nil
	default:
		return nil, nil, fmt.Errorf("grid: unknown header %q", header[0])
	}
}

func nextTokens(sc *bufio.Scanner) ([]string, error) {
	for sc.Scan() {
		line := sc.Text()
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) > 0 {
			return fields, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

func readWeights(sc *bufio.Scanner, n int) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("grid: negative cell count")
	}
	weights := make([]int64, 0, n)
	for len(weights) < n {
		fields, err := nextTokens(sc)
		if err != nil {
			return nil, fmt.Errorf("grid: want %d weights, got %d: %w", n, len(weights), err)
		}
		for _, f := range fields {
			w, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("grid: bad weight %q: %w", f, err)
			}
			weights = append(weights, w)
			if len(weights) > n {
				return nil, fmt.Errorf("grid: more than %d weights", n)
			}
		}
	}
	return weights, nil
}
