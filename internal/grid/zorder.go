package grid

import "sort"

// Morton2D interleaves the low 21 bits of i and j into a Z-order key:
// bit b of i lands at position 2b, bit b of j at position 2b+1. Cells that
// are close in space receive close keys, which is why the Greedy Z-Order
// heuristic (GZO, Section V-A) visits vertices in this order.
func Morton2D(i, j int) uint64 {
	return spread2(uint64(i)) | spread2(uint64(j))<<1
}

// Morton3D interleaves the low 21 bits of i, j, and k into a 3D Z-order key.
func Morton3D(i, j, k int) uint64 {
	return spread3(uint64(i)) | spread3(uint64(j))<<1 | spread3(uint64(k))<<2
}

// spread2 spaces the low 32 bits of v so consecutive bits are 2 apart.
func spread2(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// spread3 spaces the low 21 bits of v so consecutive bits are 3 apart.
func spread3(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// ZOrder2D returns the vertices of g sorted by their 2D Morton key.
// The result is a permutation of 0..g.Len()-1.
func ZOrder2D(g *Grid2D) []int {
	order := make([]int, g.Len())
	keys := make([]uint64, g.Len())
	for v := range order {
		order[v] = v
		i, j := g.Coords(v)
		keys[v] = Morton2D(i, j)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}

// ZOrder3D returns the vertices of g sorted by their 3D Morton key.
func ZOrder3D(g *Grid3D) []int {
	order := make([]int, g.Len())
	keys := make([]uint64, g.Len())
	for v := range order {
		order[v] = v
		i, j, k := g.Coords(v)
		keys[v] = Morton3D(i, j, k)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}

// LineByLine2D returns the row-major traversal used by the Greedy
// Line-by-Line heuristic (GLL): rows in increasing j, each row in
// increasing i. Vertex ids are already row-major, so this is the identity.
func LineByLine2D(g *Grid2D) []int {
	order := make([]int, g.Len())
	for v := range order {
		order[v] = v
	}
	return order
}

// LineByLine3D returns the plane-by-plane, line-by-line traversal (GLL in
// 3D): planes in increasing k, rows in increasing j, cells in increasing i.
// Vertex ids are x-fastest, so this is the identity.
func LineByLine3D(g *Grid3D) []int {
	order := make([]int, g.Len())
	for v := range order {
		order[v] = v
	}
	return order
}
