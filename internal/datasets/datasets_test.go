package datasets

import (
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

func TestBoundsOf(t *testing.T) {
	pts := []Point{{1, 2, 3}, {-1, 5, 0}, {4, 2, 7}}
	b, err := BoundsOf(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := Bounds{MinX: -1, MaxX: 4, MinY: 2, MaxY: 5, MinT: 0, MaxT: 7}
	if b != want {
		t.Errorf("BoundsOf = %+v, want %+v", b, want)
	}
	if _, err := BoundsOf(nil); err == nil {
		t.Error("empty point set accepted")
	}
}

func TestClip(t *testing.T) {
	pts := []Point{{0, 0, 0}, {5, 5, 5}, {10, 10, 10}}
	box := Bounds{MinX: 1, MaxX: 9, MinY: 1, MaxY: 9, MinT: 1, MaxT: 9}
	if got := Clip(pts, box); len(got) != 1 || got[0] != (Point{5, 5, 5}) {
		t.Errorf("Clip = %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, err := Generate(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Points) != len(b.Points) {
			t.Fatalf("%s: nondeterministic point count", name)
		}
		for i := range a.Points {
			if a.Points[i] != b.Points[i] {
				t.Fatalf("%s: point %d differs between identical seeds", name, i)
			}
		}
		if len(a.Points) == 0 {
			t.Fatalf("%s: no points", name)
		}
		if !a.Bounds.Valid() {
			t.Fatalf("%s: invalid bounds", name)
		}
		for _, p := range a.Points {
			if !a.Bounds.Contains(p) {
				t.Fatalf("%s: point %v outside declared bounds", name, p)
			}
		}
		if len(a.Bandwidths) == 0 {
			t.Fatalf("%s: no bandwidths", name)
		}
		for _, bw := range a.Bandwidths {
			if bw <= 0 || bw >= 0.5 {
				t.Fatalf("%s: bandwidth fraction %v out of (0, 0.5)", name, bw)
			}
		}
	}
	if _, err := Generate("Bogus", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDatasetCharacters(t *testing.T) {
	// The qualitative contrast the paper leans on: FluAnimal is sparse
	// (most voxels empty at moderate resolution), Dengue is concentrated.
	flu, err := Generate(FluAnimal, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Voxelize2D(flu.Points, flu.Bounds, XY, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	empty := 0
	for _, w := range g.W {
		if w == 0 {
			empty++
		}
	}
	if empty < g.Len()/4 {
		t.Errorf("FluAnimal not sparse: only %d/%d empty cells", empty, g.Len())
	}

	den, err := Generate(Dengue, 1)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := Voxelize2D(den.Points, den.Bounds, XY, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mw := core.MaxWeight(gd); mw < core.TotalWeight(gd)/32 {
		t.Errorf("Dengue not concentrated: max cell %d of total %d", mw, core.TotalWeight(gd))
	}
}

func TestVoxelize2DConservesPoints(t *testing.T) {
	ds, err := Generate(Pollen, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, proj := range Projections() {
		g, err := Voxelize2D(ds.Points, ds.Bounds, proj, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got := core.TotalWeight(g); got != int64(len(ds.Points)) {
			t.Errorf("%s: voxelized %d of %d points", proj, got, len(ds.Points))
		}
	}
	if _, err := Voxelize2D(ds.Points, ds.Bounds, "ab", 4, 4); err == nil {
		t.Error("unknown projection accepted")
	}
	if _, err := Voxelize2D(ds.Points, Bounds{}, XY, 4, 4); err == nil {
		t.Error("degenerate bounds accepted")
	}
}

func TestVoxelize3DConservesPoints(t *testing.T) {
	ds, err := Generate(Dengue, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Voxelize3D(ds.Points, ds.Bounds, 8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.TotalWeight(g); got != int64(len(ds.Points)) {
		t.Errorf("voxelized %d of %d points", got, len(ds.Points))
	}
}

func TestBinIndexEdges(t *testing.T) {
	if i := binIndex(1.0, 0, 1, 8); i != 7 {
		t.Errorf("upper edge bin = %d, want 7", i)
	}
	if i := binIndex(0.0, 0, 1, 8); i != 0 {
		t.Errorf("lower edge bin = %d, want 0", i)
	}
	if i := binIndex(-0.01, 0, 1, 8); i != -1 {
		t.Errorf("below-range bin = %d, want -1", i)
	}
	if i := binIndex(1.01, 0, 1, 8); i != -1 {
		t.Errorf("above-range bin = %d, want -1", i)
	}
	if i := binIndex(0.5, 0, 0, 8); i != -1 {
		t.Errorf("zero-span bin = %d, want -1", i)
	}
}

func TestAxisSizes(t *testing.T) {
	// f = 1/32 caps the axis at 16 regions: powers 2,4,8,16.
	got := axisSizes(1.0/32, 0)
	want := []int{2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("axisSizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("axisSizes = %v, want %v", got, want)
		}
	}
	// Non-power cap is appended: 1/(2*0.024) ~ 20.8 -> cap 20.
	got = axisSizes(0.024, 0)
	if got[len(got)-1] != 20 {
		t.Errorf("cap not appended: %v", got)
	}
	// Huge bandwidth leaves no valid sizes.
	if got := axisSizes(0.4, 0); got != nil {
		t.Errorf("axisSizes(0.4) = %v, want nil", got)
	}
	// MaxDim caps.
	got = axisSizes(1.0/64, 5)
	if got[len(got)-1] != 5 {
		t.Errorf("MaxDim not honored: %v", got)
	}
}

func TestSuite2DShape(t *testing.T) {
	suite, err := Suite2D(SuiteOptions{Seed: 1, Stride: 4, MaxDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) == 0 {
		t.Fatal("empty 2D suite")
	}
	seen := map[Name]bool{}
	for _, in := range suite {
		seen[in.Dataset] = true
		if in.X < 2 || in.Y < 2 {
			t.Fatalf("instance %s has degenerate dims", in.Label())
		}
		if len(in.Weights) != in.X*in.Y {
			t.Fatalf("instance %s weight length mismatch", in.Label())
		}
		if _, err := grid.FromWeights2D(in.X, in.Y, in.Weights); err != nil {
			t.Fatalf("instance %s not grid-convertible: %v", in.Label(), err)
		}
	}
	for _, name := range Names() {
		if !seen[name] {
			t.Errorf("dataset %s missing from suite", name)
		}
	}
}

func TestSuite3DShape(t *testing.T) {
	suite, err := Suite3D(SuiteOptions{Seed: 1, Stride: 4, MaxDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) == 0 {
		t.Fatal("empty 3D suite")
	}
	for _, in := range suite {
		if in.X < 2 || in.Y < 2 || in.Z < 2 {
			t.Fatalf("instance %s has degenerate dims", in.Label())
		}
		if _, err := grid.FromWeights3D(in.X, in.Y, in.Z, in.Weights); err != nil {
			t.Fatalf("instance %s not grid-convertible: %v", in.Label(), err)
		}
	}
}

func TestSuiteSizesMatchPaperScale(t *testing.T) {
	// The paper evaluates 852 2D and 1587 3D instances; the full synthetic
	// suites should land in the same order of magnitude.
	s2, err := Suite2D(SuiteOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Suite3D(SuiteOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) < 200 || len(s2) > 3000 {
		t.Errorf("2D suite size %d far from paper scale (852)", len(s2))
	}
	if len(s3) < 300 || len(s3) > 5000 {
		t.Errorf("3D suite size %d far from paper scale (1587)", len(s3))
	}
	t.Logf("suite sizes: %d 2D instances (paper: 852), %d 3D instances (paper: 1587)", len(s2), len(s3))
}
