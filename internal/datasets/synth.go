package datasets

import (
	"fmt"
	"math/rand"
)

// Name identifies one of the four dataset analogues.
type Name string

// The four datasets of Section VI-A.
const (
	Dengue    Name = "Dengue"    // dengue cases, Cali (Colombia), 2010-2011
	FluAnimal Name = "FluAnimal" // avian flu cases worldwide, 2001-2016
	Pollen    Name = "Pollen"    // pollen/allergy tweets, Feb-Apr 2016
	PollenUS  Name = "PollenUS"  // Pollen restricted to the contiguous US
)

// Names returns the datasets in the paper's presentation order.
func Names() []Name { return []Name{Dengue, FluAnimal, Pollen, PollenUS} }

// Dataset is a generated point set with its bounding box and the
// bandwidths the suite evaluates. A bandwidth is the paper's "distance
// within which an event can impact a voxel", expressed here as a fraction
// of each axis extent; a region must be at least twice the bandwidth, so a
// bandwidth fraction f caps every grid dimension at floor(1/(2f)).
type Dataset struct {
	Name       Name
	Points     []Point
	Bounds     Bounds
	Bandwidths []float64
}

// Generate builds the named dataset analogue with a deterministic seed.
// The generators reproduce each real dataset's qualitative structure:
//
//   - Dengue: one dense city (~11k cases in Cali) — a handful of tight
//     urban clusters, two seasonal waves, almost no background noise.
//   - FluAnimal: very sparse, scattered worldwide over 15 years — mostly
//     background with faint, wide clusters; this sparsity is what made the
//     paper's FluAnimal results diverge from the other datasets.
//   - Pollen: heavy-tailed, population-weighted tweet locations over a
//     continent-plus-outliers extent with a strong season burst.
//   - PollenUS: Pollen clipped to a CONUS-like sub-box.
func Generate(name Name, seed int64) (Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case Dengue:
		box := Bounds{MinX: 0, MaxX: 30, MinY: 0, MaxY: 30, MinT: 0, MaxT: 730}
		clusters := []cluster{
			{cx: 12, cy: 14, sigma: 1.2, t0: 30, dur: 150, weight: 5},
			{cx: 13, cy: 16, sigma: 0.8, t0: 60, dur: 120, weight: 4},
			{cx: 18, cy: 12, sigma: 1.5, t0: 380, dur: 160, weight: 4},
			{cx: 11, cy: 11, sigma: 0.9, t0: 420, dur: 140, weight: 3},
			{cx: 20, cy: 18, sigma: 2.0, t0: 200, dur: 300, weight: 2},
		}
		pts := sampleClusters(rng, 11000, clusters, 0.03, box)
		return Dataset{Name: name, Points: pts, Bounds: box,
			Bandwidths: []float64{1.0 / 64, 1.0 / 32, 1.0 / 16}}, nil
	case FluAnimal:
		box := Bounds{MinX: 0, MaxX: 360, MinY: 0, MaxY: 160, MinT: 0, MaxT: 5500}
		clusters := []cluster{
			{cx: 250, cy: 90, sigma: 8, t0: 1200, dur: 1200, weight: 3}, // SE Asia analogue
			{cx: 220, cy: 110, sigma: 10, t0: 1800, dur: 1500, weight: 2},
			{cx: 60, cy: 100, sigma: 12, t0: 2500, dur: 2000, weight: 1},
			{cx: 180, cy: 70, sigma: 16, t0: 500, dur: 4000, weight: 1},
		}
		pts := sampleClusters(rng, 900, clusters, 0.18, box)
		return Dataset{Name: name, Points: pts, Bounds: box,
			Bandwidths: []float64{1.0 / 32, 1.0 / 16, 1.0 / 8}}, nil
	case Pollen:
		pts, box := pollenPoints(rng)
		return Dataset{Name: name, Points: pts, Bounds: box,
			Bandwidths: []float64{1.0 / 64, 1.0 / 32}}, nil
	case PollenUS:
		pts, box := pollenPoints(rng)
		conus := Bounds{MinX: 30, MaxX: 150, MinY: 60, MaxY: 120, MinT: box.MinT, MaxT: box.MaxT}
		clipped := Clip(pts, conus)
		return Dataset{Name: name, Points: clipped, Bounds: conus,
			Bandwidths: []float64{1.0 / 32, 1.0 / 16}}, nil
	default:
		return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
	}
}

// pollenPoints draws the shared Pollen point process: population-weighted
// city clusters over a wide box (tweets include a world-wide tail), with
// a pollen-season ramp in time.
func pollenPoints(rng *rand.Rand) ([]Point, Bounds) {
	box := Bounds{MinX: 0, MaxX: 200, MinY: 0, MaxY: 140, MinT: 0, MaxT: 90}
	// Heavy-tailed city sizes: weight ~ 1/rank over 12 CONUS-ish cities
	// plus 3 outliers outside the CONUS sub-box.
	clusters := make([]cluster, 0, 15)
	cities := [][2]float64{
		{45, 80}, {60, 95}, {75, 70}, {90, 100}, {100, 85}, {110, 75},
		{120, 95}, {130, 80}, {55, 110}, {85, 65}, {140, 90}, {65, 72},
		{170, 40}, {15, 30}, {185, 125}, // outliers beyond CONUS clip
	}
	for rank, c := range cities {
		clusters = append(clusters, cluster{
			cx: c[0], cy: c[1], sigma: 2.5 + rng.Float64()*2,
			t0: 10, dur: 75,
			weight: 1.0 / float64(rank+1),
		})
	}
	pts := sampleClusters(rng, 9000, clusters, 0.08, box)
	return pts, box
}
