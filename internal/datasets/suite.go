package datasets

import (
	"fmt"
	"math"
)

// Instance2D is one 2DS-IVC benchmark instance of the evaluation suite.
type Instance2D struct {
	Dataset    Name
	Projection Projection
	Bandwidth  float64 // fraction of each axis extent
	X, Y       int
	Weights    []int64 // row-major, from Voxelize2D
}

// Instance3D is one 3DS-IVC benchmark instance.
type Instance3D struct {
	Dataset   Name
	Bandwidth float64
	X, Y, Z   int
	Weights   []int64 // x-fastest, from Voxelize3D
}

// Label renders a human-readable instance id, e.g.
// "Dengue/xy/bw1⁄32/16x8".
func (in Instance2D) Label() string {
	return fmt.Sprintf("%s/%s/bw%.4f/%dx%d", in.Dataset, in.Projection, in.Bandwidth, in.X, in.Y)
}

// Label renders a human-readable instance id.
func (in Instance3D) Label() string {
	return fmt.Sprintf("%s/bw%.4f/%dx%dx%d", in.Dataset, in.Bandwidth, in.X, in.Y, in.Z)
}

// SuiteOptions controls suite size. The zero value reproduces the paper's
// full enumeration (all powers of two per axis plus the bandwidth-capped
// maximum); Stride subsamples the per-axis size lists for quick runs.
type SuiteOptions struct {
	// Seed feeds the dataset generators; the same seed always yields the
	// same suite.
	Seed int64
	// Stride > 1 keeps every Stride-th axis-size combination, shrinking
	// the suite roughly quadratically (2D) or cubically (3D).
	Stride int
	// MaxDim caps each grid dimension (0 = the bandwidth cap only).
	MaxDim int
}

func (o SuiteOptions) stride() int {
	if o.Stride < 1 {
		return 1
	}
	return o.Stride
}

// axisSizes lists the paper's grid sizes for one axis under a bandwidth
// fraction f: all powers of 2 that fit, plus the largest size that can
// accommodate the bandwidth (each region must be at least twice the
// bandwidth, so at most floor(1/(2f)) regions fit).
func axisSizes(f float64, maxDim int) []int {
	cap := int(math.Floor(1 / (2 * f)))
	if maxDim > 0 {
		cap = min(cap, maxDim)
	}
	if cap < 2 {
		return nil
	}
	var sizes []int
	for s := 2; s <= cap; s *= 2 {
		sizes = append(sizes, s)
	}
	if last := sizes[len(sizes)-1]; last != cap {
		sizes = append(sizes, cap)
	}
	return sizes
}

// Suite2D enumerates the full 2D instance suite: every dataset, every
// projection, every bandwidth, every (X, Y) size combination.
func Suite2D(opts SuiteOptions) ([]Instance2D, error) {
	var out []Instance2D
	stride := opts.stride()
	for _, name := range Names() {
		ds, err := Generate(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, bw := range ds.Bandwidths {
			sizes := axisSizes(bw, opts.MaxDim)
			for xi := 0; xi < len(sizes); xi += stride {
				for yi := 0; yi < len(sizes); yi += stride {
					for _, proj := range Projections() {
						g, err := Voxelize2D(ds.Points, ds.Bounds, proj, sizes[xi], sizes[yi])
						if err != nil {
							return nil, err
						}
						out = append(out, Instance2D{
							Dataset:    name,
							Projection: proj,
							Bandwidth:  bw,
							X:          g.X,
							Y:          g.Y,
							Weights:    g.W,
						})
					}
				}
			}
		}
	}
	return out, nil
}

// Suite3D enumerates the full 3D instance suite: every dataset, every
// bandwidth, every (X, Y, Z) size combination.
func Suite3D(opts SuiteOptions) ([]Instance3D, error) {
	var out []Instance3D
	stride := opts.stride()
	for _, name := range Names() {
		ds, err := Generate(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, bw := range ds.Bandwidths {
			sizes := axisSizes(bw, opts.MaxDim)
			for xi := 0; xi < len(sizes); xi += stride {
				for yi := 0; yi < len(sizes); yi += stride {
					for zi := 0; zi < len(sizes); zi += stride {
						g, err := Voxelize3D(ds.Points, ds.Bounds, sizes[xi], sizes[yi], sizes[zi])
						if err != nil {
							return nil, err
						}
						out = append(out, Instance3D{
							Dataset:   name,
							Bandwidth: bw,
							X:         g.X,
							Y:         g.Y,
							Z:         g.Z,
							Weights:   g.W,
						})
					}
				}
			}
		}
	}
	return out, nil
}
