package datasets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadPointsCSV parses events from CSV with columns x,y,t (a header line
// is detected and skipped; '#' lines are comments). It is the bridge for
// users who hold the real datasets the paper used: export them as CSV,
// load them here, and the rest of the pipeline (voxelizer, suites, STKDE)
// applies unchanged.
func ReadPointsCSV(r io.Reader) ([]Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var points []Point
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("datasets: line %d: want 3 columns, got %d", lineNo, len(fields))
		}
		x, errX := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		y, errY := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		t, errT := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if errX != nil || errY != nil || errT != nil {
			// Tolerate a single header line at the top.
			if len(points) == 0 && lineNo == 1 {
				continue
			}
			return nil, fmt.Errorf("datasets: line %d: non-numeric fields %q", lineNo, line)
		}
		points = append(points, Point{X: x, Y: y, T: t})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("datasets: no points in CSV input")
	}
	return points, nil
}

// WritePointsCSV emits events as x,y,t rows with a header.
func WritePointsCSV(w io.Writer, points []Point) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "x,y,t"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(bw, "%g,%g,%g\n", p.X, p.Y, p.T); err != nil {
			return err
		}
	}
	return bw.Flush()
}
