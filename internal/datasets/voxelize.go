package datasets

import (
	"fmt"

	"stencilivc/internal/grid"
)

// Projection selects a 2D plane for 2DS-IVC instances (the paper projects
// each dataset onto xy, xt, and yt).
type Projection string

// The three projections of Section VI-A.
const (
	XY Projection = "xy"
	XT Projection = "xt"
	YT Projection = "yt"
)

// Projections returns the planes in the paper's order.
func Projections() []Projection { return []Projection{XY, XT, YT} }

// project maps a point onto the chosen plane, returning (a, b) coordinates
// and the (aSpan, bSpan) of the bounds.
func project(p Point, b Bounds, proj Projection) (a, bb, aMin, aSpan, bMin, bSpan float64, err error) {
	switch proj {
	case XY:
		return p.X, p.Y, b.MinX, b.SpanX(), b.MinY, b.SpanY(), nil
	case XT:
		return p.X, p.T, b.MinX, b.SpanX(), b.MinT, b.SpanT(), nil
	case YT:
		return p.Y, p.T, b.MinY, b.SpanY(), b.MinT, b.SpanT(), nil
	default:
		return 0, 0, 0, 0, 0, 0, fmt.Errorf("datasets: unknown projection %q", proj)
	}
}

// Voxelize2D bins the points of a dataset projection onto an X×Y grid;
// each cell's weight is its event count, exactly how the paper turns a
// dataset into a 2DS-IVC instance.
func Voxelize2D(points []Point, bounds Bounds, proj Projection, x, y int) (*grid.Grid2D, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("datasets: degenerate bounds %+v", bounds)
	}
	g, err := grid.NewGrid2D(x, y)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		a, b, aMin, aSpan, bMin, bSpan, err := project(p, bounds, proj)
		if err != nil {
			return nil, err
		}
		i := binIndex(a, aMin, aSpan, x)
		j := binIndex(b, bMin, bSpan, y)
		if i < 0 || j < 0 {
			continue // outside the declared bounds; skip silently like the app does
		}
		g.W[g.ID(i, j)]++
	}
	return g, nil
}

// Voxelize3D bins the points onto an X×Y×Z grid over (x, y, t).
func Voxelize3D(points []Point, bounds Bounds, x, y, z int) (*grid.Grid3D, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("datasets: degenerate bounds %+v", bounds)
	}
	g, err := grid.NewGrid3D(x, y, z)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		i := binIndex(p.X, bounds.MinX, bounds.SpanX(), x)
		j := binIndex(p.Y, bounds.MinY, bounds.SpanY(), y)
		k := binIndex(p.T, bounds.MinT, bounds.SpanT(), z)
		if i < 0 || j < 0 || k < 0 {
			continue
		}
		g.W[g.ID(i, j, k)]++
	}
	return g, nil
}

// binIndex maps v in [min, min+span] to a bin in [0, n); values on the
// upper edge land in the last bin, values outside return -1.
func binIndex(v, min, span float64, n int) int {
	if span <= 0 {
		return -1
	}
	f := (v - min) / span
	if f < 0 || f > 1 {
		return -1
	}
	i := int(f * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}
