package datasets

import (
	"bytes"
	"strings"
	"testing"
)

func TestPointsCSVRoundTrip(t *testing.T) {
	pts := []Point{{1, 2, 3}, {4.5, -6, 7.25}}
	var buf bytes.Buffer
	if err := WritePointsCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPointsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) {
		t.Fatalf("round trip %d of %d points", len(back), len(pts))
	}
	for i := range pts {
		if back[i] != pts[i] {
			t.Fatalf("point %d: %v != %v", i, back[i], pts[i])
		}
	}
}

func TestReadPointsCSVHeaderAndComments(t *testing.T) {
	in := `lon,lat,time
# a comment
1,2,3

4,5,6
`
	pts, err := ReadPointsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1] != (Point{4, 5, 6}) {
		t.Fatalf("points = %v", pts)
	}
}

func TestReadPointsCSVErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"1,2",          // wrong arity
		"1,2,3\nx,y,z", // non-numeric mid-file
		"a,b,c\nd,e,f", // a second header-like line
	}
	for i, in := range cases {
		if _, err := ReadPointsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}
