// Package datasets generates the spatio-temporal workloads of the paper's
// evaluation (Section VI-A). The authors used four private datasets
// obtained from the STKDE paper's authors (Dengue, FluAnimal, Pollen,
// PollenUS); this package substitutes seeded synthetic point processes
// whose spatial/temporal structure matches each dataset's published
// description, then voxelizes them into the weighted stencil instances the
// coloring algorithms consume. See DESIGN.md for the substitution
// rationale.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is an event in (x, y, t) space. Coordinates are abstract units
// (the voxelizer only needs relative positions and a bounding box).
type Point struct {
	X, Y, T float64
}

// Bounds is an axis-aligned bounding box in (x, y, t).
type Bounds struct {
	MinX, MaxX float64
	MinY, MaxY float64
	MinT, MaxT float64
}

// SpanX returns the x extent of the box.
func (b Bounds) SpanX() float64 { return b.MaxX - b.MinX }

// SpanY returns the y extent of the box.
func (b Bounds) SpanY() float64 { return b.MaxY - b.MinY }

// SpanT returns the t extent of the box.
func (b Bounds) SpanT() float64 { return b.MaxT - b.MinT }

// Valid reports whether every dimension has positive extent.
func (b Bounds) Valid() bool {
	return b.SpanX() > 0 && b.SpanY() > 0 && b.SpanT() > 0
}

// Contains reports whether p lies inside the box.
func (b Bounds) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX &&
		p.Y >= b.MinY && p.Y <= b.MaxY &&
		p.T >= b.MinT && p.T <= b.MaxT
}

// BoundsOf computes the bounding box of a point set.
func BoundsOf(points []Point) (Bounds, error) {
	if len(points) == 0 {
		return Bounds{}, fmt.Errorf("datasets: empty point set")
	}
	b := Bounds{
		MinX: math.Inf(1), MaxX: math.Inf(-1),
		MinY: math.Inf(1), MaxY: math.Inf(-1),
		MinT: math.Inf(1), MaxT: math.Inf(-1),
	}
	for _, p := range points {
		b.MinX = math.Min(b.MinX, p.X)
		b.MaxX = math.Max(b.MaxX, p.X)
		b.MinY = math.Min(b.MinY, p.Y)
		b.MaxY = math.Max(b.MaxY, p.Y)
		b.MinT = math.Min(b.MinT, p.T)
		b.MaxT = math.Max(b.MaxT, p.T)
	}
	return b, nil
}

// Clip returns the subset of points inside bounds, analogous to how
// PollenUS restricts Pollen to the contiguous United States.
func Clip(points []Point, b Bounds) []Point {
	var out []Point
	for _, p := range points {
		if b.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// cluster is a spatial hotspot with a temporal burst, the building block
// of the synthetic generators: real epidemic/social datasets concentrate
// around cities and flare in time.
type cluster struct {
	cx, cy  float64 // spatial center
	sigma   float64 // spatial std dev
	t0, dur float64 // burst start and duration
	weight  float64 // relative share of points
}

// sampleClusters draws n points from a weighted mixture of clusters plus
// a uniform background fraction over box.
func sampleClusters(rng *rand.Rand, n int, clusters []cluster, background float64, box Bounds) []Point {
	var totalW float64
	for _, c := range clusters {
		totalW += c.weight
	}
	points := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < background || totalW == 0 {
			points = append(points, Point{
				X: box.MinX + rng.Float64()*box.SpanX(),
				Y: box.MinY + rng.Float64()*box.SpanY(),
				T: box.MinT + rng.Float64()*box.SpanT(),
			})
			continue
		}
		pick := rng.Float64() * totalW
		var chosen cluster
		for _, c := range clusters {
			pick -= c.weight
			if pick <= 0 {
				chosen = c
				break
			}
			chosen = c
		}
		p := Point{
			X: chosen.cx + rng.NormFloat64()*chosen.sigma,
			Y: chosen.cy + rng.NormFloat64()*chosen.sigma,
			T: chosen.t0 + rng.Float64()*chosen.dur,
		}
		// Reflect strays back into the box so the declared bounds hold.
		p.X = clamp(p.X, box.MinX, box.MaxX)
		p.Y = clamp(p.Y, box.MinY, box.MaxY)
		p.T = clamp(p.T, box.MinT, box.MaxT)
		points = append(points, p)
	}
	return points
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}
