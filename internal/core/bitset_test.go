package core

import (
	"math/rand"
	"testing"
)

// TestScanUniformWeight pins the verdict on the edge shapes: empty,
// zero-weight, single-vertex, uniform, and mixed graphs.
func TestScanUniformWeight(t *testing.T) {
	cases := []struct {
		name    string
		weights []int64
		wantW   int64
		wantOK  bool
	}{
		{"empty", nil, 0, false},
		{"single", []int64{7}, 7, true},
		{"uniform", []int64{3, 3, 3, 3}, 3, true},
		{"mixed", []int64{3, 3, 4}, 0, false},
		{"zero", []int64{0, 0}, 0, false},
		{"zero-among", []int64{2, 0, 2}, 0, false},
	}
	for _, c := range cases {
		g := MustCSRGraph(c.weights, nil)
		w, ok := ScanUniformWeight(g)
		if w != c.wantW || ok != c.wantOK {
			t.Errorf("%s: ScanUniformWeight = (%d, %v), want (%d, %v)",
				c.name, w, ok, c.wantW, c.wantOK)
		}
	}
}

// TestCSRUniformWeightCache: the verdict is computed at construction,
// invalidated by SetWeight, and recomputed lazily — in both directions
// (uniform -> mixed and mixed -> uniform).
func TestCSRUniformWeightCache(t *testing.T) {
	g := MustCSRGraph([]int64{5, 5, 5}, []Edge{{0, 1}, {1, 2}})
	if w, ok := g.UniformWeight(); !ok || w != 5 {
		t.Fatalf("constructed uniform graph: UniformWeight = (%d, %v), want (5, true)", w, ok)
	}
	g.SetWeight(1, 9)
	if w, ok := g.UniformWeight(); ok {
		t.Fatalf("after SetWeight(1, 9): UniformWeight = (%d, %v), want not uniform", w, ok)
	}
	g.SetWeight(1, 5)
	if w, ok := g.UniformWeight(); !ok || w != 5 {
		t.Fatalf("after restoring: UniformWeight = (%d, %v), want (5, true)", w, ok)
	}
}

// TestUniformWeightInterfacePrecedence: an explicit UniformWeighter
// opt-out wins over the weight scan — this is what the equivalence
// tests use to force the v1 interval kernel on uniform instances.
func TestUniformWeightInterfacePrecedence(t *testing.T) {
	g := MustCSRGraph([]int64{4, 4}, []Edge{{0, 1}})
	if w, ok := UniformWeight(hideUniform{g}); ok || w != 0 {
		t.Errorf("opted-out graph still reported uniform (%d, %v)", w, ok)
	}
	if w, ok := UniformWeight(g); !ok || w != 4 {
		t.Errorf("plain graph: UniformWeight = (%d, %v), want (4, true)", w, ok)
	}
}

// hideUniform wraps a graph and opts out of the uniform-weight fast
// path regardless of the actual weights.
type hideUniform struct{ Graph }

func (hideUniform) UniformWeight() (int64, bool) { return 0, false }

// TestFreeMapSpill: occupancy beyond one word spills into the next —
// occupying slots 0..63 places the first free slot at 64, and a hole
// anywhere below is found first.
func TestFreeMapSpill(t *testing.T) {
	var f freeMap
	for s := int64(0); s < 64; s++ {
		f.set(s)
	}
	if got := f.firstFree(); got != 64 {
		t.Errorf("full first word: firstFree = %d, want 64", got)
	}
	var g freeMap
	for s := int64(0); s < 200; s++ {
		if s != 130 {
			g.set(s)
		}
	}
	if got := g.firstFree(); got != 130 {
		t.Errorf("hole at 130: firstFree = %d, want 130", got)
	}
	var h freeMap
	for s := int64(0); s < freeMapSlots; s++ {
		h.set(s)
	}
	if got := h.firstFree(); got != freeMapSlots {
		t.Errorf("saturated map: firstFree = %d, want %d", got, freeMapSlots)
	}
}

// TestLowestFitUniformRefusals: the kernel must report false — never a
// wrong answer — on inputs it cannot represent: starts that are not
// multiples of w and occupancies that could overflow the map.
func TestLowestFitUniformRefusals(t *testing.T) {
	if _, ok := LowestFitUniform([]Interval{{Start: 3, End: 5}}, 2); ok {
		t.Error("non-multiple start was not refused")
	}
	big := make([]Interval, freeMapSlots)
	for i := range big {
		big[i] = Interval{Start: int64(i) * 2, End: int64(i)*2 + 2}
	}
	if _, ok := LowestFitUniform(big, 2); ok {
		t.Error("map-overflowing occupancy was not refused")
	}
	if s, ok := LowestFitUniform([]Interval{{Start: 2, End: 4}}, 0); !ok || s != 0 {
		t.Errorf("zero width: got (%d, %v), want (0, true)", s, ok)
	}
	// Empty intervals are ignored, exactly like the interval kernels.
	if s, ok := LowestFitUniform([]Interval{{Start: 3, End: 3}, {Start: 0, End: 2}}, 2); !ok || s != 2 {
		t.Errorf("empty interval not ignored: got (%d, %v), want (2, true)", s, ok)
	}
}

// TestKernelsAgreeRandom hammers the three kernels against the brute
// reference on random occupancies, both general and uniform-shaped.
func TestKernelsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(27)
		w := int64(rng.Intn(7))
		occ := make([]Interval, n)
		for i := range occ {
			occ[i] = NewInterval(int64(rng.Intn(50)), int64(rng.Intn(6)))
		}
		want := bruteLowestFit(occ, w)
		if got := LowestFitStream(occ, w); got != want {
			t.Fatalf("trial %d: LowestFitStream(%v, %d) = %d, want %d", trial, occ, w, got, want)
		}
		if got := LowestFit(append([]Interval{}, occ...), w); got != want {
			t.Fatalf("trial %d: LowestFit(%v, %d) = %d, want %d", trial, occ, w, got, want)
		}
		if w > 0 {
			uocc := make([]Interval, n)
			for i := range uocc {
				uocc[i] = NewInterval(int64(rng.Intn(30))*w, w)
			}
			ugot, ok := LowestFitUniform(uocc, w)
			if !ok {
				t.Fatalf("trial %d: LowestFitUniform refused %v (w=%d)", trial, uocc, w)
			}
			if uwant := bruteLowestFit(uocc, w); ugot != uwant {
				t.Fatalf("trial %d: LowestFitUniform(%v, %d) = %d, want %d", trial, uocc, w, ugot, uwant)
			}
		}
	}
}

// TestLowestFitStreamDescending pins the streaming kernel's worst case
// (starts strictly descending, maximally chained) for correctness.
func TestLowestFitStreamDescending(t *testing.T) {
	occ := make([]Interval, 26)
	for i := range occ {
		s := int64(25-i) * 2
		occ[i] = Interval{Start: s, End: s + 2}
	}
	if got := LowestFitStream(occ, 2); got != 52 {
		t.Errorf("descending chain: got %d, want 52", got)
	}
}

// TestV2KernelsNoAllocs pins the zero-allocation contract of both v2
// kernels.
func TestV2KernelsNoAllocs(t *testing.T) {
	occ := []Interval{{Start: 4, End: 6}, {Start: 0, End: 2}, {Start: 8, End: 10}}
	if n := testing.AllocsPerRun(100, func() {
		LowestFitStream(occ, 2)
	}); n != 0 {
		t.Errorf("LowestFitStream allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		LowestFitUniform(occ, 2)
	}); n != 0 {
		t.Errorf("LowestFitUniform allocates %v/op, want 0", n)
	}
}

// TestGreedyColorKernelEquivalence: greedy colorings through the v2
// dispatch (uniform free-map or streaming scan) are byte-identical to
// colorings forced through the v1 interval kernel, on uniform and
// mixed weights alike.
func TestGreedyColorKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 30 + rng.Intn(40)
		weights := make([]int64, n)
		uniform := trial%2 == 0
		for v := range weights {
			if uniform {
				weights[v] = int64(trial%5) + 1
			} else {
				weights[v] = rng.Int63n(6)
			}
		}
		var edges []Edge
		for u := 0; u < n; u++ {
			for d := 1; d <= 3; d++ {
				if v := u + d; v < n && rng.Intn(2) == 0 {
					edges = append(edges, Edge{u, v})
				}
			}
		}
		g := MustCSRGraph(weights, edges)
		order := rng.Perm(n)
		v2, err := GreedyColor(g, order)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := GreedyColor(hideUniform{g}, order)
		if err != nil {
			t.Fatal(err)
		}
		for v := range v1.Start {
			if v1.Start[v] != v2.Start[v] {
				t.Fatalf("trial %d (uniform=%v): vertex %d colored %d by v1, %d by v2",
					trial, uniform, v, v1.Start[v], v2.Start[v])
			}
		}
	}
}
