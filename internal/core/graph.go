package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Graph is the minimal view of a weighted undirected graph needed by the
// coloring algorithms. Implementations must be safe for concurrent reads.
//
// Neighbors appends the neighbors of v to buf and returns the extended
// slice; callers pass buf[:0] of a reusable slice to avoid allocation.
// Implicit graphs (stencils) synthesize the list from coordinates, so no
// adjacency is ever stored for the grid cases.
type Graph interface {
	// Len returns the number of vertices. Vertices are 0..Len()-1.
	Len() int
	// Weight returns the (non-negative) weight of vertex v.
	Weight(v int) int64
	// Neighbors appends the neighbors of v to buf and returns it.
	Neighbors(v int, buf []int) []int
}

// MaxFixedDegree is the largest neighbor count a FixedGraph may report:
// 26, the degree of an interior 27-pt stencil vertex (the 9-pt stencil's
// 8 fits inside the same bound).
const MaxFixedDegree = 26

// FixedGraph is implemented by graphs whose degree is bounded by
// MaxFixedDegree — the implicit stencils. NeighborsFixed writes the
// neighbors of v into buf and returns the count, letting hot placement
// loops enumerate adjacency into a fixed-size array with no slice append
// and no heap traffic. The reported neighbors must match Neighbors.
type FixedGraph interface {
	Graph
	NeighborsFixed(v int, buf *[MaxFixedDegree]int) int
}

// DegreeGraph is an optional interface for graphs that can answer vertex
// degrees in O(1) without materializing a neighbor list (CSR offset
// difference, stencil coordinate arithmetic).
type DegreeGraph interface {
	Degree(v int) int
}

// Degree returns the number of neighbors of v. Graphs implementing
// DegreeGraph answer in O(1); the fallback materializes the neighbor
// list (and allocates), so implementing DegreeGraph is strongly
// preferred for anything used in a loop.
func Degree(g Graph, v int) int {
	if dg, ok := g.(DegreeGraph); ok {
		return dg.Degree(v)
	}
	return len(g.Neighbors(v, nil))
}

// TotalWeight returns the sum of all vertex weights.
func TotalWeight(g Graph) int64 {
	var sum int64
	for v := 0; v < g.Len(); v++ {
		sum += g.Weight(v)
	}
	return sum
}

// MaxWeight returns the largest vertex weight (0 for an empty graph).
func MaxWeight(g Graph) int64 {
	var mw int64
	for v := 0; v < g.Len(); v++ {
		mw = max(mw, g.Weight(v))
	}
	return mw
}

// CountEdges returns the number of undirected edges of g.
func CountEdges(g Graph) int {
	var buf []int
	edges := 0
	for v := 0; v < g.Len(); v++ {
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u > v {
				edges++
			}
		}
	}
	return edges
}

// CSRGraph is a general weighted graph in compressed sparse row form.
// It implements Graph and is used for the non-stencil structures of the
// paper: chains, cycles, cliques, bipartite graphs, and arbitrary test
// graphs.
type CSRGraph struct {
	offsets []int32
	adj     []int32
	weights []int64
	// total caches the weight sum, maintained by SetWeight, so the
	// construction-time no-overflow guarantee (Σw fits in int64, hence
	// every start+w a solver can produce does too) survives mutation.
	total int64
	// uniform caches the uniform-weight verdict that routes placements
	// onto the packed free-map kernel: > 0 is the common weight, -1 is
	// "not uniform", 0 is "dirty, recompute". It is sound to cache here
	// because the weight slice is private and SetWeight (which marks it
	// dirty) is the only mutation path. Accessed atomically so
	// concurrent readers can share one lazy recomputation.
	uniform int64
}

// UniformWeight reports whether every vertex has the same positive
// weight (core.UniformWeighter): the verdict that lets placements take
// the packed free-map kernel. The answer is cached — computed at
// construction, invalidated by SetWeight, and lazily recomputed here —
// so steady-state calls are one atomic load.
func (g *CSRGraph) UniformWeight() (int64, bool) {
	u := atomic.LoadInt64(&g.uniform)
	if u == 0 {
		u = -1
		if w, ok := ScanUniformWeight(g); ok {
			u = w
		}
		atomic.StoreInt64(&g.uniform, u)
	}
	if u > 0 {
		return u, true
	}
	return 0, false
}

var _ UniformWeighter = (*CSRGraph)(nil)

var _ Graph = (*CSRGraph)(nil)

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int
}

// NewCSRGraph builds a CSR graph from vertex weights and an undirected
// edge list. Self loops and duplicate edges are rejected: a self loop on a
// positive-weight vertex makes the instance infeasible, and duplicates
// would silently skew degree-based heuristics.
//
// Construction is overflow-safe: vertex and edge counts that do not fit
// the int32 CSR index type, and weight sets whose total overflows
// int64, are rejected with errors instead of silently corrupting
// offsets. The total-weight bound is what guarantees that every
// interval end (start + w) a solver can produce stays representable:
// greedy starts never exceed the weight sum.
func NewCSRGraph(weights []int64, edges []Edge) (*CSRGraph, error) {
	n := len(weights)
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("core: %d vertices overflow the CSR int32 index type", n)
	}
	if len(edges) > (math.MaxInt32-1)/2 {
		return nil, fmt.Errorf("core: %d edges overflow the CSR int32 offset type", len(edges))
	}
	var total int64
	uniform := int64(-1)
	if n > 0 && weights[0] > 0 {
		uniform = weights[0]
	}
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("core: negative weight %d", w)
		}
		if total > math.MaxInt64-w {
			return nil, fmt.Errorf("core: total weight overflows int64 (interval ends would wrap)")
		}
		total += w
		if w != uniform {
			uniform = -1
		}
	}
	deg := make([]int32, n)
	for _, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("core: self loop on vertex %d", e.U)
		}
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("core: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[n])
	fill := make([]int32, n)
	copy(fill, offsets[:n])
	for _, e := range edges {
		adj[fill[e.U]] = int32(e.V)
		fill[e.U]++
		adj[fill[e.V]] = int32(e.U)
		fill[e.V]++
	}
	// Sort each adjacency run and detect duplicates.
	for v := 0; v < n; v++ {
		run := adj[offsets[v]:offsets[v+1]]
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
		for i := 1; i < len(run); i++ {
			if run[i] == run[i-1] {
				return nil, fmt.Errorf("core: duplicate edge (%d,%d)", v, run[i])
			}
		}
	}
	w := make([]int64, n)
	copy(w, weights)
	return &CSRGraph{offsets: offsets, adj: adj, weights: w, total: total, uniform: uniform}, nil
}

// MustCSRGraph is NewCSRGraph that panics on error; for tests and
// literals whose validity is static.
func MustCSRGraph(weights []int64, edges []Edge) *CSRGraph {
	g, err := NewCSRGraph(weights, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Len returns the number of vertices.
func (g *CSRGraph) Len() int { return len(g.weights) }

// Weight returns the weight of vertex v.
func (g *CSRGraph) Weight(v int) int64 { return g.weights[v] }

// SetWeight replaces the weight of vertex v. Like construction it
// rejects (by panicking, as for negative weights) updates that would
// push the graph's total weight past int64, preserving the invariant
// that no solver-produced interval end can overflow.
func (g *CSRGraph) SetWeight(v int, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("core: negative weight %d", w))
	}
	rest := g.total - g.weights[v]
	if rest > math.MaxInt64-w {
		panic(fmt.Sprintf("core: weight %d overflows the graph's total weight", w))
	}
	g.total = rest + w
	g.weights[v] = w
	atomic.StoreInt64(&g.uniform, 0) // uniform verdict: dirty, recompute lazily
}

// Neighbors appends the neighbors of v to buf and returns it.
func (g *CSRGraph) Neighbors(v int, buf []int) []int {
	for _, u := range g.adj[g.offsets[v]:g.offsets[v+1]] {
		buf = append(buf, int(u))
	}
	return buf
}

// Degree returns the degree of v in O(1) from the CSR offsets.
func (g *CSRGraph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

var _ DegreeGraph = (*CSRGraph)(nil)

// Chain returns the path graph v0 - v1 - ... - v_{n-1} with the given
// weights (the 1×N stencil degenerate case, Section II of the paper).
func Chain(weights []int64) *CSRGraph {
	edges := make([]Edge, 0, max(0, len(weights)-1))
	for i := 0; i+1 < len(weights); i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return MustCSRGraph(weights, edges)
}

// Cycle returns the cycle graph on len(weights) >= 3 vertices where vertex
// i neighbors i±1 mod n, as in Section III-C of the paper.
func Cycle(weights []int64) (*CSRGraph, error) {
	n := len(weights)
	if n < 3 {
		return nil, fmt.Errorf("core: cycle needs >= 3 vertices, got %d", n)
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{i, (i + 1) % n})
	}
	return NewCSRGraph(weights, edges)
}

// Clique returns the complete graph on the given weights (Section III-A).
func Clique(weights []int64) *CSRGraph {
	n := len(weights)
	edges := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	return MustCSRGraph(weights, edges)
}

// CompleteBipartite returns K_{|a|,|b|}: part A holds vertices 0..len(a)-1
// with weights a, part B holds the rest with weights b.
func CompleteBipartite(a, b []int64) *CSRGraph {
	weights := append(append([]int64{}, a...), b...)
	edges := make([]Edge, 0, len(a)*len(b))
	for i := range a {
		for j := range b {
			edges = append(edges, Edge{i, len(a) + j})
		}
	}
	return MustCSRGraph(weights, edges)
}

// InducedSubgraph returns the subgraph of g induced by keep (a vertex
// subset given as original ids) together with the mapping from new vertex
// ids to original ids. Vertices are renumbered 0..len(keep)-1 following
// the order of keep. Duplicate ids in keep are rejected.
func InducedSubgraph(g Graph, keep []int) (*CSRGraph, []int, error) {
	remap := make(map[int]int, len(keep))
	for newID, old := range keep {
		if _, dup := remap[old]; dup {
			return nil, nil, fmt.Errorf("core: duplicate vertex %d in subset", old)
		}
		if old < 0 || old >= g.Len() {
			return nil, nil, fmt.Errorf("core: vertex %d out of range", old)
		}
		remap[old] = newID
	}
	weights := make([]int64, len(keep))
	var edges []Edge
	var buf []int
	for newID, old := range keep {
		weights[newID] = g.Weight(old)
		buf = g.Neighbors(old, buf[:0])
		for _, u := range buf {
			if nu, ok := remap[u]; ok && nu > newID {
				edges = append(edges, Edge{newID, nu})
			}
		}
	}
	sub, err := NewCSRGraph(weights, edges)
	if err != nil {
		return nil, nil, err
	}
	orig := append([]int{}, keep...)
	return sub, orig, nil
}
