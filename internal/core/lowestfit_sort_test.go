package core

import (
	"math/rand"
	"testing"
)

// TestLowestFitSortCrossover pins LowestFit against the brute-force
// reference at occupancy sizes straddling the smallSortMax threshold, so
// the insertion-sort branch and the sort.Slice fallback are both checked
// on the same distribution.
func TestLowestFitSortCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, smallSortMax - 1, smallSortMax, smallSortMax + 1, 64, 100} {
		for trial := 0; trial < 50; trial++ {
			occ := make([]Interval, n)
			for i := range occ {
				occ[i] = NewInterval(rng.Int63n(60), rng.Int63n(5))
			}
			w := rng.Int63n(6)
			got := LowestFit(append([]Interval{}, occ...), w)
			want := bruteLowestFit(occ, w)
			if got != want {
				t.Fatalf("n=%d trial=%d w=%d: LowestFit=%d brute=%d (occ=%v)",
					n, trial, w, got, want, occ)
			}
		}
	}
}

// TestInsertionSortByStart: the inline sort agrees with the byStart order
// on adversarial patterns (sorted, reversed, duplicates, empty runs).
func TestInsertionSortByStart(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(smallSortMax + 1)
		occ := make([]Interval, n)
		for i := range occ {
			occ[i] = NewInterval(rng.Int63n(8), rng.Int63n(4))
		}
		insertionSortByStart(occ)
		for i := 1; i < n; i++ {
			if byStart(occ[i-1], occ[i]) > 0 {
				t.Fatalf("trial %d: not sorted at %d: %v", trial, i, occ)
			}
		}
	}
}

// TestLowestFitSmallNoAllocs: for stencil-sized occupancy lists, LowestFit
// must not touch the heap — this is the contract the tile-parallel
// solver's per-placement cost model relies on.
func TestLowestFitSmallNoAllocs(t *testing.T) {
	occ := make([]Interval, MaxFixedDegree)
	rng := rand.New(rand.NewSource(3))
	refill := func() {
		for i := range occ {
			occ[i] = NewInterval(rng.Int63n(40), rng.Int63n(5))
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		refill()
		LowestFit(occ, 3)
	})
	if allocs != 0 {
		t.Errorf("LowestFit(d=%d) allocates %.1f per run, want 0", MaxFixedDegree, allocs)
	}
}
