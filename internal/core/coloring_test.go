package core

import (
	"errors"
	"testing"
)

func TestNewColoringAllUnset(t *testing.T) {
	c := NewColoring(4)
	for v := 0; v < 4; v++ {
		if c.Colored(v) {
			t.Errorf("vertex %d colored at init", v)
		}
	}
}

func TestColoringClone(t *testing.T) {
	c := NewColoring(2)
	c.Start[0] = 5
	d := c.Clone()
	d.Start[0] = 9
	if c.Start[0] != 5 {
		t.Error("Clone aliases original storage")
	}
}

func TestColoringInterval(t *testing.T) {
	g := Chain([]int64{3, 0})
	c := NewColoring(2)
	c.Start[0] = 2
	if iv := c.Interval(g, 0); iv != (Interval{2, 5}) {
		t.Errorf("Interval(0) = %v", iv)
	}
	if iv := c.Interval(g, 1); !iv.Empty() {
		t.Errorf("uncolored interval = %v, want empty", iv)
	}
	c.Start[1] = 7
	if iv := c.Interval(g, 1); !iv.Empty() {
		t.Errorf("zero-weight interval = %v, want empty", iv)
	}
}

func TestMaxColor(t *testing.T) {
	g := Chain([]int64{3, 4, 2})
	c := NewColoring(3)
	c.Start[0], c.Start[1], c.Start[2] = 0, 3, 0
	if mc := c.MaxColor(g); mc != 7 {
		t.Errorf("MaxColor = %d, want 7", mc)
	}
	if mc := NewColoring(3).MaxColor(g); mc != 0 {
		t.Errorf("empty MaxColor = %d, want 0", mc)
	}
}

func TestValidateAcceptsValid(t *testing.T) {
	g := Chain([]int64{3, 4, 2})
	c := NewColoring(3)
	c.Start[0], c.Start[1], c.Start[2] = 0, 3, 0
	if err := c.Validate(g); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	g := Chain([]int64{3, 4, 2})

	c := NewColoring(3)
	c.Start[0], c.Start[1], c.Start[2] = 0, 2, 8 // 0 and 1 overlap
	if err := c.Validate(g); err == nil {
		t.Error("overlapping coloring accepted")
	}

	c = NewColoring(3)
	c.Start[0], c.Start[1] = 0, 3 // vertex 2 uncolored
	if err := c.Validate(g); err == nil {
		t.Error("partial coloring accepted by Validate")
	}

	c = NewColoring(3)
	c.Start[0], c.Start[1], c.Start[2] = -2, 3, 0
	// Start -2 is negative but also equals... ensure negative rejected.
	if err := c.Validate(g); err == nil {
		t.Error("negative start accepted")
	}

	if err := NewColoring(2).Validate(g); !errors.Is(err, ErrInvalidColoring) {
		t.Error("size mismatch accepted")
	}
}

func TestValidateZeroWeightNeverConflicts(t *testing.T) {
	g := Clique([]int64{0, 0, 5})
	c := NewColoring(3)
	c.Start[0], c.Start[1], c.Start[2] = 0, 0, 0
	if err := c.Validate(g); err != nil {
		t.Errorf("zero-weight conflict reported: %v", err)
	}
}

func TestValidatePartial(t *testing.T) {
	g := Chain([]int64{3, 4, 2})
	c := NewColoring(3)
	c.Start[0] = 0
	if err := c.ValidatePartial(g); err != nil {
		t.Errorf("partial valid coloring rejected: %v", err)
	}
	c.Start[1] = 1 // overlaps vertex 0
	if err := c.ValidatePartial(g); err == nil {
		t.Error("partial overlap accepted")
	}
	c.Start[1] = Unset
	c.Start[2] = -4
	if err := c.ValidatePartial(g); err == nil {
		t.Error("negative start accepted in partial validation")
	}
	if err := NewColoring(1).ValidatePartial(g); err == nil {
		t.Error("size mismatch accepted in partial validation")
	}
}
