package core

import (
	"errors"
	"fmt"
)

// FaultSite names one instrumented fault-injection point in the solve
// pipeline, e.g. "pgreedy/worker-stall". The packages that own
// instrumented code export their site names as constants; the
// internal/chaos package builds deterministic schedules over them.
type FaultSite string

// Injector is the fault-injection hook of a solve. Instrumented code
// calls Inject at each named site it passes; the injector decides —
// deterministically, from its seed and per-site schedule — whether the
// site's fault fires at this visit. An injector may also act directly
// inside Inject: sleeping models a stalled worker, and panicking (with
// an InjectedPanic value) models a crashing one. The boolean return is
// for faults the instrumented code must enact itself, such as skipping
// a halo read or dropping a repair update.
//
// A nil Injector in SolveOptions disables every site at zero cost: the
// hot paths guard with a single nil check and never allocate.
// Implementations must be safe for concurrent use — tile workers call
// Inject concurrently.
type Injector interface {
	// Inject reports whether the fault at site fires on this visit.
	Inject(site FaultSite) bool
}

// InjectorFunc adapts a function to the Injector interface, the same
// way http.HandlerFunc adapts handlers; handy for tests that want a
// one-off fault without building a chaos schedule.
type InjectorFunc func(FaultSite) bool

// Inject calls f.
func (f InjectorFunc) Inject(site FaultSite) bool { return f(site) }

// TracedInjector is the optional extension an Injector implements when
// it can attribute fired faults to the request that suffered them: the
// trace id (a flight-recorder id, 0 when the operation is untraced)
// rides along so fault.injected events and flight-recorder entries
// correlate with the originating job. internal/chaos implements it;
// call through InjectTraced so plain Injectors keep working.
type TracedInjector interface {
	Injector
	// InjectTraced is Inject with the visiting operation's trace id.
	InjectTraced(site FaultSite, trace uint64) bool
}

// InjectTraced consults inj at site on behalf of a traced operation: a
// TracedInjector receives the trace id, any other Injector falls back
// to plain Inject, and a nil injector never fires — so instrumented
// sites carry attribution without caring which kind they hold.
func InjectTraced(inj Injector, site FaultSite, trace uint64) bool {
	if inj == nil {
		return false
	}
	if ti, ok := inj.(TracedInjector); ok {
		return ti.InjectTraced(site, trace)
	}
	return inj.Inject(site)
}

// InjectedPanic is the value a fault injector panics with when a site
// is scheduled to crash. Recovery code (PanicToError) recognizes it and
// records the originating site in the resulting SolveError, so a chaos
// test can assert exactly which injected fault an error came from.
type InjectedPanic struct {
	// Site is the fault site that crashed.
	Site FaultSite
}

// String renders the panic value for logs and recovered-error messages.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("injected panic at %s", p.Site)
}

// SolveError is the typed failure of one algorithm run. It carries
// enough structure for a portfolio to degrade gracefully instead of
// aborting: which algorithm failed, whether it failed by panicking
// (recovered into this error rather than crashing the process), the
// fault site when the failure came from an injected fault, and the
// underlying cause.
type SolveError struct {
	// Algorithm is the registry name of the failing algorithm ("" when
	// the failure happened outside registry dispatch).
	Algorithm string
	// Site is the fault-injection site nearest the failure, when known.
	Site FaultSite
	// Panicked reports whether the failure was a recovered panic, as
	// opposed to an ordinary error return. Portfolio treats panicked
	// errors as degradable: the crashing algorithm is dropped and the
	// remaining results still compete.
	Panicked bool
	// Cause is the underlying error or recovered panic value.
	Cause error
}

// Error formats the failure with its algorithm and site context.
func (e *SolveError) Error() string {
	what := "failed"
	if e.Panicked {
		what = "panicked"
	}
	switch {
	case e.Algorithm != "" && e.Site != "":
		return fmt.Sprintf("solve %s %s at %s: %v", e.Algorithm, what, e.Site, e.Cause)
	case e.Algorithm != "":
		return fmt.Sprintf("solve %s %s: %v", e.Algorithm, what, e.Cause)
	case e.Site != "":
		return fmt.Sprintf("solve %s at %s: %v", what, e.Site, e.Cause)
	default:
		return fmt.Sprintf("solve %s: %v", what, e.Cause)
	}
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *SolveError) Unwrap() error { return e.Cause }

// PanicToError converts a recovered panic value into a *SolveError,
// preserving the fault site when the panic was injected (an
// InjectedPanic value) and wrapping error and non-error panic values
// alike. It is the single conversion every recovery point in the
// pipeline uses, so panics look the same whether they were recovered in
// registry dispatch, a portfolio worker, or a tile worker.
func PanicToError(alg string, rec any) *SolveError {
	se := &SolveError{Algorithm: alg, Panicked: true}
	switch v := rec.(type) {
	case InjectedPanic:
		se.Site = v.Site
		se.Cause = errors.New(v.String())
	case *SolveError:
		// A recovery point above another recovery point: keep the inner
		// error's structure, only filling in the algorithm name.
		if v.Algorithm == "" {
			v.Algorithm = alg
		}
		return v
	case error:
		se.Cause = v
	default:
		se.Cause = fmt.Errorf("%v", v)
	}
	return se
}

// ErrPartial is the sentinel wrapped by Portfolio/Best when a solve was
// cut short (deadline, cancellation) but at least one algorithm had
// already produced a valid coloring and SolveOptions.PartialOnCancel
// asked for best-so-far results instead of discarded work. The coloring
// returned alongside an ErrPartial error is complete and valid — only
// the portfolio is partial, so a better algorithm might have won given
// more time. Test with errors.Is(err, ErrPartial).
var ErrPartial = errors.New("partial result: solve cut short before the full portfolio completed")
