package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSolveOptionsNilSafety: every accessor tolerates a nil receiver and
// a zero value, so solvers never branch on options being present.
func TestSolveOptionsNilSafety(t *testing.T) {
	var o *SolveOptions
	if o.Context() != context.Background() {
		t.Error("nil options: Context() != Background")
	}
	if o.Err() != nil {
		t.Error("nil options: Err() != nil")
	}
	if o.Par() != 1 {
		t.Errorf("nil options: Par() = %d, want 1", o.Par())
	}
	if o.Sink() != nil {
		t.Error("nil options: Sink() != nil")
	}
	zero := &SolveOptions{}
	if zero.Par() != 1 || zero.Err() != nil || zero.Sink() != nil {
		t.Error("zero options must behave like nil options")
	}
	if o.TenantID() != "default" || zero.TenantID() != "default" {
		t.Error("nil/zero options: TenantID() != \"default\"")
	}
	if got, stop := o.WithDeadlineContext(); got != nil {
		stop()
		t.Error("nil options: WithDeadlineContext() != nil")
	}
}

// TestTenantAndDeadline: the service-layer plumbing — TenantID defaults,
// and WithDeadlineContext bounds the context by the absolute deadline
// while keeping an earlier Ctx expiry.
func TestTenantAndDeadline(t *testing.T) {
	o := &SolveOptions{Tenant: "team-a"}
	if o.TenantID() != "team-a" {
		t.Errorf("TenantID = %q, want team-a", o.TenantID())
	}

	// No deadline: same options back, no derived context.
	same, stop := o.WithDeadlineContext()
	stop()
	if same != o {
		t.Error("WithDeadlineContext without a deadline must return the receiver")
	}

	// Expired deadline: the derived context reports DeadlineExceeded.
	o = &SolveOptions{Deadline: time.Now().Add(-time.Second)}
	bounded, stop := o.WithDeadlineContext()
	defer stop()
	if !errors.Is(bounded.Err(), context.DeadlineExceeded) {
		t.Errorf("expired deadline: Err() = %v, want DeadlineExceeded", bounded.Err())
	}

	// An already-canceled Ctx wins over a far-future deadline.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o = &SolveOptions{Ctx: ctx, Deadline: time.Now().Add(time.Hour)}
	bounded, stop = o.WithDeadlineContext()
	defer stop()
	if !errors.Is(bounded.Err(), context.Canceled) {
		t.Errorf("canceled parent: Err() = %v, want Canceled", bounded.Err())
	}
	if bounded.Tenant != o.Tenant || bounded.Deadline != o.Deadline {
		t.Error("WithDeadlineContext must preserve the other fields")
	}
}

// TestStatsNilSafety: a nil *Stats absorbs every record call and reports
// zeros, so instrumentation is unconditional in solver code.
func TestStatsNilSafety(t *testing.T) {
	var s *Stats
	s.AddPlacements(3)
	s.AddProbes(5)
	s.AddPhase("x", time.Second)
	if s.Placements() != 0 || s.Probes() != 0 || s.Phases() != nil {
		t.Error("nil stats must report zero values")
	}
	if !strings.Contains(s.String(), "disabled") {
		t.Errorf("nil stats String() = %q", s.String())
	}
}

// TestStatsAccumulation covers counters and phase aggregation by name.
func TestStatsAccumulation(t *testing.T) {
	var s Stats
	s.AddPlacements(2)
	s.AddPlacements(3)
	s.AddProbes(7)
	s.AddPhase("solve:BD", 2*time.Millisecond)
	s.AddPhase("solve:BD", 3*time.Millisecond)
	s.AddPhase("solve:GLL", time.Millisecond)
	if s.Placements() != 5 {
		t.Errorf("placements = %d, want 5", s.Placements())
	}
	if s.Probes() != 7 {
		t.Errorf("probes = %d, want 7", s.Probes())
	}
	phases := s.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %v, want 2 entries", phases)
	}
	// Sorted by name: solve:BD before solve:GLL, aggregated by name.
	if phases[0].Name != "solve:BD" || phases[0].Count != 2 || phases[0].Elapsed != 5*time.Millisecond {
		t.Errorf("phases[0] = %+v", phases[0])
	}
	if phases[1].Name != "solve:GLL" || phases[1].Count != 1 {
		t.Errorf("phases[1] = %+v", phases[1])
	}
	if !strings.Contains(s.String(), "placements=5") {
		t.Errorf("String() = %q", s.String())
	}
}

// TestStatsConcurrent hammers one sink from several goroutines; run
// under -race this is the portfolio-sharing safety test at the core
// layer.
func TestStatsConcurrent(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.AddPlacements(1)
				s.AddProbes(2)
				s.AddPhase("p", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s.Placements() != workers*each {
		t.Errorf("placements = %d, want %d", s.Placements(), workers*each)
	}
	if got := s.Phases()[0].Count; got != workers*each {
		t.Errorf("phase count = %d, want %d", got, workers*each)
	}
}

// TestGreedyColorOptsCancellation: a canceled context aborts the greedy
// engine at its first poll, returning the context error and no coloring.
func TestGreedyColorOptsCancellation(t *testing.T) {
	g := Chain(make([]int64, 100))
	order := make([]int, g.Len())
	for i := range order {
		order[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := GreedyColorOpts(g, order, &SolveOptions{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(c.Start) != 0 {
		t.Error("canceled solve returned a coloring")
	}
}

// TestGreedyColorOptsStats: placements equal the vertex count and probes
// the colored-neighbor intervals examined.
func TestGreedyColorOptsStats(t *testing.T) {
	weights := []int64{1, 2, 3, 4, 5}
	g := Chain(weights)
	order := []int{0, 1, 2, 3, 4}
	var s Stats
	c, err := GreedyColorOpts(g, order, &SolveOptions{Stats: &s})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s.Placements() != int64(g.Len()) {
		t.Errorf("placements = %d, want %d", s.Placements(), g.Len())
	}
	// Chain in natural order: each vertex after the first sees exactly one
	// colored neighbor.
	if s.Probes() != int64(g.Len()-1) {
		t.Errorf("probes = %d, want %d", s.Probes(), g.Len()-1)
	}
}

// TestGreedyColorOptsMatchesGreedyColor: the opts path is the plain path
// when options are nil or inert.
func TestGreedyColorOptsMatchesGreedyColor(t *testing.T) {
	weights := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	g := Chain(weights)
	order := []int{7, 2, 5, 0, 3, 6, 1, 4}
	want, err := GreedyColor(g, order)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GreedyColorOpts(g, order, &SolveOptions{Stats: &Stats{}})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Start {
		if want.Start[v] != got.Start[v] {
			t.Fatalf("vertex %d: opts path start %d, plain path %d", v, got.Start[v], want.Start[v])
		}
	}
}
