package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLowestFitBasics(t *testing.T) {
	cases := []struct {
		occ  []Interval
		w    int64
		want int64
	}{
		{nil, 5, 0},
		{[]Interval{{0, 3}}, 2, 3},
		{[]Interval{{2, 5}}, 2, 0},
		{[]Interval{{2, 5}}, 3, 5},         // gap [0,2) too small
		{[]Interval{{0, 2}, {4, 6}}, 2, 2}, // exact gap
		{[]Interval{{0, 2}, {3, 6}}, 2, 6}, // gap of 1 skipped
		{[]Interval{{4, 6}, {0, 2}}, 2, 2}, // unsorted input
		{[]Interval{{0, 4}, {2, 6}}, 1, 6}, // overlapping occupation
		{[]Interval{{0, 3}, {3, 3}}, 1, 3}, // empty interval ignored
		{[]Interval{{5, 9}}, 0, 0},         // zero width fits anywhere
		{[]Interval{{0, 1}, {1, 2}, {2, 3}}, 1, 3},
	}
	for i, tc := range cases {
		occ := append([]Interval{}, tc.occ...)
		if got := LowestFit(occ, tc.w); got != tc.want {
			t.Errorf("case %d: LowestFit(%v, %d) = %d, want %d",
				i, tc.occ, tc.w, got, tc.want)
		}
	}
}

// bruteLowestFit scans start values one by one; reference implementation.
func bruteLowestFit(occ []Interval, w int64) int64 {
	if w <= 0 {
		return 0
	}
	for s := int64(0); ; s++ {
		cand := NewInterval(s, w)
		ok := true
		for _, iv := range occ {
			if cand.Overlaps(iv) {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
}

func TestLowestFitMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64, n uint8, w uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		occ := make([]Interval, int(n)%8)
		for i := range occ {
			s := rng.Int63n(20)
			occ[i] = NewInterval(s, rng.Int63n(6))
		}
		width := int64(w % 7)
		got := LowestFit(append([]Interval{}, occ...), width)
		want := bruteLowestFit(occ, width)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestGreedyColorValid(t *testing.T) {
	g := Clique([]int64{3, 1, 4, 1, 5})
	order := []int{0, 1, 2, 3, 4}
	c, err := GreedyColor(g, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	// A clique greedy coloring in any order is optimal: sum of weights.
	if mc := c.MaxColor(g); mc != 14 {
		t.Errorf("clique greedy MaxColor = %d, want 14", mc)
	}
}

func TestGreedyColorOrderMatters(t *testing.T) {
	// Chain 1-2-3 with weights 1,10,1: any order yields max 11 here, but
	// greedy must at least be valid and within the Lemma 7 bound.
	g := Chain([]int64{1, 10, 1})
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}} {
		c, err := GreedyColor(g, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(g); err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
	}
}

func TestGreedyColorRejectsBadOrder(t *testing.T) {
	g := Chain([]int64{1, 1})
	if _, err := GreedyColor(g, []int{0}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := GreedyColor(g, []int{0, 0}); err == nil {
		t.Error("repeated vertex accepted")
	}
	if _, err := GreedyColor(g, []int{0, 5}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

// Lemma 7: greedy colors v with an interval ending at most at
// sum_{j in N(v)} w(j) + (deg(v)+1)*w(v) - deg(v).
func TestGreedyLemma7Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = rng.Int63n(9) + 1
		}
		var edges []Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, Edge{i, j})
				}
			}
		}
		g := MustCSRGraph(weights, edges)
		order := rng.Perm(n)
		c, err := GreedyColor(g, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(g); err != nil {
			t.Fatal(err)
		}
		var buf []int
		for v := 0; v < n; v++ {
			buf = g.Neighbors(v, buf[:0])
			var nbrSum int64
			for _, u := range buf {
				nbrSum += g.Weight(u)
			}
			d := int64(len(buf))
			bound := nbrSum + (d+1)*g.Weight(v) - d
			if end := c.Start[v] + g.Weight(v); end > bound {
				t.Fatalf("Lemma 7 violated: vertex %d ends at %d > bound %d", v, end, bound)
			}
		}
	}
}

func TestPlaceLowestSkip(t *testing.T) {
	g := Chain([]int64{2, 2, 2})
	c := NewColoring(3)
	c.Start[0], c.Start[1], c.Start[2] = 0, 2, 0
	var s FitScratch
	// Recoloring vertex 1 while skipping vertex 0 sees only vertex 2's
	// interval [0,2) and therefore lands at 2.
	if got := s.PlaceLowest(g, c, 1, 0); got != 2 {
		t.Errorf("PlaceLowest skip=0 -> %d, want 2", got)
	}
	// Without skipping, both neighbors occupy [0,2) so the answer is 2 too;
	// skip vertex 2 instead and vertex 0 still blocks [0,2).
	if got := s.PlaceLowest(g, c, 1, 2); got != 2 {
		t.Errorf("PlaceLowest skip=2 -> %d, want 2", got)
	}
}

func TestCheckPermutation(t *testing.T) {
	if err := CheckPermutation([]int{2, 0, 1}, 3); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if err := CheckPermutation([]int{0, 1}, 3); err == nil {
		t.Error("short permutation accepted")
	}
	if err := CheckPermutation([]int{0, 1, 1}, 3); err == nil {
		t.Error("repeat accepted")
	}
	if err := CheckPermutation([]int{0, 1, -1}, 3); err == nil {
		t.Error("negative accepted")
	}
}
