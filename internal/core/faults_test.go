package core

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestFaultNilCost: nil options and nil injectors never fire and never
// allocate.
func TestFaultNilCost(t *testing.T) {
	var o *SolveOptions
	if o.Fault("any/site") {
		t.Error("nil options fired a fault")
	}
	if o.Faults() != nil {
		t.Error("nil options returned a non-nil injector")
	}
	o = &SolveOptions{}
	if o.Fault("any/site") || o.Faults() != nil {
		t.Error("empty options fired a fault or returned an injector")
	}
	if n := testing.AllocsPerRun(100, func() {
		if o.Fault("any/site") {
			t.Fatal("fired")
		}
	}); n != 0 {
		t.Errorf("Fault with nil injector allocates %v per run", n)
	}
}

// TestInjectorFunc: the adapter routes sites through the function and
// SolveOptions.Fault consults it.
func TestInjectorFunc(t *testing.T) {
	var seen []FaultSite
	o := &SolveOptions{Injector: InjectorFunc(func(s FaultSite) bool {
		seen = append(seen, s)
		return s == "fires"
	})}
	if o.Fault("quiet") {
		t.Error("quiet site fired")
	}
	if !o.Fault("fires") {
		t.Error("firing site did not fire")
	}
	if len(seen) != 2 || seen[0] != "quiet" || seen[1] != "fires" {
		t.Errorf("injector saw %v", seen)
	}
}

// TestPanicToError covers the conversion of every recovered panic
// shape: injected panics keep their site, errors are wrapped, arbitrary
// values are stringified, and nested SolveErrors pass through with the
// algorithm filled in.
func TestPanicToError(t *testing.T) {
	se := PanicToError("GLL", InjectedPanic{Site: "pgreedy/worker-panic"})
	if se.Algorithm != "GLL" || se.Site != "pgreedy/worker-panic" || !se.Panicked {
		t.Errorf("injected panic converted to %+v", se)
	}
	if !strings.Contains(se.Error(), "GLL") || !strings.Contains(se.Error(), "pgreedy/worker-panic") {
		t.Errorf("message %q lacks algorithm or site", se.Error())
	}

	cause := errors.New("boom")
	se = PanicToError("BDP", cause)
	if !errors.Is(se, cause) {
		t.Error("error cause not unwrappable")
	}
	if se.Site != "" || !se.Panicked {
		t.Errorf("error panic converted to %+v", se)
	}

	se = PanicToError("", 42)
	if se.Cause == nil || !strings.Contains(se.Error(), "42") {
		t.Errorf("value panic converted to %+v", se)
	}

	inner := &SolveError{Site: "x/y", Panicked: true, Cause: errors.New("inner")}
	se = PanicToError("PGLL", inner)
	if se != inner || se.Algorithm != "PGLL" {
		t.Errorf("nested SolveError not passed through: %+v", se)
	}
	var asSE *SolveError
	if !errors.As(error(se), &asSE) {
		t.Error("SolveError not recoverable via errors.As")
	}
}

// TestSolveErrorMessages pins the message shapes for each combination
// of known algorithm/site.
func TestSolveErrorMessages(t *testing.T) {
	cause := errors.New("c")
	for _, tc := range []struct {
		e    *SolveError
		want string
	}{
		{&SolveError{Algorithm: "A", Site: "s", Panicked: true, Cause: cause}, "solve A panicked at s: c"},
		{&SolveError{Algorithm: "A", Cause: cause}, "solve A failed: c"},
		{&SolveError{Site: "s", Cause: cause}, "solve failed at s: c"},
		{&SolveError{Cause: cause}, "solve failed: c"},
	} {
		if got := tc.e.Error(); got != tc.want {
			t.Errorf("Error() = %q, want %q", got, tc.want)
		}
	}
}

// TestCSROverflowGuards: construction rejects index-type and
// total-weight overflow instead of corrupting offsets, right up to the
// math.MaxInt64 edge.
func TestCSROverflowGuards(t *testing.T) {
	if _, err := NewCSRGraph([]int64{math.MaxInt64, 1}, nil); err == nil {
		t.Error("total-weight overflow not rejected")
	}
	if _, err := NewCSRGraph([]int64{math.MaxInt64 - 1, 1}, []Edge{{0, 1}}); err != nil {
		t.Errorf("total weight exactly MaxInt64 rejected: %v", err)
	}
	g := MustCSRGraph([]int64{math.MaxInt64 - 5, 1}, []Edge{{0, 1}})
	g.SetWeight(1, 5) // total == MaxInt64: allowed
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetWeight past MaxInt64 total did not panic")
			}
		}()
		g.SetWeight(1, 6)
	}()
	// The graph is untouched by the rejected update.
	if g.Weight(1) != 5 {
		t.Errorf("rejected SetWeight mutated the graph: w=%d", g.Weight(1))
	}
}

// TestErrPartialSentinel: ErrPartial composes with wrapping.
func TestErrPartialSentinel(t *testing.T) {
	wrapped := errors.Join(errors.New("context deadline exceeded"), ErrPartial)
	if !errors.Is(wrapped, ErrPartial) {
		t.Error("wrapped ErrPartial not detected by errors.Is")
	}
}

// TestPartialFlag: the PartialOnCancel accessor is nil-safe.
func TestPartialFlag(t *testing.T) {
	var o *SolveOptions
	if o.Partial() {
		t.Error("nil options report partial mode")
	}
	if !(&SolveOptions{PartialOnCancel: true}).Partial() {
		t.Error("set flag not reported")
	}
}
