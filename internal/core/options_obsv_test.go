package core

import (
	"testing"
	"time"

	"stencilivc/internal/obsv"
)

// TestEventLogAccessor: nil receivers and empty options return a nil
// sink whose methods are no-ops, and a configured sink round-trips.
func TestEventLogAccessor(t *testing.T) {
	var o *SolveOptions
	if o.EventLog() != nil {
		t.Error("nil options returned an event sink")
	}
	o = &SolveOptions{}
	if o.EventLog() != nil {
		t.Error("empty options returned an event sink")
	}
	if n := testing.AllocsPerRun(200, func() {
		o.EventLog().SolveStart("GLL", 2, 64)
		o.EventLog().RepairSweep(0, 1, false)
		o.EventLog().SolveFinish("GLL", 1, time.Millisecond, nil)
	}); n != 0 {
		t.Errorf("nil event-log path allocates %.1f per run, want 0", n)
	}
}

// TestRuntimeSamplerAccessor: nil-safe accessor plus round-trip, and
// the WithPhase copy shares the sampler and events with the original.
func TestRuntimeSamplerAccessor(t *testing.T) {
	var o *SolveOptions
	if o.RuntimeSampler() != nil {
		t.Error("nil options returned a sampler")
	}
	s := obsv.NewSampler(nil, time.Millisecond)
	o = &SolveOptions{Sampler: s}
	if o.RuntimeSampler() != s {
		t.Error("sampler did not round-trip")
	}
	c := o.WithPhase(nil)
	if c.RuntimeSampler() != s {
		t.Error("WithPhase copy lost the sampler")
	}
}
