package core

import "math/bits"

// This file holds the v2 placement kernels (PR 7): the packed free-map
// fast path for uniform-weight instances and the sort-free streaming
// min-gap scan for general weights. Both produce bit-identical results
// to the sort+scan kernel of LowestFit — the v1 kernel stays as the
// general-weights reference and cross-check path.
//
// The uniform-weight degeneracy (cf. the classic-coloring equivalence
// for common weight w): every start a greedy placement can produce is a
// multiple of w, because LowestFit only ever returns 0 or some
// neighbor's interval end, and inductively all ends are multiples of w.
// Interval placement therefore degenerates to slot coloring — occupancy
// is a <=26-bit mask over slots start/w, and first-fit is one
// bits.TrailingZeros64 over the complement of the mask.

// UniformWeighter is implemented by graphs that can report whether all
// their vertex weights share one common positive value — the verdict
// that routes placements onto the packed free-map fast path. The answer
// is authoritative: implementers return (0, false) to opt out even when
// their weights happen to be uniform (tests use this to force the
// general interval kernel), and must keep the verdict coherent with
// Weight under mutation. Implementations must be safe for concurrent
// readers, like every other Graph method.
type UniformWeighter interface {
	// UniformWeight returns (w, true) when every vertex weighs w > 0,
	// and (0, false) otherwise (mixed weights, any zero weight, or an
	// empty graph).
	UniformWeight() (int64, bool)
}

// UniformWeight reports whether every vertex of g has the same positive
// weight. Graphs implementing UniformWeighter (CSR, whose private
// weight slice makes a cached verdict sound) answer in O(1); the
// fallback scans all weights once. The grids deliberately do NOT cache:
// their weight slices are exported and written directly all over the
// codebase, so a construction-time verdict could silently survive a
// mutation to mixed weights and corrupt placements. Callers that place
// many vertices should compute this once per solve, not per placement —
// FitScratch memoizes it per graph.
func UniformWeight(g Graph) (int64, bool) {
	if uw, ok := g.(UniformWeighter); ok {
		return uw.UniformWeight()
	}
	return ScanUniformWeight(g)
}

// ScanUniformWeight is the O(n) reference detection: it reads every
// weight and reports the common positive value, if any. It is the
// implementation behind the cached UniformWeighter verdicts.
func ScanUniformWeight(g Graph) (int64, bool) {
	n := g.Len()
	if n == 0 {
		return 0, false
	}
	w := g.Weight(0)
	if w <= 0 {
		return 0, false
	}
	for v := 1; v < n; v++ {
		if g.Weight(v) != w {
			return 0, false
		}
	}
	return w, true
}

// The packed free-map covers freeMapWords*64 slots. One word is enough
// for the stencils (first-fit over d <= 26 occupied slots always lands
// in slot <= 26), but general graphs route through the same kernel, so
// the map spills across multiple words for colors beyond 64*w.
const (
	freeMapWords = 4
	freeMapSlots = freeMapWords * 64
)

// freeMap is the packed slot-occupancy bitmap of the uniform-weight
// fast path: bit s of word s/64 marks slot [s*w, (s+1)*w) occupied.
type freeMap [freeMapWords]uint64

// set marks slot s occupied. Slots beyond the map are ignored, which is
// sound whenever fewer than freeMapSlots slots are occupied in total:
// the first free slot then lies inside the map regardless.
func (f *freeMap) set(s int64) {
	if s < freeMapSlots {
		f[s>>6] |= 1 << uint(s&63)
	}
}

// firstFree returns the lowest unoccupied slot via a word-level scan:
// one complement + TrailingZeros64 per word, at most freeMapWords
// iterations (the first word decides for every stencil placement).
func (f *freeMap) firstFree() int64 {
	for i := 0; i < freeMapWords; i++ {
		if free := ^f[i]; free != 0 {
			return int64(i)<<6 + int64(bits.TrailingZeros64(free))
		}
	}
	return freeMapSlots
}

// LowestFitUniform computes LowestFit(occ, w) for a uniform-weight
// occupancy list: every interval in occ must have width w and a start
// that is a multiple of w. It reports false — and the caller must fall
// back to the interval kernel — when an interval breaks the
// multiple-of-w invariant or the occupancy overflows the free map
// (len(occ) >= freeMapSlots). occ is not mutated.
func LowestFitUniform(occ []Interval, w int64) (int64, bool) {
	if w <= 0 {
		return 0, true
	}
	if len(occ) >= freeMapSlots {
		return 0, false
	}
	var f freeMap
	for _, iv := range occ {
		if iv.Empty() {
			continue
		}
		slot, ok := slotOf(iv.Start, w)
		if !ok {
			return 0, false
		}
		f.set(slot)
	}
	return f.firstFree() * w, true
}

// slotOf converts a uniform-weight start to its slot index, reporting
// false when the start is not a multiple of w (a coloring the bitset
// kernel cannot represent, produced only by hand-built colorings —
// greedy placements keep the invariant inductively).
func slotOf(start, w int64) (int64, bool) {
	if w == 1 {
		return start, true
	}
	slot := start / w
	if slot*w != start {
		return 0, false
	}
	return slot, true
}

// LowestFitStream computes LowestFit without sorting: it sweeps the
// occupancy list, bumping the candidate start past every interval that
// overlaps [cur, cur+w), and repeats until one full pass finds no
// overlap — proof that cur is feasible. Minimality is invariant: cur
// only ever jumps from a candidate to the end of an interval that
// blocked it, so every start below the final cur was excluded by some
// interval.
//
// Unlike LowestFit it never mutates occ and moves no data, trading the
// insertion sort's O(d^2/4) writes for a few branch-lean read-only
// passes; on the <=26-entry lists stencils produce it is measurably
// faster (see BenchmarkPlaceLowest and DESIGN.md section 14). Worst
// case (occupancy sorted by strictly descending start) is O(d^2)
// compares, so callers with large general-graph lists should prefer the
// sorting kernel; FitScratch dispatches on length.
func LowestFitStream(occ []Interval, w int64) int64 {
	if w <= 0 {
		return 0
	}
	var cur int64
	for {
		advanced := false
		for _, iv := range occ {
			if iv.End > cur && iv.Start < cur+w && iv.Start < iv.End {
				cur = iv.End
				advanced = true
			}
		}
		if !advanced {
			return cur
		}
	}
}
