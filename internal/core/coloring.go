package core

import (
	"errors"
	"fmt"
)

// Unset marks a vertex that has not been colored yet. Valid starts are
// always >= 0, so any negative value is safe; -1 is used throughout.
const Unset int64 = -1

// Coloring assigns each vertex the start of its color interval; vertex v
// occupies [Start[v], Start[v]+w(v)). A partial coloring stores Unset for
// uncolored vertices.
type Coloring struct {
	Start []int64
}

// NewColoring returns an all-Unset coloring for n vertices.
func NewColoring(n int) Coloring {
	start := make([]int64, n)
	for i := range start {
		start[i] = Unset
	}
	return Coloring{Start: start}
}

// Clone returns a deep copy of the coloring.
func (c Coloring) Clone() Coloring {
	return Coloring{Start: append([]int64{}, c.Start...)}
}

// Colored reports whether vertex v has been assigned an interval.
func (c Coloring) Colored(v int) bool { return c.Start[v] != Unset }

// Interval returns the color interval of v under graph g. The interval of
// an uncolored vertex is empty.
func (c Coloring) Interval(g Graph, v int) Interval {
	if !c.Colored(v) {
		return Interval{}
	}
	return NewInterval(c.Start[v], g.Weight(v))
}

// MaxColor returns maxcolor = max_v start(v)+w(v) over colored vertices.
// An empty or fully-uncolored coloring has maxcolor 0.
func (c Coloring) MaxColor(g Graph) int64 {
	var mc int64
	for v := range c.Start {
		if c.Colored(v) {
			mc = max(mc, c.Start[v]+g.Weight(v))
		}
	}
	return mc
}

// ErrInvalidColoring is wrapped by every validation failure, so callers
// can test with errors.Is while still receiving a precise message.
var ErrInvalidColoring = errors.New("invalid coloring")

// Validate checks that the coloring is a complete, valid interval coloring
// of g: every vertex colored, every start non-negative, and every pair of
// neighbors on disjoint intervals. It returns nil on success and an error
// wrapping ErrInvalidColoring naming the first violation otherwise.
func (c Coloring) Validate(g Graph) error {
	if len(c.Start) != g.Len() {
		return fmt.Errorf("%w: coloring has %d vertices, graph has %d",
			ErrInvalidColoring, len(c.Start), g.Len())
	}
	for v := 0; v < g.Len(); v++ {
		if !c.Colored(v) {
			return fmt.Errorf("%w: vertex %d is uncolored", ErrInvalidColoring, v)
		}
		if c.Start[v] < 0 {
			return fmt.Errorf("%w: vertex %d has negative start %d",
				ErrInvalidColoring, v, c.Start[v])
		}
	}
	var buf []int
	for v := 0; v < g.Len(); v++ {
		iv := c.Interval(g, v)
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u <= v {
				continue // each edge checked once
			}
			if iv.Overlaps(c.Interval(g, u)) {
				return fmt.Errorf("%w: neighbors %d%v and %d%v overlap",
					ErrInvalidColoring, v, iv, u, c.Interval(g, u))
			}
		}
	}
	return nil
}

// ValidatePartial checks the colored subset of c: starts non-negative and
// no two colored neighbors overlapping. Uncolored vertices are ignored.
func (c Coloring) ValidatePartial(g Graph) error {
	if len(c.Start) != g.Len() {
		return fmt.Errorf("%w: coloring has %d vertices, graph has %d",
			ErrInvalidColoring, len(c.Start), g.Len())
	}
	var buf []int
	for v := 0; v < g.Len(); v++ {
		if !c.Colored(v) {
			continue
		}
		if c.Start[v] < 0 {
			return fmt.Errorf("%w: vertex %d has negative start %d",
				ErrInvalidColoring, v, c.Start[v])
		}
		iv := c.Interval(g, v)
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u <= v || !c.Colored(u) {
				continue
			}
			if iv.Overlaps(c.Interval(g, u)) {
				return fmt.Errorf("%w: neighbors %d%v and %d%v overlap",
					ErrInvalidColoring, v, iv, u, c.Interval(g, u))
			}
		}
	}
	return nil
}
