package core

import (
	"fmt"
	"sort"
	"sync"
)

// The fault-site registry. Site names used to live only as scattered
// string constants in the packages that consult them; a storm config
// that typoed a name silently configured a site nobody visits. Every
// package that owns instrumented code now registers its sites (with a
// one-line description) in an init function, so tooling can enumerate
// the full failure surface, chaos.MustSite can reject unknown names,
// and a reachability test can assert every registered site is actually
// consulted by the subsystem that claims it. See DESIGN.md §11 for the
// failure model and internal/chaos/doc.go for the rendered table.

// RegisteredSite is one entry of the fault-site registry: the site name
// and a one-line description of where it fires and what the fault does.
type RegisteredSite struct {
	// Site is the registered site name, e.g. "pgreedy/worker-stall".
	Site FaultSite
	// Doc describes where the site is consulted and what firing does.
	Doc string
}

var siteReg = struct {
	sync.Mutex
	m map[FaultSite]string
}{m: map[FaultSite]string{}}

// RegisterFaultSite records a fault site in the global registry; the
// packages that own instrumented code call it from init. Registering
// the same name twice panics — duplicate names would make schedules
// ambiguous.
func RegisterFaultSite(site FaultSite, doc string) {
	siteReg.Lock()
	defer siteReg.Unlock()
	if _, dup := siteReg.m[site]; dup {
		panic(fmt.Sprintf("core: fault site %q registered twice", site))
	}
	siteReg.m[site] = doc
}

// KnownFaultSite reports whether site has been registered (by a package
// linked into this binary — the registry only sees imported packages).
func KnownFaultSite(site FaultSite) bool {
	siteReg.Lock()
	defer siteReg.Unlock()
	_, ok := siteReg.m[site]
	return ok
}

// FaultSites returns every registered site with its description, sorted
// by name.
func FaultSites() []RegisteredSite {
	siteReg.Lock()
	defer siteReg.Unlock()
	out := make([]RegisteredSite, 0, len(siteReg.m))
	for s, d := range siteReg.m {
		out = append(out, RegisteredSite{Site: s, Doc: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}
