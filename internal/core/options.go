package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stencilivc/internal/obsv"
)

// SolveOptions carries the cross-cutting concerns of a solve: a
// context.Context for cancellation, a parallelism knob for portfolio
// runs, and an optional Stats sink. The zero value — and a nil pointer —
// mean "background context, sequential, no stats", so every solver
// accepts a nil *SolveOptions and never has to guard itself.
//
// Options are read-only during a solve and may be shared by concurrent
// solver goroutines; Stats is internally synchronized.
type SolveOptions struct {
	// Ctx cancels a solve in flight. Long passes (the greedy engine, the
	// BD/BDP row and recoloring loops) poll it at line/block granularity,
	// so cancellation is honored promptly even on huge grids. A nil Ctx
	// means context.Background().
	Ctx context.Context
	// Parallelism bounds the number of worker goroutines a solve may use:
	// concurrent algorithm runs in a portfolio solve, and tile workers
	// inside the tile-parallel speculative solvers (PGLL/PGLF). Values
	// < 2 (including the zero value) run sequentially. The paper's seven
	// sequential algorithms are single-threaded regardless, so for them
	// parallelism never changes the result, only the portfolio wall time;
	// the speculative solvers always return a valid coloring but their
	// maxcolor may vary slightly with worker timing.
	Parallelism int
	// Stats, when non-nil, accumulates placement counts, probe counts,
	// and per-phase wall times across the solve.
	Stats *Stats
	// Trace, when non-nil, records hierarchical per-phase spans (solve,
	// traversal/placement phases, tile speculation, repair rounds) with
	// wall and CPU time; export with Trace.WriteChrome. A nil Trace
	// disables tracing at zero cost.
	Trace *obsv.Trace
	// Metrics, when non-nil, receives the solver counter taxonomy
	// (vertices colored, probes, conflicts, repair rounds, occupancy-list
	// lengths, maxcolor) with lock-free increments. A nil Metrics
	// disables the counters at zero cost.
	Metrics *obsv.SolveMetrics
	// Events, when non-nil, receives the structured solve-event stream
	// (solver start/finish, speculation, repair sweeps, fallbacks, fault
	// injections, partial results) as slog records. A nil Events disables
	// the stream at zero cost — every sink method is nil-receiver-safe
	// and takes fixed scalar arguments, so a disabled call site is one
	// pointer compare.
	Events *obsv.EventSink
	// Sampler, when non-nil, is started (reference-counted) for the
	// duration of every registry-dispatched solve, bridging the Go
	// runtime's own GC-pause and scheduler-latency histograms into the
	// metrics registry while the solve runs. Overlapping solves (a
	// portfolio's members) share one sampling goroutine. A nil Sampler —
	// the default — costs one pointer compare per solve.
	Sampler *obsv.Sampler
	// Phase is the span under which nested phases should record; the
	// registry dispatcher sets it (via WithPhase) to the solve span so
	// solver-internal phases nest correctly. Solver code should not set
	// it directly.
	Phase *obsv.Span
	// Injector, when non-nil, is the fault-injection hook: instrumented
	// sites in the solve pipeline consult it and enact the faults it
	// schedules (stalls, panics, halo misreads, dropped repair updates).
	// A nil Injector — the production configuration — disables every
	// site at zero cost. See internal/chaos for the deterministic,
	// seeded implementation.
	Injector Injector
	// Cache, when non-nil, is the content-addressed result cache
	// heuristics.Run consults before dispatching an algorithm: a hit
	// returns the memoized coloring without running the solver (no solve
	// span, no solve counters — the cache records its own hit/miss
	// families), and every completed solve is stored back under its
	// instance fingerprint. A nil Cache — the default — costs one pointer
	// compare per solve and allocates nothing. Set it only to a non-nil
	// implementation: a typed-nil pointer wrapped in the interface would
	// defeat the nil check. See internal/resultcache.
	Cache SolveCache
	// Tenant names the principal this solve is running on behalf of. The
	// solvers never read it; the service layer's multi-tenant scheduler
	// sets it so fairness accounting, shed decisions, and service.* events
	// attribute work to the right tenant, and it rides along in the
	// options so any layer below the scheduler can tag diagnostics.
	// Empty means the anonymous default tenant.
	Tenant string
	// Deadline, when nonzero, is the absolute wall-clock bound of this
	// solve. The registry dispatcher layers it onto Ctx (via
	// WithDeadlineContext) before running the algorithm, so a caller —
	// the service scheduler handing per-request deadlines down, or a CLI
	// — can bound a solve without building the derived context itself.
	// It composes with Ctx: whichever expires first cancels the solve.
	Deadline time.Time
	// TraceCtx, when non-nil, is the request's flight-recorder trace
	// context: the trace id minted at service admission plus the span to
	// parent new spans under. The registry dispatcher, the tile-parallel
	// solvers, and the distributed solver record spans and events against
	// it so one request's path through every layer shares a trace id in
	// the flight recorder. A nil TraceCtx — the default — costs one
	// pointer compare per instrumented site.
	TraceCtx *obsv.TraceContext
	// PartialOnCancel makes Portfolio/Best return the best coloring of
	// the algorithms that completed before cancellation, tagged with the
	// ErrPartial sentinel, instead of discarding completed work when the
	// context expires. The returned coloring is still complete and
	// valid; only the portfolio is truncated. With no completed result,
	// cancellation errors propagate as before.
	PartialOnCancel bool
}

// Context returns the effective context: o.Ctx, or context.Background()
// when o or o.Ctx is nil.
func (o *SolveOptions) Context() context.Context {
	if o == nil || o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Err reports the context's cancellation state; nil receivers and nil
// contexts are never canceled. Solvers call this from their inner loops.
func (o *SolveOptions) Err() error {
	if o == nil || o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// Par returns the effective portfolio parallelism (always >= 1).
func (o *SolveOptions) Par() int {
	if o == nil || o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// Sink returns the stats sink, or nil when no receiver or no sink is
// configured. All Stats methods accept a nil receiver, so callers can
// record unconditionally: opts.Sink().AddPhase(...).
func (o *SolveOptions) Sink() *Stats {
	if o == nil {
		return nil
	}
	return o.Stats
}

// Tracer returns the trace, or nil when no receiver or no trace is
// configured; all *obsv.Trace methods are nil-receiver-safe.
func (o *SolveOptions) Tracer() *obsv.Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Meters returns the solve metrics bundle, or nil when no receiver or
// no bundle is configured; all bundle metrics are nil-receiver-safe.
func (o *SolveOptions) Meters() *obsv.SolveMetrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// EventLog returns the solve-event sink, or nil when no receiver or no
// sink is configured; all *obsv.EventSink methods are nil-receiver-safe.
func (o *SolveOptions) EventLog() *obsv.EventSink {
	if o == nil {
		return nil
	}
	return o.Events
}

// RuntimeSampler returns the runtime sampler, or nil when no receiver
// or no sampler is configured; all *obsv.Sampler methods are
// nil-receiver-safe.
func (o *SolveOptions) RuntimeSampler() *obsv.Sampler {
	if o == nil {
		return nil
	}
	return o.Sampler
}

// Faults returns the fault injector, or nil when no receiver or no
// injector is configured. Hot loops should cache the result once per
// solve rather than calling through the options on every iteration.
func (o *SolveOptions) Faults() Injector {
	if o == nil {
		return nil
	}
	return o.Injector
}

// Fault reports whether the named injection site fires at this visit;
// with no injector configured it is a single nil check. Instrumented
// code outside hot loops can call it directly:
//
//	if opts.Fault("bdp/post-drop") { ... }
func (o *SolveOptions) Fault(site FaultSite) bool {
	if o == nil || o.Injector == nil {
		return false
	}
	return o.Injector.Inject(site)
}

// FlightCtx returns the flight-recorder trace context, or nil when no
// receiver or no context is configured; all *obsv.TraceContext methods
// are nil-receiver-safe.
func (o *SolveOptions) FlightCtx() *obsv.TraceContext {
	if o == nil {
		return nil
	}
	return o.TraceCtx
}

// ResultCache returns the solve-result cache, or nil when no receiver
// or no cache is configured — a single pointer compare, so the uncached
// path costs nothing.
func (o *SolveOptions) ResultCache() SolveCache {
	if o == nil {
		return nil
	}
	return o.Cache
}

// Partial reports whether the caller asked for best-so-far results on
// cancellation (PartialOnCancel); nil receivers report false.
func (o *SolveOptions) Partial() bool {
	return o != nil && o.PartialOnCancel
}

// TenantID returns the effective tenant: o.Tenant, or "default" when no
// receiver or no tenant is set, so accounting maps never key on "".
func (o *SolveOptions) TenantID() string {
	if o == nil || o.Tenant == "" {
		return "default"
	}
	return o.Tenant
}

// noopCancel is the shared do-nothing CancelFunc WithDeadlineContext
// returns when no deadline is configured, so the no-deadline path
// allocates nothing.
func noopCancel() {}

// WithDeadlineContext returns options whose context is additionally
// bounded by o.Deadline, plus the cancel releasing the derived context's
// timer. With no deadline set (or a nil receiver) it returns o unchanged
// and a no-op cancel, so callers always release unconditionally:
//
//	opts, stop := opts.WithDeadlineContext()
//	defer stop()
//
// The deadline composes with an already-bounded Ctx: context.WithDeadline
// keeps the earlier of the two expiries.
func (o *SolveOptions) WithDeadlineContext() (*SolveOptions, context.CancelFunc) {
	if o == nil || o.Deadline.IsZero() {
		return o, noopCancel
	}
	ctx, cancel := context.WithDeadline(o.Context(), o.Deadline)
	c := *o
	c.Ctx = ctx
	return &c, cancel
}

// WithPhase returns a shallow copy of o whose nested phases record under
// sp. The copy shares every sink (Ctx, Stats, Trace, Metrics, Events,
// Sampler, Injector, Cache, TraceCtx) with o, so the
// dispatcher can scope a solve's span without disturbing concurrent
// users of the original options. A nil o with a nil sp stays nil.
func (o *SolveOptions) WithPhase(sp *obsv.Span) *SolveOptions {
	if o == nil {
		if sp == nil {
			return nil
		}
		return &SolveOptions{Phase: sp}
	}
	c := *o
	c.Phase = sp
	return &c
}

// StartSpan opens name as a child of the current phase span (set by the
// dispatcher), or as a root span on the tracer when no phase is open.
// It returns nil — a valid no-op span — when tracing is disabled.
func (o *SolveOptions) StartSpan(name string) *obsv.Span {
	if o == nil {
		return nil
	}
	if o.Phase != nil {
		return o.Phase.Child(name)
	}
	return o.Trace.Start(name)
}

// StartPhase opens a named solver phase against every configured sink —
// a span on the tracer, a span in the flight recorder when a trace
// context rides in the options, and, on stop, an AddPhase record in the
// stats sink — and returns the stop function, meant for defer:
//
//	defer core.StartPhase(opts, "pgreedy/speculate")()
//
// With no sinks configured the returned function is a shared no-op and
// nothing is allocated.
func StartPhase(o *SolveOptions, name string) func() {
	sp := o.StartSpan(name)
	st := o.Sink()
	tc := o.FlightCtx()
	if sp == nil && st == nil && tc == nil {
		return noopStop
	}
	fs := tc.Start(name)
	t0 := time.Now()
	return func() {
		sp.End()
		fs.End()
		st.AddPhase(name, time.Since(t0))
	}
}

// noopStop is the shared stop function of unobserved phases.
var noopStop = func() {}

// CtxCheckInterval is the granularity at which per-vertex solver loops
// poll for cancellation: every this-many placements (roughly one grid
// line). Block- and row-structured loops poll once per block or row
// instead.
const CtxCheckInterval = 1024

// Stats accumulates counters describing the work a solve performed. All
// methods are safe for concurrent use (portfolio runs share one sink
// across goroutines) and accept a nil receiver as a no-op, so solver
// code never branches on whether stats are enabled.
type Stats struct {
	placements atomic.Int64
	probes     atomic.Int64

	mu     sync.Mutex
	phases map[string]*phaseAcc
}

type phaseAcc struct {
	count   int64
	elapsed time.Duration
}

// PhaseTime is the aggregated wall time of one named solver phase.
type PhaseTime struct {
	// Name identifies the phase, e.g. "solve:BDP" or "BDP/post".
	Name string
	// Count is the number of times the phase ran.
	Count int64
	// Elapsed is the total wall time across all runs.
	Elapsed time.Duration
}

// AddPlacements records n vertex placements.
func (s *Stats) AddPlacements(n int64) {
	if s == nil {
		return
	}
	s.placements.Add(n)
}

// AddProbes records n neighbor-interval probes (intervals examined by
// the lowest-fit engine).
func (s *Stats) AddProbes(n int64) {
	if s == nil {
		return
	}
	s.probes.Add(n)
}

// PhaseTimer starts timing a named phase and returns the stop function
// that records the elapsed wall time; meant for defer:
//
//	defer core.PhaseTimer(opts.Sink(), "pgreedy/speculate")()
//
// A nil Stats yields a no-op stop function.
func PhaseTimer(s *Stats, name string) func() {
	if s == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { s.AddPhase(name, time.Since(t0)) }
}

// AddPhase accumulates d into the named phase's wall time.
func (s *Stats) AddPhase(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phases == nil {
		s.phases = map[string]*phaseAcc{}
	}
	acc := s.phases[name]
	if acc == nil {
		acc = &phaseAcc{}
		s.phases[name] = acc
	}
	acc.count++
	acc.elapsed += d
}

// Placements returns the number of vertex placements recorded.
func (s *Stats) Placements() int64 {
	if s == nil {
		return 0
	}
	return s.placements.Load()
}

// Probes returns the number of neighbor-interval probes recorded.
func (s *Stats) Probes() int64 {
	if s == nil {
		return 0
	}
	return s.probes.Load()
}

// Phases returns the per-phase wall times sorted by name.
func (s *Stats) Phases() []PhaseTime {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PhaseTime, 0, len(s.phases))
	for name, acc := range s.phases {
		out = append(out, PhaseTime{Name: name, Count: acc.count, Elapsed: acc.elapsed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the stats as a compact single-report block.
func (s *Stats) String() string {
	if s == nil {
		return "stats: (disabled)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stats: placements=%d probes=%d", s.Placements(), s.Probes())
	for _, p := range s.Phases() {
		fmt.Fprintf(&b, "\n  phase %-16s runs=%-4d total=%.3fms",
			p.Name, p.Count, float64(p.Elapsed.Microseconds())/1000)
	}
	return b.String()
}
