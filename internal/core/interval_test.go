package core

import (
	"testing"
	"testing/quick"
)

func TestIntervalLen(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int64
	}{
		{Interval{0, 5}, 5},
		{Interval{3, 3}, 0},
		{Interval{5, 2}, 0},
		{Interval{-2, 2}, 4},
	}
	for _, tc := range cases {
		if got := tc.iv.Len(); got != tc.want {
			t.Errorf("Len(%v) = %d, want %d", tc.iv, got, tc.want)
		}
	}
}

func TestIntervalEmpty(t *testing.T) {
	if !(Interval{4, 4}).Empty() {
		t.Error("[4,4) should be empty")
	}
	if !(Interval{7, 3}).Empty() {
		t.Error("[7,3) should be empty")
	}
	if (Interval{0, 1}).Empty() {
		t.Error("[0,1) should not be empty")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 5}, Interval{5, 10}, false}, // touching, half-open
		{Interval{0, 5}, Interval{4, 10}, true},
		{Interval{0, 5}, Interval{0, 5}, true},
		{Interval{2, 3}, Interval{0, 10}, true},  // containment
		{Interval{0, 0}, Interval{0, 10}, false}, // empty never overlaps
		{Interval{0, 10}, Interval{5, 5}, false},
		{Interval{0, 3}, Interval{7, 9}, false},
	}
	for _, tc := range cases {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("Overlaps not symmetric on %v,%v", tc.a, tc.b)
		}
	}
}

func TestIntervalOverlapsSymmetricQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := Interval{int64(a1), int64(a2)}
		b := Interval{int64(b1), int64(b2)}
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalOverlapsMatchesPointwiseQuick(t *testing.T) {
	// Overlap iff a shared integer color exists; brute-force over a small
	// universe to cross-check the arithmetic definition.
	f := func(a1 uint8, aw uint8, b1 uint8, bw uint8) bool {
		a := NewInterval(int64(a1%40), int64(aw%8))
		b := NewInterval(int64(b1%40), int64(bw%8))
		shared := false
		for c := int64(0); c < 64; c++ {
			if a.Contains(c) && b.Contains(c) {
				shared = true
			}
		}
		return a.Overlaps(b) == shared
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{3, 6}
	for c, want := range map[int64]bool{2: false, 3: true, 5: true, 6: false} {
		if iv.Contains(c) != want {
			t.Errorf("Contains(%d) = %v, want %v", c, !want, want)
		}
	}
}

func TestIntervalString(t *testing.T) {
	if s := (Interval{2, 7}).String(); s != "[2,7)" {
		t.Errorf("String = %q", s)
	}
}

func TestNewInterval(t *testing.T) {
	iv := NewInterval(4, 3)
	if iv.Start != 4 || iv.End != 7 {
		t.Errorf("NewInterval(4,3) = %v", iv)
	}
	if !NewInterval(9, 0).Empty() {
		t.Error("zero-width interval should be empty")
	}
}
