package core

import "testing"

// FuzzLowestFit cross-checks the gap-scan placement against the
// color-by-color reference on fuzzer-chosen occupations.
func FuzzLowestFit(f *testing.F) {
	f.Add(int64(0), int64(3), int64(5), int64(2), int64(4), int64(2), uint8(2))
	f.Add(int64(1), int64(1), int64(1), int64(1), int64(1), int64(1), uint8(0))
	f.Fuzz(func(t *testing.T, s1, w1, s2, w2, s3, w3 int64, wRaw uint8) {
		norm := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			return v % 40
		}
		occ := []Interval{
			NewInterval(norm(s1), norm(w1)%8),
			NewInterval(norm(s2), norm(w2)%8),
			NewInterval(norm(s3), norm(w3)%8),
		}
		w := int64(wRaw % 9)
		got := LowestFit(append([]Interval{}, occ...), w)
		want := bruteLowestFit(occ, w)
		if got != want {
			t.Fatalf("LowestFit(%v, %d) = %d, reference %d", occ, w, got, want)
		}
		// The result must actually be feasible and minimal.
		cand := NewInterval(got, w)
		for _, iv := range occ {
			if cand.Overlaps(iv) {
				t.Fatalf("returned placement overlaps %v", iv)
			}
		}
	})
}
