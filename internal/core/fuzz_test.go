package core

import "testing"

// FuzzLowestFit cross-checks every placement kernel — the v1 sort+scan
// (LowestFit), the v2 sort-free streaming scan (LowestFitStream), and,
// on uniform-shaped occupancies, the v2 packed free-map kernel
// (LowestFitUniform) — against the color-by-color reference on
// fuzzer-chosen occupations.
func FuzzLowestFit(f *testing.F) {
	f.Add(int64(0), int64(3), int64(5), int64(2), int64(4), int64(2), uint8(2))
	f.Add(int64(1), int64(1), int64(1), int64(1), int64(1), int64(1), uint8(0))
	f.Fuzz(func(t *testing.T, s1, w1, s2, w2, s3, w3 int64, wRaw uint8) {
		norm := func(v int64) int64 {
			if v < 0 {
				v = -v
			}
			return v % 40
		}
		occ := []Interval{
			NewInterval(norm(s1), norm(w1)%8),
			NewInterval(norm(s2), norm(w2)%8),
			NewInterval(norm(s3), norm(w3)%8),
		}
		w := int64(wRaw % 9)
		want := bruteLowestFit(occ, w)
		if got := LowestFitStream(occ, w); got != want {
			t.Fatalf("LowestFitStream(%v, %d) = %d, reference %d", occ, w, got, want)
		}
		got := LowestFit(append([]Interval{}, occ...), w)
		if got != want {
			t.Fatalf("LowestFit(%v, %d) = %d, reference %d", occ, w, got, want)
		}
		// The result must actually be feasible and minimal.
		cand := NewInterval(got, w)
		for _, iv := range occ {
			if cand.Overlaps(iv) {
				t.Fatalf("returned placement overlaps %v", iv)
			}
		}
		// Reshape the same inputs into a uniform-weight occupancy (all
		// widths w, starts multiples of w) and cross-check the free-map
		// kernel; it must accept the instance, never fall back.
		if w > 0 {
			uocc := make([]Interval, 0, len(occ))
			for _, iv := range occ {
				slot := iv.Start % 6
				uocc = append(uocc, Interval{Start: slot * w, End: slot*w + w})
			}
			ugot, ok := LowestFitUniform(uocc, w)
			if !ok {
				t.Fatalf("LowestFitUniform(%v, %d) refused a uniform instance", uocc, w)
			}
			if uwant := bruteLowestFit(uocc, w); ugot != uwant {
				t.Fatalf("LowestFitUniform(%v, %d) = %d, reference %d", uocc, w, ugot, uwant)
			}
		}
	})
}
