package core

import "fmt"

// Interval is a half-open interval of colors [Start, End).
// An interval with End <= Start is empty and overlaps nothing.
type Interval struct {
	Start int64
	End   int64
}

// NewInterval returns the interval [start, start+width).
func NewInterval(start, width int64) Interval {
	return Interval{Start: start, End: start + width}
}

// Len returns the number of colors in the interval (0 when empty).
func (iv Interval) Len() int64 {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Empty reports whether the interval contains no colors.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Overlaps reports whether two intervals share at least one color.
// Empty intervals overlap nothing, matching the convention that a
// zero-weight vertex conflicts with no neighbor.
func (iv Interval) Overlaps(o Interval) bool {
	if iv.Empty() || o.Empty() {
		return false
	}
	return iv.Start < o.End && o.Start < iv.End
}

// Contains reports whether color c falls inside the interval.
func (iv Interval) Contains(c int64) bool {
	return c >= iv.Start && c < iv.End
}

// String renders the interval in the paper's [start, end) notation.
func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End)
}

// byStart orders intervals by Start, breaking ties by End. It is the
// ordering required by LowestFit.
func byStart(a, b Interval) int {
	switch {
	case a.Start < b.Start:
		return -1
	case a.Start > b.Start:
		return 1
	case a.End < b.End:
		return -1
	case a.End > b.End:
		return 1
	default:
		return 0
	}
}
