package core

import (
	"fmt"
	"sort"

	"stencilivc/internal/obsv"
)

// smallSortMax is the occupancy-list length up to which LowestFit sorts
// with an inline insertion sort instead of sort.Slice. Stencil degrees
// are at most 26, so the greedy hot path always stays on the inline
// branch; sort.Slice (whose reflect-based swapper allocates and whose
// comparator is an indirect call) remains only for large general-graph
// neighborhoods.
const smallSortMax = 32

// LowestFit returns the smallest non-negative start s such that [s, s+w)
// does not overlap any interval in occ. occ is sorted in place by start;
// empty intervals are ignored. Zero-width requests always fit at 0.
//
// This is the single-vertex placement step of every greedy heuristic in
// Section V-A of the paper: sort the neighbor intervals by their lower
// end, then scan once for the first gap of width w. Complexity
// O(d log d) for d = len(occ).
func LowestFit(occ []Interval, w int64) int64 {
	if w <= 0 {
		return 0
	}
	if len(occ) <= smallSortMax {
		insertionSortByStart(occ)
	} else {
		sort.Slice(occ, func(i, j int) bool { return byStart(occ[i], occ[j]) < 0 })
	}
	var cur int64
	for _, iv := range occ {
		if iv.Empty() {
			continue
		}
		if iv.Start-cur >= w {
			return cur
		}
		cur = max(cur, iv.End)
	}
	return cur
}

// insertionSortByStart sorts occ by byStart without allocating. It is the
// right sort for the d <= 26 occupancy lists stencils produce: branchy
// but tiny, with no closure, no interface dispatch, and no reflect-based
// swapper.
func insertionSortByStart(occ []Interval) {
	for i := 1; i < len(occ); i++ {
		iv := occ[i]
		j := i - 1
		for j >= 0 && byStart(occ[j], iv) > 0 {
			occ[j+1] = occ[j]
			j--
		}
		occ[j+1] = iv
	}
}

// FitScratch is a reusable buffer for repeated lowest-fit queries over a
// graph; it avoids per-vertex allocations in the greedy inner loop. When
// Stats is non-nil, every PlaceLowest records one placement and one probe
// per neighbor interval examined.
//
// Scratches are cheap to zero-construct, but solver loops that run per
// request (the service daemon) should acquire one from the arena with
// AcquireFitScratch so grown buffers survive across solves.
type FitScratch struct {
	nbuf []int
	occ  []Interval
	// fixN and fixI back the FixedGraph fast path: neighbor ids and
	// occupied intervals live in fixed-size arrays inside the scratch, so
	// the placement loop touches no slice growth and no heap at all.
	fixN [MaxFixedDegree]int
	fixI [MaxFixedDegree]Interval
	// uniFor/uniW memoize the uniform-weight verdict per graph, so the
	// per-placement dispatch onto the packed free-map kernel is one
	// interface compare. uniW > 0 means every vertex of uniFor weighs
	// uniW; uniW == 0 means the verdict for uniFor was "not uniform".
	uniFor Graph
	uniW   int64
	// Stats is an optional sink for placement/probe counters.
	Stats *Stats
	// Metrics is an optional metrics bundle; when non-nil every
	// PlaceLowest also feeds the vertices/probes counters and the
	// occupancy-list-length histogram with lock-free increments.
	Metrics *obsv.SolveMetrics
}

// PlaceLowest computes the lowest feasible start for vertex v given the
// colored neighbors in c, ignoring vertex skip (pass -1 to ignore none;
// skip is used by recoloring passes that lift v out before reinserting).
//
// Graphs implementing FixedGraph (the stencils) take an allocation-free
// fast path: neighbors are enumerated into a fixed-size array and the
// occupancy list never leaves the scratch, so the greedy inner loop does
// zero heap work per placement.
func (s *FitScratch) PlaceLowest(g Graph, c Coloring, v int, skip int) int64 {
	if fg, ok := g.(FixedGraph); ok {
		return s.placeFixed(fg, c, v, skip)
	}
	s.nbuf = g.Neighbors(v, s.nbuf[:0])
	s.occ = s.occ[:0]
	for _, u := range s.nbuf {
		if u == skip || !c.Colored(u) {
			continue
		}
		iv := c.Interval(g, u)
		if !iv.Empty() {
			s.occ = append(s.occ, iv)
		}
	}
	if s.Stats != nil {
		s.Stats.AddPlacements(1)
		s.Stats.AddProbes(int64(len(s.occ)))
	}
	if s.Metrics != nil {
		s.Metrics.Vertices.Add(1)
		s.Metrics.Probes.Add(int64(len(s.occ)))
		s.Metrics.OccLen.ObserveInt(int64(len(s.occ)))
	}
	w := g.Weight(v)
	if s.uniformFor(g) > 0 {
		if start, ok := LowestFitUniform(s.occ, w); ok {
			return start
		}
	}
	if len(s.occ) <= smallSortMax {
		return LowestFitStream(s.occ, w)
	}
	return LowestFit(s.occ, w)
}

// uniformFor returns the memoized uniform weight of g (0 when g's
// weights are not uniform), recomputing the memo on graph change. The
// verdict itself is cached on the graph (UniformWeighter), so a memo
// miss costs one interface call, not a weight scan, for the stencils
// and CSR.
func (s *FitScratch) uniformFor(g Graph) int64 {
	if g != s.uniFor {
		s.uniFor = g
		s.uniW = 0
		if w, ok := UniformWeight(g); ok {
			s.uniW = w
		}
	}
	return s.uniW
}

// placeFixed is PlaceLowest specialized to fixed-degree (stencil) graphs.
func (s *FitScratch) placeFixed(g FixedGraph, c Coloring, v int, skip int) int64 {
	if s.uniformFor(g) > 0 {
		if start, ok := s.placeFixedBits(g, c, v, skip); ok {
			return start
		}
	}
	deg := g.NeighborsFixed(v, &s.fixN)
	m := 0
	for t := 0; t < deg; t++ {
		u := s.fixN[t]
		if u == skip {
			continue
		}
		sv := c.Start[u]
		if sv == Unset {
			continue
		}
		w := g.Weight(u)
		if w <= 0 {
			continue
		}
		s.fixI[m] = Interval{Start: sv, End: sv + w}
		m++
	}
	if s.Stats != nil {
		s.Stats.AddPlacements(1)
		s.Stats.AddProbes(int64(m))
	}
	if s.Metrics != nil {
		s.Metrics.Vertices.Add(1)
		s.Metrics.Probes.Add(int64(m))
		s.Metrics.OccLen.ObserveInt(int64(m))
	}
	return LowestFitStream(s.fixI[:m], g.Weight(v))
}

// placeFixedBits is the uniform-weight fast path of placeFixed: the
// occupancy of v's colored neighbors is a packed slot bitmap and the
// lowest fit is one word-level first-free scan — no interval is ever
// materialized and no neighbor weight is ever loaded (uniformity makes
// them all s.uniW). It reports false, recording nothing, when a
// neighbor start breaks the multiple-of-w invariant; the caller then
// takes the general interval path. Placement/probe accounting matches
// the interval kernel exactly, so the two paths are observably
// identical except for speed.
func (s *FitScratch) placeFixedBits(g FixedGraph, c Coloring, v int, skip int) (int64, bool) {
	w := s.uniW
	deg := g.NeighborsFixed(v, &s.fixN)
	var f freeMap
	m := 0
	for t := 0; t < deg; t++ {
		u := s.fixN[t]
		if u == skip {
			continue
		}
		su := c.Start[u]
		if su < 0 {
			continue // Unset
		}
		slot, ok := slotOf(su, w)
		if !ok {
			return 0, false
		}
		f.set(slot)
		m++
	}
	if s.Stats != nil {
		s.Stats.AddPlacements(1)
		s.Stats.AddProbes(int64(m))
	}
	if s.Metrics != nil {
		s.Metrics.Vertices.Add(1)
		s.Metrics.Probes.Add(int64(m))
		s.Metrics.OccLen.ObserveInt(int64(m))
	}
	return f.firstFree() * w, true
}

// GreedyColor colors the vertices of g one at a time in the given order,
// assigning each the lowest color interval that does not intersect any
// already-colored neighbor. order must be a permutation of 0..g.Len()-1;
// this is checked. The result is always a valid complete coloring.
//
// Complexity O(E log E) over the whole graph (Section V-A).
func GreedyColor(g Graph, order []int) (Coloring, error) {
	return GreedyColorOpts(g, order, nil)
}

// GreedyColorOpts is GreedyColor threaded with SolveOptions: it polls
// opts for cancellation every CtxCheckInterval placements (returning the
// context's error with no coloring) and records placements and probes
// into the stats sink. A nil opts behaves exactly like GreedyColor.
func GreedyColorOpts(g Graph, order []int, opts *SolveOptions) (Coloring, error) {
	if err := CheckPermutation(order, g.Len()); err != nil {
		return Coloring{}, err
	}
	c := NewColoring(g.Len())
	// A stack scratch, not the arena: a single greedy pass over a stencil
	// stays on the fixed-array path and never grows heap state, so the
	// pool would only add a Get/Put (and a cold-miss allocation) here.
	// The arena pays off where scratches are acquired repeatedly — tile
	// workers and the recoloring passes.
	s := FitScratch{Stats: opts.Sink(), Metrics: opts.Meters()}
	for i, v := range order {
		if i%CtxCheckInterval == 0 {
			if err := opts.Err(); err != nil {
				return Coloring{}, err
			}
		}
		c.Start[v] = s.PlaceLowest(g, c, v, -1)
	}
	return c, nil
}

// CheckPermutation verifies that order is a permutation of 0..n-1.
func CheckPermutation(order []int, n int) error {
	if len(order) != n {
		return &PermError{Got: len(order), Want: n}
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return &PermError{Got: len(order), Want: n, Bad: v, HasBad: true}
		}
		seen[v] = true
	}
	return nil
}

// PermError reports an order slice that is not a permutation.
type PermError struct {
	Got, Want int
	Bad       int
	HasBad    bool
}

// Error formats the violation, naming the offending vertex when known.
func (e *PermError) Error() string {
	if e.HasBad {
		return fmt.Sprintf("core: order is not a permutation (bad or repeated vertex %d)", e.Bad)
	}
	return fmt.Sprintf("core: order has length %d, want %d", e.Got, e.Want)
}
