package core

import (
	"fmt"
	"sort"
)

// LowestFit returns the smallest non-negative start s such that [s, s+w)
// does not overlap any interval in occ. occ is sorted in place by start;
// empty intervals are ignored. Zero-width requests always fit at 0.
//
// This is the single-vertex placement step of every greedy heuristic in
// Section V-A of the paper: sort the neighbor intervals by their lower
// end, then scan once for the first gap of width w. Complexity
// O(d log d) for d = len(occ).
func LowestFit(occ []Interval, w int64) int64 {
	if w <= 0 {
		return 0
	}
	sort.Slice(occ, func(i, j int) bool { return byStart(occ[i], occ[j]) < 0 })
	var cur int64
	for _, iv := range occ {
		if iv.Empty() {
			continue
		}
		if iv.Start-cur >= w {
			return cur
		}
		cur = max(cur, iv.End)
	}
	return cur
}

// FitScratch is a reusable buffer for repeated lowest-fit queries over a
// graph; it avoids per-vertex allocations in the greedy inner loop. When
// Stats is non-nil, every PlaceLowest records one placement and one probe
// per neighbor interval examined.
type FitScratch struct {
	nbuf []int
	occ  []Interval
	// Stats is an optional sink for placement/probe counters.
	Stats *Stats
}

// PlaceLowest computes the lowest feasible start for vertex v given the
// colored neighbors in c, ignoring vertex skip (pass -1 to ignore none;
// skip is used by recoloring passes that lift v out before reinserting).
func (s *FitScratch) PlaceLowest(g Graph, c Coloring, v int, skip int) int64 {
	s.nbuf = g.Neighbors(v, s.nbuf[:0])
	s.occ = s.occ[:0]
	for _, u := range s.nbuf {
		if u == skip || !c.Colored(u) {
			continue
		}
		iv := c.Interval(g, u)
		if !iv.Empty() {
			s.occ = append(s.occ, iv)
		}
	}
	if s.Stats != nil {
		s.Stats.AddPlacements(1)
		s.Stats.AddProbes(int64(len(s.occ)))
	}
	return LowestFit(s.occ, g.Weight(v))
}

// GreedyColor colors the vertices of g one at a time in the given order,
// assigning each the lowest color interval that does not intersect any
// already-colored neighbor. order must be a permutation of 0..g.Len()-1;
// this is checked. The result is always a valid complete coloring.
//
// Complexity O(E log E) over the whole graph (Section V-A).
func GreedyColor(g Graph, order []int) (Coloring, error) {
	return GreedyColorOpts(g, order, nil)
}

// GreedyColorOpts is GreedyColor threaded with SolveOptions: it polls
// opts for cancellation every CtxCheckInterval placements (returning the
// context's error with no coloring) and records placements and probes
// into the stats sink. A nil opts behaves exactly like GreedyColor.
func GreedyColorOpts(g Graph, order []int, opts *SolveOptions) (Coloring, error) {
	if err := CheckPermutation(order, g.Len()); err != nil {
		return Coloring{}, err
	}
	c := NewColoring(g.Len())
	s := FitScratch{Stats: opts.Sink()}
	for i, v := range order {
		if i%CtxCheckInterval == 0 {
			if err := opts.Err(); err != nil {
				return Coloring{}, err
			}
		}
		c.Start[v] = s.PlaceLowest(g, c, v, -1)
	}
	return c, nil
}

// CheckPermutation verifies that order is a permutation of 0..n-1.
func CheckPermutation(order []int, n int) error {
	if len(order) != n {
		return &PermError{Got: len(order), Want: n}
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return &PermError{Got: len(order), Want: n, Bad: v, HasBad: true}
		}
		seen[v] = true
	}
	return nil
}

// PermError reports an order slice that is not a permutation.
type PermError struct {
	Got, Want int
	Bad       int
	HasBad    bool
}

func (e *PermError) Error() string {
	if e.HasBad {
		return fmt.Sprintf("core: order is not a permutation (bad or repeated vertex %d)", e.Bad)
	}
	return fmt.Sprintf("core: order has length %d, want %d", e.Got, e.Want)
}
