package core

import (
	"encoding/hex"
	"time"
)

// CacheKey is the canonical content address of one (algorithm, instance)
// pair: a SHA-256 digest over the algorithm descriptor and a canonical
// encoding of the instance (stencil kind, dimensions, and the weight
// vector — or the full CSR structure for general graphs). Two keys are
// equal exactly when a cached coloring for one is a correct answer for
// the other, which is what makes the digest safe to use as a memoization
// key: solves are deterministic per algorithm, so a key hit returns a
// coloring the solver itself would have produced.
//
// The digest is computed by internal/resultcache.Fingerprint; core only
// defines the type so SolveOptions can carry a cache hook without
// importing the cache implementation.
type CacheKey [32]byte

// String renders the key as lowercase hex — the form used in event
// logs and as the file-store entry name.
func (k CacheKey) String() string { return hex.EncodeToString(k[:]) }

// SolveCache is the content-addressed result-cache hook consulted by
// heuristics.Run. A nil SolveOptions.Cache — the default — costs one
// pointer compare per solve and allocates nothing.
//
// Lookup fingerprints (alg, g) and returns a cached coloring when one
// exists. The returned coloring is a private copy: callers may mutate it
// freely without corrupting the cache, and the cache guarantees a hit is
// byte-identical to the coloring originally stored. The key is returned
// on hit and miss alike so the caller can Store a fresh solve without
// re-fingerprinting the instance. Implementations must be safe for
// concurrent use — portfolio members and service workers call Lookup
// concurrently.
//
// Store records a completed solve under the key Lookup returned, along
// with the provenance the cache keeps per entry (solver name, wall
// time). Implementations must deep-copy the coloring: the caller hands
// back the live result it is about to return to its own caller.
//
// Implementations never return a coloring that fails Validate against
// g — a corrupted persisted entry degrades to a miss (a re-solve),
// never to a wrong answer.
type SolveCache interface {
	// Lookup reports a cached coloring for (alg, g), attributing the
	// hit or miss to tenant, plus the instance key for a later Store.
	Lookup(alg string, g Graph, tenant string) (Coloring, CacheKey, bool)
	// Store records a completed solve of (alg, g) under key; wall is the
	// solve's measured wall time, kept as provenance.
	Store(key CacheKey, alg, tenant string, g Graph, c Coloring, wall time.Duration)
}
