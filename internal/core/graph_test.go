package core

import (
	"errors"
	"sort"
	"testing"
)

func neighborsOf(g Graph, v int) []int {
	n := g.Neighbors(v, nil)
	sort.Ints(n)
	return n
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewCSRGraphBasic(t *testing.T) {
	g, err := NewCSRGraph([]int64{1, 2, 3}, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := neighborsOf(g, 1); !equalInts(got, []int{0, 2}) {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if got := neighborsOf(g, 0); !equalInts(got, []int{1}) {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if g.Weight(2) != 3 {
		t.Errorf("Weight(2) = %d", g.Weight(2))
	}
}

func TestNewCSRGraphErrors(t *testing.T) {
	if _, err := NewCSRGraph([]int64{1, 1}, []Edge{{0, 0}}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := NewCSRGraph([]int64{1, 1}, []Edge{{0, 2}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewCSRGraph([]int64{1, 1}, []Edge{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := NewCSRGraph([]int64{-1}, nil); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestChain(t *testing.T) {
	g := Chain([]int64{5, 1, 4, 2})
	if got := CountEdges(g); got != 3 {
		t.Errorf("edges = %d", got)
	}
	if got := neighborsOf(g, 0); !equalInts(got, []int{1}) {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if got := neighborsOf(g, 2); !equalInts(got, []int{1, 3}) {
		t.Errorf("Neighbors(2) = %v", got)
	}
	single := Chain([]int64{7})
	if single.Len() != 1 || CountEdges(single) != 0 {
		t.Error("singleton chain malformed")
	}
}

func TestCycle(t *testing.T) {
	g, err := Cycle([]int64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if CountEdges(g) != 5 {
		t.Errorf("edges = %d", CountEdges(g))
	}
	if got := neighborsOf(g, 0); !equalInts(got, []int{1, 4}) {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if _, err := Cycle([]int64{1, 2}); err == nil {
		t.Error("2-cycle accepted")
	}
}

func TestClique(t *testing.T) {
	g := Clique([]int64{1, 2, 3, 4})
	if CountEdges(g) != 6 {
		t.Errorf("edges = %d", CountEdges(g))
	}
	for v := 0; v < 4; v++ {
		if Degree(g, v) != 3 {
			t.Errorf("degree(%d) = %d", v, Degree(g, v))
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite([]int64{1, 2}, []int64{3, 4, 5})
	if g.Len() != 5 || CountEdges(g) != 6 {
		t.Fatalf("Len=%d edges=%d", g.Len(), CountEdges(g))
	}
	if got := neighborsOf(g, 0); !equalInts(got, []int{2, 3, 4}) {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if g.Weight(4) != 5 {
		t.Errorf("Weight(4) = %d", g.Weight(4))
	}
}

func TestTotalAndMaxWeight(t *testing.T) {
	g := Chain([]int64{5, 1, 9, 2})
	if TotalWeight(g) != 17 {
		t.Errorf("TotalWeight = %d", TotalWeight(g))
	}
	if MaxWeight(g) != 9 {
		t.Errorf("MaxWeight = %d", MaxWeight(g))
	}
}

func TestSetWeight(t *testing.T) {
	g := Chain([]int64{1, 2})
	g.SetWeight(0, 10)
	if g.Weight(0) != 10 {
		t.Errorf("Weight(0) = %d", g.Weight(0))
	}
	defer func() {
		if recover() == nil {
			t.Error("negative SetWeight did not panic")
		}
	}()
	g.SetWeight(1, -3)
}

func TestInducedSubgraph(t *testing.T) {
	g := Clique([]int64{10, 20, 30, 40})
	sub, orig, err := InducedSubgraph(g, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || CountEdges(sub) != 1 {
		t.Fatalf("sub Len=%d edges=%d", sub.Len(), CountEdges(sub))
	}
	if sub.Weight(0) != 40 || sub.Weight(1) != 20 {
		t.Errorf("weights %d,%d", sub.Weight(0), sub.Weight(1))
	}
	if !equalInts(orig, []int{3, 1}) {
		t.Errorf("orig = %v", orig)
	}
	if _, _, err := InducedSubgraph(g, []int{1, 1}); err == nil {
		t.Error("duplicate subset accepted")
	}
	if _, _, err := InducedSubgraph(g, []int{9}); err == nil {
		t.Error("out-of-range subset accepted")
	}
}

func TestNeighborsBufferReuse(t *testing.T) {
	g := Clique([]int64{1, 1, 1, 1, 1})
	buf := make([]int, 0, 8)
	a := g.Neighbors(0, buf[:0])
	b := g.Neighbors(1, buf[:0])
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("degrees %d,%d", len(a), len(b))
	}
	// b overwrote the shared buffer; only b's contents are guaranteed now.
	sort.Ints(b)
	if !equalInts(b, []int{0, 2, 3, 4}) {
		t.Errorf("Neighbors(1) = %v", b)
	}
}

func TestMustCSRGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCSRGraph did not panic on bad input")
		}
	}()
	MustCSRGraph([]int64{1}, []Edge{{0, 0}})
}

func TestValidateErrorsIs(t *testing.T) {
	g := Chain([]int64{2, 2})
	c := NewColoring(2)
	c.Start[0], c.Start[1] = 0, 1 // overlap
	if err := c.Validate(g); !errors.Is(err, ErrInvalidColoring) {
		t.Errorf("Validate error = %v, want ErrInvalidColoring", err)
	}
}
