package core

import "sync"

// The scratch arena: FitScratch carries grown neighbor/occupancy
// buffers (and a warm uniform-weight memo) that are worth keeping
// across solves. Solvers that run per request — the service daemon's
// worker pool above all — acquire scratches here instead of
// zero-constructing them, so a steady stream of same-shaped jobs pays
// the buffer growth once, not per job.
var fitScratchPool = sync.Pool{New: func() any { return new(FitScratch) }}

// AcquireFitScratch returns a pooled FitScratch wired to the options'
// stats and metrics sinks. Callers must return it with
// ReleaseFitScratch when the solve is done (defer is fine); the scratch
// must not be used after release.
func AcquireFitScratch(opts *SolveOptions) *FitScratch {
	s := fitScratchPool.Get().(*FitScratch)
	s.Stats = opts.Sink()
	s.Metrics = opts.Meters()
	return s
}

// ReleaseFitScratch returns s to the arena. Sink pointers and the
// uniform-weight memo are cleared — the memo keys on graph identity,
// and a recycled allocation at the same address must not inherit a
// stale verdict — while the grown buffers are kept warm. A nil s is a
// no-op, so error paths can release unconditionally.
func ReleaseFitScratch(s *FitScratch) {
	if s == nil {
		return
	}
	s.Stats = nil
	s.Metrics = nil
	s.uniFor = nil
	s.uniW = 0
	fitScratchPool.Put(s)
}
