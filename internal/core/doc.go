// Package core defines the fundamental types of the interval vertex
// coloring (IVC) problem: color intervals, weighted graphs, colorings,
// solve options, and the lowest-fit interval placement engine shared by
// every greedy heuristic in this module.
//
// Terminology follows Durrman & Saule, "Coloring the Vertices of 9-pt and
// 27-pt Stencils with Intervals" (IPPS 2022), Section II: a vertex v of
// weight w(v) is colored with the half-open interval
// [start(v), start(v)+w(v)); a coloring is valid when neighboring vertices
// receive disjoint intervals, and its cost is
// maxcolor = max_v start(v)+w(v).
//
// The package upholds two invariants the rest of the module builds on:
//
//   - Validity by construction. LowestFit returns the smallest start whose
//     interval avoids every occupied neighbor interval it is shown, so a
//     greedy pass that always places against all colored neighbors can
//     only produce valid colorings (Section V-A).
//
//   - An allocation-free hot path. FitScratch.PlaceLowest on a FixedGraph
//     (both stencils) performs zero heap allocations per placement: the
//     neighbor ids and occupancy list live in fixed-size arrays inside the
//     scratch, sized by MaxFixedDegree = 26, the 27-pt stencil's degree.
//     Tests pin this to 0 allocs/op; attaching Stats or an obsv metrics
//     bundle must not break it.
//
// SolveOptions threads the cross-cutting concerns — context cancellation,
// parallelism, a Stats sink, and the obsv trace/metrics handles — through
// every solver. A nil *SolveOptions is always valid and means "defaults,
// nothing observed"; all accessors are nil-receiver-safe.
package core
