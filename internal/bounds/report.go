package bounds

import (
	"fmt"

	"stencilivc/internal/grid"
)

// Report collects every lower bound of Section III for one instance, so
// tools can show which structure is binding.
type Report struct {
	// Pair is the max edge bound (max single weight / adjacent pair sum).
	Pair int64
	// Clique is the max K4 (2D) or K8 (3D) block bound.
	Clique int64
	// OddCycle is the best odd-cycle minchain3 found within the budget
	// (0 when the search was disabled or found nothing above zero).
	OddCycle int64
	// CycleBudget is the node budget the cycle search ran with.
	CycleBudget int
}

// Best returns the strongest bound of the report.
func (r Report) Best() int64 {
	return max(r.Pair, max(r.Clique, r.OddCycle))
}

// Binding names the structure achieving the best bound, preferring the
// cheaper certificates on ties (pair, then clique, then odd cycle).
func (r Report) Binding() string {
	best := r.Best()
	switch {
	case r.Pair == best:
		return "pair"
	case r.Clique == best:
		return "clique"
	default:
		return "odd-cycle"
	}
}

// String renders the report on one line.
func (r Report) String() string {
	return fmt.Sprintf("lower bounds: pair=%d clique=%d odd-cycle=%d -> %d (%s)",
		r.Pair, r.Clique, r.OddCycle, r.Best(), r.Binding())
}

// Report2D computes all bounds of a 9-pt stencil instance.
func Report2D(g *grid.Grid2D, cycleBudget int) Report {
	r := Report{
		Pair:        MaxPair(g),
		Clique:      MaxK4(g),
		CycleBudget: cycleBudget,
	}
	if cycleBudget > 0 {
		r.OddCycle = OddCycle(g, g.Len(), cycleBudget)
	}
	return r
}

// Report3D computes all bounds of a 27-pt stencil instance.
func Report3D(g *grid.Grid3D, cycleBudget int) Report {
	r := Report{
		Pair:        MaxPair(g),
		Clique:      MaxK8(g),
		CycleBudget: cycleBudget,
	}
	if cycleBudget > 0 {
		r.OddCycle = OddCycle(g, min(g.Len(), 15), cycleBudget)
	}
	return r
}
