package bounds

import (
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// MaxPair returns the trivial edge lower bound
// max(max_v w(v), max_{(u,v) in E} w(u)+w(v)): two adjacent intervals are
// disjoint, so some vertex ends at or after their combined length.
func MaxPair(g core.Graph) int64 {
	var b int64
	var buf []int
	for v := 0; v < g.Len(); v++ {
		wv := g.Weight(v)
		b = max(b, wv)
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u > v {
				b = max(b, wv+g.Weight(u))
			}
		}
	}
	return b
}

// MaxK4 returns the max-clique lower bound of a 9-pt stencil: the largest
// total weight of any 2×2 block (Section III-A). Degenerate grids
// (X == 1 or Y == 1) contain no K4 and fall back to the pair bound.
func MaxK4(g *grid.Grid2D) int64 {
	blocks := grid.Blocks2D(g)
	if len(blocks) == 0 {
		return MaxPair(g)
	}
	return max(grid.MaxBlockWeight(blocks), core.MaxWeight(g))
}

// MaxK8 returns the max-clique lower bound of a 27-pt stencil: the largest
// total weight of any 2×2×2 block. Grids with a unit dimension fall back
// to the K4 bound of their only layer orientation via the generic pair
// bound on the full graph combined with per-layer K4 bounds.
func MaxK8(g *grid.Grid3D) int64 {
	blocks := grid.Blocks3D(g)
	if len(blocks) == 0 {
		// A 3D grid with a unit dimension is 2D in disguise (Section II);
		// use the best K4 bound over every axis-aligned slab of thickness 1.
		b := MaxPair(g)
		if g.Z == 1 {
			b = max(b, MaxK4(g.Layer(0)))
		}
		return b
	}
	return max(grid.MaxBlockWeight(blocks), core.MaxWeight(g))
}

// CliqueSum returns the exact optimum of a clique: the sum of all weights
// (Section III-A). It is exported for use as a bound on arbitrary vertex
// subsets the caller knows to be mutually adjacent.
func CliqueSum(weights []int64) int64 {
	var sum int64
	for _, w := range weights {
		sum += w
	}
	return sum
}

// Combined2D returns the best known lower bound of a 2DS-IVC instance:
// the maximum of the pair bound, the K4 bound, and — when budget > 0 —
// the odd-cycle bound explored with the given search budget.
func Combined2D(g *grid.Grid2D, oddCycleBudget int) int64 {
	b := max(MaxPair(g), MaxK4(g))
	if oddCycleBudget > 0 {
		b = max(b, OddCycle(g, 9, oddCycleBudget))
	}
	return b
}

// Combined3D is Combined2D for 3DS-IVC instances.
func Combined3D(g *grid.Grid3D, oddCycleBudget int) int64 {
	b := max(MaxPair(g), MaxK8(g))
	if oddCycleBudget > 0 {
		b = max(b, OddCycle(g, 7, oddCycleBudget))
	}
	return b
}
