package bounds

import "stencilivc/internal/core"

// OddCycle returns the odd-cycle lower bound of Section III-C: the largest
// minchain3 over the odd cycles of g reachable within the search budget,
// where minchain3(C) is the minimum weight of three consecutive vertices
// around cycle C. By Theorem 1 the optimal coloring of an odd cycle is
// max(maxpair, minchain3), and subgraph optima bound the full graph, so
// every discovered value is a valid lower bound.
//
// The number of odd cycles is exponential (Section III-C notes that no
// efficient identification is known), so the search enumerates simple
// cycles of length at most maxLen with a node budget and returns the best
// bound found; it never overstates. maxLen below 3 disables the search.
func OddCycle(g core.Graph, maxLen, budget int) int64 {
	if maxLen < 3 || g.Len() < 3 {
		return 0
	}
	s := cycleSearch{
		g:      g,
		maxLen: maxLen,
		budget: budget,
		onPath: make([]bool, g.Len()),
	}
	// Zero-weight vertices never help: a cycle through one has a 3-window
	// summing just two adjacent weights, so its minchain3 is at most the
	// pair bound that MaxPair already covers. Restricting the search to
	// positive vertices keeps it exact for every useful cycle and prunes
	// the (often huge) empty regions of voxelized instances.
	for root := 0; root < g.Len() && s.budget > 0; root++ {
		if g.Weight(root) == 0 {
			continue
		}
		s.root = root
		s.path = s.path[:0]
		s.push(root)
		s.dfs()
		s.pop()
	}
	return s.best
}

type cycleSearch struct {
	g      core.Graph
	root   int
	maxLen int
	budget int
	best   int64
	path   []int
	onPath []bool
	nbuf   []int
}

func (s *cycleSearch) push(v int) {
	s.path = append(s.path, v)
	s.onPath[v] = true
}

func (s *cycleSearch) pop() {
	v := s.path[len(s.path)-1]
	s.path = s.path[:len(s.path)-1]
	s.onPath[v] = false
}

// dfs extends the current path. To enumerate each cycle once, paths only
// visit vertices greater than the root, and a cycle is recorded when the
// path's tip neighbors the root at odd length >= 3.
func (s *cycleSearch) dfs() {
	if s.budget <= 0 {
		return
	}
	s.budget--
	tip := s.path[len(s.path)-1]
	nbrs := s.g.Neighbors(tip, nil) // fresh slice: recursion would clobber a shared buffer
	for _, u := range nbrs {
		if u == s.root && len(s.path) >= 3 && len(s.path)%2 == 1 {
			s.record()
			continue
		}
		if u <= s.root || s.onPath[u] || len(s.path) >= s.maxLen || s.g.Weight(u) == 0 {
			continue
		}
		s.push(u)
		s.dfs()
		s.pop()
	}
}

// record computes minchain3 of the cycle currently held in path (closed
// through the root) and keeps the maximum.
func (s *cycleSearch) record() {
	n := len(s.path)
	minChain := int64(1) << 62
	for i := 0; i < n; i++ {
		sum := s.g.Weight(s.path[i]) +
			s.g.Weight(s.path[(i+1)%n]) +
			s.g.Weight(s.path[(i+2)%n])
		minChain = min(minChain, sum)
	}
	s.best = max(s.best, minChain)
}

// MaxPairOfCycle and MinChain3OfCycle expose the two quantities of
// Theorem 1 for an explicit cycle given as a weight sequence. They are
// used by the odd-cycle optimal algorithm and its tests.

// MaxPairOfCycle returns max_i w(i)+w(i+1) around the cycle.
func MaxPairOfCycle(weights []int64) int64 {
	n := len(weights)
	var b int64
	for i := 0; i < n; i++ {
		b = max(b, weights[i]+weights[(i+1)%n])
	}
	return b
}

// MinChain3OfCycle returns min_i w(i)+w(i+1)+w(i+2) around the cycle.
func MinChain3OfCycle(weights []int64) int64 {
	n := len(weights)
	m := int64(1) << 62
	for i := 0; i < n; i++ {
		m = min(m, weights[i]+weights[(i+1)%n]+weights[(i+2)%n])
	}
	return m
}
