// Package bounds computes the lower bounds of Section III of the paper:
// the trivial edge/pair bound, the clique bounds from the K4 blocks of
// 9-pt stencils and K8 blocks of 27-pt stencils (Section III-A), and the
// odd-cycle minchain3 bound of Theorem 1 (Section III-B).
//
// The invariant every bound rests on is subgraph monotonicity
// (Section III, preamble): the optimal maxcolor of any subgraph is a
// lower bound on the optimal maxcolor of the whole graph, because a valid
// coloring restricted to a subgraph stays valid. So every bound B here
// guarantees maxcolor* >= B, and a heuristic that reaches B is certified
// optimal — the certification route the experiments use in place of the
// paper's MILP runs.
package bounds
