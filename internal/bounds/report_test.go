package bounds

import (
	"strings"
	"testing"

	"stencilivc/internal/grid"
)

func TestReport2D(t *testing.T) {
	g := grid.MustGrid2D(3, 3)
	copy(g.W, []int64{2, 1, 3, 0, 4, 1, 2, 2, 1})
	r := Report2D(g, 100_000)
	if r.Pair != MaxPair(g) || r.Clique != MaxK4(g) {
		t.Fatal("report components disagree with direct calls")
	}
	if r.Best() < r.Pair || r.Best() < r.Clique || r.Best() < r.OddCycle {
		t.Fatal("Best below a component")
	}
	if r.Binding() == "" {
		t.Fatal("no binding structure")
	}
	if !strings.Contains(r.String(), "lower bounds:") {
		t.Errorf("String malformed: %q", r.String())
	}
}

func TestReportBindingPreference(t *testing.T) {
	// All equal: the cheaper certificate wins the name.
	r := Report{Pair: 5, Clique: 5, OddCycle: 5}
	if r.Binding() != "pair" {
		t.Errorf("Binding = %q, want pair", r.Binding())
	}
	r = Report{Pair: 3, Clique: 5, OddCycle: 5}
	if r.Binding() != "clique" {
		t.Errorf("Binding = %q, want clique", r.Binding())
	}
	r = Report{Pair: 3, Clique: 4, OddCycle: 5}
	if r.Binding() != "odd-cycle" {
		t.Errorf("Binding = %q, want odd-cycle", r.Binding())
	}
}

func TestReport3D(t *testing.T) {
	g := grid.MustGrid3D(2, 2, 2)
	for v := range g.W {
		g.W[v] = 2
	}
	r := Report3D(g, 10_000)
	if r.Clique != 16 {
		t.Fatalf("K8 bound = %d, want 16", r.Clique)
	}
	if r.Best() != 16 || r.Binding() != "clique" {
		t.Fatalf("Best=%d Binding=%s", r.Best(), r.Binding())
	}
	// Budget 0 disables the cycle search.
	r0 := Report3D(g, 0)
	if r0.OddCycle != 0 {
		t.Fatal("cycle search ran with zero budget")
	}
}
