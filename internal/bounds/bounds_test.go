package bounds

import (
	"math/rand"
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

func TestMaxPair(t *testing.T) {
	g := core.Chain([]int64{3, 5, 2})
	if b := MaxPair(g); b != 8 {
		t.Errorf("MaxPair = %d, want 8", b)
	}
	// Isolated heavy vertex dominates.
	iso := core.MustCSRGraph([]int64{10, 1, 1}, []core.Edge{{U: 1, V: 2}})
	if b := MaxPair(iso); b != 10 {
		t.Errorf("MaxPair with isolated vertex = %d, want 10", b)
	}
	empty := core.MustCSRGraph(nil, nil)
	if b := MaxPair(empty); b != 0 {
		t.Errorf("MaxPair(empty) = %d", b)
	}
}

func TestMaxK4(t *testing.T) {
	g := grid.MustGrid2D(3, 2)
	copy(g.W, []int64{1, 2, 3, 4, 5, 6})
	// Blocks: {1,2,4,5}=12 and {2,3,5,6}=16.
	if b := MaxK4(g); b != 16 {
		t.Errorf("MaxK4 = %d, want 16", b)
	}
	// Degenerate 1xN grid falls back to the pair bound.
	chainGrid := grid.MustGrid2D(1, 3)
	copy(chainGrid.W, []int64{4, 9, 1})
	if b := MaxK4(chainGrid); b != 13 {
		t.Errorf("MaxK4 degenerate = %d, want 13", b)
	}
}

func TestMaxK8(t *testing.T) {
	g := grid.MustGrid3D(2, 2, 2)
	for v := range g.W {
		g.W[v] = 1
	}
	if b := MaxK8(g); b != 8 {
		t.Errorf("MaxK8 = %d, want 8", b)
	}
	// Unit depth: falls back to K4 of the single layer.
	flat := grid.MustGrid3D(2, 2, 1)
	copy(flat.W, []int64{1, 2, 3, 4})
	if b := MaxK8(flat); b != 10 {
		t.Errorf("MaxK8 flat = %d, want 10", b)
	}
}

func TestCliqueSum(t *testing.T) {
	if s := CliqueSum([]int64{1, 2, 3}); s != 6 {
		t.Errorf("CliqueSum = %d", s)
	}
	if s := CliqueSum(nil); s != 0 {
		t.Errorf("CliqueSum(nil) = %d", s)
	}
}

func TestOddCycleBoundTriangle(t *testing.T) {
	g := core.Clique([]int64{2, 3, 4}) // triangle: minchain3 = 9
	if b := OddCycle(g, 3, 10_000); b != 9 {
		t.Errorf("OddCycle triangle = %d, want 9", b)
	}
}

func TestOddCycleBoundC5(t *testing.T) {
	g, err := core.Cycle([]int64{5, 5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	// minchain3 = 15 > maxpair = 10: the bound matters here.
	if b := OddCycle(g, 5, 10_000); b != 15 {
		t.Errorf("OddCycle C5 = %d, want 15", b)
	}
	// Length cap below 5 must not find the cycle.
	if b := OddCycle(g, 4, 10_000); b != 0 {
		t.Errorf("OddCycle C5 capped at 4 = %d, want 0", b)
	}
}

func TestOddCycleEvenCycleYieldsNothing(t *testing.T) {
	g, err := core.Cycle([]int64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b := OddCycle(g, 8, 10_000); b != 0 {
		t.Errorf("OddCycle on even cycle = %d, want 0", b)
	}
}

func TestOddCycleBudgetNeverOverstates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := grid.MustGrid2D(3, 3)
		for v := range g.W {
			g.W[v] = rng.Int63n(6)
		}
		full := OddCycle(g, 9, 1_000_000)
		tiny := OddCycle(g, 9, 5)
		if tiny > full {
			t.Fatalf("budgeted bound %d exceeds full bound %d", tiny, full)
		}
	}
}

func TestOddCycleIsValidLowerBoundOnStencil(t *testing.T) {
	// Figure 2's insight: an odd cycle's minchain3 can exceed the max
	// clique. Build a C5 inside a 3x3 stencil with heavy cycle weights;
	// since the stencil contains extra edges, the bound still must not
	// exceed the true optimum, which we do not compute here — instead we
	// verify monotonicity: bound <= MaxPair + something is NOT guaranteed,
	// but bound must be achievable by Theorem 1 on the cycle alone.
	g, err := core.Cycle([]int64{10, 10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	b := OddCycle(g, 5, 10_000)
	if b != 30 {
		t.Errorf("C5(10) bound = %d, want 30", b)
	}
}

func TestMaxPairOfCycleAndMinChain3(t *testing.T) {
	w := []int64{1, 2, 3, 4, 5}
	if got := MaxPairOfCycle(w); got != 9 {
		t.Errorf("MaxPairOfCycle = %d, want 9", got)
	}
	if got := MinChain3OfCycle(w); got != 6 {
		t.Errorf("MinChain3OfCycle = %d, want 6", got)
	}
}

func TestCombinedBounds(t *testing.T) {
	g2 := grid.MustGrid2D(3, 3)
	for v := range g2.W {
		g2.W[v] = 2
	}
	if b := Combined2D(g2, 0); b != 8 {
		t.Errorf("Combined2D = %d, want 8 (K4)", b)
	}
	if b := Combined2D(g2, 100_000); b < 8 {
		t.Errorf("Combined2D with cycles = %d < 8", b)
	}
	g3 := grid.MustGrid3D(2, 2, 2)
	for v := range g3.W {
		g3.W[v] = 3
	}
	if b := Combined3D(g3, 0); b != 24 {
		t.Errorf("Combined3D = %d, want 24 (K8)", b)
	}
}
