package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/distsolve"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/obsv"
	"stencilivc/internal/parallel"
	"stencilivc/internal/resultcache"
)

// Config parameterizes a Server. The zero value is serviceable: defaults
// fill in a small worker pool, a short coalescing window, and a bounded
// per-tenant queue, with every observability sink disabled.
type Config struct {
	// Workers bounds the scheduler's worker pool; <= 0 picks
	// min(GOMAXPROCS, 4).
	Workers int
	// BatchSize is the batcher's size trigger; <= 0 picks 8, 1 disables
	// coalescing.
	BatchSize int
	// BatchWait is the batcher's max-wait trigger; <= 0 picks 2ms.
	BatchWait time.Duration
	// QueueBuffer bounds the batcher intake channel; admission sheds
	// when it is full. <= 0 picks 256.
	QueueBuffer int
	// MaxQueuedPerTenant bounds each tenant's admitted-but-undispatched
	// jobs; past it, admission sheds. <= 0 picks 256.
	MaxQueuedPerTenant int
	// DefaultTimeout is the per-job deadline applied when a request
	// carries none; 0 picks 30s. Deadlines are the shedding policy, so
	// every job gets one.
	DefaultTimeout time.Duration
	// TenantWeights sets per-tenant fair-share weights; unlisted tenants
	// weigh 1.
	TenantWeights map[string]float64
	// Registry, when non-nil, receives the service_* and solver metric
	// families and is served at /metrics.
	Registry *obsv.Registry
	// Events, when non-nil, receives service.* and solver events.
	Events *obsv.EventSink
	// Sampler, when non-nil, runs for the duration of every dispatched
	// solve (the PR 5 runtime sampler).
	Sampler *obsv.Sampler
	// Injector, when non-nil, arms the service/* and solver fault sites.
	Injector core.Injector
	// FlightEntries sizes the always-on flight recorder (per-request
	// trace ring behind GET /debug/flight); <= 0 picks 4096 entries. The
	// recorder cannot be disabled: it is fixed-cost and allocation-free
	// on the record path.
	FlightEntries int
	// Flight, when non-nil, is used instead of a recorder built from
	// FlightEntries — tests inject a shared recorder here so chaos
	// injectors and the server record into the same ring.
	Flight *obsv.FlightRecorder
	// JobRetention bounds how many finished jobs GET /jobs/{id} can
	// still see; <= 0 picks 1024.
	JobRetention int
	// CacheBytes bounds the in-memory tier of the content-addressed
	// result cache. The cache is on by default: 0 picks 64 MiB, and a
	// negative value disables caching entirely. Identical instances
	// (same dims, same weights, same algorithm) then answer from the
	// cache instead of re-running the solver.
	CacheBytes int64
	// CacheDir, when non-empty, backs the result cache with a
	// resultcache.FileStore rooted at this directory, so cached
	// colorings survive daemon restarts. Ignored when CacheBytes < 0.
	CacheDir string
	// CacheStore, when non-nil, is the cache's persistence tier; it
	// takes precedence over CacheDir (tests inject memstore here).
	// Ignored when CacheBytes < 0.
	CacheStore resultcache.Store
	// CacheMaxEntries, when > 0, caps how many entries the CacheDir
	// store keeps at open: the oldest by file modification time are
	// evicted first. Ignored when CacheDir is unset.
	CacheMaxEntries int
	// CacheTTL, when > 0, expires CacheDir entries whose recorded
	// creation time is older than this at open, and reclaims entries
	// whose payload no longer decodes. Ignored when CacheDir is unset.
	CacheTTL time.Duration
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = min(runtime.GOMAXPROCS(0), 4)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = 2 * time.Millisecond
	}
	if cfg.QueueBuffer <= 0 {
		cfg.QueueBuffer = 256
	}
	if cfg.MaxQueuedPerTenant <= 0 {
		cfg.MaxQueuedPerTenant = 256
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 1024
	}
	if cfg.FlightEntries <= 0 {
		cfg.FlightEntries = 4096
	}
	return cfg
}

// Server is the assembled solve daemon: transport → batcher → scheduler
// → solver. Build one with New, mount Handler, and Close it to drain.
type Server struct {
	cfg     Config
	metrics *obsv.ServiceMetrics
	solveM  *obsv.SolveMetrics
	batcher *batcher
	sched   *scheduler
	// flight is the always-on per-request trace ring behind
	// GET /debug/flight; slo holds the aggregate latency histograms
	// exposed with trace-id exemplars at /metrics.
	flight *obsv.FlightRecorder
	slo    *obsv.SLOMetrics
	// cache memoizes completed solves by instance fingerprint; nil when
	// Config.CacheBytes < 0 disabled it.
	cache *resultcache.Cache

	// baseCtx parents every job's solve context; baseCancel aborts
	// in-flight solves on a forced stop.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	started time.Time
	nextID  atomic.Int64
	busy    atomic.Int64

	// jobs retains recent jobs for GET /jobs/{id}; doneOrder holds
	// finished ids oldest-first for retention pruning.
	jobsMu    sync.Mutex
	jobs      map[string]*job
	doneOrder []string

	// closing sheds new admissions during a drain; closeMu serializes
	// admissions against closing the batcher intake.
	closeMu sync.RWMutex
	closing bool
}

// New assembles and starts a server: the batcher loop and the worker
// pool run on return. Close stops them. The only constructor failure is
// an unusable cache directory (Config.CacheDir); every other field has
// a serviceable default.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: obsv.NewServiceMetrics(cfg.Registry),
		solveM:  obsv.NewSolveMetrics(cfg.Registry),
		started: time.Now(),
		jobs:    map[string]*job{},
	}
	if cfg.Registry == nil {
		// Keep the bundles non-nil so instrumentation stays
		// unconditional; a nil registry makes every metric a no-op.
		s.metrics = obsv.NewServiceMetrics(nil)
		s.solveM = obsv.NewSolveMetrics(nil)
	}
	s.flight = cfg.Flight
	if s.flight == nil {
		s.flight = obsv.NewFlightRecorder(cfg.FlightEntries, cfg.Registry)
	}
	s.slo = obsv.NewSLOMetrics(cfg.Registry)
	if cfg.CacheBytes >= 0 {
		store := cfg.CacheStore
		if store == nil && cfg.CacheDir != "" {
			fstore, err := resultcache.OpenFileStoreSwept(cfg.CacheDir, resultcache.SweepPolicy{
				MaxEntries: cfg.CacheMaxEntries,
				TTL:        cfg.CacheTTL,
			})
			if err != nil {
				return nil, err
			}
			store = fstore
		}
		s.cache = resultcache.New(resultcache.Config{
			MaxBytes: cfg.CacheBytes, // 0 picks the cache's 64 MiB default
			Store:    store,
			Metrics:  obsv.NewCacheMetrics(cfg.Registry),
			Events:   cfg.Events,
			Injector: cfg.Injector,
		})
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.sched = newScheduler(cfg.MaxQueuedPerTenant, cfg.TenantWeights, s.metrics, s.runBatch)
	s.batcher = newBatcher(cfg.BatchSize, cfg.BatchWait, cfg.QueueBuffer,
		s.sched.enqueue, s.metrics, cfg.Events, cfg.Injector)
	s.batcher.start()
	s.sched.start(cfg.Workers)
	return s, nil
}

// Close drains the daemon: new admissions shed, the batcher flushes its
// pending batches, and the workers finish every queued job. When ctx
// expires first, the server cancels its base context so in-flight and
// still-queued solves abort promptly, then finishes the drain.
func (s *Server) Close(ctx context.Context) error {
	s.closeMu.Lock()
	if s.closing {
		s.closeMu.Unlock()
		return errors.New("service: already closed")
	}
	s.closing = true
	s.closeMu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.batcher.stop()
		s.sched.close()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = fmt.Errorf("service: drain cut short: %w", ctx.Err())
		s.baseCancel()
		<-drained
	}
	s.baseCancel()
	return err
}

// Submit admits one solve request and returns its job. The error return
// distinguishes malformed requests (the transport answers 400) from
// sheds, which come back as a finished job with StatusShed.
func (s *Server) Submit(req *Request) (*job, error) {
	tenant, alg, stencil, err := parseRequest(req)
	if err != nil {
		return nil, err
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	// Mint the request's trace: the admission span is the root, and the
	// job's context is parented under it so every later stage (batch,
	// schedule, solve, distsolve rounds) hangs off one tree.
	tc := s.flight.NewContext(id, tenant)
	adm := tc.Start("admission")
	defer adm.End()
	j := newJob(id, tenant, alg, stencil, time.Now().Add(timeout))
	j.shards = req.Shards
	j.tc = adm.Context()
	s.remember(j)

	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closing {
		s.shed(j, "server draining", false)
		return j, nil
	}
	if !s.sched.admit(tenant) {
		s.shed(j, fmt.Sprintf("queue full for tenant %q: shedding instead of queuing unboundedly", tenant), false)
		return j, nil
	}
	s.cfg.Events.ServiceAdmit(tenant, id, s.metrics.QueueDepth.Value())
	if s.cfg.Injector != nil && s.cfg.Injector.Inject(SiteEnqueueDrop) {
		s.sched.unadmit(tenant)
		s.shed(j, "injected enqueue drop", true)
		return j, nil
	}
	if !s.batcher.enqueue(j) {
		s.sched.unadmit(tenant)
		s.shed(j, "batcher backlogged: shedding instead of queuing unboundedly", true)
		return j, nil
	}
	return j, nil
}

// shed finishes j as refused by the overload policy. When counted is
// false the scheduler has not accounted the shed yet (the job never
// held a queue slot), so the tenant's lifetime shed counter is bumped
// here.
func (s *Server) shed(j *job, reason string, counted bool) {
	if !counted {
		s.sched.shedStats(j.tenant)
	}
	j.tc.Event("service.shed", reason, 0)
	s.flight.Incident(j.tc.TraceID(), "shed: "+reason)
	s.cfg.Events.ServiceShed(j.tenant, j.id, reason)
	j.finish(Result{Status: StatusShed, Error: reason})
}

// remember registers j for GET /jobs/{id}, pruning the oldest finished
// jobs past the retention bound.
func (s *Server) remember(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.id] = j
}

// lookup returns the job registered under id.
func (s *Server) lookup(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// retire marks j finished for retention accounting and prunes the
// oldest finished jobs beyond the configured bound.
func (s *Server) retire(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.JobRetention {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// runBatch is the worker body: run the batch's jobs in order,
// accounting the busy-worker gauge.
func (s *Server) runBatch(bt *batch) {
	s.metrics.WorkersBusy.Set(s.busy.Add(1))
	defer func() { s.metrics.WorkersBusy.Set(s.busy.Add(-1)) }()
	for _, j := range bt.jobs {
		s.runJob(j)
	}
}

// runJob executes one dispatched job end to end: the deadline shed
// check, the worker-panic fault site, registry dispatch with the
// per-request tenant/deadline options, and result classification. It is
// the worker's panic boundary: a panic (a worker bug, or the injected
// worker-panic fault) fails this job alone and the worker keeps
// serving.
func (s *Server) runJob(j *job) {
	defer s.retire(j)
	defer func() {
		if rec := recover(); rec != nil {
			se := core.PanicToError(string(j.alg), rec)
			s.solveM.PanicsRecovered.Add(1)
			s.flight.Incident(j.tc.TraceID(), "worker panic: "+se.Error())
			s.cfg.Events.Fallback("service/worker", se.Error())
			j.finish(Result{Status: StatusError, Error: se.Error()})
		}
	}()

	queueWait := time.Since(j.enqueued)
	if !j.flushed.IsZero() {
		// The scheduler wait, stamped retroactively: flush-to-dispatch
		// (the batch span already covers admission-to-flush).
		j.tc.Observe("schedule", j.flushed, time.Since(j.flushed))
	}
	if j.expired(time.Now()) {
		s.sched.shedStats(j.tenant)
		s.shedExpired(j, queueWait)
		return
	}
	if s.cfg.Injector != nil {
		// A Panicking rule crashes here; the deferred recover contains it.
		core.InjectTraced(s.cfg.Injector, SiteWorkerPanic, j.tc.TraceID())
	}

	fs := j.tc.Start("solve")
	solveStart := time.Now()
	opts := &core.SolveOptions{
		Ctx:             s.baseCtx,
		Tenant:          j.tenant,
		Deadline:        j.deadline,
		Metrics:         s.solveM,
		Events:          s.cfg.Events,
		Sampler:         s.cfg.Sampler,
		Injector:        s.cfg.Injector,
		TraceCtx:        fs.Context(),
		PartialOnCancel: true,
	}
	if s.cache != nil {
		// Assigned only when non-nil: a typed-nil *resultcache.Cache in
		// the interface field would defeat Run's pointer check.
		opts.Cache = s.cache
	}
	var (
		c      core.Coloring
		winner heuristics.Algorithm
		err    error
	)
	switch {
	case j.alg == algBest:
		c, winner, err = heuristics.Best(j.stencil, opts)
	case j.shards > 1:
		// Sharded dispatch: the distributed solver reproduces the GLL /
		// GLF greedy fixpoint (parseRequest admitted nothing else), with
		// its round spans and fault events recording under opts.TraceCtx.
		ord := parallel.OrderLine
		if j.alg == "GLF" {
			ord = parallel.OrderWeightDesc
		}
		winner = j.alg
		c, err = distsolve.Solve(j.stencil, distsolve.Config{Shards: j.shards, Order: ord}, opts)
	default:
		winner = j.alg
		c, err = heuristics.Run(j.alg, j.stencil, opts)
	}
	solveWall := time.Since(solveStart)

	res := Result{
		Alg:     string(winner),
		QueueMS: float64(queueWait.Microseconds()) / 1000,
	}
	switch {
	case err == nil:
		res.Status = StatusDone
		res.MaxColor = c.MaxColor(j.stencil)
		res.Starts = c.Start
	case errors.Is(err, core.ErrPartial):
		// The deadline expired mid-portfolio: the coloring is complete
		// and valid, only the portfolio sweep was cut short.
		res.Status = StatusDone
		res.Partial = true
		res.MaxColor = c.MaxColor(j.stencil)
		res.Starts = c.Start
		res.Error = err.Error()
	default:
		res.Status = StatusError
		res.Error = err.Error()
		s.flight.Incident(j.tc.TraceID(), "solve error: "+res.Error)
	}
	fs.EndDetail(res.Status, res.MaxColor)
	j.finish(res)
	snap := j.snapshot()
	total := time.Duration(snap.WallMS * float64(time.Millisecond))
	s.metrics.RequestSeconds.Observe(total.Seconds())
	trace := j.tc.TraceID()
	s.slo.Queue.ObserveExemplar(queueWait.Seconds(), trace)
	s.slo.Solve.ObserveExemplar(solveWall.Seconds(), trace)
	s.slo.Total.ObserveExemplar(total.Seconds(), trace)
	s.sched.observeSLO(j.tenant, queueWait, solveWall, total, res.Partial)
	s.cfg.Events.ServiceDone(j.tenant, j.id, res.MaxColor, total, res.Partial)
}

// shedExpired finishes a job whose deadline passed while it waited in
// the batcher or the fair queue — the in-queue face of the shedding
// policy (the mid-solve face returns a partial result instead).
func (s *Server) shedExpired(j *job, queueWait time.Duration) {
	reason := fmt.Sprintf("deadline expired after %.1fms queued: shed instead of running a doomed solve (mid-solve expiry would return a partial result; see ErrPartial)",
		float64(queueWait.Microseconds())/1000)
	j.tc.Event("service.shed", reason, 0)
	s.flight.Incident(j.tc.TraceID(), "shed: "+reason)
	s.cfg.Events.ServiceShed(j.tenant, j.id, reason)
	j.finish(Result{Status: StatusShed, Error: reason,
		QueueMS: float64(queueWait.Microseconds()) / 1000})
}

// Stats exposes the scheduler's per-tenant accounting (for /healthz and
// the fairness tests).
func (s *Server) Stats() []TenantStats { return s.sched.stats() }

// Cache returns the server's result cache, or nil when Config.CacheBytes
// disabled it (for /healthz and the cache e2e tests).
func (s *Server) Cache() *resultcache.Cache { return s.cache }

// Flight returns the server's flight recorder (never nil) so embedders
// can mount obsv.FlightHandler or dump incidents on shutdown.
func (s *Server) Flight() *obsv.FlightRecorder { return s.flight }
