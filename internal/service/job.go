package service

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"stencilivc/internal/grid"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/obsv"
)

// Request is the JSON body of POST /solve. An instance arrives either
// structured (X, Y[, Z] plus row-major Weights) or as the ivc2d/ivc3d
// text format in Instance; exactly one of the two forms must be set.
type Request struct {
	// Tenant names the requesting tenant for fair queuing and
	// accounting; empty means the anonymous "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Alg is the registry algorithm to run ("GLL", "BDP", ...), or
	// "best" for the paper-portfolio reduction; empty defaults to
	// "best".
	Alg string `json:"alg,omitempty"`
	// X, Y, Z are the stencil dimensions of a structured instance;
	// Z == 0 means a 2D (9-pt) instance.
	X int `json:"x,omitempty"`
	// Y is the second dimension.
	Y int `json:"y,omitempty"`
	// Z is the third dimension (0 for 2D instances).
	Z int `json:"z,omitempty"`
	// Weights are the vertex weights, row-major (x fastest).
	Weights []int64 `json:"weights,omitempty"`
	// Instance is the ivc2d/ivc3d text form, an alternative to the
	// structured fields.
	Instance string `json:"instance,omitempty"`
	// TimeoutMS bounds the job in wall-clock milliseconds from
	// admission; 0 uses the server's default. The deadline is the
	// shedding policy: expiry while queued drops the job, expiry
	// mid-portfolio returns the best-so-far coloring as a partial
	// result.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Shards > 1 runs the job on the fault-tolerant distributed sharded
	// solver split into this many shards instead of the in-process
	// solver. Only the greedy orders the round protocol pins its fixpoint
	// to are shardable ("GLL", "GLF"); other algorithms — and "best" —
	// reject at admission. 0 or 1 solves in-process as before.
	Shards int `json:"shards,omitempty"`
	// Async makes POST /solve return 202 with the job id immediately;
	// poll GET /jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
}

// Job statuses, as reported in Result.Status.
const (
	// StatusQueued marks a job admitted but not yet dispatched.
	StatusQueued = "queued"
	// StatusDone marks a completed job carrying a valid coloring
	// (possibly a best-so-far partial — see Result.Partial).
	StatusDone = "done"
	// StatusError marks a failed job; Result.Error has the cause.
	StatusError = "error"
	// StatusShed marks a job dropped by the overload policy before a
	// solver ran it.
	StatusShed = "shed"
)

// Result is the JSON representation of a job, returned by POST /solve
// and GET /jobs/{id}.
type Result struct {
	// ID is the server-assigned job id.
	ID string `json:"id"`
	// Tenant is the effective tenant the job was accounted to.
	Tenant string `json:"tenant"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Alg is the algorithm that produced the coloring (the portfolio
	// winner for "best" jobs).
	Alg string `json:"alg,omitempty"`
	// MaxColor is the resulting maxcolor of a done job.
	MaxColor int64 `json:"maxcolor,omitempty"`
	// Starts is the per-vertex interval start of a done job.
	Starts []int64 `json:"starts,omitempty"`
	// Partial marks a done job whose deadline expired mid-portfolio: the
	// coloring is complete and valid, but a better algorithm might have
	// won given more time (the core.ErrPartial semantics over HTTP).
	Partial bool `json:"partial,omitempty"`
	// Error carries the failure or shed reason for error/shed jobs, and
	// the ErrPartial text for partial results.
	Error string `json:"error,omitempty"`
	// QueueMS is how long the job waited between admission and dispatch.
	QueueMS float64 `json:"queue_ms,omitempty"`
	// WallMS is the end-to-end admission-to-completion wall time.
	WallMS float64 `json:"wall_ms,omitempty"`
	// TraceID is the job's flight-recorder trace id in canonical hex —
	// paste it into GET /debug/flight?trace=... to see the request's span
	// tree. Empty when the server runs without a flight recorder.
	TraceID string `json:"trace_id,omitempty"`
}

// job is the internal unit flowing transport → batcher → scheduler →
// worker. The immutable routing fields are set at admission; the
// mutable result is guarded by mu and published by closing done.
type job struct {
	id       string
	tenant   string
	alg      heuristics.Algorithm // "best" runs the portfolio
	stencil  grid.Stencil
	deadline time.Time // zero = unbounded
	enqueued time.Time
	// shards > 1 routes the job to the distributed sharded solver.
	shards int
	// tc is the job's flight-recorder context, parented under the
	// admission span (nil when the server has no recorder); every later
	// stage records its span against it.
	tc *obsv.TraceContext
	// flushed is when the batcher flushed the job to the scheduler,
	// written by the batcher goroutine and read by the dispatching worker
	// (the scheduler mutex orders the two).
	flushed time.Time

	mu       sync.Mutex
	res      Result
	done     chan struct{}
	finished bool
}

// newJob builds the internal job for an admitted request.
func newJob(id, tenant string, alg heuristics.Algorithm, s grid.Stencil, deadline time.Time) *job {
	j := &job{
		id: id, tenant: tenant, alg: alg, stencil: s,
		deadline: deadline, enqueued: time.Now(),
		done: make(chan struct{}),
	}
	j.res = Result{ID: id, Tenant: tenant, Status: StatusQueued}
	return j
}

// snapshot returns a copy of the job's current result.
func (j *job) snapshot() Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res
}

// finish publishes the job's terminal result exactly once; later calls
// are ignored so a racing shutdown path cannot overwrite a completion.
func (j *job) finish(res Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.finished = true
	res.ID, res.Tenant = j.id, j.tenant
	res.WallMS = float64(time.Since(j.enqueued).Microseconds()) / 1000
	if t := j.tc.TraceID(); t != 0 {
		res.TraceID = obsv.FlightID(t)
	}
	j.res = res
	close(j.done)
}

// expired reports whether the job's deadline has passed at now.
func (j *job) expired(now time.Time) bool {
	return !j.deadline.IsZero() && now.After(j.deadline)
}

// batchKey groups compatible jobs: same tenant (fairness accounting
// stays per-tenant), same algorithm, same dimensionality.
func (j *job) batchKey() string {
	return j.tenant + "|" + string(j.alg) + "|" + strconv.Itoa(j.stencil.Dims())
}

// algBest is the portfolio pseudo-algorithm accepted by the job API.
const algBest = heuristics.Algorithm("best")

// parseRequest validates a Request into its routing pieces: effective
// tenant, algorithm, and stencil instance.
func parseRequest(req *Request) (tenant string, alg heuristics.Algorithm, s grid.Stencil, err error) {
	tenant = req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if strings.ContainsAny(tenant, "|\n") {
		return "", "", nil, fmt.Errorf("invalid tenant %q", tenant)
	}
	s, err = parseInstance(req)
	if err != nil {
		return "", "", nil, err
	}
	if req.Shards < 0 {
		return "", "", nil, fmt.Errorf("shards must be >= 0, got %d", req.Shards)
	}
	alg = heuristics.Algorithm(req.Alg)
	if alg == "" || alg == algBest {
		if req.Shards > 1 {
			return "", "", nil, fmt.Errorf("the %q portfolio cannot run sharded; pick GLL or GLF", algBest)
		}
		return tenant, algBest, s, nil
	}
	if req.Shards > 1 && alg != "GLL" && alg != "GLF" {
		return "", "", nil, fmt.Errorf("%s cannot run sharded: the distributed solver pins its fixpoint to the GLL/GLF greedy orders", alg)
	}
	d, ok := heuristics.Lookup(alg)
	if !ok {
		return "", "", nil, fmt.Errorf("unknown algorithm %q", alg)
	}
	if !d.Dims.Has(s.Dims()) {
		return "", "", nil, fmt.Errorf("%s is %s-only, got a %dD instance", alg, d.Dims, s.Dims())
	}
	return tenant, alg, s, nil
}

// parseInstance builds the stencil from either request form.
func parseInstance(req *Request) (grid.Stencil, error) {
	if req.Instance != "" {
		if req.X != 0 || req.Y != 0 || req.Z != 0 || len(req.Weights) != 0 {
			return nil, fmt.Errorf("give either instance text or x/y/z + weights, not both")
		}
		g2, g3, err := grid.Read(strings.NewReader(req.Instance))
		if err != nil {
			return nil, fmt.Errorf("instance: %w", err)
		}
		if g2 != nil {
			return g2, nil
		}
		return g3, nil
	}
	if req.Z > 0 {
		return grid.FromWeights3D(req.X, req.Y, req.Z, req.Weights)
	}
	return grid.FromWeights2D(req.X, req.Y, req.Weights)
}
