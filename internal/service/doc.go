// Package service is the solve daemon: it turns the batch solver
// pipeline into a long-running, multi-tenant HTTP service, layered
// strictly as transport → queue/batcher → scheduler → solver.
//
//   - The transport is an HTTP/JSON job API: POST /solve admits a job
//     (synchronous by default, async with {"async": true}), GET
//     /jobs/{id} polls one, GET /healthz reports queue and per-tenant
//     state, and /metrics serves the Prometheus registry next to it.
//   - The queue/batcher coalesces compatible small requests — same
//     tenant, algorithm, and dimensionality — into batches behind size
//     and max-wait triggers, recording per-item enqueue/flush
//     timestamps.
//   - The scheduler is a bounded worker pool with per-tenant weighted
//     fair queuing: workers always dispatch the batch of the active
//     tenant with the least weight-normalized served work, so one noisy
//     tenant cannot starve the rest.
//   - The solver layer is the existing registry dispatch
//     (heuristics.Run / heuristics.Best) with per-request
//     SolveOptions.Tenant and SolveOptions.Deadline plumbed through.
//
// Overload is shed, never queued unboundedly: admission refuses jobs
// past a per-tenant queue bound, jobs whose deadline expires while
// queued are dropped at dispatch, and jobs whose deadline expires
// mid-portfolio return the best-so-far valid coloring tagged with
// core.ErrPartial (SolveOptions.PartialOnCancel) — the PR 4 deadline
// semantics reused as the service's degradation policy.
//
// The package also exposes the service/* fault sites (enqueue-drop,
// batch-stall, worker-panic) so internal/chaos storms can drive the
// daemon through its shedding and containment paths, and the shared
// HTTP-server/signal scaffolding (NotifySignals, NewHTTPServer,
// Shutdown) that cmd/ivc builds both its -http and -serve modes on.
//
// Observability rides on the PR 3/PR 5 stack for free: obsv
// ServiceMetrics families (service_*), service.* events on the
// EventSink, and the runtime sampler during solves. See DESIGN.md §13.
package service
