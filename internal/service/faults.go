package service

import "stencilivc/internal/core"

// The service layer's fault-injection sites. Schedules built by
// internal/chaos attach to these names to storm the daemon the same way
// they storm the solvers.
const (
	// SiteEnqueueDrop fires once per admission attempt, after the
	// per-tenant queue bound passed; when it fires the job is shed as if
	// the queue were full, exercising the transport's shed path without
	// real pressure.
	SiteEnqueueDrop = core.FaultSite("service/enqueue-drop")
	// SiteBatchStall fires once per batch flush. A Stalling rule sleeps
	// the batcher loop, delaying every pending batch — the modeled
	// stalled queue that drives queued jobs past their deadlines and
	// into the shed/partial policy.
	SiteBatchStall = core.FaultSite("service/batch-stall")
	// SiteWorkerPanic fires once per job dispatch inside a scheduler
	// worker, before the solver runs. A Panicking rule crashes the
	// worker's job; the worker contains the panic into a typed
	// SolveError, fails that job alone, and keeps serving.
	SiteWorkerPanic = core.FaultSite("service/worker-panic")
)

func init() {
	core.RegisterFaultSite(SiteEnqueueDrop,
		"service admission, once per attempt: firing sheds the job as if the tenant queue were full")
	core.RegisterFaultSite(SiteBatchStall,
		"service batcher, once per flush: a Stalling rule delays pending batches toward their deadlines")
	core.RegisterFaultSite(SiteWorkerPanic,
		"service scheduler worker, once per job dispatch: a Panicking rule crashes the job; contained, the worker keeps serving")
}
