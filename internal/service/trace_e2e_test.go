package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"stencilivc/internal/chaos"
	"stencilivc/internal/core"
	"stencilivc/internal/distsolve"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/obsv"
)

// flightRec mirrors the GET /debug/flight record wire shape.
type flightRec struct {
	Trace  string  `json:"trace"`
	Span   string  `json:"span"`
	Parent string  `json:"parent"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name"`
	Detail string  `json:"detail"`
	Tenant string  `json:"tenant"`
	Job    string  `json:"job"`
	Arg    int64   `json:"arg"`
	WallMS float64 `json:"wall_ms"`
}

// flightDump mirrors the GET /debug/flight response body.
type flightDump struct {
	Entries   int         `json:"entries"`
	Records   []flightRec `json:"records"`
	Incidents []struct {
		Trace  string `json:"trace"`
		Reason string `json:"reason"`
	} `json:"incidents"`
}

// getFlight fetches and decodes GET /debug/flight with the given query.
func getFlight(t *testing.T, base, query string) flightDump {
	t.Helper()
	url := base + "/debug/flight"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flight?%s: status %d", query, resp.StatusCode)
	}
	var dump flightDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	return dump
}

// findSpan returns the first span record with the given name, or fails.
func findSpan(t *testing.T, recs []flightRec, name string) flightRec {
	t.Helper()
	for _, r := range recs {
		if r.Kind == "span" && r.Name == name {
			return r
		}
	}
	t.Fatalf("no %q span among %d records", name, len(recs))
	return flightRec{}
}

// TestServiceTraceSpanTree submits one solve through the full HTTP stack
// and asserts the acceptance-contract span tree: the result carries a
// trace id, and /debug/flight filtered by job id shows admission as the
// root with batch, schedule, and solve parented under it and the
// registry's solve:GLL span under solve — one connected tree per
// request. The tenant's /healthz SLO quantiles must be live afterwards.
func TestServiceTraceSpanTree(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2})

	code, res := postSolve(t, ts.URL, Request{
		Tenant: "trace-team", Alg: "GLL", X: 8, Y: 8, Weights: gridWeights(8),
	})
	if code != http.StatusOK || res.Status != StatusDone {
		t.Fatalf("solve: status %d/%q (%s)", code, res.Status, res.Error)
	}
	if len(res.TraceID) != 16 || res.TraceID == obsv.FlightID(0) {
		t.Fatalf("result trace id %q, want 16 hex digits", res.TraceID)
	}

	dump := getFlight(t, ts.URL, "job="+res.ID)
	for _, r := range dump.Records {
		if r.Trace != res.TraceID {
			t.Errorf("record %s/%s carries trace %s, want %s", r.Kind, r.Name, r.Trace, res.TraceID)
		}
		if r.Job != res.ID || r.Tenant != "trace-team" {
			t.Errorf("record %s/%s identity %s/%s, want %s/trace-team", r.Kind, r.Name, r.Job, r.Tenant, res.ID)
		}
	}
	adm := findSpan(t, dump.Records, "admission")
	if adm.Parent != "" {
		t.Errorf("admission span has parent %s, want none (the root)", adm.Parent)
	}
	for _, stage := range []string{"batch", "schedule", "solve"} {
		sp := findSpan(t, dump.Records, stage)
		if sp.Parent != adm.Span {
			t.Errorf("%s span parent %s, want the admission span %s", stage, sp.Parent, adm.Span)
		}
	}
	solve := findSpan(t, dump.Records, "solve")
	if solve.Detail != StatusDone || solve.Arg != res.MaxColor {
		t.Errorf("solve span detail/arg %q/%d, want %q/%d", solve.Detail, solve.Arg, StatusDone, res.MaxColor)
	}
	inner := findSpan(t, dump.Records, "solve:GLL")
	if inner.Parent != solve.Span {
		t.Errorf("solve:GLL parent %s, want the solve span %s", inner.Parent, solve.Span)
	}

	// The same tree must come back when filtering by trace id.
	byTrace := getFlight(t, ts.URL, "trace="+res.TraceID)
	if len(byTrace.Records) != len(dump.Records) {
		t.Errorf("trace filter returned %d records, job filter %d", len(byTrace.Records), len(dump.Records))
	}

	h := getHealthz(t, ts.URL)
	var st TenantStats
	for _, s := range h.Tenants {
		if s.Tenant == "trace-team" {
			st = s
		}
	}
	if st.Tenant == "" {
		t.Fatal("trace-team missing from healthz")
	}
	if st.P50MS <= 0 || st.P95MS < st.P50MS || st.P99MS < st.P95MS {
		t.Errorf("SLO quantiles p50=%v p95=%v p99=%v, want 0 < p50 <= p95 <= p99", st.P50MS, st.P95MS, st.P99MS)
	}
	if st.P50SolveMS <= 0 {
		t.Errorf("p50 solve %v, want > 0 after a completed solve", st.P50SolveMS)
	}
}

// TestServiceShardsValidation covers the admission rules for sharded
// requests: only the GLL/GLF greedy orders may shard, the portfolio may
// not, and a negative count is malformed.
func TestServiceShardsValidation(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	w4 := gridWeights(4)
	bad := []struct {
		name string
		req  Request
	}{
		{"best-sharded", Request{Shards: 2, X: 4, Y: 4, Weights: w4}},
		{"bdp-sharded", Request{Alg: "BDP", Shards: 2, X: 4, Y: 4, Weights: w4}},
		{"negative", Request{Alg: "GLL", Shards: -1, X: 4, Y: 4, Weights: w4}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postSolveRaw(t, ts.URL, tc.req)
			if code != http.StatusBadRequest {
				t.Errorf("status %d (%s), want 400", code, body)
			}
		})
	}
	// Shards: 1 is the in-process path, not an error.
	code, res := postSolve(t, ts.URL, Request{Alg: "GLL", Shards: 1, X: 4, Y: 4, Weights: w4})
	if code != http.StatusOK || res.Status != StatusDone {
		t.Fatalf("shards=1 solve: status %d/%q (%s)", code, res.Status, res.Error)
	}
}

// TestServiceShardedStormFlightScrape is the -race acceptance test: a
// chaos-stormed multi-shard solve runs through the service while
// concurrent scrapers hammer /debug/flight and /healthz. Every job must
// still reproduce the sequential GLL coloring, its trace must contain
// the distributed rounds under the request's tree, and the storm's
// fault events — carried across the halo-exchange wire — must attach to
// the originating jobs' traces.
func TestServiceShardedStormFlightScrape(t *testing.T) {
	rec := obsv.NewFlightRecorder(8192, nil)
	inj := chaos.New(20260808).
		WithProb(distsolve.SiteMsgDrop, 0.15).
		WithProb(distsolve.SiteMsgDup, 0.15).
		WithProb(distsolve.SiteMsgDelay, 0.05).
		WithFlight(rec)
	_, ts := newTestService(t, Config{Workers: 2, Flight: rec, Injector: inj})

	want, err := heuristics.Run("GLL", mustGrid2D(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantMC := want.MaxColor(mustGrid2D(t, 8))

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/debug/flight")
				if err == nil {
					resp.Body.Close()
				}
				resp, err = http.Get(ts.URL + "/healthz")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}

	const jobs = 4
	traces := make(map[string]bool, jobs)
	for i := 0; i < jobs; i++ {
		code, res := postSolve(t, ts.URL, Request{
			Tenant: "storm", Alg: "GLL", Shards: 4,
			X: 8, Y: 8, Weights: gridWeights(8), TimeoutMS: 20000,
		})
		if code != http.StatusOK || res.Status != StatusDone {
			t.Fatalf("sharded job %d: status %d/%q (%s)", i, code, res.Status, res.Error)
		}
		if res.MaxColor != wantMC {
			t.Fatalf("sharded job %d maxcolor %d, want the sequential %d", i, res.MaxColor, wantMC)
		}
		c := core.Coloring{Start: res.Starts}
		if err := c.Validate(mustGrid2D(t, 8)); err != nil {
			t.Fatalf("sharded job %d: invalid coloring under storm: %v", i, err)
		}
		if res.TraceID == "" {
			t.Fatalf("sharded job %d carries no trace id", i)
		}
		traces[res.TraceID] = true

		dump := getFlight(t, ts.URL, "trace="+res.TraceID)
		adm := findSpan(t, dump.Records, "admission")
		solve := findSpan(t, dump.Records, "solve")
		if solve.Parent != adm.Span {
			t.Errorf("job %d: solve parent %s, want admission %s", i, solve.Parent, adm.Span)
		}
		rounds := 0
		for _, r := range dump.Records {
			if r.Kind == "span" && r.Name == "dist/round" {
				rounds++
				if r.Parent != solve.Span {
					t.Errorf("job %d: dist/round parent %s, want the solve span %s", i, r.Parent, solve.Span)
				}
			}
		}
		if rounds == 0 {
			t.Errorf("job %d: no dist/round spans in its trace", i)
		}
	}
	close(stop)
	scrapers.Wait()

	// The storm fired (probability 0.15 over hundreds of halo messages);
	// its events must be attributed to the submitted jobs' traces.
	if inj.TotalFires() == 0 {
		t.Fatal("the storm never fired; the test exercised nothing")
	}
	attributed := 0
	dump := getFlight(t, ts.URL, "")
	for _, r := range dump.Records {
		if r.Kind == "event" && r.Name == "fault.injected" && traces[r.Trace] {
			attributed++
			if !strings.HasPrefix(r.Detail, "distsolve/msg-") {
				t.Errorf("fault.injected detail %q, want a distsolve/msg-* site", r.Detail)
			}
		}
	}
	if attributed == 0 {
		t.Errorf("%d faults fired but none recorded under the jobs' traces", inj.TotalFires())
	}
}
