package service

import (
	"fmt"
	"testing"
	"time"

	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
)

// testGrid builds an n×n 9-pt instance with small varied weights.
func testGrid(t testing.TB, n int) grid.Stencil {
	t.Helper()
	w := make([]int64, n*n)
	for i := range w {
		w[i] = int64(i%7 + 1)
	}
	g, err := grid.FromWeights2D(n, n, w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testJob builds a job for batcher/scheduler unit tests.
func testJob(t testing.TB, id, tenant string, g grid.Stencil) *job {
	t.Helper()
	return newJob(id, tenant, "GLL", g, time.Time{})
}

// collectBatch waits for one flushed batch.
func collectBatch(t *testing.T, ch <-chan *batch) *batch {
	t.Helper()
	select {
	case bt := <-ch:
		return bt
	case <-time.After(5 * time.Second):
		t.Fatal("no batch flushed within 5s")
		return nil
	}
}

func TestBatcherSizeTrigger(t *testing.T) {
	flushed := make(chan *batch, 8)
	b := newBatcher(3, time.Hour, 16, func(bt *batch) { flushed <- bt },
		obsv.NewServiceMetrics(nil), nil, nil)
	b.start()
	defer b.stop()
	g := testGrid(t, 2)
	for i := 0; i < 3; i++ {
		if !b.enqueue(testJob(t, fmt.Sprintf("j%d", i), "t", g)) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	// maxWait is an hour, so only the size trigger can flush this.
	bt := collectBatch(t, flushed)
	if len(bt.jobs) != 3 {
		t.Fatalf("size-triggered batch has %d jobs, want 3", len(bt.jobs))
	}
}

func TestBatcherMaxWaitTrigger(t *testing.T) {
	flushed := make(chan *batch, 8)
	b := newBatcher(100, 10*time.Millisecond, 16, func(bt *batch) { flushed <- bt },
		obsv.NewServiceMetrics(nil), nil, nil)
	b.start()
	defer b.stop()
	g := testGrid(t, 2)
	b.enqueue(testJob(t, "j0", "t", g))
	b.enqueue(testJob(t, "j1", "t", g))
	bt := collectBatch(t, flushed)
	if len(bt.jobs) != 2 {
		t.Fatalf("wait-triggered batch has %d jobs, want 2", len(bt.jobs))
	}
}

func TestBatcherKeyPartition(t *testing.T) {
	flushed := make(chan *batch, 8)
	b := newBatcher(100, 10*time.Millisecond, 16, func(bt *batch) { flushed <- bt },
		obsv.NewServiceMetrics(nil), nil, nil)
	b.start()
	defer b.stop()
	g := testGrid(t, 2)
	b.enqueue(testJob(t, "j0", "alpha", g))
	b.enqueue(testJob(t, "j1", "beta", g))
	b1, b2 := collectBatch(t, flushed), collectBatch(t, flushed)
	if b1.key == b2.key {
		t.Fatalf("different tenants coalesced into one key %q", b1.key)
	}
	if len(b1.jobs) != 1 || len(b2.jobs) != 1 {
		t.Fatalf("batch sizes %d/%d, want 1/1", len(b1.jobs), len(b2.jobs))
	}
}

func TestBatcherImmediateMode(t *testing.T) {
	flushed := make(chan *batch, 8)
	b := newBatcher(1, time.Hour, 16, func(bt *batch) { flushed <- bt },
		obsv.NewServiceMetrics(nil), nil, nil)
	b.start()
	defer b.stop()
	g := testGrid(t, 2)
	b.enqueue(testJob(t, "j0", "t", g))
	bt := collectBatch(t, flushed)
	if len(bt.jobs) != 1 {
		t.Fatalf("immediate-mode batch has %d jobs, want 1", len(bt.jobs))
	}
}

func TestBatcherStopFlushesPending(t *testing.T) {
	flushed := make(chan *batch, 8)
	b := newBatcher(100, time.Hour, 16, func(bt *batch) { flushed <- bt },
		obsv.NewServiceMetrics(nil), nil, nil)
	b.start()
	g := testGrid(t, 2)
	b.enqueue(testJob(t, "j0", "t", g))
	b.enqueue(testJob(t, "j1", "t", g))
	b.stop()
	bt := collectBatch(t, flushed)
	if len(bt.jobs) != 2 {
		t.Fatalf("drain batch has %d jobs, want 2", len(bt.jobs))
	}
}

func TestBatcherBackpressure(t *testing.T) {
	// Never start the loop: the intake buffer is the only capacity, so
	// the second enqueue must be refused rather than block.
	b := newBatcher(8, time.Millisecond, 1, func(*batch) {},
		obsv.NewServiceMetrics(nil), nil, nil)
	g := testGrid(t, 2)
	if !b.enqueue(testJob(t, "j0", "t", g)) {
		t.Fatal("first enqueue refused with an empty buffer")
	}
	if b.enqueue(testJob(t, "j1", "t", g)) {
		t.Fatal("second enqueue accepted past a full buffer")
	}
}
