package service

import (
	"sync"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/obsv"
)

// batch is one coalesced group of compatible jobs, the scheduler's unit
// of dispatch.
type batch struct {
	key    string
	jobs   []*job
	oldest time.Time // enqueue time of the batch's first job
}

// work returns the batch's solve work in vertices, the unit the fair
// queue charges tenants in.
func (b *batch) work() float64 {
	var w float64
	for _, j := range b.jobs {
		w += float64(j.stencil.Len())
	}
	return w
}

// batcher coalesces admitted jobs into batches behind two triggers: a
// batch flushes as soon as it reaches maxSize jobs, or when its oldest
// job has waited maxWait. One goroutine owns the pending table, so the
// trigger logic needs no locks; jobs arrive over a bounded channel and
// batches leave through the flush callback (the scheduler's enqueue).
//
// The flush path consults the service/batch-stall fault site, so a
// chaos schedule can model a stalled queue: a Stalling rule sleeps the
// batcher loop, delaying every pending batch and driving queued jobs
// into the deadline-shed path downstream.
type batcher struct {
	in      chan *job
	flush   func(*batch)
	maxSize int
	maxWait time.Duration

	metrics  *obsv.ServiceMetrics
	events   *obsv.EventSink
	injector core.Injector

	wg sync.WaitGroup
}

// newBatcher builds a batcher delivering coalesced batches to flush;
// call start to run its loop and stop to drain it.
func newBatcher(maxSize int, maxWait time.Duration, buffer int, flush func(*batch),
	m *obsv.ServiceMetrics, ev *obsv.EventSink, inj core.Injector) *batcher {

	if maxSize < 1 {
		maxSize = 1
	}
	if buffer < 1 {
		buffer = 1
	}
	return &batcher{
		in: make(chan *job, buffer), flush: flush,
		maxSize: maxSize, maxWait: maxWait,
		metrics: m, events: ev, injector: inj,
	}
}

// start launches the coalescing loop.
func (b *batcher) start() {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.run()
	}()
}

// stop closes the intake and waits for the loop to flush every pending
// batch. The caller must guarantee no further enqueue calls.
func (b *batcher) stop() {
	close(b.in)
	b.wg.Wait()
}

// enqueue hands a job to the coalescing loop without blocking; it
// reports false when the intake buffer is full (a backlogged batcher),
// in which case the caller sheds the job instead of queuing unboundedly.
func (b *batcher) enqueue(j *job) bool {
	select {
	case b.in <- j:
		return true
	default:
		return false
	}
}

// run is the coalescing loop: a pending table keyed by batch key and a
// single timer armed for the earliest max-wait expiry.
func (b *batcher) run() {
	pending := map[string]*batch{}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false

	rearm := func() {
		if armed {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			armed = false
		}
		var earliest time.Time
		for _, bt := range pending {
			if earliest.IsZero() || bt.oldest.Before(earliest) {
				earliest = bt.oldest
			}
		}
		if earliest.IsZero() {
			return
		}
		d := time.Until(earliest.Add(b.maxWait))
		if d < 0 {
			d = 0
		}
		timer.Reset(d)
		armed = true
	}

	for {
		select {
		case j, ok := <-b.in:
			if !ok {
				for key, bt := range pending {
					delete(pending, key)
					b.doFlush(bt)
				}
				return
			}
			// Immediate mode: no coalescing window configured.
			if b.maxSize == 1 || b.maxWait <= 0 {
				b.doFlush(&batch{key: j.batchKey(), jobs: []*job{j}, oldest: j.enqueued})
				continue
			}
			key := j.batchKey()
			bt := pending[key]
			if bt == nil {
				bt = &batch{key: key, oldest: time.Now()}
				pending[key] = bt
			}
			bt.jobs = append(bt.jobs, j)
			if len(bt.jobs) >= b.maxSize {
				delete(pending, key)
				b.doFlush(bt)
			}
			rearm()
		case <-timer.C:
			armed = false
			now := time.Now()
			for key, bt := range pending {
				if now.Sub(bt.oldest) >= b.maxWait {
					delete(pending, key)
					b.doFlush(bt)
				}
			}
			rearm()
		}
	}
}

// doFlush records the batch's metrics and events, consults the
// batch-stall fault site, and hands the batch downstream.
func (b *batcher) doFlush(bt *batch) {
	if b.injector != nil {
		// A Stalling rule sleeps here, delaying this and every pending
		// batch — the modeled "stalled queue" fault.
		b.injector.Inject(SiteBatchStall)
	}
	now := time.Now()
	b.metrics.Batches.Add(1)
	b.metrics.BatchSize.ObserveInt(int64(len(bt.jobs)))
	for _, j := range bt.jobs {
		b.metrics.BatchWaitSeconds.Observe(now.Sub(j.enqueued).Seconds())
		// Stamp the coalescing wait as a retroactive "batch" span and
		// mark the flush time for the dispatcher's "schedule" span (the
		// scheduler mutex orders this write against the worker's read).
		j.flushed = now
		j.tc.Observe("batch", j.enqueued, now.Sub(j.enqueued))
	}
	b.events.ServiceBatch(bt.key, len(bt.jobs), now.Sub(bt.oldest))
	b.flush(bt)
}
