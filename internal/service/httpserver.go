package service

import (
	"context"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ShutdownGrace bounds how long an HTTP server drains in-flight
// requests on shutdown before connections are cut.
const ShutdownGrace = 5 * time.Second

// NotifySignals returns a context canceled by SIGINT/SIGTERM, shared by
// the daemon and the one-shot CLI. Unregistering the handler the moment
// the context cancels — via context.AfterFunc, rather than in the
// deferred stop at exit — restores Go's default signal handling, so a
// second ^C terminates immediately even if an exit path stalls (a drain
// that hangs, a solver ignoring ctx).
func NotifySignals(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, stop)
	return ctx, stop
}

// NewHTTPServer wraps h in a slowloris-hardened http.Server: a client
// that stalls mid-headers or mid-read cannot pin a connection open
// forever. WriteTimeout is generous because /debug/pprof/profile
// streams for up to 30s by default and long synchronous solves hold
// their response open.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Listen binds addr for an HTTP server, so callers can print the
// resolved address (":0" picks a free port) before serving.
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// ShutdownHTTP drains srv within ShutdownGrace.
func ShutdownHTTP(srv *http.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
	defer cancel()
	return srv.Shutdown(ctx)
}
