package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"stencilivc/internal/obsv"
	"stencilivc/internal/resultcache"
)

// maxRequestBytes bounds a POST /solve body; a 27-pt instance of a few
// million weights fits comfortably, a hostile body does not.
const maxRequestBytes = 32 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /solve        submit a job (sync by default, async with "async": true)
//	GET  /jobs/{id}    poll a job's result
//	GET  /healthz      liveness plus per-tenant scheduler accounting
//	GET  /metrics      Prometheus exposition of the configured registry
//	GET  /debug/flight flight-recorder dump (filter by trace/tenant/job)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /debug/flight", obsv.FlightHandler(s.flight))
	if s.cfg.Registry != nil {
		mux.Handle("GET /metrics", obsv.Handler(s.cfg.Registry))
	}
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// statusCode maps a terminal job result to its HTTP status: done (full
// or partial) is 200, shed is 503 (retry later — the overload policy
// refused it), a deadline failure is 504, anything else 500.
func statusCode(res Result) int {
	switch res.Status {
	case StatusDone:
		return http.StatusOK
	case StatusShed:
		return http.StatusServiceUnavailable
	case StatusError:
		if strings.Contains(res.Error, "deadline exceeded") {
			return http.StatusGatewayTimeout
		}
		return http.StatusInternalServerError
	default: // still queued
		return http.StatusAccepted
	}
}

// handleSolve is POST /solve: decode, admit, and either wait for the
// result (sync) or return 202 with the job id (async).
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, err := s.Submit(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Async {
		snap := j.snapshot()
		writeJSON(w, statusCode(snap), snap)
		return
	}
	select {
	case <-j.done:
		snap := j.snapshot()
		writeJSON(w, statusCode(snap), snap)
	case <-r.Context().Done():
		// The client went away; the job keeps running and stays pollable.
		writeJSON(w, http.StatusAccepted, j.snapshot())
	}
}

// handleJob is GET /jobs/{id}: report a job's current snapshot.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	snap := j.snapshot()
	writeJSON(w, statusCode(snap), snap)
}

// healthz is the GET /healthz body.
type healthz struct {
	// Status is "ok" while the daemon accepts jobs, "draining" during
	// shutdown.
	Status string `json:"status"`
	// UptimeS is seconds since the server started.
	UptimeS float64 `json:"uptime_s"`
	// Workers is the configured worker-pool size.
	Workers int `json:"workers"`
	// Busy is the number of workers currently running a batch.
	Busy int64 `json:"busy"`
	// Tenants is the per-tenant scheduler accounting.
	Tenants []TenantStats `json:"tenants"`
	// Cache is the result cache's accounting — totals plus per-tenant
	// hit/miss counts — or null when caching is disabled.
	Cache *resultcache.Stats `json:"cache,omitempty"`
}

// handleHealthz is GET /healthz: liveness plus scheduler accounting.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.closeMu.RLock()
	status := "ok"
	if s.closing {
		status = "draining"
	}
	s.closeMu.RUnlock()
	h := healthz{
		Status:  status,
		UptimeS: time.Since(s.started).Seconds(),
		Workers: s.cfg.Workers,
		Busy:    s.busy.Load(),
		Tenants: s.Stats(),
	}
	if s.cache != nil {
		cs := s.cache.Snapshot()
		h.Cache = &cs
	}
	writeJSON(w, http.StatusOK, h)
}
