package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stencilivc/internal/chaos"
	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/obsv"
)

// newTestService boots a server plus an httptest transport and tears
// both down with the test.
func newTestService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Close(ctx) // double-close in tests that Close explicitly is fine
	})
	return srv, ts
}

// postSolve POSTs req to the test server and decodes the Result.
func postSolve(t *testing.T, base string, req Request) (int, Result) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode /solve response: %v", err)
	}
	return resp.StatusCode, res
}

// pollJob polls GET /jobs/{id} until the job leaves the queue.
func pollJob(t *testing.T, base, id string) (int, Result) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /jobs/%s: %v", id, err)
		}
		if res.Status != StatusQueued {
			return resp.StatusCode, res
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still queued after 15s", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// getHealthz fetches and decodes GET /healthz.
func getHealthz(t *testing.T, base string) healthz {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// gridWeights returns the weights of an n×n test grid as a fresh slice
// (the request form of testGrid).
func gridWeights(n int) []int64 {
	w := make([]int64, n*n)
	for i := range w {
		w[i] = int64(i%7 + 1)
	}
	return w
}

// TestServiceEquivalence checks the acceptance contract that a solve
// through the full transport → batcher → scheduler stack returns
// exactly what a direct heuristics.Run/Best call returns, in 2D and 3D,
// and that the returned starts form a valid coloring.
func TestServiceEquivalence(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2})

	w3 := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	g2, err := grid.FromWeights2D(8, 7, gridWeights(8)[:56])
	if err != nil {
		t.Fatal(err)
	}
	g3, err := grid.FromWeights3D(3, 3, 2, w3)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		req  Request
		s    grid.Stencil
	}{
		{"GLL-2D", Request{Alg: "GLL", X: 8, Y: 7, Weights: gridWeights(8)[:56]}, g2},
		{"BDP-2D", Request{Alg: "BDP", X: 8, Y: 7, Weights: gridWeights(8)[:56]}, g2},
		{"best-2D", Request{Alg: "best", X: 8, Y: 7, Weights: gridWeights(8)[:56]}, g2},
		{"GLL-3D", Request{Alg: "GLL", X: 3, Y: 3, Z: 2, Weights: w3}, g3},
		{"best-3D", Request{X: 3, Y: 3, Z: 2, Weights: w3}, g3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want int64
			if tc.req.Alg == "" || tc.req.Alg == "best" {
				c, _, err := heuristics.Best(tc.s, nil)
				if err != nil {
					t.Fatal(err)
				}
				want = c.MaxColor(tc.s)
			} else {
				c, err := heuristics.Run(heuristics.Algorithm(tc.req.Alg), tc.s, nil)
				if err != nil {
					t.Fatal(err)
				}
				want = c.MaxColor(tc.s)
			}
			code, res := postSolve(t, ts.URL, tc.req)
			if code != http.StatusOK || res.Status != StatusDone {
				t.Fatalf("status %d / %q (%s), want 200 done", code, res.Status, res.Error)
			}
			if res.MaxColor != want {
				t.Fatalf("service maxcolor %d != direct %d", res.MaxColor, want)
			}
			c := core.Coloring{Start: res.Starts}
			if err := c.Validate(tc.s); err != nil {
				t.Fatalf("service returned an invalid coloring: %v", err)
			}
		})
	}
}

// TestServiceConcurrentTenants is the -race fairness test: several
// tenants hammer the API concurrently over HTTP; every job must finish
// with a valid coloring (no starvation, no sheds below the bounds) and
// the scheduler's accounting must add up.
func TestServiceConcurrentTenants(t *testing.T) {
	reg := obsv.NewRegistry()
	_, ts := newTestService(t, Config{
		Workers:   4,
		BatchSize: 4,
		BatchWait: 2 * time.Millisecond,
		Registry:  reg,
		TenantWeights: map[string]float64{
			"beta": 2,
		},
	})
	tenants := []string{"alpha", "beta", "gamma"}
	const jobsPer = 6

	want8, err := heuristics.Run("GLL", mustGrid2D(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantMC := want8.MaxColor(mustGrid2D(t, 8))

	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*jobsPer)
	for _, tenant := range tenants {
		for i := 0; i < jobsPer; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				code, res := postSolve(t, ts.URL, Request{
					Tenant: tenant, Alg: "GLL", X: 8, Y: 8, Weights: gridWeights(8),
				})
				if code != http.StatusOK || res.Status != StatusDone {
					errs <- fmt.Errorf("tenant %s: status %d/%q: %s", tenant, code, res.Status, res.Error)
					return
				}
				if res.MaxColor != wantMC {
					errs <- fmt.Errorf("tenant %s: maxcolor %d, want %d", tenant, res.MaxColor, wantMC)
					return
				}
				c := core.Coloring{Start: res.Starts}
				if err := c.Validate(mustGrid2D(t, 8)); err != nil {
					errs <- fmt.Errorf("tenant %s: invalid coloring: %v", tenant, err)
				}
			}(tenant)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	h := getHealthz(t, ts.URL)
	if h.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", h.Status)
	}
	seen := map[string]TenantStats{}
	for _, st := range h.Tenants {
		seen[st.Tenant] = st
	}
	for _, tenant := range tenants {
		st, ok := seen[tenant]
		if !ok {
			t.Fatalf("tenant %s missing from healthz accounting", tenant)
		}
		if st.Admitted != jobsPer || st.Shed != 0 || st.Queued != 0 {
			t.Errorf("tenant %s stats %+v, want admitted=%d shed=0 queued=0", tenant, st, jobsPer)
		}
		if st.ServedWork == 0 {
			t.Errorf("tenant %s has zero served work after %d solves", tenant, jobsPer)
		}
	}
	if seen["beta"].Weight != 2 {
		t.Errorf("beta weight %v, want the configured 2", seen["beta"].Weight)
	}
}

// mustGrid2D builds the canonical 8×8 comparison grid.
func mustGrid2D(t *testing.T, n int) grid.Stencil {
	t.Helper()
	g, err := grid.FromWeights2D(n, n, gridWeights(n))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestServiceBatchStallShedsExpired storms the batcher with an injected
// stall on every flush: jobs pile up behind the stalled queue, their
// deadlines pass, and the dispatch-time check sheds them instead of
// burning workers on doomed solves. The front of the queue, stalled but
// not yet expired, must still complete.
func TestServiceBatchStallShedsExpired(t *testing.T) {
	inj := chaos.New(7)
	inj.EveryNth(SiteBatchStall, 1, 0).Stalling(SiteBatchStall, 60*time.Millisecond)
	_, ts := newTestService(t, Config{
		Workers:   2,
		BatchSize: 1, // immediate mode: one stalled flush per job
		Injector:  inj,
	})

	const jobs = 8
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		code, res := postSolve(t, ts.URL, Request{
			Tenant: "storm", Alg: "GLL", X: 4, Y: 4, Weights: gridWeights(4),
			TimeoutMS: 120, Async: true,
		})
		if code != http.StatusAccepted {
			t.Fatalf("async submit %d: status %d, want 202", i, code)
		}
		ids = append(ids, res.ID)
	}

	done, shed := 0, 0
	for _, id := range ids {
		code, res := pollJob(t, ts.URL, id)
		switch res.Status {
		case StatusDone:
			done++
		case StatusShed:
			shed++
			if code != http.StatusServiceUnavailable {
				t.Errorf("shed job %s returned %d, want 503", id, code)
			}
			if !strings.Contains(res.Error, "deadline expired") {
				t.Errorf("shed job %s reason %q, want a deadline-expired shed", id, res.Error)
			}
		default:
			t.Errorf("job %s ended %q (%s), want done or shed", id, res.Status, res.Error)
		}
	}
	// Flush i completes ~60(i+1)ms after submission against a 120ms
	// deadline: the first job must survive, the tail must shed.
	if done == 0 {
		t.Error("every job shed; the front of the stalled queue should still complete")
	}
	if shed < 3 {
		t.Errorf("only %d jobs shed under the stall storm, want at least 3", shed)
	}
	h := getHealthz(t, ts.URL)
	for _, st := range h.Tenants {
		if st.Tenant == "storm" && int(st.Shed) != shed {
			t.Errorf("healthz shed=%d, observed %d shed jobs", st.Shed, shed)
		}
	}
}

// TestServiceDeadlinePartial drives a "best" portfolio job into its
// deadline mid-run: at least one algorithm completes, the rest are cut
// off, and the service answers 200 with the best-so-far coloring marked
// partial (core.ErrPartial surfaced over HTTP) rather than failing the
// job.
func TestServiceDeadlinePartial(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	for _, n := range []int{80, 120, 180, 260} {
		g, err := grid.FromWeights2D(n, n, gridWeights(n))
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		if _, err := heuristics.Run("GLL", g, nil); err != nil {
			t.Fatal(err)
		}
		gll := time.Since(t0)
		t0 = time.Now()
		if _, _, err := heuristics.Best(g, nil); err != nil {
			t.Fatal(err)
		}
		full := time.Since(t0)

		// Budget enough for GLL with margin but well under the full
		// portfolio, so the deadline lands mid-sweep. If this machine
		// runs the whole portfolio too close to the GLL budget, grow the
		// instance and try again.
		timeout := 3*gll + 5*time.Millisecond
		if full < 4*timeout {
			continue
		}
		code, res := postSolve(t, ts.URL, Request{
			Alg: "best", X: n, Y: n, Weights: gridWeights(n),
			TimeoutMS: timeout.Milliseconds(),
		})
		if res.Status != StatusDone || !res.Partial {
			// Timing hiccup (the portfolio finished, or GLL overran);
			// try a larger instance.
			continue
		}
		if code != http.StatusOK {
			t.Fatalf("partial result returned %d, want 200", code)
		}
		if !strings.Contains(res.Error, "algorithms completed") {
			t.Errorf("partial result error %q, want the ErrPartial text", res.Error)
		}
		c := core.Coloring{Start: res.Starts}
		if err := c.Validate(g); err != nil {
			t.Fatalf("partial coloring invalid: %v", err)
		}
		return
	}
	t.Fatal("no instance size produced a mid-portfolio deadline partial")
}

// TestServiceWorkerPanicContained injects a panic into the first
// dispatched job: that job fails with a typed error, the worker
// survives, and the next job solves normally.
func TestServiceWorkerPanicContained(t *testing.T) {
	inj := chaos.New(3)
	inj.OnNth(SiteWorkerPanic, 1).Panicking(SiteWorkerPanic)
	_, ts := newTestService(t, Config{Workers: 1, Injector: inj})

	code, res := postSolve(t, ts.URL, Request{Alg: "GLL", X: 4, Y: 4, Weights: gridWeights(4)})
	if code != http.StatusInternalServerError || res.Status != StatusError {
		t.Fatalf("panicked job: status %d/%q, want 500 error", code, res.Status)
	}
	if res.Error == "" {
		t.Fatal("panicked job carries no error text")
	}
	code, res = postSolve(t, ts.URL, Request{Alg: "GLL", X: 4, Y: 4, Weights: gridWeights(4)})
	if code != http.StatusOK || res.Status != StatusDone {
		t.Fatalf("job after contained panic: status %d/%q (%s), want 200 done", code, res.Status, res.Error)
	}
}

// TestServiceEnqueueDrop injects a drop between admission and the
// batcher: the job is shed (503), accounting stays consistent, and the
// next job goes through.
func TestServiceEnqueueDrop(t *testing.T) {
	inj := chaos.New(5)
	inj.OnNth(SiteEnqueueDrop, 1)
	_, ts := newTestService(t, Config{Workers: 1, Injector: inj})

	code, res := postSolve(t, ts.URL, Request{Alg: "GLL", X: 4, Y: 4, Weights: gridWeights(4)})
	if code != http.StatusServiceUnavailable || res.Status != StatusShed {
		t.Fatalf("dropped job: status %d/%q, want 503 shed", code, res.Status)
	}
	if !strings.Contains(res.Error, "injected enqueue drop") {
		t.Errorf("drop reason %q, want the injected-drop reason", res.Error)
	}
	code, res = postSolve(t, ts.URL, Request{Alg: "GLL", X: 4, Y: 4, Weights: gridWeights(4)})
	if code != http.StatusOK || res.Status != StatusDone {
		t.Fatalf("job after drop: status %d/%q (%s), want 200 done", code, res.Status, res.Error)
	}
	h := getHealthz(t, ts.URL)
	if len(h.Tenants) != 1 || h.Tenants[0].Shed != 1 || h.Tenants[0].Admitted != 2 {
		t.Fatalf("accounting %+v, want admitted=2 shed=1", h.Tenants)
	}
}

// TestServiceQueueBoundSheds fills a tenant's queue bound behind a
// stalled batcher: admissions past the bound answer 503 immediately —
// the service sheds under overload instead of queuing unboundedly.
func TestServiceQueueBoundSheds(t *testing.T) {
	inj := chaos.New(11)
	inj.EveryNth(SiteBatchStall, 1, 0).Stalling(SiteBatchStall, 200*time.Millisecond)
	_, ts := newTestService(t, Config{
		Workers: 1, BatchSize: 1, MaxQueuedPerTenant: 2, Injector: inj,
	})
	full := 0
	for i := 0; i < 4; i++ {
		code, res := postSolve(t, ts.URL, Request{
			Alg: "GLL", X: 4, Y: 4, Weights: gridWeights(4), Async: true, TimeoutMS: 5000,
		})
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(res.Error, "queue full") {
				t.Errorf("shed reason %q, want queue full", res.Error)
			}
			full++
		}
	}
	if full == 0 {
		t.Fatal("4 rapid submissions against a bound of 2 never shed")
	}
}

// TestServiceHTTPValidation covers the transport's error mapping.
func TestServiceHTTPValidation(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	cases := []struct {
		name string
		req  Request
	}{
		{"unknown-alg", Request{Alg: "NOPE", X: 2, Y: 2, Weights: []int64{1, 2, 3, 4}}},
		{"dims-mismatch", Request{Alg: "BDL", X: 2, Y: 2, Weights: []int64{1, 2, 3, 4}}},
		{"bad-tenant", Request{Tenant: "a|b", Alg: "GLL", X: 2, Y: 2, Weights: []int64{1, 2, 3, 4}}},
		{"both-forms", Request{Alg: "GLL", X: 2, Y: 2, Weights: []int64{1, 2, 3, 4}, Instance: "ivc2d 1 1\n1\n"}},
		{"bad-grid", Request{Alg: "GLL", X: 3, Y: 2, Weights: []int64{1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _ := postSolveRaw(t, ts.URL, tc.req)
			if code != http.StatusBadRequest {
				t.Errorf("status %d, want 400", code)
			}
		})
	}

	resp, err = http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// postSolveRaw POSTs and returns only the status and raw body (for
// requests expected to fail before a Result exists).
func postSolveRaw(t *testing.T, base string, req Request) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// TestServiceInstanceTextForm accepts the ivc2d text format as an
// alternative to structured weights.
func TestServiceInstanceTextForm(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	code, res := postSolve(t, ts.URL, Request{
		Alg: "GLL", Instance: "ivc2d 2 2\n1 2\n3 4\n",
	})
	if code != http.StatusOK || res.Status != StatusDone {
		t.Fatalf("text-form solve: status %d/%q (%s)", code, res.Status, res.Error)
	}
	if len(res.Starts) != 4 {
		t.Fatalf("got %d starts, want 4", len(res.Starts))
	}
}

// TestServiceDrainingSheds verifies shutdown behavior: after Close the
// daemon answers /healthz with "draining" and sheds new submissions
// instead of accepting work it will not run.
func TestServiceDrainingSheds(t *testing.T) {
	srv, ts := newTestService(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	h := getHealthz(t, ts.URL)
	if h.Status != "draining" {
		t.Fatalf("healthz after Close: %q, want draining", h.Status)
	}
	code, res := postSolve(t, ts.URL, Request{Alg: "GLL", X: 2, Y: 2, Weights: []int64{1, 2, 3, 4}})
	if code != http.StatusServiceUnavailable || res.Status != StatusShed {
		t.Fatalf("submit while draining: status %d/%q, want 503 shed", code, res.Status)
	}
	if !strings.Contains(res.Error, "draining") {
		t.Errorf("shed reason %q, want draining", res.Error)
	}
}
