package service

import (
	"sort"
	"sync"
	"time"

	"stencilivc/internal/obsv"
)

// tenantState is one tenant's scheduler bookkeeping.
type tenantState struct {
	name   string
	weight float64

	queue  []*batch // FIFO of flushed batches awaiting a worker
	queued int64    // jobs admitted but not yet dispatched (bound + gauge)
	served float64  // weight-normalized work dispatched so far

	admitted int64 // jobs admitted past the queue bound, lifetime
	shed     int64 // jobs refused or dropped by the overload policy, lifetime
	partials int64 // completed jobs that returned a best-so-far partial

	// slo holds the tenant's queue-wait / solve / total latency
	// histograms backing the /healthz quantile surface. The histograms
	// are internally atomic: observations happen outside mu.
	slo *obsv.TenantSLO
}

// TenantStats is the externally visible accounting of one tenant,
// reported by GET /healthz and read by the fairness tests.
type TenantStats struct {
	// Tenant is the tenant name.
	Tenant string `json:"tenant"`
	// Weight is the tenant's fair-share weight.
	Weight float64 `json:"weight"`
	// Queued is the number of admitted jobs not yet dispatched.
	Queued int64 `json:"queued"`
	// Admitted counts jobs admitted past the queue bound, lifetime.
	Admitted int64 `json:"admitted"`
	// Shed counts jobs refused or dropped by the overload policy,
	// lifetime.
	Shed int64 `json:"shed"`
	// ServedWork is the weight-normalized solve work (vertices/weight)
	// dispatched to workers so far.
	ServedWork float64 `json:"served_work"`
	// Partial counts completed jobs that returned a best-so-far partial
	// coloring, lifetime.
	Partial int64 `json:"partial,omitempty"`
	// ShedRatio is shed / (admitted + shed) — the fraction of offered
	// jobs the overload policy refused.
	ShedRatio float64 `json:"shed_ratio,omitempty"`
	// PartialRatio is partial / completed — the fraction of finished
	// jobs that missed their deadline mid-solve.
	PartialRatio float64 `json:"partial_ratio,omitempty"`
	// P50MS, P95MS, and P99MS are the tenant's end-to-end
	// (admission-to-completion) latency quantiles in milliseconds.
	P50MS float64 `json:"p50_ms,omitempty"`
	// P95MS is the 95th-percentile end-to-end latency.
	P95MS float64 `json:"p95_ms,omitempty"`
	// P99MS is the 99th-percentile end-to-end latency.
	P99MS float64 `json:"p99_ms,omitempty"`
	// P50QueueMS is the median admission-to-dispatch wait.
	P50QueueMS float64 `json:"p50_queue_ms,omitempty"`
	// P50SolveMS is the median solver wall time.
	P50SolveMS float64 `json:"p50_solve_ms,omitempty"`
}

// scheduler is the bounded worker pool with per-tenant weighted fair
// queuing. Flushed batches enter per-tenant FIFOs; each free worker
// dispatches the front batch of the active tenant with the least
// weight-normalized served work, so throughput divides by weight among
// tenants with pending work and an idle tenant's return preempts a
// flooding one.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	closed  bool

	maxQueued int64 // per-tenant bound on admitted-but-undispatched jobs
	weights   map[string]float64

	metrics *obsv.ServiceMetrics
	run     func(*batch) // worker body, supplied by the server
	wg      sync.WaitGroup
}

// newScheduler builds the scheduler; start launches its workers.
func newScheduler(maxQueued int, weights map[string]float64,
	m *obsv.ServiceMetrics, run func(*batch)) *scheduler {

	if maxQueued < 1 {
		maxQueued = 1
	}
	s := &scheduler{
		tenants:   map[string]*tenantState{},
		maxQueued: int64(maxQueued),
		weights:   weights,
		metrics:   m,
		run:       run,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// tenant returns (creating on first use) the named tenant's state.
// Callers hold mu.
func (s *scheduler) tenant(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		w := s.weights[name]
		if w <= 0 {
			w = 1
		}
		ts = &tenantState{name: name, weight: w, slo: obsv.NewTenantSLO()}
		s.tenants[name] = ts
	}
	return ts
}

// admit reserves a queue slot for one job of tenant name; it reports
// false when the tenant's bound is hit, in which case the transport
// sheds the job. Accounting (admitted/shed counters, queue-depth gauge)
// happens here so the transport stays a thin layer.
func (s *scheduler) admit(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenant(name)
	if ts.queued >= s.maxQueued {
		ts.shed++
		s.metrics.Shed.Add(1)
		return false
	}
	ts.queued++
	ts.admitted++
	s.metrics.Admitted.Add(1)
	s.metrics.QueueDepth.Set(s.totalQueuedLocked())
	return true
}

// unadmit releases a reserved queue slot for a job shed between
// admission and dispatch (batcher backlog, injected enqueue drop). The
// admit stays counted — both counters are monotone — and the job counts
// as shed on top.
func (s *scheduler) unadmit(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenant(name)
	ts.queued--
	ts.shed++
	s.metrics.Shed.Add(1)
	s.metrics.QueueDepth.Set(s.totalQueuedLocked())
}

// totalQueuedLocked sums admitted-but-undispatched jobs over tenants.
// Callers hold mu.
func (s *scheduler) totalQueuedLocked() int64 {
	var n int64
	for _, ts := range s.tenants {
		n += ts.queued
	}
	return n
}

// enqueue appends a flushed batch to its tenant's FIFO and wakes one
// worker. A tenant going active after idling resumes at the minimum
// served level of the currently active tenants, so banked idle credit
// cannot starve everyone else later.
func (s *scheduler) enqueue(bt *batch) {
	if len(bt.jobs) == 0 {
		return
	}
	s.mu.Lock()
	ts := s.tenant(bt.jobs[0].tenant)
	if len(ts.queue) == 0 {
		if floor, ok := s.minActiveServedLocked(); ok && ts.served < floor {
			ts.served = floor
		}
	}
	ts.queue = append(ts.queue, bt)
	s.mu.Unlock()
	s.cond.Signal()
}

// minActiveServedLocked returns the least served level among tenants
// with pending batches. Callers hold mu.
func (s *scheduler) minActiveServedLocked() (float64, bool) {
	var m float64
	found := false
	for _, ts := range s.tenants {
		if len(ts.queue) == 0 {
			continue
		}
		if !found || ts.served < m {
			m, found = ts.served, true
		}
	}
	return m, found
}

// start launches n workers.
func (s *scheduler) start(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.work()
		}()
	}
}

// close stops intake and waits for the workers to drain every queued
// batch. Jobs still queued run under whatever remains of their
// deadlines (the server cancels its base context on a forced stop, so a
// drain never hangs on long solves).
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// work is one worker's loop: pick the fair next batch, run it.
func (s *scheduler) work() {
	for {
		bt := s.next()
		if bt == nil {
			return
		}
		s.run(bt)
	}
}

// next blocks until a batch is available and returns the front batch of
// the active tenant with the least weight-normalized served work; nil
// means the scheduler closed and drained.
func (s *scheduler) next() *batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var pick *tenantState
		for _, ts := range s.tenants {
			if len(ts.queue) == 0 {
				continue
			}
			if pick == nil || ts.served < pick.served ||
				(ts.served == pick.served && ts.name < pick.name) {
				pick = ts
			}
		}
		if pick != nil {
			bt := pick.queue[0]
			pick.queue = pick.queue[1:]
			pick.queued -= int64(len(bt.jobs))
			pick.served += bt.work() / pick.weight
			s.metrics.QueueDepth.Set(s.totalQueuedLocked())
			return bt
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// observeSLO records one completed job into tenant name's latency
// histograms and partial accounting; queue is admission-to-dispatch,
// solve the solver wall time, total admission-to-completion.
func (s *scheduler) observeSLO(name string, queue, solve, total time.Duration, partial bool) {
	s.mu.Lock()
	ts := s.tenant(name)
	if partial {
		ts.partials++
	}
	slo := ts.slo
	s.mu.Unlock()
	slo.Queue.Observe(queue.Seconds())
	slo.Solve.Observe(solve.Seconds())
	slo.Total.Observe(total.Seconds())
}

// stats snapshots every tenant's accounting, sorted by name.
func (s *scheduler) stats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, ts := range s.tenants {
		st := TenantStats{
			Tenant: ts.name, Weight: ts.weight, Queued: ts.queued,
			Admitted: ts.admitted, Shed: ts.shed, ServedWork: ts.served,
			Partial: ts.partials,
		}
		if offered := ts.admitted + ts.shed; offered > 0 {
			st.ShedRatio = float64(ts.shed) / float64(offered)
		}
		if done := ts.slo.Total.Count(); done > 0 {
			st.PartialRatio = float64(ts.partials) / float64(done)
			st.P50MS = ts.slo.Total.Quantile(0.5) * 1000
			st.P95MS = ts.slo.Total.Quantile(0.95) * 1000
			st.P99MS = ts.slo.Total.Quantile(0.99) * 1000
			st.P50QueueMS = ts.slo.Queue.Quantile(0.5) * 1000
			st.P50SolveMS = ts.slo.Solve.Quantile(0.5) * 1000
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// shedStats adds one shed to tenant name's lifetime accounting for a
// drop decided outside admit/unadmit (a job expiring at dispatch).
func (s *scheduler) shedStats(name string) {
	s.mu.Lock()
	s.tenant(name).shed++
	s.mu.Unlock()
	s.metrics.Shed.Add(1)
}
