package service

import (
	"sort"
	"sync"

	"stencilivc/internal/obsv"
)

// tenantState is one tenant's scheduler bookkeeping.
type tenantState struct {
	name   string
	weight float64

	queue  []*batch // FIFO of flushed batches awaiting a worker
	queued int64    // jobs admitted but not yet dispatched (bound + gauge)
	served float64  // weight-normalized work dispatched so far

	admitted int64 // jobs admitted past the queue bound, lifetime
	shed     int64 // jobs refused or dropped by the overload policy, lifetime
}

// TenantStats is the externally visible accounting of one tenant,
// reported by GET /healthz and read by the fairness tests.
type TenantStats struct {
	// Tenant is the tenant name.
	Tenant string `json:"tenant"`
	// Weight is the tenant's fair-share weight.
	Weight float64 `json:"weight"`
	// Queued is the number of admitted jobs not yet dispatched.
	Queued int64 `json:"queued"`
	// Admitted counts jobs admitted past the queue bound, lifetime.
	Admitted int64 `json:"admitted"`
	// Shed counts jobs refused or dropped by the overload policy,
	// lifetime.
	Shed int64 `json:"shed"`
	// ServedWork is the weight-normalized solve work (vertices/weight)
	// dispatched to workers so far.
	ServedWork float64 `json:"served_work"`
}

// scheduler is the bounded worker pool with per-tenant weighted fair
// queuing. Flushed batches enter per-tenant FIFOs; each free worker
// dispatches the front batch of the active tenant with the least
// weight-normalized served work, so throughput divides by weight among
// tenants with pending work and an idle tenant's return preempts a
// flooding one.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	closed  bool

	maxQueued int64 // per-tenant bound on admitted-but-undispatched jobs
	weights   map[string]float64

	metrics *obsv.ServiceMetrics
	run     func(*batch) // worker body, supplied by the server
	wg      sync.WaitGroup
}

// newScheduler builds the scheduler; start launches its workers.
func newScheduler(maxQueued int, weights map[string]float64,
	m *obsv.ServiceMetrics, run func(*batch)) *scheduler {

	if maxQueued < 1 {
		maxQueued = 1
	}
	s := &scheduler{
		tenants:   map[string]*tenantState{},
		maxQueued: int64(maxQueued),
		weights:   weights,
		metrics:   m,
		run:       run,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// tenant returns (creating on first use) the named tenant's state.
// Callers hold mu.
func (s *scheduler) tenant(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		w := s.weights[name]
		if w <= 0 {
			w = 1
		}
		ts = &tenantState{name: name, weight: w}
		s.tenants[name] = ts
	}
	return ts
}

// admit reserves a queue slot for one job of tenant name; it reports
// false when the tenant's bound is hit, in which case the transport
// sheds the job. Accounting (admitted/shed counters, queue-depth gauge)
// happens here so the transport stays a thin layer.
func (s *scheduler) admit(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenant(name)
	if ts.queued >= s.maxQueued {
		ts.shed++
		s.metrics.Shed.Add(1)
		return false
	}
	ts.queued++
	ts.admitted++
	s.metrics.Admitted.Add(1)
	s.metrics.QueueDepth.Set(s.totalQueuedLocked())
	return true
}

// unadmit releases a reserved queue slot for a job shed between
// admission and dispatch (batcher backlog, injected enqueue drop). The
// admit stays counted — both counters are monotone — and the job counts
// as shed on top.
func (s *scheduler) unadmit(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenant(name)
	ts.queued--
	ts.shed++
	s.metrics.Shed.Add(1)
	s.metrics.QueueDepth.Set(s.totalQueuedLocked())
}

// totalQueuedLocked sums admitted-but-undispatched jobs over tenants.
// Callers hold mu.
func (s *scheduler) totalQueuedLocked() int64 {
	var n int64
	for _, ts := range s.tenants {
		n += ts.queued
	}
	return n
}

// enqueue appends a flushed batch to its tenant's FIFO and wakes one
// worker. A tenant going active after idling resumes at the minimum
// served level of the currently active tenants, so banked idle credit
// cannot starve everyone else later.
func (s *scheduler) enqueue(bt *batch) {
	if len(bt.jobs) == 0 {
		return
	}
	s.mu.Lock()
	ts := s.tenant(bt.jobs[0].tenant)
	if len(ts.queue) == 0 {
		if floor, ok := s.minActiveServedLocked(); ok && ts.served < floor {
			ts.served = floor
		}
	}
	ts.queue = append(ts.queue, bt)
	s.mu.Unlock()
	s.cond.Signal()
}

// minActiveServedLocked returns the least served level among tenants
// with pending batches. Callers hold mu.
func (s *scheduler) minActiveServedLocked() (float64, bool) {
	var m float64
	found := false
	for _, ts := range s.tenants {
		if len(ts.queue) == 0 {
			continue
		}
		if !found || ts.served < m {
			m, found = ts.served, true
		}
	}
	return m, found
}

// start launches n workers.
func (s *scheduler) start(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.work()
		}()
	}
}

// close stops intake and waits for the workers to drain every queued
// batch. Jobs still queued run under whatever remains of their
// deadlines (the server cancels its base context on a forced stop, so a
// drain never hangs on long solves).
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// work is one worker's loop: pick the fair next batch, run it.
func (s *scheduler) work() {
	for {
		bt := s.next()
		if bt == nil {
			return
		}
		s.run(bt)
	}
}

// next blocks until a batch is available and returns the front batch of
// the active tenant with the least weight-normalized served work; nil
// means the scheduler closed and drained.
func (s *scheduler) next() *batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var pick *tenantState
		for _, ts := range s.tenants {
			if len(ts.queue) == 0 {
				continue
			}
			if pick == nil || ts.served < pick.served ||
				(ts.served == pick.served && ts.name < pick.name) {
				pick = ts
			}
		}
		if pick != nil {
			bt := pick.queue[0]
			pick.queue = pick.queue[1:]
			pick.queued -= int64(len(bt.jobs))
			pick.served += bt.work() / pick.weight
			s.metrics.QueueDepth.Set(s.totalQueuedLocked())
			return bt
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// stats snapshots every tenant's accounting, sorted by name.
func (s *scheduler) stats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, ts := range s.tenants {
		out = append(out, TenantStats{
			Tenant: ts.name, Weight: ts.weight, Queued: ts.queued,
			Admitted: ts.admitted, Shed: ts.shed, ServedWork: ts.served,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// shedStats adds one shed to tenant name's lifetime accounting for a
// drop decided outside admit/unadmit (a job expiring at dispatch).
func (s *scheduler) shedStats(name string) {
	s.mu.Lock()
	s.tenant(name).shed++
	s.mu.Unlock()
	s.metrics.Shed.Add(1)
}
