package service

import (
	"testing"

	"stencilivc/internal/resultcache/memstore"
)

// TestServiceCacheHitByteIdentical is the acceptance check for the
// service-layer cache wiring: POSTing the same instance twice returns a
// byte-identical coloring the second time, served from the cache (the
// /healthz hit counter increments), with the entry written through to
// the injected persistence tier.
func TestServiceCacheHitByteIdentical(t *testing.T) {
	ms := memstore.New()
	srv, ts := newTestService(t, Config{Workers: 1, CacheStore: ms})

	req := Request{Tenant: "acme", Alg: "GLL", X: 10, Y: 10, Weights: gridWeights(10)}
	code1, res1 := postSolve(t, ts.URL, req)
	code2, res2 := postSolve(t, ts.URL, req)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("status codes %d/%d, want 200/200", code1, code2)
	}
	if res1.Status != StatusDone || res2.Status != StatusDone {
		t.Fatalf("statuses %s/%s, want done/done", res1.Status, res2.Status)
	}
	if res1.MaxColor != res2.MaxColor {
		t.Fatalf("maxcolor drifted across the cache: %d vs %d", res1.MaxColor, res2.MaxColor)
	}
	if len(res1.Starts) != len(res2.Starts) {
		t.Fatalf("starts length drifted: %d vs %d", len(res1.Starts), len(res2.Starts))
	}
	for v := range res1.Starts {
		if res1.Starts[v] != res2.Starts[v] {
			t.Fatalf("vertex %d: cached start %d, solved start %d", v, res2.Starts[v], res1.Starts[v])
		}
	}

	h := getHealthz(t, ts.URL)
	if h.Cache == nil {
		t.Fatal("/healthz reports no cache despite the default-on config")
	}
	if h.Cache.Hits != 1 || h.Cache.Misses != 1 || h.Cache.Stores != 1 {
		t.Fatalf("cache accounting hits=%d misses=%d stores=%d, want 1/1/1",
			h.Cache.Hits, h.Cache.Misses, h.Cache.Stores)
	}
	if len(h.Cache.Tenants) != 1 || h.Cache.Tenants[0].Tenant != "acme" || h.Cache.Tenants[0].Hits != 1 {
		t.Fatalf("per-tenant cache accounting wrong: %+v", h.Cache.Tenants)
	}
	if ms.Len() != 1 {
		t.Fatalf("write-through missed the injected store (len=%d)", ms.Len())
	}
	if srv.Cache() == nil {
		t.Fatal("Server.Cache() is nil with caching enabled")
	}
}

// TestServiceCacheDisabled checks the off switch: CacheBytes < 0 runs
// every solve for real and /healthz omits the cache block.
func TestServiceCacheDisabled(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, CacheBytes: -1})
	req := Request{Alg: "GLL", X: 6, Y: 6, Weights: gridWeights(6)}
	if code, res := postSolve(t, ts.URL, req); code != 200 || res.Status != StatusDone {
		t.Fatalf("solve failed with cache disabled: %d %s", code, res.Status)
	}
	if h := getHealthz(t, ts.URL); h.Cache != nil {
		t.Fatalf("/healthz reports cache accounting with caching disabled: %+v", h.Cache)
	}
}
