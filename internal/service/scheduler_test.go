package service

import (
	"fmt"
	"sync"
	"testing"

	"stencilivc/internal/obsv"
)

// enqueueOne admits and enqueues one single-job batch for tenant.
func enqueueOne(t *testing.T, s *scheduler, tenant string, j *job) {
	t.Helper()
	if !s.admit(tenant) {
		t.Fatalf("admit(%s) refused below the bound", tenant)
	}
	s.enqueue(&batch{key: j.batchKey(), jobs: []*job{j}, oldest: j.enqueued})
}

func TestSchedulerAdmitBound(t *testing.T) {
	m := obsv.NewServiceMetrics(nil)
	s := newScheduler(2, nil, m, nil)
	if !s.admit("a") || !s.admit("a") {
		t.Fatal("admits below the bound refused")
	}
	if s.admit("a") {
		t.Fatal("admit past the per-tenant bound accepted")
	}
	st := s.stats()
	if len(st) != 1 || st[0].Admitted != 2 || st[0].Shed != 1 || st[0].Queued != 2 {
		t.Fatalf("stats = %+v, want admitted=2 shed=1 queued=2", st)
	}
	s.unadmit("a")
	st = s.stats()
	if st[0].Queued != 1 || st[0].Shed != 2 || st[0].Admitted != 2 {
		t.Fatalf("after unadmit stats = %+v, want queued=1 shed=2 admitted=2", st)
	}
}

func TestSchedulerWeightedFairness(t *testing.T) {
	m := obsv.NewServiceMetrics(nil)
	s := newScheduler(100, map[string]float64{"b": 3}, m, nil)
	g := testGrid(t, 2)
	for i := 0; i < 12; i++ {
		enqueueOne(t, s, "a", testJob(t, fmt.Sprintf("a%d", i), "a", g))
		enqueueOne(t, s, "b", testJob(t, fmt.Sprintf("b%d", i), "b", g))
	}
	// Draw 16 batches by hand (no workers): tenant b, at weight 3,
	// should receive roughly three dispatches for each of a's, and a
	// must not starve.
	counts := map[string]int{}
	for i := 0; i < 16; i++ {
		bt := s.next()
		if bt == nil {
			t.Fatal("next returned nil with batches queued")
		}
		counts[bt.jobs[0].tenant]++
	}
	if counts["a"] == 0 {
		t.Fatal("tenant a starved under weighted fair queuing")
	}
	if counts["b"] < 2*counts["a"] {
		t.Fatalf("dispatch counts a=%d b=%d; want b at roughly 3x a", counts["a"], counts["b"])
	}
}

func TestSchedulerIdleCreditReset(t *testing.T) {
	m := obsv.NewServiceMetrics(nil)
	s := newScheduler(100, nil, m, nil)
	g := testGrid(t, 2)
	for i := 0; i < 10; i++ {
		enqueueOne(t, s, "a", testJob(t, fmt.Sprintf("a%d", i), "a", g))
	}
	for i := 0; i < 5; i++ {
		if s.next() == nil {
			t.Fatal("next returned nil")
		}
	}
	// Tenant b was idle the whole time; joining now it resumes at a's
	// served level instead of cashing in banked idle credit and
	// monopolizing the workers.
	enqueueOne(t, s, "b", testJob(t, "b0", "b", g))
	st := s.stats()
	var servedA, servedB float64
	for _, ts := range st {
		switch ts.Tenant {
		case "a":
			servedA = ts.ServedWork
		case "b":
			servedB = ts.ServedWork
		}
	}
	if servedA == 0 {
		t.Fatal("tenant a has no served work after 5 dispatches")
	}
	if servedB != servedA {
		t.Fatalf("idle tenant joined at served=%v, want the active floor %v", servedB, servedA)
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	m := obsv.NewServiceMetrics(nil)
	var mu sync.Mutex
	ran := 0
	s := newScheduler(100, nil, m, func(bt *batch) {
		mu.Lock()
		ran += len(bt.jobs)
		mu.Unlock()
	})
	s.start(3)
	g := testGrid(t, 2)
	for i := 0; i < 20; i++ {
		enqueueOne(t, s, "a", testJob(t, fmt.Sprintf("a%d", i), "a", g))
	}
	s.close()
	mu.Lock()
	defer mu.Unlock()
	if ran != 20 {
		t.Fatalf("close drained %d jobs, want 20", ran)
	}
}
