package render

import (
	"strings"
	"testing"

	"stencilivc/internal/grid"
	"stencilivc/internal/heuristics"
	"stencilivc/internal/sched"
)

func TestWeights2D(t *testing.T) {
	g := grid.MustGrid2D(3, 2)
	copy(g.W, []int64{0, 5, 10, 10, 0, 5})
	out := Weights2D(g)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Row j=1 renders first (top); 10 -> '@', 0 -> ' ', 5 -> middle glyph.
	if lines[0][0] != '@' || lines[0][1] != ' ' {
		t.Errorf("top row = %q", lines[0])
	}
	if lines[1][0] != ' ' || lines[1][2] != '@' {
		t.Errorf("bottom row = %q", lines[1])
	}
	// All-zero grid renders blanks without dividing by zero.
	empty := grid.MustGrid2D(2, 1)
	if out := Weights2D(empty); strings.TrimRight(out, " \n") != "" {
		t.Errorf("empty grid rendered %q", out)
	}
}

func TestIntervals2D(t *testing.T) {
	g := grid.MustGrid2D(2, 1)
	copy(g.W, []int64{3, 4})
	c, err := heuristics.Run2D(heuristics.GLL, g)
	if err != nil {
		t.Fatal(err)
	}
	out := Intervals2D(g, c)
	if !strings.Contains(out, "[0,3)") || !strings.Contains(out, "[3,7)") {
		t.Errorf("intervals missing: %q", out)
	}
}

func TestGantt(t *testing.T) {
	g := grid.MustGrid2D(4, 1)
	copy(g.W, []int64{5, 5, 5, 5})
	c, err := heuristics.Run2D(heuristics.GLL, g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sched.Build(g, c)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Simulate(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Gantt(d, s, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "P0 ") || !strings.Contains(out, "P1 ") {
		t.Errorf("missing processor rows:\n%s", out)
	}
	if !strings.Contains(out, "makespan 10") {
		t.Errorf("missing makespan header:\n%s", out)
	}
	// Each processor runs 10 of 20 work units: both rows contain glyphs.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "P") && !strings.ContainsAny(line, "abcd") {
			t.Errorf("idle processor row: %q", line)
		}
	}
	if _, err := Gantt(d, s, 2, 3); err == nil {
		t.Error("tiny width accepted")
	}
	if _, err := Gantt(d, s, 0, 40); err == nil {
		t.Error("0 processors accepted")
	}
	// Worker ids beyond p are rejected.
	if _, err := Gantt(d, s, 1, 40); err == nil {
		t.Error("worker out of range accepted")
	}
}
