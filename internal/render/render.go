// Package render draws colorings and schedules as ASCII art: weight heat
// maps of instances, per-cell interval tables, and Gantt charts of
// simulated executions. cmd/ivc and the examples use it to make results
// inspectable in a terminal; everything returns plain strings, so the
// renderings are also asserted in tests.
package render

import (
	"fmt"
	"strings"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/sched"
)

// Weights2D renders a 2D grid's weights as a heat map, one glyph per
// cell, row j=0 at the bottom (matching the paper's figures).
func Weights2D(g *grid.Grid2D) string {
	glyphs := []byte(" .:-=+*#%@")
	var maxW int64 = 1
	for _, w := range g.W {
		maxW = max(maxW, w)
	}
	var b strings.Builder
	for j := g.Y - 1; j >= 0; j-- {
		for i := 0; i < g.X; i++ {
			w := g.At(i, j)
			idx := 0
			if w > 0 {
				idx = 1 + int(int64(len(glyphs)-2)*w/maxW)
			}
			b.WriteByte(glyphs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Intervals2D renders each cell's color interval in a fixed-width table,
// row j=0 at the top (reading order).
func Intervals2D(g *grid.Grid2D, c core.Coloring) string {
	var b strings.Builder
	width := len(fmt.Sprintf("%d", c.MaxColor(g)))
	for j := 0; j < g.Y; j++ {
		for i := 0; i < g.X; i++ {
			v := g.ID(i, j)
			fmt.Fprintf(&b, "[%*d,%*d) ", width, c.Start[v], width, c.Start[v]+g.W[v])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Gantt renders a simulated schedule as one row per processor; each task
// paints its span with a cycling glyph and is labeled at its start when
// space allows. width is the number of character columns the makespan is
// scaled onto.
func Gantt(d *sched.DAG, s *sched.Schedule, p, width int) (string, error) {
	if width < 10 {
		return "", fmt.Errorf("render: width %d too small", width)
	}
	if p < 1 {
		return "", fmt.Errorf("render: %d processors", p)
	}
	makespan := max(s.Makespan, 1)
	rows := make([][]byte, p)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	glyphs := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	for v := 0; v < d.Len(); v++ {
		if d.Duration[v] == 0 {
			continue
		}
		w := s.Worker[v]
		if w < 0 || w >= p {
			return "", fmt.Errorf("render: task %d on worker %d of %d", v, w, p)
		}
		from := int(s.Start[v] * int64(width) / makespan)
		to := int((s.Start[v] + d.Duration[v]) * int64(width) / makespan)
		to = max(to, from+1)
		to = min(to, width)
		glyph := glyphs[v%len(glyphs)]
		for x := from; x < to; x++ {
			rows[w][x] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %d on %d processors (each column ~ %.1f time units)\n",
		s.Makespan, p, float64(makespan)/float64(width))
	for i, row := range rows {
		fmt.Fprintf(&b, "P%-2d |%s|\n", i, row)
	}
	return b.String(), nil
}
