package resultcache

import (
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// grid2x3 builds a 2×3 grid with the given row-major weights.
func grid2x3(t *testing.T, w []int64) *grid.Grid2D {
	t.Helper()
	g, err := grid.FromWeights2D(2, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// csrOfGrid rebuilds g as a CSRGraph with the identical vertex weights
// and adjacency, with the edge list given in the order edges enumerates
// them.
func csrOfGrid(t *testing.T, g *grid.Grid2D, edges []core.Edge) *core.CSRGraph {
	t.Helper()
	c, err := core.NewCSRGraph(append([]int64(nil), g.W...), edges)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// gridEdges enumerates g's 9-pt adjacency as an undirected edge list.
func gridEdges(g *grid.Grid2D) []core.Edge {
	var edges []core.Edge
	var buf []int
	for v := 0; v < g.Len(); v++ {
		buf = g.Neighbors(v, buf[:0])
		for _, u := range buf {
			if u > v {
				edges = append(edges, core.Edge{U: v, V: u})
			}
		}
	}
	return edges
}

// TestFingerprintCanonicalization is the collision/canonicalization
// table: pairs of instances that MUST share a fingerprint (equal
// content through different construction orders) and pairs that MUST
// NOT (different kinds, dims, weights, or algorithms).
func TestFingerprintCanonicalization(t *testing.T) {
	w := []int64{1, 2, 3, 4, 5, 6}
	g := grid2x3(t, w)
	edges := gridEdges(g)

	// Reversed edge list: same edge set, different construction order.
	rev := make([]core.Edge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = core.Edge{U: e.V, V: e.U}
	}

	same := []struct {
		name string
		a, b core.CacheKey
	}{
		{"identical grids", Fingerprint("GLL", g), Fingerprint("GLL", grid2x3(t, w))},
		{"grid weight slice copied", Fingerprint("BDP", g),
			Fingerprint("BDP", grid2x3(t, append([]int64(nil), w...)))},
		{"csr edge order is not content", Fingerprint("GLL", csrOfGrid(t, g, edges)),
			Fingerprint("GLL", csrOfGrid(t, g, rev))},
	}
	for _, tc := range same {
		if tc.a != tc.b {
			t.Errorf("%s: fingerprints differ:\n  %s\n  %s", tc.name, tc.a, tc.b)
		}
	}

	g3, err := grid.NewGrid3D(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	copy(g3.W, w)

	gT, err := grid.FromWeights2D(3, 2, w)
	if err != nil {
		t.Fatal(err)
	}

	w2 := append([]int64(nil), w...)
	w2[3] = 40
	differ := []struct {
		name string
		a, b core.CacheKey
	}{
		{"algorithm is part of the key", Fingerprint("GLL", g), Fingerprint("GLF", g)},
		{"grid2d vs equivalent csr must not collide",
			Fingerprint("GLL", g), Fingerprint("GLL", csrOfGrid(t, g, edges))},
		{"grid2d vs z=1 grid3d must not collide", Fingerprint("GLL", g), Fingerprint("GLL", g3)},
		{"dims are content, not just the flat weights", Fingerprint("GLL", g), Fingerprint("GLL", gT)},
		{"weights are content", Fingerprint("GLL", g), Fingerprint("GLL", grid2x3(t, w2))},
		{"alg framing: GL+L vs GLL under a shifted boundary",
			Fingerprint("GLLx", g), Fingerprint("GLL", g)},
	}
	for _, tc := range differ {
		if tc.a == tc.b {
			t.Errorf("%s: fingerprints collide at %s", tc.name, tc.a)
		}
	}
}

// TestFingerprintTracksMutation pins the digest-on-read rule: W is a
// public slice, so mutating a grid in place must change its fingerprint
// (nothing stale is cached on the instance).
func TestFingerprintTracksMutation(t *testing.T) {
	g := grid2x3(t, []int64{1, 2, 3, 4, 5, 6})
	before := Fingerprint("GLL", g)
	g.W[0] = 9
	if after := Fingerprint("GLL", g); after == before {
		t.Fatalf("fingerprint did not track the in-place weight mutation: %s", after)
	}
}

// TestFingerprintLargeGridStreams exercises the chunked path: a weight
// vector much larger than the digester's buffer must digest identically
// to itself and differently from a one-cell perturbation.
func TestFingerprintLargeGridStreams(t *testing.T) {
	const n = 64
	w := make([]int64, n*n)
	for i := range w {
		w[i] = int64(i%13 + 1)
	}
	a, err := grid.FromWeights2D(n, n, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := grid.FromWeights2D(n, n, w)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint("SGK", a) != Fingerprint("SGK", b) {
		t.Fatal("equal large grids digest differently")
	}
	b.W[n*n-1]++
	if Fingerprint("SGK", a) == Fingerprint("SGK", b) {
		t.Fatal("last-cell perturbation not reflected in the digest")
	}
}
