package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
)

// Fingerprint computes the canonical content address of one
// (algorithm, instance) pair: SHA-256 over a domain-separated encoding
// of the algorithm descriptor and the instance itself. Equal
// fingerprints mean "a cached coloring for one is a correct coloring
// for the other", which is the whole soundness argument of the cache:
// the solvers are deterministic functions of exactly the encoded state.
//
// Canonicalization rules (DESIGN.md §15 has the rationale):
//
//   - The encoding starts with a format version and the algorithm name,
//     both length-framed, so "GLL" on grid A can never collide with
//     "GLF" on grid B and a future encoding change invalidates every
//     old key at once.
//   - Each instance kind writes a distinct tag: a 4×6 Grid2D, the
//     equivalent 24-vertex CSRGraph, and a 4×6×1 Grid3D all encode
//     differently even though they color identically. Collapsing them
//     would be sound for the grid/CSR pair but not provable cheaply,
//     and the tag keeps the encoding injective by construction.
//   - Grids encode (X, Y[, Z]) plus the weight vector, streamed through
//     the hash in fixed-size chunks — the digest is computed on every
//     lookup rather than cached on the grid, because W is an exported,
//     publicly mutated slice (the same reasoning that keeps grids off
//     the cached uniform-weight verdict, DESIGN.md §14). No copy of W
//     is ever materialized.
//   - CSR graphs encode, per vertex, the weight, the degree, and the
//     sorted adjacency run. NewCSRGraph sorts each run at construction,
//     so two graphs built from the same edge set in different orders
//     digest identically — construction order is not content.
//   - Any other Graph implementation falls back to the same per-vertex
//     walk under its own tag; it is canonical as long as Neighbors
//     enumerates deterministically, which the Graph contract requires.
func Fingerprint(alg string, g core.Graph) core.CacheKey {
	d := digester{h: sha256.New()}
	d.str("ivc-resultcache-v1")
	d.str(alg)
	switch t := g.(type) {
	case *grid.Grid2D:
		d.str("grid2d")
		d.i64(int64(t.X))
		d.i64(int64(t.Y))
		d.weights(t.W)
	case *grid.Grid3D:
		d.str("grid3d")
		d.i64(int64(t.X))
		d.i64(int64(t.Y))
		d.i64(int64(t.Z))
		d.weights(t.W)
	case *core.CSRGraph:
		d.str("csr")
		d.graph(t)
	default:
		d.str("graph")
		d.graph(g)
	}
	d.flush()
	var key core.CacheKey
	d.h.Sum(key[:0])
	return key
}

// digester streams the canonical encoding into a hash through a
// fixed-size buffer, so a 2048² weight vector is digested without ever
// materializing a serialized copy of the instance.
type digester struct {
	h   hash.Hash
	buf [4096]byte
	n   int
}

// flush drains the buffer into the hash.
func (d *digester) flush() {
	if d.n > 0 {
		d.h.Write(d.buf[:d.n])
		d.n = 0
	}
}

// i64 appends one fixed-width little-endian value.
func (d *digester) i64(v int64) {
	if d.n+8 > len(d.buf) {
		d.flush()
	}
	binary.LittleEndian.PutUint64(d.buf[d.n:], uint64(v))
	d.n += 8
}

// str appends a length-framed string, so adjacent fields can never
// shift content across their boundary ("ab"+"c" ≠ "a"+"bc").
func (d *digester) str(s string) {
	d.i64(int64(len(s)))
	for len(s) > 0 {
		if d.n == len(d.buf) {
			d.flush()
		}
		c := copy(d.buf[d.n:], s)
		d.n += c
		s = s[c:]
	}
}

// weights appends a length-framed weight vector.
func (d *digester) weights(w []int64) {
	d.i64(int64(len(w)))
	for _, v := range w {
		d.i64(v)
	}
}

// graph appends the generic per-vertex walk: weight, degree, and the
// neighbor list as the graph enumerates it.
func (d *digester) graph(g core.Graph) {
	n := g.Len()
	d.i64(int64(n))
	var buf []int
	for v := 0; v < n; v++ {
		d.i64(g.Weight(v))
		buf = g.Neighbors(v, buf[:0])
		d.i64(int64(len(buf)))
		for _, u := range buf {
			d.i64(int64(u))
		}
	}
}
