package resultcache

import (
	"container/list"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/obsv"
)

// SiteGetCorrupt is the cache's fault-injection site: it fires once per
// persistent-store read that returned an entry, and when it fires the
// entry is discarded as corrupt — proving, under a chaos schedule, that
// a corrupted persisted entry degrades to a re-solve and never to a
// wrong answer.
const SiteGetCorrupt = core.FaultSite("resultcache/get-corrupt")

func init() {
	core.RegisterFaultSite(SiteGetCorrupt,
		"result-cache persistent-store read, once per returned entry: firing discards the entry as corrupt (degrades to re-solve)")
}

// Config parameterizes a Cache. The zero value is serviceable: a
// memory-only cache with the default byte budget and every
// observability sink disabled.
type Config struct {
	// MaxBytes bounds the in-memory tier (payload bytes plus a flat
	// per-entry allowance); the LRU policy evicts past it. <= 0 picks
	// 64 MiB. The budget is split evenly across the shards.
	MaxBytes int64
	// Shards is the number of independently locked cache shards;
	// <= 0 picks 16. More shards means less lock contention between
	// concurrent service workers at the cost of slightly coarser LRU.
	Shards int
	// Store, when non-nil, is the persistence tier: every stored entry
	// is written through, and an in-memory miss falls back to it before
	// being counted a real miss.
	Store Store
	// Metrics, when non-nil, receives the resultcache_* families.
	Metrics *obsv.CacheMetrics
	// Events, when non-nil, receives cache.hit/miss/store/evict/corrupt
	// events.
	Events *obsv.EventSink
	// Injector, when non-nil, arms the resultcache/get-corrupt site.
	Injector core.Injector
	// Commit overrides the VCS revision recorded in per-entry
	// provenance; empty reads it from the build info.
	Commit string
}

// Cache is the content-addressed solve-result cache: a sharded
// byte-budget LRU keyed by instance fingerprint, optionally in front of
// a persistent Store. It implements core.SolveCache, so attaching one
// to SolveOptions.Cache is all heuristics.Run needs to start memoizing.
//
// All methods are safe for concurrent use. Colorings cross the cache
// boundary by deep copy in both directions: a caller mutating a
// returned coloring, or the coloring it stored, can never corrupt the
// cached bytes — which is what makes the byte-identical-hit guarantee
// hold.
type Cache struct {
	shards  []shard
	perMax  int64
	store   Store
	metrics *obsv.CacheMetrics
	events  *obsv.EventSink
	inj     core.Injector
	commit  string

	// entries/bytes describe the in-memory tier; stores, evictions, and
	// corrupt are the cache's own lifetime counters — kept here, not just
	// in the metrics bundle, so Snapshot is exact even when metrics are
	// disabled (a nil-registry bundle's counters are no-ops).
	entries   atomic.Int64
	bytes     atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64
	corrupt   atomic.Int64

	// tenants maps tenant → hit/miss counters for the per-tenant
	// accounting /healthz reports.
	tenantMu sync.Mutex
	tenants  map[string]*tenantCounts
}

type tenantCounts struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu    sync.Mutex
	byKey map[core.CacheKey]*list.Element
	lru   list.List // front = most recently used
	bytes int64
}

// node is the LRU element payload.
type node struct {
	key   core.CacheKey
	entry Entry
	size  int64
}

var _ core.SolveCache = (*Cache)(nil)

// New builds a cache from cfg; see Config for the defaults.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Metrics == nil {
		// Keep the bundle non-nil so instrumentation stays unconditional;
		// a bundle of nil metrics makes every record a no-op.
		cfg.Metrics = obsv.NewCacheMetrics(nil)
	}
	commit := cfg.Commit
	if commit == "" {
		commit = buildCommit()
	}
	c := &Cache{
		shards:  make([]shard, cfg.Shards),
		perMax:  max(cfg.MaxBytes/int64(cfg.Shards), 1),
		store:   cfg.Store,
		metrics: cfg.Metrics,
		events:  cfg.Events,
		inj:     cfg.Injector,
		commit:  commit,
		tenants: map[string]*tenantCounts{},
	}
	for i := range c.shards {
		c.shards[i].byKey = map[core.CacheKey]*list.Element{}
	}
	return c
}

// buildCommit reads the VCS revision the binary was built from, so
// per-entry provenance pins cached results to code versions the same
// way ivcbench pins bench reports.
func buildCommit() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// shardFor maps a key to its shard by the key's leading bytes — the key
// is a SHA-256 digest, so any fixed slice of it is uniform.
func (c *Cache) shardFor(key core.CacheKey) *shard {
	idx := (int(key[0])<<8 | int(key[1])) % len(c.shards)
	return &c.shards[idx]
}

// Lookup implements core.SolveCache: fingerprint the instance, consult
// the in-memory tier, then the persistent store. Store-tier entries are
// checksum-verified by the Store and re-validated against the instance
// here before being served or promoted, so no corruption can surface as
// a wrong answer. The returned coloring is a fresh copy on every hit.
func (c *Cache) Lookup(alg string, g core.Graph, tenant string) (core.Coloring, core.CacheKey, bool) {
	key := Fingerprint(alg, g)
	sh := c.shardFor(key)

	sh.mu.Lock()
	if el, ok := sh.byKey[key]; ok {
		sh.lru.MoveToFront(el)
		starts := append([]int64(nil), el.Value.(*node).entry.Starts...)
		sh.mu.Unlock()
		c.accountHit(alg, tenant, key, "memory")
		return core.Coloring{Start: starts}, key, true
	}
	sh.mu.Unlock()

	if c.store != nil {
		if e, ok := c.loadPersisted(key, g); ok {
			c.insert(sh, key, e)
			c.accountHit(alg, tenant, key, "store")
			return core.Coloring{Start: append([]int64(nil), e.Starts...)}, key, true
		}
	}

	c.metrics.Misses.Add(1)
	c.tenantCounts(tenant).misses.Add(1)
	if c.events != nil {
		c.events.CacheMiss(alg, tenant, key.String())
	}
	return core.Coloring{}, key, false
}

// loadPersisted reads key from the persistence tier and vets the result:
// Store errors (decode, checksum), the injected-corruption site, and
// full re-validation against the instance all degrade to "no entry". A
// vetted-bad persisted entry is deleted so the store does not serve the
// same corruption forever.
func (c *Cache) loadPersisted(key core.CacheKey, g core.Graph) (Entry, bool) {
	e, ok, err := c.store.Get(key)
	if err == nil && !ok {
		return Entry{}, false
	}
	reason := ""
	switch {
	case err != nil:
		reason = err.Error()
	case c.inj != nil && c.inj.Inject(SiteGetCorrupt):
		// The chaos schedule says this read came back corrupted; drop
		// the payload exactly as a failed checksum would.
		reason = "injected corruption at " + string(SiteGetCorrupt)
	default:
		if verr := e.validate(g); verr != nil {
			reason = verr.Error()
		}
	}
	if reason != "" {
		c.corrupt.Add(1)
		c.metrics.Corrupt.Add(1)
		if c.events != nil {
			c.events.CacheCorrupt(key.String(), reason)
		}
		_ = c.store.Delete(key)
		return Entry{}, false
	}
	return e, true
}

// Store implements core.SolveCache: deep-copy the coloring, stamp
// provenance, insert into the in-memory tier (evicting LRU entries past
// the shard budget), and write through to the persistence tier when one
// is configured.
func (c *Cache) Store(key core.CacheKey, alg, tenant string, g core.Graph, col core.Coloring, wall time.Duration) {
	e := Entry{
		Starts: append([]int64(nil), col.Start...),
		Prov: Provenance{
			Solver:      alg,
			Commit:      c.commit,
			WallNanos:   wall.Nanoseconds(),
			MaxColor:    col.MaxColor(g),
			CreatedUnix: time.Now().Unix(),
		},
	}
	sh := c.shardFor(key)
	c.insert(sh, key, e)
	c.stores.Add(1)
	c.metrics.Stores.Add(1)
	if c.events != nil {
		c.events.CacheStore(alg, key.String(), e.memBytes())
	}
	if c.store != nil {
		// Write-through is best-effort: a failed persist leaves the
		// memory tier serving and surfaces only as a corrupt/absent
		// entry on some later cold read.
		_ = c.store.Put(key, e)
	}
}

// insert places e into sh under key (replacing any previous entry) and
// evicts least-recently-used entries until the shard is back under its
// byte budget. An entry larger than the whole shard budget is not
// memory-cached at all — it would only evict everything else and then
// evict itself.
func (c *Cache) insert(sh *shard, key core.CacheKey, e Entry) {
	size := e.memBytes()
	if size > c.perMax {
		return
	}
	sh.mu.Lock()
	if el, ok := sh.byKey[key]; ok {
		old := el.Value.(*node)
		sh.bytes -= old.size
		c.bytes.Add(-old.size)
		sh.lru.Remove(el)
		delete(sh.byKey, key)
		c.entries.Add(-1)
	}
	sh.byKey[key] = sh.lru.PushFront(&node{key: key, entry: e, size: size})
	sh.bytes += size
	c.entries.Add(1)
	c.bytes.Add(size)
	var evicted []*node
	for sh.bytes > c.perMax {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		n := back.Value.(*node)
		sh.lru.Remove(back)
		delete(sh.byKey, n.key)
		sh.bytes -= n.size
		evicted = append(evicted, n)
	}
	sh.mu.Unlock()
	for _, n := range evicted {
		c.entries.Add(-1)
		c.bytes.Add(-n.size)
		c.evictions.Add(1)
		c.metrics.Evictions.Add(1)
		if c.events != nil {
			c.events.CacheEvict(n.key.String(), n.size)
		}
	}
	c.metrics.Entries.Set(c.entries.Load())
	c.metrics.Bytes.Set(c.bytes.Load())
}

// accountHit bumps every hit-side sink.
func (c *Cache) accountHit(alg, tenant string, key core.CacheKey, tier string) {
	c.metrics.Hits.Add(1)
	c.tenantCounts(tenant).hits.Add(1)
	if c.events != nil {
		c.events.CacheHit(alg, tenant, key.String(), tier)
	}
}

// tenantCounts returns the per-tenant accounting cell, creating it on
// first use.
func (c *Cache) tenantCounts(tenant string) *tenantCounts {
	c.tenantMu.Lock()
	defer c.tenantMu.Unlock()
	tc := c.tenants[tenant]
	if tc == nil {
		tc = &tenantCounts{}
		c.tenants[tenant] = tc
	}
	return tc
}

// TenantCacheStats is the per-tenant slice of the cache accounting, as
// reported in /healthz.
type TenantCacheStats struct {
	// Tenant is the tenant name (SolveOptions.TenantID form).
	Tenant string `json:"tenant"`
	// Hits counts this tenant's solves answered from the cache.
	Hits int64 `json:"hits"`
	// Misses counts this tenant's solves that ran for real.
	Misses int64 `json:"misses"`
}

// Stats is a point-in-time snapshot of the cache accounting: the global
// counters, the in-memory footprint, and the per-tenant hit/miss split.
type Stats struct {
	// Hits, Misses, Stores, Evictions, Corrupt mirror the
	// resultcache_* counter families.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Corrupt   int64 `json:"corrupt"`
	// Entries and Bytes describe the current in-memory tier.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Persisted is the persistence tier's entry count (0 with no store).
	Persisted int `json:"persisted,omitempty"`
	// Tenants is the per-tenant accounting, sorted by tenant name.
	Tenants []TenantCacheStats `json:"tenants,omitempty"`
}

// Snapshot returns the current cache accounting. The counters are read
// individually, not under one lock, so a snapshot taken mid-traffic is
// approximate — fine for /healthz, not a linearizable view.
func (c *Cache) Snapshot() Stats {
	st := Stats{
		Entries: c.entries.Load(),
		Bytes:   c.bytes.Load(),
	}
	// The tenant cells are the ground truth for hits/misses; the metrics
	// bundle may be disabled (nil registry), so nothing is read from it.
	c.tenantMu.Lock()
	for name, tc := range c.tenants {
		ts := TenantCacheStats{Tenant: name, Hits: tc.hits.Load(), Misses: tc.misses.Load()}
		st.Hits += ts.Hits
		st.Misses += ts.Misses
		st.Tenants = append(st.Tenants, ts)
	}
	c.tenantMu.Unlock()
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	st.Stores = c.stores.Load()
	st.Evictions = c.evictions.Load()
	st.Corrupt = c.corrupt.Load()
	if c.store != nil {
		st.Persisted = c.store.Len()
	}
	return st
}
