package resultcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"stencilivc/internal/core"
	"stencilivc/internal/grid"
	"stencilivc/internal/obsv"
)

// mapStore is a minimal in-package Store double (the real reference
// implementation lives in the memstore subpackage, which imports this
// package and so cannot be used from its tests).
type mapStore struct {
	mu sync.Mutex
	m  map[core.CacheKey]Entry
}

func newMapStore() *mapStore { return &mapStore{m: map[core.CacheKey]Entry{}} }

func (s *mapStore) Get(key core.CacheKey) (Entry, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return Entry{}, false, nil
	}
	e.Starts = append([]int64(nil), e.Starts...)
	return e, true, nil
}

func (s *mapStore) Put(key core.CacheKey, e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.Starts = append([]int64(nil), e.Starts...)
	s.m[key] = e
	return nil
}

func (s *mapStore) Delete(key core.CacheKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

func (s *mapStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// testGrid builds an n×n grid with small varied weights.
func testGrid(t *testing.T, n int) *grid.Grid2D {
	t.Helper()
	w := make([]int64, n*n)
	for i := range w {
		w[i] = int64(i%5 + 1)
	}
	g, err := grid.FromWeights2D(n, n, w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// serialColoring returns the trivially valid coloring that stacks every
// vertex's interval after the previous one — disjoint everywhere, so it
// passes full validation on any instance.
func serialColoring(g core.Graph) core.Coloring {
	starts := make([]int64, g.Len())
	var at int64
	for v := 0; v < g.Len(); v++ {
		starts[v] = at
		at += g.Weight(v)
	}
	return core.Coloring{Start: starts}
}

func TestCacheHitIsByteIdenticalAndIsolated(t *testing.T) {
	c := New(Config{})
	g := testGrid(t, 8)
	col := serialColoring(g)

	if _, _, ok := c.Lookup("GLL", g, "acme"); ok {
		t.Fatal("hit on an empty cache")
	}
	_, key, _ := c.Lookup("GLL", g, "acme")
	c.Store(key, "GLL", "acme", g, col, 5*time.Millisecond)

	// Mutating what we stored must not reach the cached bytes.
	col.Start[0] = 999

	got, key2, ok := c.Lookup("GLL", g, "acme")
	if !ok {
		t.Fatal("miss after store")
	}
	if key2 != key {
		t.Fatalf("lookup key changed: %s vs %s", key2, key)
	}
	want := serialColoring(g)
	for v := range want.Start {
		if got.Start[v] != want.Start[v] {
			t.Fatalf("vertex %d: cached start %d, stored %d", v, got.Start[v], want.Start[v])
		}
	}
	// Mutating the returned coloring must not corrupt later hits.
	got.Start[0] = -1
	again, _, _ := c.Lookup("GLL", g, "acme")
	if again.Start[0] != want.Start[0] {
		t.Fatal("a caller's mutation of a returned coloring reached the cache")
	}

	st := c.Snapshot()
	if st.Hits != 2 || st.Misses != 2 || st.Stores != 1 {
		t.Fatalf("snapshot hits=%d misses=%d stores=%d, want 2/2/1", st.Hits, st.Misses, st.Stores)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "acme" || st.Tenants[0].Hits != 2 {
		t.Fatalf("per-tenant accounting wrong: %+v", st.Tenants)
	}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	g := testGrid(t, 8) // 64 starts = 512 payload bytes + overhead
	entrySize := (&Entry{Starts: make([]int64, g.Len()), Prov: Provenance{Solver: "GLL"}}).memBytes()

	// One shard, budget for three entries: the fourth insert must evict
	// the least recently used.
	c := New(Config{MaxBytes: 3 * entrySize, Shards: 1})
	algs := []string{"GLL", "GLF", "GZO", "SGK"}
	for _, alg := range algs {
		_, key, _ := c.Lookup(alg, g, "")
		c.Store(key, alg, "", g, serialColoring(g), time.Millisecond)
	}
	st := c.Snapshot()
	if st.Entries != 3 {
		t.Fatalf("entries = %d after eviction, want 3", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 3*entrySize {
		t.Fatalf("bytes = %d exceeds the %d budget", st.Bytes, 3*entrySize)
	}
	// GLL went in first and was never touched again: it is the victim.
	if _, _, ok := c.Lookup("GLL", g, ""); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, _, ok := c.Lookup("SGK", g, ""); !ok {
		t.Fatal("most recent entry was evicted")
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	g := testGrid(t, 8)
	c := New(Config{MaxBytes: 64, Shards: 1}) // smaller than any entry
	_, key, _ := c.Lookup("GLL", g, "")
	c.Store(key, "GLL", "", g, serialColoring(g), time.Millisecond)
	if st := c.Snapshot(); st.Entries != 0 {
		t.Fatalf("oversized entry was memory-cached (entries=%d)", st.Entries)
	}
}

func TestCacheStoreTierPromotion(t *testing.T) {
	ms := newMapStore()
	g := testGrid(t, 6)

	warm := New(Config{Store: ms})
	_, key, _ := warm.Lookup("BDP", g, "a")
	warm.Store(key, "BDP", "a", g, serialColoring(g), time.Millisecond)
	if ms.Len() != 1 {
		t.Fatalf("write-through missed the store (len=%d)", ms.Len())
	}

	// A fresh cache over the same store: cold memory, warm persistence.
	cold := New(Config{Store: ms})
	got, _, ok := cold.Lookup("BDP", g, "a")
	if !ok {
		t.Fatal("store-tier entry not served")
	}
	want := serialColoring(g)
	for v := range want.Start {
		if got.Start[v] != want.Start[v] {
			t.Fatalf("vertex %d: promoted start %d, want %d", v, got.Start[v], want.Start[v])
		}
	}
	// The hit promoted the entry into memory.
	if st := cold.Snapshot(); st.Entries != 1 {
		t.Fatalf("entries = %d after promotion, want 1", st.Entries)
	}
}

func TestCacheCorruptPersistedEntryDegradesToMiss(t *testing.T) {
	ms := newMapStore()
	g := testGrid(t, 6)
	c := New(Config{Store: ms})
	key := Fingerprint("GLL", g)

	// Plant an entry whose payload cannot color g: wrong vector length.
	if err := ms.Put(key, Entry{Starts: []int64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Lookup("GLL", g, ""); ok {
		t.Fatal("invalid persisted entry was served")
	}
	if ms.Len() != 0 {
		t.Fatal("vetted-bad persisted entry was not deleted")
	}

	// Right length, overlapping intervals: passes the length check, must
	// fail full validation.
	if err := ms.Put(key, Entry{Starts: make([]int64, g.Len())}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Lookup("GLL", g, ""); ok {
		t.Fatal("overlapping persisted coloring was served")
	}
	if st := c.Snapshot(); st.Corrupt != 2 {
		t.Fatalf("corrupt counter = %d, want 2", st.Corrupt)
	}
}

func TestCacheInjectedCorruption(t *testing.T) {
	ms := newMapStore()
	g := testGrid(t, 6)

	armed := false
	inj := core.InjectorFunc(func(site core.FaultSite) bool {
		return armed && site == SiteGetCorrupt
	})
	c := New(Config{Store: ms, Injector: inj})
	_, key, _ := c.Lookup("GLL", g, "")
	c.Store(key, "GLL", "", g, serialColoring(g), time.Millisecond)

	// A fresh cache over the same store forces the store-tier read the
	// site guards; with the site armed the (perfectly valid) entry must
	// be treated as corrupt: a miss, never a wrong answer.
	armed = true
	cold := New(Config{Store: ms, Injector: inj})
	if _, _, ok := cold.Lookup("GLL", g, ""); ok {
		t.Fatal("injected corruption did not degrade the read to a miss")
	}
	if st := cold.Snapshot(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
	// The injector also proved deletion: the store dropped the entry, so
	// a disarmed re-read re-solves rather than resurrecting it.
	if ms.Len() != 0 {
		t.Fatal("entry survived the corrupt-read deletion")
	}
}

// TestCacheConcurrentStorm hammers one cache from many goroutines doing
// lookups, stores, and byte-budget evictions at once; run under -race
// (the Makefile cache tier does) it is the data-race gate for the
// sharded LRU.
func TestCacheConcurrentStorm(t *testing.T) {
	g := testGrid(t, 8)
	entrySize := (&Entry{Starts: make([]int64, g.Len())}).memBytes()
	c := New(Config{
		MaxBytes: 8 * entrySize, // small enough that eviction churns
		Shards:   4,
		Store:    newMapStore(),
		Metrics:  obsv.NewCacheMetrics(obsv.NewRegistry()),
	})
	col := serialColoring(g)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", w%3)
			for i := 0; i < 200; i++ {
				alg := fmt.Sprintf("alg%d", (w+i)%16)
				got, key, ok := c.Lookup(alg, g, tenant)
				if ok {
					if len(got.Start) != g.Len() || got.Start[1] != col.Start[1] {
						t.Errorf("corrupted hit for %s", alg)
						return
					}
				} else {
					c.Store(key, alg, tenant, g, col, time.Microsecond)
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Snapshot()
	if st.Hits+st.Misses != workers*200 {
		t.Fatalf("accounting lost lookups: hits=%d misses=%d, want %d total",
			st.Hits, st.Misses, workers*200)
	}
	if st.Entries > 8 {
		t.Fatalf("entries = %d exceeds the budgeted 8", st.Entries)
	}
}
