package resultcache

import "stencilivc/internal/core"

// Store is the pluggable persistence tier behind the in-memory cache: a
// hash-keyed index in front of blob storage, in the smallest interface
// that shape needs. The in-memory LRU sits in front of a Store the way
// a page cache sits in front of a disk — eviction drops only the memory
// copy, the Store retains the entry, and a later Lookup re-reads (and
// re-validates) it.
//
// Implementations must be safe for concurrent use and must treat
// entries as immutable: deep-copy on Put and on Get, so neither side
// can mutate the other's slices. Get reports corruption (a torn write,
// bit rot, a failed checksum) as an error wrapping ErrCorrupt; the
// cache degrades any Get error to a miss.
//
// In-tree implementations: memstore.Store (map-backed, for tests and
// single-process daemons) and FileStore (one fsync'd file per entry,
// atomic write-temp-rename). An S3-shaped remote store slots in behind
// the same four methods — see ROADMAP.
type Store interface {
	// Get returns the entry stored under key; ok is false when the key
	// is absent. An error means the entry existed but was unreadable.
	Get(key core.CacheKey) (e Entry, ok bool, err error)
	// Put stores e under key, replacing any previous entry.
	Put(key core.CacheKey, e Entry) error
	// Delete removes the entry stored under key; absent keys are a no-op.
	Delete(key core.CacheKey) error
	// Len reports how many entries the store currently holds.
	Len() int
}
