package resultcache

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"stencilivc/internal/core"
)

// putAt stores an entry under key with the given creation stamp and
// file mtime (the sweep orders evictions by mtime, expiry by the
// stamp).
func putAt(t *testing.T, fs *FileStore, key core.CacheKey, created int64, mtime time.Time) {
	t.Helper()
	e := testEntry()
	e.Prov.CreatedUnix = created
	if err := fs.Put(key, e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(fs.Dir(), key.String()+entrySuffix)
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
}

// TestSweepTTLExpiresOldEntries: reopening with a TTL drops entries
// whose recorded creation time is too old and keeps the rest; the
// unbounded open never sweeps.
func TestSweepTTLExpiresOldEntries(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	putAt(t, fs, testKey(1), now.Unix()-3600, now) // one hour old
	putAt(t, fs, testKey(2), now.Unix()-10, now)   // fresh

	// Reopen unbounded: nothing is swept.
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Len() != 2 || fs2.SweepReport() != (SweepStats{}) {
		t.Fatalf("unbounded reopen swept: len=%d report=%+v", fs2.Len(), fs2.SweepReport())
	}

	// Reopen with a 10-minute TTL: only the hour-old entry expires.
	fs3, err := OpenFileStoreSwept(dir, SweepPolicy{TTL: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if fs3.Len() != 1 {
		t.Fatalf("len after TTL sweep = %d, want 1", fs3.Len())
	}
	if got := fs3.SweepReport(); got.Expired != 1 || got.Corrupt != 0 || got.Evicted != 0 {
		t.Fatalf("sweep report = %+v, want 1 expired", got)
	}
	if _, ok, _ := fs3.Get(testKey(1)); ok {
		t.Error("expired entry still readable")
	}
	if _, ok, _ := fs3.Get(testKey(2)); !ok {
		t.Error("fresh entry was swept")
	}
}

// TestSweepMaxEntriesEvictsOldestByMtime: reopening with an entry cap
// keeps only the most recently written entries.
func TestSweepMaxEntriesEvictsOldestByMtime(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i := byte(0); i < 5; i++ {
		// Key i was last written i minutes ago: key 4 is the oldest.
		putAt(t, fs, testKey(10+i), now.Unix(), now.Add(-time.Duration(i)*time.Minute))
	}
	fs2, err := OpenFileStoreSwept(dir, SweepPolicy{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Len() != 2 {
		t.Fatalf("len after cap sweep = %d, want 2", fs2.Len())
	}
	if got := fs2.SweepReport(); got.Evicted != 3 {
		t.Fatalf("sweep report = %+v, want 3 evicted", got)
	}
	for i := byte(0); i < 5; i++ {
		_, ok, err := fs2.Get(testKey(10 + i))
		if err != nil {
			t.Fatal(err)
		}
		if want := i < 2; ok != want {
			t.Errorf("key written %d minutes ago: present=%v, want %v", i, ok, want)
		}
	}
}

// TestSweepReclaimsCorruptEntries: the TTL pass decodes every entry, so
// a bit-rotted payload is deleted at open instead of surfacing as
// ErrCorrupt on every future Get.
func TestSweepReclaimsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	putAt(t, fs, testKey(1), now.Unix(), now)
	putAt(t, fs, testKey(2), now.Unix(), now)

	// Rot one payload byte past the framing; the checksum catches it.
	path := filepath.Join(dir, testKey(1).String()+entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStoreSwept(dir, SweepPolicy{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got := fs2.SweepReport(); got.Corrupt != 1 || got.Expired != 0 {
		t.Fatalf("sweep report = %+v, want 1 corrupt", got)
	}
	if fs2.Len() != 1 {
		t.Fatalf("len = %d, want 1", fs2.Len())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry file still on disk after sweep")
	}
	if _, ok, err := fs2.Get(testKey(2)); !ok || err != nil {
		t.Errorf("healthy entry: ok=%v err=%v", ok, err)
	}
}

// TestSweepCombined: TTL expiry runs before the entry cap, so the cap
// counts only live survivors.
func TestSweepCombined(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	putAt(t, fs, testKey(1), now.Unix()-7200, now.Add(-3*time.Minute)) // expired
	putAt(t, fs, testKey(2), now.Unix(), now.Add(-2*time.Minute))
	putAt(t, fs, testKey(3), now.Unix(), now.Add(-time.Minute))
	putAt(t, fs, testKey(4), now.Unix(), now)

	fs2, err := OpenFileStoreSwept(dir, SweepPolicy{MaxEntries: 2, TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	got := fs2.SweepReport()
	if got.Expired != 1 || got.Evicted != 1 {
		t.Fatalf("sweep report = %+v, want 1 expired + 1 evicted", got)
	}
	if fs2.Len() != 2 {
		t.Fatalf("len = %d, want 2", fs2.Len())
	}
	for i, want := range map[byte]bool{1: false, 2: false, 3: true, 4: true} {
		if _, ok, _ := fs2.Get(testKey(i)); ok != want {
			t.Errorf("key %d: present=%v, want %v", i, ok, want)
		}
	}
}
