// Package memstore is the map-backed reference implementation of
// resultcache.Store: the in-memory tier that lets every cache test —
// and a single-process daemon that wants persistence semantics without
// a disk — run with no infrastructure. It honors the full Store
// contract (deep copies on both sides of the interface, safety for
// concurrent use); what it cannot provide is durability, which is
// resultcache.FileStore's job.
package memstore
