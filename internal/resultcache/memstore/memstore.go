package memstore

import (
	"sync"

	"stencilivc/internal/core"
	"stencilivc/internal/resultcache"
)

// Store is a concurrency-safe, unbounded in-memory resultcache.Store.
// The zero value is not usable; build one with New.
type Store struct {
	mu sync.RWMutex
	m  map[core.CacheKey]resultcache.Entry
}

var _ resultcache.Store = (*Store)(nil)

// New returns an empty store.
func New() *Store {
	return &Store{m: map[core.CacheKey]resultcache.Entry{}}
}

// Get returns a deep copy of the entry stored under key.
func (s *Store) Get(key core.CacheKey) (resultcache.Entry, bool, error) {
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return resultcache.Entry{}, false, nil
	}
	e.Starts = append([]int64(nil), e.Starts...)
	return e, true, nil
}

// Put stores a deep copy of e under key.
func (s *Store) Put(key core.CacheKey, e resultcache.Entry) error {
	e.Starts = append([]int64(nil), e.Starts...)
	s.mu.Lock()
	s.m[key] = e
	s.mu.Unlock()
	return nil
}

// Delete removes the entry stored under key.
func (s *Store) Delete(key core.CacheKey) error {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// Len reports the number of stored entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
