package memstore

import (
	"testing"

	"stencilivc/internal/core"
	"stencilivc/internal/resultcache"
)

func TestMemstoreRoundtripAndIsolation(t *testing.T) {
	s := New()
	var key core.CacheKey
	key[0] = 7

	e := resultcache.Entry{Starts: []int64{1, 2, 3}}
	if err := s.Put(key, e); err != nil {
		t.Fatal(err)
	}
	// Put must have copied: mutating the caller's slice is invisible.
	e.Starts[0] = 99

	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if got.Starts[0] != 1 {
		t.Fatal("Put did not deep-copy the entry")
	}
	// Get must also copy: mutating the returned slice is invisible.
	got.Starts[1] = 99
	again, _, _ := s.Get(key)
	if again.Starts[1] != 2 {
		t.Fatal("Get did not deep-copy the entry")
	}

	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("entry survived delete")
	}
}
